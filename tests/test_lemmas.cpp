// Executable forms of the paper's formal results (Section III):
// Lemma 1 (equality), Lemma 2 (same-sign magnitude order), Lemma 3 (both
// positive), Lemma 4/6 (both negative), Lemma 5 (mixed signs), Corollary 1,
// Theorem 1 (XOR operator) and Theorem 2 (swap/negate operator).
//
// Strategy: the generic fpformat model computes FP(B)/SI(B) from first
// principles (integer decomposition + ldexp), independent of the host FPU,
// so these checks do not assume what they prove.  The tiny 8-bit format is
// checked EXHAUSTIVELY over all 2^16 ordered pairs; binary32/binary64 are
// checked on seeded random pairs plus a structured edge-value set.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/flint.hpp"
#include "fpformat/fpformat.hpp"

namespace {

using flint::fpformat::FormatSpec;
using flint::fpformat::fp_value;
using flint::fpformat::is_ordered;
using flint::fpformat::signed_value;

// The FLInt semantic total order on non-NaN patterns: reference comparison
// of FP values with -0 < +0 refined by the sign bit on equal magnitudes.
bool ref_ge(std::uint64_t x, std::uint64_t y, const FormatSpec& spec) {
  const long double fx = fp_value(x, spec);
  const long double fy = fp_value(y, spec);
  if (fx != fy) return fx > fy;
  // Equal real values: only +0 vs -0 can differ in bits; FLInt orders
  // -0 < +0 (paper Section III-A).
  const bool sx = flint::fpformat::sign_bit(x, spec);
  const bool sy = flint::fpformat::sign_bit(y, spec);
  if (sx != sy) return sy;  // x >= y unless x negative-signed, y positive
  return true;
}

// --- Exhaustive check of the tiny 8-bit format --------------------------- //

TEST(LemmasTiny8, Lemma1EqualityIsBitEquality) {
  const FormatSpec spec = FormatSpec::tiny8();
  for (std::uint64_t x = 0; x < 256; ++x) {
    if (!is_ordered(x, spec)) continue;
    for (std::uint64_t y = 0; y < 256; ++y) {
      if (!is_ordered(y, spec)) continue;
      const bool fp_equal = fp_value(x, spec) == fp_value(y, spec) &&
                            flint::fpformat::sign_bit(x, spec) ==
                                flint::fpformat::sign_bit(y, spec);
      // With -0 != +0 (the paper's convention) FP equality <=> bit equality.
      EXPECT_EQ(fp_equal, x == y) << "x=" << x << " y=" << y;
      EXPECT_EQ(x == y, signed_value(x, spec) == signed_value(y, spec));
    }
  }
}

TEST(LemmasTiny8, Lemma2SameSignMagnitudeOrder) {
  const FormatSpec spec = FormatSpec::tiny8();
  for (std::uint64_t x = 0; x < 256; ++x) {
    for (std::uint64_t y = 0; y < 256; ++y) {
      if (!is_ordered(x, spec) || !is_ordered(y, spec)) continue;
      if (flint::fpformat::sign_bit(x, spec) != flint::fpformat::sign_bit(y, spec)) {
        continue;
      }
      const bool abs_greater =
          flint::fpformat::fp_abs_value(x, spec) > flint::fpformat::fp_abs_value(y, spec);
      const bool si_greater = signed_value(x, spec) > signed_value(y, spec);
      if (flint::fpformat::sign_bit(x, spec)) {
        // Negative sign: SI order equals UI order of magnitude bits, which
        // matches |FP| order (Lemma 2 applies to the magnitude).
        EXPECT_EQ(abs_greater, si_greater) << "x=" << x << " y=" << y;
      } else {
        EXPECT_EQ(abs_greater, si_greater) << "x=" << x << " y=" << y;
      }
    }
  }
}

TEST(LemmasTiny8, Lemma3BothPositive) {
  const FormatSpec spec = FormatSpec::tiny8();
  for (std::uint64_t x = 0; x < 256; ++x) {
    for (std::uint64_t y = 0; y < 256; ++y) {
      if (!is_ordered(x, spec) || !is_ordered(y, spec)) continue;
      if (flint::fpformat::sign_bit(x, spec) || flint::fpformat::sign_bit(y, spec)) {
        continue;
      }
      EXPECT_EQ(fp_value(x, spec) > fp_value(y, spec),
                signed_value(x, spec) > signed_value(y, spec))
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(LemmasTiny8, Lemma6BothNegativeStrictlyDecreasing) {
  const FormatSpec spec = FormatSpec::tiny8();
  for (std::uint64_t x = 0; x < 256; ++x) {
    for (std::uint64_t y = 0; y < 256; ++y) {
      if (!is_ordered(x, spec) || !is_ordered(y, spec)) continue;
      if (!flint::fpformat::sign_bit(x, spec) || !flint::fpformat::sign_bit(y, spec)) {
        continue;
      }
      if (x == y) continue;
      // Strict FP order (with -0 distinct) inverts the SI order.
      EXPECT_EQ(ref_ge(x, y, spec) && x != y,
                signed_value(x, spec) < signed_value(y, spec))
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(LemmasTiny8, Lemma5MixedSigns) {
  const FormatSpec spec = FormatSpec::tiny8();
  for (std::uint64_t x = 0; x < 256; ++x) {
    for (std::uint64_t y = 0; y < 256; ++y) {
      if (!is_ordered(x, spec) || !is_ordered(y, spec)) continue;
      if (flint::fpformat::sign_bit(x, spec) == flint::fpformat::sign_bit(y, spec)) {
        continue;
      }
      EXPECT_EQ(ref_ge(x, y, spec) && x != y,
                signed_value(x, spec) > signed_value(y, spec))
          << "x=" << x << " y=" << y;
    }
  }
}

TEST(LemmasTiny8, Theorem1ExhaustiveOperator) {
  const FormatSpec spec = FormatSpec::tiny8();
  for (std::uint64_t x = 0; x < 256; ++x) {
    for (std::uint64_t y = 0; y < 256; ++y) {
      if (!is_ordered(x, spec) || !is_ordered(y, spec)) continue;
      const auto sx = signed_value(x, spec);
      const auto sy = signed_value(y, spec);
      const bool u = sx >= sy;
      const bool v = sx < 0 && sy < 0 && sx != sy;
      EXPECT_EQ(u != v, ref_ge(x, y, spec)) << "x=" << x << " y=" << y;
    }
  }
}

// --- Native float/double: random + structured pairs ---------------------- //

template <typename T>
std::vector<T> edge_values() {
  using Traits = flint::core::FloatTraits<T>;
  using S = typename Traits::Signed;
  std::vector<T> edges = {
      T(0.0), T(-0.0), T(1.0), T(-1.0), T(0.5), T(-0.5), T(2.0), T(-2.0),
      std::numeric_limits<T>::min(), -std::numeric_limits<T>::min(),
      std::numeric_limits<T>::max(), std::numeric_limits<T>::lowest(),
      std::numeric_limits<T>::denorm_min(), -std::numeric_limits<T>::denorm_min(),
      std::numeric_limits<T>::epsilon(), -std::numeric_limits<T>::epsilon(),
      std::numeric_limits<T>::infinity(), -std::numeric_limits<T>::infinity(),
  };
  // Adjacent bit patterns around critical boundaries.
  for (const T v : {T(0.0), T(1.0), T(-1.0), std::numeric_limits<T>::min()}) {
    const S b = flint::core::si_bits(v);
    edges.push_back(flint::core::from_si_bits<T>(b + 1));
    if (b != 0) edges.push_back(flint::core::from_si_bits<T>(b - 1));
  }
  return edges;
}

/// IEEE >= refined with the FLInt -0 < +0 convention — the semantics the
/// operators are proved against.
template <typename T>
bool flint_semantic_ge(T a, T b) {
  if (a != b) return a > b;           // distinct real values (no NaN here)
  const auto sa = flint::core::si_bits(a) < 0;
  const auto sb = flint::core::si_bits(b) < 0;
  if (sa != sb) return sb;            // -0 vs +0: a >= b iff b is the -0
  return true;
}

template <typename T>
class TheoremNative : public ::testing::Test {};

using NativeTypes = ::testing::Types<float, double>;
TYPED_TEST_SUITE(TheoremNative, NativeTypes);

TYPED_TEST(TheoremNative, Theorem1OnEdgePairs) {
  const auto edges = edge_values<TypeParam>();
  for (const TypeParam a : edges) {
    for (const TypeParam b : edges) {
      EXPECT_EQ(flint::core::ge_theorem1(a, b), flint_semantic_ge(a, b))
          << "a=" << a << " b=" << b;
    }
  }
}

TYPED_TEST(TheoremNative, Theorem2OnEdgePairs) {
  const auto edges = edge_values<TypeParam>();
  for (const TypeParam a : edges) {
    for (const TypeParam b : edges) {
      EXPECT_EQ(flint::core::ge_theorem2(a, b), flint_semantic_ge(a, b))
          << "a=" << a << " b=" << b;
    }
  }
}

TYPED_TEST(TheoremNative, RadixKeyOnEdgePairs) {
  const auto edges = edge_values<TypeParam>();
  for (const TypeParam a : edges) {
    for (const TypeParam b : edges) {
      EXPECT_EQ(flint::core::ge_radix(a, b), flint_semantic_ge(a, b))
          << "a=" << a << " b=" << b;
    }
  }
}

TYPED_TEST(TheoremNative, AllFormulationsAgreeOnRandomPairs) {
  using S = typename flint::core::FloatTraits<TypeParam>::Signed;
  using U = typename flint::core::FloatTraits<TypeParam>::Unsigned;
  std::mt19937_64 rng(7);
  int checked = 0;
  for (int i = 0; i < 2'000'000 && checked < 1'000'000; ++i) {
    const auto a = flint::core::from_si_bits<TypeParam>(
        static_cast<S>(static_cast<U>(rng())));
    const auto b = flint::core::from_si_bits<TypeParam>(
        static_cast<S>(static_cast<U>(rng())));
    if (std::isnan(a) || std::isnan(b)) continue;
    ++checked;
    const bool expected = flint_semantic_ge(a, b);
    ASSERT_EQ(flint::core::ge_theorem1(a, b), expected) << a << " vs " << b;
    ASSERT_EQ(flint::core::ge_theorem2(a, b), expected) << a << " vs " << b;
    ASSERT_EQ(flint::core::ge_radix(a, b), expected) << a << " vs " << b;
  }
  EXPECT_GE(checked, 900'000);  // NaN density is low; ensure real coverage
}

TYPED_TEST(TheoremNative, DerivedRelationsAreConsistent) {
  using S = typename flint::core::FloatTraits<TypeParam>::Signed;
  using U = typename flint::core::FloatTraits<TypeParam>::Unsigned;
  std::mt19937_64 rng(11);
  for (int i = 0; i < 200'000; ++i) {
    const auto a = flint::core::from_si_bits<TypeParam>(
        static_cast<S>(static_cast<U>(rng())));
    const auto b = flint::core::from_si_bits<TypeParam>(
        static_cast<S>(static_cast<U>(rng())));
    if (std::isnan(a) || std::isnan(b)) continue;
    EXPECT_EQ(flint::core::le(a, b), flint::core::ge(b, a));
    EXPECT_EQ(flint::core::gt(a, b), !flint::core::le(a, b));
    EXPECT_EQ(flint::core::lt(a, b), !flint::core::ge(a, b));
    EXPECT_EQ(flint::core::eq(a, b),
              flint::core::ge(a, b) && flint::core::le(a, b));
  }
}

// Corollary 1 case split, directly transcribed.
TYPED_TEST(TheoremNative, Corollary1CaseSplit) {
  using S = typename flint::core::FloatTraits<TypeParam>::Signed;
  using U = typename flint::core::FloatTraits<TypeParam>::Unsigned;
  std::mt19937_64 rng(13);
  for (int i = 0; i < 500'000; ++i) {
    const auto a = flint::core::from_si_bits<TypeParam>(
        static_cast<S>(static_cast<U>(rng())));
    const auto b = flint::core::from_si_bits<TypeParam>(
        static_cast<S>(static_cast<U>(rng())));
    if (std::isnan(a) || std::isnan(b)) continue;
    const S x = flint::core::si_bits(a);
    const S y = flint::core::si_bits(b);
    bool result;
    if (x < 0 && y < 0 && x != y) {
      result = x < y;  // first case of Corollary 1
    } else {
      result = x >= y;  // second case
    }
    EXPECT_EQ(result, flint_semantic_ge(a, b)) << a << " vs " << b;
  }
}

}  // namespace
