// Stress and degenerate-structure tests: deep chain trees, wide forests,
// many classes, hostile split-value distributions, concurrent JIT use —
// the failure-injection layer of the suite.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <sstream>
#include <thread>

#include "codegen/asm_x86.hpp"
#include "codegen/cgen_cags.hpp"
#include "codegen/cgen_ifelse.hpp"
#include "codegen/cgen_native.hpp"
#include "data/synth.hpp"
#include "exec/interpreter.hpp"
#include "jit/jit.hpp"
#include "trees/forest.hpp"
#include "trees/serialize.hpp"
#include "trees/tree_stats.hpp"

namespace {

using flint::trees::Forest;
using flint::trees::Tree;

/// Left-leaning chain: node i tests f0 <= thresholds[i]; right child leaf.
Tree<float> chain_tree(int depth, float lo, float hi) {
  Tree<float> t(1);
  std::vector<std::int32_t> splits;
  for (int i = 0; i < depth; ++i) {
    // Descending thresholds so every level is reachable.
    const float s = hi - (hi - lo) * static_cast<float>(i) /
                             static_cast<float>(depth);
    splits.push_back(t.add_split(0, s));
  }
  const auto deep_leaf = t.add_leaf(0);
  for (int i = 0; i < depth; ++i) {
    const auto right_leaf = t.add_leaf(1 + (i % 3));
    const std::int32_t next =
        (i + 1 < depth) ? splits[static_cast<std::size_t>(i + 1)] : deep_leaf;
    t.link(splits[static_cast<std::size_t>(i)], next, right_leaf);
  }
  return t;
}

TEST(Stress, Depth500ChainTreePredictAndValidate) {
  const auto t = chain_tree(500, -100.0f, 100.0f);
  EXPECT_TRUE(t.validate().empty()) << t.validate();
  EXPECT_EQ(t.depth(), 500u);
  // A very small value walks the whole chain to the deep leaf.
  EXPECT_EQ(t.predict(std::vector<float>{-1000.0f}), 0);
  // A huge value exits right at the root.
  EXPECT_EQ(t.predict(std::vector<float>{1000.0f}), 1);
}

TEST(Stress, Depth500ChainSurvivesAllEnginesAndSerialization) {
  const auto t = chain_tree(500, -50.0f, 50.0f);
  Forest<float> forest({t}, 4);
  std::ostringstream s;
  flint::trees::write_forest(s, forest);
  std::istringstream in(s.str());
  const auto back = flint::trees::read_forest<float>(in);
  const flint::exec::FlintForestEngine<float> engine(
      back, flint::exec::FlintVariant::Encoded);
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<float> dist(-60.0f, 60.0f);
  for (int i = 0; i < 2000; ++i) {
    const std::vector<float> x{dist(rng)};
    ASSERT_EQ(engine.predict(x), forest.predict(x));
  }
}

TEST(Stress, Depth500ChainCompilesInEveryFlavor) {
  // Deep nesting stresses the emitters' recursion and the C compiler.
  const auto t = chain_tree(500, -50.0f, 50.0f);
  Forest<float> forest({t}, 4);
  flint::trees::BranchStats stats;
  stats.visits.assign(t.size(), 1);
  stats.left_probability.assign(t.size(), 0.9);
  const flint::exec::FloatForestEngine<float> reference(forest);

  std::vector<flint::codegen::GeneratedCode> codes;
  for (const bool use_flint : {false, true}) {
    flint::codegen::CGenOptions opt;
    opt.flint = use_flint;
    codes.push_back(flint::codegen::generate_ifelse(forest, opt));
    opt.kernel_budget_bytes = 512;
    codes.push_back(flint::codegen::generate_cags(forest, {stats}, opt));
    codes.push_back(flint::codegen::generate_native(forest, opt));
  }
  codes.push_back(flint::codegen::generate_asm_x86(forest, {}));

  std::mt19937_64 rng(5);
  std::uniform_real_distribution<float> dist(-60.0f, 60.0f);
  flint::jit::JitOptions jopt;
  jopt.opt_level = 1;  // keep gcc fast on the 500-deep nest
  for (const auto& code : codes) {
    const auto module = flint::jit::compile(code, jopt);
    auto* classify =
        module.function<flint::jit::ClassifyFn<float>>(code.classify_symbol);
    for (int i = 0; i < 500; ++i) {
      const std::vector<float> x{dist(rng)};
      ASSERT_EQ(classify(x.data()), reference.predict(x)) << code.flavor;
    }
  }
}

TEST(Stress, WideForestManyClasses) {
  // 100 single-leaf trees voting across 50 classes; ties must resolve to
  // the lowest class id everywhere.
  std::vector<Tree<float>> trees;
  for (int i = 0; i < 100; ++i) {
    Tree<float> t(1);
    t.add_leaf(i % 50);
    trees.push_back(std::move(t));
  }
  Forest<float> forest(std::move(trees), 50);
  EXPECT_EQ(forest.predict(std::vector<float>{0.0f}), 0);
  const flint::exec::FlintForestEngine<float> engine(
      forest, flint::exec::FlintVariant::Encoded);
  EXPECT_EQ(engine.predict(std::vector<float>{0.0f}), 0);

  const auto code = flint::codegen::generate_ifelse(forest, {});
  const auto module = flint::jit::compile(code);
  auto* classify =
      module.function<flint::jit::ClassifyFn<float>>(code.classify_symbol);
  const std::vector<float> x{0.0f};
  EXPECT_EQ(classify(x.data()), 0);
}

TEST(Stress, AllNegativeSplitTree) {
  // Every node takes the SignFlip path; all engines and generators must
  // agree on dense probes around the thresholds.
  Tree<float> t(2);
  const auto n0 = t.add_split(0, -1.5f);
  const auto n1 = t.add_split(1, -1e-30f);
  const auto n2 = t.add_split(0, -3e30f);
  const auto l0 = t.add_leaf(0);
  const auto l1 = t.add_leaf(1);
  const auto l2 = t.add_leaf(2);
  const auto l3 = t.add_leaf(3);
  t.link(n0, n1, n2);
  t.link(n1, l0, l1);
  t.link(n2, l2, l3);
  Forest<float> forest({t}, 4);
  const flint::exec::FloatForestEngine<float> reference(forest);

  flint::codegen::CGenOptions opt;
  opt.flint = true;
  const auto code = flint::codegen::generate_ifelse(forest, opt);
  EXPECT_NE(code.files[0].content.find("^"), std::string::npos)
      << "SignFlip xor missing from generated code";
  const auto module = flint::jit::compile(code);
  auto* classify =
      module.function<flint::jit::ClassifyFn<float>>(code.classify_symbol);

  const float probes[] = {-4e30f, -3e30f, -1.6f, -1.5f, -1.4f, -1e-30f,
                          -1e-31f, -0.0f, 0.0f, 1.0f, 4e30f};
  for (const float a : probes) {
    for (const float b : probes) {
      const std::vector<float> x{a, b};
      ASSERT_EQ(classify(x.data()), reference.predict(x)) << a << "," << b;
    }
  }
}

TEST(Stress, DenormalSplitValues) {
  Tree<float> t(1);
  const auto root = t.add_split(0, std::numeric_limits<float>::denorm_min());
  const auto l0 = t.add_leaf(0);
  const auto l1 = t.add_leaf(1);
  t.link(root, l0, l1);
  Forest<float> forest({t}, 2);
  const flint::exec::FlintForestEngine<float> engine(
      forest, flint::exec::FlintVariant::Encoded);
  EXPECT_EQ(engine.predict(std::vector<float>{0.0f}), 0);
  EXPECT_EQ(engine.predict(std::vector<float>{
                std::numeric_limits<float>::denorm_min()}), 0);
  EXPECT_EQ(engine.predict(std::vector<float>{
                2 * std::numeric_limits<float>::denorm_min()}), 1);
  EXPECT_EQ(engine.predict(std::vector<float>{-0.0f}), 0);
}

TEST(Stress, ParallelJitCompiles) {
  // The experiment driver compiles from a thread pool; hammer that path.
  std::atomic<int> failures{0};
  std::vector<std::thread> pool;
  for (int thread_id = 0; thread_id < 8; ++thread_id) {
    pool.emplace_back([thread_id, &failures] {
      for (int i = 0; i < 5; ++i) {
        const int value = thread_id * 100 + i;
        const std::vector<flint::codegen::SourceFile> sources{
            {"f.c", "int answer(void) { return " + std::to_string(value) +
                        "; }\n"}};
        try {
          const auto module = flint::jit::compile(sources);
          if (module.function<int(void)>("answer")() != value) ++failures;
        } catch (const std::exception&) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Stress, TrainOnLargeManyClassDataset) {
  const auto ds = flint::data::generate<float>(
      flint::data::sensorless_spec(), 7, 6000);  // 11 classes, 48 features
  flint::trees::ForestOptions opt;
  opt.n_trees = 3;
  opt.tree.max_depth = 25;
  opt.tree.max_features = flint::trees::TrainOptions::kSqrtFeatures;
  const auto forest = flint::trees::train_forest(ds, opt);
  for (std::size_t t = 0; t < forest.size(); ++t) {
    EXPECT_TRUE(forest.tree(t).validate().empty());
  }
  EXPECT_GT(flint::trees::accuracy(forest, ds), 0.8);
}

TEST(Stress, DuplicateFeatureValuesDoNotBreakTraining) {
  // Highly discrete feature: only 3 distinct values, labels depend on them.
  flint::data::Dataset<float> ds("discrete", 1);
  std::mt19937_64 rng(1);
  for (int i = 0; i < 300; ++i) {
    const int bucket = static_cast<int>(rng() % 3);
    ds.add_row(std::vector<float>{static_cast<float>(bucket)}, bucket);
  }
  flint::trees::TrainOptions opt;
  opt.max_depth = 4;
  const auto tree = flint::trees::train_tree(ds, opt);
  EXPECT_EQ(flint::trees::accuracy(tree, ds), 1.0);
  EXPECT_LE(tree.depth(), 2u);  // 3 buckets need exactly 2 splits
}

TEST(Stress, CagsHandlesDegenerateProbabilities) {
  // All-left and all-right traffic plus NaN-free 0.5 priors.
  const auto t = chain_tree(10, -5.0f, 5.0f);
  for (const double p : {0.0, 0.5, 1.0}) {
    flint::trees::BranchStats stats;
    stats.visits.assign(t.size(), 0);
    stats.left_probability.assign(t.size(), p);
    flint::codegen::CGenOptions opt;
    const auto body = flint::codegen::cags_tree_body(t, stats, opt);
    EXPECT_NE(body.find("return"), std::string::npos);
  }
}

}  // namespace
