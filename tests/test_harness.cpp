// Tests for the harness substrate: statistics, timer policy, machine info,
// report aggregation, and a miniature end-to-end run_grid execution.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/bench_json.hpp"
#include "harness/experiment.hpp"
#include "harness/machine_info.hpp"
#include "harness/report.hpp"
#include "harness/stats.hpp"
#include "harness/timer.hpp"

namespace {

using namespace flint::harness;

TEST(Stats, GeometricMeanKnownValues) {
  const double v1[] = {4.0};
  EXPECT_DOUBLE_EQ(geometric_mean(v1), 4.0);
  const double v2[] = {1.0, 4.0};
  EXPECT_DOUBLE_EQ(geometric_mean(v2), 2.0);
  const double v3[] = {2.0, 2.0, 2.0};
  EXPECT_NEAR(geometric_mean(v3), 2.0, 1e-12);
  // Geomean is invariant to reciprocal pairs.
  const double v4[] = {0.5, 2.0};
  EXPECT_NEAR(geometric_mean(v4), 1.0, 1e-12);
}

TEST(Stats, GeometricMeanRejectsBadInput) {
  EXPECT_THROW((void)geometric_mean({}), std::invalid_argument);
  const double z[] = {1.0, 0.0};
  EXPECT_THROW((void)geometric_mean(z), std::invalid_argument);
  const double n[] = {1.0, -2.0};
  EXPECT_THROW((void)geometric_mean(n), std::invalid_argument);
}

TEST(Stats, MeanVarianceStddev) {
  const double v[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(variance(v), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
  EXPECT_THROW((void)mean({}), std::invalid_argument);
  EXPECT_THROW((void)variance({}), std::invalid_argument);
}

TEST(Stats, MedianMinMax) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_THROW((void)median({}), std::invalid_argument);
  const double v[] = {3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 3.0);
}

TEST(Timer, MeasuresAndRepeats) {
  int calls = 0;
  const auto result = measure([&] { ++calls; }, /*min_seconds=*/0.001,
                              /*repetitions=*/2);
  EXPECT_GT(calls, 0);
  EXPECT_GT(result.iterations, 0u);
  EXPECT_GT(result.seconds_per_iteration, 0.0);
  EXPECT_GE(result.total_seconds, 0.002);
}

TEST(MachineInfo, QueryReturnsPlausibleData) {
  const auto info = query_machine_info();
  EXPECT_FALSE(info.architecture.empty());
  EXPECT_GT(info.logical_cores, 0);
  EXPECT_FALSE(to_string(info).empty());
}

// Regression (stale bench SHA): BENCH_*.json used to embed a
// configure-time git SHA, so rebuilding after new commits without a CMake
// re-run stamped artifacts with the wrong revision.  The stamp is now a
// build-time generated header that also records the dirty state; this test
// pins the env override and the presence of both fields in the artifact.
TEST(BenchJsonStamp, WritesGitShaAndDirtyFields) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / "flint_bench_json";
  std::filesystem::create_directories(dir);
  ASSERT_EQ(setenv("FLINT_BENCH_JSON_DIR", dir.c_str(), 1), 0);
  ASSERT_EQ(setenv("FLINT_GIT_SHA", "cafe123", 1), 0);
  std::string path;
  {
    BenchJson json("stamp_test");
    json.add_rate("encoded", 64, 1, 1000.0);
    path = json.write();
  }
  unsetenv("FLINT_GIT_SHA");
  unsetenv("FLINT_BENCH_JSON_DIR");
  ASSERT_FALSE(path.empty());
  std::ifstream f(path);
  ASSERT_TRUE(f.is_open()) << path;
  std::stringstream content;
  content << f.rdbuf();
  const std::string text = content.str();
  EXPECT_NE(text.find("\"git_sha\": \"cafe123\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"git_dirty\": "), std::string::npos) << text;
  std::filesystem::remove_all(dir);
}

TEST(ImplNames, RoundTrip) {
  for (const Impl i : {Impl::Naive, Impl::Cags, Impl::Flint, Impl::CagsFlint,
                       Impl::FlintAsm, Impl::NativeFloat, Impl::NativeFlint}) {
    EXPECT_EQ(impl_from_string(to_string(i)), i);
  }
  EXPECT_THROW((void)impl_from_string("bogus"), std::invalid_argument);
}

TEST(Configs, DefaultAndPaperShapes) {
  const auto d = default_config();
  EXPECT_FALSE(d.datasets.empty());
  EXPECT_FALSE(d.depths.empty());
  const auto p = paper_config();
  EXPECT_EQ(p.datasets.size(), 5u);
  EXPECT_EQ(p.ensemble_sizes.size(), 9u);  // {1,5,10,15,20,30,50,80,100}
  EXPECT_EQ(p.depths.size(), 7u);          // {1,5,10,15,20,30,50}
}

TEST(RunGrid, RejectsEmptyDimensions) {
  GridConfig config;  // all dims empty
  EXPECT_THROW((void)run_grid(config), std::invalid_argument);
}

// Miniature end-to-end: one dataset, tiny forest, all four paper impls plus
// the asm backend.  Exercises training, codegen, JIT, verification, timing
// and normalization in one pass.
class RunGridEndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GridConfig config;
    config.datasets = {"wine"};
    config.ensemble_sizes = {2};
    config.depths = {3, 5};
    config.impls = {Impl::Naive, Impl::Cags, Impl::Flint, Impl::CagsFlint,
                    Impl::FlintAsm};
    config.dataset_rows = 600;
    config.min_measure_seconds = 0.002;
    config.repetitions = 1;
    records_ = new std::vector<RunRecord>(run_grid(config));
  }
  static void TearDownTestSuite() {
    delete records_;
    records_ = nullptr;
  }
  static std::vector<RunRecord>* records_;
};

std::vector<RunRecord>* RunGridEndToEnd::records_ = nullptr;

TEST_F(RunGridEndToEnd, ProducesOneRecordPerCellAndImpl) {
  EXPECT_EQ(records_->size(), 2u * 5u);  // 2 depths x 5 impls
}

TEST_F(RunGridEndToEnd, AllRecordsVerifiedAndTimed) {
  for (const auto& rec : *records_) {
    EXPECT_TRUE(rec.verified) << to_string(rec.impl);
    EXPECT_GT(rec.ns_per_sample, 0.0);
    EXPECT_GT(rec.test_rows, 0u);
    EXPECT_GT(rec.total_nodes, 0u);
    EXPECT_GT(rec.object_bytes, 0u);
  }
}

TEST_F(RunGridEndToEnd, NaiveNormalizedToOne) {
  for (const auto& rec : *records_) {
    if (rec.impl == Impl::Naive) {
      EXPECT_DOUBLE_EQ(rec.normalized, 1.0);
    } else {
      EXPECT_GT(rec.normalized, 0.0);
    }
  }
}

TEST_F(RunGridEndToEnd, ReportAggregationsWork) {
  const auto series = depth_series(*records_, Impl::Flint);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].depth, 3);
  EXPECT_EQ(series[1].depth, 5);
  EXPECT_GT(series[0].geomean, 0.0);
  EXPECT_EQ(series[0].count, 1u);

  EXPECT_GT(summary_geomean(*records_, Impl::Naive), 0.0);
  EXPECT_DOUBLE_EQ(summary_geomean(*records_, Impl::Naive), 1.0);
  EXPECT_EQ(summary_geomean(*records_, Impl::Flint, 99), 0.0);  // no depth >= 99

  std::ostringstream csv;
  write_csv(csv, *records_);
  EXPECT_NE(csv.str().find("dataset,n_trees,depth,impl"), std::string::npos);
  EXPECT_NE(csv.str().find("wine"), std::string::npos);

  const Impl impls[] = {Impl::Naive, Impl::Flint};
  std::ostringstream table;
  print_depth_table(table, *records_, impls, "t");
  EXPECT_NE(table.str().find("depth"), std::string::npos);
  std::ostringstream summary;
  print_summary_table(summary, *records_, impls, "t");
  EXPECT_NE(summary.str().find("FLInt"), std::string::npos);
}

}  // namespace
