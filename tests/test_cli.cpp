// End-to-end tests of the flint-forest CLI (in-process via cli::run):
// the full gen -> train -> predict -> codegen -> inspect workflow plus the
// error paths (unknown commands/options/flavors, missing files).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

namespace {

namespace fs = std::filesystem;

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run_cli(std::initializer_list<std::string> args) {
  const std::vector<std::string> v(args);
  std::ostringstream out, err;
  const int code = flint::cli::run(v, out, err);
  return {code, out.str(), err.str()};
}

CliResult run_cli_with_input(std::initializer_list<std::string> args,
                             const std::string& input) {
  const std::vector<std::string> v(args);
  std::istringstream in(input);
  std::ostringstream out, err;
  const int code = flint::cli::run(v, in, out, err);
  return {code, out.str(), err.str()};
}

class CliWorkflow : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "flint_cli_test";
    fs::create_directories(dir_);
    csv_ = (dir_ / "data.csv").string();
    model_ = (dir_ / "model.forest").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::string csv_;
  std::string model_;
};

TEST_F(CliWorkflow, GenTrainPredictInspectCodegen) {
  auto gen = run_cli({"gen", "--dataset", "magic", "--rows", "800", "--seed",
                      "5", "--out", csv_});
  ASSERT_EQ(gen.code, 0) << gen.err;
  EXPECT_NE(gen.out.find("800 rows x 10 features"), std::string::npos) << gen.out;
  EXPECT_TRUE(fs::exists(csv_));

  auto train = run_cli({"train", "--data", csv_, "--trees", "4", "--depth",
                        "6", "--out", model_});
  ASSERT_EQ(train.code, 0) << train.err;
  EXPECT_NE(train.out.find("trained 4 trees"), std::string::npos);
  EXPECT_TRUE(fs::exists(model_));

  for (const char* engine : {"float", "flint", "theorem1", "theorem2", "radix"}) {
    auto predict = run_cli({"predict", "--model", model_, "--data", csv_,
                            "--engine", engine});
    ASSERT_EQ(predict.code, 0) << engine << ": " << predict.err;
    EXPECT_NE(predict.out.find("accuracy"), std::string::npos);
  }

  // All engines must report the same accuracy (bit-exact equivalence).
  auto accuracy_token = [](const std::string& text) {
    const auto pos = text.find("accuracy ");
    const auto end = text.find(" over", pos);
    return text.substr(pos, end - pos);
  };
  const auto acc_float =
      run_cli({"predict", "--model", model_, "--data", csv_, "--engine", "float"});
  const auto acc_flint =
      run_cli({"predict", "--model", model_, "--data", csv_, "--engine", "flint"});
  EXPECT_EQ(accuracy_token(acc_float.out), accuracy_token(acc_flint.out));

  auto inspect = run_cli({"inspect", "--model", model_});
  ASSERT_EQ(inspect.code, 0);
  EXPECT_NE(inspect.out.find("forest: 4 trees"), std::string::npos);

  const std::string gen_dir = (dir_ / "gen").string();
  for (const char* flavor : {"ifelse-float", "ifelse-flint", "native-flint",
                             "asm-x86", "asm-armv8"}) {
    auto codegen = run_cli({"codegen", "--model", model_, "--out", gen_dir,
                            "--flavor", flavor});
    ASSERT_EQ(codegen.code, 0) << flavor << ": " << codegen.err;
    EXPECT_NE(codegen.out.find("entry point"), std::string::npos);
  }
  EXPECT_TRUE(fs::exists(fs::path(gen_dir) / "forest.c"));
  EXPECT_TRUE(fs::exists(fs::path(gen_dir) / "forest.s"));

  // CAGS needs training data for branch statistics.
  auto cags_missing = run_cli({"codegen", "--model", model_, "--out", gen_dir,
                               "--flavor", "cags-flint"});
  EXPECT_EQ(cags_missing.code, 2);
  EXPECT_NE(cags_missing.err.find("train-data"), std::string::npos);
  auto cags = run_cli({"codegen", "--model", model_, "--out", gen_dir,
                       "--flavor", "cags-flint", "--train-data", csv_});
  EXPECT_EQ(cags.code, 0) << cags.err;
}

// Regression: predicting over an empty CSV (comment-only, so zero rows and
// no learned column count) must report "n/a", not divide by zero or trip
// the feature-width check; simd backends included in the engine sweep.
TEST_F(CliWorkflow, PredictEmptyDatasetAndSimdEngines) {
  ASSERT_EQ(run_cli({"gen", "--dataset", "wine", "--rows", "80", "--out", csv_})
                .code, 0);
  ASSERT_EQ(run_cli({"train", "--data", csv_, "--trees", "2", "--depth", "3",
                     "--out", model_}).code, 0);
  const std::string empty_csv = (dir_ / "empty.csv").string();
  {
    std::ofstream f(empty_csv);
    f << "# header only, no rows\n";
  }
  auto empty = run_cli({"predict", "--model", model_, "--data", empty_csv});
  ASSERT_EQ(empty.code, 0) << empty.err;
  EXPECT_NE(empty.out.find("accuracy n/a over 0 rows"), std::string::npos)
      << empty.out;
  // An unknown engine is still rejected on the empty path.
  auto bad = run_cli({"predict", "--model", model_, "--data", empty_csv,
                      "--engine", "warp"});
  EXPECT_EQ(bad.code, 2);
  // The simd backends are reachable from the shell.
  for (const char* engine : {"simd:flint", "simd:float"}) {
    auto predict = run_cli({"predict", "--model", model_, "--data", csv_,
                            "--engine", engine, "--threads", "2"});
    ASSERT_EQ(predict.code, 0) << engine << ": " << predict.err;
    EXPECT_NE(predict.out.find("accuracy"), std::string::npos);
  }
}

// The serve subcommand speaks a line protocol over the injected input
// stream: predictions, stats, a hot swap and a clean drain on EOF/quit.
TEST_F(CliWorkflow, ServeLineProtocol) {
  ASSERT_EQ(run_cli({"gen", "--dataset", "wine", "--rows", "120", "--out",
                     csv_}).code, 0);
  ASSERT_EQ(run_cli({"train", "--data", csv_, "--trees", "3", "--depth", "4",
                     "--out", model_}).code, 0);
  const std::string model_v2 = (dir_ / "model_v2.forest").string();
  ASSERT_EQ(run_cli({"train", "--data", csv_, "--trees", "3", "--depth", "4",
                     "--seed", "99", "--out", model_v2}).code, 0);

  // wine has 11 features; one 1-sample and one 2-sample request, a stats
  // probe, a hot swap, a post-swap request, and malformed lines.
  const std::string one = "1,2,3,4,5,6,7,8,9,10,11";
  // The second request and the quit use CRLF endings (regression: the
  // protocol must strip '\r' like the CSV reader does).
  const std::string protocol = one + "\n" + one + ";" + one + "\r\n" +
                               "stats\n" +
                               "swap " + model_v2 + "\n" +
                               "swap /nonexistent.forest\n" +
                               one + "\n" +
                               "1,2,bogus\n" +
                               "1,2;1,2,3\n" +
                               "quit\r\n";
  auto serve = run_cli_with_input(
      {"serve", "--model", model_, "--engine", "encoded", "--max-delay-us",
       "100", "--workers", "2", "--deadline-us", "30000000", "--priority",
       "high", "--shed-policy", "priority-evict"},
      protocol);
  ASSERT_EQ(serve.code, 0) << serve.err;
  EXPECT_NE(serve.out.find("serving 'default' v1"), std::string::npos)
      << serve.out;
  EXPECT_NE(serve.out.find("ok "), std::string::npos) << serve.out;
  // `stats` prints the ServeMetrics snapshot as a single JSON line,
  // including the health state and shed/deadline-miss counters.
  EXPECT_NE(serve.out.find("{\"health\":\"healthy\""), std::string::npos)
      << serve.out;
  EXPECT_NE(serve.out.find("\"requests\":"), std::string::npos);
  EXPECT_NE(serve.out.find("\"shed\":0"), std::string::npos);
  EXPECT_NE(serve.out.find("\"deadline_missed\":0"), std::string::npos);
  EXPECT_NE(serve.out.find("ok swapped 'default' to v2"), std::string::npos);
  EXPECT_NE(serve.out.find("err "), std::string::npos);  // bad swap + floats
  EXPECT_NE(serve.out.find("malformed feature value 'bogus'"),
            std::string::npos);
  EXPECT_NE(serve.out.find("ragged request"), std::string::npos);
  EXPECT_NE(serve.out.find("served 3 requests"), std::string::npos)
      << serve.out;

  // Option validation.
  EXPECT_EQ(run_cli_with_input({"serve", "--model", model_, "--max-batch",
                                "0"}, "").code, 2);
  EXPECT_EQ(run_cli_with_input({"serve", "--model", model_, "--deadline-us",
                                "-1"}, "").code, 2);
  EXPECT_EQ(run_cli_with_input({"serve", "--model", model_, "--priority",
                                "urgent"}, "").code, 2);
  EXPECT_EQ(run_cli_with_input({"serve", "--model", model_, "--shed-policy",
                                "drop-all"}, "").code, 2);
  EXPECT_EQ(run_cli_with_input({"serve", "--model", "/nonexistent.forest"},
                               "").code, 2);
}

TEST_F(CliWorkflow, PredictLabelsOutput) {
  ASSERT_EQ(run_cli({"gen", "--dataset", "wine", "--rows", "60", "--out", csv_})
                .code, 0);
  ASSERT_EQ(run_cli({"train", "--data", csv_, "--trees", "2", "--depth", "3",
                     "--out", model_}).code, 0);
  auto labeled = run_cli({"predict", "--model", model_, "--data", csv_,
                          "--labels", "yes"});
  ASSERT_EQ(labeled.code, 0);
  // 60 label lines + 1 accuracy line.
  EXPECT_EQ(std::count(labeled.out.begin(), labeled.out.end(), '\n'), 61);
}

TEST(CliErrors, HelpAndUnknowns) {
  auto empty = run_cli({});
  EXPECT_EQ(empty.code, 2);
  EXPECT_NE(empty.out.find("usage"), std::string::npos);

  auto help = run_cli({"--help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_NE(help.out.find("codegen"), std::string::npos);

  auto unknown = run_cli({"frobnicate"});
  EXPECT_EQ(unknown.code, 2);
  EXPECT_NE(unknown.err.find("unknown command"), std::string::npos);

  auto bad_option = run_cli({"gen", "--dataset", "eye", "--out", "/tmp/x.csv",
                             "--bogus", "1"});
  EXPECT_EQ(bad_option.code, 2);
  EXPECT_NE(bad_option.err.find("unknown option --bogus"), std::string::npos);

  auto missing_value = run_cli({"gen", "--dataset"});
  EXPECT_EQ(missing_value.code, 2);
  EXPECT_NE(missing_value.err.find("missing value"), std::string::npos);

  auto missing_required = run_cli({"gen", "--dataset", "eye"});
  EXPECT_EQ(missing_required.code, 2);
  EXPECT_NE(missing_required.err.find("--out"), std::string::npos);

  auto bad_dataset = run_cli({"gen", "--dataset", "mnist", "--out", "/tmp/x.csv"});
  EXPECT_EQ(bad_dataset.code, 2);

  auto bad_model = run_cli({"inspect", "--model", "/nonexistent.forest"});
  EXPECT_EQ(bad_model.code, 2);

  auto bad_engine = run_cli({"predict", "--model", "/nonexistent.forest",
                             "--data", "/nonexistent.csv", "--engine", "warp"});
  EXPECT_EQ(bad_engine.code, 2);

  auto bad_int = run_cli({"gen", "--dataset", "eye", "--rows", "12x",
                          "--out", "/tmp/x.csv"});
  EXPECT_EQ(bad_int.code, 2);
}

}  // namespace
