// Property tests for the exec/layout subsystem: FLInt order-preserving
// threshold narrowing must be exact on adversarial bit patterns (signed
// zeros, denormals, infinities, adjacent patterns), the compact node
// engines must be bit-identical to Forest::predict at every width x
// placement x traversal configuration, width fallback must engage when a
// feature's thresholds cannot be ranked at the narrow width, and the
// narrowed SoA keys must decide exactly like the unified SIMD compare.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "core/flint.hpp"
#include "data/synth.hpp"
#include "exec/layout/compact.hpp"
#include "exec/layout/narrow.hpp"
#include "exec/layout/plan.hpp"
#include "exec/layout/quant4.hpp"
#include "exec/simd/soa.hpp"
#include "predict/predictor.hpp"
#include "trees/forest.hpp"
#include "trees/tree_stats.hpp"

namespace {

namespace layout = flint::exec::layout;
using flint::core::to_radix_key;
using flint::core::total_order;

/// Adversarial float pool: special patterns, their bit neighbors, and the
/// neighbors of every value in `seed_values`.
std::vector<float> adversarial_pool(std::vector<float> seed_values) {
  std::vector<float> pool = {0.0f,
                             -0.0f,
                             std::numeric_limits<float>::denorm_min(),
                             -std::numeric_limits<float>::denorm_min(),
                             std::numeric_limits<float>::min(),
                             -std::numeric_limits<float>::min(),
                             std::numeric_limits<float>::infinity(),
                             -std::numeric_limits<float>::infinity(),
                             std::numeric_limits<float>::max(),
                             std::numeric_limits<float>::lowest(),
                             1.0f,
                             -1.0f,
                             3.5f,
                             -3.5f};
  pool.insert(pool.end(), seed_values.begin(), seed_values.end());
  // Adjacent bit patterns of everything so far (one ulp in both directions
  // through the raw integer reading), skipping NaNs and the int32 edges
  // (si_bits(-0.0f) is INT32_MIN; stepping past it has no neighbor).
  const std::size_t base = pool.size();
  for (std::size_t i = 0; i < base; ++i) {
    const std::int64_t bits = flint::core::si_bits(pool[i]);
    for (const int delta : {-1, 1}) {
      const std::int64_t nb = bits + delta;
      if (nb < std::numeric_limits<std::int32_t>::min() ||
          nb > std::numeric_limits<std::int32_t>::max()) {
        continue;
      }
      const float v =
          flint::core::from_si_bits<float>(static_cast<std::int32_t>(nb));
      if (!std::isnan(v)) pool.push_back(v);
    }
  }
  return pool;
}

TEST(KeyTable, RankPreservesFlintOrderOnAdversarialThresholds) {
  const auto thresholds = adversarial_pool({});
  layout::KeyTable<float> table;
  for (const float t : thresholds) table.sorted.push_back(to_radix_key(t));
  std::sort(table.sorted.begin(), table.sorted.end());
  table.sorted.erase(std::unique(table.sorted.begin(), table.sorted.end()),
                     table.sorted.end());

  // Probe values: the thresholds themselves, their neighbors, randoms.
  auto probes = adversarial_pool(thresholds);
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<float> uniform(-1e6f, 1e6f);
  for (int i = 0; i < 200; ++i) probes.push_back(uniform(rng));

  for (const float x : probes) {
    const std::int32_t rx = table.rank(x);
    for (const float t : thresholds) {
      const std::int32_t rt = table.rank(t);
      // x <= t in the FLInt total order iff rank(x) <= rank(t): the
      // narrowing contract every compact node relies on.
      const bool flint_le = total_order(x, t) <= 0;
      ASSERT_EQ(rx <= rt, flint_le)
          << "x=" << x << " t=" << t << " rank(x)=" << rx
          << " rank(t)=" << rt;
    }
  }
}

TEST(KeyTable, StrictOrderOnAdjacentBitPatterns) {
  // Adjacent representable floats must get strictly increasing ranks when
  // both are in the table — narrowing may never merge distinct thresholds.
  const float base = 1.5f;
  const auto bits = flint::core::si_bits(base);
  layout::KeyTable<float> table;
  for (int d = -3; d <= 3; ++d) {
    table.sorted.push_back(to_radix_key(flint::core::from_si_bits<float>(
        bits + d)));
  }
  std::sort(table.sorted.begin(), table.sorted.end());
  for (std::size_t i = 0; i + 1 < table.sorted.size(); ++i) {
    ASSERT_LT(table.sorted[i], table.sorted[i + 1]);
    ASSERT_LT(table.rank_of_key(table.sorted[i]),
              table.rank_of_key(table.sorted[i + 1]));
  }
}

TEST(KeyTable, BuildFromForestCoversEverySplitExactly) {
  const auto data =
      flint::data::generate<float>(flint::data::magic_spec(), 11, 900);
  flint::trees::ForestOptions opt;
  opt.n_trees = 5;
  opt.tree.max_depth = 8;
  const auto forest = flint::trees::train_forest(data, opt);
  const auto tables = layout::build_key_tables(forest);
  ASSERT_EQ(tables.features.size(), forest.feature_count());
  for (std::size_t t = 0; t < forest.size(); ++t) {
    for (const auto& n : forest.tree(t).nodes()) {
      if (n.is_leaf()) continue;
      const float split = n.split == 0.0f ? 0.0f : n.split;
      const auto& table =
          tables.features[static_cast<std::size_t>(n.feature)];
      const auto rank =
          static_cast<std::size_t>(table.rank_of_key(to_radix_key(split)));
      ASSERT_LT(rank, table.size());
      EXPECT_EQ(table.sorted[rank], to_radix_key(split));
    }
  }
}

// ---------------------------------------------------------------------------
// Engine bit-identity across width x placement x traversal.
// ---------------------------------------------------------------------------

class LayoutEngine : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto data =
        flint::data::generate<float>(flint::data::magic_spec(), 5, 1200);
    flint::trees::ForestOptions opt;
    opt.n_trees = 9;
    opt.tree.max_depth = 10;
    opt.tree.max_features = flint::trees::TrainOptions::kSqrtFeatures;
    forest_ = flint::trees::train_forest(data, opt);
    tables_ = layout::build_key_tables(forest_);
  }

  std::vector<float> adversarial_features(std::size_t n, std::uint64_t seed) {
    std::vector<float> splits;
    for (std::size_t t = 0; t < forest_.size(); ++t) {
      for (const auto& nd : forest_.tree(t).nodes()) {
        if (!nd.is_leaf()) splits.push_back(nd.split);
      }
    }
    const auto pool = adversarial_pool(splits);
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
    std::uniform_int_distribution<int> kind(0, 2);
    std::uniform_real_distribution<float> uniform(-50.0f, 50.0f);
    std::vector<float> features(n * forest_.feature_count());
    for (auto& v : features) {
      v = kind(rng) == 0 ? pool[pick(rng)] : uniform(rng);
    }
    return features;
  }

  flint::trees::Forest<float> forest_;
  layout::KeyTableSet<float> tables_;
};

TEST_F(LayoutEngine, BitIdenticalAcrossWidthPlacementTraversal) {
  const std::size_t n = 523;  // prime: partial blocks everywhere
  const auto features = adversarial_features(n, 3);
  const std::size_t cols = forest_.feature_count();
  std::vector<std::int32_t> expected(n);
  for (std::size_t s = 0; s < n; ++s) {
    expected[s] = forest_.predict({features.data() + s * cols, cols});
  }
  for (const auto width : {layout::NodeWidth::C16, layout::NodeWidth::C8}) {
    for (const std::size_t hot_depth : {std::size_t{0}, std::size_t{3}}) {
      for (const std::size_t interleave : {std::size_t{1}, std::size_t{8}}) {
        layout::LayoutPlan plan;
        plan.width = width;
        plan.hot_depth = hot_depth;
        plan.interleave = interleave;
        plan.block_size = 48;
        plan.prefetch_opposite = hot_depth != 0;
        const layout::LayoutForestEngine<float> engine(forest_, plan,
                                                       tables_);
        EXPECT_EQ(engine.node_bytes(),
                  width == layout::NodeWidth::C16 ? 16u : 8u);
        EXPECT_EQ(engine.hot_node_count() > 0, hot_depth > 0);
        std::vector<std::int32_t> out(n, -1);
        engine.predict_batch(features.data(), n, out.data());
        ASSERT_EQ(out, expected) << plan.describe();
        // Small batches route through the interleaved latency path; the
        // head of the batch must agree with the blocked result.
        std::vector<std::int32_t> small(3, -1);
        engine.predict_batch(features.data(), 3, small.data());
        for (std::size_t s = 0; s < 3; ++s) {
          ASSERT_EQ(small[s], expected[s]) << plan.describe();
        }
        ASSERT_EQ(engine.predict({features.data(), cols}), expected[0])
            << plan.describe();
      }
    }
  }
}

TEST_F(LayoutEngine, ScalarLockstepPathMatchesVectorPath) {
  // FLINT_LAYOUT_FORCE_SCALAR pins the portable blocked loop, so this
  // covers it even on hosts where the AVX2 kernel would always dispatch.
  const std::size_t n = 211;
  const auto features = adversarial_features(n, 23);
  const std::size_t cols = forest_.feature_count();
  std::vector<std::int32_t> expected(n);
  for (std::size_t s = 0; s < n; ++s) {
    expected[s] = forest_.predict({features.data() + s * cols, cols});
  }
  setenv("FLINT_LAYOUT_FORCE_SCALAR", "1", 1);
  for (const auto width : {layout::NodeWidth::C16, layout::NodeWidth::C8}) {
    layout::LayoutPlan plan;
    plan.width = width;
    plan.block_size = 32;
    plan.prefetch_opposite = true;
    const layout::LayoutForestEngine<float> engine(forest_, plan, tables_);
    std::vector<std::int32_t> out(n, -1);
    engine.predict_batch(features.data(), n, out.data());
    EXPECT_EQ(out, expected) << plan.describe();
  }
  unsetenv("FLINT_LAYOUT_FORCE_SCALAR");
}

TEST_F(LayoutEngine, PackedInvariants) {
  layout::LayoutPlan plan;
  plan.width = layout::NodeWidth::C16;
  plan.hot_depth = 2;
  std::string why;
  const auto packed = layout::try_pack<float, layout::CompactNode16>(
      forest_, plan, tables_, &why);
  ASSERT_TRUE(packed.has_value()) << why;
  EXPECT_EQ(packed->nodes.size(), forest_.total_nodes());
  EXPECT_EQ(packed->roots.size(), forest_.size());
  EXPECT_GT(packed->hot_nodes, 0u);
  EXPECT_LT(packed->hot_nodes, packed->nodes.size());
  std::size_t leaves = 0;
  for (std::size_t i = 0; i < packed->nodes.size(); ++i) {
    const auto& nd = packed->nodes[i];
    if (nd.right_off < 0) {
      ++leaves;
      EXPECT_GE(nd.key, 0);
      EXPECT_LT(nd.key, forest_.num_classes());
    } else {
      // Implicit left child and forward-only right offsets.
      ASSERT_LT(i + 1, packed->nodes.size());
      ASSERT_LT(i + static_cast<std::size_t>(nd.right_off),
                packed->nodes.size());
      EXPECT_GE(nd.feature, 0);
      EXPECT_LT(static_cast<std::size_t>(nd.feature),
                forest_.feature_count());
    }
  }
  std::size_t expected_leaves = 0;
  for (std::size_t t = 0; t < forest_.size(); ++t) {
    expected_leaves += forest_.tree(t).leaf_count();
  }
  EXPECT_EQ(leaves, expected_leaves);
}

// ---------------------------------------------------------------------------
// Width fallback when thresholds cannot be ranked narrow.
// ---------------------------------------------------------------------------

/// One tree with > 32767 distinct thresholds on feature 0 (a right-leaning
/// chain), so int16 ranks cannot represent the table.
flint::trees::Forest<float> wide_threshold_forest(std::int32_t splits) {
  flint::trees::Tree<float> tree(1);
  std::int32_t prev = -1;
  for (std::int32_t i = 0; i < splits; ++i) {
    const auto split = tree.add_split(0, static_cast<float>(i));
    const auto leaf = tree.add_leaf(i % 2);
    if (prev >= 0) {
      tree.link(prev, tree.node(prev).left, split);
    }
    tree.link(split, leaf, split);  // right patched next iteration / below
    prev = split;
  }
  const auto last = tree.add_leaf(0);
  tree.link(prev, tree.node(prev).left, last);
  return flint::trees::Forest<float>(
      std::vector<flint::trees::Tree<float>>{std::move(tree)}, 2);
}

TEST(LayoutFallback, NarrowWidthRejectedWideWidthServes) {
  const auto forest = wide_threshold_forest(33000);
  const auto tables = layout::build_key_tables(forest);
  EXPECT_FALSE(tables.fits_int16());
  layout::NarrowFit fit;
  fit.ranks_fit_int16 = tables.fits_int16();
  fit.feature_count = forest.feature_count();
  fit.num_classes = forest.num_classes();
  EXPECT_FALSE(layout::width_fits(layout::NodeWidth::C8, fit));
  EXPECT_FALSE(layout::width_unfit_reason(layout::NodeWidth::C8, fit).empty());
  EXPECT_TRUE(layout::width_fits(layout::NodeWidth::C16, fit));

  // Pinning c8 must throw; auto must still serve, bit-identically.
  EXPECT_THROW((void)flint::predict::make_predictor(forest, "layout:c8"),
               std::invalid_argument);
  const auto predictor = flint::predict::make_predictor(forest, "layout:auto");
  std::vector<float> xs = {-1.0f, 0.5f, 123.5f, 5000.25f, 32999.5f, 40000.0f};
  for (const float x : xs) {
    EXPECT_EQ(predictor->predict_one({&x, 1}), forest.predict({&x, 1}))
        << "x=" << x;
  }
}

// ---------------------------------------------------------------------------
// Auto-tuner decisions.
// ---------------------------------------------------------------------------

TEST(AutoPlan, SmallModelStaysWideCachedAndUnslabbed) {
  flint::trees::ForestStats stats;
  stats.trees.resize(10);
  stats.total_nodes = 1000;  // 16 KiB at c16: fits any L2
  stats.max_depth = 8;
  layout::NarrowFit fit{true, 10, 4};
  const layout::CacheInfo cache{256 * 1024, 8 * 1024 * 1024};
  const auto plan = layout::auto_plan(stats, fit, 64, cache);
  EXPECT_EQ(plan.width, layout::NodeWidth::C16);
  EXPECT_EQ(plan.hot_depth, 0u);
  EXPECT_FALSE(plan.prefetch_opposite);
}

TEST(AutoPlan, DeepModelNarrowsBlocksAndPrefetches) {
  flint::trees::ForestStats stats;
  stats.trees.resize(256);
  stats.total_nodes = 4 * 1000 * 1000;  // 64 MiB at c16: beyond LLC
  stats.max_depth = 16;
  stats.mean_leaf_depth = 14.0;
  // Ten features sharing ~2M splits: the rank remap (~10 binary searches)
  // is well amortized by 256 trees x 14 levels of traversal.
  stats.features.resize(10);
  for (auto& f : stats.features) f.splits = 200000;
  layout::NarrowFit fit{true, 10, 4};
  const layout::CacheInfo cache{256 * 1024, 8 * 1024 * 1024};
  // The 4-byte ladder rung wins whenever c8 would have been worth it.
  const auto plan = layout::auto_plan(stats, fit, 64, cache);
  EXPECT_EQ(plan.width, layout::NodeWidth::Q4);
  EXPECT_GT(plan.hot_depth, 0u);
  EXPECT_TRUE(plan.prefetch_opposite);
  EXPECT_GE(plan.interleave, 4u);
  EXPECT_LE(plan.interleave, layout::kMaxInterleave);
  // Demotion protocol: when the Q4 pack or its accuracy contract fails the
  // caller clears allow_q4 and re-plans; the ladder must then land on c8
  // with the same placement shape.
  fit.allow_q4 = false;
  const auto demoted = layout::auto_plan(stats, fit, 64, cache);
  EXPECT_EQ(demoted.width, layout::NodeWidth::C8);
  EXPECT_GT(demoted.hot_depth, 0u);
  EXPECT_TRUE(demoted.prefetch_opposite);
}

// Regression: the smoke model (~360 KiB at c16) sits inside L2 x 2, where
// narrowing buys no bandwidth but still pays the per-block rank remap — the
// auto plan once picked c8 here and lost ~3.5x throughput.  Cache-resident
// models must stay c16, with the q4 rung equally locked out.
TEST(AutoPlan, CacheResidentModelNeverNarrows) {
  flint::trees::ForestStats stats;
  stats.trees.resize(24);
  stats.total_nodes = 23000;  // ~360 KiB at c16: within 2x of a 256 KiB L2
  stats.max_depth = 10;
  stats.mean_leaf_depth = 8.0;
  stats.features.resize(10);
  for (auto& f : stats.features) f.splits = 1000;
  layout::NarrowFit fit{true, 10, 2};
  const layout::CacheInfo cache{256 * 1024, 8 * 1024 * 1024};
  const auto plan = layout::auto_plan(stats, fit, 64, cache);
  EXPECT_EQ(plan.width, layout::NodeWidth::C16);
}

TEST(AutoPlan, UnnarrowableModelFallsBackToWide) {
  flint::trees::ForestStats stats;
  stats.trees.resize(4);
  stats.total_nodes = 4 * 1000 * 1000;
  stats.max_depth = 20;
  layout::NarrowFit fit;
  fit.ranks_fit_int16 = false;
  fit.feature_count = std::size_t{1} << 33;  // no int32 feature field either
  fit.num_classes = 2;
  const layout::CacheInfo cache{256 * 1024, 8 * 1024 * 1024};
  const auto plan = layout::auto_plan(stats, fit, 64, cache);
  EXPECT_EQ(plan.width, layout::NodeWidth::Wide);
}

// ---------------------------------------------------------------------------
// Cache probe fallback chain (regression: sysconf(_SC_LEVEL*_CACHE_SIZE)
// returns -1/0 on musl and in many containers, which used to leave the
// tuner with zero cache sizes; the chain now falls back to sysfs, then to
// documented clamped defaults).
// ---------------------------------------------------------------------------

TEST(CacheProbe, ParsesSysfsSizeStrings) {
  EXPECT_EQ(layout::parse_sysfs_cache_size("512K"), 512u << 10);
  EXPECT_EQ(layout::parse_sysfs_cache_size("512K\n"), 512u << 10);
  EXPECT_EQ(layout::parse_sysfs_cache_size("8M"), 8u << 20);
  EXPECT_EQ(layout::parse_sysfs_cache_size("1G"), std::size_t{1} << 30);
  EXPECT_EQ(layout::parse_sysfs_cache_size("4096"), 4096u);  // plain bytes
  EXPECT_EQ(layout::parse_sysfs_cache_size(" 64k "), 64u << 10);
  EXPECT_EQ(layout::parse_sysfs_cache_size(""), 0u);
  EXPECT_EQ(layout::parse_sysfs_cache_size("K"), 0u);
  EXPECT_EQ(layout::parse_sysfs_cache_size("12Q"), 0u);
  EXPECT_EQ(layout::parse_sysfs_cache_size("12K extra"), 0u);
}

class FakeSysfsCache : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) / "flint_fake_cache";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void add_index(const std::string& name, const std::string& level,
                 const std::string& type, const std::string& size) {
    const auto index = dir_ / name;
    std::filesystem::create_directories(index);
    std::ofstream(index / "level") << level << "\n";
    std::ofstream(index / "type") << type << "\n";
    std::ofstream(index / "size") << size << "\n";
  }

  std::filesystem::path dir_;
};

TEST_F(FakeSysfsCache, ReadsLevelsAndSkipsInstructionCaches) {
  add_index("index0", "1", "Data", "32K");
  add_index("index1", "1", "Instruction", "32K");
  add_index("index2", "2", "Unified", "512K");
  add_index("index3", "3", "Unified", "16384K");
  const auto info = layout::cache_info_from_sysfs(dir_.string());
  EXPECT_EQ(info.l2_bytes, 512u << 10);
  EXPECT_EQ(info.llc_bytes, 16384u << 10);
}

TEST_F(FakeSysfsCache, MissingOrPartialTopologyLeavesZeros) {
  // Empty dir and a non-existent dir both yield zeros (chain continues).
  EXPECT_EQ(layout::cache_info_from_sysfs(dir_.string()).l2_bytes, 0u);
  EXPECT_EQ(layout::cache_info_from_sysfs("/nonexistent/cache").l2_bytes, 0u);
  // An L2-only topology (no L3, common on small VMs) fills only l2.
  add_index("index0", "2", "Unified", "1024K");
  const auto info = layout::cache_info_from_sysfs(dir_.string());
  EXPECT_EQ(info.l2_bytes, 1024u << 10);
  EXPECT_EQ(info.llc_bytes, 0u);
  // Unparseable size files are skipped, not misread.
  add_index("index1", "3", "Unified", "garbage");
  EXPECT_EQ(layout::cache_info_from_sysfs(dir_.string()).llc_bytes, 0u);
}

TEST(CacheProbe, SanitizeFillsDefaultsAndClamps) {
  // The documented defaults when every probe fails: 1 MiB L2, 8 MiB LLC.
  const auto defaults = layout::sanitize_cache_info({});
  EXPECT_EQ(defaults.l2_bytes, std::size_t{1} << 20);
  EXPECT_EQ(defaults.llc_bytes, std::size_t{8} << 20);
  // Implausible probe results are clamped into sane bounds.
  const auto tiny = layout::sanitize_cache_info({1, 1});
  EXPECT_EQ(tiny.l2_bytes, std::size_t{32} << 10);
  EXPECT_EQ(tiny.llc_bytes, std::size_t{512} << 10);
  const auto huge = layout::sanitize_cache_info(
      {std::size_t{1} << 40, std::size_t{1} << 40});
  EXPECT_EQ(huge.l2_bytes, std::size_t{64} << 20);
  EXPECT_EQ(huge.llc_bytes, std::size_t{1} << 30);
  // The LLC is never reported smaller than L2.
  const auto inverted =
      layout::sanitize_cache_info({16u << 20, 1u << 20});
  EXPECT_GE(inverted.llc_bytes, inverted.l2_bytes);
}

TEST(CacheProbe, DetectNeverReturnsZeroSizes) {
  // The regression: in containers where sysconf reports -1/0 the old probe
  // returned zero fields and the tuner mis-sized the hot slab.  The chain
  // must now always end in plausible non-zero values.
  const auto info = layout::detect_cache_info();
  EXPECT_GE(info.l2_bytes, std::size_t{32} << 10);
  EXPECT_LE(info.l2_bytes, std::size_t{64} << 20);
  EXPECT_GE(info.llc_bytes, std::size_t{512} << 10);
  EXPECT_LE(info.llc_bytes, std::size_t{1} << 30);
  EXPECT_GE(info.llc_bytes, info.l2_bytes);
}

// ---------------------------------------------------------------------------
// Narrowed SoA keys decide exactly like the unified SIMD compare.
// ---------------------------------------------------------------------------

TEST_F(LayoutEngine, SoaNarrowKeysMatchUnifiedCompare) {
  flint::exec::simd::SoaForest<float> soa(forest_);
  EXPECT_TRUE(soa.narrow_key.empty());
  soa.build_narrow_keys(tables_);
  ASSERT_EQ(soa.narrow_key.size(), soa.node_count());

  const auto features = adversarial_features(64, 17);
  for (std::size_t n = 0; n < soa.node_count(); ++n) {
    if (soa.feature[n] < 0) {
      // Leaves mirror the class id.
      EXPECT_EQ(soa.narrow_key[n],
                static_cast<std::int32_t>(soa.threshold[n]));
      continue;
    }
    const auto& table =
        tables_.features[static_cast<std::size_t>(soa.feature[n])];
    for (const float x : features) {
      const auto xi = flint::core::si_bits(x);
      const bool unified = (xi ^ soa.xor_mask[n]) <= soa.threshold[n];
      const bool narrow = table.rank(x) <= soa.narrow_key[n];
      ASSERT_EQ(unified, narrow)
          << "node " << n << " x=" << x << " split=" << soa.split[n];
    }
  }
}

TEST(LayoutDouble, DoubleWidthEnginesMatchForestPredict) {
  const auto data =
      flint::data::generate<double>(flint::data::wine_spec(), 3, 700);
  flint::trees::ForestOptions opt;
  opt.n_trees = 5;
  opt.tree.max_depth = 8;
  const auto forest = flint::trees::train_forest(data, opt);
  for (const char* backend :
       {"layout:auto", "layout:c16", "layout:c8", "layout:q4"}) {
    const auto predictor = flint::predict::make_predictor(forest, backend);
    std::vector<std::int32_t> out(data.rows());
    predictor->predict_batch(data, out);
    for (std::size_t r = 0; r < data.rows(); ++r) {
      ASSERT_EQ(out[r], forest.predict(data.row(r)))
          << backend << " row " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// The 4-byte quantized format: geometry, pack invariants, engine
// bit-identity on both key widths, and the contract bookkeeping.
// ---------------------------------------------------------------------------

TEST_F(LayoutEngine, Q4PackGeometryAndInvariants) {
  layout::LayoutPlan plan;
  plan.width = layout::NodeWidth::Q4;
  plan.hot_depth = 2;
  std::string why;
  const auto packed =
      layout::try_pack_q4<float>(forest_, plan, tables_, false, &why);
  ASSERT_TRUE(packed.has_value()) << why;
  const auto& g = packed->geom;
  EXPECT_EQ(g.key_bits + g.feature_bits + g.offset_bits, 31u);
  EXPECT_GE(g.key_bits, 8u);
  EXPECT_LE(g.key_bits, 16u);
  EXPECT_GE(g.feature_bits, 1u);
  EXPECT_GE(g.offset_bits, 1u);
  // magic's rank tables fit comfortably: the bit-exact contract must hold.
  EXPECT_TRUE(packed->exact());
  EXPECT_TRUE(packed->qplan.accuracy_contract());
  EXPECT_EQ(packed->nodes.size(), forest_.total_nodes());
  EXPECT_EQ(packed->roots.size(), forest_.size());
  EXPECT_GT(packed->hot_nodes, 0u);
  EXPECT_FALSE(packed->has_special);
  EXPECT_TRUE(packed->flags.empty());
  std::size_t leaves = 0;
  for (std::size_t i = 0; i < packed->nodes.size(); ++i) {
    const std::uint32_t w = packed->nodes[i].word;
    if (g.is_leaf(w)) {
      ++leaves;
      EXPECT_LT(g.key_of(w),
                static_cast<std::uint32_t>(forest_.num_classes()));
      EXPECT_EQ(g.feature_of(w), 0u);
      EXPECT_EQ(g.offset_of(w), 0u);
    } else {
      ASSERT_LT(i + 1, packed->nodes.size());  // implicit left child
      ASSERT_LT(i + g.offset_of(w), packed->nodes.size());
      EXPECT_GE(g.offset_of(w), 2u);  // right child is past the left subtree
      EXPECT_LT(g.feature_of(w),
                static_cast<std::uint32_t>(forest_.feature_count()));
    }
  }
  std::size_t expected_leaves = 0;
  for (std::size_t t = 0; t < forest_.size(); ++t) {
    expected_leaves += forest_.tree(t).leaf_count();
  }
  EXPECT_EQ(leaves, expected_leaves);
}

TEST_F(LayoutEngine, Q4EngineBitIdenticalOnVectorScalarAndLatencyPaths) {
  const std::size_t n = 523;
  const auto features = adversarial_features(n, 29);
  const std::size_t cols = forest_.feature_count();
  std::vector<std::int32_t> expected(n);
  for (std::size_t s = 0; s < n; ++s) {
    expected[s] = forest_.predict({features.data() + s * cols, cols});
  }
  for (const std::size_t hot_depth : {std::size_t{0}, std::size_t{3}}) {
    layout::LayoutPlan plan;
    plan.width = layout::NodeWidth::Q4;
    plan.hot_depth = hot_depth;
    plan.block_size = 48;
    const layout::Q4ForestEngine<float> engine(forest_, plan, tables_);
    EXPECT_EQ(engine.node_bytes(), 4u);
    std::vector<std::int32_t> out(n, -1);
    engine.predict_batch(features.data(), n, out.data());
    ASSERT_EQ(out, expected) << "hot_depth=" << hot_depth;
    // Small batches route through the interleaved latency path.
    std::vector<std::int32_t> small(3, -1);
    engine.predict_batch(features.data(), 3, small.data());
    for (std::size_t s = 0; s < 3; ++s) ASSERT_EQ(small[s], expected[s]);
    ASSERT_EQ(engine.predict({features.data(), cols}), expected[0]);
  }
  // Scalar lockstep path pinned via the env override.
  setenv("FLINT_LAYOUT_FORCE_SCALAR", "1", 1);
  layout::LayoutPlan plan;
  plan.width = layout::NodeWidth::Q4;
  plan.block_size = 32;
  const layout::Q4ForestEngine<float> engine(forest_, plan, tables_);
  std::vector<std::int32_t> out(n, -1);
  engine.predict_batch(features.data(), n, out.data());
  EXPECT_EQ(out, expected);
  unsetenv("FLINT_LAYOUT_FORCE_SCALAR");
}

/// One-feature forest over an explicit threshold list (right-leaning
/// chain), so the rank-table size — and with it the q4 key span / int8 vs
/// int16 column-block width — is chosen by the test.
flint::trees::Forest<float> chain_forest(const std::vector<float>& thresholds) {
  flint::trees::Tree<float> tree(1);
  std::int32_t prev = -1;
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    const auto split = tree.add_split(0, thresholds[i]);
    const auto leaf = tree.add_leaf(static_cast<std::int32_t>(i % 2));
    if (prev >= 0) tree.link(prev, tree.node(prev).left, split);
    tree.link(split, leaf, split);  // right patched next iteration / below
    prev = split;
  }
  const auto last = tree.add_leaf(0);
  tree.link(prev, tree.node(prev).left, last);
  return flint::trees::Forest<float>(
      std::vector<flint::trees::Tree<float>>{std::move(tree)}, 2);
}

// Adversarial narrowing at both quantized key widths: thresholds drawn
// from the special-pattern pool (signed zeros, denormals, infinities,
// adjacent bit patterns) must route bit-identically through the 4-byte
// image, whether the batch column block narrows to int8 (small span) or
// stays int16 (table > 255 ranks).
TEST(Q4Narrow, AdversarialThresholdsExactAtInt8AndInt16KeySpans) {
  // int8 span: the adversarial pool dedupes to well under 255 thresholds.
  std::vector<float> small_thresholds;
  for (const float t : adversarial_pool({})) {
    if (!std::isnan(t)) small_thresholds.push_back(t);
  }
  // int16 span: > 255 distinct thresholds forces the uint16 column block.
  std::vector<float> big_thresholds = small_thresholds;
  for (int i = 0; i < 300; ++i) {
    big_thresholds.push_back(static_cast<float>(i) * 0.5f + 100.0f);
  }
  for (const auto* thresholds : {&small_thresholds, &big_thresholds}) {
    const auto forest = chain_forest(*thresholds);
    const auto tables = layout::build_key_tables(forest);
    layout::LayoutPlan plan;
    plan.width = layout::NodeWidth::Q4;
    const layout::Q4ForestEngine<float> engine(forest, plan, tables);
    ASSERT_TRUE(engine.packed().exact());
    const bool int8_block = engine.packed().max_key_span() <= 255;
    EXPECT_EQ(int8_block, thresholds == &small_thresholds);
    // Probes: thresholds, their bit neighbors, specials, uniforms.
    auto probes = adversarial_pool(*thresholds);
    std::mt19937_64 rng(31);
    std::uniform_real_distribution<float> uniform(-300.0f, 300.0f);
    for (int i = 0; i < 128; ++i) probes.push_back(uniform(rng));
    std::vector<std::int32_t> out(probes.size(), -1);
    engine.predict_batch(probes.data(), probes.size(), out.data());
    for (std::size_t s = 0; s < probes.size(); ++s) {
      ASSERT_EQ(out[s], forest.predict({&probes[s], 1}))
          << (int8_block ? "int8" : "int16") << " span, probe bits 0x"
          << std::hex << flint::core::si_bits(probes[s]);
      ASSERT_EQ(engine.predict({&probes[s], 1}), out[s]);
    }
  }
}

TEST(Q4Contract, OversizedTableGoesAffineAndReportsCollapse) {
  // 70k distinct thresholds cannot fit 16-bit keys: the feature must fall
  // back to affine, collapse thresholds, and fail the accuracy contract —
  // exactly the signal the auto ladder demotes on.
  std::vector<float> thresholds(70000);
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    thresholds[i] = static_cast<float>(i);
  }
  const auto forest = chain_forest(thresholds);
  const auto tables = layout::build_key_tables(forest);
  layout::LayoutPlan plan;
  plan.width = layout::NodeWidth::Q4;
  std::string why;
  const auto packed =
      layout::try_pack_q4<float>(forest, plan, tables, false, &why);
  ASSERT_TRUE(packed.has_value()) << why;
  EXPECT_FALSE(packed->exact());
  EXPECT_FALSE(packed->qplan.accuracy_contract());
  EXPECT_LT(packed->qplan.min_fitness(), 1.0);
  const auto& fq = packed->qplan.features[0];
  EXPECT_EQ(fq.distinct, thresholds.size());
  EXPECT_LT(fq.quantized_distinct, fq.distinct);
  // A pinned lossy engine still constructs and serves monotone routing.
  const layout::Q4ForestEngine<float> engine(*packed, plan);
  const float probe = 12345.0f;
  (void)engine.predict({&probe, 1});
}

TEST(Q4Contract, ForceAffineKeepsContractOnSmallTables) {
  // quant:affine's pack path: every tested feature affine.  On a forest
  // whose per-feature thresholds are far fewer than the key range, the
  // affine map keeps all of them distinct — lossy contract, but the
  // accuracy contract (and the fitness report) says no threshold merged.
  const auto data =
      flint::data::generate<float>(flint::data::wine_spec(), 19, 600);
  flint::trees::ForestOptions opt;
  opt.n_trees = 4;
  opt.tree.max_depth = 6;
  const auto forest = flint::trees::train_forest(data, opt);
  const auto tables = layout::build_key_tables(forest);
  layout::LayoutPlan plan;
  plan.width = layout::NodeWidth::Q4;
  std::string why;
  const auto packed = layout::try_pack_q4<float>(forest, plan, tables,
                                                 /*force_affine=*/true, &why);
  ASSERT_TRUE(packed.has_value()) << why;
  EXPECT_FALSE(packed->exact());
  for (std::size_t f = 0; f < packed->qplan.features.size(); ++f) {
    if (tables.features[f].size() == 0) continue;
    EXPECT_FALSE(packed->qplan.features[f].exact()) << "feature " << f;
  }
}

}  // namespace
