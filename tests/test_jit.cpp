// Unit tests for the compile-and-dlopen JIT runtime and its compile cache.
#include <gtest/gtest.h>

#include <filesystem>

#include "codegen/emit.hpp"
#include "jit/cache.hpp"
#include "jit/jit.hpp"
#include "predict/predictor.hpp"
#include "trees/forest.hpp"
#include "trees/tree.hpp"

namespace {

using flint::codegen::SourceFile;
using flint::jit::compile;
using flint::jit::JitOptions;

TEST(Jit, CompilesAndResolvesSymbol) {
  const std::vector<SourceFile> sources{
      {"f.c", "int forty_two(void) { return 42; }\n"}};
  const auto module = compile(sources);
  auto* fn = module.function<int(void)>("forty_two");
  EXPECT_EQ(fn(), 42);
  EXPECT_GT(module.object_size(), 0u);
}

TEST(Jit, MissingSymbolThrows) {
  const std::vector<SourceFile> sources{{"f.c", "int f(void) { return 1; }\n"}};
  const auto module = compile(sources);
  EXPECT_THROW((void)module.raw_symbol("nope"), std::runtime_error);
}

TEST(Jit, CompileErrorCarriesDiagnostics) {
  const std::vector<SourceFile> sources{{"bad.c", "int f(void) { syntax !!! }\n"}};
  try {
    (void)compile(sources);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("compilation failed"), std::string::npos);
    EXPECT_NE(what.find("error"), std::string::npos) << what;
  }
}

TEST(Jit, EmptySourcesThrow) {
  EXPECT_THROW((void)compile(std::vector<SourceFile>{}), std::invalid_argument);
}

TEST(Jit, BadOptLevelThrows) {
  const std::vector<SourceFile> sources{{"f.c", "int f(void){return 0;}\n"}};
  JitOptions opt;
  opt.opt_level = 9;
  EXPECT_THROW((void)compile(sources, opt), std::invalid_argument);
}

TEST(Jit, UnsafeFlagRejected) {
  const std::vector<SourceFile> sources{{"f.c", "int f(void){return 0;}\n"}};
  JitOptions opt;
  opt.extra_flags = {"-DX=1; rm -rf /"};
  EXPECT_THROW((void)compile(sources, opt), std::invalid_argument);
}

TEST(Jit, UnsafeSourceNameRejected) {
  const std::vector<SourceFile> sources{{"a b.c", "int f(void){return 0;}\n"}};
  EXPECT_THROW((void)compile(sources), std::invalid_argument);
}

TEST(Jit, ScratchDirRemovedOnDestruction) {
  std::string dir;
  {
    const std::vector<SourceFile> sources{{"f.c", "int f(void){return 7;}\n"}};
    const auto module = compile(sources);
    dir = module.dir();
    EXPECT_TRUE(std::filesystem::exists(dir));
  }
  EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST(Jit, KeepArtifactsLeavesSourcesOnDisk) {
  std::string dir;
  {
    const std::vector<SourceFile> sources{{"f.c", "int f(void){return 7;}\n"}};
    JitOptions opt;
    opt.keep_artifacts = true;
    const auto module = compile(sources, opt);
    dir = module.dir();
  }
  EXPECT_TRUE(std::filesystem::exists(dir + "/f.c"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/module.so"));
  std::filesystem::remove_all(dir);
}

TEST(Jit, MixedCAndAssemblySources) {
  const std::vector<SourceFile> sources{
      {"tree.s",
       "\t.text\n\t.globl\tasm_three\n\t.type\tasm_three, @function\n"
       "asm_three:\n\tmovl\t$3, %eax\n\tret\n"
       "\t.section\t.note.GNU-stack,\"\",@progbits\n"},
      {"driver.c",
       "extern int asm_three(void);\n"
       "int via_asm(void) { return asm_three() + 1; }\n"}};
  const auto module = compile(sources);
  EXPECT_EQ(module.function<int(void)>("via_asm")(), 4);
}

TEST(Jit, MoveTransfersOwnership) {
  const std::vector<SourceFile> sources{{"f.c", "int f(void){return 9;}\n"}};
  auto a = compile(sources);
  const std::string dir = a.dir();
  auto b = std::move(a);
  EXPECT_EQ(b.function<int(void)>("f")(), 9);
  EXPECT_EQ(b.dir(), dir);
}

// ---------------------------------------------------------------------------
// Compile cache: one module per distinct content key, shared thereafter.
// ---------------------------------------------------------------------------

TEST(CompileCache, SameKeyHitsGeneratorRunsOnce) {
  auto& cache = flint::jit::CompileCache::instance();
  cache.clear();
  int generator_runs = 0;
  const auto make = [&] {
    ++generator_runs;
    flint::codegen::GeneratedCode code;
    code.files = {{"g.c", "int g(void){return 7;}\n"}};
    code.classify_symbol = "g";
    code.flavor = "test";
    return code;
  };
  bool hit = true;
  double ms = -1.0;
  const auto first = cache.get_or_compile(0xABCDu, make, {}, &hit, &ms);
  EXPECT_FALSE(hit);
  EXPECT_GT(ms, 0.0);
  EXPECT_EQ(generator_runs, 1);
  const auto second = cache.get_or_compile(0xABCDu, make, {}, &hit, &ms);
  EXPECT_TRUE(hit);
  EXPECT_EQ(ms, 0.0);
  EXPECT_EQ(generator_runs, 1);       // generator never re-ran
  EXPECT_EQ(first.get(), second.get());  // same loaded module shared
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

/// Two-leaf stump forest with a controllable root threshold.
flint::trees::Forest<float> stump_forest(float threshold) {
  flint::trees::Tree<float> t(2);
  const auto root = t.add_split(0, threshold);
  const auto l = t.add_leaf(0);
  const auto r = t.add_leaf(1);
  t.link(root, l, r);
  std::vector<flint::trees::Tree<float>> trees;
  trees.push_back(std::move(t));
  return flint::trees::Forest<float>(std::move(trees), 2);
}

TEST(CompileCache, JitLayoutReusesModulesAcrossPredictors) {
  auto& cache = flint::jit::CompileCache::instance();
  cache.clear();
  const auto forest = stump_forest(0.5f);

  // Same model twice: the second predictor reuses the compiled module.
  (void)flint::predict::make_predictor(forest, "jit:layout");
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  (void)flint::predict::make_predictor(forest, "jit:layout");
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // One mutated threshold changes the content hash: miss + recompile, and
  // the new module really carries the new split.
  const auto mutated = stump_forest(0.75f);
  const auto predictor = flint::predict::make_predictor(mutated, "jit:layout");
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  const float x_left[] = {0.6f, 0.0f};   // 0.5 < 0.6 <= 0.75: left only now
  const float x_right[] = {0.9f, 0.0f};
  EXPECT_EQ(predictor->predict_one(x_left), 0);
  EXPECT_EQ(predictor->predict_one(x_right), 1);
}

}  // namespace
