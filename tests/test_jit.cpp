// Unit tests for the compile-and-dlopen JIT runtime.
#include <gtest/gtest.h>

#include <filesystem>

#include "codegen/emit.hpp"
#include "jit/jit.hpp"

namespace {

using flint::codegen::SourceFile;
using flint::jit::compile;
using flint::jit::JitOptions;

TEST(Jit, CompilesAndResolvesSymbol) {
  const std::vector<SourceFile> sources{
      {"f.c", "int forty_two(void) { return 42; }\n"}};
  const auto module = compile(sources);
  auto* fn = module.function<int(void)>("forty_two");
  EXPECT_EQ(fn(), 42);
  EXPECT_GT(module.object_size(), 0u);
}

TEST(Jit, MissingSymbolThrows) {
  const std::vector<SourceFile> sources{{"f.c", "int f(void) { return 1; }\n"}};
  const auto module = compile(sources);
  EXPECT_THROW((void)module.raw_symbol("nope"), std::runtime_error);
}

TEST(Jit, CompileErrorCarriesDiagnostics) {
  const std::vector<SourceFile> sources{{"bad.c", "int f(void) { syntax !!! }\n"}};
  try {
    (void)compile(sources);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("compilation failed"), std::string::npos);
    EXPECT_NE(what.find("error"), std::string::npos) << what;
  }
}

TEST(Jit, EmptySourcesThrow) {
  EXPECT_THROW((void)compile(std::vector<SourceFile>{}), std::invalid_argument);
}

TEST(Jit, BadOptLevelThrows) {
  const std::vector<SourceFile> sources{{"f.c", "int f(void){return 0;}\n"}};
  JitOptions opt;
  opt.opt_level = 9;
  EXPECT_THROW((void)compile(sources, opt), std::invalid_argument);
}

TEST(Jit, UnsafeFlagRejected) {
  const std::vector<SourceFile> sources{{"f.c", "int f(void){return 0;}\n"}};
  JitOptions opt;
  opt.extra_flags = {"-DX=1; rm -rf /"};
  EXPECT_THROW((void)compile(sources, opt), std::invalid_argument);
}

TEST(Jit, UnsafeSourceNameRejected) {
  const std::vector<SourceFile> sources{{"a b.c", "int f(void){return 0;}\n"}};
  EXPECT_THROW((void)compile(sources), std::invalid_argument);
}

TEST(Jit, ScratchDirRemovedOnDestruction) {
  std::string dir;
  {
    const std::vector<SourceFile> sources{{"f.c", "int f(void){return 7;}\n"}};
    const auto module = compile(sources);
    dir = module.dir();
    EXPECT_TRUE(std::filesystem::exists(dir));
  }
  EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST(Jit, KeepArtifactsLeavesSourcesOnDisk) {
  std::string dir;
  {
    const std::vector<SourceFile> sources{{"f.c", "int f(void){return 7;}\n"}};
    JitOptions opt;
    opt.keep_artifacts = true;
    const auto module = compile(sources, opt);
    dir = module.dir();
  }
  EXPECT_TRUE(std::filesystem::exists(dir + "/f.c"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/module.so"));
  std::filesystem::remove_all(dir);
}

TEST(Jit, MixedCAndAssemblySources) {
  const std::vector<SourceFile> sources{
      {"tree.s",
       "\t.text\n\t.globl\tasm_three\n\t.type\tasm_three, @function\n"
       "asm_three:\n\tmovl\t$3, %eax\n\tret\n"
       "\t.section\t.note.GNU-stack,\"\",@progbits\n"},
      {"driver.c",
       "extern int asm_three(void);\n"
       "int via_asm(void) { return asm_three() + 1; }\n"}};
  const auto module = compile(sources);
  EXPECT_EQ(module.function<int(void)>("via_asm")(), 4);
}

TEST(Jit, MoveTransfersOwnership) {
  const std::vector<SourceFile> sources{{"f.c", "int f(void){return 9;}\n"}};
  auto a = compile(sources);
  const std::string dir = a.dir();
  auto b = std::move(a);
  EXPECT_EQ(b.function<int(void)>("f")(), 9);
  EXPECT_EQ(b.dir(), dir);
}

}  // namespace
