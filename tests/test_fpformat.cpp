// Unit + property tests for the generic binary floating-point format model
// (Definitions 1-4 of the paper).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <random>

#include "fpformat/fpformat.hpp"

namespace {

using namespace flint::fpformat;

TEST(FormatSpec, KnownFormats) {
  EXPECT_EQ(FormatSpec::binary32().total_bits(), 32);
  EXPECT_EQ(FormatSpec::binary32().bias(), 127);
  EXPECT_EQ(FormatSpec::binary64().total_bits(), 64);
  EXPECT_EQ(FormatSpec::binary64().bias(), 1023);
  EXPECT_EQ(FormatSpec::binary16().total_bits(), 16);
  EXPECT_EQ(FormatSpec::binary16().bias(), 15);
  EXPECT_EQ(FormatSpec::bfloat16().total_bits(), 16);
  EXPECT_EQ(FormatSpec::bfloat16().bias(), 127);
  EXPECT_EQ(FormatSpec::tiny8().total_bits(), 8);
}

TEST(FormatSpec, Masks) {
  const auto spec = FormatSpec::binary32();
  EXPECT_EQ(spec.sign_mask(), 0x80000000ull);
  EXPECT_EQ(spec.exponent_mask(), 0x7F800000ull);
  EXPECT_EQ(spec.mantissa_mask(), 0x007FFFFFull);
  EXPECT_EQ(spec.value_mask(), 0xFFFFFFFFull);
  EXPECT_EQ(FormatSpec::binary64().value_mask(), ~0ull);
}

TEST(Interpretation, SignedIntegerSignExtension) {
  const auto spec = FormatSpec::tiny8();
  EXPECT_EQ(signed_value(0x00, spec), 0);
  EXPECT_EQ(signed_value(0x7F, spec), 127);
  EXPECT_EQ(signed_value(0x80, spec), -128);
  EXPECT_EQ(signed_value(0xFF, spec), -1);
  EXPECT_EQ(ui_value(0xFF, spec), 255u);
}

TEST(Interpretation, TwosComplementMinusOnePlusOneWraps) {
  // The paper's Section III-A example: (1,1,1,...) + 1 wraps to 0.
  const auto spec = FormatSpec::tiny8();
  const std::uint64_t minus_one = 0xFF;
  EXPECT_EQ(signed_value(minus_one, spec), -1);
  EXPECT_EQ(signed_value((minus_one + 1) & spec.value_mask(), spec), 0);
}

TEST(Interpretation, Binary32MatchesHost) {
  // FP(B) computed from first principles must match the host's IEEE-754
  // interpretation for every class of value.
  const auto spec = FormatSpec::binary32();
  std::mt19937_64 rng(3);
  for (int i = 0; i < 200'000; ++i) {
    const auto bits = static_cast<std::uint32_t>(rng());
    const float host = std::bit_cast<float>(bits);
    const long double model = fp_value(bits, spec);
    if (std::isnan(host)) {
      EXPECT_TRUE(std::isnan(static_cast<double>(model)));
    } else {
      EXPECT_EQ(static_cast<float>(model), host) << "bits=" << bits;
    }
    EXPECT_EQ(signed_value(bits, spec), std::bit_cast<std::int32_t>(bits));
  }
}

TEST(Interpretation, Binary64MatchesHost) {
  const auto spec = FormatSpec::binary64();
  std::mt19937_64 rng(5);
  for (int i = 0; i < 200'000; ++i) {
    const std::uint64_t bits = rng();
    const double host = std::bit_cast<double>(bits);
    const long double model = fp_value(bits, spec);
    if (std::isnan(host)) {
      EXPECT_TRUE(std::isnan(static_cast<double>(model)));
    } else {
      EXPECT_EQ(static_cast<double>(model), host) << "bits=" << bits;
    }
    EXPECT_EQ(signed_value(bits, spec), std::bit_cast<std::int64_t>(bits));
  }
}

TEST(Classify, AllClasses) {
  const auto spec = FormatSpec::binary32();
  EXPECT_EQ(classify(positive_zero(spec), spec), FpClass::Zero);
  EXPECT_EQ(classify(negative_zero(spec), spec), FpClass::Zero);
  EXPECT_EQ(classify(smallest_denormal(spec), spec), FpClass::Denormal);
  EXPECT_EQ(classify(largest_denormal(spec), spec), FpClass::Denormal);
  EXPECT_EQ(classify(smallest_normal(spec), spec), FpClass::Normal);
  EXPECT_EQ(classify(largest_normal(spec), spec), FpClass::Normal);
  EXPECT_EQ(classify(positive_infinity(spec), spec), FpClass::Infinity);
  EXPECT_EQ(classify(negative_infinity(spec), spec), FpClass::Infinity);
  EXPECT_EQ(classify(positive_infinity(spec) | 1, spec), FpClass::NaN);
  EXPECT_FALSE(is_ordered(positive_infinity(spec) | 1, spec));
  EXPECT_TRUE(is_ordered(positive_infinity(spec), spec));
}

TEST(Classify, SpecialPatternValues) {
  const auto spec = FormatSpec::binary32();
  EXPECT_EQ(static_cast<float>(fp_value(positive_zero(spec), spec)), 0.0f);
  EXPECT_EQ(static_cast<float>(fp_value(negative_zero(spec), spec)), -0.0f);
  EXPECT_TRUE(std::signbit(static_cast<float>(fp_value(negative_zero(spec), spec))));
  EXPECT_EQ(static_cast<float>(fp_value(smallest_denormal(spec), spec)),
            std::numeric_limits<float>::denorm_min());
  EXPECT_EQ(static_cast<float>(fp_value(smallest_normal(spec), spec)),
            std::numeric_limits<float>::min());
  EXPECT_EQ(static_cast<float>(fp_value(largest_normal(spec), spec)),
            std::numeric_limits<float>::max());
}

TEST(Classify, DenormalValueFormula) {
  // Denormal: exponent reads as -bias+1, no implicit 1 (paper Section III-A).
  const auto spec = FormatSpec::tiny8();  // j=4, x=3, bias=7
  // bits 0b00000001 -> mantissa 1 -> 1 * 2^(-7+1-3) = 2^-9.
  EXPECT_EQ(fp_value(0x01, spec), std::ldexp(1.0L, -9));
  // largest denormal: mantissa 7 -> 7 * 2^-9.
  EXPECT_EQ(fp_value(0x07, spec), std::ldexp(7.0L, -9));
  // smallest normal: exponent 1 -> 1.0 * 2^(1-7) = 2^-6.
  EXPECT_EQ(fp_value(0x08, spec), std::ldexp(1.0L, -6));
}

TEST(Compose, RoundTripsFields) {
  const auto spec = FormatSpec::binary32();
  std::mt19937_64 rng(9);
  for (int i = 0; i < 100'000; ++i) {
    const auto bits = static_cast<std::uint32_t>(rng());
    const auto recomposed = compose(sign_bit(bits, spec),
                                    exponent_field(bits, spec),
                                    mantissa_field(bits, spec), spec);
    EXPECT_EQ(recomposed, bits);
  }
}

TEST(FormatBits, RendersSections) {
  const auto spec = FormatSpec::tiny8();
  EXPECT_EQ(format_bits(0b10110101, spec), "1|0110|101");
  EXPECT_EQ(format_bits(0, spec), "0|0000|000");
}

TEST(NativeHelpers, BitCastRoundTrip) {
  EXPECT_EQ(flint::fpformat::float_bits(1.0f), 0x3F800000);
  EXPECT_EQ(flint::fpformat::float_from_bits(0x3F800000), 1.0f);
  EXPECT_EQ(flint::fpformat::double_bits(1.0), 0x3FF0000000000000ll);
  EXPECT_EQ(flint::fpformat::double_from_bits(0x3FF0000000000000ll), 1.0);
  // The paper's Listing 2 immediates reconstruct to these values (the
  // listing's printed decimals round to neighbouring patterns).
  EXPECT_EQ(flint::fpformat::float_from_bits(0x41213087), 10.0743475f);
  EXPECT_EQ(flint::fpformat::float_from_bits(0x413F986E), 11.9747143f);
  EXPECT_EQ(flint::fpformat::float_from_bits(0x4622FA08), 10430.5078f);
}

TEST(ToString, ClassNames) {
  EXPECT_EQ(to_string(FpClass::Zero), "zero");
  EXPECT_EQ(to_string(FpClass::Denormal), "denormal");
  EXPECT_EQ(to_string(FpClass::Normal), "normal");
  EXPECT_EQ(to_string(FpClass::Infinity), "infinity");
  EXPECT_EQ(to_string(FpClass::NaN), "nan");
}

// Figure 2 property: within each sign class the FP interpretation is
// monotone in the SI interpretation (ascending bit walk).
TEST(OrderingFigure2, MonotoneWithinSignClasses) {
  const auto spec = FormatSpec::binary16();  // 2^16 patterns: exhaustive walk
  long double prev = 0.0L;
  bool have_prev = false;
  // Positive class ascending: 0x0000 .. 0x7C00 (inf), skipping NaN.
  for (std::uint64_t b = 0; b <= 0x7C00; ++b) {
    const long double v = fp_value(b, spec);
    if (have_prev) EXPECT_GT(v, prev) << "b=" << b;
    prev = v;
    have_prev = true;
  }
  // Negative class: ascending bit pattern = descending FP value.
  have_prev = false;
  for (std::uint64_t b = 0x8000; b <= 0xFC00; ++b) {
    const long double v = fp_value(b, spec);
    if (have_prev) EXPECT_LT(v, prev) << "b=" << b;
    prev = v;
    have_prev = true;
  }
}

}  // namespace
