// Property tests for the predict/ subsystem: predict_batch over every
// backend must be bit-identical to per-sample Forest::predict on synthetic
// forests — including adversarial inputs (exact split hits, signed zeros,
// denormals, infinities) — and ParallelPredictor results must be invariant
// under thread count and block size.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "data/split.hpp"
#include "data/synth.hpp"
#include "predict/predictor.hpp"
#include "trees/forest.hpp"
#include "trees/tree_stats.hpp"

namespace {

using flint::predict::make_predictor;
using flint::predict::ParallelPredictor;
using flint::predict::Predictor;
using flint::predict::PredictorOptions;

/// Builds an adversarial row-major feature matrix: a mix of the forest's
/// own split values (boundary hits), special float patterns, and uniform
/// randoms.  Deterministic in `seed`.
std::vector<float> adversarial_features(const flint::trees::Forest<float>& forest,
                                        std::size_t n_samples,
                                        std::uint64_t seed) {
  std::vector<float> splits;
  for (std::size_t t = 0; t < forest.size(); ++t) {
    for (const auto& n : forest.tree(t).nodes()) {
      if (!n.is_leaf()) splits.push_back(n.split);
    }
  }
  const float specials[] = {0.0f, -0.0f,
                            std::numeric_limits<float>::denorm_min(),
                            -std::numeric_limits<float>::denorm_min(),
                            std::numeric_limits<float>::infinity(),
                            -std::numeric_limits<float>::infinity(),
                            std::numeric_limits<float>::max(),
                            std::numeric_limits<float>::lowest()};
  std::mt19937_64 rng(seed);
  // Leaf-only forests (degenerate-ensemble tests) have no splits to hit;
  // the distribution bound below must stay well-formed regardless.
  std::uniform_int_distribution<std::size_t> pick_split(
      0, splits.empty() ? 0 : splits.size() - 1);
  std::uniform_int_distribution<std::size_t> pick_special(0, std::size(specials) - 1);
  std::uniform_int_distribution<int> kind(0, 3);
  std::uniform_real_distribution<float> uniform(-100.0f, 100.0f);
  std::vector<float> features(n_samples * forest.feature_count());
  for (auto& v : features) {
    switch (kind(rng)) {
      case 0:
        v = splits.empty() ? uniform(rng) : splits[pick_split(rng)];
        break;
      case 1: v = specials[pick_special(rng)]; break;
      default: v = uniform(rng);
    }
  }
  return features;
}

class TrainedForest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto full =
        flint::data::generate<float>(flint::data::magic_spec(), 7, 1500);
    split_ = flint::data::train_test_split(full, 0.25, 7);
    flint::trees::ForestOptions opt;
    opt.n_trees = 7;
    opt.tree.max_depth = 9;
    opt.tree.max_features = flint::trees::TrainOptions::kSqrtFeatures;
    forest_ = flint::trees::train_forest(split_.train, opt);
    stats_ = flint::trees::collect_branch_stats(forest_, split_.train);
  }

  /// Per-sample Forest::predict over a flat feature matrix — the reference.
  std::vector<std::int32_t> reference(const std::vector<float>& features) const {
    const std::size_t cols = forest_.feature_count();
    std::vector<std::int32_t> out(features.size() / cols);
    for (std::size_t s = 0; s < out.size(); ++s) {
      out[s] = forest_.predict({features.data() + s * cols, cols});
    }
    return out;
  }

  flint::data::TrainTestSplit<float> split_;
  flint::trees::Forest<float> forest_;
  std::vector<flint::trees::BranchStats> stats_;
};

class BackendEquivalence
    : public TrainedForest,
      public ::testing::WithParamInterface<std::string> {};

TEST_P(BackendEquivalence, BatchMatchesForestPredictOnAdversarialInputs) {
  PredictorOptions opt;
  opt.branch_stats = stats_;  // needed by jit:cags-*
  const auto predictor = make_predictor(forest_, GetParam(), opt);
  EXPECT_EQ(predictor->num_classes(), forest_.num_classes());
  EXPECT_EQ(predictor->feature_count(), forest_.feature_count());

  const std::size_t n = 700;  // not a multiple of the default block size
  const auto features = adversarial_features(forest_, n, 99);
  const auto expected = reference(features);
  std::vector<std::int32_t> out(n, -1);
  predictor->predict_batch(features, n, out);
  for (std::size_t s = 0; s < n; ++s) {
    ASSERT_EQ(out[s], expected[s])
        << GetParam() << " diverges from Forest::predict at sample " << s;
  }

  // predict_one agrees with the batch path.
  const std::size_t cols = forest_.feature_count();
  for (std::size_t s = 0; s < 20; ++s) {
    ASSERT_EQ(predictor->predict_one({features.data() + s * cols, cols}),
              expected[s]);
  }

  // Dataset overload agrees on the real test split.
  std::vector<std::int32_t> ds_out(split_.test.rows());
  predictor->predict_batch(split_.test, ds_out);
  for (std::size_t r = 0; r < split_.test.rows(); ++r) {
    ASSERT_EQ(ds_out[r], forest_.predict(split_.test.row(r))) << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    InterpreterBackends, BackendEquivalence,
    ::testing::Values("reference", "float", "flint", "encoded", "theorem1",
                      "theorem2", "radix"),
    [](const auto& info) { return info.param; });

INSTANTIATE_TEST_SUITE_P(
    SimdBackends, BackendEquivalence,
    ::testing::Values("simd:flint", "simd:float"),
    [](const auto& info) { return info.param.substr(5); });

INSTANTIATE_TEST_SUITE_P(
    LayoutBackends, BackendEquivalence,
    ::testing::Values("layout:auto", "layout:c16", "layout:c8", "layout:q4"),
    [](const auto& info) { return info.param.substr(7); });

INSTANTIATE_TEST_SUITE_P(
    JitBackends, BackendEquivalence,
#ifdef FLINT_LEGACY_JIT
    ::testing::Values("jit:layout", "jit:ifelse-float", "jit:ifelse-flint",
                      "jit:native-float", "jit:native-flint", "jit:cags-float",
                      "jit:cags-flint", "jit:asm-x86"),
#else
    ::testing::Values("jit:layout"),
#endif
    [](const auto& info) {
      std::string name = info.param.substr(4);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST_F(TrainedForest, BlockSizeDoesNotChangeResults) {
  const std::size_t n = 523;  // prime: exercises every partial-block path
  const auto features = adversarial_features(forest_, n, 5);
  const auto expected = reference(features);
  for (const std::size_t block : {std::size_t{1}, std::size_t{3},
                                  std::size_t{64}, std::size_t{1024}}) {
    PredictorOptions opt;
    opt.block_size = block;
    for (const char* backend :
         {"float", "encoded", "radix", "simd:flint", "simd:float",
          "layout:auto", "layout:c16", "layout:c8", "layout:q4"}) {
      const auto predictor = make_predictor(forest_, backend, opt);
      std::vector<std::int32_t> out(n);
      predictor->predict_batch(features, n, out);
      ASSERT_EQ(out, expected) << backend << " block=" << block;
    }
  }
}

TEST_F(TrainedForest, ParallelPredictorInvariantUnderThreadCount) {
  const std::size_t n = 2311;
  const auto features = adversarial_features(forest_, n, 13);
  const auto expected = reference(features);
  for (const unsigned threads : {1u, 2u, 8u}) {
    for (const char* backend : {"encoded", "float"}) {
      // Small parallel block size so every worker count actually splits the
      // batch into many chunks.
      ParallelPredictor<float> parallel(make_predictor(forest_, backend),
                                        threads, /*block_size=*/128);
      EXPECT_EQ(parallel.thread_count(), threads);
      std::vector<std::int32_t> out(n);
      parallel.predict_batch(features, n, out);
      ASSERT_EQ(out, expected) << backend << " threads=" << threads;
    }
  }
}

TEST_F(TrainedForest, ParallelViaFactoryAndRepeatedBatches) {
  PredictorOptions opt;
  opt.threads = 4;
  const auto predictor = make_predictor(forest_, "encoded", opt);
  EXPECT_EQ(predictor->name(), "parallel(encoded,x4)");
  const auto features = adversarial_features(forest_, 900, 21);
  const auto expected = reference(features);
  // The pool is persistent: reuse across several batches must be stable.
  for (int round = 0; round < 3; ++round) {
    std::vector<std::int32_t> out(900);
    predictor->predict_batch(features, 900, out);
    ASSERT_EQ(out, expected) << "round " << round;
  }
  // Tiny batches take the inline path.
  EXPECT_EQ(predictor->predict_one({features.data(), forest_.feature_count()}),
            expected[0]);
}

// Regression (empty batches): n_samples == 0 must be a no-op for every
// backend shape — no division by zero in the blocked loops, no empty block
// dispatched to pool workers, and the output span untouched.
TEST_F(TrainedForest, EmptyBatchIsNoOp) {
  for (const char* backend :
       {"reference", "encoded", "simd:flint", "layout:auto"}) {
    PredictorOptions opt;
    const auto predictor = make_predictor(forest_, backend, opt);
    std::vector<float> no_features;
    std::vector<std::int32_t> out(3, -7);
    EXPECT_NO_THROW(predictor->predict_batch(no_features, 0, out)) << backend;
    EXPECT_EQ(out, (std::vector<std::int32_t>{-7, -7, -7})) << backend;
  }
  // Through the pool decorator too (threads > 1).
  PredictorOptions popt;
  popt.threads = 4;
  const auto parallel = make_predictor(forest_, "encoded", popt);
  std::vector<std::int32_t> out;
  EXPECT_NO_THROW(parallel->predict_batch(std::vector<float>{}, 0, out));
  // And through the Dataset overload with zero rows.
  flint::data::Dataset<float> empty("empty", forest_.feature_count());
  std::vector<std::int32_t> ds_out;
  EXPECT_NO_THROW(parallel->predict_batch(empty, ds_out));
  EXPECT_EQ(parallel->accuracy(empty), 0.0);
}

// NaN contract: the batch boundary rejects NaN features up front, because
// the FLInt engines' bit-pattern order would otherwise silently diverge
// from IEEE comparison semantics (README "NaN/zero semantics").
TEST_F(TrainedForest, NanFeaturesAreRejected) {
  const std::size_t cols = forest_.feature_count();
  for (const char* backend :
       {"reference", "encoded", "simd:flint", "layout:auto", "layout:q4"}) {
    const auto predictor = make_predictor(forest_, backend);
    std::vector<float> features(cols * 3, 1.0f);
    features[cols + 1] = std::numeric_limits<float>::quiet_NaN();
    std::vector<std::int32_t> out(3);
    try {
      predictor->predict_batch(features, 3, out);
      FAIL() << backend << ": expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("NaN"), std::string::npos)
          << e.what();
    }
    // Signaling NaN and negative NaN payloads are NaN too.
    features[cols + 1] = -std::numeric_limits<float>::signaling_NaN();
    EXPECT_THROW(predictor->predict_batch(features, 3, out),
                 std::invalid_argument)
        << backend;
    // Infinities remain valid inputs.
    features[cols + 1] = std::numeric_limits<float>::infinity();
    EXPECT_NO_THROW(predictor->predict_batch(features, 3, out)) << backend;
  }
  // The pool decorator inherits the gate (checked before dispatch).
  PredictorOptions popt;
  popt.threads = 2;
  const auto parallel = make_predictor(forest_, "encoded", popt);
  std::vector<float> features(cols, 0.0f);
  features[0] = std::numeric_limits<float>::quiet_NaN();
  std::vector<std::int32_t> out(1);
  EXPECT_THROW(parallel->predict_batch(features, 1, out),
               std::invalid_argument);
}

// Degenerate pool configurations: more threads than blocks, a block size
// larger than the batch, and a 64-worker pool on any host must neither
// deadlock, leave workers spinning, nor double-claim blocks (every sample
// classified exactly once => results bit-identical to the reference).
TEST_F(TrainedForest, ParallelDegenerateConfigsStress) {
  const std::size_t n = 700;
  const auto features = adversarial_features(forest_, n, 31);
  const auto expected = reference(features);
  struct Config {
    unsigned threads;
    std::size_t block;
  };
  const Config configs[] = {
      {1, 64},    // no pool workers at all: inline drain
      {2, 512},   // threads == block count
      {2, 4096},  // block_size > n_samples: inline path
      {64, 64},   // threads >> blocks on this batch
      {64, 1},    // maximal contention on the atomic cursor
  };
  for (const auto& cfg : configs) {
    ParallelPredictor<float> parallel(make_predictor(forest_, "encoded"),
                                      cfg.threads, cfg.block);
    EXPECT_EQ(parallel.thread_count(), cfg.threads);
    // Repeat to exercise pool reuse with left-over generation state.
    for (int round = 0; round < 2; ++round) {
      std::vector<std::int32_t> out(n, -1);
      parallel.predict_batch(features, n, out);
      ASSERT_EQ(out, expected)
          << "threads=" << cfg.threads << " block=" << cfg.block
          << " round=" << round;
    }
  }
}

TEST_F(TrainedForest, ShapeValidation) {
  const auto predictor = make_predictor(forest_, "encoded");
  std::vector<float> features(forest_.feature_count() * 4);
  std::vector<std::int32_t> out(4);
  EXPECT_NO_THROW(predictor->predict_batch(features, 4, out));
  // Wrong feature count for the sample count.
  EXPECT_THROW(predictor->predict_batch(features, 5, out),
               std::invalid_argument);
  // Output too small.
  std::vector<std::int32_t> small(3);
  EXPECT_THROW(predictor->predict_batch(features, 4, small),
               std::invalid_argument);
  // predict_one with a short sample throws instead of slicing out of
  // bounds (span::first on a too-short span is UB).
  std::vector<float> short_sample(forest_.feature_count() - 1);
  EXPECT_THROW((void)predictor->predict_one(short_sample),
               std::invalid_argument);
}

TEST_F(TrainedForest, UnknownBackendThrowsWithVocabulary) {
  try {
    (void)make_predictor(forest_, "warp");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("warp"), std::string::npos);
    EXPECT_NE(message.find("theorem1"), std::string::npos) << message;
  }
#ifdef FLINT_LEGACY_JIT
  // jit:cags-* without branch stats is rejected up front.
  EXPECT_THROW((void)make_predictor(forest_, "jit:cags-flint"),
               std::invalid_argument);
#else
  // Retired flavors are unknown names; the error steers to jit:layout.
  try {
    (void)make_predictor(forest_, "jit:cags-flint");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("jit:layout"), std::string::npos)
        << e.what();
  }
#endif
}

TEST_F(TrainedForest, UnknownBackendSuggestsNearestName) {
  // A near-miss typo suggests the intended name.
  try {
    (void)make_predictor(forest_, "layot:auto");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'layout:auto'"),
              std::string::npos)
        << e.what();
  }
  // An unknown name in a known family points at that family's member.
  try {
    (void)make_predictor(forest_, "jit:warp");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'jit:"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Degenerate ensembles: single-node (leaf-only root) trees, single-tree
// forests, and a forest whose every tree predicts the same class, checked
// bit-identical to Forest::predict across the interpreter, SoA SIMD and
// compact-layout backend families.
// ---------------------------------------------------------------------------

/// Backends every degenerate shape must survive (jit:* is out of scope for
/// this satellite; the codegen suites cover it on regular shapes).
const char* const kDegenerateBackends[] = {"encoded",    "simd:flint",
                                           "simd:float", "layout:auto",
                                           "layout:c16", "layout:c8",
                                           "layout:q4"};

void expect_backends_match(const flint::trees::Forest<float>& forest,
                           std::size_t n_samples, std::uint64_t seed) {
  const std::size_t cols = forest.feature_count();
  const auto features = adversarial_features(forest, n_samples, seed);
  std::vector<std::int32_t> expected(n_samples);
  for (std::size_t s = 0; s < n_samples; ++s) {
    expected[s] = forest.predict({features.data() + s * cols, cols});
  }
  for (const char* backend : kDegenerateBackends) {
    const auto predictor = make_predictor(forest, backend);
    std::vector<std::int32_t> got(n_samples, -1);
    predictor->predict_batch(features, n_samples, got);
    for (std::size_t s = 0; s < n_samples; ++s) {
      EXPECT_EQ(got[s], expected[s]) << backend << " sample " << s;
    }
    // Single-sample path too (layout's interleaved latency route).
    const auto one = predictor->predict_one({features.data(), cols});
    EXPECT_EQ(one, expected[0]) << backend;
  }
}

TEST(DegenerateEnsembles, LeafOnlyRootTrees) {
  // Every tree is a lone leaf; class 2 has two votes and must win.
  std::vector<flint::trees::Tree<float>> trees;
  for (const int cls : {2, 0, 2, 1}) {
    flint::trees::Tree<float> t(3);
    t.add_leaf(cls);
    trees.push_back(std::move(t));
  }
  const flint::trees::Forest<float> forest(std::move(trees), 3);
  expect_backends_match(forest, 64, 41);
}

TEST(DegenerateEnsembles, MixedLeafOnlyAndRealTrees) {
  // A leaf-only tree inside an otherwise normal forest: the packers must
  // place a root that is also a leaf next to deep spines.
  std::vector<flint::trees::Tree<float>> trees;
  flint::trees::Tree<float> deep(2);
  {
    const auto root = deep.add_split(0, 0.25f);
    const auto inner = deep.add_split(1, -1.5f);
    const auto l0 = deep.add_leaf(0);
    const auto l2 = deep.add_leaf(2);
    const auto l1 = deep.add_leaf(1);
    deep.link(root, inner, l1);
    deep.link(inner, l0, l2);
  }
  trees.push_back(std::move(deep));
  {
    flint::trees::Tree<float> lone(2);
    lone.add_leaf(2);
    trees.push_back(std::move(lone));
  }
  const flint::trees::Forest<float> forest(std::move(trees), 3);
  expect_backends_match(forest, 64, 43);
}

TEST(DegenerateEnsembles, SingleTreeForest) {
  const auto ds = flint::data::generate<float>(flint::data::eye_spec(), 5, 300);
  flint::trees::ForestOptions opt;
  opt.n_trees = 1;
  opt.tree.max_depth = 6;
  const auto forest = flint::trees::train_forest(ds, opt);
  ASSERT_EQ(forest.size(), 1u);
  expect_backends_match(forest, 128, 47);
}

TEST(DegenerateEnsembles, EveryTreePredictsTheSameClass) {
  // Real splits, constant leaves: vote arrays get all counts in one bin.
  std::vector<flint::trees::Tree<float>> trees;
  for (int i = 0; i < 4; ++i) {
    flint::trees::Tree<float> t(3);
    const auto root = t.add_split(i % 3, 0.5f + static_cast<float>(i));
    const auto inner = t.add_split((i + 1) % 3, -0.25f);
    const auto l1 = t.add_leaf(1);
    const auto l2 = t.add_leaf(1);
    const auto l3 = t.add_leaf(1);
    t.link(root, inner, l3);
    t.link(inner, l1, l2);
    trees.push_back(std::move(t));
  }
  const flint::trees::Forest<float> forest(std::move(trees), 4);
  expect_backends_match(forest, 64, 53);
}

TEST(PredictorDouble, DoubleWidthBackendsMatchForestPredict) {
  const auto full =
      flint::data::generate<double>(flint::data::wine_spec(), 3, 800);
  flint::trees::ForestOptions opt;
  opt.n_trees = 4;
  opt.tree.max_depth = 8;
  const auto forest = flint::trees::train_forest(full, opt);
  for (const char* backend :
       {"reference", "float", "encoded", "theorem1", "theorem2", "radix",
        "simd:flint", "simd:float", "layout:auto", "layout:c16", "layout:c8",
        "layout:q4", "jit:layout"}) {
    const auto predictor = make_predictor(forest, backend);
    std::vector<std::int32_t> out(full.rows());
    predictor->predict_batch(full, out);
    for (std::size_t r = 0; r < full.rows(); ++r) {
      ASSERT_EQ(out[r], forest.predict(full.row(r)))
          << backend << " row " << r;
    }
  }
}

// Regression (cgroup quotas): pools sized from hardware_concurrency()
// ignore container CPU limits — in a 2-CPU-quota cgroup on a 64-core host
// they spawn 63 workers and thrash.  cgroup_cpu_quota is the injectable
// quota reader (fake cgroup roots below); available_parallelism() caps
// hardware_concurrency with it and is what `threads == 0` now means.
class FakeCgroup : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path(::testing::TempDir()) / "flint_fake_cgroup";
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  void write_file(const std::string& relative, const std::string& content) {
    const auto path = root_ / relative;
    std::filesystem::create_directories(path.parent_path());
    std::ofstream(path) << content;
  }

  std::filesystem::path root_;
};

TEST_F(FakeCgroup, V2QuotaRoundsUpToWholeCpus) {
  write_file("cpu.max", "200000 100000\n");
  EXPECT_EQ(flint::predict::cgroup_cpu_quota(root_.string()), 2u);
  write_file("cpu.max", "150000 100000\n");  // 1.5 CPUs -> 2 workers
  EXPECT_EQ(flint::predict::cgroup_cpu_quota(root_.string()), 2u);
  write_file("cpu.max", "50000 100000\n");  // half a CPU -> still 1 worker
  EXPECT_EQ(flint::predict::cgroup_cpu_quota(root_.string()), 1u);
}

TEST_F(FakeCgroup, V2UnlimitedAndMalformedMeanNoQuota) {
  write_file("cpu.max", "max 100000\n");
  EXPECT_EQ(flint::predict::cgroup_cpu_quota(root_.string()), 0u);
  write_file("cpu.max", "banana\n");
  EXPECT_EQ(flint::predict::cgroup_cpu_quota(root_.string()), 0u);
  write_file("cpu.max", "");
  EXPECT_EQ(flint::predict::cgroup_cpu_quota(root_.string()), 0u);
}

TEST_F(FakeCgroup, V1QuotaAndUnlimited) {
  write_file("cpu/cpu.cfs_quota_us", "250000\n");
  write_file("cpu/cpu.cfs_period_us", "100000\n");
  EXPECT_EQ(flint::predict::cgroup_cpu_quota(root_.string()), 3u);
  write_file("cpu/cpu.cfs_quota_us", "-1\n");  // v1 "no limit"
  EXPECT_EQ(flint::predict::cgroup_cpu_quota(root_.string()), 0u);
}

TEST_F(FakeCgroup, V2HierarchyTakesPrecedenceOverV1) {
  write_file("cpu.max", "100000 100000\n");
  write_file("cpu/cpu.cfs_quota_us", "800000\n");
  write_file("cpu/cpu.cfs_period_us", "100000\n");
  EXPECT_EQ(flint::predict::cgroup_cpu_quota(root_.string()), 1u);
}

TEST_F(FakeCgroup, MissingRootMeansNoQuota) {
  EXPECT_EQ(flint::predict::cgroup_cpu_quota(
                (root_ / "does_not_exist").string()),
            0u);
}

TEST(AvailableParallelism, PositiveAndCappedByHardware) {
  const unsigned n = flint::predict::available_parallelism();
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, std::max(1u, std::thread::hardware_concurrency()));
}

TEST(PredictorNames, BackendListsAreConsistent) {
  const auto interp = flint::predict::interpreter_backends();
  EXPECT_EQ(interp.size(), 6u);
  const auto simd = flint::predict::simd_backends();
  EXPECT_EQ(simd.size(), 2u);
  const auto layout = flint::predict::layout_backends();
  EXPECT_EQ(layout.size(), 4u);
  const auto quant = flint::predict::quant_backends();
  EXPECT_EQ(quant.size(), 1u);
  EXPECT_EQ(quant.front(), "quant:affine");
  const auto jit = flint::predict::jit_backends();
#ifdef FLINT_LEGACY_JIT
  EXPECT_EQ(jit.size(), 8u);  // jit:layout + the seven retired flavors
#else
  EXPECT_EQ(jit.size(), 1u);
  EXPECT_EQ(jit.front(), "jit:layout");
#endif
  const auto help = flint::predict::backend_help();
  for (const auto& name : interp) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
  }
  for (const auto& name : simd) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
  }
  for (const auto& name : layout) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
    EXPECT_TRUE(flint::predict::is_known_backend(name)) << name;
  }
  for (const auto& name : jit) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
    EXPECT_TRUE(flint::predict::is_known_backend(name)) << name;
  }
  for (const auto& name : quant) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
    EXPECT_TRUE(flint::predict::is_known_backend(name)) << name;
  }
}

}  // namespace
