// Adversarial-input regression tests for the untrusted parsers: the JSON
// scanner (nesting depth, integer-range gates, errno discipline), the
// loader number helpers (strtof/strtod overflow vs stale ERANGE), and the
// v1/v2 container readers (allocation bombs from lying header counts).
// These encode the fixes independently of the fuzz harnesses in fuzz/, so
// a plain `ctest` run keeps them pinned even where libFuzzer is absent.
#include <gtest/gtest.h>

#include <cerrno>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "model/json.hpp"
#include "model/loader_util.hpp"
#include "model/model_io.hpp"
#include "trees/serialize.hpp"

namespace {

using flint::model::parse_json;
using flint::model::detail::parse_token_f32;
using flint::model::detail::parse_token_f64;

std::string nested_array(std::size_t depth) {
  std::string text;
  text.reserve(2 * depth + 1);
  text.append(depth, '[');
  text.push_back('1');
  text.append(depth, ']');
  return text;
}

TEST(JsonHardening, ModerateNestingAccepted) {
  const auto v = parse_json(nested_array(100));
  ASSERT_EQ(v.as_array().size(), 1u);
}

TEST(JsonHardening, DeepNestingRejectedNotStackOverflow) {
  try {
    parse_json(nested_array(100000));
    FAIL() << "expected a depth-limit error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("nesting"), std::string::npos)
        << e.what();
  }
}

TEST(JsonHardening, IntOutOfRangeRejectedBeforeCast) {
  // double -> long long is undefined outside [-2^63, 2^63); a hostile
  // "1e300" node id must throw, not invoke UB.
  EXPECT_THROW(parse_json("1e300").as_int(), std::runtime_error);
  EXPECT_THROW(parse_json("-1e300").as_int(), std::runtime_error);
  // 2^63 itself is outside the half-open range (LLONG_MAX is 2^63 - 1).
  EXPECT_THROW(parse_json("9223372036854775808").as_int(), std::runtime_error);
  EXPECT_THROW(parse_json("NaN").as_int(), std::runtime_error);
  // -2^63 is exactly LLONG_MIN and must round-trip.
  EXPECT_EQ(parse_json("-9223372036854775808").as_int(),
            -9223372036854775807LL - 1);
  EXPECT_EQ(parse_json("4611686018427387904").as_int(), 1LL << 62);
}

TEST(JsonHardening, OverflowTokenIsInfNotWraparound) {
  // strtod maps "1e9999" to +inf (ERANGE); downstream finiteness gates
  // police it.  The parse itself must neither throw nor mangle the value.
  EXPECT_TRUE(std::isinf(parse_json("1e9999").as_double()));
  EXPECT_TRUE(std::isinf(parse_json("-1e9999").as_double()));
}

TEST(LoaderUtilHardening, OverflowingTokenRejected) {
  // "1e39" > FLT_MAX: a float32 loader must refuse it rather than load the
  // threshold as +inf.
  EXPECT_THROW(parse_token_f32("1e39", "test"), std::runtime_error);
  EXPECT_THROW(parse_token_f32("-1e39", "test"), std::runtime_error);
  EXPECT_THROW(parse_token_f64("1e9999", "test"), std::runtime_error);
  // The same magnitude is representable at float64.
  EXPECT_DOUBLE_EQ(parse_token_f64("1e39", "test"), 1e39);
}

TEST(LoaderUtilHardening, StaleErrnoDoesNotRejectGoodTokens) {
  errno = ERANGE;  // a leftover from an unrelated library call
  EXPECT_FLOAT_EQ(parse_token_f32("1.5", "test"), 1.5f);
  errno = ERANGE;
  EXPECT_DOUBLE_EQ(parse_token_f64("2.25", "test"), 2.25);
}

TEST(LoaderUtilHardening, LiteralInfNanPassThroughToCallerGates) {
  // Literal spellings set no errno; the loader-level finiteness checks
  // (check_threshold_finite, ForestModel::validate) decide their fate.
  EXPECT_TRUE(std::isinf(parse_token_f32("inf", "test")));
  EXPECT_TRUE(std::isnan(parse_token_f32("nan", "test")));
}

TEST(LoaderUtilHardening, UnderflowIsAFaithfulParse) {
  EXPECT_EQ(parse_token_f32("1e-9999", "test"), 0.0f);
  // Denormal result: ERANGE underflow, still accepted.
  EXPECT_GT(parse_token_f32("1e-44", "test"), 0.0f);
}

TEST(SerializeHardening, HugeTreeCountFailsWithoutAllocating) {
  // The reserve hint is clamped, so a lying header dies on the missing
  // first tree block instead of pre-committing gigabytes.
  std::istringstream in("forest v1 2 99999999999\n");
  EXPECT_THROW(flint::trees::read_forest<float>(in), std::runtime_error);
}

TEST(SerializeHardening, HugeCategoryWordCountRejected) {
  // Every category word is a token on the same line, so a count beyond the
  // line length is provably a lie — reject before sizing the vector.
  std::istringstream in(
      "tree 2 3\n"
      "cats 1\n"
      "c 99999999999 1\n");
  try {
    flint::trees::read_tree<float>(in);
    FAIL() << "expected a word-count error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds line length"),
              std::string::npos)
        << e.what();
  }
}

TEST(ModelIoHardening, HugeLeafTableFailsFast) {
  // rows passes the int32 gate and k is only gated >= 0; the reserve is
  // clamped so rows * k ~ 2^61 cannot allocate.  The read then dies on the
  // first missing value row.
  std::istringstream in(
      "forest v2 1\n"
      "kind scalar\n"
      "agg sum\n"
      "link none\n"
      "outputs 1073741823\n"
      "classes 0\n"
      "leaf_values 2147483647 1073741823\n");
  EXPECT_THROW(flint::model::read_model<float>(in), std::runtime_error);
}

}  // namespace
