// Differential fuzz gate for missing-value (NaN default-direction) and
// categorical splits: seeded random (forest, input) pairs — NaN bit
// patterns, signed zeros, denormals, infinities, exact split hits,
// categorical member/non-member/out-of-range values — must classify
// bit-identically on EVERY backend (interpreters, simd:*, layout:*),
// through predict_one, and under a ParallelPredictor, where "identical"
// means equal to a naive double-precision IEEE oracle written here from
// the trees/tree.hpp missing contract alone (no FLInt integer form, no
// Tree::leaf_for).  Score-model backends face the same oracle with
// float32 tree-order accumulation, including the zero_as_missing
// boundary rewrite.
//
// The default budget is >= 10k (forest, input) pairs per fuzz test; set
// FLINT_FUZZ_ITERS to raise or lower it (CI smoke runs use a small value
// under the sanitizers, nightly runs a large one).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "core/flint.hpp"
#include "model/forest_model.hpp"
#include "predict/predictor.hpp"
#include "trees/forest.hpp"
#include "trees/tree.hpp"

namespace {

using flint::model::AggregationMode;
using flint::model::ForestModel;
using flint::model::LeafKind;
using flint::predict::make_predictor;
using flint::predict::MissingPolicy;
using flint::predict::PredictorOptions;
using flint::trees::Forest;
using flint::trees::Tree;

// ---------------------------------------------------------------------------
// NaN bit-pattern zoo: quiet and signaling, both signs, payloads at the
// edges and in the middle.  Bit 22 is the quiet bit; a zero-payload
// signaling pattern would be infinity, so signaling payloads start at 1.
// ---------------------------------------------------------------------------

constexpr std::uint32_t kNanPatterns[] = {
    0x7FC00000u, 0xFFC00000u,  // canonical quiet +/-
    0x7FC00001u, 0xFFC00001u,  // quiet, minimal payload
    0x7FFFFFFFu, 0xFFFFFFFFu,  // quiet, all-ones payload
    0x7FD55AA5u, 0xFFEAA55Au,  // quiet, mixed payloads
    0x7F800001u, 0xFF800001u,  // signaling, minimal payload
    0x7FBFFFFFu, 0xFFBFFFFFu,  // signaling, maximal payload
    0x7FA00000u, 0xFF955555u,  // signaling, mixed payloads
};

float nan_from_bits(std::uint32_t bits) { return std::bit_cast<float>(bits); }

// ---------------------------------------------------------------------------
// The oracle: a double-precision IEEE walk over the Tree IR, written from
// the missing contract in trees/tree.hpp and nothing else.  NaN routes by
// the node's default-direction flag; categorical nodes test trunc(v)
// membership in the bitset (negative / out-of-extent / non-members go
// right); numeric nodes compare in double (exact for float operands).
// ---------------------------------------------------------------------------

std::int32_t oracle_leaf_payload(const Tree<float>& tree, const float* x,
                                 bool zero_as_missing) {
  std::int32_t i = 0;
  const auto* n = &tree.node(i);
  while (!n->is_leaf()) {
    const float v = x[static_cast<std::size_t>(n->feature)];
    const bool missing =
        std::isnan(v) ||
        (zero_as_missing &&
         std::fabs(v) <=
             static_cast<float>(flint::predict::kZeroAsMissingThreshold));
    bool left;
    if (missing) {
      left = n->default_left();
    } else if (n->is_categorical()) {
      const auto words = tree.cat_set(n->cat_slot);
      left = false;
      if (static_cast<double>(v) >= 0.0 &&
          static_cast<double>(v) < 32.0 * static_cast<double>(words.size())) {
        const auto idx = static_cast<std::uint32_t>(v);
        left = ((words[idx >> 5] >> (idx & 31u)) & 1u) != 0;
      }
    } else {
      left = static_cast<double>(v) <= static_cast<double>(n->split);
    }
    i = left ? n->left : n->right;
    n = &tree.node(i);
  }
  return n->prediction;
}

/// Majority vote with ties toward the lower class id.
std::int32_t oracle_vote(const Forest<float>& forest, const float* x) {
  std::vector<int> votes(static_cast<std::size_t>(forest.num_classes()), 0);
  for (std::size_t t = 0; t < forest.size(); ++t) {
    ++votes[static_cast<std::size_t>(
        oracle_leaf_payload(forest.tree(t), x, false))];
  }
  std::int32_t best = 0;
  for (std::size_t c = 1; c < votes.size(); ++c) {
    if (votes[c] > votes[static_cast<std::size_t>(best)]) {
      best = static_cast<std::int32_t>(c);
    }
  }
  return best;
}

/// base + leaf rows accumulated in float32 in tree order — the summation
/// order every score backend uses.
std::vector<float> oracle_scores(const ForestModel<float>& model,
                                 const float* x) {
  const auto k = static_cast<std::size_t>(model.n_outputs);
  std::vector<float> acc(k, 0.0f);
  for (std::size_t j = 0; j < model.aggregation.base_score.size(); ++j) {
    acc[j] = model.aggregation.base_score[j];
  }
  for (std::size_t t = 0; t < model.forest.size(); ++t) {
    const std::int32_t row =
        oracle_leaf_payload(model.forest.tree(t), x, model.zero_as_missing);
    for (std::size_t j = 0; j < k; ++j) {
      acc[j] += model.leaf_values[static_cast<std::size_t>(row) * k + j];
    }
  }
  return acc;
}

// ---------------------------------------------------------------------------
// Random special forests: numeric nodes (flagged and legacy flagless) mixed
// with categorical bitset nodes, thresholds drawn from a pool that includes
// the adversarial float landmarks.
// ---------------------------------------------------------------------------

float random_threshold(std::mt19937_64& rng) {
  const float landmarks[] = {0.0f,
                             -0.0f,
                             std::numeric_limits<float>::denorm_min(),
                             -std::numeric_limits<float>::denorm_min(),
                             1.0f,
                             -1.0f,
                             42.0f,
                             std::numeric_limits<float>::max() / 4,
                             std::numeric_limits<float>::lowest() / 4};
  if (std::uniform_int_distribution<int>(0, 4)(rng) == 0) {
    return landmarks[std::uniform_int_distribution<std::size_t>(
        0, std::size(landmarks) - 1)(rng)];
  }
  return std::uniform_real_distribution<float>(-10.0f, 10.0f)(rng);
}

/// Appends a random subtree; `leaf_payload` hands out leaf payloads (class
/// ids for vote forests, fresh leaf-value row indices for score models).
template <typename LeafPayloadFn>
std::int32_t grow_node(Tree<float>& tree, std::mt19937_64& rng, int depth,
                       int n_features, LeafPayloadFn&& leaf_payload) {
  std::uniform_int_distribution<int> pct(0, 99);
  if (depth <= 0 || pct(rng) < 25) {
    return tree.add_leaf(leaf_payload());
  }
  const auto feature = std::uniform_int_distribution<std::int32_t>(
      0, n_features - 1)(rng);
  std::int32_t self;
  const int kind = pct(rng);
  if (kind < 30) {
    // Categorical bitset node, one or two words, never empty.
    const std::size_t n_words =
        1 + static_cast<std::size_t>(pct(rng) < 40);
    std::vector<std::uint32_t> words(n_words);
    std::uniform_int_distribution<std::uint32_t> word(0, 0xFFFFFFFFu);
    for (auto& w : words) w = word(rng);
    if (words[0] == 0 && (n_words == 1 || words[1] == 0)) words[0] = 0x10u;
    const std::int32_t slot = tree.add_cat_set(words);
    self = tree.add_cat_split(feature, slot, pct(rng) < 50);
  } else if (kind < 75) {
    // Numeric with an explicit NaN default direction.
    self = tree.add_split(feature, random_threshold(rng), pct(rng) < 50);
  } else {
    // Legacy flagless numeric: NaN routes right, like IEEE `v <= s`.
    self = tree.add_split(feature, random_threshold(rng));
  }
  const std::int32_t left =
      grow_node(tree, rng, depth - 1, n_features, leaf_payload);
  const std::int32_t right =
      grow_node(tree, rng, depth - 1, n_features, leaf_payload);
  tree.link(self, left, right);
  return self;
}

Forest<float> random_vote_forest(std::mt19937_64& rng) {
  const int n_features = std::uniform_int_distribution<int>(2, 6)(rng);
  const int n_classes = std::uniform_int_distribution<int>(2, 4)(rng);
  const int n_trees = std::uniform_int_distribution<int>(1, 6)(rng);
  for (;;) {
    std::vector<Tree<float>> trees;
    for (int t = 0; t < n_trees; ++t) {
      Tree<float> tree(static_cast<std::size_t>(n_features));
      grow_node(tree, rng, 4, n_features, [&] {
        return std::uniform_int_distribution<std::int32_t>(
            0, n_classes - 1)(rng);
      });
      EXPECT_EQ(tree.validate(), "");
      trees.push_back(std::move(tree));
    }
    Forest<float> forest(std::move(trees), n_classes);
    // The suite targets the missing-aware paths; flag-free forests are
    // vanishingly rare from this generator and covered by test_predictor.
    if (forest.has_special_splits()) return forest;
  }
}

/// Adversarial row-major inputs: split hits, NaN patterns, special floats,
/// small (categorical-range) integers, uniforms.
std::vector<float> adversarial_inputs(const Forest<float>& forest,
                                      std::size_t n_samples,
                                      std::mt19937_64& rng) {
  std::vector<float> splits;
  for (std::size_t t = 0; t < forest.size(); ++t) {
    for (const auto& n : forest.tree(t).nodes()) {
      if (!n.is_leaf() && !n.is_categorical()) splits.push_back(n.split);
    }
  }
  const float specials[] = {0.0f,
                            -0.0f,
                            std::numeric_limits<float>::denorm_min(),
                            -std::numeric_limits<float>::denorm_min(),
                            std::numeric_limits<float>::infinity(),
                            -std::numeric_limits<float>::infinity(),
                            std::numeric_limits<float>::max(),
                            std::numeric_limits<float>::lowest()};
  std::uniform_int_distribution<int> kind(0, 9);
  std::uniform_int_distribution<std::size_t> pick_split(
      0, splits.empty() ? 0 : splits.size() - 1);
  std::uniform_int_distribution<std::size_t> pick_special(
      0, std::size(specials) - 1);
  std::uniform_int_distribution<std::size_t> pick_nan(
      0, std::size(kNanPatterns) - 1);
  std::uniform_int_distribution<int> pick_cat(-4, 80);
  std::uniform_real_distribution<float> uniform(-12.0f, 12.0f);
  std::vector<float> features(n_samples * forest.feature_count());
  for (auto& v : features) {
    switch (kind(rng)) {
      case 0:
      case 1:
        v = splits.empty() ? uniform(rng) : splits[pick_split(rng)];
        break;
      case 2: v = specials[pick_special(rng)]; break;
      case 3:
      case 4: v = nan_from_bits(kNanPatterns[pick_nan(rng)]); break;
      case 5:
      case 6: v = static_cast<float>(pick_cat(rng)); break;
      default: v = uniform(rng);
    }
  }
  return features;
}

std::vector<std::string> vote_backends() {
  std::vector<std::string> names = flint::predict::interpreter_backends();
  for (const auto& n : flint::predict::simd_backends()) names.push_back(n);
  for (const auto& n : flint::predict::layout_backends()) names.push_back(n);
  return names;
}

/// (forest, input)-pair budget: >= 10k by default, FLINT_FUZZ_ITERS
/// overrides (CI sanitizer smoke uses a small value).
std::size_t fuzz_pairs() {
  if (const char* env = std::getenv("FLINT_FUZZ_ITERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 10'000;
}

// ---------------------------------------------------------------------------
// Tentpole gate: every backend, predict_one, and the ParallelPredictor
// agree with the naive IEEE oracle on random missing/categorical forests.
// ---------------------------------------------------------------------------

TEST(MissingFuzz, EveryBackendMatchesNaiveIeeeOracle) {
  const std::size_t samples_per_forest = 48;
  const std::size_t n_forests =
      (fuzz_pairs() + samples_per_forest - 1) / samples_per_forest;
  const auto backends = vote_backends();
  std::mt19937_64 rng(0xF11A7C0DEull);

  for (std::size_t f = 0; f < n_forests; ++f) {
    const auto forest = random_vote_forest(rng);
    const std::size_t cols = forest.feature_count();
    const auto features =
        adversarial_inputs(forest, samples_per_forest, rng);

    std::vector<std::int32_t> expected(samples_per_forest);
    for (std::size_t s = 0; s < samples_per_forest; ++s) {
      expected[s] = oracle_vote(forest, features.data() + s * cols);
      // Forest::predict is the repo's float reference; it must implement
      // the same contract the oracle was written from.
      ASSERT_EQ(forest.predict({features.data() + s * cols, cols}),
                expected[s])
          << "Forest::predict diverges from the IEEE oracle, forest " << f
          << " sample " << s;
    }

    PredictorOptions opt;
    opt.block_size = (f % 3 == 0) ? 7 : 64;  // exercise partial blocks
    auto round_backends = backends;
    // jit:layout invokes the C toolchain per forest, so it joins the
    // differential on a sampled subset rather than every iteration.
    if (f % 16 == 0) round_backends.emplace_back("jit:layout");
    for (const auto& backend : round_backends) {
      const auto predictor = make_predictor(forest, backend, opt);
      std::vector<std::int32_t> out(samples_per_forest, -1);
      predictor->predict_batch(features, samples_per_forest, out);
      for (std::size_t s = 0; s < samples_per_forest; ++s) {
        ASSERT_EQ(out[s], expected[s])
            << backend << " diverges from the IEEE oracle, forest " << f
            << " sample " << s;
      }
      for (std::size_t s = 0; s < 3; ++s) {
        ASSERT_EQ(predictor->predict_one({features.data() + s * cols, cols}),
                  expected[s])
            << backend << " predict_one, forest " << f << " sample " << s;
      }
    }

    // ParallelPredictor (via the factory, so the MissingPolicy lands on the
    // outermost predictor): every 4th forest to bound the thread churn.
    if (f % 4 == 0) {
      PredictorOptions popt;
      popt.threads = 4;
      popt.block_size = 16;
      for (const char* backend : {"encoded", "layout:auto"}) {
        const auto parallel = make_predictor(forest, backend, popt);
        std::vector<std::int32_t> out(samples_per_forest, -1);
        parallel->predict_batch(features, samples_per_forest, out);
        for (std::size_t s = 0; s < samples_per_forest; ++s) {
          ASSERT_EQ(out[s], expected[s])
              << parallel->name() << " forest " << f << " sample " << s;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Score models: same oracle, float32 tree-order accumulation, plus the
// zero_as_missing boundary rewrite on half the models.
// ---------------------------------------------------------------------------

TEST(MissingFuzz, ScoreBackendsMatchNaiveAccumulation) {
  const std::size_t samples_per_model = 32;
  // The score matrix is wide; a quarter of the vote budget keeps the suite
  // fast while still crossing every backend thousands of times.
  const std::size_t n_models =
      (fuzz_pairs() / 4 + samples_per_model - 1) / samples_per_model;
  const auto backends = vote_backends();
  std::mt19937_64 rng(0x5C0FE5ull);

  for (std::size_t m = 0; m < n_models; ++m) {
    const int n_features = std::uniform_int_distribution<int>(2, 5)(rng);
    const int n_trees = std::uniform_int_distribution<int>(1, 4)(rng);
    const int k = (m % 3 == 0) ? 3 : 1;
    std::int32_t n_rows = 0;
    std::vector<Tree<float>> trees;
    for (int t = 0; t < n_trees; ++t) {
      Tree<float> tree(static_cast<std::size_t>(n_features));
      grow_node(tree, rng, 3, n_features, [&] { return n_rows++; });
      ASSERT_EQ(tree.validate(), "");
      trees.push_back(std::move(tree));
    }
    ForestModel<float> model;
    // Leaf payloads are leaf-value row indices; the structural forest's
    // num_classes() equals the row count (forest_model.hpp contract).
    model.forest = Forest<float>(std::move(trees), n_rows);
    model.leaf_kind = k == 1 ? LeafKind::Scalar : LeafKind::ScoreVector;
    model.aggregation.mode = AggregationMode::SumScores;
    model.n_outputs = k;
    model.handles_missing = true;
    model.zero_as_missing = (m % 2 == 0);
    if (m % 5 == 0) {
      model.aggregation.base_score.assign(static_cast<std::size_t>(k), 0.5f);
    }
    std::uniform_real_distribution<float> leaf(-4.0f, 4.0f);
    model.leaf_values.resize(static_cast<std::size_t>(n_rows) *
                             static_cast<std::size_t>(k));
    for (auto& v : model.leaf_values) v = leaf(rng);
    if (!model.forest.has_special_splits()) continue;  // vanishingly rare

    const std::size_t cols = model.forest.feature_count();
    const auto features =
        adversarial_inputs(model.forest, samples_per_model, rng);
    std::vector<float> expected(samples_per_model *
                                static_cast<std::size_t>(k));
    for (std::size_t s = 0; s < samples_per_model; ++s) {
      const auto scores = oracle_scores(model, features.data() + s * cols);
      std::copy(scores.begin(), scores.end(),
                expected.begin() + s * static_cast<std::size_t>(k));
    }

    auto round_backends = backends;
    if (m % 16 == 0) round_backends.emplace_back("jit:layout");
    for (const auto& backend : round_backends) {
      const auto predictor = make_predictor(model, backend);
      ASSERT_EQ(predictor->num_outputs(), k) << backend;
      std::vector<float> out(expected.size(),
                             std::numeric_limits<float>::quiet_NaN());
      predictor->predict_scores(features, samples_per_model, out);
      for (std::size_t j = 0; j < expected.size(); ++j) {
        // Bitwise equality: every backend accumulates float32 in tree
        // order, and NaN/zero routing may not perturb a single leaf.
        ASSERT_EQ(std::bit_cast<std::uint32_t>(out[j]),
                  std::bit_cast<std::uint32_t>(expected[j]))
            << backend << " model " << m << " flat index " << j << " got "
            << out[j] << " want " << expected[j];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// NaN bit-pattern exhaustiveness.
// ---------------------------------------------------------------------------

TEST(MissingNanBits, IntegerNanTestMatchesIeeeExhaustively) {
  using Traits = flint::core::FloatTraits<float>;
  // Every all-ones-exponent pattern, both signs: 2^24 candidates, the
  // complete NaN + infinity population.
  for (std::uint32_t sign : {0u, 0x80000000u}) {
    for (std::uint32_t mant = 0; mant <= 0x007FFFFFu; ++mant) {
      const std::uint32_t bits = sign | 0x7F800000u | mant;
      const float v = std::bit_cast<float>(bits);
      const bool ieee = std::isnan(v);
      const bool integer = flint::core::is_nan_bits<float>(
          static_cast<Traits::Signed>(bits));
      if (ieee != integer) {
        FAIL() << "is_nan_bits disagrees with std::isnan at 0x" << std::hex
               << bits;
      }
    }
  }
  // A coarse sweep of the finite landscape (prime stride) as the negative
  // control.
  for (std::uint64_t bits = 0; bits <= 0xFFFFFFFFull; bits += 2654435761ull) {
    const auto b = static_cast<std::uint32_t>(bits);
    ASSERT_EQ(std::isnan(std::bit_cast<float>(b)),
              flint::core::is_nan_bits<float>(static_cast<Traits::Signed>(b)))
        << "bits 0x" << std::hex << b;
  }
}

TEST(MissingNanBits, EveryNanPatternRoutesIdenticallyOnEveryBackend) {
  // One feature, every node shape: flagged-left numeric, flagged-right
  // numeric over a negative threshold, legacy flagless numeric, and a
  // categorical node whose set spans two words.
  std::vector<Tree<float>> trees;
  {
    Tree<float> t(1);
    const auto root = t.add_split(0, 0.5f, /*default_left=*/true);
    const auto l = t.add_leaf(0);
    const auto r = t.add_split(0, -0.25f, /*default_left=*/false);
    t.link(root, l, r);
    const auto rl = t.add_leaf(1);
    const auto rr = t.add_leaf(2);
    t.link(r, rl, rr);
    trees.push_back(std::move(t));
  }
  {
    Tree<float> t(1);
    const auto root = t.add_split(0, -0.0f);  // flagless: NaN goes right
    const auto l = t.add_leaf(2);
    const auto r = t.add_leaf(1);
    t.link(root, l, r);
    trees.push_back(std::move(t));
  }
  {
    Tree<float> t(1);
    const std::uint32_t words[] = {(1u << 1) | (1u << 3), 1u << 2};  // {1,3,34}
    const auto slot = t.add_cat_set(words);
    const auto root = t.add_cat_split(0, slot, /*default_left=*/false);
    const auto l = t.add_leaf(0);
    const auto r = t.add_leaf(2);
    t.link(root, l, r);
    trees.push_back(std::move(t));
  }
  const Forest<float> forest(std::move(trees), 3);
  ASSERT_TRUE(forest.has_special_splits());

  // Probe values: the full NaN zoo plus the finite landmarks around every
  // node (category members, non-members, zeros, denormals, infinities).
  std::vector<float> probes;
  for (const std::uint32_t bits : kNanPatterns) {
    probes.push_back(nan_from_bits(bits));
  }
  for (const float v : {0.0f, -0.0f, 0.5f, -0.25f, 1.0f, 3.0f, 34.0f, 2.0f,
                        35.0f, 64.0f, -1.0f, 1.5f,
                        std::numeric_limits<float>::denorm_min(),
                        -std::numeric_limits<float>::denorm_min(),
                        std::numeric_limits<float>::infinity(),
                        -std::numeric_limits<float>::infinity()}) {
    probes.push_back(v);
  }

  const std::int32_t nan_expected =
      oracle_vote(forest, &probes[0]);  // probes[0] is a NaN pattern
  auto probe_backends = vote_backends();
  probe_backends.emplace_back("jit:layout");  // one forest, one compile
  for (const auto& backend : probe_backends) {
    const auto predictor = make_predictor(forest, backend);
    for (const float v : probes) {
      const std::int32_t want = oracle_vote(forest, &v);
      ASSERT_EQ(predictor->predict_one({&v, 1}), want)
          << backend << " probe bits 0x" << std::hex
          << std::bit_cast<std::uint32_t>(v);
      // Payload/sign/quiet-bit invariance: every NaN is the same NaN.
      if (std::isnan(v)) {
        ASSERT_EQ(want, nan_expected)
            << "oracle not payload-invariant at 0x" << std::hex
            << std::bit_cast<std::uint32_t>(v);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// MissingPolicy boundary behavior.
// ---------------------------------------------------------------------------

Forest<float> flagless_stump() {
  Tree<float> t(2);
  const auto root = t.add_split(0, 1.0f);
  const auto l = t.add_leaf(0);
  const auto r = t.add_leaf(1);
  t.link(root, l, r);
  std::vector<Tree<float>> trees;
  trees.push_back(std::move(t));
  return Forest<float>(std::move(trees), 2);
}

TEST(MissingGate, ModelsWithoutMissingSupportStillRejectNaN) {
  const auto forest = flagless_stump();
  const auto predictor = make_predictor(forest, "encoded");
  EXPECT_FALSE(predictor->missing_policy().allow_nan);
  const float bad[] = {std::numeric_limits<float>::quiet_NaN(), 1.0f};
  std::vector<std::int32_t> out(1);
  EXPECT_THROW(predictor->predict_batch(bad, 1, out), std::invalid_argument);
  const float fine[] = {0.5f, 2.0f};
  predictor->predict_batch(fine, 1, out);
  EXPECT_EQ(out[0], 0);
}

TEST(MissingGate, FlaglessMissingModelsSubstituteNaNAtTheBoundary) {
  // handles_missing over a forest with NO default directions: the factory
  // keeps the legacy backends and rewrites NaN to +inf at the boundary,
  // which routes right at every finite split — the flag-free contract.
  ForestModel<float> model;
  model.forest = flagless_stump();
  model.leaf_kind = LeafKind::ClassId;
  model.handles_missing = true;
  for (const char* backend : {"encoded", "simd:flint", "layout:auto"}) {
    const auto predictor = make_predictor(model, backend);
    EXPECT_TRUE(predictor->missing_policy().allow_nan) << backend;
    EXPECT_TRUE(predictor->missing_policy().substitute_nan) << backend;
    for (const std::uint32_t bits : kNanPatterns) {
      const float x[] = {nan_from_bits(bits), 0.0f};
      ASSERT_EQ(predictor->predict_one(x), 1)
          << backend << ": NaN must route right through a flagless split";
    }
  }
}

TEST(MissingGate, SubstituteRefusesInfiniteSplits) {
  // +inf split: `v <= +inf` sends finite values left, so the NaN -> +inf
  // substitution would be wrong — the factory must refuse, not mis-route.
  Tree<float> t(1);
  const auto root = t.add_split(0, std::numeric_limits<float>::infinity());
  const auto l = t.add_leaf(0);
  const auto r = t.add_leaf(1);
  t.link(root, l, r);
  std::vector<Tree<float>> trees;
  trees.push_back(std::move(t));
  ForestModel<float> model;
  model.forest = Forest<float>(std::move(trees), 2);
  model.leaf_kind = LeafKind::ClassId;
  model.handles_missing = true;
  EXPECT_THROW((void)make_predictor(model, "encoded"), std::invalid_argument);
}

TEST(MissingGate, ZeroAsMissingRewritesExactlyTheDocumentedBand) {
  // One flagged stump, default LEFT on NaN; threshold far right so every
  // non-missing probe routes right: the left leaf is reachable only via
  // the missing rewrite.
  Tree<float> t(1);
  const auto root = t.add_split(0, -100.0f, /*default_left=*/true);
  const auto l = t.add_leaf(1);
  const auto r = t.add_leaf(0);
  t.link(root, l, r);
  std::vector<Tree<float>> trees;
  trees.push_back(std::move(t));
  ForestModel<float> model;
  model.forest = Forest<float>(std::move(trees), 2);
  model.leaf_kind = LeafKind::ClassId;
  model.handles_missing = true;
  model.zero_as_missing = true;
  const auto predictor = make_predictor(model, "encoded");
  EXPECT_TRUE(predictor->missing_policy().zero_as_missing);
  // Missing: NaN, +/-0, and |x| <= 1e-35 (denormals included).
  for (const float missing : {std::numeric_limits<float>::quiet_NaN(), 0.0f,
                              -0.0f, 1e-36f, -1e-36f,
                              std::numeric_limits<float>::denorm_min()}) {
    ASSERT_EQ(predictor->predict_one({&missing, 1}), 1)
        << "value " << missing << " must rewrite to missing";
  }
  // Not missing: everything with |x| > 1e-35 keeps its comparison.
  for (const float present : {1e-34f, -1e-34f, 1.0f, -99.0f, -101.0f}) {
    const std::int32_t want = present <= -100.0f ? 1 : 0;
    ASSERT_EQ(predictor->predict_one({&present, 1}), want)
        << "value " << present << " must NOT rewrite to missing";
  }
}

TEST(MissingGate, JitLayoutServesSpecialForestsNatively) {
  // jit:layout generates NaN-mask consults and categorical membership tests
  // into the module itself — special forests get real generated code, not
  // an interpreter fallback, and the predictor keeps its own name.
  std::mt19937_64 rng(77);
  const auto forest = random_vote_forest(rng);
  const auto predictor = make_predictor(forest, "jit:layout");
  EXPECT_EQ(predictor->name(), "jit:layout");
  EXPECT_TRUE(predictor->missing_policy().allow_nan);
  const std::size_t cols = forest.feature_count();
  const auto features = adversarial_inputs(forest, 64, rng);
  std::vector<std::int32_t> out(64, -1);
  predictor->predict_batch(features, 64, out);
  for (std::size_t s = 0; s < 64; ++s) {
    ASSERT_EQ(out[s], oracle_vote(forest, features.data() + s * cols))
        << "sample " << s;
  }
#ifdef FLINT_LEGACY_JIT
  // The retired flavors never learned NaN routing; they still fall back.
  const auto legacy = make_predictor(forest, "jit:ifelse-flint");
  EXPECT_EQ(legacy->name(), "encoded(fallback:jit:ifelse-flint)");
#endif
  // Unknown jit names still fail fast instead of silently falling back.
  EXPECT_THROW((void)make_predictor(forest, "jit:warp"),
               std::invalid_argument);
}

}  // namespace
