// Unit tests for src/model/: the ForestModel IR, the v2 container round
// trip, the external-model loaders (XGBoost JSON / LightGBM text / sklearn
// JSON) with their bit-exact threshold transforms, the vendored fixture
// gates (convert + reload + reproduce committed reference predictions
// through reference, simd:flint and layout:auto), and predict_scores
// property tests against explicit per-tree accumulation across every
// score backend.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "data/synth.hpp"
#include "model/forest_model.hpp"
#include "model/json.hpp"
#include "model/loaders.hpp"
#include "model/model_io.hpp"
#include "predict/predictor.hpp"
#include "trees/forest.hpp"
#include "trees/serialize.hpp"
#include "trees/train.hpp"

namespace {

namespace model = flint::model;
namespace trees = flint::trees;
namespace predict = flint::predict;

#ifndef FLINT_SOURCE_DIR
#error "FLINT_SOURCE_DIR must point at the repo root (set by CMakeLists.txt)"
#endif
const std::string kFixtureDir =
    std::string(FLINT_SOURCE_DIR) + "/tests/fixtures/external/";

/// ULP distance between two floats (0 = bit-identical up to +-0).
std::int64_t ulp_diff(float a, float b) {
  const auto key = [](float v) {
    const auto bits = std::bit_cast<std::int32_t>(v);
    return static_cast<std::int64_t>(
        bits >= 0 ? bits : std::numeric_limits<std::int32_t>::min() - bits);
  };
  return std::abs(key(a) - key(b));
}

/// A small additive leaf-value model: every leaf of a trained forest gets
/// its own leaf-value row filled deterministically.
model::ForestModel<float> make_score_model(int n_outputs, model::Link link,
                                           int n_trees = 6, int depth = 6,
                                           std::uint64_t seed = 7) {
  const auto spec = flint::data::spec_by_name("wine");
  const auto dataset = flint::data::generate<float>(spec, seed, 400);
  trees::ForestOptions options;
  options.n_trees = n_trees;
  options.tree.max_depth = depth;
  options.tree.seed = seed;
  auto forest = trees::train_forest(dataset, options);

  model::ForestModel<float> m;
  m.leaf_kind = n_outputs == 1 ? model::LeafKind::Scalar
                               : model::LeafKind::ScoreVector;
  m.aggregation.mode = model::AggregationMode::SumScores;
  m.aggregation.link = link;
  m.n_outputs = n_outputs;
  std::mt19937 rng(static_cast<unsigned>(seed));
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::int32_t next_row = 0;
  std::vector<trees::Tree<float>> rebuilt;
  for (std::size_t t = 0; t < forest.size(); ++t) {
    trees::Tree<float> tree = forest.tree(t);
    for (std::size_t i = 0; i < tree.size(); ++i) {
      auto& node = tree.node(static_cast<std::int32_t>(i));
      if (!node.is_leaf()) continue;
      node.prediction = next_row++;
      for (int j = 0; j < n_outputs; ++j) {
        m.leaf_values.push_back(dist(rng));
      }
    }
    rebuilt.push_back(std::move(tree));
  }
  for (int j = 0; j < n_outputs; ++j) {
    m.aggregation.base_score.push_back(dist(rng));
  }
  m.forest = trees::Forest<float>(std::move(rebuilt), next_row);
  EXPECT_EQ(m.validate(), "");
  return m;
}

std::vector<float> sample_rows(const model::ForestModel<float>& m,
                               std::size_t n, std::uint64_t seed = 99) {
  std::mt19937 rng(static_cast<unsigned>(seed));
  std::uniform_real_distribution<float> dist(-3.0f, 3.0f);
  std::vector<float> rows(n * m.forest.feature_count());
  for (auto& v : rows) v = dist(rng);
  return rows;
}

/// Explicit per-tree accumulation + finalize: the property-test oracle.
std::vector<float> manual_scores(const model::ForestModel<float>& m,
                                 const std::vector<float>& rows,
                                 std::size_t n) {
  const std::size_t cols = m.forest.feature_count();
  const auto k = static_cast<std::size_t>(m.n_outputs);
  std::vector<float> scores(n * k, 0.0f);
  for (std::size_t s = 0; s < n; ++s) {
    float* out = scores.data() + s * k;
    for (std::size_t j = 0; j < k; ++j) {
      out[j] = m.aggregation.base_score.empty() ? 0.0f
                                                : m.aggregation.base_score[j];
    }
    for (std::size_t t = 0; t < m.forest.size(); ++t) {
      const auto row = static_cast<std::size_t>(
          m.forest.tree(t).predict({rows.data() + s * cols, cols}));
      for (std::size_t j = 0; j < k; ++j) {
        out[j] += m.leaf_values[row * k + j];
      }
    }
  }
  // Base was already the accumulator seed (the backends' order); only the
  // link remains.
  model::apply_link(m.aggregation.link, n, k, scores.data());
  return scores;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

// ---------------------------------------------------------------------------
// JSON parser.
// ---------------------------------------------------------------------------

TEST(Json, ParsesScalarsArraysObjects) {
  const auto v = model::parse_json(
      R"({"a": [1, 2.5, -3e2], "b": {"c": "x\n"}, "d": true, "e": null})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_double(), 2.5);
  EXPECT_EQ(v.at("b").at("c").as_string(), "x\n");
  EXPECT_TRUE(v.at("d").as_bool());
  EXPECT_TRUE(v.at("e").is_null());
}

TEST(Json, KeepsRawNumberTokensAndHexFloats) {
  const auto v = model::parse_json(R"([0.1, 0x1.99999ap-4, -Infinity])");
  EXPECT_EQ(v.as_array()[0].raw_number(), "0.1");
  EXPECT_EQ(v.as_array()[1].raw_number(), "0x1.99999ap-4");
  // The hex token IS float 0.1's exact bit pattern.
  EXPECT_EQ(std::bit_cast<std::uint32_t>(
                std::strtof(v.as_array()[1].raw_number().c_str(), nullptr)),
            std::bit_cast<std::uint32_t>(0.1f));
  EXPECT_TRUE(std::isinf(v.as_array()[2].as_double()));
}

TEST(Json, ReportsLineAndColumn) {
  try {
    (void)model::parse_json("{\n  \"a\": [1,\n  }");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("3:"), std::string::npos) << e.what();
  }
}

// ---------------------------------------------------------------------------
// IR validation and v2 round trip.
// ---------------------------------------------------------------------------

TEST(ForestModel, ValidateCatchesInconsistencies) {
  auto m = make_score_model(3, model::Link::Softmax);
  EXPECT_EQ(m.validate(), "");
  EXPECT_EQ(m.num_classes(), 3);

  auto bad = m;
  bad.leaf_values.pop_back();
  EXPECT_NE(bad.validate(), "");

  bad = m;
  bad.aggregation.link = model::Link::Sigmoid;  // sigmoid needs k == 1
  EXPECT_NE(bad.validate(), "");

  bad = m;
  bad.forest.tree(0).node(0).prediction = 1 << 28;  // leaf row out of range
  // node 0 may be inner; force a leaf
  for (std::size_t i = 0; i < bad.forest.tree(0).size(); ++i) {
    auto& n = bad.forest.tree(0).node(static_cast<std::int32_t>(i));
    if (n.is_leaf()) {
      n.prediction = 1 << 28;
      break;
    }
  }
  EXPECT_NE(bad.validate(), "");
}

TEST(ForestModel, V2RoundTripIsBitExact) {
  const auto m = make_score_model(3, model::Link::Softmax);
  std::stringstream io;
  model::write_model(io, m);
  const auto back = model::read_model<float>(io);
  EXPECT_EQ(back.leaf_kind, m.leaf_kind);
  EXPECT_EQ(back.aggregation.link, m.aggregation.link);
  EXPECT_EQ(back.n_outputs, m.n_outputs);
  ASSERT_EQ(back.leaf_values.size(), m.leaf_values.size());
  for (std::size_t i = 0; i < m.leaf_values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(back.leaf_values[i]),
              std::bit_cast<std::uint32_t>(m.leaf_values[i]));
  }
  ASSERT_EQ(back.forest.size(), m.forest.size());
  for (std::size_t t = 0; t < m.forest.size(); ++t) {
    ASSERT_EQ(back.forest.tree(t).size(), m.forest.tree(t).size());
    for (std::size_t i = 0; i < m.forest.tree(t).size(); ++i) {
      const auto& a = m.forest.tree(t).node(static_cast<std::int32_t>(i));
      const auto& b = back.forest.tree(t).node(static_cast<std::int32_t>(i));
      EXPECT_EQ(std::bit_cast<std::uint32_t>(a.split),
                std::bit_cast<std::uint32_t>(b.split));
      EXPECT_EQ(a.prediction, b.prediction);
    }
  }
}

TEST(ForestModel, LoadForestRejectsV2WithPointer) {
  const auto m = make_score_model(1, model::Link::None);
  std::stringstream io;
  model::write_model(io, m);
  try {
    (void)trees::read_forest<float>(io);
    FAIL() << "expected v2 rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("v2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("load_any_model"), std::string::npos);
  }
}

TEST(ForestModel, LoadAnyModelBridgesV1) {
  const auto spec = flint::data::spec_by_name("eye");
  const auto dataset = flint::data::generate<float>(spec, 3, 200);
  trees::ForestOptions options;
  options.n_trees = 3;
  options.tree.max_depth = 5;
  const auto forest = trees::train_forest(dataset, options);
  const std::string path = ::testing::TempDir() + "/v1_bridge.forest";
  trees::save_forest(path, forest);
  const auto m = model::load_any_model<float>(path);
  EXPECT_TRUE(m.is_vote());
  EXPECT_EQ(m.num_classes(), forest.num_classes());
  for (std::size_t r = 0; r < 50; ++r) {
    EXPECT_EQ(m.forest.predict(dataset.row(r)), forest.predict(dataset.row(r)));
  }
}

// ---------------------------------------------------------------------------
// Loader threshold transforms (bit-level).
// ---------------------------------------------------------------------------

TEST(Loaders, XgboostLessThanBecomesPredecessorLe) {
  // One split: f0 < 0.1 -> leaf 1.0 else leaf 2.0 (values float32-native).
  const std::string dump = R"([{
    "nodeid": 0, "split": "f0", "split_condition": 0.1, "yes": 1, "no": 2,
    "missing": 1, "children": [
      {"nodeid": 1, "leaf": 1.0}, {"nodeid": 2, "leaf": 2.0}]}])";
  const auto m = model::load_xgboost_json<float>(dump);
  ASSERT_EQ(m.forest.size(), 1u);
  const auto& root = m.forest.tree(0).node(0);
  const float t = std::strtof("0.1", nullptr);
  EXPECT_EQ(std::bit_cast<std::uint32_t>(root.split),
            std::bit_cast<std::uint32_t>(
                std::nextafterf(t, -std::numeric_limits<float>::infinity())));
  // Boundary semantics: x == 0.1f goes RIGHT (x < t is false).
  EXPECT_EQ(m.forest.tree(0).predict(std::vector<float>{t}),
            m.forest.tree(0).node(m.forest.tree(0).node(0).right).prediction);
}

TEST(Loaders, Float64ThresholdNarrowsTowardMinusInfinity) {
  // 0.3000...04 is not float32-representable; the narrowed threshold must
  // be the largest float <= it, and x == (float)0.3 must still go left
  // exactly like the float64 comparison says.
  const double t64 = 0.30000000000000004;
  const std::string lgbm =
      "tree\nmax_feature_idx=0\nobjective=regression\n\n"
      "Tree=0\nnum_leaves=2\nsplit_feature=0\n"
      "threshold=0.30000000000000004\ndecision_type=2\n"
      "left_child=-1\nright_child=-2\nleaf_value=1 2\n\nend of trees\n";
  const auto m = model::load_lightgbm_text<float>(lgbm);
  const auto& root = m.forest.tree(0).node(0);
  EXPECT_LE(static_cast<double>(root.split), t64);
  EXPECT_GT(static_cast<double>(std::nextafterf(
                root.split, std::numeric_limits<float>::infinity())),
            t64);
  // (float)0.3 rounds UP to 0.30000001..., which exceeds t64: the float64
  // rule sends it right, and so must the narrowed comparison.
  EXPECT_EQ(m.forest.tree(0).predict(std::vector<float>{0.3f}),
            m.forest.tree(0).node(root.right).prediction);
  // The narrowed threshold itself is the largest float on the left side.
  EXPECT_EQ(m.forest.tree(0).predict(std::vector<float>{root.split}),
            m.forest.tree(0).node(root.left).prediction);
}

TEST(Loaders, RejectsCategoricalAndNaN) {
  const std::string categorical =
      "tree\nmax_feature_idx=0\nobjective=regression\n\n"
      "Tree=0\nnum_leaves=2\nsplit_feature=0\nthreshold=1\n"
      "decision_type=1\nleft_child=-1\nright_child=-2\nleaf_value=1 2\n\n"
      "end of trees\n";
  EXPECT_THROW((void)model::load_lightgbm_text<float>(categorical),
               std::runtime_error);
  const std::string nan_split = R"([{
    "nodeid": 0, "split": "f0", "split_condition": NaN, "yes": 1, "no": 2,
    "missing": 1, "children": [
      {"nodeid": 1, "leaf": 1.0}, {"nodeid": 2, "leaf": 2.0}]}])";
  EXPECT_THROW((void)model::load_xgboost_json<float>(nan_split),
               std::runtime_error);
}

TEST(Loaders, RejectsInexpressibleLightgbmModels) {
  const std::string tree_block =
      "Tree=0\nnum_leaves=2\nsplit_feature=0\nthreshold=1\n"
      "decision_type=2\nleft_child=-1\nright_child=-2\nleaf_value=1 2\n\n"
      "end of trees\n";
  // boosting=rf: prediction is a mean, not a sum.
  EXPECT_THROW((void)model::load_lightgbm_text<float>(
                   "tree\nmax_feature_idx=0\naverage_output\n"
                   "objective=regression\n\n" + tree_block),
               std::runtime_error);
  // linear_tree leaves carry linear functions.
  EXPECT_THROW((void)model::load_lightgbm_text<float>(
                   "tree\nmax_feature_idx=0\nlinear_tree=1\n"
                   "objective=regression\n\n" + tree_block),
               std::runtime_error);
  // Non-default sigmoid parameter scales the link.
  EXPECT_THROW((void)model::load_lightgbm_text<float>(
                   "tree\nmax_feature_idx=0\n"
                   "objective=binary sigmoid:0.5\n\n" + tree_block),
               std::runtime_error);
  // Mixed Zero- and NaN-type missing routing: one boundary rewrite cannot
  // serve both flavors at once.
  const std::string mixed_missing =
      "tree\nmax_feature_idx=0\nobjective=regression\n\n"
      "Tree=0\nnum_leaves=3\nsplit_feature=0 0\nthreshold=1 2\n"
      "decision_type=6 10\nleft_child=1 -2\nright_child=-1 -3\n"
      "leaf_value=1 2 3\n\n"
      "end of trees\n";
  EXPECT_THROW((void)model::load_lightgbm_text<float>(mixed_missing),
               std::runtime_error);
}

TEST(Loaders, LightgbmZeroAsMissingIngests) {
  // missing_type=Zero (decision_type 6 = default-left | Zero) now converts:
  // the model declares zero_as_missing and the split carries a default
  // direction instead of being rejected.
  const std::string zero_missing =
      "tree\nmax_feature_idx=0\nobjective=regression\n\n"
      "Tree=0\nnum_leaves=2\nsplit_feature=0\nthreshold=1\n"
      "decision_type=6\nleft_child=-1\nright_child=-2\nleaf_value=1 2\n\n"
      "end of trees\n";
  const auto m = model::load_lightgbm_text<float>(zero_missing);
  EXPECT_TRUE(m.handles_missing);
  EXPECT_TRUE(m.zero_as_missing);
  ASSERT_TRUE(m.forest.has_special_splits());
  const auto& root = m.forest.tree(0).node(0);
  EXPECT_TRUE(root.default_left());
}

TEST(Loaders, RejectsScrambledMulticlassTreeCounts) {
  // 2 trees cannot round-robin over num_class=3.
  const std::string dump = R"({"objective": "multi:softprob", "num_class": 3,
    "trees": [
      {"nodeid": 0, "leaf": 1.0},
      {"nodeid": 0, "leaf": 2.0}]})";
  EXPECT_THROW((void)model::load_xgboost_json<float>(dump),
               std::runtime_error);
}

TEST(ForestModel, ClassFromRawMatchesClassFromScores) {
  // class_from_raw (hot path, pre-link) and class_from_scores (post-link)
  // must encode the same decision rule.
  for (const auto& [k, link] :
       {std::pair<int, model::Link>{1, model::Link::Sigmoid},
        std::pair<int, model::Link>{3, model::Link::Softmax}}) {
    const auto m = make_score_model(k, link, 4, 4, 17);
    const std::size_t n = 64;
    const auto rows = sample_rows(m, n, 5);
    // Raw accumulation (base-seeded, no link) next to finalized scores.
    const std::size_t cols = m.forest.feature_count();
    const auto kk = static_cast<std::size_t>(k);
    std::vector<float> raw(n * kk);
    for (std::size_t s = 0; s < n; ++s) {
      float* out = raw.data() + s * kk;
      for (std::size_t j = 0; j < kk; ++j) {
        out[j] = m.aggregation.base_score.empty() ? 0.0f
                                                  : m.aggregation.base_score[j];
      }
      for (std::size_t t = 0; t < m.forest.size(); ++t) {
        const auto row = static_cast<std::size_t>(
            m.forest.tree(t).predict({rows.data() + s * cols, cols}));
        for (std::size_t j = 0; j < kk; ++j) {
          out[j] += m.leaf_values[row * kk + j];
        }
      }
    }
    auto linked = raw;
    model::apply_link(link, n, kk, linked.data());
    for (std::size_t s = 0; s < n; ++s) {
      EXPECT_EQ(model::class_from_raw(k, raw.data() + s * kk),
                model::class_from_scores(m, linked.data() + s * kk))
          << "k=" << k << " sample " << s;
    }
  }
}

TEST(Loaders, DetectsFormats) {
  EXPECT_EQ(model::detect_model_format("forest v1 3 2\n"),
            model::ModelFormat::Native);
  EXPECT_EQ(model::detect_model_format("forest v2 2\n"),
            model::ModelFormat::Native);
  EXPECT_EQ(model::detect_model_format("tree\nversion=v3\nTree=0\n"),
            model::ModelFormat::LightgbmText);
  EXPECT_EQ(model::detect_model_format(R"([{"nodeid": 0, "leaf": 1}])"),
            model::ModelFormat::XgboostJson);
  EXPECT_EQ(model::detect_model_format(R"({"format": "sklearn-forest"})"),
            model::ModelFormat::SklearnJson);
  EXPECT_THROW((void)model::detect_model_format("garbage"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Vendored fixture gates: load -> convert -> reload -> reproduce the
// committed reference predictions through the acceptance backends.
// ---------------------------------------------------------------------------

struct Fixture {
  std::string model_file;
  std::string stem;
  bool has_classes;
};

class FixtureGate : public ::testing::TestWithParam<Fixture> {};

TEST_P(FixtureGate, ConvertReloadAndMatchReference) {
  const Fixture& fx = GetParam();
  const auto m = model::load_external_model<float>(kFixtureDir + fx.model_file);
  ASSERT_EQ(m.validate(), "");

  // Convert round trip: save v2, reload, every threshold/leaf bit equal.
  const std::string v2_path = ::testing::TempDir() + "/" + fx.stem + ".v2";
  model::save_model(v2_path, m);
  const auto back = model::load_any_model<float>(v2_path);
  ASSERT_EQ(back.forest.size(), m.forest.size());
  for (std::size_t t = 0; t < m.forest.size(); ++t) {
    for (std::size_t i = 0; i < m.forest.tree(t).size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(
                    back.forest.tree(t).node(static_cast<std::int32_t>(i)).split),
                std::bit_cast<std::uint32_t>(
                    m.forest.tree(t).node(static_cast<std::int32_t>(i)).split));
    }
  }

  // Inputs and expectations.
  std::ifstream csv(kFixtureDir + fx.stem + "_input.csv");
  ASSERT_TRUE(csv);
  std::vector<float> features;
  std::vector<int> labels;
  std::string line;
  while (std::getline(csv, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tok;
    std::vector<float> row;
    while (std::getline(ls, tok, ',')) row.push_back(std::stof(tok));
    labels.push_back(static_cast<int>(row.back()));
    row.pop_back();
    features.insert(features.end(), row.begin(), row.end());
  }
  const std::size_t n = labels.size();
  ASSERT_GT(n, 0u);

  const auto k = static_cast<std::size_t>(m.n_outputs);
  std::vector<std::vector<float>> expected_scores;
  {
    std::ifstream sf(kFixtureDir + fx.stem + "_expected_scores.txt");
    ASSERT_TRUE(sf);
    while (std::getline(sf, line)) {
      if (line.empty()) continue;
      std::istringstream ls(line);
      std::string tok;
      std::vector<float> row;
      while (std::getline(ls, tok, ',')) row.push_back(std::stof(tok));
      ASSERT_EQ(row.size(), k);
      expected_scores.push_back(std::move(row));
    }
    ASSERT_EQ(expected_scores.size(), n);
  }
  std::vector<int> expected_classes;
  if (fx.has_classes) {
    std::ifstream cf(kFixtureDir + fx.stem + "_expected_classes.txt");
    ASSERT_TRUE(cf);
    int c;
    while (cf >> c) expected_classes.push_back(c);
    ASSERT_EQ(expected_classes.size(), n);
  }

  for (const char* backend : {"reference", "encoded", "simd:flint",
                              "layout:auto"}) {
    const auto predictor = predict::make_predictor(back, backend);
    std::vector<float> scores(n * k);
    predictor->predict_scores(features, n, scores);
    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t j = 0; j < k; ++j) {
        EXPECT_LE(ulp_diff(scores[s * k + j], expected_scores[s][j]), 2)
            << backend << " sample " << s << " output " << j << ": got "
            << scores[s * k + j] << " want " << expected_scores[s][j];
      }
    }
    if (fx.has_classes) {
      std::vector<std::int32_t> classes(n);
      predictor->predict_batch(features, n, classes);
      for (std::size_t s = 0; s < n; ++s) {
        EXPECT_EQ(classes[s], expected_classes[s])
            << backend << " sample " << s;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    External, FixtureGate,
    ::testing::Values(Fixture{"xgb_binary.json", "xgb_binary", true},
                      Fixture{"lgbm_regression.txt", "lgbm_regression", false},
                      Fixture{"sklearn_multiclass.json", "sklearn_multiclass",
                              true}),
    [](const auto& info) { return info.param.stem; });

// ---------------------------------------------------------------------------
// predict_scores property tests: every score backend == explicit per-tree
// accumulation, bit-identically (same summation order everywhere).
// ---------------------------------------------------------------------------

TEST(PredictScores, AllBackendsMatchPerTreeAccumulation) {
  for (const auto& [k, link] :
       {std::pair<int, model::Link>{1, model::Link::Sigmoid},
        std::pair<int, model::Link>{3, model::Link::Softmax},
        std::pair<int, model::Link>{1, model::Link::None}}) {
    const auto m = make_score_model(k, link);
    const std::size_t n = 64;
    const auto rows = sample_rows(m, n);
    const auto expected = manual_scores(m, rows, n);
    for (const char* backend :
         {"reference", "float", "encoded", "theorem1", "theorem2", "radix",
          "simd:flint", "simd:float", "layout:auto", "layout:c16",
          "jit:layout"}) {
      const auto predictor = predict::make_predictor(m, backend);
      ASSERT_TRUE(predictor->supports_scores()) << backend;
      EXPECT_EQ(predictor->num_outputs(), k) << backend;
      std::vector<float> scores(n * static_cast<std::size_t>(k));
      predictor->predict_scores(rows, n, scores);
      for (std::size_t i = 0; i < scores.size(); ++i) {
        EXPECT_EQ(std::bit_cast<std::uint32_t>(scores[i]),
                  std::bit_cast<std::uint32_t>(expected[i]))
            << backend << " idx " << i << " got " << scores[i] << " want "
            << expected[i];
      }
    }
  }
}

TEST(PredictScores, JitLayoutServesScoresNatively) {
  // jit:layout generates its own accumulate-scores body — no interpreter
  // fallback, the predictor keeps the real backend name.
  const auto m = make_score_model(1, model::Link::Sigmoid);
  const auto predictor = predict::make_predictor(m, "jit:layout");
  EXPECT_EQ(predictor->name(), "jit:layout");
#ifdef FLINT_LEGACY_JIT
  // The retired flavors only emit classify(); score models fall back.
  const auto legacy = predict::make_predictor(m, "jit:native-flint");
  EXPECT_NE(legacy->name().find("fallback"), std::string::npos)
      << legacy->name();
#endif
  EXPECT_THROW((void)predict::make_predictor(m, "jit:nonsense"),
               std::invalid_argument);
}

TEST(PredictScores, ClassesAgreeWithScoreReduction) {
  const auto m = make_score_model(3, model::Link::Softmax);
  const std::size_t n = 64;
  const auto rows = sample_rows(m, n);
  const auto scores = manual_scores(m, rows, n);
  for (const char* backend : {"reference", "encoded", "simd:flint",
                              "layout:auto"}) {
    const auto predictor = predict::make_predictor(m, backend);
    std::vector<std::int32_t> classes(n);
    predictor->predict_batch(rows, n, classes);
    for (std::size_t s = 0; s < n; ++s) {
      EXPECT_EQ(classes[s],
                model::class_from_scores(m, scores.data() + s * 3))
          << backend << " sample " << s;
    }
  }
}

TEST(PredictScores, ParallelPartitioningIsBitIdentical) {
  const auto m = make_score_model(3, model::Link::Softmax);
  const std::size_t n = 1000;
  const auto rows = sample_rows(m, n, 123);
  predict::PredictorOptions serial;
  predict::PredictorOptions parallel;
  parallel.threads = 4;
  parallel.block_size = 64;
  const auto p1 = predict::make_predictor(m, "encoded", serial);
  const auto p4 = predict::make_predictor(m, "encoded", parallel);
  EXPECT_EQ(p4->num_outputs(), 3);
  std::vector<float> s1(n * 3), s4(n * 3);
  p1->predict_scores(rows, n, s1);
  p4->predict_scores(rows, n, s4);
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(s1[i]),
              std::bit_cast<std::uint32_t>(s4[i]))
        << i;
  }
}

TEST(PredictScores, VoteBackendsRejectScoreCalls) {
  const auto spec = flint::data::spec_by_name("eye");
  const auto dataset = flint::data::generate<float>(spec, 3, 200);
  trees::ForestOptions options;
  options.n_trees = 3;
  const auto m = model::from_vote_forest(trees::train_forest(dataset, options));
  const auto predictor = predict::make_predictor(m, "encoded");
  EXPECT_FALSE(predictor->supports_scores());
  std::vector<float> scores(dataset.rows());
  EXPECT_THROW(
      predictor->predict_scores(dataset.values(), dataset.rows(), scores),
      std::logic_error);
}

TEST(PredictScores, RegressionModelsRejectPredictBatch) {
  const auto m = make_score_model(1, model::Link::None);
  EXPECT_FALSE(m.is_classifier());
  const auto predictor = predict::make_predictor(m, "encoded");
  const auto rows = sample_rows(m, 4);
  std::vector<std::int32_t> classes(4);
  EXPECT_THROW(predictor->predict_batch(rows, 4, classes), std::logic_error);
  std::vector<float> scores(4);
  predictor->predict_scores(rows, 4, scores);  // the regression API works
}

TEST(PredictScores, NaNAndShapeGatesApply) {
  const auto m = make_score_model(1, model::Link::None);
  const auto predictor = predict::make_predictor(m, "encoded");
  auto rows = sample_rows(m, 2);
  std::vector<float> scores(2);
  EXPECT_THROW(predictor->predict_scores({rows.data(), 3}, 2, scores),
               std::invalid_argument);
  rows[1] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(predictor->predict_scores(rows, 2, scores),
               std::invalid_argument);
}

}  // namespace
