// Tests for the exec/simd subsystem: the SoA packer's unified threshold
// algebra, the block transposer, the lockstep kernels' bit-identity to
// Forest::predict, and the serialize round-trip of adversarial thresholds
// (negative zero, denormals, infinities) feeding the SoA packer bit-exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>
#include <sstream>
#include <type_traits>
#include <vector>

#include "core/flint.hpp"
#include "data/synth.hpp"
#include "exec/interpreter.hpp"
#include "exec/simd/kernels.hpp"
#include "exec/simd/kernels_scalar.hpp"
#include "exec/simd/simd_engine.hpp"
#include "exec/simd/soa.hpp"
#include "trees/forest.hpp"
#include "trees/serialize.hpp"
#include "trees/train.hpp"

namespace {

using flint::core::encode_threshold_le;
using flint::core::FloatTraits;
using flint::core::si_bits;
using flint::core::ThresholdMode;
using flint::exec::simd::SimdForestEngine;
using flint::exec::simd::SimdMode;
using flint::exec::simd::SoaForest;
using flint::exec::simd::transpose_tiles;

/// The SoA packer's branch-free rewrite of EncodedThreshold (soa.hpp):
///   Direct:   (mask, thr) = (0, imm)
///   SignFlip: (mask, thr) = (abs_mask, ~imm)
/// evaluated as (si(x) ^ mask) <= thr.
template <typename T>
bool unified_le(T split, T x) {
  using S = typename FloatTraits<T>::Signed;
  const auto enc = encode_threshold_le(split);
  S mask = 0;
  S thr = enc.immediate;
  if (enc.mode == ThresholdMode::SignFlip) {
    mask = static_cast<S>(FloatTraits<T>::abs_mask);
    thr = static_cast<S>(~enc.immediate);
  }
  return (si_bits(x) ^ mask) <= thr;
}

template <typename T>
std::vector<T> special_values() {
  return {T{0.0},
          T{-0.0},
          std::numeric_limits<T>::denorm_min(),
          -std::numeric_limits<T>::denorm_min(),
          std::numeric_limits<T>::min(),
          -std::numeric_limits<T>::min(),
          std::numeric_limits<T>::infinity(),
          -std::numeric_limits<T>::infinity(),
          std::numeric_limits<T>::max(),
          std::numeric_limits<T>::lowest(),
          T{1.5},
          T{-1.5}};
}

// The unified single-compare form must agree with EncodedThreshold::le —
// and therefore with IEEE x <= split — for every (split, x) pair over the
// special-value cluster and a random sweep, in both widths.
TEST(UnifiedThreshold, MatchesEncodedThresholdAndIeee) {
  const auto run = [](auto tag) {
    using T = decltype(tag);
    for (const T split : special_values<T>()) {
      for (const T x : special_values<T>()) {
        const auto enc = encode_threshold_le(split);
        EXPECT_EQ(unified_le(split, x), enc.le(x))
            << "split=" << split << " x=" << x;
        EXPECT_EQ(unified_le(split, x), x <= split)
            << "split=" << split << " x=" << x;
      }
    }
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<T> dist(T{-1e6}, T{1e6});
    for (int i = 0; i < 20000; ++i) {
      const T split = dist(rng);
      const T x = dist(rng);
      ASSERT_EQ(unified_le(split, x), x <= split)
          << "split=" << split << " x=" << x;
    }
  };
  run(float{});
  run(double{});
}

TEST(Transposer, CompileTimeWidthRoundTripAndPadding) {
  // 3 rows x 2 cols with W = 2: two tiles, second tile half padded.
  const float rows[] = {1, 2, 3, 4, 5, 6};
  float tiles[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
  transpose_tiles<float, 2>(rows, 3, 2, tiles);
  // Tile 0: feature 0 lanes {1,3}, feature 1 lanes {2,4}.
  EXPECT_EQ(tiles[0], 1.0f);
  EXPECT_EQ(tiles[1], 3.0f);
  EXPECT_EQ(tiles[2], 2.0f);
  EXPECT_EQ(tiles[3], 4.0f);
  // Tile 1: lane 0 = row 2, lane 1 zero-padded.
  EXPECT_EQ(tiles[4], 5.0f);
  EXPECT_EQ(tiles[5], 0.0f);
  EXPECT_EQ(tiles[6], 6.0f);
  EXPECT_EQ(tiles[7], 0.0f);
}

TEST(Transposer, RuntimeWidthMatchesCompileTime) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<float> dist(-10.0f, 10.0f);
  const std::size_t n = 13, cols = 5;
  std::vector<float> rows(n * cols);
  for (auto& v : rows) v = dist(rng);
  const std::size_t tiles_len = ((n + 3) / 4) * cols * 4;
  std::vector<float> a(tiles_len, -1.0f), b(tiles_len, -1.0f);
  transpose_tiles<float, 4>(rows.data(), n, cols, a.data());
  transpose_tiles(rows.data(), n, cols, 4, b.data());
  EXPECT_EQ(a, b);
}

TEST(SoaForestPacking, LeavesSelfLoopAndStoreClasses) {
  flint::trees::Tree<float> tree(2);
  const auto root = tree.add_split(0, 0.5f);
  const auto l = tree.add_leaf(1);
  const auto r = tree.add_leaf(0);
  tree.link(root, l, r);
  const flint::trees::Forest<float> forest({tree}, 2);
  const SoaForest<float> soa(forest);
  ASSERT_EQ(soa.node_count(), 3u);
  ASSERT_EQ(soa.tree_count(), 1u);
  EXPECT_EQ(soa.roots[0], 0);
  EXPECT_EQ(soa.feature[0], 0);
  EXPECT_EQ(soa.left[0], 1);
  EXPECT_EQ(soa.right[0], 2);
  // Leaves: feature -1, self-looping children, class id in threshold.
  for (int i : {1, 2}) {
    EXPECT_EQ(soa.feature[i], -1);
    EXPECT_EQ(soa.left[i], i);
    EXPECT_EQ(soa.right[i], i);
  }
  EXPECT_EQ(soa.threshold[1], 1);
  EXPECT_EQ(soa.threshold[2], 0);
}

/// One split per adversarial threshold, classes = leaf side (x <= s -> 1).
flint::trees::Forest<float> adversarial_threshold_forest() {
  std::vector<flint::trees::Tree<float>> trees;
  for (const float split : special_values<float>()) {
    flint::trees::Tree<float> tree(1);
    const auto root = tree.add_split(0, split);
    const auto l = tree.add_leaf(1);
    const auto r = tree.add_leaf(0);
    tree.link(root, l, r);
    trees.push_back(tree);
  }
  return flint::trees::Forest<float>(std::move(trees), 2);
}

// Satellite: serialize round-trip of adversarial thresholds feeding the SoA
// packer.  The hex bit-pattern format must reproduce -0.0, denormals and
// infinities exactly, the packed threshold/xor_mask arrays must be
// bit-identical before and after the round trip, and the SIMD engines built
// from the reloaded forest must still match Forest::predict everywhere.
TEST(SerializeRoundTrip, AdversarialThresholdsFeedSoaPackerBitExact) {
  const auto forest = adversarial_threshold_forest();
  std::stringstream buf;
  flint::trees::write_forest(buf, forest);
  const auto reloaded = flint::trees::read_forest<float>(buf);
  ASSERT_EQ(reloaded.size(), forest.size());
  for (std::size_t t = 0; t < forest.size(); ++t) {
    const float original = forest.tree(t).node(0).split;
    const float back = reloaded.tree(t).node(0).split;
    EXPECT_EQ(si_bits(original), si_bits(back))
        << "split " << original << " did not round-trip bit-exactly";
  }
  const SoaForest<float> before(forest);
  const SoaForest<float> after(reloaded);
  ASSERT_EQ(after.node_count(), before.node_count());
  EXPECT_EQ(after.threshold, before.threshold);
  EXPECT_EQ(after.xor_mask, before.xor_mask);
  EXPECT_EQ(after.feature, before.feature);
  EXPECT_EQ(after.left, before.left);
  EXPECT_EQ(after.right, before.right);
  for (std::size_t i = 0; i < before.split.size(); ++i) {
    EXPECT_EQ(si_bits(before.split[i]), si_bits(after.split[i])) << i;
  }
  // End to end: both engine modes on the reloaded model, adversarial inputs.
  for (const SimdMode mode : {SimdMode::Flint, SimdMode::Float}) {
    const SimdForestEngine<float> engine(reloaded, mode);
    for (const float x : special_values<float>()) {
      EXPECT_EQ(engine.predict({&x, 1}), forest.predict({&x, 1}))
          << to_string(mode) << " x=" << x;
    }
  }
}

class SimdEngineOnTrainedForest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto data =
        flint::data::generate<float>(flint::data::magic_spec(), 11, 900);
    flint::trees::ForestOptions opt;
    opt.n_trees = 5;
    opt.tree.max_depth = 8;
    forest_ = flint::trees::train_forest(data, opt);
    std::mt19937_64 rng(17);
    std::uniform_real_distribution<float> dist(-50.0f, 50.0f);
    features_.resize(1003 * forest_.feature_count());  // odd tail vs any W
    for (auto& v : features_) v = dist(rng);
  }

  flint::trees::Forest<float> forest_;
  std::vector<float> features_;
};

// The engine must classify identically at every block size (tail tiles,
// padded lanes) and in both compare modes, and report a coherent kernel.
TEST_F(SimdEngineOnTrainedForest, BlockSizeAndModeInvariance) {
  const std::size_t cols = forest_.feature_count();
  const std::size_t n = features_.size() / cols;
  std::vector<std::int32_t> expected(n);
  for (std::size_t s = 0; s < n; ++s) {
    expected[s] = forest_.predict({features_.data() + s * cols, cols});
  }
  for (const SimdMode mode : {SimdMode::Flint, SimdMode::Float}) {
    for (const std::size_t block : {std::size_t{1}, std::size_t{7},
                                    std::size_t{64}, std::size_t{4096}}) {
      const SimdForestEngine<float> engine(forest_, mode, block);
      EXPECT_GE(engine.lane_width(), 1u);
      EXPECT_TRUE(std::string(engine.kernel_name()) == "avx2" ||
                  std::string(engine.kernel_name()) == "neon" ||
                  std::string(engine.kernel_name()) == "scalar")
          << engine.kernel_name();
      std::vector<std::int32_t> out(n, -1);
      engine.predict_batch(features_.data(), n, out.data());
      ASSERT_EQ(out, expected)
          << to_string(mode) << " block=" << block << " kernel "
          << engine.kernel_name();
    }
  }
}

// The scalar template must produce identical vote matrices at every lane
// width (padding, tile seams); when an AVX2 kernel is built and the CPU
// runs it, its votes are cross-checked against the template lane for lane.
// (Engine-level bit-identity to Forest::predict for whichever kernel is
// dispatched is covered by BlockSizeAndModeInvariance above.)
TEST_F(SimdEngineOnTrainedForest, ScalarWidthInvarianceAndKernelVotes) {
  const std::size_t cols = forest_.feature_count();
  const std::size_t n = 96;  // multiple of all widths under test
  const SoaForest<float> soa(forest_);
  const auto classes = static_cast<std::size_t>(soa.num_classes);
  const auto run_scalar = [&](auto width_tag, bool flint_mode) {
    constexpr std::size_t W = decltype(width_tag)::value;
    std::vector<float> tiles((n / W) * cols * W);
    transpose_tiles<float, W>(features_.data(), n, cols, tiles.data());
    std::vector<int> votes(n * classes, 0);
    if (flint_mode) {
      flint::exec::simd::predict_tiles_scalar<float, W, true>(
          soa, tiles.data(), n / W, votes.data());
    } else {
      flint::exec::simd::predict_tiles_scalar<float, W, false>(
          soa, tiles.data(), n / W, votes.data());
    }
    return votes;
  };
  for (const bool flint_mode : {true, false}) {
    const auto v1 = run_scalar(std::integral_constant<std::size_t, 1>{},
                               flint_mode);
    const auto v4 = run_scalar(std::integral_constant<std::size_t, 4>{},
                               flint_mode);
    const auto v8 = run_scalar(std::integral_constant<std::size_t, 8>{},
                               flint_mode);
    EXPECT_EQ(v1, v4);
    EXPECT_EQ(v1, v8);
    // Vote totals per sample must equal the tree count.
    for (std::size_t s = 0; s < n; ++s) {
      int total = 0;
      for (std::size_t c = 0; c < classes; ++c) total += v1[s * classes + c];
      ASSERT_EQ(total, static_cast<int>(soa.tree_count())) << s;
    }
#if defined(FLINT_SIMD_AVX2)
    if (flint::exec::simd::avx2_supported()) {
      std::vector<float> tiles((n / 8) * cols * 8);
      transpose_tiles<float, 8>(features_.data(), n, cols, tiles.data());
      std::vector<int> votes(n * classes, 0);
      if (flint_mode) {
        flint::exec::simd::predict_tiles_flint_avx2(soa, tiles.data(), n / 8,
                                                    votes.data());
      } else {
        flint::exec::simd::predict_tiles_float_avx2(soa, tiles.data(), n / 8,
                                                    votes.data());
      }
      EXPECT_EQ(votes, v8) << "AVX2 kernel votes diverge from the scalar "
                              "template (flint_mode="
                           << flint_mode << ")";
    }
#endif
  }
}

TEST(SimdEngineDouble, ScalarLanesMatchForestPredict) {
  const auto data =
      flint::data::generate<double>(flint::data::wine_spec(), 5, 600);
  flint::trees::ForestOptions opt;
  opt.n_trees = 4;
  opt.tree.max_depth = 7;
  const auto forest = flint::trees::train_forest(data, opt);
  for (const SimdMode mode : {SimdMode::Flint, SimdMode::Float}) {
    const SimdForestEngine<double> engine(forest, mode);
    EXPECT_STREQ(engine.kernel_name(), "scalar");  // no double AVX2/NEON path
    std::vector<std::int32_t> out(data.rows());
    engine.predict_batch(data.values().data(), data.rows(), out.data());
    for (std::size_t r = 0; r < data.rows(); ++r) {
      ASSERT_EQ(out[r], forest.predict(data.row(r)))
          << to_string(mode) << " row " << r;
    }
  }
}

// The kernels index vote rows by leaf class with no hot-path bounds check,
// so a model whose header understates num_classes (constructible by hand
// and reachable through read_forest) must be rejected at pack time — by
// the SoA packer and by the per-sample engines alike — instead of writing
// past the vote buffers.
TEST(SimdEngineEdgeCases, OutOfRangeLeafClassRejectedAtPackTime) {
  flint::trees::Tree<float> tree(1);
  const auto root = tree.add_split(0, 0.0f);
  tree.link(root, tree.add_leaf(0), tree.add_leaf(5));
  const flint::trees::Forest<float> lying({tree}, /*num_classes=*/2);
  EXPECT_THROW(SoaForest<float>{lying}, std::invalid_argument);
  EXPECT_THROW(flint::exec::FlintForestEngine<float>(
                   lying, flint::exec::FlintVariant::Encoded),
               std::invalid_argument);
  EXPECT_THROW(flint::exec::FloatForestEngine<float>{lying},
               std::invalid_argument);
  // And read_forest refuses such a model file outright, which also covers
  // the jit backends (their generated code indexes the same vote array
  // with no engine-side pack step).
  std::stringstream buf;
  flint::trees::write_forest(buf, lying);
  EXPECT_THROW((void)flint::trees::read_forest<float>(buf),
               std::runtime_error);
}

TEST(SimdEngineEdgeCases, EmptyBatchAndEmptyForest) {
  flint::trees::Tree<float> tree(1);
  const auto root = tree.add_split(0, 0.0f);
  tree.link(root, tree.add_leaf(0), tree.add_leaf(1));
  const flint::trees::Forest<float> forest({tree}, 2);
  const SimdForestEngine<float> engine(forest, SimdMode::Flint);
  std::vector<std::int32_t> out(2, -5);
  engine.predict_batch(nullptr, 0, out.data());  // no-op, no deref
  EXPECT_EQ(out[0], -5);
  EXPECT_THROW(SimdForestEngine<float>(flint::trees::Forest<float>{},
                                       SimdMode::Flint),
               std::invalid_argument);
}

}  // namespace
