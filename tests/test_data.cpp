// Unit tests for data/: dataset container, CSV I/O, synthetic generators,
// train/test splitting.
#include <gtest/gtest.h>

#include <stdlib.h>  // mkdtemp (POSIX)

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "data/csv.hpp"
#include "data/dataset.hpp"
#include "data/split.hpp"
#include "data/synth.hpp"

namespace {

using flint::data::Dataset;

TEST(Dataset, AddRowAndAccessors) {
  Dataset<float> ds("demo", 3);
  ds.add_row(std::vector<float>{1.0f, 2.0f, 3.0f}, 0);
  ds.add_row(std::vector<float>{4.0f, 5.0f, 6.0f}, 2);
  EXPECT_EQ(ds.rows(), 2u);
  EXPECT_EQ(ds.cols(), 3u);
  EXPECT_EQ(ds.num_classes(), 3);  // labels {0,2} -> dense ids up to 2
  EXPECT_EQ(ds.label(1), 2);
  EXPECT_EQ(ds.row(1)[0], 4.0f);
  EXPECT_EQ(ds.name(), "demo");
}

TEST(Dataset, AddRowShapeMismatchThrows) {
  Dataset<float> ds("demo", 3);
  EXPECT_THROW(ds.add_row(std::vector<float>{1.0f}, 0), std::invalid_argument);
  EXPECT_THROW(ds.add_row(std::vector<float>{1, 2, 3, 4}, 0), std::invalid_argument);
  EXPECT_THROW(ds.add_row(std::vector<float>{1, 2, 3}, -1), std::invalid_argument);
}

TEST(Dataset, ClassHistogram) {
  Dataset<float> ds("demo", 1);
  for (const int l : {0, 1, 1, 2, 2, 2}) {
    ds.add_row(std::vector<float>{0.0f}, l);
  }
  const auto hist = ds.class_histogram();
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 3u);
}

TEST(Dataset, SubsetWithRepetition) {
  Dataset<float> ds("demo", 2);
  ds.add_row(std::vector<float>{1, 2}, 0);
  ds.add_row(std::vector<float>{3, 4}, 1);
  const std::vector<std::size_t> idx{1, 1, 0};
  const auto sub = ds.subset(idx);
  EXPECT_EQ(sub.rows(), 3u);
  EXPECT_EQ(sub.label(0), 1);
  EXPECT_EQ(sub.label(2), 0);
  EXPECT_EQ(sub.row(1)[1], 4.0f);
}

TEST(Dataset, SubsetOutOfRangeThrows) {
  Dataset<float> ds("demo", 1);
  ds.add_row(std::vector<float>{1.0f}, 0);
  const std::vector<std::size_t> idx{5};
  EXPECT_THROW((void)ds.subset(idx), std::out_of_range);
}

TEST(Csv, RoundTripExactBits) {
  Dataset<float> ds("demo", 2);
  ds.add_row(std::vector<float>{10.074347f, -2.935417f}, 0);
  ds.add_row(std::vector<float>{1e-38f, 3.4e38f}, 1);
  std::ostringstream out;
  flint::data::write_csv(out, ds);
  std::istringstream in(out.str());
  const auto back = flint::data::read_csv<float>(in, "demo");
  ASSERT_EQ(back.rows(), ds.rows());
  ASSERT_EQ(back.cols(), ds.cols());
  for (std::size_t r = 0; r < ds.rows(); ++r) {
    EXPECT_EQ(back.label(r), ds.label(r));
    for (std::size_t c = 0; c < ds.cols(); ++c) {
      EXPECT_EQ(back.row(r)[c], ds.row(r)[c]) << r << "," << c;
    }
  }
}

TEST(Csv, SkipsCommentsAndEmptyLines) {
  std::istringstream in("# header\n\n1.5,2.5,0\n# mid comment\n3.5,4.5,1\n");
  const auto ds = flint::data::read_csv<float>(in, "t");
  EXPECT_EQ(ds.rows(), 2u);
  EXPECT_EQ(ds.cols(), 2u);
}

TEST(Csv, MalformedInputsReportLineNumbers) {
  {
    std::istringstream in("1.5,x,0\n");
    EXPECT_THROW((void)flint::data::read_csv<float>(in, "t"), std::runtime_error);
  }
  {
    std::istringstream in("1.5,2.0,0\n1.5,0\n");  // column count change
    try {
      (void)flint::data::read_csv<float>(in, "t");
      FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos) << e.what();
    }
  }
  {
    std::istringstream in("42\n");  // label only, no features
    EXPECT_THROW((void)flint::data::read_csv<float>(in, "t"), std::runtime_error);
  }
  {
    std::istringstream in("1.0,-3\n");  // negative label
    EXPECT_THROW((void)flint::data::read_csv<float>(in, "t"), std::runtime_error);
  }
}

// Empty feature fields are missing values and must read as quiet NaN —
// every booster's CSV tooling writes missing cells as nothing at all.  The
// label column stays strict: an empty label is a malformed row.
TEST(Csv, EmptyFeatureFieldReadsAsNaN) {
  std::istringstream in("1.5,,0\n,2.5,1\n,,1\n");
  const auto ds = flint::data::read_csv<float>(in, "t");
  ASSERT_EQ(ds.rows(), 3u);
  ASSERT_EQ(ds.cols(), 2u);
  EXPECT_EQ(ds.row(0)[0], 1.5f);
  EXPECT_TRUE(std::isnan(ds.row(0)[1]));
  EXPECT_TRUE(std::isnan(ds.row(1)[0]));
  EXPECT_EQ(ds.row(1)[1], 2.5f);
  EXPECT_TRUE(std::isnan(ds.row(2)[0]));
  EXPECT_TRUE(std::isnan(ds.row(2)[1]));
  EXPECT_EQ(ds.label(2), 1);
}

TEST(Csv, EmptyLabelFieldThrows) {
  std::istringstream in("1.5,2.5,\n");
  EXPECT_THROW((void)flint::data::read_csv<float>(in, "t"),
               std::runtime_error);
}

// A "nan" token round-trips through write_csv/read_csv (ostream prints NaN
// as "nan", from_chars reads it back), so datasets with missing values
// survive a save/load cycle.
TEST(Csv, NanTokenRoundTrips) {
  Dataset<float> ds("t", 2);
  ds.add_row(std::vector<float>{std::numeric_limits<float>::quiet_NaN(), 7.0f},
             0);
  std::ostringstream out;
  flint::data::write_csv(out, ds);
  std::istringstream in(out.str());
  const auto back = flint::data::read_csv<float>(in, "t");
  ASSERT_EQ(back.rows(), 1u);
  EXPECT_TRUE(std::isnan(back.row(0)[0]));
  EXPECT_EQ(back.row(0)[1], 7.0f);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW((void)flint::data::load_csv<float>("/nonexistent/x.csv"),
               std::runtime_error);
}

// Regression: CRLF line endings used to leave a '\r' glued to the label
// field of every row, and the parser rejected the file instead of reading
// it.  Windows-edited CSVs are a routine input; both getline-visible line
// ending styles must parse to the same dataset.
TEST(Csv, AcceptsCrlfLineEndings) {
  std::istringstream lf("# h\n1.5,2.5,0\n3.5,4.5,1\n");
  std::istringstream crlf("# h\r\n1.5,2.5,0\r\n3.5,4.5,1\r\n");
  const auto a = flint::data::read_csv<float>(lf, "lf");
  const auto b = flint::data::read_csv<float>(crlf, "crlf");
  ASSERT_EQ(a.rows(), 2u);
  ASSERT_EQ(b.rows(), a.rows());
  ASSERT_EQ(b.cols(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    EXPECT_EQ(b.label(r), a.label(r));
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_EQ(b.row(r)[c], a.row(r)[c]) << r << "," << c;
    }
  }
  // Blank CRLF lines ("\r\n" -> "\r" after getline) are skipped, not rows.
  std::istringstream blanks("\r\n1.0,2.0,0\r\n\r\n");
  EXPECT_EQ(flint::data::read_csv<float>(blanks, "b").rows(), 1u);
}

// Regression: a final row without a trailing newline must not be dropped
// or corrupted — with or without a CR from a CRLF-style file.
TEST(Csv, LastRowWithoutTrailingNewline) {
  std::istringstream plain("1.5,2.5,0\n3.5,4.5,1");
  const auto a = flint::data::read_csv<float>(plain, "t");
  ASSERT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.row(1)[0], 3.5f);
  EXPECT_EQ(a.label(1), 1);
  std::istringstream cr_tail("1.5,2.5,0\r\n3.5,4.5,1\r");
  const auto b = flint::data::read_csv<float>(cr_tail, "t");
  ASSERT_EQ(b.rows(), 2u);
  EXPECT_EQ(b.row(1)[1], 4.5f);
  EXPECT_EQ(b.label(1), 1);
}

// Same two regressions through the file path (load_csv), with fixture
// files written byte-exactly so no text-mode layer can rewrite endings.
TEST(Csv, CrlfAndNoTrailingNewlineFixtureFiles) {
  namespace fs = std::filesystem;
  // mkdtemp: a unique per-process directory, so concurrent suite runs
  // (e.g. build/ and build-asan/ in parallel) cannot race on fixtures.
  std::string tmpl =
      (fs::temp_directory_path() / "flint_csv_fixtures_XXXXXX").string();
  ASSERT_NE(::mkdtemp(tmpl.data()), nullptr);
  const fs::path dir = tmpl;
  struct Fixture {
    const char* name;
    const char* bytes;
  };
  const Fixture fixtures[] = {
      {"crlf.csv", "1.5,2.5,0\r\n3.5,4.5,1\r\n"},
      {"no_trailing_newline.csv", "1.5,2.5,0\n3.5,4.5,1"},
      {"crlf_no_trailing_newline.csv", "1.5,2.5,0\r\n3.5,4.5,1"},
  };
  for (const auto& f : fixtures) {
    const fs::path path = dir / f.name;
    {
      std::ofstream out(path, std::ios::binary);
      ASSERT_TRUE(out.is_open()) << path;
      out << f.bytes;
    }
    const auto ds = flint::data::load_csv<float>(path.string());
    ASSERT_EQ(ds.rows(), 2u) << f.name;
    ASSERT_EQ(ds.cols(), 2u) << f.name;
    EXPECT_EQ(ds.row(1)[0], 3.5f) << f.name;
    EXPECT_EQ(ds.row(1)[1], 4.5f) << f.name;
    EXPECT_EQ(ds.label(1), 1) << f.name;
  }
  fs::remove_all(dir);
}

TEST(Synth, SpecTableMatchesPaperDatasets) {
  // Feature/class counts of the five UCI datasets (paper Section V-A).
  const struct { const char* name; int features; int classes; } expected[] = {
      {"eye", 14, 2}, {"gas", 128, 6}, {"magic", 10, 2},
      {"sensorless", 48, 11}, {"wine", 11, 7},
  };
  for (const auto& e : expected) {
    const auto spec = flint::data::spec_by_name(e.name);
    EXPECT_EQ(spec.features, e.features) << e.name;
    EXPECT_EQ(spec.classes, e.classes) << e.name;
  }
  EXPECT_EQ(flint::data::all_specs().size(), 5u);
  EXPECT_THROW((void)flint::data::spec_by_name("mnist"), std::invalid_argument);
}

TEST(Synth, DeterministicInSeed) {
  const auto spec = flint::data::magic_spec();
  const auto a = flint::data::generate<float>(spec, 7, 500);
  const auto b = flint::data::generate<float>(spec, 7, 500);
  const auto c = flint::data::generate<float>(spec, 8, 500);
  ASSERT_EQ(a.rows(), b.rows());
  EXPECT_TRUE(std::equal(a.values().begin(), a.values().end(),
                         b.values().begin()));
  EXPECT_FALSE(std::equal(a.values().begin(), a.values().end(),
                          c.values().begin()));
}

TEST(Synth, AllClassesPresent) {
  for (const auto& spec : flint::data::all_specs()) {
    const auto ds = flint::data::generate<float>(spec, 1, 2000);
    EXPECT_EQ(ds.rows(), 2000u);
    EXPECT_EQ(static_cast<int>(ds.cols()), spec.features);
    const auto hist = ds.class_histogram();
    ASSERT_EQ(static_cast<int>(hist.size()), spec.classes) << spec.name;
    for (std::size_t c = 0; c < hist.size(); ++c) {
      EXPECT_GT(hist[c], 0u) << spec.name << " class " << c;
    }
  }
}

TEST(Synth, SignedSpecsProduceNegativeValues) {
  // gas/magic/sensorless declare negative-valued features; trained trees on
  // them exercise the SignFlip codegen path.
  for (const char* name : {"gas", "magic", "sensorless"}) {
    const auto ds = flint::data::generate<float>(
        flint::data::spec_by_name(name), 3, 1000);
    const bool has_negative =
        std::any_of(ds.values().begin(), ds.values().end(),
                    [](float v) { return v < 0.0f; });
    EXPECT_TRUE(has_negative) << name;
  }
}

TEST(Synth, AllValuesFinite) {
  for (const auto& spec : flint::data::all_specs()) {
    const auto ds = flint::data::generate<float>(spec, 5, 1000);
    for (const float v : ds.values()) {
      ASSERT_TRUE(std::isfinite(v)) << spec.name;
    }
  }
}

TEST(Split, FractionAndDisjointness) {
  const auto ds = flint::data::generate<float>(flint::data::wine_spec(), 2, 1000);
  const auto split = flint::data::train_test_split(ds, 0.25, 9);
  EXPECT_EQ(split.test.rows(), 250u);
  EXPECT_EQ(split.train.rows(), 750u);
  EXPECT_EQ(split.train.cols(), ds.cols());
  // Union preserves the total class histogram.
  const auto h_all = ds.class_histogram();
  const auto h_train = split.train.class_histogram();
  const auto h_test = split.test.class_histogram();
  for (std::size_t c = 0; c < h_all.size(); ++c) {
    const std::size_t train_c = c < h_train.size() ? h_train[c] : 0;
    const std::size_t test_c = c < h_test.size() ? h_test[c] : 0;
    EXPECT_EQ(h_all[c], train_c + test_c);
  }
}

TEST(Split, DeterministicInSeed) {
  const auto ds = flint::data::generate<float>(flint::data::wine_spec(), 2, 400);
  const auto a = flint::data::train_test_split(ds, 0.25, 1);
  const auto b = flint::data::train_test_split(ds, 0.25, 1);
  EXPECT_TRUE(std::equal(a.test.values().begin(), a.test.values().end(),
                         b.test.values().begin()));
}

TEST(Split, InvalidArgumentsThrow) {
  const auto ds = flint::data::generate<float>(flint::data::wine_spec(), 2, 100);
  EXPECT_THROW((void)flint::data::train_test_split(ds, 0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)flint::data::train_test_split(ds, 1.0, 1), std::invalid_argument);
  Dataset<float> tiny("tiny", 1);
  tiny.add_row(std::vector<float>{1.0f}, 0);
  EXPECT_THROW((void)flint::data::train_test_split(tiny, 0.5, 1), std::invalid_argument);
}

TEST(Split, ExtremeFractionsKeepBothSidesNonEmpty) {
  const auto ds = flint::data::generate<float>(flint::data::wine_spec(), 2, 50);
  const auto tiny_test = flint::data::train_test_split(ds, 0.001, 1);
  EXPECT_GE(tiny_test.test.rows(), 1u);
  const auto tiny_train = flint::data::train_test_split(ds, 0.999, 1);
  EXPECT_GE(tiny_train.train.rows(), 1u);
}

}  // namespace
