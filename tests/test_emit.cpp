// Unit tests for the shared emission layer: CodeWriter, literal formatting,
// condition rendering, prologue/driver golden checks.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>

#include "codegen/emit.hpp"

namespace {

using namespace flint::codegen;

TEST(CodeWriter, IndentationLifecycle) {
  CodeWriter w;
  w.open("if (x) {");
  w.line("a();");
  w.reopen("} else {");
  w.line("b();");
  w.close();
  EXPECT_EQ(w.str(),
            "if (x) {\n"
            "  a();\n"
            "} else {\n"
            "  b();\n"
            "}\n");
}

TEST(CodeWriter, BlankAndRaw) {
  CodeWriter w;
  w.line("x");
  w.blank();
  w.raw("raw\n");
  EXPECT_EQ(w.str(), "x\n\nraw\n");
}

TEST(CodeWriter, CloseBelowZeroIsClamped) {
  CodeWriter w;
  w.close();
  w.close();
  w.line("x");
  EXPECT_EQ(w.str(), "}\n}\nx\n");
}

TEST(CodeWriter, TakeMovesContent) {
  CodeWriter w;
  w.line("x");
  const std::string s = w.take();
  EXPECT_EQ(s, "x\n");
}

TEST(FloatLiteral, RoundTripsExactly) {
  // std::stof rejects subnormals (ERANGE), so parse with strtof as the C
  // compiler effectively does.
  for (const float v : {10.0743475f, -2.9354167f, 1e-38f, 3.4e38f, 0.5f,
                        -0.0f, 1234567.0f}) {
    const std::string lit = c_float_literal(v);
    EXPECT_EQ(std::strtof(lit.c_str(), nullptr), v) << lit;
    EXPECT_EQ(lit.back(), 'f') << lit;
  }
}

TEST(FloatLiteral, IntegerValuedFloatsGetDecimalPoint) {
  EXPECT_EQ(c_float_literal(10.0f), "10.0f");
  EXPECT_EQ(c_float_literal(-3.0f), "-3.0f");
  EXPECT_EQ(c_float_literal(0.0f), "0.0f");
}

TEST(FloatLiteral, DoubleVariant) {
  EXPECT_EQ(c_float_literal(1.5), "1.5");
  EXPECT_EQ(std::stod(c_float_literal(0.1)), 0.1);
  EXPECT_EQ(c_float_literal(2.0), "2.0");
}

TEST(FloatLiteral, NonFiniteThrows) {
  EXPECT_THROW((void)c_float_literal(std::numeric_limits<float>::infinity()),
               std::invalid_argument);
  EXPECT_THROW((void)c_float_literal(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(ScalarName, BothWidths) {
  EXPECT_STREQ(c_scalar_name<float>(), "float");
  EXPECT_STREQ(c_scalar_name<double>(), "double");
}

TEST(ConditionLe, FloatAndFlintForms) {
  CGenOptions opt;
  EXPECT_EQ(condition_le(opt, 3, 1.5f), "pX[3] <= 1.5f");
  opt.flint = true;
  opt.prefix = "m";
  EXPECT_EQ(condition_le(opt, 3, 1.5f),
            "(m_ld(pX + 3) <= ((int32_t)0x3fc00000))");
  EXPECT_EQ(condition_le(opt, 0, -1.5f),
            "(((int32_t)0x3fc00000) <= (m_ld(pX + 0) ^ ((int32_t)0x80000000)))");
}

TEST(ConditionGt, IsExactComplementForm) {
  CGenOptions opt;
  EXPECT_EQ(condition_gt(opt, 2, 1.5f), "pX[2] > 1.5f");
  opt.flint = true;
  opt.prefix = "m";
  EXPECT_EQ(condition_gt(opt, 2, 1.5f),
            "(m_ld(pX + 2) > ((int32_t)0x3fc00000))");
  EXPECT_EQ(condition_gt(opt, 2, -1.5f),
            "(((int32_t)0x3fc00000) > (m_ld(pX + 2) ^ ((int32_t)0x80000000)))");
}

TEST(ConditionForms, DoubleWidthUsesInt64) {
  CGenOptions opt;
  opt.flint = true;
  opt.prefix = "m";
  const auto le = condition_le(opt, 1, -1.5);
  EXPECT_NE(le.find("int64_t"), std::string::npos);
  EXPECT_NE(le.find("0x8000000000000000"), std::string::npos);
}

TEST(Prologue, FlintVersionDefinesLoader) {
  CodeWriter w;
  CGenOptions opt;
  opt.flint = true;
  opt.prefix = "m";
  emit_c_prologue<float>(w, opt);
  const std::string s = w.str();
  EXPECT_NE(s.find("#include <stdint.h>"), std::string::npos);
  EXPECT_NE(s.find("static inline int32_t m_ld(const float* p)"),
            std::string::npos);
  EXPECT_NE(s.find("memcpy"), std::string::npos);
}

TEST(Prologue, FloatVersionHasNoLoader) {
  CodeWriter w;
  CGenOptions opt;
  emit_c_prologue<float>(w, opt);
  EXPECT_EQ(w.str().find("_ld"), std::string::npos);
}

TEST(VoteDriver, GoldenShape) {
  CodeWriter w;
  CGenOptions opt;
  opt.prefix = "m";
  emit_c_vote_driver<float>(w, opt, 2, 3, /*extern_trees=*/false);
  const std::string s = w.str();
  EXPECT_NE(s.find("int m_classify(const float* pX) {"), std::string::npos);
  EXPECT_NE(s.find("int votes[3] = {0};"), std::string::npos);
  EXPECT_NE(s.find("++votes[m_tree_0(pX)];"), std::string::npos);
  EXPECT_NE(s.find("++votes[m_tree_1(pX)];"), std::string::npos);
  EXPECT_NE(s.find("if (votes[c] > votes[best]) best = c;"), std::string::npos);
  EXPECT_EQ(s.find("extern"), std::string::npos);
}

TEST(VoteDriver, ExternVariantDeclaresTrees) {
  CodeWriter w;
  CGenOptions opt;
  opt.prefix = "m";
  emit_c_vote_driver<double>(w, opt, 1, 2, /*extern_trees=*/true);
  EXPECT_NE(w.str().find("extern int m_tree_0(const double* pX);"),
            std::string::npos);
}

}  // namespace
