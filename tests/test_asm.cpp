// Assembly backend tests.  x86-64 output is assembled, loaded and checked
// for bit-exact equivalence on this host, and its disassembly is scanned to
// prove no floating-point instruction survives (the paper's "no FPU" claim).
// ARMv8 output is validated structurally against the paper's Listing 5.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/flint.hpp"

#include "codegen/asm_arm.hpp"
#include "codegen/asm_x86.hpp"
#include "data/split.hpp"
#include "data/synth.hpp"
#include "exec/interpreter.hpp"
#include "jit/jit.hpp"
#include "trees/forest.hpp"

namespace {

using flint::trees::Tree;

Tree<float> small_tree() {
  using flint::core::from_si_bits;
  Tree<float> t(4);
  // The paper's exact Listing 2/4 bit patterns.
  const auto root = t.add_split(3, from_si_bits<float>(0x41213087));
  const auto neg =
      t.add_split(1, from_si_bits<float>(static_cast<std::int32_t>(0xC03BDDDE)));
  const auto l0 = t.add_leaf(0);
  const auto l1 = t.add_leaf(1);
  const auto l2 = t.add_leaf(2);
  t.link(root, neg, l2);
  t.link(neg, l0, l1);
  return t;
}

TEST(AsmX86Golden, DirectAndSignFlipPatterns) {
  const auto text = flint::codegen::asm_x86_tree(small_tree(), "t0");
  // Positive split: single memory-operand immediate compare + jg.
  EXPECT_NE(text.find("cmpl\t$0x41213087, 12(%rdi)"), std::string::npos) << text;
  EXPECT_NE(text.find("jg\t"), std::string::npos);
  // Negative split: load + xor sign flip + jl with the |s| immediate.
  EXPECT_NE(text.find("movl\t4(%rdi), %eax"), std::string::npos);
  EXPECT_NE(text.find("xorl\t$0x80000000, %eax"), std::string::npos);
  EXPECT_NE(text.find("cmpl\t$0x403bddde, %eax"), std::string::npos);
  EXPECT_NE(text.find("jl\t"), std::string::npos);
  // Leaves.
  EXPECT_NE(text.find("movl\t$2, %eax"), std::string::npos);
}

TEST(AsmArmGolden, Listing5Shape) {
  const auto text = flint::codegen::asm_armv8_tree(small_tree(), "t0");
  // Listing 5: ldrsw + movz/movk + cmp + b.gt for the positive split.
  EXPECT_NE(text.find("ldrsw\tx1, [x0, 12]"), std::string::npos) << text;
  EXPECT_NE(text.find("movz\tw2, #0x3087"), std::string::npos);
  EXPECT_NE(text.find("movk\tw2, #0x4121, lsl 16"), std::string::npos);
  EXPECT_NE(text.find("cmp\tw1, w2"), std::string::npos);
  EXPECT_NE(text.find("b.gt\t"), std::string::npos);
  // Negative split: eor sign flip + b.lt (paper Section IV-C).
  EXPECT_NE(text.find("eor\tw1, w1, #0x80000000"), std::string::npos);
  EXPECT_NE(text.find("b.lt\t"), std::string::npos);
  EXPECT_NE(text.find(".type\tt0, %function"), std::string::npos);
}

TEST(AsmArmGolden, DeterministicOutput) {
  const auto a = flint::codegen::asm_armv8_tree(small_tree(), "t0");
  const auto b = flint::codegen::asm_armv8_tree(small_tree(), "t0");
  EXPECT_EQ(a, b);
}

TEST(AsmArmGolden, DoubleWidthUsesXRegisters) {
  Tree<double> t(2);
  const auto root = t.add_split(1, -1.5);
  const auto a = t.add_leaf(0);
  const auto b = t.add_leaf(1);
  t.link(root, a, b);
  const auto text = flint::codegen::asm_armv8_tree(t, "d0");
  EXPECT_NE(text.find("ldr\tx1, [x0, 8]"), std::string::npos) << text;
  EXPECT_NE(text.find("eor\tx1, x1, #0x8000000000000000"), std::string::npos);
  EXPECT_NE(text.find("cmp\tx1, x2"), std::string::npos);
}

class AsmX86Equivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(AsmX86Equivalence, AssembledModuleMatchesReference) {
  const auto spec = flint::data::spec_by_name(GetParam());
  const auto full = flint::data::generate<float>(spec, 61, 900);
  const auto split = flint::data::train_test_split(full, 0.3, 61);
  flint::trees::ForestOptions fopt;
  fopt.n_trees = 3;
  fopt.tree.max_depth = 9;
  const auto forest = flint::trees::train_forest(split.train, fopt);

  flint::codegen::CGenOptions opt;
  const auto code = flint::codegen::generate_asm_x86(forest, opt);
  ASSERT_EQ(code.files.size(), 2u);
  const auto module = flint::jit::compile(code);
  auto* classify =
      module.function<flint::jit::ClassifyFn<float>>(code.classify_symbol);
  const flint::exec::FloatForestEngine<float> reference(forest);
  for (std::size_t r = 0; r < split.test.rows(); ++r) {
    ASSERT_EQ(classify(split.test.row(r).data()),
              reference.predict(split.test.row(r)))
        << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, AsmX86Equivalence,
                         ::testing::Values("eye", "magic", "sensorless"));

TEST(AsmX86Equivalence, DoubleWidth) {
  const auto full = flint::data::generate<double>(flint::data::magic_spec(), 71, 700);
  flint::trees::ForestOptions fopt;
  fopt.n_trees = 2;
  fopt.tree.max_depth = 7;
  const auto forest = flint::trees::train_forest(full, fopt);
  flint::codegen::CGenOptions opt;
  const auto code = flint::codegen::generate_asm_x86(forest, opt);
  const auto module = flint::jit::compile(code);
  auto* classify =
      module.function<flint::jit::ClassifyFn<double>>(code.classify_symbol);
  for (std::size_t r = 0; r < full.rows(); ++r) {
    ASSERT_EQ(classify(full.row(r).data()), forest.predict(full.row(r)));
  }
}

TEST(NoFpu, DisassemblyContainsNoFloatInstructions) {
  // The whole point of FLInt: the compiled module must not touch the FPU or
  // SSE float paths for tree traversal.
  if (std::system("which objdump > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "objdump not available";
  }
  const auto full = flint::data::generate<float>(flint::data::gas_spec(), 81, 600);
  flint::trees::ForestOptions fopt;
  fopt.n_trees = 2;
  fopt.tree.max_depth = 8;
  const auto forest = flint::trees::train_forest(full, fopt);
  flint::codegen::CGenOptions opt;
  const auto code = flint::codegen::generate_asm_x86(forest, opt);
  flint::jit::JitOptions jopt;
  jopt.keep_artifacts = true;
  std::string dir;
  {
    const auto module = flint::jit::compile(code, jopt);
    dir = module.dir();
    // Disassemble only the tree functions (the libc startup stubs in the
    // shared object are not generated code).
    const std::string cmd = "objdump -d " + dir +
                            "/module.so > " + dir + "/disasm.txt 2>/dev/null";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    std::ifstream in(dir + "/disasm.txt");
    std::string line;
    bool in_tree_function = false;
    int tree_instructions = 0;
    while (std::getline(in, line)) {
      if (line.find("<forest_tree_") != std::string::npos &&
          line.find(">:") != std::string::npos) {
        in_tree_function = true;
        continue;
      }
      if (in_tree_function && line.empty()) {
        in_tree_function = false;
        continue;
      }
      if (!in_tree_function) continue;
      ++tree_instructions;
      for (const char* fp_mnemonic :
           {"ss ", "sd ", "ucomis", "cvtsi", "cvtss", "cvttss", "movaps",
            "fld", "fst", "fcom"}) {
        EXPECT_EQ(line.find(fp_mnemonic), std::string::npos)
            << "float instruction in tree code: " << line;
      }
    }
    EXPECT_GT(tree_instructions, 10);
  }
  std::filesystem::remove_all(dir);
}

TEST(AsmGenerators, EmptyForestThrows) {
  const flint::trees::Forest<float> empty;
  flint::codegen::CGenOptions opt;
  EXPECT_THROW((void)flint::codegen::generate_asm_x86(empty, opt),
               std::invalid_argument);
  EXPECT_THROW((void)flint::codegen::generate_asm_armv8(empty, opt),
               std::invalid_argument);
}

TEST(AsmArm, FullModuleHasDriverAndTrees) {
  const auto full = flint::data::generate<float>(flint::data::wine_spec(), 91, 300);
  flint::trees::ForestOptions fopt;
  fopt.n_trees = 2;
  fopt.tree.max_depth = 4;
  const auto forest = flint::trees::train_forest(full, fopt);
  flint::codegen::CGenOptions opt;
  const auto code = flint::codegen::generate_asm_armv8(forest, opt);
  ASSERT_EQ(code.files.size(), 2u);
  EXPECT_NE(code.files[0].content.find("forest_tree_0"), std::string::npos);
  EXPECT_NE(code.files[0].content.find("forest_tree_1"), std::string::npos);
  EXPECT_NE(code.files[1].content.find("forest_classify"), std::string::npos);
  EXPECT_EQ(code.flavor, "asm-armv8-flint");
}

}  // namespace
