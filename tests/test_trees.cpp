// Unit tests for trees/: structure, validation, training, forests,
// serialization and branch statistics.
#include <gtest/gtest.h>

#include <sstream>

#include "core/flint.hpp"
#include "data/synth.hpp"
#include "trees/forest.hpp"
#include "trees/serialize.hpp"
#include "trees/train.hpp"
#include "trees/tree.hpp"
#include "trees/tree_stats.hpp"

namespace {

using flint::trees::Forest;
using flint::trees::Node;
using flint::trees::Tree;

/// Builds the 2-level example tree used across this file:
///   root: f0 <= 1.5 ? (f1 <= -2.0 ? class0 : class1) : class2
Tree<float> example_tree() {
  Tree<float> t(2);
  const auto root = t.add_split(0, 1.5f);
  const auto inner = t.add_split(1, -2.0f);
  const auto l0 = t.add_leaf(0);
  const auto l1 = t.add_leaf(1);
  const auto l2 = t.add_leaf(2);
  t.link(root, inner, l2);
  t.link(inner, l0, l1);
  return t;
}

TEST(Tree, PredictFollowsTraversalRule) {
  const auto t = example_tree();
  EXPECT_EQ(t.predict(std::vector<float>{1.0f, -3.0f}), 0);
  EXPECT_EQ(t.predict(std::vector<float>{1.0f, 0.0f}), 1);
  EXPECT_EQ(t.predict(std::vector<float>{2.0f, 0.0f}), 2);
  // Boundary: <= is inclusive.
  EXPECT_EQ(t.predict(std::vector<float>{1.5f, -2.0f}), 0);
}

TEST(Tree, ShapeAccessors) {
  const auto t = example_tree();
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.leaf_count(), 3u);
  EXPECT_EQ(t.inner_count(), 2u);
  EXPECT_EQ(t.depth(), 2u);
  EXPECT_TRUE(t.validate().empty()) << t.validate();
}

TEST(Tree, SingleLeafIsValid) {
  Tree<float> t(1);
  t.add_leaf(4);
  EXPECT_TRUE(t.validate().empty());
  EXPECT_EQ(t.depth(), 0u);
  EXPECT_EQ(t.predict(std::vector<float>{0.0f}), 4);
}

TEST(Tree, ValidateCatchesBrokenStructure) {
  {
    Tree<float> t(1);
    EXPECT_FALSE(t.validate().empty());  // no nodes
  }
  {
    Tree<float> t(1);
    const auto root = t.add_split(0, 1.0f);
    t.link(root, 7, 8);  // out of range children
    EXPECT_NE(t.validate().find("out of range"), std::string::npos);
  }
  {
    Tree<float> t(1);
    const auto root = t.add_split(0, 1.0f);
    const auto leaf = t.add_leaf(0);
    t.link(root, leaf, leaf);  // identical children
    EXPECT_NE(t.validate().find("identical"), std::string::npos);
  }
  {
    Tree<float> t(1);
    t.add_leaf(-5);  // leaf without prediction
    EXPECT_NE(t.validate().find("prediction"), std::string::npos);
  }
  {
    Tree<float> t(1);
    const auto root = t.add_split(5, 1.0f);  // feature out of range
    const auto a = t.add_leaf(0);
    const auto b = t.add_leaf(1);
    t.link(root, a, b);
    EXPECT_NE(t.validate().find("feature"), std::string::npos);
  }
}

TEST(Tree, AddSplitRejectsNegativeFeature) {
  Tree<float> t(2);
  EXPECT_THROW((void)t.add_split(-1, 0.0f), std::invalid_argument);
}

TEST(Train, PerfectFitOnSeparableData) {
  flint::data::Dataset<float> ds("sep", 1);
  for (int i = 0; i < 50; ++i) {
    ds.add_row(std::vector<float>{static_cast<float>(i)}, i < 25 ? 0 : 1);
  }
  flint::trees::TrainOptions opt;
  opt.max_depth = 4;
  const auto tree = flint::trees::train_tree(ds, opt);
  EXPECT_TRUE(tree.validate().empty());
  EXPECT_EQ(flint::trees::accuracy(tree, ds), 1.0);
  EXPECT_EQ(tree.depth(), 1u);  // one split suffices
}

TEST(Train, RespectsMaxDepth) {
  const auto ds = flint::data::generate<float>(flint::data::magic_spec(), 3, 1500);
  for (const int depth : {1, 3, 7}) {
    flint::trees::TrainOptions opt;
    opt.max_depth = depth;
    const auto tree = flint::trees::train_tree(ds, opt);
    EXPECT_LE(tree.depth(), static_cast<std::size_t>(depth));
    EXPECT_TRUE(tree.validate().empty());
  }
}

TEST(Train, DeterministicInSeed) {
  const auto ds = flint::data::generate<float>(flint::data::wine_spec(), 3, 800);
  flint::trees::TrainOptions opt;
  opt.max_depth = 8;
  opt.max_features = flint::trees::TrainOptions::kSqrtFeatures;
  opt.seed = 99;
  const auto a = flint::trees::train_tree(ds, opt);
  const auto b = flint::trees::train_tree(ds, opt);
  std::ostringstream sa, sb;
  flint::trees::write_tree(sa, a);
  flint::trees::write_tree(sb, b);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(Train, DeeperTreesFitTrainingDataBetter) {
  const auto ds = flint::data::generate<float>(flint::data::eye_spec(), 3, 2000);
  flint::trees::TrainOptions opt;
  opt.max_depth = 2;
  const double shallow = flint::trees::accuracy(flint::trees::train_tree(ds, opt), ds);
  opt.max_depth = 12;
  const double deep = flint::trees::accuracy(flint::trees::train_tree(ds, opt), ds);
  EXPECT_GT(deep, shallow);
}

TEST(Train, ConstantFeaturesYieldSingleLeaf) {
  flint::data::Dataset<float> ds("const", 2);
  for (int i = 0; i < 10; ++i) {
    ds.add_row(std::vector<float>{1.0f, 2.0f}, i % 2);
  }
  flint::trees::TrainOptions opt;
  opt.max_depth = 5;
  const auto tree = flint::trees::train_tree(ds, opt);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.node(0).is_leaf());
}

TEST(Train, MinSamplesLeafRespected) {
  const auto ds = flint::data::generate<float>(flint::data::wine_spec(), 4, 600);
  flint::trees::TrainOptions opt;
  opt.max_depth = 20;
  opt.min_samples_leaf = 10;
  const auto tree = flint::trees::train_tree(ds, opt);
  // Every leaf must have been reachable by >= 10 training rows.
  const auto stats = flint::trees::collect_branch_stats(tree, ds);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    if (tree.node(static_cast<std::int32_t>(i)).is_leaf()) {
      EXPECT_GE(stats.visits[i], 10u) << "leaf " << i;
    }
  }
}

TEST(Train, SplitsNeverNegativeZero) {
  // The trainer normalizes -0.0 thresholds; splits must never carry the
  // negative-zero bit pattern (FLInt engines rely on this).
  flint::data::Dataset<float> ds("zeros", 1);
  for (int i = 0; i < 20; ++i) {
    ds.add_row(std::vector<float>{i < 10 ? -0.0f : 1.0f}, i < 10 ? 0 : 1);
  }
  flint::trees::TrainOptions opt;
  opt.max_depth = 3;
  const auto tree = flint::trees::train_tree(ds, opt);
  for (const auto& n : tree.nodes()) {
    if (!n.is_leaf() && n.split == 0.0f) {
      EXPECT_EQ(flint::core::si_bits(n.split), 0) << "split is -0.0";
    }
  }
  EXPECT_EQ(flint::trees::accuracy(tree, ds), 1.0);
}

TEST(Train, EmptyDatasetThrows) {
  flint::data::Dataset<float> empty("e", 2);
  EXPECT_THROW((void)flint::trees::train_tree(empty, {}), std::invalid_argument);
}

TEST(Forest, MajorityVoteAndTieBreak) {
  // Two single-leaf trees voting class 1, one voting class 0 -> class 1;
  // one vote each -> lowest class id wins.
  Tree<float> t0(1), t1(1), t2(1);
  t0.add_leaf(1);
  t1.add_leaf(1);
  t2.add_leaf(0);
  {
    Forest<float> f({t0, t1, t2}, 2);
    EXPECT_EQ(f.predict(std::vector<float>{0.0f}), 1);
    const auto votes = f.vote(std::vector<float>{0.0f});
    EXPECT_EQ(votes[0], 1);
    EXPECT_EQ(votes[1], 2);
  }
  {
    Tree<float> t3(1);
    t3.add_leaf(2);
    Forest<float> f({t0, t2, t3}, 3);  // one vote for 1, 0, 2 each
    EXPECT_EQ(f.predict(std::vector<float>{0.0f}), 0);
  }
}

TEST(Forest, TrainIsDeterministicAndAccurate) {
  const auto ds = flint::data::generate<float>(flint::data::magic_spec(), 5, 1500);
  flint::trees::ForestOptions opt;
  opt.n_trees = 7;
  opt.tree.max_depth = 8;
  opt.tree.max_features = flint::trees::TrainOptions::kSqrtFeatures;
  opt.tree.seed = 17;
  const auto a = flint::trees::train_forest(ds, opt);
  const auto b = flint::trees::train_forest(ds, opt);
  EXPECT_EQ(a.size(), 7u);
  std::ostringstream sa, sb;
  flint::trees::write_forest(sa, a);
  flint::trees::write_forest(sb, b);
  EXPECT_EQ(sa.str(), sb.str());
  EXPECT_GT(flint::trees::accuracy(a, ds), 0.7);
  EXPECT_GT(a.max_depth(), 0u);
  EXPECT_GT(a.total_nodes(), 7u);
}

TEST(Forest, BootstrapTreesDiffer) {
  const auto ds = flint::data::generate<float>(flint::data::magic_spec(), 5, 800);
  flint::trees::ForestOptions opt;
  opt.n_trees = 2;
  opt.tree.max_depth = 6;
  const auto forest = flint::trees::train_forest(ds, opt);
  std::ostringstream s0, s1;
  flint::trees::write_tree(s0, forest.tree(0));
  flint::trees::write_tree(s1, forest.tree(1));
  EXPECT_NE(s0.str(), s1.str());
}

TEST(Forest, InvalidOptionsThrow) {
  const auto ds = flint::data::generate<float>(flint::data::wine_spec(), 5, 100);
  flint::trees::ForestOptions opt;
  opt.n_trees = 0;
  EXPECT_THROW((void)flint::trees::train_forest(ds, opt), std::invalid_argument);
  flint::data::Dataset<float> empty("e", 2);
  EXPECT_THROW((void)flint::trees::train_forest(empty, {}), std::invalid_argument);
}

TEST(Serialize, TreeRoundTripIsBitExact) {
  const auto t = example_tree();
  std::ostringstream out;
  flint::trees::write_tree(out, t);
  std::istringstream in(out.str());
  const auto back = flint::trees::read_tree<float>(in);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    const auto& a = t.node(static_cast<std::int32_t>(i));
    const auto& b = back.node(static_cast<std::int32_t>(i));
    EXPECT_EQ(a.feature, b.feature);
    EXPECT_EQ(flint::core::si_bits(a.split), flint::core::si_bits(b.split));
    EXPECT_EQ(a.left, b.left);
    EXPECT_EQ(a.right, b.right);
    EXPECT_EQ(a.prediction, b.prediction);
  }
}

TEST(Serialize, ForestFileRoundTrip) {
  const auto ds = flint::data::generate<float>(flint::data::wine_spec(), 5, 400);
  flint::trees::ForestOptions opt;
  opt.n_trees = 3;
  opt.tree.max_depth = 5;
  const auto forest = flint::trees::train_forest(ds, opt);
  const std::string path = ::testing::TempDir() + "/flint_forest_roundtrip.txt";
  flint::trees::save_forest(path, forest);
  const auto back = flint::trees::load_forest<float>(path);
  EXPECT_EQ(back.size(), forest.size());
  EXPECT_EQ(back.num_classes(), forest.num_classes());
  for (std::size_t r = 0; r < ds.rows(); ++r) {
    EXPECT_EQ(back.predict(ds.row(r)), forest.predict(ds.row(r)));
  }
}

TEST(Serialize, MalformedInputThrows) {
  {
    std::istringstream in("not a tree\n");
    EXPECT_THROW((void)flint::trees::read_tree<float>(in), std::runtime_error);
  }
  {
    std::istringstream in("tree 1 1\n");  // truncated: header promises 1 node
    EXPECT_THROW((void)flint::trees::read_tree<float>(in), std::runtime_error);
  }
  {
    // Structurally invalid content is rejected by validate().
    std::istringstream in("tree 1 1\nn 0 3f800000 5 6 -1\n");
    EXPECT_THROW((void)flint::trees::read_tree<float>(in), std::runtime_error);
  }
  EXPECT_THROW((void)flint::trees::load_forest<float>("/nonexistent/f.txt"),
               std::runtime_error);
}

/// Extracts what() from the parse failure of `content` via read_forest.
std::string forest_parse_error(const std::string& content) {
  std::istringstream in(content);
  try {
    (void)flint::trees::read_forest<float>(in);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

TEST(Serialize, ErrorsCarryLineNumbersAndTokens) {
  // Corrupt split bits on the second node line = physical line 4 (the
  // comment line counts; line numbers are positions in the FILE).
  const std::string corrupt =
      "# comment\n"
      "forest v1 2 1\n"
      "tree 1 3\n"
      "n 0 zzzz 1 2 -1\n"
      "n -1 0 -1 -1 0\n"
      "n -1 0 -1 -1 1\n";
  const std::string err = forest_parse_error(corrupt);
  EXPECT_NE(err.find("line 4"), std::string::npos) << err;
  EXPECT_NE(err.find("zzzz"), std::string::npos) << err;

  // Truncated file: the header promises a node that never arrives; the
  // error points one past the last line read.
  const std::string truncated =
      "forest v1 2 1\n"
      "tree 1 3\n"
      "n 0 3f800000 1 2 -1\n"
      "n -1 0 -1 -1 0\n";
  const std::string trunc_err = forest_parse_error(truncated);
  EXPECT_NE(trunc_err.find("line 4"), std::string::npos) << trunc_err;
  EXPECT_NE(trunc_err.find("end of input"), std::string::npos) << trunc_err;

  // Non-numeric child index: the offending token is named.
  const std::string bad_child =
      "forest v1 2 1\n"
      "tree 1 1\n"
      "n -1 0 oops -1 0\n";
  const std::string child_err = forest_parse_error(bad_child);
  EXPECT_NE(child_err.find("line 3"), std::string::npos) << child_err;
  EXPECT_NE(child_err.find("oops"), std::string::npos) << child_err;

  // Wrong header tag: names the token it saw.
  const std::string bad_header = "woods v1 2 1\n";
  const std::string header_err = forest_parse_error(bad_header);
  EXPECT_NE(header_err.find("line 1"), std::string::npos) << header_err;
  EXPECT_NE(header_err.find("woods"), std::string::npos) << header_err;
}

TEST(TreeStats, BranchProbabilitiesSumCorrectly) {
  const auto t = example_tree();
  flint::data::Dataset<float> ds("probe", 2);
  // 3 rows to the far left leaf, 1 to the middle, 4 to the right.
  for (int i = 0; i < 3; ++i) ds.add_row(std::vector<float>{1.0f, -3.0f}, 0);
  ds.add_row(std::vector<float>{1.0f, 5.0f}, 1);
  for (int i = 0; i < 4; ++i) ds.add_row(std::vector<float>{9.0f, 0.0f}, 2);
  const auto stats = flint::trees::collect_branch_stats(t, ds);
  EXPECT_EQ(stats.visits[0], 8u);                     // root
  EXPECT_DOUBLE_EQ(stats.left_probability[0], 0.5);   // 4 of 8 left
  EXPECT_EQ(stats.visits[1], 4u);                     // inner
  EXPECT_DOUBLE_EQ(stats.left_probability[1], 0.75);  // 3 of 4 left
}

TEST(TreeStats, UnvisitedNodesGetPrior) {
  const auto t = example_tree();
  flint::data::Dataset<float> ds("empty-side", 2);
  ds.add_row(std::vector<float>{9.0f, 0.0f}, 2);  // right side only
  const auto stats = flint::trees::collect_branch_stats(t, ds);
  EXPECT_DOUBLE_EQ(stats.left_probability[1], 0.5);  // inner never visited
}

TEST(TreeStats, ShapeMetrics) {
  const auto t = example_tree();
  const auto shape = flint::trees::tree_shape(t);
  EXPECT_EQ(shape.nodes, 5u);
  EXPECT_EQ(shape.leaves, 3u);
  EXPECT_EQ(shape.depth, 2u);
  EXPECT_EQ(shape.negative_splits, 1u);     // the -2.0 split
  EXPECT_EQ(shape.nonnegative_splits, 1u);  // the 1.5 split
  EXPECT_NEAR(shape.mean_leaf_depth, (2 + 2 + 1) / 3.0, 1e-12);
}

}  // namespace
