// Equivalence tests for the execution engines: every FLInt variant must be
// bit-exactly equivalent to hardware-float traversal on trained forests and
// on adversarial inputs (values equal to splits, signed zeros, denormals,
// infinities) — the paper's "model accuracy unchanged" claim.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "data/split.hpp"
#include "data/synth.hpp"
#include "exec/interpreter.hpp"
#include "trees/forest.hpp"

namespace {

using flint::exec::FlintForestEngine;
using flint::exec::FlintVariant;
using flint::exec::FloatForestEngine;

constexpr FlintVariant kAllVariants[] = {
    FlintVariant::Encoded, FlintVariant::Theorem1, FlintVariant::Theorem2,
    FlintVariant::RadixKey};

class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, FlintVariant>> {};

TEST_P(EngineEquivalence, MatchesForestPredictOnTestSet) {
  const auto& [dataset_name, variant] = GetParam();
  const auto spec = flint::data::spec_by_name(dataset_name);
  const auto full = flint::data::generate<float>(spec, 31, 1200);
  const auto split = flint::data::train_test_split(full, 0.25, 31);

  flint::trees::ForestOptions opt;
  opt.n_trees = 5;
  opt.tree.max_depth = 10;
  opt.tree.max_features = flint::trees::TrainOptions::kSqrtFeatures;
  const auto forest = flint::trees::train_forest(split.train, opt);

  const FlintForestEngine<float> engine(forest, variant);
  const FloatForestEngine<float> reference(forest);
  EXPECT_EQ(engine.tree_count(), forest.size());
  for (std::size_t r = 0; r < split.test.rows(); ++r) {
    const auto x = split.test.row(r);
    ASSERT_EQ(engine.predict(x), forest.predict(x)) << "row " << r;
    ASSERT_EQ(reference.predict(x), forest.predict(x)) << "row " << r;
  }
  EXPECT_DOUBLE_EQ(engine.accuracy(split.test), reference.accuracy(split.test));
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasetsAndVariants, EngineEquivalence,
    ::testing::Combine(::testing::Values("eye", "gas", "magic", "sensorless",
                                         "wine"),
                       ::testing::ValuesIn(kAllVariants)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             flint::exec::to_string(std::get<1>(info.param));
    });

class AdversarialInputs : public ::testing::TestWithParam<FlintVariant> {};

TEST_P(AdversarialInputs, ExactSplitValuesAndSpecials) {
  // Build a forest, then probe it with feature vectors made of its own
  // split values (boundary hits) and special patterns.
  const auto full = flint::data::generate<float>(flint::data::magic_spec(), 77, 900);
  flint::trees::ForestOptions opt;
  opt.n_trees = 3;
  opt.tree.max_depth = 8;
  const auto forest = flint::trees::train_forest(full, opt);
  const FlintForestEngine<float> engine(forest, GetParam());

  std::vector<float> splits;
  for (std::size_t t = 0; t < forest.size(); ++t) {
    for (const auto& n : forest.tree(t).nodes()) {
      if (!n.is_leaf()) splits.push_back(n.split);
    }
  }
  ASSERT_FALSE(splits.empty());

  const float specials[] = {0.0f, -0.0f,
                            std::numeric_limits<float>::denorm_min(),
                            -std::numeric_limits<float>::denorm_min(),
                            std::numeric_limits<float>::infinity(),
                            -std::numeric_limits<float>::infinity(),
                            std::numeric_limits<float>::max(),
                            std::numeric_limits<float>::lowest()};

  std::mt19937_64 rng(5);
  std::uniform_int_distribution<std::size_t> pick_split(0, splits.size() - 1);
  std::uniform_int_distribution<std::size_t> pick_special(0, std::size(specials) - 1);
  std::uniform_int_distribution<int> kind(0, 2);
  std::vector<float> x(full.cols());
  for (int trial = 0; trial < 5000; ++trial) {
    for (auto& v : x) {
      switch (kind(rng)) {
        case 0: v = splits[pick_split(rng)]; break;
        case 1: v = specials[pick_special(rng)]; break;
        default: v = std::uniform_real_distribution<float>(-100.f, 100.f)(rng);
      }
    }
    ASSERT_EQ(engine.predict(x), forest.predict(x)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, AdversarialInputs,
                         ::testing::ValuesIn(kAllVariants),
                         [](const auto& info) {
                           return std::string(flint::exec::to_string(info.param));
                         });

TEST(Engines, DoubleWidthEquivalence) {
  const auto full = flint::data::generate<double>(flint::data::wine_spec(), 3, 800);
  flint::trees::ForestOptions opt;
  opt.n_trees = 4;
  opt.tree.max_depth = 8;
  const auto forest = flint::trees::train_forest(full, opt);
  for (const auto variant : kAllVariants) {
    const FlintForestEngine<double> engine(forest, variant);
    for (std::size_t r = 0; r < full.rows(); ++r) {
      ASSERT_EQ(engine.predict(full.row(r)), forest.predict(full.row(r)))
          << flint::exec::to_string(variant) << " row " << r;
    }
  }
}

TEST(Engines, PredictBatchMatchesPredict) {
  const auto full = flint::data::generate<float>(flint::data::eye_spec(), 3, 500);
  flint::trees::ForestOptions opt;
  opt.n_trees = 3;
  opt.tree.max_depth = 6;
  const auto forest = flint::trees::train_forest(full, opt);
  const FlintForestEngine<float> engine(forest, FlintVariant::Encoded);
  std::vector<std::int32_t> out(full.rows());
  engine.predict_batch(full, out);
  for (std::size_t r = 0; r < full.rows(); ++r) {
    EXPECT_EQ(out[r], engine.predict(full.row(r)));
  }
  std::vector<std::int32_t> too_small(full.rows() - 1);
  EXPECT_THROW(engine.predict_batch(full, too_small), std::invalid_argument);
}

TEST(Engines, EmptyForestThrows) {
  const flint::trees::Forest<float> empty;
  EXPECT_THROW((FlintForestEngine<float>(empty, FlintVariant::Encoded)),
               std::invalid_argument);
  EXPECT_THROW((FloatForestEngine<float>(empty)), std::invalid_argument);
}

TEST(Engines, VariantNames) {
  EXPECT_STREQ(flint::exec::to_string(FlintVariant::Encoded), "encoded");
  EXPECT_STREQ(flint::exec::to_string(FlintVariant::Theorem1), "theorem1");
  EXPECT_STREQ(flint::exec::to_string(FlintVariant::Theorem2), "theorem2");
  EXPECT_STREQ(flint::exec::to_string(FlintVariant::RadixKey), "radix");
}

}  // namespace
