// Concurrency and correctness tests for the serve/ runtime: micro-batched
// results must be bit-identical to per-sample Forest::predict under any
// producer mix; a poisoned request fails alone while coalesced neighbors
// succeed; hot-swap under load never yields a half-swapped result; and
// shutdown with a non-empty queue drains instead of dropping.  Server-side
// rejections are asserted by ServeError code, not message text.  This suite
// also runs under TSan in CI (FLINT_SANITIZE_THREAD); the stop-vs-submit
// race test below exists specifically for that configuration.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "data/split.hpp"
#include "data/synth.hpp"
#include "predict/predictor.hpp"
#include "serve/server.hpp"
#include "trees/forest.hpp"

namespace {

using flint::serve::ErrorCode;
using flint::serve::InferenceServer;
using flint::serve::ModelRegistry;
using flint::serve::PredictorPtr;
using flint::serve::ServeError;
using flint::serve::ServeOptions;

/// Resolves `future`, expecting a ServeError; returns its code.
template <typename Future>
ErrorCode serve_error_code(Future& future) {
  try {
    (void)future.get();
  } catch (const ServeError& e) {
    return e.code();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "expected ServeError, got: " << e.what();
    return ErrorCode::kExecutionFailed;
  }
  ADD_FAILURE() << "expected ServeError, future resolved with a value";
  return ErrorCode::kExecutionFailed;
}

PredictorPtr wrap(const flint::trees::Forest<float>& forest,
                  const std::string& backend = "encoded") {
  return PredictorPtr(flint::predict::make_predictor(forest, backend));
}

class ServeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto full =
        flint::data::generate<float>(flint::data::magic_spec(), 7, 1200);
    split_ = flint::data::train_test_split(full, 0.3, 7);
    flint::trees::ForestOptions opt;
    opt.n_trees = 7;
    opt.tree.max_depth = 8;
    opt.tree.max_features = flint::trees::TrainOptions::kSqrtFeatures;
    forest_a_ = flint::trees::train_forest(split_.train, opt);
    opt.tree.seed = 4242;
    forest_b_ = flint::trees::train_forest(split_.train, opt);
    cols_ = forest_a_.feature_count();
    rows_ = split_.test.rows();
    pool_.resize(rows_ * cols_);
    ref_a_.resize(rows_);
    ref_b_.resize(rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      const auto row = split_.test.row(r);
      std::copy(row.begin(), row.begin() + cols_, pool_.begin() + r * cols_);
      ref_a_[r] = forest_a_.predict(row);
      ref_b_[r] = forest_b_.predict(row);
    }
  }

  std::vector<float> rows_from(std::size_t first, std::size_t n) const {
    std::vector<float> out(n * cols_);
    for (std::size_t s = 0; s < n; ++s) {
      std::copy_n(pool_.data() + ((first + s) % rows_) * cols_, cols_,
                  out.data() + s * cols_);
    }
    return out;
  }

  /// True iff `got` matches `ref` on rows first.. (wrapping) in full.
  bool matches(const std::vector<std::int32_t>& ref, std::size_t first,
               const std::vector<std::int32_t>& got) const {
    for (std::size_t s = 0; s < got.size(); ++s) {
      if (got[s] != ref[(first + s) % rows_]) return false;
    }
    return true;
  }

  flint::data::TrainTestSplit<float> split_;
  flint::trees::Forest<float> forest_a_;
  flint::trees::Forest<float> forest_b_;
  std::size_t cols_ = 0;
  std::size_t rows_ = 0;
  std::vector<float> pool_;
  std::vector<std::int32_t> ref_a_;
  std::vector<std::int32_t> ref_b_;
};

TEST_F(ServeFixture, RegistryInstallResolveVersioning) {
  ModelRegistry registry;
  EXPECT_THROW((void)registry.resolve(), std::invalid_argument);
  EXPECT_EQ(registry.install("magic", wrap(forest_a_)), 1u);
  EXPECT_EQ(registry.install("wine", wrap(forest_b_)), 1u);
  EXPECT_EQ(registry.install("magic", wrap(forest_b_)), 2u);  // hot swap
  EXPECT_EQ(registry.resolve().name, "magic");  // first install = default
  EXPECT_EQ(registry.resolve("wine").version, 1u);
  EXPECT_EQ(registry.resolve("magic").version, 2u);
  EXPECT_EQ(registry.list().size(), 2u);
  EXPECT_THROW((void)registry.resolve("nope"), std::invalid_argument);
  EXPECT_THROW(registry.install("", wrap(forest_a_)), std::invalid_argument);
  EXPECT_THROW(registry.install("x", nullptr), std::invalid_argument);
}

TEST_F(ServeFixture, MixedBatchSizesBitIdenticalSequential) {
  ServeOptions opt;
  opt.max_batch = 32;
  opt.max_delay_us = 100;
  opt.workers = 2;
  InferenceServer server(opt);
  server.registry().install("default", wrap(forest_a_));
  for (std::size_t i = 0; i < 60; ++i) {
    const std::size_t n = 1 + (i % 9);
    const std::size_t first = (i * 31) % rows_;
    auto got = server.submit(rows_from(first, n), n).get();
    ASSERT_EQ(got.size(), n);
    EXPECT_TRUE(matches(ref_a_, first, got)) << "request " << i;
  }
  const auto m = server.metrics();
  EXPECT_EQ(m.requests, 60u);
  EXPECT_GT(m.batches, 0u);
  EXPECT_EQ(m.rejected, 0u);
}

// The tentpole property: N producer threads x mixed batch sizes must be
// bit-identical to sequential Forest::predict — coalescing, slicing and
// result routing lose nothing.
TEST_F(ServeFixture, ConcurrentProducersBitIdentical) {
  for (const char* backend : {"encoded", "layout:auto"}) {
    ServeOptions opt;
    opt.max_batch = 64;
    opt.max_delay_us = 200;
    opt.workers = 4;
    InferenceServer server(opt);
    server.registry().install("default", wrap(forest_a_, backend));
    std::atomic<int> failures{0};
    std::vector<std::thread> producers;
    for (unsigned p = 0; p < 8; ++p) {
      producers.emplace_back([&, p] {
        for (std::size_t i = 0; i < 120; ++i) {
          const std::size_t n = 1 + ((p + i) % 17);
          const std::size_t first = (p * 997 + i * 13) % rows_;
          auto got = server.submit(rows_from(first, n), n).get();
          if (got.size() != n || !matches(ref_a_, first, got)) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : producers) t.join();
    EXPECT_EQ(failures.load(), 0) << backend;
    const auto m = server.metrics();
    EXPECT_EQ(m.requests, 8u * 120u) << backend;
    EXPECT_LE(m.p50_latency_us, m.p99_latency_us) << backend;
    std::uint64_t histogram_total = 0;
    for (const auto count : m.batch_size_histogram) histogram_total += count;
    EXPECT_EQ(histogram_total, m.batches) << backend;
  }
}

// Error isolation: a poisoned request (NaN feature or wrong width) fails
// only its own future — concurrent neighbors that could have coalesced
// with it still succeed.
TEST_F(ServeFixture, PoisonedRequestFailsAlone) {
  ServeOptions opt;
  opt.max_batch = 128;
  opt.max_delay_us = 500;  // wide window: neighbors *would* coalesce
  opt.workers = 2;
  InferenceServer server(opt);
  server.registry().install("default", wrap(forest_a_));

  std::vector<std::future<std::vector<std::int32_t>>> good;
  for (std::size_t i = 0; i < 10; ++i) {
    good.push_back(server.submit(rows_from(i, 2), 2));
  }
  auto poisoned = rows_from(3, 2);
  poisoned[cols_ + 1] = std::numeric_limits<float>::quiet_NaN();
  auto nan_future = server.submit(poisoned, 2);
  auto short_future = server.submit(rows_from(0, 2), 3);  // wrong width
  for (std::size_t i = 0; i < 10; ++i) {
    good.push_back(server.submit(rows_from(i + 20, 2), 2));
  }

  try {
    (void)nan_future.get();
    FAIL() << "NaN request must fail";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("NaN"), std::string::npos);
  }
  EXPECT_THROW((void)short_future.get(), std::invalid_argument);
  for (std::size_t i = 0; i < good.size(); ++i) {
    const std::size_t first = i < 10 ? i : i + 10;
    auto got = good[i].get();
    EXPECT_TRUE(matches(ref_a_, first, got)) << "neighbor " << i;
  }
  const auto m = server.metrics();
  EXPECT_EQ(m.rejected, 2u);
  EXPECT_EQ(m.requests, 20u);
}

// Hot-swap invariant: under concurrent load a swap never yields a response
// mixing model versions, and a request submitted after install() returned
// is always served by the new version.
TEST_F(ServeFixture, HotSwapUnderLoadNeverMixesVersions) {
  ServeOptions opt;
  opt.max_batch = 64;
  opt.max_delay_us = 200;
  opt.workers = 4;
  InferenceServer server(opt);
  server.registry().install("default", wrap(forest_a_));
  std::atomic<int> mixed{0};
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < 250; ++i) {
        const std::size_t n = 2 + ((p + i) % 7);
        const std::size_t first = (p * 811 + i * 11) % rows_;
        auto got = server.submit(rows_from(first, n), n).get();
        if (!matches(ref_a_, first, got) && !matches(ref_b_, first, got)) {
          mixed.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(server.registry().install("default", wrap(forest_b_)), 2u);
  for (auto& t : producers) t.join();
  EXPECT_EQ(mixed.load(), 0);

  // Post-swap submits resolve the new snapshot.
  auto got = server.submit(rows_from(5, 4), 4).get();
  EXPECT_TRUE(matches(ref_b_, 5, got));
}

// Shutdown contract: stop() with a non-empty queue drains — every accepted
// request completes with a correct result, none is dropped.  The huge
// max_delay pins the requests in the queue until stop() forces the flush.
TEST_F(ServeFixture, ShutdownDrainsNonEmptyQueue) {
  ServeOptions opt;
  opt.max_batch = 1u << 20;       // sample-count flush unreachable
  opt.max_delay_us = 30'000'000;  // delay flush unreachable in test time
  opt.workers = 2;
  InferenceServer server(opt);
  server.registry().install("default", wrap(forest_a_));
  std::vector<std::future<std::vector<std::int32_t>>> futures;
  for (std::size_t i = 0; i < 40; ++i) {
    futures.push_back(server.submit(rows_from(i * 3, 2), 2));
  }
  server.stop();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    auto got = futures[i].get();  // would block forever if dropped
    EXPECT_TRUE(matches(ref_a_, i * 3, got)) << "request " << i;
  }
  // Submits after stop are rejected with a typed error, not lost silently.
  auto late = server.submit(rows_from(0, 1), 1);
  EXPECT_EQ(serve_error_code(late), ErrorCode::kStopped);
  // stop() is idempotent.
  EXPECT_NO_THROW(server.stop());
}

TEST_F(ServeFixture, BackpressureRejectsBeyondQueueCapacity) {
  ServeOptions opt;
  opt.max_batch = 1u << 20;
  opt.max_delay_us = 30'000'000;  // batcher holds the queue during the test
  opt.workers = 1;
  opt.queue_capacity = 4;
  InferenceServer server(opt);
  server.registry().install("default", wrap(forest_a_));
  std::vector<std::future<std::vector<std::int32_t>>> accepted;
  for (std::size_t i = 0; i < 4; ++i) {
    accepted.push_back(server.submit(rows_from(i, 1), 1));
  }
  auto overflow = server.submit(rows_from(0, 1), 1);
  try {
    (void)overflow.get();
    FAIL() << "expected queue-full rejection";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kQueueFull);
    EXPECT_GT(e.retry_after_us(), 0u);  // Overloaded/QueueFull carry a hint
  }
  server.stop();  // drains the four accepted requests
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    EXPECT_TRUE(matches(ref_a_, i, accepted[i].get()));
  }
}

// Regression for the backpressure unit bug: queue_capacity bounds queued
// *requests*, so a few huge requests used to buy unbounded queued memory.
// sample_capacity closes that hole — admission is cost-aware.
TEST_F(ServeFixture, BackpressureBoundsQueuedSamples) {
  ServeOptions opt;
  opt.max_batch = 1u << 20;
  opt.max_delay_us = 30'000'000;  // batcher holds the queue during the test
  opt.workers = 1;
  opt.queue_capacity = 1024;  // far from binding here
  opt.sample_capacity = 200;
  InferenceServer server(opt);
  server.registry().install("default", wrap(forest_a_));
  // A single request beyond sample_capacity is never admissible.
  auto huge = server.submit(rows_from(0, 201), 201);
  EXPECT_EQ(serve_error_code(huge), ErrorCode::kOverloaded);
  // 80 samples queued (pressure 0.4: below the degrade ladder, so the
  // batcher keeps waiting); a further 130 would cross the sample bound
  // even though the request count (3) is nowhere near queue_capacity.
  std::vector<std::future<std::vector<std::int32_t>>> accepted;
  accepted.push_back(server.submit(rows_from(0, 40), 40));
  accepted.push_back(server.submit(rows_from(40, 40), 40));
  auto overflow = server.submit(rows_from(80, 130), 130);
  try {
    (void)overflow.get();
    FAIL() << "expected sample-bound shed";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
    EXPECT_GT(e.retry_after_us(), 0u);
  }
  const auto m = server.metrics();
  EXPECT_EQ(m.queued_samples, 80u);
  EXPECT_EQ(m.shed, 2u);
  server.stop();
  EXPECT_TRUE(matches(ref_a_, 0, accepted[0].get()));
  EXPECT_TRUE(matches(ref_a_, 40, accepted[1].get()));
}

// stop() racing concurrent submit(): every future a producer receives must
// resolve — a correct result if admitted before the drain, or
// ErrorCode::kStopped — never a broken promise or a hang.  Runs under TSan
// in CI.
TEST_F(ServeFixture, StopVsConcurrentSubmitRace) {
  ServeOptions opt;
  opt.max_batch = 32;
  opt.max_delay_us = 100;
  opt.workers = 2;
  InferenceServer server(opt);
  server.registry().install("default", wrap(forest_a_));
  std::atomic<bool> go{false};
  std::atomic<int> wrong{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> stopped{0};
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < 8; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load()) std::this_thread::yield();
      for (std::size_t i = 0; i < 200; ++i) {
        const std::size_t first = (p * 131 + i * 7) % rows_;
        auto future = server.submit(rows_from(first, 2), 2);
        try {
          auto got = future.get();
          if (!matches(ref_a_, first, got)) wrong.fetch_add(1);
          ok.fetch_add(1);
        } catch (const ServeError& e) {
          if (e.code() != ErrorCode::kStopped) wrong.fetch_add(1);
          stopped.fetch_add(1);
        } catch (...) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  go.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.stop();
  for (auto& t : producers) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(ok.load() + stopped.load(), 8u * 200u);
  // Accounting: accepted requests all resolved, one way or the other.
  const auto m = server.metrics();
  EXPECT_EQ(m.requests, m.completed + m.failed);
  EXPECT_EQ(m.health, flint::serve::HealthState::kDraining);
}

TEST_F(ServeFixture, NamedModelsRouteIndependently) {
  InferenceServer server{ServeOptions{}};
  server.registry().install("a", wrap(forest_a_));
  server.registry().install("b", wrap(forest_b_));
  auto got_a = server.submit(rows_from(2, 3), 3, "a").get();
  auto got_b = server.submit(rows_from(2, 3), 3, "b").get();
  auto got_default = server.submit(rows_from(2, 3), 3).get();  // = "a"
  EXPECT_TRUE(matches(ref_a_, 2, got_a));
  EXPECT_TRUE(matches(ref_b_, 2, got_b));
  EXPECT_EQ(got_default, got_a);
  auto unknown = server.submit(rows_from(0, 1), 1, "zzz");
  EXPECT_THROW((void)unknown.get(), std::invalid_argument);
}

TEST_F(ServeFixture, ZeroCopySingleLargeRequest) {
  ServeOptions opt;
  opt.max_batch = 16;  // the request below alone fills a block
  opt.max_delay_us = 10'000;
  opt.workers = 1;
  InferenceServer server(opt);
  server.registry().install("default", wrap(forest_a_));
  // Larger than max_batch: never split, dispatched without re-coalescing.
  auto got = server.submit(rows_from(0, 50), 50).get();
  ASSERT_EQ(got.size(), 50u);
  EXPECT_TRUE(matches(ref_a_, 0, got));
  const auto m = server.metrics();
  EXPECT_EQ(m.zero_copy_batches, 1u);
  EXPECT_EQ(m.batches, 1u);
  // An empty request resolves immediately without touching the queue.
  auto empty = server.submit({}, 0);
  EXPECT_TRUE(empty.get().empty());
}

TEST_F(ServeFixture, SubmitBeforeAnyInstallIsRejected) {
  InferenceServer server{ServeOptions{}};
  auto future = server.submit(rows_from(0, 1), 1);
  EXPECT_THROW((void)future.get(), std::invalid_argument);
  const auto m = server.metrics();
  EXPECT_EQ(m.rejected, 1u);
  EXPECT_EQ(m.requests, 0u);
}

}  // namespace
