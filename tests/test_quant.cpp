// Tests for the quantization plan layer: the shared fixed-point rounding
// rule, dataset- and table-driven calibration, the per-feature fitness
// contract, and the central property the paper motivates — affine
// quantization *loses* predictions while FLInt does not.
#include <gtest/gtest.h>

#include "core/flint.hpp"
#include "data/split.hpp"
#include "data/synth.hpp"
#include "exec/interpreter.hpp"
#include "exec/layout/narrow.hpp"
#include "quant/quant_plan.hpp"
#include "trees/forest.hpp"

namespace {

using flint::quant::FeatureMode;
using flint::quant::plan_from_dataset;
using flint::quant::plan_from_tables;
using flint::quant::QuantForestEngine;
using flint::quant::QuantPlan;
using flint::quant::quantize;
using flint::quant::report_json;

TEST(Quantize, RoundsAndClamps) {
  EXPECT_EQ(quantize(0.0, 100.0, 16), 0);
  EXPECT_EQ(quantize(1.0, 100.0, 16), 100);
  EXPECT_EQ(quantize(-1.004, 100.0, 16), -100);
  EXPECT_EQ(quantize(1.006, 100.0, 16), 101);
  // Clamp at the signed range edge.
  EXPECT_EQ(quantize(1e9, 100.0, 16), 32767);
  EXPECT_EQ(quantize(-1e9, 100.0, 16), -32767);
}

TEST(PlanFromDataset, ScalesMapMaxToRangeEdge) {
  flint::data::Dataset<float> ds("q", 2);
  ds.add_row(std::vector<float>{2.0f, -8.0f}, 0);
  ds.add_row(std::vector<float>{-4.0f, 1.0f}, 1);
  const auto plan = plan_from_dataset(ds, 8);
  ASSERT_EQ(plan.feature_count(), 2u);
  // 8 bits -> q_max = 127; feature 0 max |v| = 4, feature 1 max |v| = 8.
  EXPECT_DOUBLE_EQ(plan.features[0].scale, 127.0 / 4.0);
  EXPECT_DOUBLE_EQ(plan.features[1].scale, 127.0 / 8.0);
  EXPECT_EQ(plan.features[0].quantize(4.0), 127);
  EXPECT_EQ(plan.features[0].quantize(-1e9), -127);
  // FeatureQuant::quantize reduces to the shared rounding rule when
  // offset == 0 — one quantization implementation, not two.
  EXPECT_EQ(plan.features[1].quantize(0.37),
            quantize(0.37, plan.features[1].scale, 8));
}

TEST(PlanFromDataset, ConstantZeroFeatureGetsUnitScale) {
  flint::data::Dataset<float> ds("q", 1);
  ds.add_row(std::vector<float>{0.0f}, 0);
  ds.add_row(std::vector<float>{0.0f}, 1);
  EXPECT_DOUBLE_EQ(plan_from_dataset(ds, 16).features[0].scale, 1.0);
}

TEST(PlanFromDataset, RejectsBadArguments) {
  flint::data::Dataset<float> empty("e", 1);
  EXPECT_THROW((void)plan_from_dataset(empty, 16), std::invalid_argument);
  flint::data::Dataset<float> ds("q", 1);
  ds.add_row(std::vector<float>{1.0f}, 0);
  EXPECT_THROW((void)plan_from_dataset(ds, 1), std::invalid_argument);
  EXPECT_THROW((void)plan_from_dataset(ds, 32), std::invalid_argument);
}

TEST(PlanFromTables, ExactWhenTablesFitTheKeyBudget) {
  const auto ds = flint::data::generate<float>(flint::data::wine_spec(), 7, 600);
  flint::trees::ForestOptions opt;
  opt.n_trees = 4;
  opt.tree.max_depth = 8;
  const auto forest = flint::trees::train_forest(ds, opt);
  const auto tables = flint::exec::layout::build_key_tables(forest);

  const auto plan = plan_from_tables(tables, 16);
  ASSERT_EQ(plan.feature_count(), tables.features.size());
  EXPECT_TRUE(plan.all_exact());
  EXPECT_TRUE(plan.accuracy_contract());
  EXPECT_DOUBLE_EQ(plan.min_fitness(), 1.0);
  for (std::size_t f = 0; f < plan.features.size(); ++f) {
    const auto& fq = plan.features[f];
    EXPECT_TRUE(fq.exact());
    // Sample keys span [0, table size]: a value above every split ranks one
    // past the last split.
    EXPECT_EQ(fq.q_lo, 0);
    EXPECT_EQ(fq.q_hi,
              static_cast<std::int64_t>(tables.features[f].size()));
  }
  EXPECT_NE(plan.describe().find("exact="), std::string::npos);
}

TEST(PlanFromTables, ForceAffineIsMonotoneAndMeasured) {
  const auto ds = flint::data::generate<float>(flint::data::magic_spec(), 5, 800);
  flint::trees::ForestOptions opt;
  opt.n_trees = 4;
  opt.tree.max_depth = 10;
  const auto forest = flint::trees::train_forest(ds, opt);
  const auto tables = flint::exec::layout::build_key_tables(forest);

  const auto plan = plan_from_tables(tables, 16, /*force_affine=*/true);
  for (std::size_t f = 0; f < plan.features.size(); ++f) {
    const auto& fq = plan.features[f];
    if (tables.features[f].size() == 0) {
      // Never-tested features stay trivially exact even under force_affine:
      // rank on an empty table is 0, no rounding can occur.
      EXPECT_TRUE(fq.exact());
      continue;
    }
    EXPECT_EQ(fq.mode, FeatureMode::Affine);
    EXPECT_GE(fq.quantized_distinct, 1u);
    EXPECT_LE(fq.quantized_distinct, fq.distinct);
    EXPECT_GT(fq.fitness(), 0.0);
    EXPECT_LE(fq.fitness(), 1.0);
    // Monotone map: quantizing the sorted split set never decreases.
    std::int64_t prev = fq.q_lo - 1;
    for (const auto key : tables.features[f].sorted) {
      const auto q = fq.quantize(static_cast<double>(
          flint::core::from_radix_key<float>(key)));
      EXPECT_GE(q, prev);
      prev = q;
    }
  }
}

TEST(PlanFromTables, CoarseBudgetBreaksTheAccuracyContract) {
  const auto ds = flint::data::generate<float>(flint::data::magic_spec(), 5, 1000);
  flint::trees::ForestOptions opt;
  opt.n_trees = 6;
  opt.tree.max_depth = 10;
  const auto forest = flint::trees::train_forest(ds, opt);
  const auto tables = flint::exec::layout::build_key_tables(forest);

  // At 2 bits every tested feature gets at most 3 buckets; with hundreds of
  // distinct thresholds per feature the contract cannot hold.
  const auto coarse = plan_from_tables(tables, 2, /*force_affine=*/true);
  EXPECT_FALSE(coarse.all_exact());
  EXPECT_FALSE(coarse.accuracy_contract());
  EXPECT_LT(coarse.min_fitness(), 1.0);
}

TEST(PlanFromTables, RejectsBadBits) {
  const flint::exec::layout::KeyTableSet<float> tables;
  EXPECT_THROW((void)plan_from_tables(tables, 1), std::invalid_argument);
  EXPECT_THROW((void)plan_from_tables(tables, 17), std::invalid_argument);
}

TEST(ReportJson, CarriesThePerFeatureFitness) {
  const auto ds = flint::data::generate<float>(flint::data::wine_spec(), 9, 500);
  flint::trees::ForestOptions opt;
  opt.n_trees = 3;
  opt.tree.max_depth = 8;
  const auto forest = flint::trees::train_forest(ds, opt);
  const auto tables = flint::exec::layout::build_key_tables(forest);
  const auto plan = plan_from_tables(tables, 12, /*force_affine=*/true);
  const auto json = report_json(plan);
  EXPECT_NE(json.find("\"bits\":12"), std::string::npos);
  EXPECT_NE(json.find("\"per_feature\":["), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"affine\""), std::string::npos);
  EXPECT_NE(json.find("\"quantized_distinct\":"), std::string::npos);
  EXPECT_NE(json.find("\"accuracy_contract\":"), std::string::npos);
}

TEST(QuantEngine, RejectsBadConstruction) {
  const flint::trees::Forest<float> empty;
  EXPECT_THROW((QuantForestEngine<float>(empty, {})), std::invalid_argument);

  const auto ds = flint::data::generate<float>(flint::data::wine_spec(), 3, 300);
  flint::trees::ForestOptions opt;
  opt.n_trees = 1;
  opt.tree.max_depth = 3;
  const auto forest = flint::trees::train_forest(ds, opt);
  QuantPlan short_plan;  // zero features
  EXPECT_THROW((QuantForestEngine<float>(forest, short_plan)),
               std::invalid_argument);

  // Exact-mode features (with real tables behind them) belong to the packed
  // q4 engine, not the plan-level reference evaluator.
  const auto tables = flint::exec::layout::build_key_tables(forest);
  auto exact_plan = plan_from_tables(tables, 16);
  flint::quant::annotate_thresholds(exact_plan, forest);
  EXPECT_THROW((QuantForestEngine<float>(forest, exact_plan)),
               std::invalid_argument);
}

class QuantizationLoss : public ::testing::TestWithParam<std::string> {};

TEST_P(QuantizationLoss, CoarseQuantizationFlipsPredictionsFlintDoesNot) {
  const auto spec = flint::data::spec_by_name(GetParam());
  const auto full = flint::data::generate<float>(spec, 13, 2000);
  const auto split = flint::data::train_test_split(full, 0.25, 13);
  flint::trees::ForestOptions opt;
  opt.n_trees = 10;
  opt.tree.max_depth = 12;
  opt.tree.max_features = flint::trees::TrainOptions::kSqrtFeatures;
  const auto forest = flint::trees::train_forest(split.train, opt);

  // FLInt: exact by construction on every test row.
  const flint::exec::FlintForestEngine<float> flint_engine(
      forest, flint::exec::FlintVariant::Encoded);
  for (std::size_t r = 0; r < split.test.rows(); ++r) {
    ASSERT_EQ(flint_engine.predict(split.test.row(r)),
              forest.predict(split.test.row(r)));
  }

  // Quantization: mismatch rate must not increase with precision, and the
  // coarse end must actually lose predictions (the paper's motivation).
  double previous = 1.0;
  double coarse_rate = 0.0;
  for (const int bits : {6, 10, 16, 24}) {
    const auto plan = plan_from_dataset(split.train, bits);
    const QuantForestEngine<float> engine(forest, plan);
    const double rate = engine.mismatch_rate(forest, split.test);
    if (bits == 6) coarse_rate = rate;
    EXPECT_LE(rate, previous + 0.02)
        << "mismatch rate grew with precision at " << bits << " bits";
    previous = rate;
  }
  EXPECT_GT(coarse_rate, 0.0)
      << "6-bit quantization lost no predictions; dataset too easy to "
         "demonstrate the motivation";
}

INSTANTIATE_TEST_SUITE_P(Datasets, QuantizationLoss,
                         ::testing::Values("magic", "sensorless", "wine"));

TEST(QuantEngine, HighPrecisionApproachesExact) {
  const auto full = flint::data::generate<float>(flint::data::magic_spec(), 17, 1500);
  const auto split = flint::data::train_test_split(full, 0.25, 17);
  flint::trees::ForestOptions opt;
  opt.n_trees = 5;
  opt.tree.max_depth = 10;
  const auto forest = flint::trees::train_forest(split.train, opt);
  const auto plan = plan_from_dataset(split.train, 30);
  const QuantForestEngine<float> engine(forest, plan);
  EXPECT_LT(engine.mismatch_rate(forest, split.test), 0.02);
}

TEST(QuantEngine, AccuracyIsComputed) {
  const auto full = flint::data::generate<float>(flint::data::eye_spec(), 23, 800);
  flint::trees::ForestOptions opt;
  opt.n_trees = 3;
  opt.tree.max_depth = 8;
  const auto forest = flint::trees::train_forest(full, opt);
  const QuantForestEngine<float> engine(forest, plan_from_dataset(full, 16));
  const double acc = engine.accuracy(full);
  EXPECT_GT(acc, 0.4);
  EXPECT_LE(acc, 1.0);
}

}  // namespace
