// Tests for the fixed-point quantization baseline (the paper's motivating
// counter-example): calibration, the quantizer itself, and the central
// property — quantized inference *loses* predictions while FLInt does not.
#include <gtest/gtest.h>

#include "data/split.hpp"
#include "data/synth.hpp"
#include "exec/interpreter.hpp"
#include "quant/quantized.hpp"
#include "trees/forest.hpp"

namespace {

using flint::quant::calibrate;
using flint::quant::QuantizedForestEngine;
using flint::quant::quantize;

TEST(Quantize, RoundsAndClamps) {
  EXPECT_EQ(quantize(0.0, 100.0, 16), 0);
  EXPECT_EQ(quantize(1.0, 100.0, 16), 100);
  EXPECT_EQ(quantize(-1.004, 100.0, 16), -100);
  EXPECT_EQ(quantize(1.006, 100.0, 16), 101);
  // Clamp at the signed range edge.
  EXPECT_EQ(quantize(1e9, 100.0, 16), 32767);
  EXPECT_EQ(quantize(-1e9, 100.0, 16), -32767);
}

TEST(Calibrate, ScalesMapMaxToRangeEdge) {
  flint::data::Dataset<float> ds("q", 2);
  ds.add_row(std::vector<float>{2.0f, -8.0f}, 0);
  ds.add_row(std::vector<float>{-4.0f, 1.0f}, 1);
  const auto params = calibrate(ds, 8);
  ASSERT_EQ(params.feature_count(), 2u);
  // 8 bits -> q_max = 127; feature 0 max |v| = 4, feature 1 max |v| = 8.
  EXPECT_DOUBLE_EQ(params.scale[0], 127.0 / 4.0);
  EXPECT_DOUBLE_EQ(params.scale[1], 127.0 / 8.0);
  EXPECT_EQ(quantize(4.0, params.scale[0], 8), 127);
}

TEST(Calibrate, ConstantZeroFeatureGetsUnitScale) {
  flint::data::Dataset<float> ds("q", 1);
  ds.add_row(std::vector<float>{0.0f}, 0);
  ds.add_row(std::vector<float>{0.0f}, 1);
  EXPECT_DOUBLE_EQ(calibrate(ds, 16).scale[0], 1.0);
}

TEST(Calibrate, RejectsBadArguments) {
  flint::data::Dataset<float> empty("e", 1);
  EXPECT_THROW((void)calibrate(empty, 16), std::invalid_argument);
  flint::data::Dataset<float> ds("q", 1);
  ds.add_row(std::vector<float>{1.0f}, 0);
  EXPECT_THROW((void)calibrate(ds, 1), std::invalid_argument);
  EXPECT_THROW((void)calibrate(ds, 32), std::invalid_argument);
}

TEST(QuantizedEngine, RejectsBadConstruction) {
  const flint::trees::Forest<float> empty;
  EXPECT_THROW((QuantizedForestEngine<float>(empty, {})), std::invalid_argument);

  const auto ds = flint::data::generate<float>(flint::data::wine_spec(), 3, 300);
  flint::trees::ForestOptions opt;
  opt.n_trees = 1;
  opt.tree.max_depth = 3;
  const auto forest = flint::trees::train_forest(ds, opt);
  flint::quant::QuantizationParams short_params;  // zero features
  EXPECT_THROW((QuantizedForestEngine<float>(forest, short_params)),
               std::invalid_argument);
}

class QuantizationLoss : public ::testing::TestWithParam<std::string> {};

TEST_P(QuantizationLoss, CoarseQuantizationFlipsPredictionsFlintDoesNot) {
  const auto spec = flint::data::spec_by_name(GetParam());
  const auto full = flint::data::generate<float>(spec, 13, 2000);
  const auto split = flint::data::train_test_split(full, 0.25, 13);
  flint::trees::ForestOptions opt;
  opt.n_trees = 10;
  opt.tree.max_depth = 12;
  opt.tree.max_features = flint::trees::TrainOptions::kSqrtFeatures;
  const auto forest = flint::trees::train_forest(split.train, opt);

  // FLInt: exact by construction on every test row.
  const flint::exec::FlintForestEngine<float> flint_engine(
      forest, flint::exec::FlintVariant::Encoded);
  for (std::size_t r = 0; r < split.test.rows(); ++r) {
    ASSERT_EQ(flint_engine.predict(split.test.row(r)),
              forest.predict(split.test.row(r)));
  }

  // Quantization: mismatch rate must not increase with precision, and the
  // coarse end must actually lose predictions (the paper's motivation).
  double previous = 1.0;
  double coarse_rate = 0.0;
  for (const int bits : {6, 10, 16, 24}) {
    const auto params = calibrate(split.train, bits);
    const QuantizedForestEngine<float> engine(forest, params);
    const double rate = engine.mismatch_rate(forest, split.test);
    if (bits == 6) coarse_rate = rate;
    EXPECT_LE(rate, previous + 0.02)
        << "mismatch rate grew with precision at " << bits << " bits";
    previous = rate;
  }
  EXPECT_GT(coarse_rate, 0.0)
      << "6-bit quantization lost no predictions; dataset too easy to "
         "demonstrate the motivation";
}

INSTANTIATE_TEST_SUITE_P(Datasets, QuantizationLoss,
                         ::testing::Values("magic", "sensorless", "wine"));

TEST(QuantizedEngine, HighPrecisionApproachesExact) {
  const auto full = flint::data::generate<float>(flint::data::magic_spec(), 17, 1500);
  const auto split = flint::data::train_test_split(full, 0.25, 17);
  flint::trees::ForestOptions opt;
  opt.n_trees = 5;
  opt.tree.max_depth = 10;
  const auto forest = flint::trees::train_forest(split.train, opt);
  const auto params = calibrate(split.train, 30);
  const QuantizedForestEngine<float> engine(forest, params);
  EXPECT_LT(engine.mismatch_rate(forest, split.test), 0.02);
}

TEST(QuantizedEngine, AccuracyIsComputed) {
  const auto full = flint::data::generate<float>(flint::data::eye_spec(), 23, 800);
  flint::trees::ForestOptions opt;
  opt.n_trees = 3;
  opt.tree.max_depth = 8;
  const auto forest = flint::trees::train_forest(full, opt);
  const QuantizedForestEngine<float> engine(forest, calibrate(full, 16));
  const double acc = engine.accuracy(full);
  EXPECT_GT(acc, 0.4);
  EXPECT_LE(acc, 1.0);
}

}  // namespace
