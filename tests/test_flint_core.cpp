// Unit tests for the FLInt operator API: threshold encoding (the paper's
// Listings 2 and 4), C expression rendering, radix keys and total order.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "core/flint.hpp"

namespace {

using namespace flint::core;

TEST(EncodeThreshold, PositiveSplitIsDirect) {
  // Listing 2: the paper's split constant has bit pattern 0x41213087
  // (the printed decimal 10.074347 rounds to the neighbouring pattern, so
  // the value is reconstructed from the paper's immediate).
  const auto enc = encode_threshold_le(from_si_bits<float>(0x41213087));
  EXPECT_EQ(enc.mode, ThresholdMode::Direct);
  EXPECT_EQ(enc.immediate, 0x41213087);
  EXPECT_EQ(immediate_hex(enc), "0x41213087");
}

TEST(EncodeThreshold, MoreListing2Immediates) {
  EXPECT_EQ(encode_threshold_le(from_si_bits<float>(0x413F986E)).immediate,
            0x413F986E);
  EXPECT_EQ(encode_threshold_le(from_si_bits<float>(0x4622FA08)).immediate,
            0x4622FA08);
  // And the straightforward decimal-to-float path.
  EXPECT_EQ(encode_threshold_le(11.974715f).immediate,
            si_bits(11.974715f));
}

TEST(EncodeThreshold, NegativeSplitFlipsSign) {
  // Listing 4: split -2.935417f -> immediate 0x403bddde (= bits of
  // +2.935417f) compared against the sign-flipped feature load.
  const auto enc = encode_threshold_le(
      from_si_bits<float>(static_cast<std::int32_t>(0xC03BDDDE)));
  EXPECT_EQ(enc.mode, ThresholdMode::SignFlip);
  EXPECT_EQ(enc.immediate, 0x403BDDDE);
}

TEST(EncodeThreshold, NegativeZeroRewrittenToPositiveZero) {
  const auto enc = encode_threshold_le(-0.0f);
  EXPECT_EQ(enc.mode, ThresholdMode::Direct);
  EXPECT_EQ(enc.immediate, 0);
  // And the rewritten comparison matches IEEE `x <= -0.0f` everywhere.
  for (const float x : {-1.0f, -0.0f, 0.0f, 1.0f,
                        std::numeric_limits<float>::denorm_min(),
                        -std::numeric_limits<float>::denorm_min()}) {
    EXPECT_EQ(enc.le(x), x <= -0.0f) << "x=" << x;
  }
}

TEST(EncodeThreshold, DoubleWidth) {
  const auto enc = encode_threshold_le(1.5);
  EXPECT_EQ(enc.mode, ThresholdMode::Direct);
  EXPECT_EQ(enc.immediate, 0x3FF8000000000000ll);
  const auto neg = encode_threshold_le(-1.5);
  EXPECT_EQ(neg.mode, ThresholdMode::SignFlip);
  EXPECT_EQ(neg.immediate, 0x3FF8000000000000ll);
}

template <typename T>
class EncodedLeProperty : public ::testing::Test {};
using Widths = ::testing::Types<float, double>;
TYPED_TEST_SUITE(EncodedLeProperty, Widths);

TYPED_TEST(EncodedLeProperty, MatchesIEEEForRandomPairs) {
  using S = typename FloatTraits<TypeParam>::Signed;
  using U = typename FloatTraits<TypeParam>::Unsigned;
  std::mt19937_64 rng(21);
  int checked = 0;
  for (int i = 0; i < 500'000; ++i) {
    const auto split =
        from_si_bits<TypeParam>(static_cast<S>(static_cast<U>(rng())));
    const auto x = from_si_bits<TypeParam>(static_cast<S>(static_cast<U>(rng())));
    if (std::isnan(split) || std::isnan(x)) continue;
    ++checked;
    const auto enc = encode_threshold_le(split);
    ASSERT_EQ(enc.le(x), x <= split) << "x=" << x << " split=" << split;
  }
  EXPECT_GT(checked, 400'000);
}

TYPED_TEST(EncodedLeProperty, MatchesIEEEOnBoundary) {
  // x exactly equal to the split must go left (<= is inclusive): this is
  // the property the trainer's partition relies on.
  using S = typename FloatTraits<TypeParam>::Signed;
  using U = typename FloatTraits<TypeParam>::Unsigned;
  std::mt19937_64 rng(23);
  for (int i = 0; i < 100'000; ++i) {
    const auto split =
        from_si_bits<TypeParam>(static_cast<S>(static_cast<U>(rng())));
    if (std::isnan(split) || std::isinf(split)) continue;
    const auto enc = encode_threshold_le(split);
    EXPECT_TRUE(enc.le(split));
    // One ulp above must go right, one ulp below left (away from zero
    // boundaries where the SI neighbor changes sign class).
    const S bits = si_bits(split);
    if (bits > 0 && bits < std::numeric_limits<S>::max()) {
      const auto above = from_si_bits<TypeParam>(bits + 1);
      const auto below = from_si_bits<TypeParam>(bits - 1);
      if (!std::isnan(above)) EXPECT_FALSE(enc.le(above)) << split;
      if (!std::isnan(below)) EXPECT_TRUE(enc.le(below)) << split;
    }
  }
}

TEST(CExpression, DirectForm) {
  const auto enc = encode_threshold_le(from_si_bits<float>(0x41213087));
  EXPECT_EQ(to_c_expression(enc, "x"), "(x <= ((int32_t)0x41213087))");
}

TEST(CExpression, SignFlipForm) {
  const auto enc = encode_threshold_le(
      from_si_bits<float>(static_cast<std::int32_t>(0xC03BDDDE)));
  EXPECT_EQ(to_c_expression(enc, "x"),
            "(((int32_t)0x403bddde) <= (x ^ ((int32_t)0x80000000)))");
}

TEST(CExpression, DoubleForms) {
  const auto enc = encode_threshold_le(-1.5);
  EXPECT_EQ(to_c_expression(enc, "x"),
            "(((int64_t)0x3ff8000000000000) <= (x ^ "
            "((int64_t)0x8000000000000000)))");
}

TEST(RadixKey, IsStrictlyMonotone) {
  // Walking the FLInt total order by bit pattern, keys must strictly
  // increase: negative patterns descending from 0xFFFFFFFF.., then -0, +0,
  // then positive ascending.
  const float seq[] = {-std::numeric_limits<float>::infinity(),
                       -3.5f,
                       -1.0f,
                       -std::numeric_limits<float>::denorm_min(),
                       -0.0f,
                       0.0f,
                       std::numeric_limits<float>::denorm_min(),
                       1.0f,
                       3.5f,
                       std::numeric_limits<float>::infinity()};
  for (std::size_t i = 0; i + 1 < std::size(seq); ++i) {
    EXPECT_LT(to_radix_key(seq[i]), to_radix_key(seq[i + 1]))
        << seq[i] << " vs " << seq[i + 1];
  }
}

TEST(TotalOrder, ThreeWayResults) {
  EXPECT_EQ(total_order(1.0f, 2.0f), -1);
  EXPECT_EQ(total_order(2.0f, 1.0f), 1);
  EXPECT_EQ(total_order(2.0f, 2.0f), 0);
  EXPECT_EQ(total_order(-0.0f, 0.0f), -1);  // the documented deviation
  EXPECT_EQ(total_order(0.0f, -0.0f), 1);
}

TEST(Equality, IsBitEquality) {
  EXPECT_TRUE(eq(1.5f, 1.5f));
  EXPECT_FALSE(eq(-0.0f, 0.0f));  // Lemma 1 with the -0 != +0 convention
  EXPECT_FALSE(eq(1.5f, 1.5000001f));
}

TEST(SiBits, KnownPatterns) {
  EXPECT_EQ(si_bits(0.0f), 0);
  EXPECT_EQ(si_bits(-0.0f), std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(si_bits(1.0f), 0x3F800000);
  EXPECT_EQ(from_si_bits<float>(0x3F800000), 1.0f);
}

// --- Generalized relations (Section III-C) ------------------------------- //

template <typename T>
class RelationProperty : public ::testing::Test {};
TYPED_TEST_SUITE(RelationProperty, Widths);

template <typename T>
bool ieee_relation(Relation rel, T x, T s) {
  switch (rel) {
    case Relation::LE: return x <= s;
    case Relation::LT: return x < s;
    case Relation::GE: return x >= s;
    case Relation::GT: return x > s;
  }
  return false;
}

TYPED_TEST(RelationProperty, AllFourRelationsMatchIEEEOnRandomPairs) {
  using S = typename FloatTraits<TypeParam>::Signed;
  using U = typename FloatTraits<TypeParam>::Unsigned;
  std::mt19937_64 rng(29);
  for (int i = 0; i < 200'000; ++i) {
    const auto split =
        from_si_bits<TypeParam>(static_cast<S>(static_cast<U>(rng())));
    const auto x = from_si_bits<TypeParam>(static_cast<S>(static_cast<U>(rng())));
    if (std::isnan(split) || std::isnan(x)) continue;
    for (const Relation rel :
         {Relation::LE, Relation::LT, Relation::GE, Relation::GT}) {
      const auto pred = encode_relation(rel, split);
      ASSERT_EQ(pred(x), ieee_relation(rel, x, split))
          << to_string(rel) << " x=" << x << " split=" << split;
    }
  }
}

TYPED_TEST(RelationProperty, ZeroClusterExhaustive) {
  // The signed-zero cluster is where naive encodings break; check every
  // (x, split, relation) combination over the critical neighborhood.
  const TypeParam denorm = std::numeric_limits<TypeParam>::denorm_min();
  const TypeParam values[] = {TypeParam(-1), -denorm, TypeParam(-0.0),
                              TypeParam(0.0), denorm, TypeParam(1)};
  for (const TypeParam split : values) {
    for (const TypeParam x : values) {
      for (const Relation rel :
           {Relation::LE, Relation::LT, Relation::GE, Relation::GT}) {
        const auto pred = encode_relation(rel, split);
        EXPECT_EQ(pred(x), ieee_relation(rel, x, split))
            << to_string(rel) << " x=" << x << " split=" << split;
      }
    }
  }
}

TYPED_TEST(RelationProperty, ComplementPairs) {
  using S = typename FloatTraits<TypeParam>::Signed;
  using U = typename FloatTraits<TypeParam>::Unsigned;
  std::mt19937_64 rng(31);
  for (int i = 0; i < 50'000; ++i) {
    const auto split =
        from_si_bits<TypeParam>(static_cast<S>(static_cast<U>(rng())));
    const auto x = from_si_bits<TypeParam>(static_cast<S>(static_cast<U>(rng())));
    if (std::isnan(split) || std::isnan(x)) continue;
    EXPECT_NE(encode_relation(Relation::LE, split)(x),
              encode_relation(Relation::GT, split)(x));
    EXPECT_NE(encode_relation(Relation::GE, split)(x),
              encode_relation(Relation::LT, split)(x));
  }
}

TEST(RelationNames, ToString) {
  EXPECT_STREQ(to_string(Relation::LE), "<=");
  EXPECT_STREQ(to_string(Relation::LT), "<");
  EXPECT_STREQ(to_string(Relation::GE), ">=");
  EXPECT_STREQ(to_string(Relation::GT), ">");
}

TEST(Constexpr, OperatorsAreConstexpr) {
  static_assert(ge_theorem1(2.0f, 1.0f));
  static_assert(!ge_theorem1(-2.0f, 1.0f));
  static_assert(ge_theorem2(2.0, 1.0));
  static_assert(ge_radix(1.0f, -1.0f));
  static_assert(encode_threshold_le(1.0f).mode == ThresholdMode::Direct);
  static_assert(encode_threshold_le(-1.0f).mode == ThresholdMode::SignFlip);
  static_assert(encode_threshold_le(1.0f).le(0.5f));
  SUCCEED();
}

}  // namespace
