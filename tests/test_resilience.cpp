// Chaos suite for the serve/ resilience contract: no submitted request is
// ever silently dropped — every accepted future resolves exactly once, to
// a result or one typed ServeError — and the server keeps serving after
// every fault.  The always-on half exercises deadlines, admission control
// and the degrade ladder with real timing; the FLINT_FAULTS half drives
// the deterministic fault points of serve/faults.hpp (injected throws,
// allocation failures, stalls + watchdog fail-over, clock skew, mid-swap
// faults) and is what the chaos-smoke CI job sweeps across seeds
// (FLINT_CHAOS_SEED) under ASan/UBSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "data/split.hpp"
#include "data/synth.hpp"
#include "predict/predictor.hpp"
#include "serve/faults.hpp"
#include "serve/server.hpp"
#include "trees/forest.hpp"

namespace {

using flint::serve::ErrorCode;
using flint::serve::HealthState;
using flint::serve::InferenceServer;
using flint::serve::PredictorPtr;
using flint::serve::Priority;
using flint::serve::ServeError;
using flint::serve::ServeOptions;
using flint::serve::ShedPolicy;
using flint::serve::SubmitOptions;
namespace faults = flint::serve::faults;

PredictorPtr wrap(const flint::trees::Forest<float>& forest) {
  return PredictorPtr(flint::predict::make_predictor(forest, "encoded"));
}

/// Delegating predictor that sleeps before every batch — deterministic
/// pipeline contention for the deadline tests (a busy worker makes batches
/// queue behind it for a known duration).
class SlowPredictor : public flint::predict::Predictor<float> {
 public:
  SlowPredictor(PredictorPtr inner, std::chrono::milliseconds delay)
      : inner_(std::move(inner)), delay_(delay) {
    set_missing_policy(inner_->missing_policy());
  }
  [[nodiscard]] std::string name() const override {
    return "slow:" + inner_->name();
  }
  [[nodiscard]] int num_classes() const noexcept override {
    return inner_->num_classes();
  }
  [[nodiscard]] std::size_t feature_count() const noexcept override {
    return inner_->feature_count();
  }

 private:
  void do_predict_batch(const float* features, std::size_t n_samples,
                        std::int32_t* out) const override {
    std::this_thread::sleep_for(delay_);
    inner_->predict_batch_prevalidated(features, n_samples, out);
  }

  PredictorPtr inner_;
  std::chrono::milliseconds delay_;
};

template <typename Future>
ErrorCode serve_error_code(Future& future) {
  try {
    (void)future.get();
  } catch (const ServeError& e) {
    return e.code();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "expected ServeError, got: " << e.what();
    return ErrorCode::kExecutionFailed;
  }
  ADD_FAILURE() << "expected ServeError, future resolved with a value";
  return ErrorCode::kExecutionFailed;
}

class ResilienceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    faults::reset();
    const auto full =
        flint::data::generate<float>(flint::data::magic_spec(), 11, 600);
    split_ = flint::data::train_test_split(full, 0.3, 11);
    flint::trees::ForestOptions opt;
    opt.n_trees = 9;
    opt.tree.max_depth = 6;
    opt.tree.max_features = flint::trees::TrainOptions::kSqrtFeatures;
    forest_a_ = flint::trees::train_forest(split_.train, opt);
    opt.tree.seed = 1717;
    forest_b_ = flint::trees::train_forest(split_.train, opt);
    cols_ = forest_a_.feature_count();
    rows_ = split_.test.rows();
    pool_.resize(rows_ * cols_);
    ref_a_.resize(rows_);
    ref_b_.resize(rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      const auto row = split_.test.row(r);
      std::copy(row.begin(), row.begin() + cols_, pool_.begin() + r * cols_);
      ref_a_[r] = forest_a_.predict(row);
      ref_b_[r] = forest_b_.predict(row);
    }
  }

  void TearDown() override { faults::reset(); }

  std::vector<float> rows_from(std::size_t first, std::size_t n) const {
    std::vector<float> out(n * cols_);
    for (std::size_t s = 0; s < n; ++s) {
      std::copy_n(pool_.data() + ((first + s) % rows_) * cols_, cols_,
                  out.data() + s * cols_);
    }
    return out;
  }

  bool matches(const std::vector<std::int32_t>& ref, std::size_t first,
               const std::vector<std::int32_t>& got) const {
    for (std::size_t s = 0; s < got.size(); ++s) {
      if (got[s] != ref[(first + s) % rows_]) return false;
    }
    return true;
  }

  /// Polls metrics() until `predicate` holds or ~2s elapse.
  template <typename Predicate>
  static bool eventually(const InferenceServer& server, Predicate predicate) {
    for (int i = 0; i < 400; ++i) {
      if (predicate(server.metrics())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  flint::data::TrainTestSplit<float> split_;
  flint::trees::Forest<float> forest_a_;
  flint::trees::Forest<float> forest_b_;
  std::size_t cols_ = 0;
  std::size_t rows_ = 0;
  std::vector<float> pool_;
  std::vector<std::int32_t> ref_a_;
  std::vector<std::int32_t> ref_b_;
};

// ---------------------------------------------------------------------------
// Always-on: deadlines, admission control, degrade ladder.
// ---------------------------------------------------------------------------

TEST_F(ResilienceFixture, GenerousDeadlineSucceeds) {
  InferenceServer server{ServeOptions{}};
  server.registry().install("default", wrap(forest_a_));
  SubmitOptions sopt;
  sopt.deadline_us = 10'000'000;
  auto got = server.submit(rows_from(0, 3), 3, {}, sopt).get();
  EXPECT_TRUE(matches(ref_a_, 0, got));
  const auto m = server.metrics();
  EXPECT_EQ(m.deadline_missed, 0u);
  EXPECT_EQ(m.completed, 1u);
}

// The tightest queued deadline drives the flush: with a 30s max_delay a
// deadline-carrying request still dispatches within its budget, and the
// no-deadline request coalesced with it rides along.
TEST_F(ResilienceFixture, TightestDeadlineDrivesFlush) {
  ServeOptions opt;
  opt.max_batch = 1u << 20;
  opt.max_delay_us = 30'000'000;
  opt.workers = 1;
  InferenceServer server(opt);
  server.registry().install("default", wrap(forest_a_));
  const auto start = std::chrono::steady_clock::now();
  auto no_deadline = server.submit(rows_from(0, 2), 2);
  SubmitOptions sopt;
  sopt.deadline_us = 200'000;  // 200ms << 30s
  auto with_deadline = server.submit(rows_from(10, 2), 2, {}, sopt);
  EXPECT_TRUE(matches(ref_a_, 10, with_deadline.get()));
  EXPECT_TRUE(matches(ref_a_, 0, no_deadline.get()));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  EXPECT_EQ(server.metrics().deadline_missed, 0u);
}

// A request whose deadline expires while queued is swept and failed typed,
// never executed: the single worker is pinned by a slow batch, the
// deadline-carrying request expires in the batch queue behind it.
TEST_F(ResilienceFixture, ExpiredRequestSweptNotExecuted) {
  ServeOptions opt;
  opt.max_batch = 64;
  opt.max_delay_us = 0;  // every request dispatches as its own batch
  opt.workers = 1;
  InferenceServer server(opt);
  server.registry().install(
      "default", std::make_shared<SlowPredictor>(
                     wrap(forest_a_), std::chrono::milliseconds(150)));
  auto slow = server.submit(rows_from(0, 2), 2);
  // Let the worker pick the slow batch up before the deadline request.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  SubmitOptions sopt;
  sopt.deadline_us = 20'000;  // expires ~100ms before the worker frees up
  auto doomed = server.submit(rows_from(10, 2), 2, {}, sopt);
  EXPECT_EQ(serve_error_code(doomed), ErrorCode::kDeadlineExceeded);
  EXPECT_TRUE(matches(ref_a_, 0, slow.get()));
  const auto m = server.metrics();
  EXPECT_EQ(m.deadline_missed, 1u);
  EXPECT_EQ(m.failed, 1u);
  EXPECT_EQ(m.completed, 1u);
  EXPECT_EQ(m.requests, m.completed + m.failed);
}

// Queue pressure drives the degrade ladder and the health state machine:
// above 50% sample pressure the server reports degraded, and draining once
// stop() begins.
TEST_F(ResilienceFixture, DegradeLevelAndHealthTrackPressure) {
  ServeOptions opt;
  opt.max_batch = 1u << 20;
  opt.max_delay_us = 30'000'000;
  opt.workers = 1;
  opt.sample_capacity = 100;
  InferenceServer server(opt);
  server.registry().install("default", wrap(forest_a_));
  EXPECT_EQ(server.metrics().health, HealthState::kHealthy);
  auto pinned = server.submit(rows_from(0, 60), 60);  // pressure 0.6
  auto m = server.metrics();
  EXPECT_EQ(m.degrade_level, 1);
  EXPECT_EQ(m.health, HealthState::kDegraded);
  EXPECT_EQ(m.queued_samples, 60u);
  server.stop();
  EXPECT_TRUE(matches(ref_a_, 0, pinned.get()));
  m = server.metrics();
  EXPECT_EQ(m.health, HealthState::kDraining);
  EXPECT_EQ(m.degrade_level, 0);
  EXPECT_EQ(m.requests, m.completed + m.failed);
}

// ---------------------------------------------------------------------------
// FLINT_FAULTS: injected faults, watchdog fail-over, chaos sweep.
// ---------------------------------------------------------------------------

TEST_F(ResilienceFixture, InjectedPredictorThrowFailsBatchTyped) {
#if !FLINT_FAULTS
  GTEST_SKIP() << "requires -DFLINT_FAULTS=ON";
#else
  faults::Arm arm;
  arm.site = faults::Site::kWorkerExecute;
  arm.kind = faults::Kind::kThrow;
  arm.fire_at = 1;
  arm.count = 1;
  faults::arm(arm);
  InferenceServer server{ServeOptions{}};
  server.registry().install("default", wrap(forest_a_));
  auto doomed = server.submit(rows_from(0, 2), 2);
  EXPECT_EQ(serve_error_code(doomed), ErrorCode::kExecutionFailed);
  // The fault window is exhausted: the server keeps serving.
  auto fine = server.submit(rows_from(5, 2), 2);
  EXPECT_TRUE(matches(ref_a_, 5, fine.get()));
  const auto m = server.metrics();
  EXPECT_GE(m.faults_injected, 1u);
  EXPECT_EQ(m.failed, 1u);
  EXPECT_EQ(m.completed, 1u);
#endif
}

TEST_F(ResilienceFixture, InjectedAllocFailureInCoalesceFailsBatchTyped) {
#if !FLINT_FAULTS
  GTEST_SKIP() << "requires -DFLINT_FAULTS=ON";
#else
  faults::Arm arm;
  arm.site = faults::Site::kBatcherCoalesce;
  arm.kind = faults::Kind::kBadAlloc;
  arm.fire_at = 1;
  arm.count = 1;
  faults::arm(arm);
  InferenceServer server{ServeOptions{}};
  server.registry().install("default", wrap(forest_a_));
  auto doomed = server.submit(rows_from(0, 2), 2);
  EXPECT_EQ(serve_error_code(doomed), ErrorCode::kExecutionFailed);
  auto fine = server.submit(rows_from(5, 2), 2);
  EXPECT_TRUE(matches(ref_a_, 5, fine.get()));
#endif
}

// Priority eviction + ladder-top shedding, made deterministic by stalling
// the batcher (the queue cannot drain under it).
TEST_F(ResilienceFixture, PriorityEvictionAndLadderShedding) {
#if !FLINT_FAULTS
  GTEST_SKIP() << "requires -DFLINT_FAULTS=ON";
#else
  faults::Arm arm;
  arm.site = faults::Site::kBatcherForm;
  arm.kind = faults::Kind::kStall;
  arm.fire_at = 1;
  arm.count = 1;
  arm.stall_us = 5'000'000;
  faults::arm(arm);
  ServeOptions opt;
  opt.max_batch = 64;
  opt.max_delay_us = 0;
  opt.workers = 1;
  opt.queue_capacity = 4;
  opt.shed_policy = ShedPolicy::kPriorityEvict;
  opt.stall_timeout_us = 0;  // the stall is the scenario, not a failure
  InferenceServer server(opt);
  server.registry().install("default", wrap(forest_a_));
  // The bait batch parks the batcher inside the stall...
  auto bait = server.submit(rows_from(0, 1), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // ...so these four kLow requests stay queued.
  SubmitOptions low;
  low.priority = Priority::kLow;
  std::vector<std::future<std::vector<std::int32_t>>> lows;
  for (std::size_t i = 0; i < 4; ++i) {
    lows.push_back(server.submit(rows_from(10 + i, 1), 1, {}, low));
  }
  // Queue full (4/4, degrade level 3): another kLow is shed outright...
  auto shed = server.submit(rows_from(20, 1), 1, {}, low);
  try {
    (void)shed.get();
    FAIL() << "expected ladder shed";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOverloaded);
    EXPECT_GT(e.retry_after_us(), 0u);
  }
  // ...while a kHigh request displaces the youngest kLow victim.
  SubmitOptions high;
  high.priority = Priority::kHigh;
  auto vip = server.submit(rows_from(30, 1), 1, {}, high);
  EXPECT_EQ(serve_error_code(lows[3]), ErrorCode::kOverloaded);
  auto m = server.metrics();
  EXPECT_EQ(m.evicted, 1u);
  EXPECT_EQ(m.shed, 1u);
  // Release the batcher: everything still queued completes correctly.
  faults::cancel_stalls();
  EXPECT_TRUE(matches(ref_a_, 0, bait.get()));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(matches(ref_a_, 10 + i, lows[i].get()));
  }
  EXPECT_TRUE(matches(ref_a_, 30, vip.get()));
  server.stop();
  m = server.metrics();
  EXPECT_EQ(m.requests, m.completed + m.failed);
#endif
}

TEST_F(ResilienceFixture, WorkerStallWatchdogFailsOverAndRespawns) {
#if !FLINT_FAULTS
  GTEST_SKIP() << "requires -DFLINT_FAULTS=ON";
#else
  faults::Arm arm;
  arm.site = faults::Site::kWorkerExecute;
  arm.kind = faults::Kind::kStall;
  arm.fire_at = 1;
  arm.count = 1;
  arm.stall_us = 10'000'000;  // far beyond the watchdog threshold
  faults::arm(arm);
  ServeOptions opt;
  opt.workers = 1;
  opt.stall_timeout_us = 60'000;
  InferenceServer server(opt);
  server.registry().install("default", wrap(forest_a_));
  auto stalled = server.submit(rows_from(0, 2), 2);
  // The watchdog fails only the affected request, with a typed error.
  EXPECT_EQ(serve_error_code(stalled), ErrorCode::kStalled);
  EXPECT_EQ(server.metrics().worker_restarts, 1u);
  // The respawned worker serves immediately (the fault window is spent).
  auto fine = server.submit(rows_from(5, 2), 2);
  EXPECT_TRUE(matches(ref_a_, 5, fine.get()));
  // While the zombie is still stalled the server reports degraded; once
  // released and reaped it recovers to healthy.
  faults::cancel_stalls();
  EXPECT_TRUE(eventually(server, [](const flint::serve::ServeMetrics& m) {
    return m.health == HealthState::kHealthy;
  }));
  server.stop();
  const auto m = server.metrics();
  EXPECT_EQ(m.requests, m.completed + m.failed);
#endif
}

TEST_F(ResilienceFixture, BatcherStallWatchdogFailsOverAndRespawns) {
#if !FLINT_FAULTS
  GTEST_SKIP() << "requires -DFLINT_FAULTS=ON";
#else
  faults::Arm arm;
  arm.site = faults::Site::kBatcherForm;
  arm.kind = faults::Kind::kStall;
  arm.fire_at = 1;
  arm.count = 1;
  arm.stall_us = 10'000'000;
  faults::arm(arm);
  ServeOptions opt;
  opt.workers = 1;
  opt.stall_timeout_us = 60'000;
  InferenceServer server(opt);
  server.registry().install("default", wrap(forest_a_));
  auto stalled = server.submit(rows_from(0, 2), 2);
  EXPECT_EQ(serve_error_code(stalled), ErrorCode::kStalled);
  EXPECT_EQ(server.metrics().batcher_restarts, 1u);
  // The replacement batcher owns the queue now.
  auto fine = server.submit(rows_from(5, 2), 2);
  EXPECT_TRUE(matches(ref_a_, 5, fine.get()));
  faults::cancel_stalls();
  EXPECT_TRUE(eventually(server, [](const flint::serve::ServeMetrics& m) {
    return m.health == HealthState::kHealthy;
  }));
#endif
}

// A fault mid-install (the registry.install fault point sits before the
// pointer flip) must leave the last-good entry serving — the hot-swap
// rollback contract.
TEST_F(ResilienceFixture, MidSwapFaultRollsBackToLastGoodModel) {
#if !FLINT_FAULTS
  GTEST_SKIP() << "requires -DFLINT_FAULTS=ON";
#else
  InferenceServer server{ServeOptions{}};
  server.registry().install("default", wrap(forest_a_));
  faults::Arm arm;
  arm.site = faults::Site::kRegistryInstall;
  arm.kind = faults::Kind::kThrow;
  arm.fire_at = 1;
  arm.count = 1;
  faults::arm(arm);
  EXPECT_THROW(server.registry().install("default", wrap(forest_b_)),
               faults::InjectedFault);
  // Still serving model A at version 1.
  EXPECT_EQ(server.registry().resolve().version, 1u);
  auto got = server.submit(rows_from(3, 4), 4).get();
  EXPECT_TRUE(matches(ref_a_, 3, got));
  // A clean retry of the swap succeeds (fault window spent).
  EXPECT_EQ(server.registry().install("default", wrap(forest_b_)), 2u);
  auto swapped = server.submit(rows_from(3, 4), 4).get();
  EXPECT_TRUE(matches(ref_b_, 3, swapped));
#endif
}

// Constant clock skew must not break deadline bookkeeping: every serve
// timing decision reads the same (skewed) clock, so budgets still measure
// true elapsed time.
TEST_F(ResilienceFixture, ClockSkewDoesNotBreakDeadlines) {
#if !FLINT_FAULTS
  GTEST_SKIP() << "requires -DFLINT_FAULTS=ON";
#else
  for (const std::int64_t skew_us : {-2000, +2000}) {
    faults::reset();
    faults::Arm arm;
    arm.site = faults::Site::kClockNow;
    arm.kind = faults::Kind::kClockSkew;
    arm.skew_us = skew_us;
    faults::arm(arm);
    InferenceServer server{ServeOptions{}};
    server.registry().install("default", wrap(forest_a_));
    SubmitOptions sopt;
    sopt.deadline_us = 500'000;  // far beyond one batch's true latency
    auto got = server.submit(rows_from(0, 3), 3, {}, sopt).get();
    EXPECT_TRUE(matches(ref_a_, 0, got)) << "skew " << skew_us;
    EXPECT_EQ(server.metrics().deadline_missed, 0u) << "skew " << skew_us;
  }
#endif
}

// The seed sweep: a whole deterministic fault plan (throws, allocation
// failures, possibly clock skew) armed across every site, concurrent
// producers with mixed deadlines/priorities plus a mid-run hot swap.  The
// contract under any seed: every future resolves exactly once with a
// correct result or a typed error, the books balance, and the server
// serves cleanly once the plan is spent.
TEST_F(ResilienceFixture, ChaosSweepEveryRequestResolvesTyped) {
#if !FLINT_FAULTS
  GTEST_SKIP() << "requires -DFLINT_FAULTS=ON";
#else
  std::uint64_t seed = 1;
  if (const char* env = std::getenv("FLINT_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  faults::arm_seeded(seed, /*stall_us=*/0);
  ServeOptions opt;
  opt.max_batch = 32;
  opt.max_delay_us = 200;
  opt.workers = 2;
  opt.stall_timeout_us = 2'000'000;
  InferenceServer server(opt);
  // The registry fault point can reject even the first install; the
  // windows are finite, so a bounded retry always lands it.
  for (int attempt = 0;; ++attempt) {
    try {
      server.registry().install("default", wrap(forest_a_));
      break;
    } catch (const std::exception&) {
      ASSERT_LT(attempt, 20) << "install never admitted under seed " << seed;
    }
  }
  std::atomic<int> wrong{0};
  std::atomic<std::uint64_t> values{0};
  std::atomic<std::uint64_t> typed_errors{0};
  std::vector<std::thread> producers;
  for (unsigned p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < 40; ++i) {
        const std::size_t n = 1 + ((p + i) % 5);
        const std::size_t first = (p * 131 + i * 17) % rows_;
        SubmitOptions sopt;
        sopt.deadline_us = (i % 3 == 0) ? 50'000 : 0;
        sopt.priority = static_cast<Priority>(i % 3);
        auto future = server.submit(rows_from(first, n), n, {}, sopt);
        try {
          auto got = future.get();
          // A mid-run swap is attempted below; either model is correct.
          if (!matches(ref_a_, first, got) && !matches(ref_b_, first, got)) {
            wrong.fetch_add(1);
          }
          values.fetch_add(1);
        } catch (const ServeError&) {
          typed_errors.fetch_add(1);
        } catch (...) {
          wrong.fetch_add(1);  // anything untyped breaks the contract
        }
      }
    });
  }
  // Mid-run hot swap; the registry fault point may reject it — in that
  // case the last-good model must keep serving (checked via `wrong`).
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  try {
    server.registry().install("default", wrap(forest_b_));
  } catch (const std::exception&) {
    // Rolled back; still serving model A.
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(wrong.load(), 0) << "seed " << seed;
  EXPECT_EQ(values.load() + typed_errors.load(), 4u * 40u) << "seed " << seed;
  server.stop();
  const auto m = server.metrics();
  EXPECT_EQ(m.requests, m.completed + m.failed) << "seed " << seed;
  // The plan is spent (finite windows): a fresh request must serve.
  faults::reset();
  InferenceServer after{ServeOptions{}};
  after.registry().install("default", wrap(forest_a_));
  auto probe = after.submit(rows_from(0, 2), 2).get();
  EXPECT_TRUE(matches(ref_a_, 0, probe)) << "seed " << seed;
#endif
}

}  // namespace
