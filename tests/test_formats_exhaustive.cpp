// Format-generality suite: the paper states its lemmas for *arbitrary*
// exponent/mantissa widths (Definition 3), not just binary32/64.  This file
// verifies Theorem 1, Corollary 1 and the order-key/navigation utilities
// EXHAUSTIVELY over every ordered pair of several small formats — millions
// of pairs per format — via parameterized gtest.
#include <gtest/gtest.h>

#include <vector>

#include "fpformat/fpformat.hpp"

namespace {

using namespace flint::fpformat;

struct FormatCase {
  const char* name;
  FormatSpec spec;
};

class ExhaustiveFormat : public ::testing::TestWithParam<FormatCase> {
 protected:
  /// All non-NaN bit patterns of the format.
  [[nodiscard]] std::vector<std::uint64_t> ordered_patterns() const {
    const auto& spec = GetParam().spec;
    std::vector<std::uint64_t> out;
    const std::uint64_t count = std::uint64_t{1} << spec.total_bits();
    out.reserve(count);
    for (std::uint64_t b = 0; b < count; ++b) {
      if (is_ordered(b, spec)) out.push_back(b);
    }
    return out;
  }

  /// FLInt total-order >= on two ordered patterns, from first principles.
  [[nodiscard]] bool ref_ge(std::uint64_t x, std::uint64_t y) const {
    const auto& spec = GetParam().spec;
    const long double fx = fp_value(x, spec);
    const long double fy = fp_value(y, spec);
    if (fx != fy) return fx > fy;
    const bool sx = sign_bit(x, spec);
    const bool sy = sign_bit(y, spec);
    if (sx != sy) return sy;  // -0 < +0
    return true;
  }
};

TEST_P(ExhaustiveFormat, Theorem1HoldsForAllPairs) {
  const auto& spec = GetParam().spec;
  const auto patterns = ordered_patterns();
  for (const std::uint64_t x : patterns) {
    const auto sx = signed_value(x, spec);
    for (const std::uint64_t y : patterns) {
      const auto sy = signed_value(y, spec);
      const bool u = sx >= sy;
      const bool v = sx < 0 && sy < 0 && sx != sy;
      ASSERT_EQ(u != v, ref_ge(x, y))
          << format_bits(x, spec) << " vs " << format_bits(y, spec);
    }
  }
}

TEST_P(ExhaustiveFormat, OrderKeyIsStrictlyMonotone) {
  const auto& spec = GetParam().spec;
  const auto patterns = ordered_patterns();
  for (const std::uint64_t x : patterns) {
    for (const std::uint64_t y : patterns) {
      if (x == y) continue;
      ASSERT_EQ(order_key(x, spec) > order_key(y, spec), ref_ge(x, y))
          << format_bits(x, spec) << " vs " << format_bits(y, spec);
    }
  }
}

TEST_P(ExhaustiveFormat, NextUpWalksTheWholeOrder) {
  const auto& spec = GetParam().spec;
  const auto patterns = ordered_patterns();
  // Starting from -infinity, next_up must enumerate every ordered pattern
  // exactly once, in strictly increasing FP order, ending at +infinity.
  std::uint64_t cur = negative_infinity(spec);
  std::size_t visited = 1;
  std::uint64_t next = 0;
  while (next_up(cur, spec, next)) {
    ASSERT_TRUE(is_ordered(next, spec)) << format_bits(next, spec);
    ASSERT_TRUE(ref_ge(next, cur) && next != cur);
    ASSERT_EQ(ulp_distance(cur, next, spec), 0u);  // adjacent
    cur = next;
    ++visited;
    ASSERT_LE(visited, patterns.size()) << "next_up cycled";
  }
  EXPECT_EQ(cur, positive_infinity(spec));
  EXPECT_EQ(visited, patterns.size());
}

TEST_P(ExhaustiveFormat, NextDownInvertsNextUp) {
  const auto& spec = GetParam().spec;
  for (const std::uint64_t b : ordered_patterns()) {
    std::uint64_t up = 0;
    if (!next_up(b, spec, up)) continue;
    std::uint64_t back = 0;
    ASSERT_TRUE(next_down(up, spec, back));
    EXPECT_EQ(back, b) << format_bits(b, spec);
  }
}

TEST_P(ExhaustiveFormat, NavigationRejectsEndpointsAndNaN) {
  const auto& spec = GetParam().spec;
  std::uint64_t out = 0;
  EXPECT_FALSE(next_up(positive_infinity(spec), spec, out));
  EXPECT_FALSE(next_down(negative_infinity(spec), spec, out));
  const std::uint64_t nan = positive_infinity(spec) | 1;
  EXPECT_FALSE(next_up(nan, spec, out));
  EXPECT_FALSE(next_down(nan, spec, out));
}

TEST_P(ExhaustiveFormat, ZeroClusterIsAdjacent) {
  const auto& spec = GetParam().spec;
  std::uint64_t out = 0;
  ASSERT_TRUE(next_up(negative_zero(spec), spec, out));
  EXPECT_EQ(out, positive_zero(spec));
  ASSERT_TRUE(next_down(positive_zero(spec), spec, out));
  EXPECT_EQ(out, negative_zero(spec));
  EXPECT_EQ(ulp_distance(negative_zero(spec), positive_zero(spec), spec), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    TinyFormats, ExhaustiveFormat,
    ::testing::Values(FormatCase{"e4m3", {4, 3}},      // the tiny8 default
                      FormatCase{"e2m3", {2, 3}},      // minimal exponent
                      FormatCase{"e5m2", {5, 2}},      // fp8-E5M2 layout
                      FormatCase{"e3m4", {3, 4}},      // mantissa-heavy
                      FormatCase{"e4m5", {4, 5}}),     // 10-bit format
    [](const auto& info) { return std::string(info.param.name); });

// ulp_distance sanity on binary32 against known neighbors.
TEST(UlpDistance, Binary32KnownValues) {
  const auto spec = FormatSpec::binary32();
  const auto bits = [](float v) {
    return static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(flint::fpformat::float_bits(v)));
  };
  EXPECT_EQ(ulp_distance(bits(1.0f), bits(1.0f), spec), 0u);
  std::uint64_t up = 0;
  ASSERT_TRUE(next_up(bits(1.0f), spec, up));
  EXPECT_EQ(ulp_distance(bits(1.0f), up, spec), 0u);
  std::uint64_t up2 = 0;
  ASSERT_TRUE(next_up(up, spec, up2));
  EXPECT_EQ(ulp_distance(bits(1.0f), up2, spec), 1u);
  // Symmetry.
  EXPECT_EQ(ulp_distance(up2, bits(1.0f), spec),
            ulp_distance(bits(1.0f), up2, spec));
}

}  // namespace
