// Code-generator tests: Listing-shaped golden checks plus JIT-backed
// bit-exact equivalence of every generated flavor against the reference
// interpreter, for float and double, across datasets (parameterized).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <tuple>

#include "core/flint.hpp"

#include "codegen/cgen_cags.hpp"
#include "codegen/cgen_ifelse.hpp"
#include "codegen/cgen_layout.hpp"
#include "codegen/cgen_native.hpp"
#include "exec/artifacts/artifacts.hpp"
#include "data/split.hpp"
#include "data/synth.hpp"
#include "exec/interpreter.hpp"
#include "jit/jit.hpp"
#include "trees/forest.hpp"
#include "trees/tree_stats.hpp"

namespace {

using flint::codegen::CGenOptions;
using flint::codegen::GeneratedCode;
using flint::trees::Forest;
using flint::trees::Tree;

/// Listing 1/2 example tree: three nested positive splits + one negative.
Tree<float> listing_tree() {
  using flint::core::from_si_bits;
  Tree<float> t(126);
  // Split constants reconstructed from the paper's exact bit patterns.
  const auto n0 = t.add_split(3, from_si_bits<float>(0x41213087));
  const auto n1 = t.add_split(83, from_si_bits<float>(0x413F986E));
  const auto n2 = t.add_split(24, from_si_bits<float>(0x4622FA08));
  const auto n3 =
      t.add_split(125, from_si_bits<float>(static_cast<std::int32_t>(0xC03BDDDE)));
  const auto l0 = t.add_leaf(0);
  const auto l1 = t.add_leaf(1);
  const auto l2 = t.add_leaf(2);
  const auto l3 = t.add_leaf(3);
  const auto l4 = t.add_leaf(0);
  t.link(n0, n1, l0);
  t.link(n1, n2, l1);
  t.link(n2, n3, l2);
  t.link(n3, l3, l4);
  return t;
}

TEST(IfElseGolden, FloatBodyMatchesListing1Shape) {
  CGenOptions opt;
  const auto body = flint::codegen::ifelse_tree_body(listing_tree(), opt);
  EXPECT_NE(body.find("if (pX[3] <= 10.0743475f) {"), std::string::npos) << body;
  EXPECT_NE(body.find("if (pX[83] <= 11.9747143f) {"), std::string::npos) << body;
  EXPECT_NE(body.find("if (pX[24] <= 10430.5078f) {"), std::string::npos) << body;
  EXPECT_NE(body.find("return 0;"), std::string::npos);
}

TEST(IfElseGolden, FlintBodyMatchesListing2And4Shape) {
  CGenOptions opt;
  opt.flint = true;
  const auto body = flint::codegen::ifelse_tree_body(listing_tree(), opt);
  // Listing 2 immediates.
  EXPECT_NE(body.find("forest_ld(pX + 3) <= ((int32_t)0x41213087)"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("forest_ld(pX + 83) <= ((int32_t)0x413f986e)"),
            std::string::npos);
  EXPECT_NE(body.find("forest_ld(pX + 24) <= ((int32_t)0x4622fa08)"),
            std::string::npos);
  // Listing 4 negative split: flipped immediate on the left, xor on the load.
  EXPECT_NE(body.find("((int32_t)0x403bddde) <= (forest_ld(pX + 125) ^ "
                      "((int32_t)0x80000000))"),
            std::string::npos)
      << body;
  // No float literal anywhere in the FLInt body.
  EXPECT_EQ(body.find("10.0743475f"), std::string::npos);
}

TEST(CagsGolden, SwapsBranchesByProbability) {
  // Tree: root f0 <= 0 ? A : B; all probe traffic goes right, so CAGS must
  // emit the goto toward the LEFT (cold) child with the original <=
  // condition, falling through to the right child.
  Tree<float> t(1);
  const auto root = t.add_split(0, 0.0f);
  const auto a = t.add_leaf(0);
  const auto b = t.add_leaf(1);
  t.link(root, a, b);
  flint::trees::BranchStats stats;
  stats.visits = {10, 1, 9};
  stats.left_probability = {0.1, 0.5, 0.5};
  CGenOptions opt;
  opt.use_builtin_expect = false;
  const auto body = flint::codegen::cags_tree_body(t, stats, opt);
  EXPECT_NE(body.find("if (pX[0] <= 0.0f) goto L1;"), std::string::npos) << body;
  EXPECT_LT(body.find("return 1;"), body.find("return 0;")) << body;
}

TEST(CagsGolden, KernelBoundariesAppearUnderTinyBudget) {
  const auto full = flint::data::generate<float>(flint::data::wine_spec(), 3, 400);
  flint::trees::ForestOptions fopt;
  fopt.n_trees = 1;
  fopt.tree.max_depth = 8;
  const auto forest = flint::trees::train_forest(full, fopt);
  const auto stats = flint::trees::collect_branch_stats(forest, full);
  CGenOptions opt;
  opt.kernel_budget_bytes = 64;  // force many kernels
  const auto body =
      flint::codegen::cags_tree_body(forest.tree(0), stats[0], opt);
  EXPECT_NE(body.find("/* --- kernel boundary --- */"), std::string::npos);
  EXPECT_NE(body.find("__builtin_expect"), std::string::npos);
}

TEST(CagsGolden, StatsSizeMismatchThrows) {
  const auto t = listing_tree();
  flint::trees::BranchStats stats;  // wrong size
  CGenOptions opt;
  EXPECT_THROW((void)flint::codegen::cags_tree_body(t, stats, opt),
               std::invalid_argument);
}

TEST(Generators, EmptyForestThrows) {
  const Forest<float> empty;
  CGenOptions opt;
  EXPECT_THROW((void)flint::codegen::generate_ifelse(empty, opt),
               std::invalid_argument);
  EXPECT_THROW((void)flint::codegen::generate_native(empty, opt),
               std::invalid_argument);
  EXPECT_THROW((void)flint::codegen::generate_cags(empty, {}, opt),
               std::invalid_argument);
}

// ---- JIT-backed equivalence across flavors and datasets ----------------- //

enum class Flavor { IfElseFloat, IfElseFlint, CagsFloat, CagsFlint, NativeFloat, NativeFlint };

const char* flavor_name(Flavor f) {
  switch (f) {
    case Flavor::IfElseFloat: return "IfElseFloat";
    case Flavor::IfElseFlint: return "IfElseFlint";
    case Flavor::CagsFloat: return "CagsFloat";
    case Flavor::CagsFlint: return "CagsFlint";
    case Flavor::NativeFloat: return "NativeFloat";
    case Flavor::NativeFlint: return "NativeFlint";
  }
  return "?";
}

class FlavorEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, Flavor>> {};

TEST_P(FlavorEquivalence, JitMatchesReferenceEngine) {
  const auto& [dataset_name, flavor] = GetParam();
  const auto spec = flint::data::spec_by_name(dataset_name);
  const auto full = flint::data::generate<float>(spec, 47, 1000);
  const auto split = flint::data::train_test_split(full, 0.3, 47);

  flint::trees::ForestOptions fopt;
  fopt.n_trees = 3;
  fopt.tree.max_depth = 9;
  fopt.tree.max_features = flint::trees::TrainOptions::kSqrtFeatures;
  const auto forest = flint::trees::train_forest(split.train, fopt);

  CGenOptions opt;
  GeneratedCode code;
  switch (flavor) {
    case Flavor::IfElseFloat:
      code = flint::codegen::generate_ifelse(forest, opt);
      break;
    case Flavor::IfElseFlint:
      opt.flint = true;
      code = flint::codegen::generate_ifelse(forest, opt);
      break;
    case Flavor::CagsFloat:
    case Flavor::CagsFlint: {
      opt.flint = flavor == Flavor::CagsFlint;
      opt.kernel_budget_bytes = 256;  // exercise multi-kernel layout
      const auto stats = flint::trees::collect_branch_stats(forest, split.train);
      code = flint::codegen::generate_cags(forest, stats, opt);
      break;
    }
    case Flavor::NativeFloat:
      code = flint::codegen::generate_native(forest, opt);
      break;
    case Flavor::NativeFlint:
      opt.flint = true;
      code = flint::codegen::generate_native(forest, opt);
      break;
  }
  ASSERT_EQ(code.classify_symbol, "forest_classify");

  const auto module = flint::jit::compile(code);
  auto* classify =
      module.function<flint::jit::ClassifyFn<float>>(code.classify_symbol);
  const flint::exec::FloatForestEngine<float> reference(forest);
  for (std::size_t r = 0; r < split.test.rows(); ++r) {
    const auto x = split.test.row(r);
    ASSERT_EQ(classify(x.data()), reference.predict(x)) << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasetsAndFlavors, FlavorEquivalence,
    ::testing::Combine(::testing::Values("eye", "gas", "magic", "sensorless",
                                         "wine"),
                       ::testing::Values(Flavor::IfElseFloat, Flavor::IfElseFlint,
                                         Flavor::CagsFloat, Flavor::CagsFlint,
                                         Flavor::NativeFloat, Flavor::NativeFlint)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + flavor_name(std::get<1>(info.param));
    });

TEST(DoubleWidthCodegen, IfElseFlintMatchesReference) {
  const auto full = flint::data::generate<double>(flint::data::magic_spec(), 53, 800);
  flint::trees::ForestOptions fopt;
  fopt.n_trees = 3;
  fopt.tree.max_depth = 8;
  const auto forest = flint::trees::train_forest(full, fopt);
  for (const bool flint_mode : {false, true}) {
    CGenOptions opt;
    opt.flint = flint_mode;
    const auto code = flint::codegen::generate_ifelse(forest, opt);
    const auto module = flint::jit::compile(code);
    auto* classify =
        module.function<flint::jit::ClassifyFn<double>>(code.classify_symbol);
    for (std::size_t r = 0; r < full.rows(); ++r) {
      ASSERT_EQ(classify(full.row(r).data()), forest.predict(full.row(r)))
          << "flint=" << flint_mode << " row " << r;
    }
  }
}

// ---- Layout generator (jit:layout): built from the compact image -------- //

TEST(LayoutCodegen, BatchMatchesForestPredictUnrolledAndDegraded) {
  const auto full =
      flint::data::generate<float>(flint::data::magic_spec(), 21, 900);
  flint::trees::ForestOptions fopt;
  fopt.n_trees = 4;
  fopt.tree.max_depth = 8;
  const auto forest = flint::trees::train_forest(full, fopt);

  flint::exec::artifacts::ExecArtifacts<float> art(forest);
  const auto& image = art.compact16();
  flint::codegen::LayoutCGenSpec<float> spec;
  spec.vote = true;
  spec.num_classes = forest.num_classes();

  // Two generator configurations over the same image: everything unrolled,
  // and a starvation budget forcing every tree onto the hot-spine + walker
  // body.  Both must be bit-identical to Forest::predict.
  for (const std::size_t per_tree_budget : {std::size_t{100000},
                                            std::size_t{0}}) {
    flint::codegen::LayoutCGenOptions gopt;
    gopt.per_tree_unroll_nodes = per_tree_budget;
    const auto code =
        flint::codegen::generate_layout(image, art.plan(), spec, gopt);
    ASSERT_EQ(code.flavor, "layout");
    const auto module = flint::jit::compile(code);
    using BatchFn = void(const float*, long long, std::int32_t*);
    auto* batch = module.function<BatchFn>("forest_predict_batch");
    std::vector<std::int32_t> out(full.rows(), -1);
    std::vector<float> flat;
    for (std::size_t r = 0; r < full.rows(); ++r) {
      const auto row = full.row(r);
      flat.insert(flat.end(), row.begin(), row.end());
    }
    batch(flat.data(), static_cast<long long>(full.rows()), out.data());
    for (std::size_t r = 0; r < full.rows(); ++r) {
      ASSERT_EQ(out[r], forest.predict(full.row(r)))
          << "budget " << per_tree_budget << " row " << r;
    }
  }
}

TEST(LayoutCodegen, ThresholdImmediatesNotFloatCompares) {
  const auto full =
      flint::data::generate<float>(flint::data::wine_spec(), 9, 500);
  flint::trees::ForestOptions fopt;
  fopt.n_trees = 2;
  fopt.tree.max_depth = 6;
  const auto forest = flint::trees::train_forest(full, fopt);
  flint::exec::artifacts::ExecArtifacts<float> art(forest);
  flint::codegen::LayoutCGenSpec<float> spec;
  spec.vote = true;
  spec.num_classes = forest.num_classes();
  const auto code =
      flint::codegen::generate_layout(art.compact16(), art.plan(), spec);
  const std::string& src = code.files.at(0).content;
  // FLInt discipline: features load through the memcpy loader and compare
  // as integers; no float literal ever reaches a comparison.
  EXPECT_NE(src.find("memcpy"), std::string::npos);
  EXPECT_EQ(src.find(" <= -0."), std::string::npos);
  // A float-literal compare would end "...<digit>f) {"; the loop headers'
  // "++f) {" is the only benign "f)" and has no digit before it.
  for (std::size_t at = src.find("f) {"); at != std::string::npos;
       at = src.find("f) {", at + 1)) {
    ASSERT_GT(at, 0u);
    EXPECT_FALSE(std::isdigit(static_cast<unsigned char>(src[at - 1])))
        << "float literal present near offset " << at;
  }
}

TEST(FlintCodegenPurity, NoFloatLiteralsInFlintModule) {
  const auto full = flint::data::generate<float>(flint::data::sensorless_spec(), 3, 600);
  flint::trees::ForestOptions fopt;
  fopt.n_trees = 2;
  fopt.tree.max_depth = 6;
  const auto forest = flint::trees::train_forest(full, fopt);
  CGenOptions opt;
  opt.flint = true;
  const auto code = flint::codegen::generate_ifelse(forest, opt);
  const std::string& src = code.files.at(0).content;
  // The only float mention allowed is the pX pointer type and the loader.
  EXPECT_EQ(src.find(" <= -"), std::string::npos);
  EXPECT_EQ(src.find("f) {"), std::string::npos) << "float literal present";
  EXPECT_NE(src.find("memcpy"), std::string::npos);
}

}  // namespace
