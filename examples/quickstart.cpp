// quickstart — the 60-second tour of the library:
//   1. generate a dataset (synthetic MAGIC-telescope equivalent),
//   2. train a random forest,
//   3. run inference three ways — hardware-float interpreter, FLInt
//      integer-only interpreter, and JIT-compiled FLInt if-else code —
//   4. confirm the predictions are bit-identical and compare speed.
//
// Build: part of the default cmake build; run: ./examples/quickstart
#include <cstdio>

#include "codegen/cgen_ifelse.hpp"
#include "data/split.hpp"
#include "data/synth.hpp"
#include "exec/interpreter.hpp"
#include "harness/timer.hpp"
#include "jit/jit.hpp"
#include "trees/forest.hpp"

int main() {
  // 1. Data: 3000 rows of the MAGIC-equivalent generator, 75/25 split.
  const auto dataset =
      flint::data::generate<float>(flint::data::magic_spec(), /*seed=*/7, 3000);
  const auto split = flint::data::train_test_split(dataset, 0.25, /*seed=*/7);
  std::printf("dataset '%s': %zu rows, %zu features, %d classes\n",
              dataset.name().c_str(), dataset.rows(), dataset.cols(),
              dataset.num_classes());

  // 2. Train a 25-tree forest, depth <= 12 (sklearn-like defaults).
  flint::trees::ForestOptions options;
  options.n_trees = 25;
  options.tree.max_depth = 12;
  options.tree.max_features = flint::trees::TrainOptions::kSqrtFeatures;
  options.tree.seed = 7;
  const auto forest = flint::trees::train_forest(split.train, options);
  std::printf("forest: %zu trees, %zu nodes, max depth %zu, test accuracy %.3f\n",
              forest.size(), forest.total_nodes(), forest.max_depth(),
              flint::trees::accuracy(forest, split.test));

  // 3a. Reference: hardware floating-point comparisons.
  const flint::exec::FloatForestEngine<float> float_engine(forest);
  // 3b. FLInt: the same model, executed with integer comparisons only.
  const flint::exec::FlintForestEngine<float> flint_engine(
      forest, flint::exec::FlintVariant::Encoded);
  // 3c. Compiled: FLInt if-else C code, built and loaded at runtime.
  flint::codegen::CGenOptions cgen;
  cgen.flint = true;
  const auto code = flint::codegen::generate_ifelse(forest, cgen);
  const auto module = flint::jit::compile(code);
  auto* classify =
      module.function<flint::jit::ClassifyFn<float>>(code.classify_symbol);

  // 4. Bit-exact equivalence on the full test set...
  std::size_t mismatches = 0;
  for (std::size_t r = 0; r < split.test.rows(); ++r) {
    const auto x = split.test.row(r);
    const auto expected = float_engine.predict(x);
    if (flint_engine.predict(x) != expected) ++mismatches;
    if (classify(x.data()) != expected) ++mismatches;
  }
  std::printf("prediction mismatches across %zu test rows: %zu (must be 0)\n",
              split.test.rows(), mismatches);

  // ...and a quick relative timing.
  auto time_it = [&](auto&& fn) {
    long long sink = 0;
    const auto t = flint::harness::measure(
        [&] {
          for (std::size_t r = 0; r < split.test.rows(); ++r) {
            sink += fn(split.test.row(r));
          }
        },
        0.05, 3);
    if (sink == -1) return 0.0;
    return t.seconds_per_iteration / static_cast<double>(split.test.rows()) * 1e9;
  };
  const double t_float =
      time_it([&](std::span<const float> x) { return float_engine.predict(x); });
  const double t_flint =
      time_it([&](std::span<const float> x) { return flint_engine.predict(x); });
  const double t_jit =
      time_it([&](std::span<const float> x) { return classify(x.data()); });
  std::printf("\nns/sample:  float interpreter %.0f | FLInt interpreter %.0f | "
              "compiled FLInt %.0f\n", t_float, t_flint, t_jit);
  std::printf("compiled FLInt speedup vs float interpreter: %.2fx\n",
              t_float / t_jit);
  return mismatches == 0 ? 0 : 1;
}
