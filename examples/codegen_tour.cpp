// codegen_tour — shows what every generator emits for one small tree,
// reproducing the paper's Listings 1-5 side by side, then compiles and
// cross-checks each flavor.
//
// Run: ./examples/codegen_tour
#include <cstdio>

#include "codegen/asm_arm.hpp"
#include "codegen/asm_x86.hpp"
#include "codegen/cgen_cags.hpp"
#include "codegen/cgen_ifelse.hpp"
#include "codegen/cgen_native.hpp"
#include "data/synth.hpp"
#include "exec/interpreter.hpp"
#include "jit/jit.hpp"
#include "trees/forest.hpp"
#include "trees/tree_stats.hpp"

namespace {

void print_section(const char* title, const std::string& text) {
  std::printf("\n----- %s -----\n%s", title, text.c_str());
}

}  // namespace

int main() {
  // A small but real tree: trained on the wine-equivalent generator so it
  // contains both positive and negative split values.
  const auto dataset =
      flint::data::generate<float>(flint::data::sensorless_spec(), 3, 600);
  flint::trees::ForestOptions options;
  options.n_trees = 1;
  options.tree.max_depth = 3;
  options.tree.seed = 3;
  const auto forest = flint::trees::train_forest(dataset, options);
  const auto stats = flint::trees::collect_branch_stats(forest, dataset);
  const auto& tree = forest.tree(0);
  std::printf("tree: %zu nodes, depth %zu\n", tree.size(), tree.depth());

  flint::codegen::CGenOptions plain;
  print_section("Listing 1: standard if-else tree (float comparisons)",
                flint::codegen::ifelse_tree_body(tree, plain));

  flint::codegen::CGenOptions with_flint = plain;
  with_flint.flint = true;
  print_section("Listings 2/4: FLInt if-else tree (integer comparisons)",
                flint::codegen::ifelse_tree_body(tree, with_flint));

  flint::codegen::CGenOptions cags = with_flint;
  cags.kernel_budget_bytes = 96;  // small budget so kernels are visible
  print_section("CAGS(FLInt): probability-swapped, kernel-grouped",
                flint::codegen::cags_tree_body(tree, stats[0], cags));

  print_section("x86-64 FLInt assembly",
                flint::codegen::asm_x86_tree(tree, "tour_tree_0"));
  print_section("Listing 5: ARMv8 FLInt assembly",
                flint::codegen::asm_armv8_tree(tree, "tour_tree_0"));

  // Compile every C flavor and cross-check on the training data.
  const flint::exec::FloatForestEngine<float> reference(forest);
  std::size_t mismatches = 0;
  for (const bool use_flint : {false, true}) {
    flint::codegen::CGenOptions opt;
    opt.flint = use_flint;
    for (int generator = 0; generator < 3; ++generator) {
      flint::codegen::GeneratedCode code;
      switch (generator) {
        case 0: code = flint::codegen::generate_ifelse(forest, opt); break;
        case 1: code = flint::codegen::generate_cags(forest, stats, opt); break;
        default: code = flint::codegen::generate_native(forest, opt); break;
      }
      const auto module = flint::jit::compile(code);
      auto* classify =
          module.function<flint::jit::ClassifyFn<float>>(code.classify_symbol);
      for (std::size_t r = 0; r < dataset.rows(); ++r) {
        if (classify(dataset.row(r).data()) != reference.predict(dataset.row(r))) {
          ++mismatches;
        }
      }
    }
  }
  std::printf("\ncross-check of 6 compiled flavors on %zu rows: %zu mismatches "
              "(must be 0)\n", dataset.rows(), mismatches);
  return mismatches == 0 ? 0 : 1;
}
