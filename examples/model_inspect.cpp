// model_inspect — model lifecycle and introspection: train, serialize to
// disk, reload bit-exactly, and report the structural statistics that drive
// the paper's code generators (tree shapes, negative-split counts feeding
// the Theorem 2 SignFlip path, branch skew feeding CAGS).
//
// Run: ./examples/model_inspect [dataset]   (default: sensorless)
#include <cstdio>
#include <string>

#include "data/split.hpp"
#include "data/synth.hpp"
#include "trees/forest.hpp"
#include "trees/serialize.hpp"
#include "trees/tree_stats.hpp"

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "sensorless";
  const auto spec = flint::data::spec_by_name(name);
  const auto dataset = flint::data::generate<float>(spec, 19, 4000);
  const auto split = flint::data::train_test_split(dataset, 0.25, 19);

  flint::trees::ForestOptions options;
  options.n_trees = 10;
  options.tree.max_depth = 15;
  options.tree.max_features = flint::trees::TrainOptions::kSqrtFeatures;
  options.tree.seed = 19;
  const auto forest = flint::trees::train_forest(split.train, options);

  std::printf("forest on '%s': %zu trees, %d classes\n", name.c_str(),
              forest.size(), forest.num_classes());
  std::printf("train accuracy %.3f | test accuracy %.3f\n",
              flint::trees::accuracy(forest, split.train),
              flint::trees::accuracy(forest, split.test));

  // Round-trip through the text serialization.
  const std::string path = "model_" + name + ".forest";
  flint::trees::save_forest(path, forest);
  const auto reloaded = flint::trees::load_forest<float>(path);
  std::size_t mismatches = 0;
  for (std::size_t r = 0; r < split.test.rows(); ++r) {
    if (reloaded.predict(split.test.row(r)) != forest.predict(split.test.row(r))) {
      ++mismatches;
    }
  }
  std::printf("serialized to %s; reload mismatches: %zu (must be 0)\n\n",
              path.c_str(), mismatches);

  // Per-tree structure report.
  const auto stats = flint::trees::collect_branch_stats(forest, split.train);
  std::printf("%-5s %-7s %-7s %-6s %-10s %-9s %-9s %-10s\n", "tree", "nodes",
              "leaves", "depth", "avg-leaf", "neg-spl", "pos-spl", "max-skew");
  for (std::size_t t = 0; t < forest.size(); ++t) {
    const auto shape = flint::trees::tree_shape(forest.tree(t));
    // Branch skew: how far the most lopsided inner node is from 50/50 —
    // exactly what CAGS exploits.
    double max_skew = 0.0;
    for (std::size_t i = 0; i < stats[t].size(); ++i) {
      if (!forest.tree(t).node(static_cast<std::int32_t>(i)).is_leaf()) {
        max_skew = std::max(max_skew,
                            std::abs(stats[t].left_probability[i] - 0.5));
      }
    }
    std::printf("%-5zu %-7zu %-7zu %-6zu %-10.2f %-9zu %-9zu %-10.2f\n", t,
                shape.nodes, shape.leaves, shape.depth, shape.mean_leaf_depth,
                shape.negative_splits, shape.nonnegative_splits, max_skew);
  }
  std::printf("\nneg-spl nodes take the Theorem 2 SignFlip path in FLInt codegen;\n"
              "max-skew close to 0.50 means CAGS branch swapping has traction.\n");
  return mismatches == 0 ? 0 : 1;
}
