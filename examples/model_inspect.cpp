// model_inspect — model lifecycle and introspection: train, serialize to
// disk, reload bit-exactly, and report the structural statistics that drive
// the paper's code generators (tree shapes, negative-split counts feeding
// the Theorem 2 SignFlip path, branch skew feeding CAGS) plus the model-IR
// view: leaf-value type, aggregation mode and per-tree leaf-value ranges
// (model/forest_model.hpp).
//
// Run: ./examples/model_inspect [dataset]   (default: sensorless)
#include <cstdio>
#include <random>
#include <string>

#include "data/split.hpp"
#include "data/synth.hpp"
#include "model/forest_model.hpp"
#include "model/model_io.hpp"
#include "trees/forest.hpp"
#include "trees/serialize.hpp"
#include "trees/tree_stats.hpp"

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "sensorless";
  const auto spec = flint::data::spec_by_name(name);
  const auto dataset = flint::data::generate<float>(spec, 19, 4000);
  const auto split = flint::data::train_test_split(dataset, 0.25, 19);

  flint::trees::ForestOptions options;
  options.n_trees = 10;
  options.tree.max_depth = 15;
  options.tree.max_features = flint::trees::TrainOptions::kSqrtFeatures;
  options.tree.seed = 19;
  const auto forest = flint::trees::train_forest(split.train, options);

  std::printf("forest on '%s': %zu trees, %d classes\n", name.c_str(),
              forest.size(), forest.num_classes());
  std::printf("train accuracy %.3f | test accuracy %.3f\n",
              flint::trees::accuracy(forest, split.train),
              flint::trees::accuracy(forest, split.test));

  // Round-trip through the text serialization.
  const std::string path = "model_" + name + ".forest";
  flint::trees::save_forest(path, forest);
  const auto reloaded = flint::trees::load_forest<float>(path);
  std::size_t mismatches = 0;
  for (std::size_t r = 0; r < split.test.rows(); ++r) {
    if (reloaded.predict(split.test.row(r)) != forest.predict(split.test.row(r))) {
      ++mismatches;
    }
  }
  std::printf("serialized to %s; reload mismatches: %zu (must be 0)\n\n",
              path.c_str(), mismatches);

  // Per-tree structure report.
  const auto stats = flint::trees::collect_branch_stats(forest, split.train);
  std::printf("%-5s %-7s %-7s %-6s %-10s %-9s %-9s %-10s\n", "tree", "nodes",
              "leaves", "depth", "avg-leaf", "neg-spl", "pos-spl", "max-skew");
  for (std::size_t t = 0; t < forest.size(); ++t) {
    const auto shape = flint::trees::tree_shape(forest.tree(t));
    // Branch skew: how far the most lopsided inner node is from 50/50 —
    // exactly what CAGS exploits.
    double max_skew = 0.0;
    for (std::size_t i = 0; i < stats[t].size(); ++i) {
      if (!forest.tree(t).node(static_cast<std::int32_t>(i)).is_leaf()) {
        max_skew = std::max(max_skew,
                            std::abs(stats[t].left_probability[i] - 0.5));
      }
    }
    std::printf("%-5zu %-7zu %-7zu %-6zu %-10.2f %-9zu %-9zu %-10.2f\n", t,
                shape.nodes, shape.leaves, shape.depth, shape.mean_leaf_depth,
                shape.negative_splits, shape.nonnegative_splits, max_skew);
  }
  std::printf("\nneg-spl nodes take the Theorem 2 SignFlip path in FLInt codegen;\n"
              "max-skew close to 0.50 means CAGS branch swapping has traction.\n");

  // --- Model-IR view (model/forest_model.hpp). -----------------------------
  // The trained forest as a ForestModel: a majority-vote ClassId model...
  const auto vote_model = flint::model::from_vote_forest(forest);
  std::printf("\nmodel IR: leaf kind '%s', aggregation '%s', link '%s' — %s\n",
              flint::model::to_string(vote_model.leaf_kind),
              flint::model::to_string(vote_model.aggregation.mode),
              flint::model::to_string(vote_model.aggregation.link),
              vote_model.describe().c_str());

  // ...and the same structure re-leaved as an additive score model (what an
  // imported GBDT looks like after `flint-forest convert`): every leaf gets
  // a row in the leaf-value table, aggregation becomes sum+sigmoid.
  flint::model::ForestModel<float> gbdt;
  gbdt.leaf_kind = flint::model::LeafKind::Scalar;
  gbdt.aggregation.mode = flint::model::AggregationMode::SumScores;
  gbdt.aggregation.link = flint::model::Link::Sigmoid;
  gbdt.n_outputs = 1;
  std::mt19937 rng(19);
  std::uniform_real_distribution<float> margin(-0.7f, 0.7f);
  std::int32_t next_row = 0;
  std::vector<flint::trees::Tree<float>> releaved;
  for (std::size_t t = 0; t < forest.size(); ++t) {
    auto tree = forest.tree(t);
    for (std::size_t i = 0; i < tree.size(); ++i) {
      auto& node = tree.node(static_cast<std::int32_t>(i));
      if (!node.is_leaf()) continue;
      node.prediction = next_row++;
      gbdt.leaf_values.push_back(margin(rng));
    }
    releaved.push_back(std::move(tree));
  }
  gbdt.forest = flint::trees::Forest<float>(std::move(releaved), next_row);
  if (const std::string err = gbdt.validate(); !err.empty()) {
    std::printf("score-model validation FAILED: %s\n", err.c_str());
    return 1;
  }
  std::printf("score IR:  leaf kind '%s', aggregation '%s', link '%s' — %s\n",
              flint::model::to_string(gbdt.leaf_kind),
              flint::model::to_string(gbdt.aggregation.mode),
              flint::model::to_string(gbdt.aggregation.link),
              gbdt.describe().c_str());
  const auto ranges = flint::model::per_tree_leaf_ranges(gbdt);
  std::printf("%-5s %-12s %-12s\n", "tree", "leaf-min", "leaf-max");
  for (std::size_t t = 0; t < ranges.size(); ++t) {
    std::printf("%-5zu %-12.5f %-12.5f\n", t, static_cast<double>(ranges[t].lo),
                static_cast<double>(ranges[t].hi));
  }

  // v2 container round trip, bit-exact like the v1 path above.
  const std::string v2_path = "model_" + name + ".v2";
  flint::model::save_model(v2_path, gbdt);
  const auto v2_back = flint::model::load_any_model<float>(v2_path);
  std::size_t v2_mismatches = 0;
  for (std::size_t r = 0; r < split.test.rows(); ++r) {
    if (v2_back.forest.predict(split.test.row(r)) !=
        gbdt.forest.predict(split.test.row(r))) {
      ++v2_mismatches;
    }
  }
  std::printf("v2 container saved to %s; reload mismatches: %zu (must be 0)\n",
              v2_path.c_str(), v2_mismatches);
  return mismatches == 0 && v2_mismatches == 0 ? 0 : 1;
}
