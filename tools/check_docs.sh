#!/bin/sh
# check_docs.sh — fail if sources or docs reference repo files that do not
# exist.  Scans for mentions of markdown files and of the doc-suite paths in
# comments; every referenced name must resolve somewhere in the tree.
# Invoked by the CMake `docs-check` target and by CI.
set -eu

root=${1:-.}
cd "$root"

status=0

# Every *.md file name mentioned in sources, docs, or the README family
# must exist in the repository (anywhere — references are by file name).
mentions=$(grep -rhoE '[A-Za-z0-9_./-]*[A-Za-z0-9_-]+\.md' \
    --include='*.cpp' --include='*.hpp' --include='*.h' --include='*.md' \
    --include='*.sh' --include='*.yml' --include='CMakeLists.txt' \
    src bench tests tools examples fuzz docs README.md CMakeLists.txt \
    2>/dev/null | sort -u)

for ref in $mentions; do
    name=$(basename "$ref")
    if ! find . -path ./build -prune -o -name "$name" -print | grep -q .; then
        echo "docs-check: dangling reference to '$ref' (no file named '$name' in the repo)" >&2
        status=1
    fi
done

# The doc suite itself must exist.
for doc in README.md docs/ARCHITECTURE.md docs/BENCHMARKS.md \
           docs/VERIFICATION.md; do
    if [ ! -f "$doc" ]; then
        echo "docs-check: required doc '$doc' is missing" >&2
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "docs-check: OK (all referenced doc files exist)"
fi
exit $status
