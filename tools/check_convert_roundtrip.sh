#!/bin/sh
# check_convert_roundtrip.sh — the CI "Convert roundtrip" gate.
#
# For every vendored external-model fixture (tests/fixtures/external/):
#   1. `flint-forest convert` ingests it into the native v2 format;
#   2. the converted model reloads and predicts the fixture's input CSV;
#   3. class predictions must equal the committed expectations EXACTLY;
#   4. score predictions must match the committed expectations within the
#      documented tolerance (|diff| <= 1e-6 absolute — the expectations
#      are float32 round-trip prints, so this is ~2 ULP at these scales;
#      see docs/MODEL_FORMATS.md "Numerical contract").
#
# Usage: tools/check_convert_roundtrip.sh <flint-forest-binary> [source-root]
set -eu

bin=${1:?usage: check_convert_roundtrip.sh <flint-forest-binary> [source-root]}
root=${2:-$(dirname "$0")/..}
fixtures="$root/tests/fixtures/external"
work=$(mktemp -d "${TMPDIR:-/tmp}/flint_convert_XXXXXX")
trap 'rm -rf "$work"' EXIT

status=0

check_scores() {
    # $1 got, $2 want: numeric compare of comma-separated rows.
    awk -F, 'NR==FNR { for (i=1;i<=NF;i++) want[FNR","i]=$i; rows=FNR; next }
        {
          for (i=1;i<=NF;i++) {
            d = $i - want[FNR","i]; if (d < 0) d = -d
            if (d > 1e-6) {
              printf "  score mismatch row %d col %d: got %s want %s\n", \
                     FNR, i, $i, want[FNR","i]
              bad = 1
            }
          }
        }
        END { if (FNR != rows) { print "  row count mismatch"; bad = 1 }
              exit bad }' "$2" "$1"
}

for model in xgb_binary.json xgb_missing.json lgbm_regression.txt \
             lgbm_categorical.txt sklearn_multiclass.json; do
    stem=${model%%.*}
    echo "== $model"
    "$bin" convert --in "$fixtures/$model" --out "$work/$stem.v2"

    # Static verification: both the source fixture and the converted
    # artifact must pass every invariant check (docs/VERIFICATION.md).
    for artifact in "$fixtures/$model" "$work/$stem.v2"; do
        if ! "$bin" verify "$artifact" > "$work/$stem.verify"; then
            echo "FAIL: flint-forest verify rejects $artifact" >&2
            cat "$work/$stem.verify" >&2
            status=1
        fi
    done

    # Score roundtrip (every fixture commits expected scores).
    "$bin" predict --model "$work/$stem.v2" \
        --data "$fixtures/${stem}_input.csv" --output scores \
        --engine layout:auto \
        | sed '$d' > "$work/$stem.scores"       # drop the summary line
    if ! check_scores "$work/$stem.scores" \
         "$fixtures/${stem}_expected_scores.txt"; then
        echo "FAIL: $model scores diverge from committed expectations" >&2
        status=1
    fi

    # Class roundtrip (classifier fixtures; exact agreement required).
    if [ -f "$fixtures/${stem}_expected_classes.txt" ]; then
        "$bin" predict --model "$work/$stem.v2" \
            --data "$fixtures/${stem}_input.csv" --labels yes \
            --engine simd:flint \
            | sed '$d' > "$work/$stem.classes"
        if ! diff -u "$fixtures/${stem}_expected_classes.txt" \
             "$work/$stem.classes" > /dev/null; then
            echo "FAIL: $model classes diverge from committed expectations" >&2
            diff -u "$fixtures/${stem}_expected_classes.txt" \
                 "$work/$stem.classes" | head -10 >&2 || true
            status=1
        fi
        # The input CSV's label column IS the expected class: the CLI's own
        # accuracy readout must therefore be 1.
        acc=$("$bin" predict --model "$work/$stem.v2" \
              --data "$fixtures/${stem}_input.csv" --engine encoded \
              | sed -n 's/^accuracy \([0-9.]*\).*/\1/p')
        if [ "$acc" != "1" ]; then
            echo "FAIL: $model accuracy $acc != 1 on its own expectations" >&2
            status=1
        fi

        # Lossy-quantization accuracy gate: quant:affine forces the
        # calibrated affine map on every feature, so it may legitimately
        # flip samples that sit between a threshold and its quantized
        # image — but the flip rate is deterministic per model and must
        # stay small.  Today each classifier fixture flips at most 1 of
        # its 24 rows (accuracy 0.9583); the 0.90 floor trips if the
        # affine calibration (scale fitting, key-0 reserve, NaN clamp)
        # regresses broadly without failing the bit-exact engines above.
        qacc=$("$bin" predict --model "$work/$stem.v2" \
              --data "$fixtures/${stem}_input.csv" --engine quant:affine \
              | sed -n 's/^accuracy \([0-9.]*\).*/\1/p')
        if ! awk "BEGIN{exit !($qacc >= 0.90)}"; then
            echo "FAIL: $model quant:affine accuracy $qacc < 0.90" >&2
            status=1
        fi
    fi
done

if [ "$status" -eq 0 ]; then
    echo "convert roundtrip: all fixtures reproduce their committed predictions"
fi
exit $status
