#!/usr/bin/env python3
"""Generates the vendored external-model fixtures under tests/fixtures/external.

Produces one model file per supported ingestion format plus, for each, an
input CSV and committed reference predictions:

  xgb_binary.json        XGBoost JSON dump wrapper, binary:logistic
  xgb_missing.json       XGBoost with per-node "missing" ids and NaN inputs
  lgbm_regression.txt    LightGBM text model, objective=regression
  lgbm_categorical.txt   LightGBM with categorical splits + zero_as_missing
  sklearn_multiclass.json  sklearn-forest export, 3-class soft vote

The oracle here mirrors the C++ float32 pipeline EXACTLY (stdlib only, no
xgboost/lightgbm needed):

  * every threshold/leaf/feature value is evaluated at the precision the
    loader produces (strtof rounding for XGBoost's float32-native dumps,
    round-toward-minus-infinity float32 narrowing for the float64-native
    LightGBM/sklearn files — see src/model/loader_util.hpp);
  * leaf-value accumulation runs in float32, base first then trees in
    order — the summation order every score backend uses — so expected
    scores are bit-comparable, not just approximately right;
  * links (sigmoid/softmax) are evaluated in double and rounded once to
    float32, matching model::apply_link;
  * missing values follow the source library's own rule (XGBoost: NaN to
    the "missing" child; LightGBM missing_type=Zero: |x| <= 1e-35 and NaN
    to the decision_type default direction, NaN at categorical nodes cast
    to category 0) — the loaders map those rules onto per-node default
    directions plus the predictor's zero_as_missing boundary rewrite, and
    the committed expectations prove the mapping is exact.  NaN features
    are written as EMPTY CSV fields (the reader's missing convention).

The generator asserts every sample's decision margin is comfortably wider
than float32 accumulation noise, so expected CLASSES are exact.

Run from the repo root:  python3 tools/make_external_fixtures.py
The outputs are committed; rerunning must be a no-op (fixed seed).
"""

import json
import math
import os
import random
import struct

OUT_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "tests",
                       "fixtures", "external")


def f32(x: float) -> float:
    """Round a double to the nearest float32 (what strtof/static_cast do)."""
    return struct.unpack("f", struct.pack("f", x))[0]


def f32_next_down(f: float) -> float:
    """nextafterf(f, -inf) for a float32-representable f."""
    if f == 0.0:
        return struct.unpack("f", struct.pack("I", 0x80000001))[0]
    bits = struct.unpack("I", struct.pack("f", f))[0]
    bits = bits - 1 if f > 0 else bits + 1
    return struct.unpack("f", struct.pack("I", bits))[0]


def f32_down(x: float) -> float:
    """Largest float32 <= x (loader_util narrow_threshold_le<float>)."""
    f = f32(x)
    return f32_next_down(f) if f > x else f


def fmt(x: float) -> str:
    """Round-trip decimal for a float32-representable value."""
    return repr(x)


def q(x: float) -> float:
    """Quantize to a float32-and-decimal-exact grid (n/256)."""
    return round(x * 256.0) / 256.0


class Rng:
    def __init__(self, seed):
        self.r = random.Random(seed)

    def grid(self, lo, hi):
        return q(self.r.uniform(lo, hi))


# ---------------------------------------------------------------------------
# Generic tree structure: nested dict {feature, threshold, left, right} or
# {leaf: value}.  Split rule is attached per format at evaluation time.
# ---------------------------------------------------------------------------

def random_tree(rng, n_features, depth, leaf_fn):
    if depth == 0 or rng.r.random() < 0.2:
        return {"leaf": leaf_fn()}
    return {
        "feature": rng.r.randrange(n_features),
        "threshold": rng.grid(-2.0, 2.0),
        "left": random_tree(rng, n_features, depth - 1, leaf_fn),
        "right": random_tree(rng, n_features, depth - 1, leaf_fn),
    }


def eval_tree(node, x, less_than):
    """Walks with the source model's own rule on already-rounded values."""
    while "leaf" not in node:
        v = x[node["feature"]]
        t = node["eff_threshold"]
        go_left = (v < t) if less_than else (v <= t)
        node = node["left"] if go_left else node["right"]
    return node["eff_leaf"]


def annotate(node, thr_fn, leaf_fn):
    """Stamps the loader-precision threshold/leaf value onto each node."""
    if "leaf" in node:
        node["eff_leaf"] = leaf_fn(node["leaf"])
        return
    node["eff_threshold"] = thr_fn(node["threshold"])
    annotate(node["left"], thr_fn, leaf_fn)
    annotate(node["right"], thr_fn, leaf_fn)


def collect_thresholds(node, out):
    if "leaf" not in node:
        out.append(node["eff_threshold"])
        collect_thresholds(node["left"], out)
        collect_thresholds(node["right"], out)


def make_inputs(rng, trees, n_features, n_rows, accept=lambda row: True):
    """Feature rows on the value grid, plus deliberate exact threshold hits
    (x == t) to pin the <= / < boundary semantics.  `accept` rejects rows
    whose decision margin is too thin for exact class expectations."""
    thresholds = []
    for t in trees:
        collect_thresholds(t, thresholds)
    rows = []
    while len(rows) < n_rows:
        row = [f32(rng.grid(-2.5, 2.5)) for _ in range(n_features)]
        if thresholds and len(rows) % 3 == 0:
            # Hit a threshold exactly on a random feature.
            row[rng.r.randrange(n_features)] = f32(rng.r.choice(thresholds))
        if accept(row):
            rows.append(row)
    return rows


def accumulate_f32(base, per_tree_rows):
    """base + rows summed with float32 arithmetic in tree order."""
    acc = list(base)
    for row in per_tree_rows:
        for j in range(len(acc)):
            acc[j] = f32(acc[j] + row[j])
    return acc


def sigmoid_f32(raw):
    return f32(1.0 / (1.0 + math.exp(-raw)))


def softmax_f32(raw):
    hi = max(raw)
    denom = sum(math.exp(v - hi) for v in raw)
    return [f32(math.exp(v - hi) / denom) for v in raw]


def write(path, text):
    with open(path, "w") as f:
        f.write(text)
    print("wrote", path)


def write_csv(path, rows, labels):
    lines = ["# features..., label"]
    for row, label in zip(rows, labels):
        # NaN (missing) features are written as empty fields — the CSV
        # reader's missing-value convention (data/csv.hpp).
        lines.append(",".join("" if math.isnan(v) else fmt(v)
                              for v in row) + "," + str(label))
    write(path, "\n".join(lines) + "\n")


def write_scores(path, scores):
    write(path, "\n".join(",".join("%.9g" % v for v in row)
                          for row in scores) + "\n")


def write_classes(path, classes):
    write(path, "\n".join(str(c) for c in classes) + "\n")


# ---------------------------------------------------------------------------
# XGBoost: binary:logistic, float32-native, x < t rule.
# ---------------------------------------------------------------------------

def xgb_node_json(node, next_id):
    nid = next_id[0]
    next_id[0] += 1
    if "leaf" in node:
        return {"nodeid": nid, "leaf": node["leaf"]}
    left = xgb_node_json(node["left"], next_id)
    right = xgb_node_json(node["right"], next_id)
    # "missing" points at the default child; nodes without an explicit
    # default keep XGBoost's dump convention of missing == yes.
    default_left = node.get("default_left", True)
    return {
        "nodeid": nid,
        "depth": 0,
        "split": "f%d" % node["feature"],
        "split_condition": node["threshold"],
        "yes": left["nodeid"],
        "no": right["nodeid"],
        "missing": (left if default_left else right)["nodeid"],
        "children": [left, right],
    }


def gen_xgboost(rng_seed, n_rows):
    rng = Rng(rng_seed)
    n_features, n_trees = 4, 5
    trees = [random_tree(rng, n_features, 3, lambda: rng.grid(-0.5, 0.5))
             for _ in range(n_trees)]
    # One deliberately non-grid threshold: proves strtof ingestion of a
    # non-terminating decimal ("0.1") is bit-exact.
    for t in trees:
        if "feature" in t:
            t["threshold"] = 0.1
            break
    base_score = q(0.125)  # margin space (documented wrapper contract)
    for t in trees:
        annotate(t, thr_fn=f32, leaf_fn=f32)

    def margin_of(x):
        per_tree = [[eval_tree(t, x, less_than=True)] for t in trees]
        return accumulate_f32([f32(base_score)], per_tree)[0]

    rows = make_inputs(rng, trees, n_features, n_rows,
                       accept=lambda x: abs(margin_of(x)) > 1e-3)
    scores, classes = [], []
    for x in rows:
        margin = margin_of(x)
        classes.append(1 if margin > 0 else 0)
        scores.append([sigmoid_f32(margin)])

    doc = {
        "objective": "binary:logistic",
        "base_score": base_score,
        "n_features": n_features,
        "trees": [xgb_node_json(t, [0]) for t in trees],
    }
    write(os.path.join(OUT_DIR, "xgb_binary.json"),
          json.dumps(doc, indent=1) + "\n")
    write_csv(os.path.join(OUT_DIR, "xgb_binary_input.csv"), rows, classes)
    write_classes(os.path.join(OUT_DIR, "xgb_binary_expected_classes.txt"),
                  classes)
    write_scores(os.path.join(OUT_DIR, "xgb_binary_expected_scores.txt"),
                 scores)


# ---------------------------------------------------------------------------
# XGBoost with missing-value routing: every node carries a "missing" id
# picked at random between yes and no, and a third of the input rows have
# NaN holes.  Rule: NaN -> default child, else x < t.
# ---------------------------------------------------------------------------

def stamp_defaults(node, rng):
    if "leaf" in node:
        return
    node["default_left"] = rng.r.random() < 0.5
    stamp_defaults(node["left"], rng)
    stamp_defaults(node["right"], rng)


def eval_tree_xgb_missing(node, x):
    while "leaf" not in node:
        v = x[node["feature"]]
        if math.isnan(v):
            go_left = node["default_left"]
        else:
            go_left = v < node["eff_threshold"]
        node = node["left"] if go_left else node["right"]
    return node["eff_leaf"]


def make_missing_inputs(rng, trees, n_features, n_rows, accept):
    """Like make_inputs, but ~1/3 of rows get NaN holes (and the first row
    is entirely missing — the all-defaults path)."""
    thresholds = []
    for t in trees:
        collect_thresholds(t, thresholds)
    rows = []
    candidate = [float("nan")] * n_features
    while len(rows) < n_rows:
        if accept(candidate):
            rows.append(candidate)
        row = [f32(rng.grid(-2.5, 2.5)) for _ in range(n_features)]
        if len(rows) % 3 == 1:
            row[rng.r.randrange(n_features)] = float("nan")
        elif thresholds and len(rows) % 3 == 2:
            row[rng.r.randrange(n_features)] = f32(rng.r.choice(thresholds))
        candidate = row
    return rows


def gen_xgb_missing(rng_seed, n_rows):
    rng = Rng(rng_seed)
    n_features, n_trees = 4, 5
    trees = [random_tree(rng, n_features, 3, lambda: rng.grid(-0.5, 0.5))
             for _ in range(n_trees)]
    for t in trees:
        stamp_defaults(t, rng)
    base_score = q(0.125)
    for t in trees:
        annotate(t, thr_fn=f32, leaf_fn=f32)

    def margin_of(x):
        per_tree = [[eval_tree_xgb_missing(t, x)] for t in trees]
        return accumulate_f32([f32(base_score)], per_tree)[0]

    rows = make_missing_inputs(rng, trees, n_features, n_rows,
                               accept=lambda x: abs(margin_of(x)) > 1e-3)
    scores, classes = [], []
    for x in rows:
        margin = margin_of(x)
        classes.append(1 if margin > 0 else 0)
        scores.append([sigmoid_f32(margin)])

    doc = {
        "objective": "binary:logistic",
        "base_score": base_score,
        "n_features": n_features,
        "trees": [xgb_node_json(t, [0]) for t in trees],
    }
    write(os.path.join(OUT_DIR, "xgb_missing.json"),
          json.dumps(doc, indent=1) + "\n")
    write_csv(os.path.join(OUT_DIR, "xgb_missing_input.csv"), rows, classes)
    write_classes(os.path.join(OUT_DIR, "xgb_missing_expected_classes.txt"),
                  classes)
    write_scores(os.path.join(OUT_DIR, "xgb_missing_expected_scores.txt"),
                 scores)


# ---------------------------------------------------------------------------
# LightGBM: regression, float64-native, x <= t rule.
# ---------------------------------------------------------------------------

def lgbm_arrays(tree):
    """LightGBM parallel arrays: internal nodes preorder, leaves in
    discovery order; child >= 0 internal, child < 0 encodes leaf ~index."""
    split_feature, threshold, left_child, right_child, leaf_value = \
        [], [], [], [], []

    def emit(node):
        if "leaf" in node:
            leaf_value.append(node["leaf"])
            return -len(leaf_value)
        idx = len(split_feature)
        split_feature.append(node["feature"])
        threshold.append(node["threshold"])
        left_child.append(None)
        right_child.append(None)
        left_child[idx] = emit(node["left"])
        right_child[idx] = emit(node["right"])
        return idx

    emit(tree)
    return split_feature, threshold, left_child, right_child, leaf_value


def gen_lightgbm(rng_seed, n_rows):
    rng = Rng(rng_seed)
    n_features, n_trees = 3, 4
    trees = [random_tree(rng, n_features, 3, lambda: rng.grid(-1.0, 1.0))
             for _ in range(n_trees - 1)]
    trees.append({"leaf": rng.grid(-0.25, 0.25)})  # single-leaf tree
    # A float64 threshold that is NOT float32-representable: exercises the
    # round-toward-minus-infinity narrowing.
    if "feature" in trees[0]:
        trees[0]["threshold"] = 0.30000000000000004
    for t in trees:
        annotate(t, thr_fn=f32_down, leaf_fn=f32)

    rows = make_inputs(rng, trees, n_features, n_rows)
    scores = []
    for x in rows:
        per_tree = [[eval_tree(t, x, less_than=False)] for t in trees]
        scores.append(accumulate_f32([0.0], per_tree))

    blocks = ["tree", "version=v3", "num_class=1", "num_tree_per_iteration=1",
              "label_index=0", "max_feature_idx=%d" % (n_features - 1),
              "objective=regression",
              "feature_names=" + " ".join("f%d" % i
                                          for i in range(n_features)), ""]
    for i, t in enumerate(trees):
        sf, th, lc, rc, lv = lgbm_arrays(t)
        blocks.append("Tree=%d" % i)
        blocks.append("num_leaves=%d" % len(lv))
        blocks.append("num_cat=0")
        if sf:
            blocks.append("split_feature=" + " ".join(map(str, sf)))
            blocks.append("threshold=" + " ".join(repr(v) for v in th))
            blocks.append("decision_type=" + " ".join(["2"] * len(sf)))
            blocks.append("left_child=" + " ".join(map(str, lc)))
            blocks.append("right_child=" + " ".join(map(str, rc)))
        blocks.append("leaf_value=" + " ".join(repr(v) for v in lv))
        blocks.append("shrinkage=1")
        blocks.append("")
    blocks.append("end of trees")
    write(os.path.join(OUT_DIR, "lgbm_regression.txt"),
          "\n".join(blocks) + "\n")
    write_csv(os.path.join(OUT_DIR, "lgbm_regression_input.csv"), rows,
              [0] * len(rows))
    write_scores(os.path.join(OUT_DIR, "lgbm_regression_expected_scores.txt"),
                 scores)


# ---------------------------------------------------------------------------
# LightGBM with categorical splits and missing_type=Zero everywhere:
# numerical nodes route |x| <= 1e-35 and NaN to the decision_type default
# bit; categorical nodes cast missing to category 0 and test bitset
# membership (member -> left).  decision_type: cat = 5 (1|4), numerical =
# 4 or 6 (Zero missing | default-left bit).
# ---------------------------------------------------------------------------

ZERO_THRESHOLD = 1e-35  # LightGBM kZeroThreshold / predict kZeroAsMissing


def random_cat_tree(rng, n_features, cat_features, depth, leaf_fn):
    if depth == 0 or rng.r.random() < 0.2:
        return {"leaf": leaf_fn()}
    feature = rng.r.randrange(n_features)
    node = {
        "feature": feature,
        "left": random_cat_tree(rng, n_features, cat_features, depth - 1,
                                leaf_fn),
        "right": random_cat_tree(rng, n_features, cat_features, depth - 1,
                                 leaf_fn),
    }
    if feature in cat_features:
        n_cats = cat_features[feature]
        node["cats"] = sorted(rng.r.sample(range(n_cats),
                                           rng.r.randrange(1, 9)))
    else:
        node["threshold"] = rng.grid(-2.0, 2.0)
        node["default_left"] = rng.r.random() < 0.5
    return node


def annotate_cat(node, thr_fn, leaf_fn):
    """annotate() for trees that may hold categorical nodes."""
    if "leaf" in node:
        node["eff_leaf"] = leaf_fn(node["leaf"])
        return
    if "cats" not in node:
        node["eff_threshold"] = thr_fn(node["threshold"])
    annotate_cat(node["left"], thr_fn, leaf_fn)
    annotate_cat(node["right"], thr_fn, leaf_fn)


def cat_words(cats):
    """uint32 bitset words sized to the largest member, LightGBM-style."""
    n_words = max(cats) // 32 + 1
    words = [0] * n_words
    for c in cats:
        words[c // 32] |= 1 << (c % 32)
    return words


def cat_member(cats, v):
    """Mirror of trees::cat_contains on the node's bitset extent."""
    if not v >= 0:
        return False
    if v >= (max(cats) // 32 + 1) * 32:
        return False
    return int(v) in cats


def eval_tree_lgbm_missing(node, x):
    """missing_type=Zero everywhere: NaN and |v| <= 1e-35 are missing."""
    while "leaf" not in node:
        v = x[node["feature"]]
        if "cats" in node:
            if math.isnan(v):
                v = 0.0  # LightGBM casts missing to category 0
            go_left = cat_member(node["cats"], v)
        elif math.isnan(v) or abs(v) <= ZERO_THRESHOLD:
            go_left = node["default_left"]
        else:
            go_left = v <= node["eff_threshold"]
        node = node["left"] if go_left else node["right"]
    return node["eff_leaf"]


def lgbm_cat_arrays(tree):
    """lgbm_arrays plus decision_type and the categorical side tables."""
    split_feature, threshold, decision_type, left_child, right_child, \
        leaf_value = [], [], [], [], [], []
    cat_boundaries, cat_threshold = [0], []

    def emit(node):
        if "leaf" in node:
            leaf_value.append(node["leaf"])
            return -len(leaf_value)
        idx = len(split_feature)
        split_feature.append(node["feature"])
        left_child.append(None)
        right_child.append(None)
        if "cats" in node:
            threshold.append(str(len(cat_boundaries) - 1))
            decision_type.append(5)  # categorical | missing_type Zero
            cat_threshold.extend(cat_words(node["cats"]))
            cat_boundaries.append(len(cat_threshold))
        else:
            threshold.append(repr(node["threshold"]))
            decision_type.append(4 | (2 if node["default_left"] else 0))
        left_child[idx] = emit(node["left"])
        right_child[idx] = emit(node["right"])
        return idx

    emit(tree)
    return (split_feature, threshold, decision_type, left_child, right_child,
            leaf_value, cat_boundaries, cat_threshold)


def gen_lgbm_categorical(rng_seed, n_rows):
    rng = Rng(rng_seed)
    n_features, n_trees = 4, 4
    cat_features = {2: 40, 3: 40}  # two-word bitsets when cats cross 32
    trees = [random_cat_tree(rng, n_features, cat_features, 3,
                             lambda: rng.grid(-1.0, 1.0))
             for _ in range(n_trees)]
    for t in trees:
        annotate_cat(t, thr_fn=f32_down, leaf_fn=f32)

    def make_row(kind):
        row = []
        for f in range(n_features):
            if f in cat_features:
                pick = rng.r.random()
                if pick < 0.50:
                    row.append(float(rng.r.randrange(cat_features[f])))
                elif pick < 0.65:
                    row.append(0.0)  # category 0 == the missing cast target
                elif pick < 0.80:
                    row.append(float(rng.r.randrange(40, 80)))  # non-member
                elif pick < 0.90:
                    row.append(-3.0)  # negative category: never a member
                else:
                    row.append(float("nan"))
            elif kind == 0:
                row.append(0.0)  # zero_as_missing hits the default bit
            elif kind == 1:
                row.append(float("nan"))
            else:
                row.append(f32(rng.grid(-2.5, 2.5)))
        return row

    rows = [make_row(i % 3 if i % 2 else 2) for i in range(n_rows)]

    def collect_num_thresholds(node, out):
        if "leaf" in node:
            return
        if "cats" not in node:
            out.append(node["eff_threshold"])
        collect_num_thresholds(node["left"], out)
        collect_num_thresholds(node["right"], out)

    thresholds = []
    for t in trees:
        collect_num_thresholds(t, thresholds)
    if thresholds:
        for i in range(0, n_rows, 5):  # exact threshold hits on numericals
            rows[i][rng.r.choice([0, 1])] = f32(rng.r.choice(thresholds))
    scores = []
    for x in rows:
        per_tree = [[eval_tree_lgbm_missing(t, x)] for t in trees]
        scores.append(accumulate_f32([0.0], per_tree))

    blocks = ["tree", "version=v3", "num_class=1", "num_tree_per_iteration=1",
              "label_index=0", "max_feature_idx=%d" % (n_features - 1),
              "objective=regression",
              "feature_names=" + " ".join("f%d" % i
                                          for i in range(n_features)), ""]
    for i, t in enumerate(trees):
        sf, th, dt, lc, rc, lv, cb, ct = lgbm_cat_arrays(t)
        blocks.append("Tree=%d" % i)
        blocks.append("num_leaves=%d" % len(lv))
        blocks.append("num_cat=%d" % (len(cb) - 1))
        if sf:
            blocks.append("split_feature=" + " ".join(map(str, sf)))
            blocks.append("threshold=" + " ".join(th))
            blocks.append("decision_type=" + " ".join(map(str, dt)))
            blocks.append("left_child=" + " ".join(map(str, lc)))
            blocks.append("right_child=" + " ".join(map(str, rc)))
        if len(cb) > 1:
            blocks.append("cat_boundaries=" + " ".join(map(str, cb)))
            blocks.append("cat_threshold=" + " ".join(map(str, ct)))
        blocks.append("leaf_value=" + " ".join(repr(v) for v in lv))
        blocks.append("shrinkage=1")
        blocks.append("")
    blocks.append("end of trees")
    write(os.path.join(OUT_DIR, "lgbm_categorical.txt"),
          "\n".join(blocks) + "\n")
    write_csv(os.path.join(OUT_DIR, "lgbm_categorical_input.csv"), rows,
              [0] * len(rows))
    write_scores(
        os.path.join(OUT_DIR, "lgbm_categorical_expected_scores.txt"),
        scores)


# ---------------------------------------------------------------------------
# sklearn: 3-class soft-vote classifier, float64-native, x <= t rule.
# ---------------------------------------------------------------------------

def sklearn_arrays(tree, k, rng):
    """sklearn-style parallel arrays (preorder, leaf sentinel -1/-2)."""
    left, right, feature, threshold, value = [], [], [], [], []

    def emit(node):
        idx = len(left)
        left.append(-1)
        right.append(-1)
        if "leaf" in node:
            feature.append(-2)
            threshold.append(-2.0)
            value.append(node["leaf"])
            return idx
        feature.append(node["feature"])
        threshold.append(node["threshold"])
        value.append([0.0] * k)  # internal rows unused by the loader
        left[idx] = emit(node["left"])
        right[idx] = emit(node["right"])
        return idx

    emit(tree)
    return left, right, feature, threshold, value


def gen_sklearn(rng_seed, n_rows):
    rng = Rng(rng_seed)
    n_features, n_trees, k = 5, 4, 3

    def leaf():
        # Class-count rows (integers): normalization at load is exact-ish
        # and mirrors older sklearn exports.
        counts = [rng.r.randrange(0, 20) for _ in range(k)]
        if sum(counts) == 0:
            counts[rng.r.randrange(k)] = 1
        return counts

    trees = [random_tree(rng, n_features, 3, leaf) for _ in range(n_trees)]

    def eff_leaf(counts):
        s = float(sum(counts))
        return [f32((c / s) * (1.0 / n_trees)) for c in counts]

    for t in trees:
        annotate(t, thr_fn=f32_down, leaf_fn=eff_leaf)

    def raw_of(x):
        per_tree = [eval_tree(t, x, less_than=False) for t in trees]
        return accumulate_f32([0.0] * k, per_tree)

    def margin_ok(x):
        raw = raw_of(x)
        order = sorted(range(k), key=lambda j: (-raw[j], j))
        return raw[order[0]] - raw[order[1]] > 1e-3

    rows = make_inputs(rng, trees, n_features, n_rows, accept=margin_ok)
    scores, classes = [], []
    for x in rows:
        raw = raw_of(x)
        classes.append(min(j for j in range(k)
                           if raw[j] == max(raw)))  # first-maximum tie rule
        scores.append(raw)  # link none: final scores are the sums

    jt = []
    for t in trees:
        left, right, feature, threshold, value = sklearn_arrays(t, k, rng)
        jt.append({
            "children_left": left,
            "children_right": right,
            "feature": feature,
            "threshold": threshold,
            "value": value,
        })
    doc = {
        "format": "sklearn-forest",
        "model_type": "random_forest_classifier",
        "n_features": n_features,
        "n_classes": k,
        "trees": jt,
    }
    text = json.dumps(doc, indent=1)
    # Swap one decimal threshold for its hex-float spelling: the loaders
    # accept C99 hex floats and must recover identical bits.
    first = None
    for t in trees:
        if "feature" in t:
            first = t["threshold"]
            break
    if first is not None:
        text = text.replace(json.dumps(first), float(first).hex(), 1)
    write(os.path.join(OUT_DIR, "sklearn_multiclass.json"), text + "\n")
    write_csv(os.path.join(OUT_DIR, "sklearn_multiclass_input.csv"), rows,
              classes)
    write_classes(
        os.path.join(OUT_DIR, "sklearn_multiclass_expected_classes.txt"),
        classes)
    write_scores(
        os.path.join(OUT_DIR, "sklearn_multiclass_expected_scores.txt"),
        scores)


# ---------------------------------------------------------------------------
# Corrupt native containers for the static verifier (tests/fixtures/corrupt).
#
# Every file here must make `flint-forest verify <file>` exit non-zero with a
# diagnostic naming the offending line or node — tests/test_verify.cpp walks
# the whole directory and asserts exactly that, and the fuzz corpora seed
# from it.  Each fixture derives from one of two tiny VALID containers (a v1
# vote forest and a v2 scalar-regression model) by a single deliberate
# corruption, documented in `#` comment lines the parsers skip.
# ---------------------------------------------------------------------------

CORRUPT_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "tests",
                           "fixtures", "corrupt")

# 0x3f000000 = 0.5f; a valid 3-node stump plus a lone-leaf tree.
V1_BASE = [
    "forest v1 2 2",
    "tree 2 3",
    "n 0 3f000000 1 2 -1",
    "n -1 0 -1 -1 0",
    "n -1 0 -1 -1 1",
    "tree 2 1",
    "n -1 0 -1 -1 1",
]

# Scalar regression: leaf predictions are rows into the leaf_values table
# (0x3f800000 = 1.0f, 0x40000000 = 2.0f, 0x3f000000 = 0.5f).
V2_BASE = [
    "forest v2 2",
    "kind scalar",
    "agg sum",
    "link none",
    "outputs 1",
    "classes 0",
    "base 0",
    "leaf_values 3 1",
    "v 3f800000",
    "v 40000000",
    "v 3f000000",
    "tree 2 3",
    "n 0 3f000000 1 2 -1",
    "n -1 0 -1 -1 0",
    "n -1 0 -1 -1 1",
    "tree 2 1",
    "n -1 0 -1 -1 2",
]


def corrupted(base, note, replace=None, insert=None, drop_tail=0):
    """One-corruption derivative of a valid base container: replacements by
    base-line index, line (or line-block) insertions before an index, plus a
    comment header naming the corruption and the diagnostic it must draw."""
    lines = list(base)
    if drop_tail:
        lines = lines[:-drop_tail]
    for idx, text in (replace or {}).items():
        lines[idx] = text
    for idx, text in sorted((insert or {}).items(), reverse=True):
        lines[idx:idx] = [text] if isinstance(text, str) else list(text)
    return ["# corrupt fixture: " + note,
            "# must fail `flint-forest verify` (see tests/test_verify.cpp)",
            ] + lines


CORRUPT_FIXTURES = {
    # --- v1 vote forests -------------------------------------------------
    "v1_child_out_of_range.forest": corrupted(
        V1_BASE, "root right child 99 outside [0, 3)",
        replace={2: "n 0 3f000000 1 99 -1"}),
    "v1_cycle.forest": corrupted(
        V1_BASE, "node 1 made inner, left child loops back to the root",
        replace={3: "n 1 3f000000 0 2 -1"}),
    "v1_nan_split.forest": corrupted(
        V1_BASE, "root split bits 7fc00000 (NaN) break rank narrowing",
        replace={2: "n 0 7fc00000 1 2 -1"}),
    "v1_orphan_node.forest": corrupted(
        V1_BASE, "node 3 exists but no inner node points at it (0 parents)",
        replace={1: "tree 2 4"},
        insert={5: "n -1 0 -1 -1 0"}),
    "v1_leaf_class_out_of_range.forest": corrupted(
        V1_BASE, "leaf class 7 with a 2-class header (vote array overrun)",
        replace={4: "n -1 0 -1 -1 7"}),
    "v1_leaf_with_flags.forest": corrupted(
        V1_BASE, "leaf carrying split flags (extended form, flags=1)",
        replace={4: "n -1 0 -1 -1 1 1 -1"}),
    "v1_feature_out_of_range.forest": corrupted(
        V1_BASE, "root splits on f5 but the tree declares 2 features",
        replace={2: "n 5 3f000000 1 2 -1"}),
    "v1_zero_feature_count.forest": corrupted(
        V1_BASE, "tree declares 0 features yet splits on f0 "
                 "(predictors would size input rows as width 0)",
        replace={1: "tree 0 3"}),
    "v1_huge_tree_count.forest": corrupted(
        V1_BASE, "header promises 99999999999 trees it never provides "
                 "(allocation-bomb regression)",
        replace={0: "forest v1 2 99999999999"}),
    "v1_truncated.forest": corrupted(
        V1_BASE, "file ends mid-tree (the last node line is missing)",
        drop_tail=1),
    # --- v2 typed-leaf models --------------------------------------------
    "v2_leaf_row_out_of_range.v2": corrupted(
        V2_BASE, "leaf row 9 with only 3 leaf-value rows",
        replace={16: "n -1 0 -1 -1 9"}),
    "v2_nonfinite_leaf_value.v2": corrupted(
        V2_BASE, "leaf value bits 7f800000 (+inf) poison every score sum",
        replace={8: "v 7f800000"}),
    "v2_class_count_mismatch.v2": corrupted(
        V2_BASE, "header claims 5 classes; the aggregation derives 0 "
                 "(scalar sum + link none is regression)",
        replace={5: "classes 5"}),
    "v2_base_score_arity.v2": corrupted(
        V2_BASE, "base line carries 2 values for a 1-output model",
        replace={6: "base 0 0"}),
    "v2_scalar_outputs_mismatch.v2": corrupted(
        V2_BASE, "kind scalar with outputs 3 (scalar implies exactly 1)",
        replace={4: "outputs 3",
                 7: "leaf_values 3 3",
                 8: "v 3f800000 3f800000 3f800000",
                 9: "v 40000000 40000000 40000000",
                 10: "v 3f000000 3f000000 3f000000"}),
    "v2_bad_missing_line.v2": corrupted(
        V2_BASE, "missing 0 1: zero_as_missing without handles_missing",
        insert={5: "missing 0 1"}),
    "v2_leaf_with_cat_slot.v2": corrupted(
        V2_BASE, "leaf node carrying cat_slot 0 (leaf or mangled split?) — "
                 "the shape the container fuzz harness flagged",
        replace={11: "tree 2 3",
                 12: "cats 1",
                 13: "c 1 1",
                 14: "n 0 3f000000 1 2 -1 0 -1"},
        insert={15: ["n -1 0 -1 -1 0 0 0",
                     "n -1 0 -1 -1 1 0 -1"]}),
    "v2_huge_feature_count.v2": corrupted(
        V2_BASE, "tree declares 999999999 features, far past the engine "
                 "limit of 32767 (O(features) side tables)",
        replace={11: "tree 999999999 3",
                 12: "n 5000000 3f000000 1 2 -1"}),
    "v2_huge_category_words.v2": corrupted(
        V2_BASE, "category set claims 99999999999 words on a short line",
        replace={11: "tree 2 3",
                 12: "cats 1",
                 13: "c 99999999999 1",
                 14: "n 0 3f000000 1 2 -1 2 0"},
        insert={15: ["n -1 0 -1 -1 0",
                     "n -1 0 -1 -1 1"]}),
    "v2_truncated.v2": corrupted(
        V2_BASE, "file ends inside the leaf_values table",
        drop_tail=8),
}


def gen_corrupt():
    os.makedirs(CORRUPT_DIR, exist_ok=True)
    for name, lines in sorted(CORRUPT_FIXTURES.items()):
        write(os.path.join(CORRUPT_DIR, name), "\n".join(lines) + "\n")


def main():
    os.makedirs(OUT_DIR, exist_ok=True)
    gen_xgboost(rng_seed=11, n_rows=24)
    gen_xgb_missing(rng_seed=53, n_rows=24)
    gen_lightgbm(rng_seed=23, n_rows=24)
    gen_lgbm_categorical(rng_seed=71, n_rows=24)
    gen_sklearn(rng_seed=37, n_rows=24)
    gen_corrupt()


if __name__ == "__main__":
    main()
