#!/bin/sh
# run_fuzz_smoke.sh — seed and run every fuzz harness for a bounded time.
#
# Seeds each harness's corpus from the committed fixtures (tests/fixtures/
# external/ plus native v1/v2 artifacts converted on the fly), then:
#   * libFuzzer builds (clang, FLINT_FUZZ_LIBFUZZER): coverage-guided run,
#     -max_total_time=$FUZZ_SECONDS per harness, with the matching
#     dictionary from fuzz/dicts/;
#   * standalone builds (GCC fallback driver): replay the corpus once —
#     a crash/sanitizer regression gate, not exploration.
#
# Usage: tools/run_fuzz_smoke.sh <build-dir> [source-root]
# Env:   FUZZ_SECONDS  per-harness budget in libFuzzer mode (default 60)
set -eu

build=${1:?usage: run_fuzz_smoke.sh <build-dir> [source-root]}
root=${2:-$(dirname "$0")/..}
fixtures="$root/tests/fixtures/external"
corrupt="$root/tests/fixtures/corrupt"
dicts="$root/fuzz/dicts"
seconds=${FUZZ_SECONDS:-60}
work=$(mktemp -d "${TMPDIR:-/tmp}/flint_fuzz_XXXXXX")
trap 'rm -rf "$work"' EXIT

status=0

# Native artifacts for the container harness: convert two external fixtures
# (one plain, one categorical+missing) so the corpus holds real v2 bytes.
mkdir -p "$work/native"
if [ -x "$build/flint-forest" ]; then
    "$build/flint-forest" convert --in "$fixtures/xgb_binary.json" \
        --out "$work/native/xgb_binary.v2"
    "$build/flint-forest" convert --in "$fixtures/lgbm_categorical.txt" \
        --out "$work/native/lgbm_categorical.v2"
fi

# seed_corpus <corpus-dir> <file>...
seed_corpus() {
    dir=$1; shift
    mkdir -p "$dir"
    for f in "$@"; do
        [ -f "$f" ] && cp "$f" "$dir/" || true
    done
}

# run_harness <name> <dict-or-empty> <seed-file>...
run_harness() {
    name=$1; dict=$2; shift 2
    bin="$build/$name"
    if [ ! -x "$bin" ]; then
        echo "SKIP: $name not built (configure with -DFLINT_FUZZ=ON)" >&2
        return
    fi
    corpus="$work/corpus_$name"
    seed_corpus "$corpus" "$@"
    # Corrupt fixtures are universal seeds: every parser must reject them
    # gracefully, and they sit right next to interesting code paths.
    if [ -d "$corrupt" ]; then
        for f in "$corrupt"/*; do cp "$f" "$corpus/" 2>/dev/null || true; done
    fi
    echo "== $name"
    if "$bin" -help=1 2>/dev/null | grep -q max_total_time; then
        dictarg=""
        [ -n "$dict" ] && [ -f "$dict" ] && dictarg="-dict=$dict"
        "$bin" -max_total_time="$seconds" -max_len=65536 -rss_limit_mb=2048 \
            $dictarg "$corpus" || status=1
    else
        "$bin" "$corpus" || status=1
    fi
}

run_harness fuzz_json "$dicts/json.dict" \
    "$fixtures/xgb_binary.json" "$fixtures/xgb_missing.json" \
    "$fixtures/sklearn_multiclass.json"
run_harness fuzz_xgboost "$dicts/xgboost.dict" \
    "$fixtures/xgb_binary.json" "$fixtures/xgb_missing.json"
run_harness fuzz_lightgbm "$dicts/lightgbm.dict" \
    "$fixtures/lgbm_regression.txt" "$fixtures/lgbm_categorical.txt"
run_harness fuzz_sklearn "$dicts/sklearn.dict" \
    "$fixtures/sklearn_multiclass.json"
run_harness fuzz_container "$dicts/container.dict" \
    "$work/native/xgb_binary.v2" "$work/native/lgbm_categorical.v2"
run_harness fuzz_csv "" \
    "$fixtures/xgb_binary_input.csv" "$fixtures/lgbm_categorical_input.csv" \
    "$fixtures/sklearn_multiclass_input.csv"

if [ "$status" -eq 0 ]; then
    echo "fuzz smoke: all harnesses completed without findings"
fi
exit $status
