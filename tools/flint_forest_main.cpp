// flint-forest — command-line entry point; all logic lives in cli/cli.cpp
// so it can be tested in-process.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return flint::cli::run(args, std::cout, std::cerr);
}
