// harness/report — aggregation + rendering of run_grid records in the
// paper's presentation formats.
//
// Figure 3/4 series: normalized execution time per maximal tree depth,
// geometric-mean aggregated across datasets and ensemble sizes, with the
// variance across those configurations.  Table II/III: overall geometric
// mean and the D>=20 restriction.  Everything is also exportable as CSV so
// the plots can be regenerated outside this binary.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace flint::harness {

/// One point of a Figure 3/4 series.
struct SeriesPoint {
  int depth = 0;
  double geomean = 0.0;   ///< geometric mean of normalized time
  double variance = 0.0;  ///< across datasets x ensemble sizes
  std::size_t count = 0;  ///< configurations aggregated
};

/// Aggregates `records` of one implementation into a depth-indexed series
/// (ascending depth).  Records of other implementations are ignored.
[[nodiscard]] std::vector<SeriesPoint> depth_series(
    std::span<const RunRecord> records, Impl impl);

/// Geometric mean of normalized time over all records of `impl` with
/// depth >= min_depth (Table II rows; min_depth=0 for the overall row).
/// Returns 0 when no record matches.
[[nodiscard]] double summary_geomean(std::span<const RunRecord> records,
                                     Impl impl, int min_depth = 0);

/// Raw records as CSV (header + one line per record).
void write_csv(std::ostream& out, std::span<const RunRecord> records);

/// Figure 3/4 style ASCII table: one row per depth, one column per
/// implementation, cells "geomean (variance)".
void print_depth_table(std::ostream& out, std::span<const RunRecord> records,
                       std::span<const Impl> impls, const std::string& title);

/// Table II/III style summary: overall and D>=20 geometric means.
void print_summary_table(std::ostream& out, std::span<const RunRecord> records,
                         std::span<const Impl> impls, const std::string& title);

}  // namespace flint::harness
