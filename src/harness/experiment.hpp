// harness/experiment — the full evaluation driver (paper Section V-A).
//
// For every (dataset, ensemble size, max depth) cell of the grid the driver
// trains one forest, generates every requested implementation flavor from
// that same model, JIT-compiles them (in parallel — compilation is the
// arch-forest offline step, not part of the measurement), verifies that all
// flavors produce bit-identical predictions on the full test set, and then
// times single-sample inference over the test rows.  Normalized time is
// time(flavor) / time(Naive) per cell, exactly as in Figures 3/4 and
// Tables II/III.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace flint::harness {

/// Implementation flavors of the evaluation (paper Section V-A items 1-4
/// plus the Section IV-C assembly backend and the native-tree ablations).
enum class Impl {
  Naive,        ///< standard if-else tree, float comparisons (baseline)
  Cags,         ///< cache-aware grouping and swapping, float comparisons
  Flint,        ///< standard if-else tree with FLInt comparisons
  CagsFlint,    ///< CAGS with FLInt comparisons
  FlintAsm,     ///< direct x86-64 assembly FLInt backend
  NativeFloat,  ///< array-walking native tree, float comparisons
  NativeFlint,  ///< array-walking native tree, FLInt comparisons
};

[[nodiscard]] const char* to_string(Impl impl);
[[nodiscard]] Impl impl_from_string(const std::string& name);

struct GridConfig {
  std::vector<std::string> datasets;      ///< synth spec names
  std::vector<int> ensemble_sizes;        ///< trees per forest
  std::vector<int> depths;                ///< max depth grid
  std::vector<Impl> impls;                ///< flavors to build and time
  std::size_t dataset_rows = 3000;        ///< generated rows per dataset
  double test_fraction = 0.25;            ///< paper: 25% test
  std::uint64_t seed = 42;
  int jit_opt_level = 2;                  ///< for generated code
  int cags_kernel_budget = 4096;          ///< bytes per CAGS kernel
  double min_measure_seconds = 0.05;      ///< per timing repetition
  int repetitions = 3;                    ///< min-of-N policy
  unsigned compile_threads = 0;           ///< 0 = hardware_concurrency
  bool verify_predictions = true;         ///< cross-check all flavors
};

/// One timed (cell, flavor) measurement.
struct RunRecord {
  std::string dataset;
  int n_trees = 0;
  int depth = 0;
  Impl impl = Impl::Naive;
  double ns_per_sample = 0.0;
  double normalized = 0.0;       ///< vs Impl::Naive of the same cell
  std::size_t test_rows = 0;
  std::size_t total_nodes = 0;   ///< model size (all trees)
  std::size_t object_bytes = 0;  ///< compiled .so size
  bool verified = false;         ///< bit-identical to the reference engine
};

/// Runs the whole grid.  Progress lines (one per cell) go to `progress` if
/// non-null.  Throws std::runtime_error if verification fails anywhere —
/// "accuracy unchanged" is the paper's core claim, so a mismatch is a bug,
/// not a data point.
[[nodiscard]] std::vector<RunRecord> run_grid(const GridConfig& config,
                                              std::ostream* progress = nullptr);

/// Small default grid: 3 datasets x {1,5} trees x depths {1,5,10,15,20,30},
/// sized so a bench binary finishes in roughly a minute on a laptop.
[[nodiscard]] GridConfig default_config();

/// The full grid of Section V-A: 5 datasets x {1,5,10,15,20,30,50,80,100}
/// trees x depths {1,5,10,15,20,30,50}.  Hours of compile+measure time.
[[nodiscard]] GridConfig paper_config();

/// default_config(), upgraded to paper_config() when FLINT_BENCH_FULL=1 is
/// set in the environment (documented in every bench --help).
[[nodiscard]] GridConfig config_from_env();

}  // namespace flint::harness
