// harness/bench_json — machine-readable benchmark artifacts.
//
// Every bench binary emits a `BENCH_<name>.json` file next to its text
// output so the repo's perf trajectory can be tracked by tooling instead of
// scraped from stdout.  The schema is deliberately flat:
//
//   {
//     "bench": "<name>",
//     "git_sha": "<build-time sha (cmake/git_sha.cmake stamp, regenerated
//                  every build); FLINT_GIT_SHA env overrides>",
//     "git_dirty": <true when the stamped checkout had uncommitted changes>,
//     "host": { "cpu": ..., "arch": ..., "logical_cores": ... },
//     "unix_time": <seconds>,
//     ...header fields set by the bench...,
//     "rows": [ { "backend": "...", "batch": 1024, "samples_per_sec": ... },
//               ... ]
//   }
//
// Rows are free-form key/value objects (string, double, int64 or bool
// values) so each bench records whatever its sweep measures.  The file is
// written by write() or, failing that, the destructor; a bench that aborts
// through std::exit on a verification failure leaves no artifact, which is
// what CI wants (missing artifact = failed run).
//
// The output directory defaults to the working directory and can be
// redirected with FLINT_BENCH_JSON_DIR (used by CI to collect artifacts).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace flint::harness {

struct RunRecord;  // experiment.hpp

/// One JSON scalar; insertion order of keys is preserved.
struct BenchValue {
  enum class Kind { String, Number, Integer, Boolean } kind = Kind::String;
  std::string s;
  double d = 0.0;
  std::int64_t i = 0;
  bool b = false;

  static BenchValue of(std::string v);
  static BenchValue of(const char* v);
  static BenchValue of(double v);
  static BenchValue of(std::int64_t v);
  static BenchValue of(std::size_t v);
  static BenchValue of(int v);
  static BenchValue of(unsigned v);
  static BenchValue of(bool v);
};

class BenchJson {
 public:
  /// `name` without the BENCH_ prefix or .json suffix, e.g.
  /// "simd_throughput".  Header is pre-populated with bench/git_sha/host/
  /// timestamp fields.
  explicit BenchJson(std::string name);
  ~BenchJson();

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  /// Sets/overwrites a top-level header field.
  template <typename V>
  void set(const std::string& key, V value) {
    set_value(key, BenchValue::of(std::move(value)));
  }

  /// Appends a row of {key, value} pairs to "rows".
  void add_row(std::vector<std::pair<std::string, BenchValue>> fields);

  /// Convenience for the common throughput-sweep row shape.
  void add_rate(const std::string& backend, std::size_t batch,
                unsigned threads, double samples_per_sec);

  /// Writes BENCH_<name>.json (FLINT_BENCH_JSON_DIR or cwd) and returns the
  /// path; empty string and a stderr note on I/O failure.  Idempotent: the
  /// destructor only writes if this was never called.
  std::string write();

 private:
  void set_value(const std::string& key, BenchValue value);

  std::string name_;
  std::vector<std::pair<std::string, BenchValue>> header_;
  std::vector<std::vector<std::pair<std::string, BenchValue>>> rows_;
  bool written_ = false;
};

/// Appends one row per experiment-grid record (the Figure-3/4 and Table
/// II/III benches all share run_grid output).
void add_run_records(BenchJson& json, std::span<const RunRecord> records);

}  // namespace flint::harness
