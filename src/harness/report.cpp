#include "harness/report.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

#include "harness/stats.hpp"

namespace flint::harness {

std::vector<SeriesPoint> depth_series(std::span<const RunRecord> records,
                                      Impl impl) {
  std::map<int, std::vector<double>> by_depth;
  for (const auto& rec : records) {
    if (rec.impl == impl && rec.normalized > 0.0) {
      by_depth[rec.depth].push_back(rec.normalized);
    }
  }
  std::vector<SeriesPoint> series;
  series.reserve(by_depth.size());
  for (const auto& [depth, values] : by_depth) {
    SeriesPoint p;
    p.depth = depth;
    p.geomean = geometric_mean(values);
    p.variance = variance(values);
    p.count = values.size();
    series.push_back(p);
  }
  return series;
}

double summary_geomean(std::span<const RunRecord> records, Impl impl,
                       int min_depth) {
  std::vector<double> values;
  for (const auto& rec : records) {
    if (rec.impl == impl && rec.depth >= min_depth && rec.normalized > 0.0) {
      values.push_back(rec.normalized);
    }
  }
  if (values.empty()) return 0.0;
  return geometric_mean(values);
}

void write_csv(std::ostream& out, std::span<const RunRecord> records) {
  out << "dataset,n_trees,depth,impl,ns_per_sample,normalized,test_rows,"
         "total_nodes,object_bytes,verified\n";
  for (const auto& r : records) {
    out << r.dataset << ',' << r.n_trees << ',' << r.depth << ','
        << to_string(r.impl) << ',' << r.ns_per_sample << ',' << r.normalized
        << ',' << r.test_rows << ',' << r.total_nodes << ',' << r.object_bytes
        << ',' << (r.verified ? 1 : 0) << '\n';
  }
}

void print_depth_table(std::ostream& out, std::span<const RunRecord> records,
                       std::span<const Impl> impls, const std::string& title) {
  out << title << '\n';
  out << "normalized elapsed time (geomean over datasets x ensemble sizes; "
         "variance in parentheses)\n";
  out << std::left << std::setw(8) << "depth";
  for (const Impl impl : impls) {
    out << std::setw(22) << to_string(impl);
  }
  out << '\n';

  // Collect the union of depths in ascending order.
  std::vector<int> depths;
  for (const auto& rec : records) {
    if (std::find(depths.begin(), depths.end(), rec.depth) == depths.end()) {
      depths.push_back(rec.depth);
    }
  }
  std::sort(depths.begin(), depths.end());

  std::map<Impl, std::vector<SeriesPoint>> series;
  for (const Impl impl : impls) series[impl] = depth_series(records, impl);

  for (const int depth : depths) {
    out << std::left << std::setw(8) << depth;
    for (const Impl impl : impls) {
      const auto& s = series[impl];
      const auto it = std::find_if(s.begin(), s.end(), [&](const SeriesPoint& p) {
        return p.depth == depth;
      });
      if (it == s.end()) {
        out << std::setw(22) << "-";
      } else {
        std::ostringstream cell;
        cell << std::fixed << std::setprecision(3) << it->geomean << " ("
             << std::setprecision(4) << it->variance << ")";
        out << std::setw(22) << cell.str();
      }
    }
    out << '\n';
  }
}

void print_summary_table(std::ostream& out, std::span<const RunRecord> records,
                         std::span<const Impl> impls, const std::string& title) {
  out << title << '\n';
  out << std::left << std::setw(24) << "implementation" << std::setw(12)
      << "overall" << std::setw(12) << "D>=20" << '\n';
  for (const Impl impl : impls) {
    const double overall = summary_geomean(records, impl, 0);
    const double deep = summary_geomean(records, impl, 20);
    out << std::left << std::setw(24) << to_string(impl);
    std::ostringstream a, b;
    a << std::fixed << std::setprecision(2) << overall << "x";
    b << std::fixed << std::setprecision(2) << deep << "x";
    out << std::setw(12) << (overall > 0 ? a.str() : "-") << std::setw(12)
        << (deep > 0 ? b.str() : "-") << '\n';
  }
}

}  // namespace flint::harness
