// harness/timer — steady-clock measurement with adaptive repetition.
//
// Policy: the measured closure is repeated until at least `min_seconds` of
// wall time accumulates (so short workloads are not noise-dominated), the
// whole measurement is re-run `repetitions` times, and the *minimum* per-
// iteration time is reported — the standard estimator for "cost without
// interference" on a multi-tasking host.
#pragma once

#include <chrono>
#include <cstdint>
#include <utility>

namespace flint::harness {

struct TimingResult {
  double seconds_per_iteration = 0.0;  ///< best (minimum) across repetitions
  double total_seconds = 0.0;          ///< wall time spent measuring
  std::uint64_t iterations = 0;        ///< iterations of the final repetition
};

using Clock = std::chrono::steady_clock;

[[nodiscard]] inline double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Measures `fn` (callable with no arguments; its return value, if any, is
/// discarded — keep a sink inside the closure to prevent dead-code
/// elimination).
template <typename Fn>
[[nodiscard]] TimingResult measure(Fn&& fn, double min_seconds = 0.02,
                                   int repetitions = 3) {
  TimingResult result;
  const auto overall_start = Clock::now();
  double best = -1.0;
  for (int rep = 0; rep < repetitions; ++rep) {
    std::uint64_t iters = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      fn();
      ++iters;
      elapsed = seconds_since(start);
    } while (elapsed < min_seconds);
    const double per_iter = elapsed / static_cast<double>(iters);
    if (best < 0.0 || per_iter < best) {
      best = per_iter;
      result.iterations = iters;
    }
  }
  result.seconds_per_iteration = best;
  result.total_seconds = seconds_since(overall_start);
  return result;
}

}  // namespace flint::harness
