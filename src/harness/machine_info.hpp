// harness/machine_info — host introspection for the Table I analog.
//
// The paper's Table I lists the four evaluation machines (system, CPU, RAM,
// kernel).  This module reads the same fields for the host the benchmarks
// actually run on, so every report is self-describing.
#pragma once

#include <string>

namespace flint::harness {

struct MachineInfo {
  std::string architecture;  ///< uname -m (e.g. "x86_64")
  std::string kernel;        ///< uname -r/-s
  std::string cpu_model;     ///< /proc/cpuinfo "model name" (or "unknown")
  int logical_cores = 0;
  long ram_mb = 0;           ///< /proc/meminfo MemTotal
  std::string hostname;
};

[[nodiscard]] MachineInfo query_machine_info();

/// One-line summary for bench headers.
[[nodiscard]] std::string to_string(const MachineInfo& info);

}  // namespace flint::harness
