// harness/stats — the summary statistics used in the paper's evaluation:
// geometric mean across configurations (Table II/III, Figure 3/4 series)
// and the per-point variance shown as error bars.
#pragma once

#include <span>
#include <vector>

namespace flint::harness {

/// Geometric mean of strictly positive values.  Throws std::invalid_argument
/// on empty input or non-positive entries (a normalized time of zero means a
/// measurement bug; surface it, don't average it away).
[[nodiscard]] double geometric_mean(std::span<const double> values);

/// Arithmetic mean; throws on empty input.
[[nodiscard]] double mean(std::span<const double> values);

/// Population variance (the paper reports variance across data sets and
/// ensemble sizes); throws on empty input.
[[nodiscard]] double variance(std::span<const double> values);

[[nodiscard]] double stddev(std::span<const double> values);

/// Median (average of middle pair for even sizes); throws on empty input.
[[nodiscard]] double median(std::vector<double> values);

[[nodiscard]] double min_value(std::span<const double> values);
[[nodiscard]] double max_value(std::span<const double> values);

}  // namespace flint::harness
