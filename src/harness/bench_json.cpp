#include "harness/bench_json.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <thread>

#include "harness/experiment.hpp"
#include "harness/machine_info.hpp"

// Build-time revision stamp, regenerated on every build by the
// flint_git_sha custom target (cmake/git_sha.cmake) so rebuilding after new
// commits without re-running CMake cannot stamp artifacts with a stale
// configure-time SHA.  Absent in non-CMake builds (e.g. syntax-only
// checks), hence the guarded include and fallbacks.
#if defined(__has_include)
#if __has_include("flint_git_sha.inc")
#include "flint_git_sha.inc"
#endif
#endif
#ifndef FLINT_GIT_SHA
#define FLINT_GIT_SHA "unknown"
#endif
#ifndef FLINT_GIT_DIRTY
#define FLINT_GIT_DIRTY 0
#endif

namespace flint::harness {

BenchValue BenchValue::of(std::string v) {
  BenchValue out;
  out.kind = Kind::String;
  out.s = std::move(v);
  return out;
}
BenchValue BenchValue::of(const char* v) { return of(std::string(v)); }
BenchValue BenchValue::of(double v) {
  BenchValue out;
  out.kind = Kind::Number;
  out.d = v;
  return out;
}
BenchValue BenchValue::of(std::int64_t v) {
  BenchValue out;
  out.kind = Kind::Integer;
  out.i = v;
  return out;
}
BenchValue BenchValue::of(std::size_t v) {
  return of(static_cast<std::int64_t>(v));
}
BenchValue BenchValue::of(int v) { return of(static_cast<std::int64_t>(v)); }
BenchValue BenchValue::of(unsigned v) {
  return of(static_cast<std::int64_t>(v));
}
BenchValue BenchValue::of(bool v) {
  BenchValue out;
  out.kind = Kind::Boolean;
  out.b = v;
  return out;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_value(std::string& out, const BenchValue& v) {
  char buf[48];
  switch (v.kind) {
    case BenchValue::Kind::String:
      append_escaped(out, v.s);
      break;
    case BenchValue::Kind::Number:
      std::snprintf(buf, sizeof buf, "%.10g", v.d);
      out += buf;
      break;
    case BenchValue::Kind::Integer:
      std::snprintf(buf, sizeof buf, "%" PRId64, v.i);
      out += buf;
      break;
    case BenchValue::Kind::Boolean:
      out += v.b ? "true" : "false";
      break;
  }
}

void append_fields(std::string& out,
                   const std::vector<std::pair<std::string, BenchValue>>& kv) {
  bool first = true;
  for (const auto& [key, value] : kv) {
    if (!first) out += ", ";
    first = false;
    append_escaped(out, key);
    out += ": ";
    append_value(out, value);
  }
}

}  // namespace

BenchJson::BenchJson(std::string name) : name_(std::move(name)) {
  set("bench", name_);
  const char* sha = std::getenv("FLINT_GIT_SHA");
  set("git_sha", sha && sha[0] ? sha : FLINT_GIT_SHA);
  set("git_dirty", static_cast<bool>(FLINT_GIT_DIRTY));
  const MachineInfo info = query_machine_info();
  set("cpu", info.cpu_model);
  set("arch", info.architecture);
  set("logical_cores", info.logical_cores);
  set("hardware_concurrency",
      static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  set("unix_time", static_cast<std::int64_t>(std::time(nullptr)));
}

BenchJson::~BenchJson() {
  if (!written_) write();
}

void BenchJson::set_value(const std::string& key, BenchValue value) {
  for (auto& [k, v] : header_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  header_.emplace_back(key, std::move(value));
}

void BenchJson::add_row(
    std::vector<std::pair<std::string, BenchValue>> fields) {
  rows_.push_back(std::move(fields));
}

void BenchJson::add_rate(const std::string& backend, std::size_t batch,
                         unsigned threads, double samples_per_sec) {
  add_row({{"backend", BenchValue::of(backend)},
           {"batch", BenchValue::of(batch)},
           {"threads", BenchValue::of(threads)},
           {"samples_per_sec", BenchValue::of(samples_per_sec)}});
}

std::string BenchJson::write() {
  written_ = true;
  const char* dir = std::getenv("FLINT_BENCH_JSON_DIR");
  std::string path = dir && dir[0] ? std::string(dir) + "/" : std::string();
  path += "BENCH_" + name_ + ".json";

  std::string out = "{";
  append_fields(out, header_);
  out += ", \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += r ? ",\n  {" : "\n  {";
    append_fields(out, rows_[r]);
    out += "}";
  }
  out += rows_.empty() ? "]}\n" : "\n]}\n";

  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
    return {};
  }
  f << out;
  return path;
}

void add_run_records(BenchJson& json, std::span<const RunRecord> records) {
  for (const auto& r : records) {
    json.add_row({{"dataset", BenchValue::of(r.dataset)},
                  {"trees", BenchValue::of(r.n_trees)},
                  {"depth", BenchValue::of(r.depth)},
                  {"impl", BenchValue::of(to_string(r.impl))},
                  {"ns_per_sample", BenchValue::of(r.ns_per_sample)},
                  {"normalized", BenchValue::of(r.normalized)},
                  {"total_nodes", BenchValue::of(r.total_nodes)},
                  {"object_bytes", BenchValue::of(r.object_bytes)},
                  {"verified", BenchValue::of(r.verified)}});
  }
}

}  // namespace flint::harness
