#include "harness/machine_info.hpp"

#include <sys/utsname.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <thread>

namespace flint::harness {

namespace {

std::string proc_field(const std::string& path, const std::string& key) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(key, 0) == 0) {
      const auto colon = line.find(':');
      if (colon == std::string::npos) continue;
      auto value = line.substr(colon + 1);
      const auto first = value.find_first_not_of(" \t");
      if (first == std::string::npos) return {};
      return value.substr(first);
    }
  }
  return {};
}

}  // namespace

MachineInfo query_machine_info() {
  MachineInfo info;
  utsname uts{};
  if (::uname(&uts) == 0) {
    info.architecture = uts.machine;
    info.kernel = std::string(uts.sysname) + " " + uts.release;
    info.hostname = uts.nodename;
  }
  info.cpu_model = proc_field("/proc/cpuinfo", "model name");
  if (info.cpu_model.empty()) info.cpu_model = "unknown";
  info.logical_cores = static_cast<int>(std::thread::hardware_concurrency());

  const std::string mem = proc_field("/proc/meminfo", "MemTotal");
  if (!mem.empty()) {
    std::istringstream ss(mem);
    long kb = 0;
    ss >> kb;
    info.ram_mb = kb / 1024;
  }
  return info;
}

std::string to_string(const MachineInfo& info) {
  std::ostringstream out;
  out << info.architecture << ", " << info.cpu_model << ", "
      << info.logical_cores << " cores, " << info.ram_mb << " MB RAM, "
      << info.kernel;
  return out.str();
}

}  // namespace flint::harness
