#include "harness/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flint::harness {

namespace {

void require_nonempty(std::span<const double> values, const char* what) {
  if (values.empty()) {
    throw std::invalid_argument(std::string(what) + ": empty input");
  }
}

}  // namespace

double geometric_mean(std::span<const double> values) {
  require_nonempty(values, "geometric_mean");
  double log_sum = 0.0;
  for (const double v : values) {
    if (!(v > 0.0)) {
      throw std::invalid_argument("geometric_mean: non-positive value");
    }
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mean(std::span<const double> values) {
  require_nonempty(values, "mean");
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  require_nonempty(values, "variance");
  const double m = mean(values);
  double acc = 0.0;
  for (const double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  return std::sqrt(variance(values));
}

double median(std::vector<double> values) {
  require_nonempty(values, "median");
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

double min_value(std::span<const double> values) {
  require_nonempty(values, "min_value");
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  require_nonempty(values, "max_value");
  return *std::max_element(values.begin(), values.end());
}

}  // namespace flint::harness
