#include "harness/experiment.hpp"

#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <tuple>
#include <future>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "codegen/asm_x86.hpp"
#include "codegen/cgen_cags.hpp"
#include "codegen/cgen_ifelse.hpp"
#include "codegen/cgen_native.hpp"
#include "data/split.hpp"
#include "data/synth.hpp"
#include "harness/timer.hpp"
#include "jit/jit.hpp"
#include "predict/jit_predictor.hpp"
#include "predict/predictor.hpp"
#include "trees/tree_stats.hpp"

namespace flint::harness {

const char* to_string(Impl impl) {
  switch (impl) {
    case Impl::Naive: return "Naive";
    case Impl::Cags: return "CAGS";
    case Impl::Flint: return "FLInt";
    case Impl::CagsFlint: return "CAGS(FLInt)";
    case Impl::FlintAsm: return "FLIntASM";
    case Impl::NativeFloat: return "NativeFloat";
    case Impl::NativeFlint: return "NativeFLInt";
  }
  return "?";
}

Impl impl_from_string(const std::string& name) {
  for (const Impl i : {Impl::Naive, Impl::Cags, Impl::Flint, Impl::CagsFlint,
                       Impl::FlintAsm, Impl::NativeFloat, Impl::NativeFlint}) {
    if (name == to_string(i)) return i;
  }
  throw std::invalid_argument("impl_from_string: unknown impl '" + name + "'");
}

namespace {

/// One grid cell: a trained forest plus everything needed to time it.
struct Cell {
  std::string dataset;
  int n_trees = 0;
  int depth = 0;
  trees::Forest<float> forest;
  std::vector<trees::BranchStats> stats;
  const data::Dataset<float>* test = nullptr;
};

codegen::GeneratedCode generate_for(const Cell& cell, Impl impl,
                                    const GridConfig& config) {
  codegen::CGenOptions options;
  options.prefix = "forest";
  options.kernel_budget_bytes = config.cags_kernel_budget;
  switch (impl) {
    case Impl::Naive:
      options.flint = false;
      return codegen::generate_ifelse(cell.forest, options);
    case Impl::Flint:
      options.flint = true;
      return codegen::generate_ifelse(cell.forest, options);
    case Impl::Cags:
      options.flint = false;
      return codegen::generate_cags(cell.forest, cell.stats, options);
    case Impl::CagsFlint:
      options.flint = true;
      return codegen::generate_cags(cell.forest, cell.stats, options);
    case Impl::FlintAsm:
      return codegen::generate_asm_x86(cell.forest, options);
    case Impl::NativeFloat:
      options.flint = false;
      return codegen::generate_native(cell.forest, options);
    case Impl::NativeFlint:
      options.flint = true;
      return codegen::generate_native(cell.forest, options);
  }
  throw std::logic_error("generate_for: unhandled impl");
}

/// Simple bounded parallel-for over [0, n) using std::thread workers.
void parallel_for(std::size_t n, unsigned threads,
                  const std::function<void(std::size_t)>& body) {
  // Not hardware_concurrency(): respect cgroup CPU quotas in containers
  // (same reasoning as ParallelPredictor's pool sizing).
  if (threads == 0) threads = predict::available_parallelism();
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<std::string> errors(n);
  std::vector<std::thread> pool;
  const unsigned count = std::min<unsigned>(threads, static_cast<unsigned>(n));
  pool.reserve(count);
  for (unsigned t = 0; t < count; ++t) {
    pool.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        try {
          body(i);
        } catch (const std::exception& e) {
          errors[i] = e.what();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  if (failed.load()) {
    for (const auto& e : errors) {
      if (!e.empty()) throw std::runtime_error("parallel task failed: " + e);
    }
  }
}

}  // namespace

std::vector<RunRecord> run_grid(const GridConfig& config, std::ostream* progress) {
  if (config.datasets.empty() || config.ensemble_sizes.empty() ||
      config.depths.empty() || config.impls.empty()) {
    throw std::invalid_argument("run_grid: empty grid dimension");
  }

  // --- Phase 1: data generation + splits (one per dataset). -----------------
  std::vector<data::TrainTestSplit<float>> splits;
  splits.reserve(config.datasets.size());
  for (const auto& name : config.datasets) {
    const auto spec = data::spec_by_name(name);
    auto full = data::generate<float>(spec, config.seed, config.dataset_rows);
    splits.push_back(
        data::train_test_split(full, config.test_fraction, config.seed));
  }

  // --- Phase 2: training (parallel across cells). ---------------------------
  std::vector<Cell> cells(config.datasets.size() * config.ensemble_sizes.size() *
                          config.depths.size());
  {
    std::vector<std::tuple<std::size_t, int, int>> keys;
    keys.reserve(cells.size());
    for (std::size_t d = 0; d < config.datasets.size(); ++d) {
      for (const int nt : config.ensemble_sizes) {
        for (const int depth : config.depths) {
          keys.emplace_back(d, nt, depth);
        }
      }
    }
    parallel_for(cells.size(), config.compile_threads, [&](std::size_t i) {
      const auto [d, nt, depth] = keys[i];
      trees::ForestOptions fo;
      fo.n_trees = nt;
      fo.tree.max_depth = depth;
      fo.tree.max_features = trees::TrainOptions::kSqrtFeatures;
      fo.tree.seed = config.seed + 1000 * i;
      Cell cell;
      cell.dataset = config.datasets[d];
      cell.n_trees = nt;
      cell.depth = depth;
      cell.forest = trees::train_forest(splits[d].train, fo);
      cell.stats = trees::collect_branch_stats(cell.forest, splits[d].train);
      cell.test = &splits[d].test;
      cells[i] = std::move(cell);
    });
  }

  // --- Phase 3: codegen + JIT compilation (parallel across cell x impl). ----
  // Each compiled module is wrapped in a predict::JitPredictor so Phase 4
  // verifies and times every flavor through the same batched API the CLI
  // and benches use.
  const std::size_t n_jobs = cells.size() * config.impls.size();
  std::vector<std::unique_ptr<predict::JitPredictor<float>>> predictors(n_jobs);
  jit::JitOptions jopt;
  jopt.opt_level = config.jit_opt_level;
  parallel_for(n_jobs, config.compile_threads, [&](std::size_t j) {
    const std::size_t cell_idx = j / config.impls.size();
    const Impl impl = config.impls[j % config.impls.size()];
    const Cell& cell = cells[cell_idx];
    const auto code = generate_for(cell, impl, config);
    predictors[j] = std::make_unique<predict::JitPredictor<float>>(
        code, jopt, cell.forest.num_classes(), cell.forest.feature_count());
  });

  // --- Phase 4: verification + timing (serial for stable numbers). ----------
  std::vector<RunRecord> records;
  records.reserve(n_jobs);
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const Cell& cell = cells[c];
    const data::Dataset<float>& test = *cell.test;
    // Reference predictions from the float interpreter backend.
    const auto reference_predictor =
        predict::make_predictor(cell.forest, "float");
    std::vector<std::int32_t> reference(test.rows());
    reference_predictor->predict_batch(test, reference);

    std::vector<std::int32_t> predictions(test.rows());
    double naive_ns = 0.0;
    for (std::size_t k = 0; k < config.impls.size(); ++k) {
      const Impl impl = config.impls[k];
      const std::size_t j = c * config.impls.size() + k;
      const predict::JitPredictor<float>& predictor = *predictors[j];

      RunRecord rec;
      rec.dataset = cell.dataset;
      rec.n_trees = cell.n_trees;
      rec.depth = cell.depth;
      rec.impl = impl;
      rec.test_rows = test.rows();
      rec.total_nodes = cell.forest.total_nodes();
      rec.object_bytes = predictor.object_size();

      if (config.verify_predictions) {
        predictor.predict_batch(test, predictions);
        for (std::size_t r = 0; r < test.rows(); ++r) {
          if (predictions[r] != reference[r]) {
            throw std::runtime_error(
                std::string("run_grid: prediction mismatch: ") + to_string(impl) +
                " on " + cell.dataset + " trees=" + std::to_string(cell.n_trees) +
                " depth=" + std::to_string(cell.depth) + " row=" +
                std::to_string(r));
          }
        }
        rec.verified = true;
      }

      // Timed loop: one full batch over the test rows per iteration (the
      // generated-code backends classify sample by sample under the batch
      // API, so this is the paper's single-sample cost x rows).  The batch
      // boundary's shape + NaN gate runs once here, outside the timer, so
      // the measured ns/sample is traversal cost, not the O(rows x cols)
      // validation scan — keeping the normalized ratios comparable to the
      // paper's.
      predictor.predict_batch(test, predictions);
      const bool exact_width = test.cols() == predictor.feature_count();
      const auto timing = measure(
          [&] {
            if (exact_width) {
              predictor.predict_batch_prevalidated(
                  test.values().data(), test.rows(), predictions.data());
            } else {
              predictor.predict_batch(test, predictions);
            }
          },
          config.min_measure_seconds, config.repetitions);
      rec.ns_per_sample = timing.seconds_per_iteration /
                          static_cast<double>(test.rows()) * 1e9;
      if (impl == Impl::Naive) naive_ns = rec.ns_per_sample;
      records.push_back(rec);
    }
    // Normalize the cell against its Naive measurement (if present).
    if (naive_ns > 0.0) {
      for (std::size_t k = 0; k < config.impls.size(); ++k) {
        auto& rec = records[records.size() - config.impls.size() + k];
        rec.normalized = rec.ns_per_sample / naive_ns;
      }
    }
    // Free the cell's modules before timing the next cell.
    for (std::size_t k = 0; k < config.impls.size(); ++k) {
      predictors[c * config.impls.size() + k].reset();
    }
    if (progress != nullptr) {
      *progress << "[cell " << (c + 1) << "/" << cells.size() << "] "
                << cell.dataset << " trees=" << cell.n_trees
                << " depth=" << cell.depth << " nodes=" << cell.forest.total_nodes()
                << " done\n";
      progress->flush();
    }
  }
  return records;
}

GridConfig default_config() {
  GridConfig config;
  config.datasets = {"eye", "magic", "wine"};
  config.ensemble_sizes = {1, 5};
  config.depths = {1, 5, 10, 15, 20, 30};
  config.impls = {Impl::Naive, Impl::Cags, Impl::Flint, Impl::CagsFlint};
  config.dataset_rows = 3000;
  return config;
}

GridConfig paper_config() {
  GridConfig config;
  config.datasets = {"eye", "gas", "magic", "sensorless", "wine"};
  config.ensemble_sizes = {1, 5, 10, 15, 20, 30, 50, 80, 100};
  config.depths = {1, 5, 10, 15, 20, 30, 50};
  config.impls = {Impl::Naive, Impl::Cags, Impl::Flint, Impl::CagsFlint};
  config.dataset_rows = 8000;
  return config;
}

GridConfig config_from_env() {
  const char* full = std::getenv("FLINT_BENCH_FULL");
  if (full != nullptr && full[0] == '1') return paper_config();
  return default_config();
}

}  // namespace flint::harness
