// timer.hpp is header-only; this TU anchors the module in the library and
// keeps a place for future non-inline additions.
#include "harness/timer.hpp"
