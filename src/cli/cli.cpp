#include "cli/cli.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <set>
#include <stdexcept>
#include <vector>

#include "codegen/asm_arm.hpp"
#include "codegen/asm_x86.hpp"
#include "codegen/cgen_cags.hpp"
#include "codegen/cgen_ifelse.hpp"
#include "codegen/cgen_native.hpp"
#include "data/csv.hpp"
#include "data/split.hpp"
#include "data/synth.hpp"
#include "exec/artifacts/artifacts.hpp"
#include "model/forest_model.hpp"
#include "model/loaders.hpp"
#include "quant/quant_plan.hpp"
#include "model/model_io.hpp"
#include "predict/predictor.hpp"
#include "serve/server.hpp"
#include "trees/forest.hpp"
#include "trees/serialize.hpp"
#include "trees/tree_stats.hpp"
#include "verify/verify.hpp"

namespace flint::cli {

namespace {

/// Minimal --key value parser; positional[0] is the subcommand.
class Args {
 public:
  /// `flags` lists valueless boolean options (e.g. --json): present maps to
  /// "yes" without consuming the next token.
  explicit Args(std::span<const std::string> args,
                std::initializer_list<const char*> flags = {}) {
    const std::set<std::string> flag_names(flags.begin(), flags.end());
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& a = args[i];
      if (a.rfind("--", 0) == 0) {
        const std::string key = a.substr(2);
        if (flag_names.count(key)) {
          options_[key] = "yes";
        } else if (i + 1 >= args.size()) {
          throw std::invalid_argument("missing value for --" + key);
        } else {
          options_[key] = args[++i];
        }
      } else {
        positional_.push_back(a);
      }
    }
  }

  [[nodiscard]] std::string require(const std::string& key) const {
    const auto it = options_.find(key);
    if (it == options_.end()) {
      throw std::invalid_argument("missing required option --" + key);
    }
    mark_used(key);
    return it->second;
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = options_.find(key);
    mark_used(key);
    return it == options_.end() ? fallback : it->second;
  }

  [[nodiscard]] long get_long(const std::string& key, long fallback) const {
    const auto it = options_.find(key);
    mark_used(key);
    if (it == options_.end()) return fallback;
    std::size_t pos = 0;
    long v = 0;
    try {
      v = std::stol(it->second, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != it->second.size() || it->second.empty()) {
      throw std::invalid_argument("option --" + key + " expects an integer, got '" +
                                  it->second + "'");
    }
    return v;
  }

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Rejects typo'd options: every provided --key must have been consumed.
  void check_all_used() const {
    for (const auto& [key, value] : options_) {
      if (!used_.count(key)) {
        throw std::invalid_argument("unknown option --" + key);
      }
    }
  }

 private:
  void mark_used(const std::string& key) const { used_.insert(key); }

  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> used_;
};

int cmd_gen(const Args& args, std::ostream& out) {
  const auto spec = data::spec_by_name(args.require("dataset"));
  const auto rows = static_cast<std::size_t>(args.get_long("rows", 0));
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 42));
  const std::string path = args.require("out");
  args.check_all_used();
  const auto dataset = data::generate<float>(spec, seed, rows);
  data::save_csv(path, dataset);
  out << "wrote " << dataset.rows() << " rows x " << dataset.cols()
      << " features (" << spec.classes << " classes) to " << path << "\n";
  return 0;
}

int cmd_train(const Args& args, std::ostream& out) {
  const auto dataset = data::load_csv<float>(args.require("data"));
  trees::ForestOptions options;
  options.n_trees = static_cast<int>(args.get_long("trees", 10));
  options.tree.max_depth = static_cast<int>(args.get_long("depth", 10));
  options.tree.seed = static_cast<std::uint64_t>(args.get_long("seed", 42));
  options.tree.max_features =
      args.get("features", "sqrt") == "all" ? 0
                                            : trees::TrainOptions::kSqrtFeatures;
  const std::string model_path = args.require("out");
  args.check_all_used();
  const auto forest = trees::train_forest(dataset, options);
  trees::save_forest(model_path, forest);
  out << "trained " << forest.size() << " trees (" << forest.total_nodes()
      << " nodes, max depth " << forest.max_depth() << ") on "
      << dataset.rows() << " rows; training accuracy "
      << trees::accuracy(forest, dataset) << "\n"
      << "model saved to " << model_path << "\n";
  return 0;
}

int cmd_predict(const Args& args, std::ostream& out) {
  const auto model = model::load_any_model<float>(args.require("model"));
  const auto dataset = data::load_csv<float>(args.require("data"));
  const std::string engine_name = args.get("engine", "flint");
  const bool print_labels = args.get("labels", "no") == "yes";
  const std::string output_mode = args.get("output", "classes");
  const std::string stats_csv = args.get("train-data", "");
  const long threads = args.get_long("threads", 1);
  const long batch = args.get_long("batch", 64);
  if (threads < 0 || threads > 4096) {
    // Upper bound also guards the long -> unsigned narrowing below, which
    // would otherwise silently wrap (e.g. 2^32 -> 0 = "all cores").
    throw std::invalid_argument(
        "--threads must be in [0, 4096] (0 = all cores)");
  }
  if (batch < 1) {
    throw std::invalid_argument("--batch must be >= 1");
  }
  if (output_mode != "classes" && output_mode != "scores") {
    throw std::invalid_argument("--output must be classes or scores");
  }
  if (output_mode == "scores" && model.is_vote()) {
    throw std::invalid_argument(
        "--output scores needs an additive leaf-value model (GBDT, "
        "soft-vote, regression); this is a majority-vote forest — see "
        "docs/MODEL_FORMATS.md");
  }
  if (output_mode == "classes" && !model.is_classifier()) {
    throw std::invalid_argument(
        "model '" + model.describe() +
        "' is a regression model; use --output scores");
  }
  predict::PredictorOptions popt;
  popt.threads = static_cast<unsigned>(threads);
  popt.block_size = static_cast<std::size_t>(batch);
  args.check_all_used();
  if (dataset.rows() == 0) {
    // An empty CSV is a valid (if useless) input.  It never learns a column
    // count, so the width check below would misreport it, and the accuracy
    // quotient would divide by zero.  Still reject unknown backend names —
    // by vocabulary, not by constructing the predictor, which for jit:*
    // would run the whole codegen + compile + dlopen pipeline (and for
    // jit:cags-* load the training CSV for branch stats) just to print
    // "n/a".
    if (!predict::is_known_backend(engine_name)) {
      std::string msg = "unknown backend '" + engine_name + "'";
      if (const auto near = predict::suggest_backend(engine_name);
          !near.empty()) {
        msg += " (did you mean '" + near + "'?)";
      }
      throw std::invalid_argument(msg + " (" + predict::backend_help() + ")");
    }
    if (output_mode == "scores") {
      out << "scored 0 rows x " << model.n_outputs << " outputs (engine: "
          << engine_name << ")\n";
    } else {
      out << "accuracy n/a over 0 rows (engine: " << engine_name << ")\n";
    }
    return 0;
  }
  std::vector<trees::BranchStats> stats;
#ifdef FLINT_LEGACY_JIT
  // The legacy CAGS backends need branch statistics from training data
  // (score models route legacy jit:* to the interpreter fallback, no
  // stats).  jit:layout needs nothing extra — the compact image carries
  // everything the generator reads.
  if (model.is_vote() && engine_name.rfind("jit:cags", 0) == 0) {
    if (stats_csv.empty()) {
      throw std::invalid_argument(
          "--engine " + engine_name + " needs --train-data <csv> for branch statistics");
    }
    const auto train = data::load_csv<float>(stats_csv);
    if (train.cols() < model.forest.feature_count()) {
      throw std::invalid_argument(
          "--train-data has fewer features than the model");
    }
    stats = trees::collect_branch_stats(model.forest, train);
    popt.branch_stats = stats;
  }
#else
  (void)stats;
  (void)stats_csv;
#endif
  if (dataset.cols() < model.forest.feature_count()) {
    throw std::invalid_argument("data has fewer features than the model");
  }

  const auto predictor = predict::make_predictor(model, engine_name, popt);
  if (output_mode == "scores") {
    const auto k = static_cast<std::size_t>(predictor->num_outputs());
    std::vector<float> scores(dataset.rows() * k);
    predictor->predict_scores(dataset, scores);
    out.precision(9);  // round-trip float precision for downstream diffing
    for (std::size_t r = 0; r < dataset.rows(); ++r) {
      for (std::size_t j = 0; j < k; ++j) {
        out << (j ? "," : "") << scores[r * k + j];
      }
      out << "\n";
    }
    out << "scored " << dataset.rows() << " rows x " << k
        << " outputs (engine: " << predictor->name() << ")\n";
    return 0;
  }
  std::vector<std::int32_t> predictions(dataset.rows());
  predictor->predict_batch(dataset, predictions);

  std::size_t hits = 0;
  for (std::size_t r = 0; r < dataset.rows(); ++r) {
    if (predictions[r] == dataset.label(r)) ++hits;
    if (print_labels) out << predictions[r] << "\n";
  }
  out << "accuracy " << (static_cast<double>(hits) /
                         static_cast<double>(dataset.rows()))
      << " over " << dataset.rows() << " rows (engine: " << engine_name << ")\n";
  return 0;
}

int cmd_convert(const Args& args, std::ostream& out) {
  const std::string in_path = args.require("in");
  const std::string out_path = args.require("out");
  const std::string format_name = args.get("format", "auto");
  args.check_all_used();
  model::ForestModel<float> model;
  if (format_name == "auto") {
    model = model::load_external_model<float>(in_path);
  } else if (format_name == "native") {
    model = model::load_external_model<float>(in_path,
                                              model::ModelFormat::Native);
  } else if (format_name == "xgboost-json") {
    model = model::load_external_model<float>(in_path,
                                              model::ModelFormat::XgboostJson);
  } else if (format_name == "lightgbm-text") {
    model = model::load_external_model<float>(
        in_path, model::ModelFormat::LightgbmText);
  } else if (format_name == "sklearn-json") {
    model = model::load_external_model<float>(in_path,
                                              model::ModelFormat::SklearnJson);
  } else {
    throw std::invalid_argument(
        "unknown --format '" + format_name +
        "' (auto|native|xgboost-json|lightgbm-text|sklearn-json)");
  }
  model::save_model(out_path, model);
  out << "converted " << model.describe() << ", "
      << model.forest.total_nodes() << " nodes, "
      << model.forest.feature_count() << " features\n"
      << "model saved to " << out_path << "\n";
  return 0;
}

int cmd_codegen(const Args& args, std::ostream& out) {
  const auto forest = trees::load_forest<float>(args.require("model"));
  const std::string flavor = args.get("flavor", "ifelse-flint");
  const std::string out_dir = args.require("out");
  const std::string stats_csv = args.get("train-data", "");
  codegen::CGenOptions options;
  options.prefix = args.get("prefix", "forest");
  options.kernel_budget_bytes =
      static_cast<int>(args.get_long("kernel-budget", 4096));
  args.check_all_used();

  codegen::GeneratedCode code;
  if (flavor == "ifelse-float" || flavor == "ifelse-flint") {
    options.flint = flavor == "ifelse-flint";
    code = codegen::generate_ifelse(forest, options);
  } else if (flavor == "cags-float" || flavor == "cags-flint") {
    if (stats_csv.empty()) {
      throw std::invalid_argument(
          "CAGS flavors need --train-data <csv> for branch statistics");
    }
    const auto train = data::load_csv<float>(stats_csv);
    const auto stats = trees::collect_branch_stats(forest, train);
    options.flint = flavor == "cags-flint";
    code = codegen::generate_cags(forest, stats, options);
  } else if (flavor == "native-float" || flavor == "native-flint") {
    options.flint = flavor == "native-flint";
    code = codegen::generate_native(forest, options);
  } else if (flavor == "asm-x86") {
    code = codegen::generate_asm_x86(forest, options);
  } else if (flavor == "asm-armv8") {
    code = codegen::generate_asm_armv8(forest, options);
  } else {
    throw std::invalid_argument(
        "unknown flavor '" + flavor +
        "' (ifelse-float|ifelse-flint|cags-float|cags-flint|native-float|"
        "native-flint|asm-x86|asm-armv8)");
  }

  std::filesystem::create_directories(out_dir);
  for (const auto& file : code.files) {
    const auto path = std::filesystem::path(out_dir) / file.name;
    std::ofstream f(path);
    if (!f) throw std::runtime_error("cannot write " + path.string());
    f << file.content;
    out << "wrote " << path.string() << " (" << file.content.size()
        << " bytes)\n";
  }
  out << "entry point: int " << code.classify_symbol << "(const float* pX)\n";
  return 0;
}

/// Parses one serve-protocol request line: samples separated by ';',
/// features by ','.  Throws std::invalid_argument on malformed floats or
/// ragged sample widths (the server's own shape gate sees only the total).
std::vector<float> parse_request_line(const std::string& line,
                                      std::size_t& n_samples) {
  std::vector<float> features;
  n_samples = 0;
  std::size_t sample_width = 0;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const std::size_t sample_end = std::min(line.find(';', pos), line.size());
    std::size_t width = 0;
    std::size_t cursor = pos;
    while (cursor < sample_end) {
      const std::size_t value_end =
          std::min(line.find(',', cursor), sample_end);
      const std::string token = line.substr(cursor, value_end - cursor);
      std::size_t parsed = 0;
      float value = 0.0f;
      try {
        value = std::stof(token, &parsed);
      } catch (const std::exception&) {
        parsed = 0;
      }
      if (parsed != token.size() || token.empty()) {
        throw std::invalid_argument("malformed feature value '" + token + "'");
      }
      features.push_back(value);
      ++width;
      cursor = value_end + 1;
    }
    if (width > 0) {
      if (sample_width == 0) {
        sample_width = width;
      } else if (width != sample_width) {
        throw std::invalid_argument(
            "ragged request: sample " + std::to_string(n_samples) + " has " +
            std::to_string(width) + " features, previous samples " +
            std::to_string(sample_width));
      }
      ++n_samples;
    }
    pos = sample_end + 1;
  }
  if (n_samples == 0) {
    throw std::invalid_argument("empty request line");
  }
  return features;
}

int cmd_serve(const Args& args, std::istream& in, std::ostream& out) {
  const std::string model_path = args.require("model");
  const std::string engine_name = args.get("engine", "layout:auto");
  const long max_batch = args.get_long("max-batch", 1024);
  const long max_delay_us = args.get_long("max-delay-us", 200);
  const long workers = args.get_long("workers", 1);
  const long threads = args.get_long("threads", 1);
  const long batch = args.get_long("batch", 256);
  const long deadline_us = args.get_long("deadline-us", 0);
  const std::string priority_name = args.get("priority", "normal");
  const std::string shed_policy_name = args.get("shed-policy", "reject-new");
  if (max_batch < 1) throw std::invalid_argument("--max-batch must be >= 1");
  if (max_delay_us < 0 || max_delay_us > 10'000'000) {
    throw std::invalid_argument("--max-delay-us must be in [0, 10000000]");
  }
  if (deadline_us < 0 || deadline_us > 3'600'000'000L) {
    throw std::invalid_argument(
        "--deadline-us must be in [0, 3600000000] (0 = no deadline)");
  }
  if (workers < 0 || workers > 4096) {
    throw std::invalid_argument("--workers must be in [0, 4096] (0 = all cores)");
  }
  if (threads < 0 || threads > 4096) {
    throw std::invalid_argument("--threads must be in [0, 4096] (0 = all cores)");
  }
  if (batch < 1) throw std::invalid_argument("--batch must be >= 1");
  serve::SubmitOptions subopt;
  subopt.deadline_us = static_cast<std::uint64_t>(deadline_us);
  if (priority_name == "high") {
    subopt.priority = serve::Priority::kHigh;
  } else if (priority_name == "normal") {
    subopt.priority = serve::Priority::kNormal;
  } else if (priority_name == "low") {
    subopt.priority = serve::Priority::kLow;
  } else {
    throw std::invalid_argument("--priority must be high, normal, or low");
  }
  serve::ShedPolicy shed_policy = serve::ShedPolicy::kRejectNew;
  if (shed_policy_name == "priority-evict") {
    shed_policy = serve::ShedPolicy::kPriorityEvict;
  } else if (shed_policy_name != "reject-new") {
    throw std::invalid_argument(
        "--shed-policy must be reject-new or priority-evict");
  }
  args.check_all_used();

  predict::PredictorOptions popt;
  popt.threads = static_cast<unsigned>(threads);
  popt.block_size = static_cast<std::size_t>(batch);
  const auto load = [&](const std::string& path) -> serve::PredictorPtr {
    const auto model = model::load_any_model<float>(path);
    // Static verification before the registry's shared_ptr flip: a corrupt
    // hot-swap is rejected here, with node-level diagnostics, while the
    // previous version keeps serving.
    const auto report = verify::verify_model(model);
    if (!report.ok()) {
      const auto& d = report.diagnostics.front();
      throw std::invalid_argument(
          "model failed verification (" + d.check +
          (d.node >= 0 ? " node " + std::to_string(d.node) : "") + ": " +
          d.message + "; " +
          std::to_string(report.diagnostics.size() + report.suppressed) +
          " total — run flint-forest verify " + path + ")");
    }
    if (!model.is_classifier()) {
      throw std::invalid_argument(
          "serve needs a classifier; '" + model.describe() +
          "' is a regression model (score serving: predict --output scores)");
    }
    return serve::PredictorPtr(
        predict::make_predictor(model, engine_name, popt));
  };

  serve::ServeOptions sopt;
  sopt.max_batch = static_cast<std::size_t>(max_batch);
  sopt.max_delay_us = static_cast<std::uint32_t>(max_delay_us);
  sopt.workers = static_cast<unsigned>(workers);
  sopt.shed_policy = shed_policy;
  serve::InferenceServer server(sopt);
  server.registry().install("default", load(model_path));
  out << "serving 'default' v1 (engine " << engine_name << ", max_batch "
      << max_batch << ", max_delay_us " << max_delay_us << ", workers "
      << server.worker_count() << ")\n"
      << "protocol: 'f1,f2,...[;f1,f2,...]' predicts | 'swap <model>' | "
         "'stats' | 'quit'\n";

  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input
    if (line.empty() || line[0] == '#') continue;
    if (line == "quit") break;
    if (line == "stats") {
      out << serve::serve_metrics_json(server.metrics()) << "\n";
      continue;
    }
    if (line.rfind("swap ", 0) == 0) {
      try {
        const auto version =
            server.registry().install("default", load(line.substr(5)));
        out << "ok swapped 'default' to v" << version << "\n";
      } catch (const std::exception& e) {
        out << "err " << e.what() << "\n";
      }
      continue;
    }
    try {
      std::size_t n_samples = 0;
      const auto features = parse_request_line(line, n_samples);
      auto future = server.submit(features, n_samples, "default", subopt);
      const auto predictions = future.get();
      out << "ok ";
      for (std::size_t i = 0; i < predictions.size(); ++i) {
        out << (i ? "," : "") << predictions[i];
      }
      out << "\n";
    } catch (const std::exception& e) {
      out << "err " << e.what() << "\n";
    }
  }
  server.stop();
  const auto m = server.metrics();
  out << "served " << m.requests << " requests (" << m.samples
      << " samples) in " << m.batches << " batches; p99 "
      << m.p99_latency_us << " us\n";
  return 0;
}

int cmd_verify(const Args& args, std::ostream& out) {
  // `verify <model>` and `verify --model <model>` both work; --json switches
  // to the machine-readable report (one JSON object, diagnostics included).
  std::string path = args.get("model", "");
  const bool json = args.get("json", "no") != "no";
  if (path.empty()) {
    if (args.positional().empty()) {
      throw std::invalid_argument("verify needs a model path");
    }
    path = args.positional().front();
  }
  args.check_all_used();
  const auto report = verify::verify_file(path);
  if (json) {
    out << verify::to_json(report) << "\n";
  } else {
    out << path << ":\n";
    verify::write_human(out, report);
  }
  return report.ok() ? 0 : 1;
}

int cmd_inspect(const Args& args, std::ostream& out) {
  const auto model = model::load_any_model<float>(args.require("model"));
  const bool json = args.get("json", "no") != "no";
  args.check_all_used();
  const auto& forest = model.forest;

  // The auto-tuner's verdict plus the 4-byte image's quantization plan:
  // which features keep the bit-exact rank contract, which fall back to
  // the calibrated affine map, and the measured per-feature fitness.
  exec::artifacts::ExecArtifacts<float> art(forest);
  std::string q4_why;
  const exec::layout::Q4Forest<float>* q4 =
      art.try_q4_at(art.plan().hot_depth, &q4_why);

  if (json) {
    const auto escape = [](const std::string& s) {
      std::string r;
      for (const char c : s) {
        if (c == '"' || c == '\\') r += '\\';
        r += c;
      }
      return r;
    };
    out << "{\"model\": \"" << escape(model.describe()) << "\", \"trees\": "
        << forest.size() << ", \"classes\": "
        << (model.is_vote() ? forest.num_classes() : model.num_classes())
        << ", \"features\": " << forest.feature_count()
        << ", \"nodes\": " << forest.total_nodes() << ", \"plan\": \""
        << escape(art.plan().describe()) << "\", \"quant\": ";
    if (q4 != nullptr) {
      out << quant::report_json(q4->qplan);
    } else {
      out << "null, \"quant_error\": \"" << escape(q4_why) << "\"";
    }
    out << "}\n";
    return 0;
  }

  out << "model: " << model.describe() << "\n"
      << "forest: " << forest.size() << " trees, "
      << (model.is_vote() ? forest.num_classes() : model.num_classes())
      << " classes, " << forest.feature_count() << " features, "
      << forest.total_nodes() << " nodes\n";
  if (!model.is_vote()) {
    out << "leaf values: " << model.leaf_rows() << " rows x "
        << model.n_outputs << " outputs, link "
        << model::to_string(model.aggregation.link) << "\n";
  }
  out << "plan: " << art.plan().describe() << "\n";
  if (q4 != nullptr) {
    const auto& plan = q4->qplan;
    out << "quant: " << plan.describe() << " ("
        << (plan.all_exact()
                ? "bit-exact"
                : plan.accuracy_contract() ? "threshold-preserving affine"
                                           : "lossy affine")
        << ")\n";
    for (std::size_t f = 0; f < plan.features.size(); ++f) {
      const auto& fq = plan.features[f];
      if (fq.exact()) continue;
      out << "  feature " << f << ": affine, " << fq.quantized_distinct << "/"
          << fq.distinct << " thresholds survive (fitness " << fq.fitness()
          << ")\n";
    }
  } else {
    out << "quant: not packable at 4 bytes (" << q4_why << ")\n";
  }
  for (std::size_t t = 0; t < forest.size(); ++t) {
    const auto shape = trees::tree_shape(forest.tree(t));
    out << "  tree " << t << ": " << shape.nodes << " nodes, " << shape.leaves
        << " leaves, depth " << shape.depth << ", " << shape.negative_splits
        << " negative splits\n";
  }
  return 0;
}

}  // namespace

std::string usage() {
  // The backend listing is composed from the predictor's own vocabulary so
  // the help text can never drift from make_predictor's dispatch (retired
  // names disappear here the moment the factory stops accepting them).
  std::string backends;
  {
    std::vector<std::string> names = predict::interpreter_backends();
    names.emplace_back("flint");
    for (const auto& list : {predict::simd_backends(),
                             predict::layout_backends(),
                             predict::quant_backends(),
                             predict::jit_backends()}) {
      names.insert(names.end(), list.begin(), list.end());
    }
    std::string line = "           backends: ";
    const std::string cont = "                     ";
    bool first = true;
    for (const auto& n : names) {
      if (!first && line.size() + n.size() + 1 > 72) {
        backends += line + "\n";
        line = cont;
        first = true;
      }
      if (!first) line += " ";
      line += n;
      first = false;
    }
    backends += line + "\n";
  }
  return
      "flint-forest — random forest training, inference and FLInt code "
      "generation\n"
      "\n"
      "usage: flint-forest <command> [options]\n"
      "\n"
      "commands:\n"
      "  gen      --dataset <eye|gas|magic|sensorless|wine> --out <csv>\n"
      "           [--rows N] [--seed N]\n"
      "  train    --data <csv> --out <model> [--trees N] [--depth N]\n"
      "           [--seed N] [--features sqrt|all]\n"
      "  convert  --in <model-file> --out <model>\n"
      "           [--format auto|native|xgboost-json|lightgbm-text|\n"
      "                     sklearn-json]\n"
      "           imports an externally trained ensemble (XGBoost JSON\n"
      "           dump, LightGBM text model, sklearn-forest JSON) into the\n"
      "           native v2 format with bit-exact thresholds; 'auto'\n"
      "           sniffs the format from content (docs/MODEL_FORMATS.md)\n"
      "  predict  --model <model> --data <csv>\n"
      "           [--engine <backend>] [--threads N] [--batch N]\n"
      "           [--labels yes|no] [--output classes|scores]\n"
      "           [--train-data <csv>]\n" +
      backends +
      "           (--threads 0 = all cores; --batch = samples per cache\n"
      "           block; jit:layout compiles a model-specialized module\n"
      "           from the compact layout image, reused via a content-hash\n"
      "           compile cache; --output scores prints per-sample score\n"
      "           vectors for additive leaf-value models — GBDT margins/\n"
      "           probabilities, soft-vote averages, regression values;\n"
      "           see docs/ARCHITECTURE.md and docs/MODEL_FORMATS.md)\n"
      "  serve    --model <model> [--engine <backend>] [--max-batch N]\n"
      "           [--max-delay-us N] [--workers N] [--threads N] [--batch N]\n"
      "           [--deadline-us N] [--priority high|normal|low]\n"
      "           [--shed-policy reject-new|priority-evict]\n"
      "           long-lived micro-batching server over a stdin line\n"
      "           protocol: 'f1,f2,...[;f1,f2,...]' predicts a request,\n"
      "           'swap <model>' hot-swaps, 'stats' prints one JSON metrics\n"
      "           line (health, shed/deadline-miss counters), 'quit' drains\n"
      "           and exits; --deadline-us bounds each request's end-to-end\n"
      "           latency (0 = none), --priority tags requests for the\n"
      "           admission ladder, --shed-policy picks overload behaviour\n"
      "           (see docs/ARCHITECTURE.md \"Serving\")\n"
      "  codegen  --model <model> --out <dir> [--flavor <flavor>]\n"
      "           [--prefix name] [--train-data <csv>] [--kernel-budget N]\n"
      "           flavors: ifelse-float ifelse-flint cags-float cags-flint\n"
      "                    native-float native-flint asm-x86 asm-armv8\n"
      "  verify   <model> [--json]\n"
      "           static forest verifier: checks the invariant catalog\n"
      "           (offsets/reachability, leaf tags, payload bounds, rank\n"
      "           monotonicity + exact threshold narrowing, NaN/categorical\n"
      "           flag coherence, aggregation descriptors) over the model\n"
      "           and every packed artifact without running a prediction;\n"
      "           exit 0 = verified, 1 = diagnostics printed (--json for\n"
      "           machine-readable output; see docs/VERIFICATION.md)\n"
      "  inspect  --model <model> [--json]\n"
      "           model/forest summary plus the layout auto-tuner's plan\n"
      "           and the 4-byte quantization report: per-feature exact vs\n"
      "           affine contract and threshold-survival fitness (--json\n"
      "           for the machine-readable per-feature report)\n";
}

int run(std::span<const std::string> args, std::istream& in,
        std::ostream& out, std::ostream& err) {
  if (args.empty() || args[0] == "--help" || args[0] == "help") {
    out << usage();
    return args.empty() ? 2 : 0;
  }
  const std::string command = args[0];
  const std::span<const std::string> rest = args.subspan(1);
  try {
    const Args parsed(rest, command == "verify" || command == "inspect"
                                ? std::initializer_list<const char*>{"json"}
                                : std::initializer_list<const char*>{});
    if (command == "gen") return cmd_gen(parsed, out);
    if (command == "train") return cmd_train(parsed, out);
    if (command == "convert") return cmd_convert(parsed, out);
    if (command == "predict") return cmd_predict(parsed, out);
    if (command == "serve") return cmd_serve(parsed, in, out);
    if (command == "verify") return cmd_verify(parsed, out);
    if (command == "codegen") return cmd_codegen(parsed, out);
    if (command == "inspect") return cmd_inspect(parsed, out);
    err << "unknown command '" << command << "'\n\n" << usage();
    return 2;
  } catch (const std::exception& e) {
    err << "flint-forest " << command << ": " << e.what() << "\n";
    return 2;
  }
}

int run(std::span<const std::string> args, std::ostream& out,
        std::ostream& err) {
  return run(args, std::cin, out, err);
}

}  // namespace flint::cli
