// cli — the `flint-forest` command-line tool, as a testable library.
//
// Subcommands mirror the arch-forest workflow the paper builds on:
//
//   gen      synthesize a UCI-equivalent dataset to CSV
//   train    train a random forest from CSV and save the model
//   predict  run a model over CSV rows with a selectable engine
//   codegen  emit C or assembly for a model (all five flavors + both ISAs)
//   inspect  structural report of a saved model
//
// `run` is the whole tool: it parses `args` (excluding argv[0]), reads
// interactive input (the `serve` line protocol) from `in`, writes human
// output to `out`, diagnostics to `err`, and returns the process exit
// code.  main() in tools/flint_forest_main.cpp is a two-line wrapper, so
// every code path is exercisable in-process by the test suite.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

namespace flint::cli {

/// Entry point; never throws (errors become exit code 2 + message on err).
/// `in` feeds the interactive subcommands (serve's line protocol).
[[nodiscard]] int run(std::span<const std::string> args, std::istream& in,
                      std::ostream& out, std::ostream& err);

/// Convenience overload reading interactive input from std::cin.
[[nodiscard]] int run(std::span<const std::string> args, std::ostream& out,
                      std::ostream& err);

/// The --help text (also printed on unknown commands).
[[nodiscard]] std::string usage();

}  // namespace flint::cli
