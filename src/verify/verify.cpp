#include "verify/verify.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>

#include "exec/artifacts/artifacts.hpp"
#include "exec/interpreter.hpp"
#include "exec/layout/compact.hpp"
#include "exec/layout/plan.hpp"
#include "exec/simd/soa.hpp"
#include "model/loaders.hpp"

namespace flint::verify {

void Report::add(Diagnostic d) {
  if (diagnostics.size() >= kMaxDiagnostics) {
    ++suppressed;
    return;
  }
  diagnostics.push_back(std::move(d));
}

namespace {

/// Diagnostic emitter bound to one artifact name.
class Sink {
 public:
  Sink(Report& report, std::string artifact)
      : report_(report), artifact_(std::move(artifact)) {}

  void add(const char* check, std::int64_t tree, std::int64_t node,
           std::string message) {
    ++count_;
    report_.add({check, artifact_, tree, node, std::move(message)});
  }

  [[nodiscard]] bool clean() const noexcept { return count_ == 0; }

 private:
  Report& report_;
  std::string artifact_;
  std::size_t count_ = 0;
};

/// The packers' -0.0 -> +0.0 split rewrite (core::encode_threshold_le
/// semantics; +0.0 == -0.0 under IEEE so the comparison form is exact).
template <typename T>
T normalize_zero(T split) {
  return split == T{0} ? T{0} : split;
}

/// Rank of `split` in its feature's key table IF the exactness round trip
/// holds (the split's radix key present at its own rank); nullopt when the
/// table cannot represent this split — the invariant every narrowed node
/// relies on.
template <typename T>
std::optional<std::int32_t> checked_rank(
    const exec::layout::KeyTable<T>& table, T split) {
  const auto key = core::to_radix_key(normalize_zero(split));
  const auto r = table.rank_of_key(key);
  if (static_cast<std::size_t>(r) >= table.size() ||
      table.sorted[static_cast<std::size_t>(r)] != key) {
    return std::nullopt;
  }
  return r;
}

/// True when a categorical bitset can never match any input (no set bit).
bool cat_set_unsatisfiable(std::span<const std::uint32_t> words) {
  for (const auto w : words) {
    if (w != 0) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Model-level checks.
// ---------------------------------------------------------------------------

/// Structural checks over one tree; `payload_limit` bounds leaf payloads
/// (classes for vote models, leaf-value rows for score models).  Returns
/// false when child links are out of range — the reachability walk (and any
/// packing) would be unsafe.
template <typename T>
bool verify_tree_structure(const trees::Tree<T>& tree, std::int64_t t,
                           std::int64_t payload_limit, Sink& s,
                           Report& report) {
  const auto n_nodes = static_cast<std::int64_t>(tree.size());
  bool links_ok = true;
  for (std::int64_t i = 0; i < n_nodes; ++i) {
    const auto& n = tree.node(static_cast<std::int32_t>(i));
    ++report.nodes_checked;
    if ((n.flags & ~(trees::kNodeDefaultLeft | trees::kNodeCategorical)) !=
        0) {
      s.add("tree.flags_known", t, i,
            "unknown flag bits " + std::to_string(n.flags));
    }
    if (n.is_leaf()) {
      if (n.left != trees::kNoChild || n.right != trees::kNoChild) {
        s.add("tree.leaf_links", t, i, "leaf has child links");
        links_ok = false;
      }
      if (n.prediction < 0 || n.prediction >= payload_limit) {
        s.add("tree.leaf_payload", t, i,
              "leaf payload " + std::to_string(n.prediction) +
                  " outside [0, " + std::to_string(payload_limit) + ")");
      }
      if (n.flags != 0) {
        s.add("tree.leaf_flags", t, i,
              "leaf carries routing flags " + std::to_string(n.flags));
      }
      if (n.cat_slot != -1) {
        s.add("tree.cat_slot", t, i, "leaf carries a category slot");
      }
      continue;
    }
    if (n.left == trees::kNoChild || n.right == trees::kNoChild) {
      s.add("tree.inner_children", t, i, "inner node missing a child");
      links_ok = false;
    } else if (n.left < 0 || n.left >= n_nodes || n.right < 0 ||
               n.right >= n_nodes) {
      s.add("tree.child_range", t, i,
            "child link (" + std::to_string(n.left) + ", " +
                std::to_string(n.right) + ") outside [0, " +
                std::to_string(n_nodes) + ")");
      links_ok = false;
    }
    if (n.feature >= static_cast<std::int64_t>(tree.feature_count())) {
      s.add("tree.feature_range", t, i,
            "feature " + std::to_string(n.feature) + " outside [0, " +
                std::to_string(tree.feature_count()) + ")");
    }
    if (n.is_categorical()) {
      if (n.cat_slot < 0 || n.cat_slot >= tree.cat_slot_count()) {
        s.add("tree.cat_slot", t, i,
              "category slot " + std::to_string(n.cat_slot) +
                  " outside [0, " + std::to_string(tree.cat_slot_count()) +
                  ")");
      } else if (cat_set_unsatisfiable(tree.cat_set(n.cat_slot))) {
        s.add("tree.cat_set_empty", t, i,
              "categorical split can never match (empty bitset)");
      }
    } else {
      if (n.cat_slot != -1) {
        s.add("tree.cat_slot", t, i, "numeric node carries a category slot");
      }
      if (std::isnan(n.split)) {
        s.add("tree.split_nan", t, i,
              "numeric split is NaN (no integer rank; breaks narrowing and "
              "missing-value routing)");
      }
    }
  }
  if (!links_ok) return false;

  // Reachability / single-visit walk from the root (node 0).
  std::vector<std::uint8_t> seen(tree.size(), 0);
  std::vector<std::int32_t> stack{0};
  bool cycle = false;
  while (!stack.empty() && !cycle) {
    const std::int32_t i = stack.back();
    stack.pop_back();
    if (seen[static_cast<std::size_t>(i)]) {
      s.add("tree.cycle", t, i,
            "node reached twice (cycle or shared subtree)");
      cycle = true;
      break;
    }
    seen[static_cast<std::size_t>(i)] = 1;
    const auto& n = tree.node(i);
    if (!n.is_leaf()) {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  if (!cycle) {
    for (std::int64_t i = 0; i < n_nodes; ++i) {
      if (!seen[static_cast<std::size_t>(i)]) {
        s.add("tree.unreachable", t, i, "node not reachable from the root");
        break;  // one per tree: the rest of the orphan cluster follows it
      }
    }
  }
  return !cycle;
}

template <typename T>
void verify_model_semantics(const model::ForestModel<T>& m, Sink& s) {
  using model::AggregationMode;
  using model::LeafKind;
  using model::Link;
  const bool kind_known = m.leaf_kind == LeafKind::ClassId ||
                          m.leaf_kind == LeafKind::ScoreVector ||
                          m.leaf_kind == LeafKind::Scalar;
  const bool mode_known = m.aggregation.mode == AggregationMode::ArgmaxVotes ||
                          m.aggregation.mode == AggregationMode::SumScores;
  const bool link_known = m.aggregation.link == Link::None ||
                          m.aggregation.link == Link::Sigmoid ||
                          m.aggregation.link == Link::Softmax;
  if (!kind_known || !mode_known || !link_known) {
    s.add("model.aggregation", -1, -1,
          "leaf kind / aggregation mode / link enum value out of range");
    return;
  }
  if (m.zero_as_missing && !m.handles_missing) {
    s.add("model.missing", -1, -1,
          "zero_as_missing implies handles_missing");
  }
  if (m.leaf_kind == LeafKind::ClassId) {
    if (m.n_outputs != 0 || !m.leaf_values.empty()) {
      s.add("model.outputs", -1, -1,
            "vote model carries score outputs / leaf values");
    }
    if (m.aggregation.mode != AggregationMode::ArgmaxVotes ||
        m.aggregation.link != Link::None) {
      s.add("model.aggregation", -1, -1,
            "vote leaves require argmax aggregation with no link");
    }
    if (!m.aggregation.base_score.empty()) {
      s.add("model.base_score", -1, -1, "vote model carries a base score");
    }
    if (m.forest.num_classes() < 1) {
      s.add("forest.num_classes", -1, -1,
            "vote forest declares " + std::to_string(m.forest.num_classes()) +
                " classes");
    }
    return;
  }
  // Score kinds (ScoreVector / Scalar).
  if (m.aggregation.mode != AggregationMode::SumScores) {
    s.add("model.aggregation", -1, -1,
          "score leaves require sum aggregation");
  }
  if (m.n_outputs < 1 ||
      (m.leaf_kind == LeafKind::Scalar && m.n_outputs != 1)) {
    s.add("model.outputs", -1, -1,
          "score model declares " + std::to_string(m.n_outputs) +
              " outputs");
    return;  // row/shape arithmetic below needs a sane k
  }
  const auto k = static_cast<std::size_t>(m.n_outputs);
  if (m.leaf_values.empty() || m.leaf_values.size() % k != 0) {
    s.add("model.leaf_values_shape", -1, -1,
          "leaf_values size " + std::to_string(m.leaf_values.size()) +
              " is not a positive multiple of " + std::to_string(k));
    return;
  }
  const auto rows = static_cast<std::int64_t>(m.leaf_values.size() / k);
  if (static_cast<std::int64_t>(m.forest.num_classes()) != rows) {
    // The structural class count doubles as the payload-range gate every
    // engine applies; for score kinds it must equal the row count.
    s.add("forest.num_classes", -1, -1,
          "structural num_classes " + std::to_string(m.forest.num_classes()) +
              " != " + std::to_string(rows) + " leaf-value rows");
  }
  if (!m.aggregation.base_score.empty() &&
      m.aggregation.base_score.size() != k) {
    s.add("model.base_score", -1, -1,
          "base_score has " + std::to_string(m.aggregation.base_score.size()) +
              " entries, expected 0 or " + std::to_string(k));
  }
  for (std::size_t i = 0; i < m.leaf_values.size(); ++i) {
    if (!std::isfinite(static_cast<double>(m.leaf_values[i]))) {
      s.add("model.leaf_values_finite", -1, static_cast<std::int64_t>(i / k),
            "non-finite leaf value at row " + std::to_string(i / k) +
                " output " + std::to_string(i % k));
    }
  }
}

// ---------------------------------------------------------------------------
// Packed-artifact checks.
// ---------------------------------------------------------------------------

/// PackedNode image (the Encoded interpreter): index-aligned with the
/// source forest, absolute child links, per-node EncodedThreshold payloads.
template <typename T>
void verify_packed_nodes(const trees::Forest<T>& forest,
                         const exec::FlintForestEngine<T>& engine,
                         Report& report) {
  Sink s(report, "packed");
  const auto nodes = engine.nodes();
  const auto roots = engine.roots();
  if (roots.size() != forest.size() ||
      nodes.size() != forest.total_nodes() ||
      engine.has_special() != forest.has_special_splits()) {
    s.add("packed.shape", -1, -1,
          "packed image shape does not match the source forest");
    return;
  }
  std::size_t base = 0;
  std::size_t slot_base = 0;
  for (std::size_t t = 0; t < forest.size(); ++t) {
    const auto& tree = forest.tree(t);
    const auto ti = static_cast<std::int64_t>(t);
    if (roots[t] != base) {
      s.add("packed.root_range", ti, -1,
            "root at " + std::to_string(roots[t]) + ", expected " +
                std::to_string(base));
      return;  // alignment lost; every comparison below would misfire
    }
    for (std::size_t i = 0; i < tree.size(); ++i) {
      const auto& n = tree.node(static_cast<std::int32_t>(i));
      const auto& p = nodes[base + i];
      const auto ni = static_cast<std::int64_t>(base + i);
      ++report.nodes_checked;
      if (p.feature != static_cast<std::int16_t>(n.feature)) {
        s.add("packed.structure", ti, ni, "feature index diverged");
        continue;
      }
      if (n.is_leaf()) {
        if (p.payload !=
                static_cast<typename core::FloatTraits<T>::Signed>(
                    n.prediction) ||
            p.left != -1 || p.right != -1 || p.flags != 0) {
          s.add("packed.leaf", ti, ni,
                "leaf payload/links diverged from the source leaf");
        }
        continue;
      }
      const auto want_left =
          n.left + static_cast<std::int32_t>(base);
      const auto want_right =
          n.right + static_cast<std::int32_t>(base);
      if (p.left != want_left || p.right != want_right) {
        s.add("packed.structure", ti, ni, "child links diverged");
      }
      const bool p_default_left = (p.flags & exec::kPackedDefaultLeft) != 0;
      const bool p_categorical = (p.flags & exec::kPackedCategorical) != 0;
      if (p_default_left != n.default_left() ||
          p_categorical != n.is_categorical()) {
        s.add("packed.structure", ti, ni, "routing flags diverged");
        continue;
      }
      if (n.is_categorical()) {
        const auto slot = static_cast<std::size_t>(p.payload);
        const auto want_slot =
            slot_base + static_cast<std::size_t>(n.cat_slot);
        if (p.payload < 0 || slot >= engine.cat_slot_count() ||
            slot != want_slot) {
          s.add("packed.cat", ti, ni,
                "category slot " + std::to_string(p.payload) +
                    ", expected " + std::to_string(want_slot));
          continue;
        }
        const auto got = engine.cat_set_of_slot(slot);
        const auto want = tree.cat_set(n.cat_slot);
        if (!std::equal(got.begin(), got.end(), want.begin(), want.end())) {
          s.add("packed.cat", ti, ni, "category bitset diverged");
        }
        continue;
      }
      const auto enc = core::encode_threshold_le(normalize_zero(n.split));
      const bool want_flip = enc.mode == core::ThresholdMode::SignFlip;
      const bool got_flip = (p.flags & exec::kPackedSignFlip) != 0;
      if (p.payload != enc.immediate || got_flip != want_flip) {
        s.add("packed.threshold", ti, ni,
              "encoded threshold diverged from encode_threshold_le of the "
              "source split");
      }
    }
    base += tree.size();
    slot_base += static_cast<std::size_t>(tree.cat_slot_count());
  }
}

/// SoaForest parallel arrays: index-aligned, leaf self-loops, unified
/// (threshold, xor_mask) encoding, narrow-key mirror, special side tables.
template <typename T>
void verify_soa(const trees::Forest<T>& forest,
                const exec::simd::SoaForest<T>& f,
                const exec::layout::KeyTableSet<T>& tables, Report& report) {
  using Signed = typename core::FloatTraits<T>::Signed;
  Sink s(report, "soa");
  const std::size_t total = forest.total_nodes();
  if (f.feature.size() != total || f.threshold.size() != total ||
      f.xor_mask.size() != total || f.split.size() != total ||
      f.left.size() != total || f.right.size() != total ||
      f.narrow_key.size() != total || f.roots.size() != forest.size() ||
      f.has_special != forest.has_special_splits() ||
      f.num_classes != forest.num_classes() ||
      f.feature_count != forest.feature_count()) {
    s.add("soa.shape", -1, -1,
          "parallel array shapes do not match the source forest");
    return;
  }
  if (f.has_special &&
      (f.flags.size() != total || f.cat_slot.size() != total)) {
    s.add("soa.special", -1, -1, "flags/cat_slot side tables missing");
    return;
  }
  std::size_t base = 0;
  std::size_t slot_base = 0;
  for (std::size_t t = 0; t < forest.size(); ++t) {
    const auto& tree = forest.tree(t);
    const auto ti = static_cast<std::int64_t>(t);
    if (f.roots[t] != static_cast<std::int32_t>(base)) {
      s.add("soa.shape", ti, -1,
            "root at " + std::to_string(f.roots[t]) + ", expected " +
                std::to_string(base));
      return;
    }
    for (std::size_t i = 0; i < tree.size(); ++i) {
      const auto& n = tree.node(static_cast<std::int32_t>(i));
      const auto j = base + i;
      const auto ni = static_cast<std::int64_t>(j);
      const auto self = static_cast<std::int32_t>(j);
      ++report.nodes_checked;
      if (f.feature[j] != n.feature) {
        s.add("soa.structure", ti, ni, "feature index diverged");
        continue;
      }
      if (f.has_special) {
        const auto want_flags = n.is_leaf() ? std::uint8_t{0} : n.flags;
        const auto want_slot =
            (!n.is_leaf() && n.is_categorical())
                ? static_cast<std::int32_t>(slot_base) + n.cat_slot
                : -1;
        if (f.flags[j] != want_flags || f.cat_slot[j] != want_slot) {
          s.add("soa.special", ti, ni, "routing flags / cat slot diverged");
        }
      }
      if (n.is_leaf()) {
        if (f.left[j] != self || f.right[j] != self) {
          s.add("soa.leaf", ti, ni, "leaf does not self-loop");
        }
        if (f.threshold[j] != static_cast<Signed>(n.prediction) ||
            f.xor_mask[j] != 0 ||
            f.narrow_key[j] != n.prediction) {
          s.add("soa.leaf", ti, ni, "leaf payload diverged");
        }
        continue;
      }
      const auto want_left = n.left + static_cast<std::int32_t>(base);
      const auto want_right = n.right + static_cast<std::int32_t>(base);
      if (f.left[j] != want_left || f.right[j] != want_right) {
        s.add("soa.structure", ti, ni, "child links diverged");
      }
      if (n.is_categorical()) {
        if (f.threshold[j] != 0 || f.xor_mask[j] != 0 ||
            f.narrow_key[j] != 0) {
          s.add("soa.threshold", ti, ni,
                "categorical node carries a live threshold");
        }
        continue;
      }
      const auto enc = core::encode_threshold_le(n.split);
      Signed want_threshold = enc.immediate;
      Signed want_mask = 0;
      if (enc.mode == core::ThresholdMode::SignFlip) {
        want_threshold = static_cast<Signed>(~enc.immediate);
        want_mask = static_cast<Signed>(core::FloatTraits<T>::abs_mask);
      }
      if (f.threshold[j] != want_threshold || f.xor_mask[j] != want_mask) {
        s.add("soa.threshold", ti, ni,
              "unified (threshold, xor_mask) pair diverged from "
              "encode_threshold_le of the source split");
      }
      const auto rank = checked_rank(
          tables.features[static_cast<std::size_t>(n.feature)], n.split);
      if (!rank || f.narrow_key[j] != *rank) {
        s.add("soa.narrow_key", ti, ni,
              "narrow key does not equal the split's table rank");
      }
    }
    base += tree.size();
    slot_base += static_cast<std::size_t>(tree.cat_slot_count());
  }
  // Category side tables: one span per slot, content equal to the source.
  if (f.has_special) {
    if (f.cat_offsets.size() != f.cat_sizes.size()) {
      s.add("soa.special", -1, -1, "category offset/size tables ragged");
      return;
    }
    std::size_t slot = 0;
    for (std::size_t t = 0; t < forest.size() && slot < f.cat_offsets.size();
         ++t) {
      const auto& tree = forest.tree(t);
      for (std::int32_t c = 0; c < tree.cat_slot_count(); ++c, ++slot) {
        if (slot >= f.cat_offsets.size()) break;
        const auto off = f.cat_offsets[slot];
        const auto sz = f.cat_sizes[slot];
        if (off < 0 || sz < 0 ||
            static_cast<std::size_t>(off) + static_cast<std::size_t>(sz) >
                f.cat_words.size()) {
          s.add("soa.special", static_cast<std::int64_t>(t), -1,
                "category slot " + std::to_string(slot) +
                    " words out of range");
          continue;
        }
        const auto want = tree.cat_set(c);
        if (static_cast<std::size_t>(sz) != want.size() ||
            !std::equal(want.begin(), want.end(),
                        f.cat_words.begin() + off)) {
          s.add("soa.special", static_cast<std::int64_t>(t), -1,
                "category slot " + std::to_string(slot) +
                    " bitset diverged");
        }
      }
    }
  }
}

/// CompactForest lockstep walk: pairs (source node, packed node) from each
/// root, enforcing the implicit-left rule, the sign-bit leaf tag, narrowed
/// keys, flags, and full single-visit coverage of the packed array.
template <typename T, typename Node>
void verify_compact(const trees::Forest<T>& forest,
                    const exec::layout::CompactForest<T, Node>& f,
                    const exec::layout::KeyTableSet<T>& tables,
                    Report& report, const char* artifact) {
  Sink s(report, artifact);
  const auto size = static_cast<std::int64_t>(f.nodes.size());
  if (f.roots.size() != forest.size() ||
      f.nodes.size() != forest.total_nodes() ||
      f.num_classes != forest.num_classes() ||
      f.feature_count != forest.feature_count() ||
      f.has_special != forest.has_special_splits()) {
    s.add("compact.roots", -1, -1,
          "packed shape does not match the source forest");
    return;
  }
  if (f.hot_nodes > f.nodes.size()) {
    s.add("compact.hot", -1, -1,
          "hot slab larger than the node array (" +
              std::to_string(f.hot_nodes) + " > " +
              std::to_string(f.nodes.size()) + ")");
  }
  if (f.cat_offsets.size() != f.cat_sizes.size() ||
      f.cat_offsets.size() != f.cat_feature.size()) {
    s.add("compact.cat", -1, -1, "category slot tables ragged");
    return;
  }
  std::vector<std::uint8_t> seen(f.nodes.size(), 0);
  std::vector<std::pair<std::int32_t, std::int64_t>> stack;
  for (std::size_t t = 0; t < forest.size(); ++t) {
    const auto& tree = forest.tree(t);
    const auto ti = static_cast<std::int64_t>(t);
    if (f.roots[t] < 0 || f.roots[t] >= size) {
      s.add("compact.roots", ti, -1,
            "root " + std::to_string(f.roots[t]) + " outside [0, " +
                std::to_string(size) + ")");
      continue;
    }
    stack.assign(1, {0, f.roots[t]});
    while (!stack.empty()) {
      const auto [i, p] = stack.back();
      stack.pop_back();
      if (p < 0 || p >= size) {
        s.add("compact.offset", ti, p, "node index outside the array");
        continue;
      }
      if (seen[static_cast<std::size_t>(p)]) {
        s.add("compact.structure", ti, p,
              "packed node reached twice (placement overlap)");
        continue;
      }
      seen[static_cast<std::size_t>(p)] = 1;
      ++report.nodes_checked;
      const auto& n = tree.node(i);
      const Node& pn = f.nodes[static_cast<std::size_t>(p)];
      if (n.is_leaf()) {
        if (pn.right_off >= 0) {
          s.add("compact.leaf", ti, p,
                "source leaf packed without the sign-bit leaf tag");
          continue;
        }
        if (static_cast<std::int64_t>(pn.key) != n.prediction ||
            exec::layout::node_feature(pn) != 0 ||
            exec::layout::node_default_left(pn) ||
            exec::layout::node_categorical(pn)) {
          s.add("compact.leaf", ti, p,
                "leaf key/feature/flags diverged from the source leaf");
        }
        continue;
      }
      if (pn.right_off < 0) {
        s.add("compact.offset", ti, p,
              "source inner node packed with the leaf tag set");
        continue;
      }
      const auto roff =
          static_cast<std::int64_t>(exec::layout::node_right_off(pn));
      const std::int64_t left = p + 1;
      const std::int64_t right = p + roff;
      if (roff <= 0 || left >= size || right >= size) {
        s.add("compact.offset", ti, p,
              "child offsets (+1, +" + std::to_string(roff) +
                  ") leave the array of " + std::to_string(size) + " nodes");
        continue;
      }
      if (exec::layout::node_feature(pn) != n.feature ||
          exec::layout::node_default_left(pn) != n.default_left() ||
          exec::layout::node_categorical(pn) != n.is_categorical()) {
        s.add("compact.structure", ti, p,
              "feature/flags diverged from the source node");
      }
      if (n.is_categorical()) {
        const auto slot = static_cast<std::int64_t>(pn.key);
        if (slot < 0 ||
            slot >= static_cast<std::int64_t>(f.cat_slot_count())) {
          s.add("compact.cat", ti, p,
                "category slot " + std::to_string(slot) + " outside [0, " +
                    std::to_string(f.cat_slot_count()) + ")");
        } else {
          const auto us = static_cast<std::size_t>(slot);
          const auto off = f.cat_offsets[us];
          const auto sz = f.cat_sizes[us];
          const auto want = tree.cat_set(n.cat_slot);
          if (f.cat_feature[us] != n.feature || off < 0 || sz < 0 ||
              static_cast<std::size_t>(off) + static_cast<std::size_t>(sz) >
                  f.cat_words.size() ||
              static_cast<std::size_t>(sz) != want.size() ||
              !std::equal(want.begin(), want.end(),
                          f.cat_words.begin() + off)) {
            s.add("compact.cat", ti, p,
                  "category slot " + std::to_string(slot) +
                      " feature/bitset diverged");
          }
        }
      } else {
        std::optional<std::int64_t> want_key;
        if (f.identity_keys) {
          want_key = static_cast<std::int64_t>(
              core::to_radix_key(normalize_zero(n.split)));
        } else if (static_cast<std::size_t>(n.feature) <
                   tables.features.size()) {
          const auto rank = checked_rank(
              tables.features[static_cast<std::size_t>(n.feature)], n.split);
          if (rank) want_key = *rank;
        }
        if (!want_key || static_cast<std::int64_t>(pn.key) != *want_key) {
          s.add("compact.key", ti, p,
                "narrowed key does not reproduce the source threshold "
                "exactly");
        }
      }
      stack.push_back({n.right, right});
      stack.push_back({n.left, left});
    }
  }
  std::size_t visited = 0;
  for (const auto v : seen) visited += v;
  if (visited != f.nodes.size()) {
    s.add("compact.orphan", -1, -1,
          std::to_string(f.nodes.size() - visited) +
              " packed nodes unreachable from every root");
  }
}

/// Q4Forest lockstep walk: the 4-byte image against the source forest.
/// Same traversal discipline as verify_compact, plus the quantized-key
/// contract: geometry bits must sum to the 31-bit budget, exact-mode keys
/// must round-trip through their rank, affine-mode keys must reproduce the
/// plan's own map (and that map must be monotone — a negative scale would
/// invert every comparison).
template <typename T>
void verify_q4(const trees::Forest<T>& forest,
               const exec::layout::Q4Forest<T>& f,
               const exec::layout::KeyTableSet<T>& tables, Report& report) {
  Sink s(report, "q4");
  const exec::layout::Q4Geometry g = f.geom;
  const auto size = static_cast<std::int64_t>(f.nodes.size());
  if (f.roots.size() != forest.size() ||
      f.nodes.size() != forest.total_nodes() ||
      f.num_classes != forest.num_classes() ||
      f.feature_count != forest.feature_count() ||
      f.has_special != forest.has_special_splits()) {
    s.add("q4.roots", -1, -1,
          "packed shape does not match the source forest");
    return;
  }
  if (g.key_bits + g.feature_bits + g.offset_bits != 31 || g.key_bits < 8 ||
      g.key_bits > 16 || g.feature_bits < 1 || g.offset_bits < 1) {
    s.add("q4.geometry", -1, -1,
          "bit split " + std::to_string(g.key_bits) + "+" +
              std::to_string(g.feature_bits) + "+" +
              std::to_string(g.offset_bits) +
              " violates the [leaf:1|off|feat|key] budget");
    return;
  }
  if (f.qplan.bits != static_cast<int>(g.key_bits) ||
      f.qplan.features.size() != forest.feature_count()) {
    s.add("q4.plan", -1, -1,
          "quantization plan does not cover the forest at the packed key "
          "width");
    return;
  }
  for (std::size_t fi = 0; fi < f.qplan.features.size(); ++fi) {
    const auto& fq = f.qplan.features[fi];
    if (!fq.exact() && !(fq.scale >= 0.0)) {
      s.add("q4.plan", -1, static_cast<std::int64_t>(fi),
            "affine scale is negative or NaN — the quantized order would "
            "invert");
    }
  }
  if (f.hot_nodes > f.nodes.size()) {
    s.add("q4.hot", -1, -1,
          "hot slab larger than the node array (" +
              std::to_string(f.hot_nodes) + " > " +
              std::to_string(f.nodes.size()) + ")");
  }
  if (f.cat_offsets.size() != f.cat_sizes.size() ||
      f.cat_offsets.size() != f.cat_feature.size()) {
    s.add("q4.cat", -1, -1, "category slot tables ragged");
    return;
  }
  const bool flags_ok = f.has_special ? f.flags.size() == f.nodes.size()
                                      : f.flags.empty();
  if (!flags_ok) {
    s.add("q4.structure", -1, -1,
          "flags sidecar size does not match the special-split state");
    return;
  }
  std::vector<std::uint8_t> seen(f.nodes.size(), 0);
  std::vector<std::pair<std::int32_t, std::int64_t>> stack;
  for (std::size_t t = 0; t < forest.size(); ++t) {
    const auto& tree = forest.tree(t);
    const auto ti = static_cast<std::int64_t>(t);
    if (f.roots[t] < 0 || f.roots[t] >= size) {
      s.add("q4.roots", ti, -1,
            "root " + std::to_string(f.roots[t]) + " outside [0, " +
                std::to_string(size) + ")");
      continue;
    }
    stack.assign(1, {0, f.roots[t]});
    while (!stack.empty()) {
      const auto [i, p] = stack.back();
      stack.pop_back();
      if (p < 0 || p >= size) {
        s.add("q4.offset", ti, p, "node index outside the array");
        continue;
      }
      if (seen[static_cast<std::size_t>(p)]) {
        s.add("q4.structure", ti, p,
              "packed node reached twice (placement overlap)");
        continue;
      }
      seen[static_cast<std::size_t>(p)] = 1;
      ++report.nodes_checked;
      const auto& n = tree.node(i);
      const std::uint32_t w = f.nodes[static_cast<std::size_t>(p)].word;
      const std::uint8_t fl =
          f.has_special ? f.flags[static_cast<std::size_t>(p)] : 0;
      if (n.is_leaf()) {
        if (!g.is_leaf(w)) {
          s.add("q4.leaf", ti, p,
                "source leaf packed without the sign-bit leaf tag");
          continue;
        }
        if (static_cast<std::int64_t>(g.key_of(w)) != n.prediction ||
            g.feature_of(w) != 0 || g.offset_of(w) != 0 || fl != 0) {
          s.add("q4.leaf", ti, p,
                "leaf payload/feature/offset/flags diverged from the "
                "source leaf");
        }
        continue;
      }
      if (g.is_leaf(w)) {
        s.add("q4.offset", ti, p,
              "source inner node packed with the leaf tag set");
        continue;
      }
      const auto roff = static_cast<std::int64_t>(g.offset_of(w));
      const std::int64_t left = p + 1;
      const std::int64_t right = p + roff;
      if (roff <= 0 || left >= size || right >= size) {
        s.add("q4.offset", ti, p,
              "child offsets (+1, +" + std::to_string(roff) +
                  ") leave the array of " + std::to_string(size) + " nodes");
        continue;
      }
      if (static_cast<std::int64_t>(g.feature_of(w)) != n.feature ||
          ((fl & exec::layout::kQ4DefaultLeft) != 0) != n.default_left() ||
          ((fl & exec::layout::kQ4Categorical) != 0) != n.is_categorical()) {
        s.add("q4.structure", ti, p,
              "feature/flags diverged from the source node");
      }
      if (n.is_categorical()) {
        const auto slot = static_cast<std::int64_t>(g.key_of(w));
        if (slot < 0 ||
            slot >= static_cast<std::int64_t>(f.cat_slot_count())) {
          s.add("q4.cat", ti, p,
                "category slot " + std::to_string(slot) + " outside [0, " +
                    std::to_string(f.cat_slot_count()) + ")");
        } else {
          const auto us = static_cast<std::size_t>(slot);
          const auto off = f.cat_offsets[us];
          const auto sz = f.cat_sizes[us];
          const auto want = tree.cat_set(n.cat_slot);
          if (f.cat_feature[us] != n.feature || off < 0 || sz < 0 ||
              static_cast<std::size_t>(off) + static_cast<std::size_t>(sz) >
                  f.cat_words.size() ||
              static_cast<std::size_t>(sz) != want.size() ||
              !std::equal(want.begin(), want.end(),
                          f.cat_words.begin() + off)) {
            s.add("q4.cat", ti, p,
                  "category slot " + std::to_string(slot) +
                      " feature/bitset diverged");
          }
        }
      } else {
        const auto& fq =
            f.qplan.features[static_cast<std::size_t>(n.feature)];
        std::optional<std::int64_t> want_key;
        if (fq.exact()) {
          if (static_cast<std::size_t>(n.feature) < tables.features.size()) {
            const auto rank = checked_rank(
                tables.features[static_cast<std::size_t>(n.feature)],
                n.split);
            if (rank) want_key = *rank;
          }
        } else {
          want_key =
              fq.quantize(static_cast<double>(normalize_zero(n.split))) -
              fq.q_lo;
        }
        if (!want_key || *want_key < 0 ||
            *want_key > static_cast<std::int64_t>(g.key_mask()) ||
            static_cast<std::int64_t>(g.key_of(w)) != *want_key) {
          s.add("q4.key", ti, p,
                fq.exact()
                    ? "quantized key does not reproduce the source "
                      "threshold's rank exactly"
                    : "quantized key does not reproduce the plan's affine "
                      "map of the source threshold");
        }
      }
      stack.push_back({n.right, right});
      stack.push_back({n.left, left});
    }
  }
  std::size_t visited = 0;
  for (const auto v : seen) visited += v;
  if (visited != f.nodes.size()) {
    s.add("q4.orphan", -1, -1,
          std::to_string(f.nodes.size() - visited) +
              " packed nodes unreachable from every root");
  }
}

}  // namespace

template <typename T>
void verify_tables(const trees::Forest<T>& forest,
                   const exec::layout::KeyTableSet<T>& tables,
                   Report& report) {
  Sink s(report, "tables");
  if (tables.features.size() != forest.feature_count()) {
    s.add("tables.shape", -1, -1,
          "key table count " + std::to_string(tables.features.size()) +
              " != feature count " +
              std::to_string(forest.feature_count()));
    return;
  }
  for (std::size_t fi = 0; fi < tables.features.size(); ++fi) {
    const auto& sorted = tables.features[fi].sorted;
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i - 1] >= sorted[i]) {
        s.add("tables.monotone", -1, static_cast<std::int64_t>(i),
              "feature " + std::to_string(fi) +
                  " rank table not strictly ascending at index " +
                  std::to_string(i));
        break;
      }
    }
  }
  for (std::size_t t = 0; t < forest.size(); ++t) {
    const auto& tree = forest.tree(t);
    for (std::size_t i = 0; i < tree.size(); ++i) {
      const auto& n = tree.node(static_cast<std::int32_t>(i));
      if (n.is_leaf() || n.is_categorical()) continue;
      if (static_cast<std::size_t>(n.feature) >= tables.features.size()) {
        continue;  // tree.feature_range owns this violation
      }
      if (!checked_rank(
              tables.features[static_cast<std::size_t>(n.feature)],
              n.split)) {
        s.add("tables.exact", static_cast<std::int64_t>(t),
              static_cast<std::int64_t>(i),
              "split does not round-trip through its rank (table built "
              "from a different forest?)");
      }
    }
  }
}

template <typename T>
Report verify_model_only(const model::ForestModel<T>& m) {
  Report report;
  report.artifacts_checked.push_back("model");
  Sink s(report, "model");
  verify_model_semantics(m, s);
  if (m.forest.empty()) {
    s.add("forest.empty", -1, -1, "forest has no trees");
    return report;
  }
  if (m.forest.feature_count() > trees::kMaxFeatureCount) {
    // Checked before any packed artifact is built: engines and key tables
    // size O(features) allocations from this count, so an absurd declared
    // width is an allocation bomb, not just an execution error.
    s.add("model.features", -1, -1,
          "feature count " + std::to_string(m.forest.feature_count()) +
              " exceeds the engine limit of " +
              std::to_string(trees::kMaxFeatureCount));
    return report;
  }
  const std::int64_t payload_limit = m.forest.num_classes();
  for (std::size_t t = 0; t < m.forest.size(); ++t) {
    const auto& tree = m.forest.tree(t);
    if (tree.empty()) {
      s.add("forest.empty", static_cast<std::int64_t>(t), -1,
            "tree has no nodes");
      continue;
    }
    verify_tree_structure(tree, static_cast<std::int64_t>(t), payload_limit,
                          s, report);
  }
  return report;
}

template <typename T>
Report verify_model(const model::ForestModel<T>& m) {
  Report report = verify_model_only(m);
  if (!report.ok()) {
    // Packed constructors assume a structurally valid forest; building them
    // from a corrupt one would throw (or worse) instead of diagnosing.
    return report;
  }
  const auto& forest = m.forest;
  try {
    // One artifact build feeds every packed check below — verify_model
    // inspects exactly the images the engines and the code generator bind,
    // not freshly packed lookalikes.
    exec::artifacts::ExecArtifacts<T> art(forest);
    verify_tables(forest, art.tables(), report);
    report.artifacts_checked.push_back("tables");
    if (!report.ok()) return report;

    verify_packed_nodes(forest, art.packed_engine(), report);
    report.artifacts_checked.push_back("packed");

    verify_soa(forest, art.soa(), art.tables(), report);
    report.artifacts_checked.push_back("soa");

    for (const std::size_t hot_depth : {std::size_t{0}, std::size_t{4}}) {
      std::string why;
      if (const auto* c16 = art.try_compact16_at(hot_depth, &why)) {
        verify_compact(forest, *c16, art.tables(), report, "c16");
        if (hot_depth == 0 && c16->hot_nodes != 0) {
          report.add({"compact.hot", "c16", -1, -1,
                      "pure-DFS plan produced a hot slab"});
        }
        if (hot_depth == 0) report.artifacts_checked.push_back("c16");
      }
      if (const auto* c8 = art.try_compact8_at(hot_depth, &why)) {
        verify_compact(forest, *c8, art.tables(), report, "c8");
        if (hot_depth == 0) report.artifacts_checked.push_back("c8");
      }
      if (const auto* q4 = art.try_q4_at(hot_depth, &why)) {
        verify_q4(forest, *q4, art.tables(), report);
        if (hot_depth == 0 && q4->hot_nodes != 0) {
          report.add({"q4.hot", "q4", -1, -1,
                      "pure-DFS plan produced a hot slab"});
        }
        if (hot_depth == 0) report.artifacts_checked.push_back("q4");
      }
    }
  } catch (const std::exception& e) {
    report.add({"pack.exception", "pack", -1, -1, e.what()});
  }
  return report;
}

Report verify_file(const std::string& path) {
  try {
    const auto model = model::load_external_model<float>(path);
    return verify_model(model);
  } catch (const std::exception& e) {
    Report report;
    report.artifacts_checked.push_back("file");
    report.add({"parse.load", "file", -1, -1, e.what()});
    return report;
  }
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

void write_human(std::ostream& out, const Report& report) {
  for (const auto& d : report.diagnostics) {
    out << d.check << " [" << d.artifact << "]";
    if (d.tree >= 0) out << " tree " << d.tree;
    if (d.node >= 0) out << " node " << d.node;
    out << ": " << d.message << "\n";
  }
  if (report.suppressed > 0) {
    out << "... " << report.suppressed << " further diagnostics suppressed\n";
  }
  if (report.ok()) {
    out << "PASS: " << report.nodes_checked << " node checks across ";
    for (std::size_t i = 0; i < report.artifacts_checked.size(); ++i) {
      out << (i ? ", " : "") << report.artifacts_checked[i];
    }
    out << "\n";
  } else {
    out << "FAIL: " << (report.diagnostics.size() + report.suppressed)
        << " invariant violations\n";
  }
}

namespace {

void json_escape(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

std::string to_json(const Report& report) {
  std::ostringstream out;
  out << "{\"ok\": " << (report.ok() ? "true" : "false")
      << ", \"nodes_checked\": " << report.nodes_checked
      << ", \"suppressed\": " << report.suppressed
      << ", \"artifacts_checked\": [";
  for (std::size_t i = 0; i < report.artifacts_checked.size(); ++i) {
    if (i) out << ", ";
    out << '"';
    json_escape(out, report.artifacts_checked[i]);
    out << '"';
  }
  out << "], \"diagnostics\": [";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const auto& d = report.diagnostics[i];
    if (i) out << ", ";
    out << "{\"check\": \"";
    json_escape(out, d.check);
    out << "\", \"artifact\": \"";
    json_escape(out, d.artifact);
    out << "\", \"tree\": " << d.tree << ", \"node\": " << d.node
        << ", \"message\": \"";
    json_escape(out, d.message);
    out << "\"}";
  }
  out << "]}";
  return out.str();
}

template Report verify_model<float>(const model::ForestModel<float>&);
template Report verify_model<double>(const model::ForestModel<double>&);
template Report verify_model_only<float>(const model::ForestModel<float>&);
template Report verify_model_only<double>(const model::ForestModel<double>&);
template void verify_tables<float>(const trees::Forest<float>&,
                                   const exec::layout::KeyTableSet<float>&,
                                   Report&);
template void verify_tables<double>(const trees::Forest<double>&,
                                    const exec::layout::KeyTableSet<double>&,
                                    Report&);

}  // namespace flint::verify
