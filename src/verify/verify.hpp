// verify — the static forest verifier: proves, without executing a single
// prediction, that a ForestModel and every packed artifact derived from it
// satisfy the invariant catalog the execution engines rely on.
//
// The FLInt encoding is only sound if each packed form preserves it
// exactly: XOR-masked integer thresholds must equal encode_threshold_le of
// the source split, CompactNode8/16 relative offsets must respect the
// implicit-left rule with the sign-bit leaf tag, rank narrowing must be an
// order isomorphism on the split set, categorical slots and NaN
// default-direction flags must survive placement.  The engines *assume*
// these invariants on their hot paths (no bounds checks, no leaf checks
// before key loads); this module *checks* them, so a corrupt model is
// rejected at ingest instead of corrupting inference.
//
// Catalog (stable check ids — docs/VERIFICATION.md holds the full table):
//
//   parse.load            loader rejected the file (message carries line)
//   forest.empty          no trees, or a tree with no nodes
//   forest.num_classes    class count < 1 / != leaf-value rows (score kinds)
//   tree.child_range      child index outside [0, tree size)
//   tree.cycle            node reachable twice (cycle or shared subtree)
//   tree.unreachable      node not reachable from the root
//   tree.inner_children   inner node missing a child
//   tree.leaf_links       leaf with a child link
//   tree.leaf_payload     leaf payload outside [0, classes | leaf rows)
//   tree.leaf_flags       leaf carrying the categorical flag
//   tree.feature_range    inner feature outside [0, feature_count)
//   tree.split_nan        numeric split is NaN; +-inf is ordered and allowed
//   tree.flags_known      unknown bits in node flags
//   tree.cat_slot         categorical slot out of range / stray slot id
//   tree.cat_set_empty    categorical bitset with no members possible
//   model.features        feature count beyond the engine limit
//                         (trees::kMaxFeatureCount — an allocation bomb)
//   model.outputs         n_outputs inconsistent with LeafKind
//   model.leaf_values_shape   leaf_values not rows x n_outputs
//   model.leaf_values_finite  non-finite leaf value
//   model.base_score      base_score length != n_outputs
//   model.aggregation     kind/mode/link combination not well-formed
//   model.missing         zero_as_missing without handles_missing, or
//                         default-left flags on a model declared NaN-free
//   tables.shape          key-table count != feature_count
//   tables.monotone       rank table not strictly ascending
//   tables.exact          a split does not round-trip through its rank
//   packed.*              PackedNode image (Encoded engine) diverges from
//                         the source forest (structure, threshold, leaf,
//                         cat, orphan, root_range)
//   soa.*                 SoaForest arrays diverge (shape, structure, leaf,
//                         threshold, narrow_key, special)
//   compact.*             CompactNode16/8 image diverges (roots, offset,
//                         structure, key, leaf, cat, orphan, hot)
//   q4.*                  4-byte quantized image diverges (roots, geometry,
//                         plan, offset, structure, key, leaf, cat, orphan,
//                         hot) — q4.key covers both contracts: exact ranks
//                         must round-trip, affine keys must reproduce the
//                         plan's own monotone map
//   pack.exception        constructing an artifact threw
//
// verify_model is pure and allocation-bounded: it builds each packed form
// through the same public APIs the predictor factory uses and walks them
// lockstep against the source trees.  serve calls it on every ingest, so a
// corrupt hot-swap is rejected before the registry's shared_ptr flip.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "exec/layout/narrow.hpp"
#include "model/forest_model.hpp"

namespace flint::verify {

/// One invariant violation.  `check` is a stable id from the catalog above;
/// `artifact` names the packed form ("model", "tables", "packed", "soa",
/// "c16", "c8", "q4", "file"); `tree`/`node` are indices when the violation is
/// node-level (-1 otherwise; `node` indexes the artifact's own node array
/// for packed forms, the source tree's for model-level checks).
struct Diagnostic {
  std::string check;
  std::string artifact;
  std::int64_t tree = -1;
  std::int64_t node = -1;
  std::string message;
};

/// Verification outcome: every violation found (bounded — after
/// kMaxDiagnostics further ones only bump `suppressed`), plus what was
/// covered so the "pass" is auditable.
struct Report {
  static constexpr std::size_t kMaxDiagnostics = 200;

  std::vector<Diagnostic> diagnostics;
  std::vector<std::string> artifacts_checked;
  std::size_t nodes_checked = 0;
  std::size_t suppressed = 0;

  [[nodiscard]] bool ok() const noexcept { return diagnostics.empty(); }

  /// Appends a diagnostic, honoring the cap.
  void add(Diagnostic d);
};

/// Verifies a ForestModel plus every packed artifact built from it
/// (PackedNode image, SoaForest + narrow keys, CompactNode16/8 and the
/// 4-byte quantized Q4Forest at hot_depth 0 and 4, rank tables).  Packed artifacts are only attempted
/// when the model-level checks pass — their constructors assume a
/// structurally valid forest.
template <typename T>
[[nodiscard]] Report verify_model(const model::ForestModel<T>& model);

/// Model-level checks only (structure + semantics, no packing).  The
/// building block verify_model starts with; exposed for tests that mutate
/// in-memory models.
template <typename T>
[[nodiscard]] Report verify_model_only(const model::ForestModel<T>& model);

/// Rank-table checks against a forest: shape, strict monotonicity, and the
/// exactness round trip for every numeric split.  Exposed so corrupt
/// tables (which cannot be produced through build_key_tables) are testable.
template <typename T>
void verify_tables(const trees::Forest<T>& forest,
                   const exec::layout::KeyTableSet<T>& tables, Report& report);

/// Loads `path` (native v1/v2 or any external format convert accepts) and
/// verifies it.  Loader rejections become a "parse.load" diagnostic whose
/// message carries the loader's line/node context — the CLI never throws on
/// a corrupt file, it reports.
[[nodiscard]] Report verify_file(const std::string& path);

/// Human-readable report: one line per diagnostic
/// ("<check> [artifact] tree T node N: message"), then a PASS/FAIL summary.
void write_human(std::ostream& out, const Report& report);

/// Machine-readable report: {"ok": bool, "artifacts_checked": [...],
/// "nodes_checked": N, "suppressed": N, "diagnostics": [{check, artifact,
/// tree, node, message}, ...]}.
[[nodiscard]] std::string to_json(const Report& report);

extern template Report verify_model<float>(const model::ForestModel<float>&);
extern template Report verify_model<double>(const model::ForestModel<double>&);
extern template Report verify_model_only<float>(
    const model::ForestModel<float>&);
extern template Report verify_model_only<double>(
    const model::ForestModel<double>&);
extern template void verify_tables<float>(
    const trees::Forest<float>&, const exec::layout::KeyTableSet<float>&,
    Report&);
extern template void verify_tables<double>(
    const trees::Forest<double>&, const exec::layout::KeyTableSet<double>&,
    Report&);

}  // namespace flint::verify
