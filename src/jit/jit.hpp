// jit/jit — compile-and-load runtime for generated forest code.
//
// The arch-forest framework the paper builds on generates source files that
// are compiled offline and linked into the measurement binary.  This module
// performs the same step in-process: generated C/assembly sources are
// written to a scratch directory, compiled into a shared object with the
// system C compiler, and loaded with dlopen.  The handle owns both the
// dlopen'd module and the scratch directory (removed on destruction unless
// keep_artifacts is set for inspection).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "codegen/emit.hpp"
#include "jit/options.hpp"

namespace flint::jit {

/// A loaded module.  Movable, non-copyable; unloads and cleans up on
/// destruction.
class JitModule {
 public:
  JitModule(JitModule&& other) noexcept;
  JitModule& operator=(JitModule&& other) noexcept;
  JitModule(const JitModule&) = delete;
  JitModule& operator=(const JitModule&) = delete;
  ~JitModule();

  /// Resolves a symbol; throws std::runtime_error if absent.
  [[nodiscard]] void* raw_symbol(const std::string& name) const;

  /// Typed convenience wrapper: `module.function<int(const float*)>("f")`.
  template <typename Fn>
  [[nodiscard]] Fn* function(const std::string& name) const {
    return reinterpret_cast<Fn*>(raw_symbol(name));
  }

  /// Scratch directory holding sources and the shared object.
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  /// Size of the compiled shared object in bytes.
  [[nodiscard]] std::size_t object_size() const noexcept { return object_size_; }

 private:
  friend JitModule compile(std::span<const codegen::SourceFile>,
                           const JitOptions&);
  JitModule() = default;

  void* handle_ = nullptr;
  std::string dir_;
  std::size_t object_size_ = 0;
  bool keep_ = false;
};

/// Writes `sources` into a fresh scratch directory, compiles them into one
/// shared object and loads it.  Throws std::runtime_error with the captured
/// compiler diagnostics on failure.
[[nodiscard]] JitModule compile(std::span<const codegen::SourceFile> sources,
                                const JitOptions& options = {});

/// Convenience overload for a GeneratedCode module.
[[nodiscard]] JitModule compile(const codegen::GeneratedCode& code,
                                const JitOptions& options = {});

/// int <sym>(const T* pX) — the classify ABI of every generated module.
template <typename T>
using ClassifyFn = int(const T*);

}  // namespace flint::jit
