#include "jit/jit.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace flint::jit {

namespace fs = std::filesystem;

namespace {

/// Process-unique scratch directory under the configured base.
fs::path make_scratch_dir(const JitOptions& options) {
  static std::atomic<unsigned> counter{0};
  fs::path base;
  if (!options.scratch_base.empty()) {
    base = options.scratch_base;
  } else if (const char* tmp = std::getenv("TMPDIR"); tmp && *tmp) {
    base = tmp;
  } else {
    base = "/tmp";
  }
  base /= "flint-jit";
  const auto id = counter.fetch_add(1, std::memory_order_relaxed);
  fs::path dir = base / (std::to_string(::getpid()) + "-" + std::to_string(id));
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("jit: cannot create scratch dir '" + dir.string() +
                             "': " + ec.message());
  }
  return dir;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Minimal safety check: file names and flags are embedded in a shell
/// command line, so restrict them to a conservative character set.
void check_shell_safe(const std::string& s, const char* what) {
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.' || c == '/' || c == '=' || c == '+';
    if (!ok) {
      throw std::invalid_argument(std::string("jit: unsafe character in ") +
                                  what + ": '" + s + "'");
    }
  }
}

}  // namespace

JitModule::JitModule(JitModule&& other) noexcept
    : handle_(other.handle_),
      dir_(std::move(other.dir_)),
      object_size_(other.object_size_),
      keep_(other.keep_) {
  other.handle_ = nullptr;
  other.dir_.clear();
}

JitModule& JitModule::operator=(JitModule&& other) noexcept {
  if (this != &other) {
    this->~JitModule();
    new (this) JitModule(std::move(other));
  }
  return *this;
}

JitModule::~JitModule() {
  if (handle_ != nullptr) {
    ::dlclose(handle_);
    handle_ = nullptr;
  }
  if (!dir_.empty() && !keep_) {
    std::error_code ec;
    fs::remove_all(dir_, ec);  // best effort; scratch lives under tmp anyway
  }
}

void* JitModule::raw_symbol(const std::string& name) const {
  if (handle_ == nullptr) {
    throw std::runtime_error("jit: module not loaded");
  }
  ::dlerror();  // clear
  void* sym = ::dlsym(handle_, name.c_str());
  if (const char* err = ::dlerror(); err != nullptr || sym == nullptr) {
    throw std::runtime_error("jit: symbol '" + name +
                             "' not found: " + (err ? err : "null"));
  }
  return sym;
}

JitModule compile(std::span<const codegen::SourceFile> sources,
                  const JitOptions& options) {
  if (sources.empty()) {
    throw std::invalid_argument("jit: no sources");
  }
  if (options.opt_level < 0 || options.opt_level > 3) {
    throw std::invalid_argument("jit: opt_level must be 0..3");
  }
  check_shell_safe(options.compiler, "compiler");
  const fs::path dir = make_scratch_dir(options);

  std::string inputs;
  for (const auto& src : sources) {
    check_shell_safe(src.name, "source file name");
    const fs::path p = dir / src.name;
    std::ofstream out(p);
    if (!out) {
      throw std::runtime_error("jit: cannot write '" + p.string() + "'");
    }
    out << src.content;
    out.close();
    inputs += " ";
    inputs += p.string();
  }

  const fs::path so_path = dir / "module.so";
  const fs::path log_path = dir / "compile.log";
  std::string cmd = options.compiler + " -O" + std::to_string(options.opt_level) +
                    " -fPIC -shared";
  for (const auto& flag : options.extra_flags) {
    check_shell_safe(flag, "extra flag");
    cmd += " " + flag;
  }
  cmd += " -o " + so_path.string() + inputs + " 2> " + log_path.string();

  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    const std::string log = read_file(log_path);
    std::error_code ec;
    if (!options.keep_artifacts) fs::remove_all(dir, ec);
    throw std::runtime_error("jit: compilation failed (exit " +
                             std::to_string(rc) + "):\n" + log);
  }

  JitModule module;
  module.dir_ = dir.string();
  module.keep_ = options.keep_artifacts;
  std::error_code ec;
  module.object_size_ = static_cast<std::size_t>(fs::file_size(so_path, ec));
  module.handle_ = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (module.handle_ == nullptr) {
    const char* err = ::dlerror();
    throw std::runtime_error("jit: dlopen failed: " +
                             std::string(err ? err : "unknown"));
  }
  return module;
}

JitModule compile(const codegen::GeneratedCode& code, const JitOptions& options) {
  return compile(std::span<const codegen::SourceFile>(code.files), options);
}

}  // namespace flint::jit
