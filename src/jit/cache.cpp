#include "jit/cache.hpp"

#include <chrono>
#include <utility>

namespace flint::jit {

CompileCache& CompileCache::instance() {
  static CompileCache cache;
  return cache;
}

std::shared_ptr<const JitModule> CompileCache::get_or_compile(
    std::uint64_t key, const std::function<codegen::GeneratedCode()>& make,
    const JitOptions& options, bool* hit, double* compile_ms) {
  {
    std::lock_guard lock(mutex_);
    if (auto it = modules_.find(key); it != modules_.end()) {
      ++stats_.hits;
      if (hit != nullptr) *hit = true;
      if (compile_ms != nullptr) *compile_ms = 0.0;
      return it->second;
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto module =
      std::make_shared<const JitModule>(compile(make(), options));
  const auto t1 = std::chrono::steady_clock::now();
  if (hit != nullptr) *hit = false;
  if (compile_ms != nullptr) {
    *compile_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  }
  std::lock_guard lock(mutex_);
  ++stats_.misses;
  auto [it, inserted] = modules_.try_emplace(key, std::move(module));
  return it->second;  // first insert wins on a concurrent miss
}

CompileCacheStats CompileCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void CompileCache::clear() {
  std::lock_guard lock(mutex_);
  modules_.clear();
  stats_ = {};
}

}  // namespace flint::jit
