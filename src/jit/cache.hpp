// jit/cache — process-wide content-hash compile cache for generated modules.
//
// Keyed by a caller-computed 64-bit content hash covering everything that
// determines the generated object: forest structure + threshold bits, model
// semantics (vote vs score, leaf tables), generator version, scalar width,
// and the compiler options.  Two predictors built from the same model share
// one compiled JitModule; mutating a threshold changes the hash and forces a
// recompile.  Entries live for the process lifetime (a compiled module is a
// few KiB; serving processes load a handful of models).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "jit/jit.hpp"

namespace flint::jit {

struct CompileCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

class CompileCache {
 public:
  static CompileCache& instance();

  /// Returns the module cached under `key`, or generates (via `make`),
  /// compiles and caches it.  `hit` and `compile_ms` report whether the
  /// lookup was served from cache and the generate+compile wall time of a
  /// miss (0.0 on a hit); either may be null.  Generation/compilation runs
  /// outside the cache lock; if two threads miss on the same key
  /// concurrently, the first insert wins and the loser's module is dropped.
  std::shared_ptr<const JitModule> get_or_compile(
      std::uint64_t key,
      const std::function<codegen::GeneratedCode()>& make,
      const JitOptions& options, bool* hit = nullptr,
      double* compile_ms = nullptr);

  [[nodiscard]] CompileCacheStats stats() const;

  /// Drops all cached modules (tests only; in-flight shared_ptrs stay valid).
  void clear();

 private:
  CompileCache() = default;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const JitModule>> modules_;
  CompileCacheStats stats_;
};

}  // namespace flint::jit
