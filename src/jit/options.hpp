// jit/options — compiler-driver knobs for the JIT runtime.
//
// Split out of jit/jit.hpp so that predictor.hpp (and everything that
// includes it) can carry JitOptions by value without pulling in the
// dlopen/compile machinery or codegen/emit.hpp.
#pragma once

#include <string>
#include <vector>

namespace flint::jit {

struct JitOptions {
  /// Compiler driver; must understand .c and .s inputs and -shared -fPIC.
  std::string compiler = "cc";
  /// Optimization level for the generated code (arch-forest uses -O3; the
  /// harness default is lower to keep large sweeps fast — the *relative*
  /// comparison between flavors is preserved, see docs/BENCHMARKS.md).
  int opt_level = 2;
  std::vector<std::string> extra_flags;
  /// Keep the scratch directory (sources, .so, compiler log) on disk.
  bool keep_artifacts = false;
  /// Base directory for scratch dirs; empty = $TMPDIR or /tmp.
  std::string scratch_base;
};

}  // namespace flint::jit
