#include "fpformat/fpformat.hpp"

#include <cassert>
#include <cmath>

namespace flint::fpformat {

std::string to_string(FpClass c) {
  switch (c) {
    case FpClass::Zero: return "zero";
    case FpClass::Denormal: return "denormal";
    case FpClass::Normal: return "normal";
    case FpClass::Infinity: return "infinity";
    case FpClass::NaN: return "nan";
  }
  return "?";
}

std::uint64_t ui_value(std::uint64_t bits, const FormatSpec& spec) noexcept {
  return bits & spec.value_mask();
}

std::int64_t signed_value(std::uint64_t bits, const FormatSpec& spec) noexcept {
  const int k = spec.total_bits();
  const std::uint64_t v = bits & spec.value_mask();
  if (k == 64) return static_cast<std::int64_t>(v);
  // Sign-extend from bit k-1 (Definition 2, Eq. 1: MSB carries weight -2^(k-1)).
  const std::uint64_t sign = std::uint64_t{1} << (k - 1);
  if (v & sign) {
    return static_cast<std::int64_t>(v | ~spec.value_mask());
  }
  return static_cast<std::int64_t>(v);
}

bool sign_bit(std::uint64_t bits, const FormatSpec& spec) noexcept {
  return (bits & spec.sign_mask()) != 0;
}

std::uint64_t exponent_field(std::uint64_t bits, const FormatSpec& spec) noexcept {
  return (bits & spec.exponent_mask()) >> spec.mantissa_bits;
}

std::uint64_t mantissa_field(std::uint64_t bits, const FormatSpec& spec) noexcept {
  return bits & spec.mantissa_mask();
}

std::uint64_t compose(bool sign, std::uint64_t exponent, std::uint64_t mantissa,
                      const FormatSpec& spec) noexcept {
  std::uint64_t b = (exponent << spec.mantissa_bits) & spec.exponent_mask();
  b |= mantissa & spec.mantissa_mask();
  if (sign) b |= spec.sign_mask();
  return b;
}

FpClass classify(std::uint64_t bits, const FormatSpec& spec) noexcept {
  const std::uint64_t e = exponent_field(bits, spec);
  const std::uint64_t m = mantissa_field(bits, spec);
  const std::uint64_t e_max = (std::uint64_t{1} << spec.exponent_bits) - 1;
  if (e == 0) return m == 0 ? FpClass::Zero : FpClass::Denormal;
  if (e == e_max) return m == 0 ? FpClass::Infinity : FpClass::NaN;
  return FpClass::Normal;
}

long double fp_abs_value(std::uint64_t bits, const FormatSpec& spec) noexcept {
  const std::uint64_t e = exponent_field(bits, spec);
  const std::uint64_t m = mantissa_field(bits, spec);
  const int x = spec.mantissa_bits;
  const auto bias = spec.bias();
  switch (classify(bits, spec)) {
    case FpClass::Zero:
      return 0.0L;
    case FpClass::Denormal:
      // Exponent reads as -bias + 1, mantissa without the implicit 1.
      return std::ldexp(static_cast<long double>(m),
                        static_cast<int>(-bias + 1 - x));
    case FpClass::Normal: {
      // (1 + m * 2^-x) * 2^(e - bias)  ==  (2^x + m) * 2^(e - bias - x)
      const auto significand = static_cast<long double>((std::uint64_t{1} << x) + m);
      return std::ldexp(significand, static_cast<int>(static_cast<std::int64_t>(e) - bias - x));
    }
    case FpClass::Infinity:
      return std::numeric_limits<long double>::infinity();
    case FpClass::NaN:
      return std::numeric_limits<long double>::quiet_NaN();
  }
  return 0.0L;
}

long double fp_value(std::uint64_t bits, const FormatSpec& spec) noexcept {
  const long double magnitude = fp_abs_value(bits, spec);
  return sign_bit(bits, spec) ? -magnitude : magnitude;
}

std::uint64_t positive_zero(const FormatSpec&) noexcept { return 0; }

std::uint64_t negative_zero(const FormatSpec& spec) noexcept {
  return spec.sign_mask();
}

std::uint64_t positive_infinity(const FormatSpec& spec) noexcept {
  return spec.exponent_mask();
}

std::uint64_t negative_infinity(const FormatSpec& spec) noexcept {
  return spec.exponent_mask() | spec.sign_mask();
}

std::uint64_t smallest_denormal(const FormatSpec&) noexcept { return 1; }

std::uint64_t largest_denormal(const FormatSpec& spec) noexcept {
  return spec.mantissa_mask();
}

std::uint64_t smallest_normal(const FormatSpec& spec) noexcept {
  return std::uint64_t{1} << spec.mantissa_bits;
}

std::uint64_t largest_normal(const FormatSpec& spec) noexcept {
  // Exponent one below all-ones, mantissa all-ones.
  const std::uint64_t e_max_minus_1 = (std::uint64_t{1} << spec.exponent_bits) - 2;
  return compose(false, e_max_minus_1, spec.mantissa_mask(), spec);
}

bool is_ordered(std::uint64_t bits, const FormatSpec& spec) noexcept {
  return classify(bits, spec) != FpClass::NaN;
}

std::int64_t order_key(std::uint64_t bits, const FormatSpec& spec) noexcept {
  // Mirror of core::to_radix_key at arbitrary width: positive-signed
  // patterns keep their value; negative-signed patterns flip all bits (so
  // larger magnitudes sort lower) and shift below zero.  The subtraction is
  // performed in unsigned arithmetic and wraps to the correct two's
  // complement value even at k = 64.
  const std::uint64_t v = bits & spec.value_mask();
  const std::uint64_t sign = spec.sign_mask();
  if (v & sign) {
    return static_cast<std::int64_t>((spec.value_mask() ^ v) - sign);
  }
  return static_cast<std::int64_t>(v);
}

bool next_up(std::uint64_t bits, const FormatSpec& spec,
             std::uint64_t& out) noexcept {
  if (!is_ordered(bits, spec)) return false;
  if ((bits & spec.value_mask()) == positive_infinity(spec)) return false;
  const std::uint64_t v = bits & spec.value_mask();
  // Walk one step along the total order in pattern space: negatives step
  // down toward -0, -0 steps to +0, positives step up.
  out = (v & spec.sign_mask()) ? (v == negative_zero(spec) ? positive_zero(spec)
                                                           : v - 1)
                               : v + 1;
  return true;
}

bool next_down(std::uint64_t bits, const FormatSpec& spec,
               std::uint64_t& out) noexcept {
  if (!is_ordered(bits, spec)) return false;
  if ((bits & spec.value_mask()) == negative_infinity(spec)) return false;
  const std::uint64_t v = bits & spec.value_mask();
  out = (v & spec.sign_mask()) ? v + 1
                               : (v == positive_zero(spec) ? negative_zero(spec)
                                                           : v - 1);
  return true;
}

std::uint64_t ulp_distance(std::uint64_t a, std::uint64_t b,
                           const FormatSpec& spec) noexcept {
  const std::int64_t ka = order_key(a, spec);
  const std::int64_t kb = order_key(b, spec);
  const std::int64_t d = ka > kb ? ka - kb : kb - ka;
  return d == 0 ? 0 : static_cast<std::uint64_t>(d) - 1;
}

std::string format_bits(std::uint64_t bits, const FormatSpec& spec) {
  std::string out;
  out.reserve(static_cast<std::size_t>(spec.total_bits()) + 2);
  for (int i = spec.total_bits() - 1; i >= 0; --i) {
    out.push_back((bits >> i) & 1 ? '1' : '0');
    if (i == spec.total_bits() - 1 || i == spec.mantissa_bits) {
      if (i != 0) out.push_back('|');
    }
  }
  return out;
}

}  // namespace flint::fpformat
