// fpformat — bit-level model of binary floating-point and two's-complement
// integer interpretations of fixed-width bit vectors.
//
// This module is the executable form of Definitions 1-4 of the FLInt paper:
// a k-bit vector B can be read as an unsigned integer UI(B), a signed
// two's-complement integer SI(B), or a binary floating-point number FP(B)
// with j exponent bits and x mantissa bits (k = 1 + j + x).  The generic
// format is parameterized so that the paper's lemmas can be checked not only
// for IEEE-754 binary32/binary64 but exhaustively for tiny widths (e.g. k=8),
// where the full cross product of bit vectors is testable.
//
// All value-level interpretation here is deliberately *independent* of the
// host FPU: FP(B) is computed with integer decomposition + std::ldexp, so the
// lemma tests do not assume the property they are proving.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <string>

namespace flint::fpformat {

/// Width description of a generic binary floating-point format.
/// k = 1 (sign) + exponent_bits + mantissa_bits total bits, k <= 64.
struct FormatSpec {
  int exponent_bits = 8;
  int mantissa_bits = 23;

  [[nodiscard]] constexpr int total_bits() const noexcept {
    return 1 + exponent_bits + mantissa_bits;
  }
  /// Exponent bias: 2^(j-1) - 1 (Definition 3).
  [[nodiscard]] constexpr std::int64_t bias() const noexcept {
    return (std::int64_t{1} << (exponent_bits - 1)) - 1;
  }
  [[nodiscard]] constexpr std::uint64_t exponent_mask() const noexcept {
    return ((std::uint64_t{1} << exponent_bits) - 1) << mantissa_bits;
  }
  [[nodiscard]] constexpr std::uint64_t mantissa_mask() const noexcept {
    return (std::uint64_t{1} << mantissa_bits) - 1;
  }
  [[nodiscard]] constexpr std::uint64_t sign_mask() const noexcept {
    return std::uint64_t{1} << (exponent_bits + mantissa_bits);
  }
  /// Mask of all representable bits (low k bits set).
  [[nodiscard]] constexpr std::uint64_t value_mask() const noexcept {
    return total_bits() == 64 ? ~std::uint64_t{0}
                              : (std::uint64_t{1} << total_bits()) - 1;
  }

  [[nodiscard]] static constexpr FormatSpec binary32() noexcept { return {8, 23}; }
  [[nodiscard]] static constexpr FormatSpec binary64() noexcept { return {11, 52}; }
  [[nodiscard]] static constexpr FormatSpec binary16() noexcept { return {5, 10}; }
  [[nodiscard]] static constexpr FormatSpec bfloat16() noexcept { return {8, 7}; }
  /// Minimal useful format for exhaustive lemma checks: k = 8 bits.
  [[nodiscard]] static constexpr FormatSpec tiny8() noexcept { return {4, 3}; }

  friend constexpr bool operator==(const FormatSpec&, const FormatSpec&) = default;
};

/// Classification of a bit pattern under a FormatSpec (IEEE-754 classes).
enum class FpClass {
  Zero,        ///< all exponent and mantissa bits zero (either sign)
  Denormal,    ///< exponent all-zero, mantissa non-zero
  Normal,      ///< exponent neither all-zero nor all-one
  Infinity,    ///< exponent all-one, mantissa zero
  NaN,         ///< exponent all-one, mantissa non-zero
};

[[nodiscard]] std::string to_string(FpClass c);

/// Unsigned integer interpretation UI(B) (Definition 2, Eq. 2).
/// Bits above the format width must be zero.
[[nodiscard]] std::uint64_t ui_value(std::uint64_t bits, const FormatSpec& spec) noexcept;

/// Signed two's-complement interpretation SI(B) (Definition 2, Eq. 1).
/// The value is sign-extended from the format's MSB.
[[nodiscard]] std::int64_t signed_value(std::uint64_t bits, const FormatSpec& spec) noexcept;

/// Floating-point interpretation FP(B) (Definition 3), including the
/// denormalized format and signed zeros.  Returns +/-inf and NaN for the
/// reserved exponent patterns.  Computed via integer decomposition and
/// std::ldexp on long double, exact for mantissas up to 63 bits.
[[nodiscard]] long double fp_value(std::uint64_t bits, const FormatSpec& spec) noexcept;

/// |FP(B)| per Definition 4 (sign bit ignored).
[[nodiscard]] long double fp_abs_value(std::uint64_t bits, const FormatSpec& spec) noexcept;

[[nodiscard]] FpClass classify(std::uint64_t bits, const FormatSpec& spec) noexcept;

/// Field accessors.
[[nodiscard]] bool sign_bit(std::uint64_t bits, const FormatSpec& spec) noexcept;
[[nodiscard]] std::uint64_t exponent_field(std::uint64_t bits, const FormatSpec& spec) noexcept;
[[nodiscard]] std::uint64_t mantissa_field(std::uint64_t bits, const FormatSpec& spec) noexcept;

/// Composes a bit vector from fields (inverse of the accessors).
[[nodiscard]] std::uint64_t compose(bool sign, std::uint64_t exponent,
                                    std::uint64_t mantissa, const FormatSpec& spec) noexcept;

/// Named special patterns of a format.
[[nodiscard]] std::uint64_t positive_zero(const FormatSpec& spec) noexcept;
[[nodiscard]] std::uint64_t negative_zero(const FormatSpec& spec) noexcept;
[[nodiscard]] std::uint64_t positive_infinity(const FormatSpec& spec) noexcept;
[[nodiscard]] std::uint64_t negative_infinity(const FormatSpec& spec) noexcept;
[[nodiscard]] std::uint64_t smallest_denormal(const FormatSpec& spec) noexcept;
[[nodiscard]] std::uint64_t largest_denormal(const FormatSpec& spec) noexcept;
[[nodiscard]] std::uint64_t smallest_normal(const FormatSpec& spec) noexcept;
[[nodiscard]] std::uint64_t largest_normal(const FormatSpec& spec) noexcept;

/// True iff the pattern participates in the FLInt total order proofs,
/// i.e. it is not NaN (infinities are allowed: they order as extreme values).
[[nodiscard]] bool is_ordered(std::uint64_t bits, const FormatSpec& spec) noexcept;

/// Renders the bit vector as "s|eeee|mmm" for diagnostics.
[[nodiscard]] std::string format_bits(std::uint64_t bits, const FormatSpec& spec);

// ---------------------------------------------------------------------------
// Order navigation on the FLInt total order (-0 < +0, NaN excluded).
// These are the generic-format analogs of core::to_radix_key and of
// nextafter, used by the boundary property tests.
// ---------------------------------------------------------------------------

/// Monotone integer key: k(B1) < k(B2) iff FP(B1) precedes FP(B2) in the
/// FLInt total order.  Negative-signed patterns map below positive ones.
[[nodiscard]] std::int64_t order_key(std::uint64_t bits, const FormatSpec& spec) noexcept;

/// Successor in the total order: the smallest ordered pattern strictly
/// greater than `bits`.  Returns true and writes `out`; false at the top
/// (+infinity) or if `bits` is NaN.
[[nodiscard]] bool next_up(std::uint64_t bits, const FormatSpec& spec,
                           std::uint64_t& out) noexcept;

/// Predecessor in the total order; false at the bottom (-infinity) / NaN.
[[nodiscard]] bool next_down(std::uint64_t bits, const FormatSpec& spec,
                             std::uint64_t& out) noexcept;

/// Number of ordered patterns strictly between a and b (distance along the
/// total order); 0 for equal inputs.  Both inputs must be ordered (non-NaN).
[[nodiscard]] std::uint64_t ulp_distance(std::uint64_t a, std::uint64_t b,
                                         const FormatSpec& spec) noexcept;

// ---------------------------------------------------------------------------
// Native-width helpers (IEEE-754 binary32/binary64 via the host layout).
// These are the production entry points used by core/flint.hpp; the generic
// routines above exist to *validate* them.
// ---------------------------------------------------------------------------

/// Bit pattern of a float as a signed 32-bit integer (SI interpretation).
[[nodiscard]] constexpr std::int32_t float_bits(float v) noexcept {
  return std::bit_cast<std::int32_t>(v);
}
/// Bit pattern of a double as a signed 64-bit integer (SI interpretation).
[[nodiscard]] constexpr std::int64_t double_bits(double v) noexcept {
  return std::bit_cast<std::int64_t>(v);
}
[[nodiscard]] constexpr float float_from_bits(std::int32_t bits) noexcept {
  return std::bit_cast<float>(bits);
}
[[nodiscard]] constexpr double double_from_bits(std::int64_t bits) noexcept {
  return std::bit_cast<double>(bits);
}

}  // namespace flint::fpformat
