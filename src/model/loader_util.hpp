// model/loader_util — internal helpers shared by the external-model
// loaders: native-precision number parsing and the exact threshold
// transforms (< to <=, float64 to float32 narrowing) documented in
// loaders.hpp.  Not installed API; include from src/model/*.cpp only.
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

namespace flint::model::detail {

[[noreturn]] inline void load_fail(const std::string& where,
                                   const std::string& what) {
  throw std::runtime_error("model: " + where + ": " + what);
}

/// Parses a full number token at float32 precision (strtof: one correctly
/// rounded step from the decimal/hex text to the float, no double-rounding).
///
/// errno discipline: strtof only SETS errno (it never clears it), so it is
/// zeroed before the call and ERANGE is tested on the result — a stale
/// ERANGE from an unrelated call must not reject a good token, and a real
/// overflow must not silently load as +-inf.  An overflowing finite token
/// (e.g. "1e9999") is rejected here with the token text; a literal
/// inf/nan spelling sets no errno and passes through to the caller's own
/// finiteness gates.  Underflow (ERANGE with a denormal/zero result) is a
/// faithful parse and is accepted.
inline float parse_token_f32(const std::string& token,
                             const std::string& where) {
  if (token.empty()) load_fail(where, "empty number token");
  char* end = nullptr;
  errno = 0;
  const float v = std::strtof(token.c_str(), &end);
  if (end != token.c_str() + token.size()) {
    load_fail(where, "bad number token '" + token + "'");
  }
  if (errno == ERANGE && (v == HUGE_VALF || v == -HUGE_VALF)) {
    load_fail(where, "number token '" + token + "' overflows float32");
  }
  return v;
}

/// Parses a full number token at float64 precision (same errno discipline
/// as parse_token_f32).
inline double parse_token_f64(const std::string& token,
                              const std::string& where) {
  if (token.empty()) load_fail(where, "empty number token");
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) {
    load_fail(where, "bad number token '" + token + "'");
  }
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
    load_fail(where, "number token '" + token + "' overflows float64");
  }
  return v;
}

/// `x < t` to `x <= pred(t)`: exact for every non-NaN value of T because
/// no representable value lies strictly between pred(t) and t.
template <typename T>
[[nodiscard]] inline T lt_to_le(T t) {
  return std::nextafter(t, -std::numeric_limits<T>::infinity());
}

/// Narrows a float64 `x <= t` threshold to T without changing any
/// comparison outcome on T-typed inputs: round toward -infinity.  For the
/// adjacent floats a < t < b, every float x satisfies (x <= t) == (x <= a),
/// so the round-down choice is exact; round-to-nearest could pick b and
/// flip the outcome at x == b.  Exact (identity) when t is representable.
template <typename T>
[[nodiscard]] inline T narrow_threshold_le(double t) {
  if constexpr (sizeof(T) == 8) {
    return t;
  } else {
    float f = static_cast<float>(t);
    if (static_cast<double>(f) > t) {
      f = std::nextafterf(f, -std::numeric_limits<float>::infinity());
    }
    return f;
  }
}

/// Leaf VALUES (summands, not comparisons) narrow round-to-nearest.
template <typename T>
[[nodiscard]] inline T narrow_value(double v) {
  return static_cast<T>(v);
}

inline void check_threshold_finite(double t, const std::string& where) {
  // +-inf is rejected too: `x < -inf` has no <=-form at any precision
  // (pred(-inf) is -inf itself, which flips the x == -inf outcome), and no
  // trainer emits non-finite splits.
  if (!std::isfinite(t)) load_fail(where, "non-finite split threshold");
}

}  // namespace flint::model::detail
