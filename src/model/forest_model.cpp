#include "model/forest_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flint::model {

const char* to_string(LeafKind kind) {
  switch (kind) {
    case LeafKind::ClassId: return "class";
    case LeafKind::ScoreVector: return "vector";
    case LeafKind::Scalar: return "scalar";
  }
  return "?";
}

const char* to_string(AggregationMode mode) {
  switch (mode) {
    case AggregationMode::ArgmaxVotes: return "vote";
    case AggregationMode::SumScores: return "sum";
  }
  return "?";
}

const char* to_string(Link link) {
  switch (link) {
    case Link::None: return "none";
    case Link::Sigmoid: return "sigmoid";
    case Link::Softmax: return "softmax";
  }
  return "?";
}

LeafKind leaf_kind_from_string(const std::string& s) {
  if (s == "class") return LeafKind::ClassId;
  if (s == "vector") return LeafKind::ScoreVector;
  if (s == "scalar") return LeafKind::Scalar;
  throw std::invalid_argument("unknown leaf kind '" + s +
                              "' (class|vector|scalar)");
}

AggregationMode aggregation_mode_from_string(const std::string& s) {
  if (s == "vote") return AggregationMode::ArgmaxVotes;
  if (s == "sum") return AggregationMode::SumScores;
  throw std::invalid_argument("unknown aggregation '" + s + "' (vote|sum)");
}

Link link_from_string(const std::string& s) {
  if (s == "none") return Link::None;
  if (s == "sigmoid") return Link::Sigmoid;
  if (s == "softmax") return Link::Softmax;
  throw std::invalid_argument("unknown link '" + s +
                              "' (none|sigmoid|softmax)");
}

template <typename T>
int ForestModel<T>::num_classes() const noexcept {
  if (is_vote()) return forest.num_classes();
  if (n_outputs > 1) return n_outputs;
  return aggregation.link == Link::Sigmoid ? 2 : 0;
}

template <typename T>
std::string ForestModel<T>::describe() const {
  std::string s = to_string(leaf_kind);
  if (!is_vote()) s += "[" + std::to_string(n_outputs) + "]";
  s += std::string(" ") + to_string(aggregation.mode);
  if (aggregation.link != Link::None) {
    s += std::string("+") + to_string(aggregation.link);
  }
  s += " (" + std::to_string(forest.size()) + " trees, ";
  const int classes = num_classes();
  s += classes > 0 ? std::to_string(classes) + " classes)" : "regression)";
  return s;
}

template <typename T>
std::string ForestModel<T>::validate() const {
  if (forest.empty()) return "empty forest";
  if (forest.feature_count() > trees::kMaxFeatureCount) {
    // Allocation-bomb gate: engines and key tables size O(features) arrays
    // from this declared count (see kMaxFeatureCount).
    return "feature count " + std::to_string(forest.feature_count()) +
           " exceeds the engine limit of " +
           std::to_string(trees::kMaxFeatureCount);
  }
  if (zero_as_missing && !handles_missing) {
    return "zero_as_missing implies handles_missing";
  }
  for (std::size_t t = 0; t < forest.size(); ++t) {
    if (const std::string err = forest.tree(t).validate(); !err.empty()) {
      return "tree " + std::to_string(t) + ": " + err;
    }
    if (forest.tree(t).feature_count() != forest.feature_count()) {
      return "tree " + std::to_string(t) + ": feature count " +
             std::to_string(forest.tree(t).feature_count()) +
             " != forest feature count " +
             std::to_string(forest.feature_count());
    }
    // Tree::validate skips the feature-range check when the tree declares
    // feature_count 0 (in-progress trees have no width yet), but a *model*
    // with inner nodes must bound every feature index: predictors size
    // input rows from feature_count(), so a container header understating
    // it ("tree 0 3" with splits on f0) would read past the caller's
    // buffer.  Mirrors the verifier's tree.feature_range.
    for (const auto& n : forest.tree(t).nodes()) {
      if (!n.is_leaf() &&
          static_cast<std::size_t>(n.feature) >= forest.feature_count()) {
        return "tree " + std::to_string(t) + ": feature " +
               std::to_string(n.feature) + " outside [0, " +
               std::to_string(forest.feature_count()) + ")";
      }
    }
  }
  if (is_vote()) {
    if (aggregation.mode != AggregationMode::ArgmaxVotes) {
      return "class leaves require vote aggregation";
    }
    if (aggregation.link != Link::None) return "vote models take no link";
    if (n_outputs != 0) return "class leaves have no score outputs";
    if (!leaf_values.empty()) return "class leaves carry no leaf-value table";
    if (!aggregation.base_score.empty()) return "vote models take no base score";
    if (forest.num_classes() < 1) return "vote model needs >= 1 class";
    const int classes = forest.num_classes();
    for (std::size_t t = 0; t < forest.size(); ++t) {
      for (const auto& n : forest.tree(t).nodes()) {
        if (n.is_leaf() && (n.prediction < 0 || n.prediction >= classes)) {
          return "tree " + std::to_string(t) + ": leaf class " +
                 std::to_string(n.prediction) + " out of range for " +
                 std::to_string(classes) + " classes";
        }
      }
    }
    return "";
  }
  // Score kinds.
  if (aggregation.mode != AggregationMode::SumScores) {
    return "score leaves require sum aggregation";
  }
  if (n_outputs < 1) return "score model needs n_outputs >= 1";
  if (leaf_kind == LeafKind::Scalar && n_outputs != 1) {
    return "scalar leaves imply n_outputs == 1";
  }
  if (aggregation.link == Link::Sigmoid && n_outputs != 1) {
    return "sigmoid link implies n_outputs == 1";
  }
  if (aggregation.link == Link::Softmax && n_outputs < 2) {
    return "softmax link implies n_outputs >= 2";
  }
  const auto k = static_cast<std::size_t>(n_outputs);
  if (leaf_values.empty() || leaf_values.size() % k != 0) {
    return "leaf_values size " + std::to_string(leaf_values.size()) +
           " is not a non-empty multiple of n_outputs " + std::to_string(k);
  }
  if (!aggregation.base_score.empty() && aggregation.base_score.size() != k) {
    return "base_score has " + std::to_string(aggregation.base_score.size()) +
           " entries, expected 0 or " + std::to_string(k);
  }
  for (std::size_t i = 0; i < leaf_values.size(); ++i) {
    if (!std::isfinite(static_cast<double>(leaf_values[i]))) {
      return "non-finite leaf value at row " + std::to_string(i / k) +
             " output " + std::to_string(i % k);
    }
  }
  for (std::size_t i = 0; i < aggregation.base_score.size(); ++i) {
    if (!std::isfinite(static_cast<double>(aggregation.base_score[i]))) {
      return "non-finite base score entry " + std::to_string(i);
    }
  }
  const auto rows = leaf_rows();
  // The structural forest's num_classes doubles as the payload bound every
  // engine enforces at pack time; it must equal the row count exactly.
  if (forest.num_classes() != static_cast<int>(rows)) {
    return "structural num_classes " + std::to_string(forest.num_classes()) +
           " != leaf-value rows " + std::to_string(rows);
  }
  for (std::size_t t = 0; t < forest.size(); ++t) {
    for (const auto& n : forest.tree(t).nodes()) {
      if (n.is_leaf() &&
          (n.prediction < 0 ||
           static_cast<std::size_t>(n.prediction) >= rows)) {
        return "tree " + std::to_string(t) + ": leaf row " +
               std::to_string(n.prediction) + " out of range for " +
               std::to_string(rows) + " leaf-value rows";
      }
    }
  }
  return "";
}

template <typename T>
ForestModel<T> from_vote_forest(trees::Forest<T> forest) {
  ForestModel<T> model;
  model.forest = std::move(forest);
  model.leaf_kind = LeafKind::ClassId;
  model.aggregation.mode = AggregationMode::ArgmaxVotes;
  return model;
}

template <typename T>
std::vector<LeafValueRange<T>> per_tree_leaf_ranges(
    const ForestModel<T>& model) {
  std::vector<LeafValueRange<T>> ranges(model.forest.size());
  for (std::size_t t = 0; t < model.forest.size(); ++t) {
    bool first = true;
    LeafValueRange<T>& r = ranges[t];
    for (const auto& n : model.forest.tree(t).nodes()) {
      if (!n.is_leaf()) continue;
      if (model.is_vote()) {
        const T v = static_cast<T>(n.prediction);
        r.lo = first ? v : std::min(r.lo, v);
        r.hi = first ? v : std::max(r.hi, v);
        first = false;
      } else {
        const auto row =
            model.leaf_row(static_cast<std::size_t>(n.prediction));
        for (const T v : row) {
          r.lo = first ? v : std::min(r.lo, v);
          r.hi = first ? v : std::max(r.hi, v);
          first = false;
        }
      }
    }
  }
  return ranges;
}

template <typename T>
void apply_link(Link link, std::size_t n_samples, std::size_t n_outputs,
                T* scores) {
  if (link == Link::None) return;
  const std::size_t k = n_outputs;
  for (std::size_t s = 0; s < n_samples; ++s) {
    T* row = scores + s * k;
    switch (link) {
      case Link::None: break;
      case Link::Sigmoid:
        // Double-domain evaluation, rounded once to T: backends with
        // identical raw sums produce identical final scores.
        for (std::size_t j = 0; j < k; ++j) {
          row[j] = static_cast<T>(
              1.0 / (1.0 + std::exp(-static_cast<double>(row[j]))));
        }
        break;
      case Link::Softmax: {
        double hi = static_cast<double>(row[0]);
        for (std::size_t j = 1; j < k; ++j) {
          hi = std::max(hi, static_cast<double>(row[j]));
        }
        double denom = 0.0;
        for (std::size_t j = 0; j < k; ++j) {
          denom += std::exp(static_cast<double>(row[j]) - hi);
        }
        for (std::size_t j = 0; j < k; ++j) {
          row[j] = static_cast<T>(
              std::exp(static_cast<double>(row[j]) - hi) / denom);
        }
        break;
      }
    }
  }
}

template <typename T>
void finalize_scores(const ForestModel<T>& model, std::size_t n_samples,
                     T* scores) {
  const auto k = static_cast<std::size_t>(std::max(model.n_outputs, 1));
  const auto& base = model.aggregation.base_score;
  if (!base.empty()) {
    for (std::size_t s = 0; s < n_samples; ++s) {
      T* row = scores + s * k;
      for (std::size_t j = 0; j < k; ++j) row[j] += base[j];
    }
  }
  apply_link(model.aggregation.link, n_samples, k, scores);
}

template <typename T>
std::int32_t class_from_scores(const ForestModel<T>& model, const T* scores) {
  const int k = model.n_outputs;
  if (k == 1) {
    // Sigmoid binary: p > 0.5 is class 1; the boundary itself falls to
    // class 0, matching the first-maximum rule over {1-p, p}.
    return scores[0] > static_cast<T>(0.5) ? 1 : 0;
  }
  std::int32_t best = 0;
  for (int j = 1; j < k; ++j) {
    if (scores[j] > scores[best]) best = j;
  }
  return best;
}

template <typename T>
std::int32_t class_from_raw(int n_outputs, const T* raw) {
  if (n_outputs == 1) {
    // sigmoid(raw) > 0.5  <=>  raw > 0; the boundary falls to class 0
    // exactly like class_from_scores' p > 0.5 rule.
    return raw[0] > T{0} ? 1 : 0;
  }
  std::int32_t best = 0;
  for (int j = 1; j < n_outputs; ++j) {
    if (raw[j] > raw[best]) best = j;
  }
  return best;
}

template struct Aggregation<float>;
template struct Aggregation<double>;
template struct ForestModel<float>;
template struct ForestModel<double>;
template ForestModel<float> from_vote_forest<float>(trees::Forest<float>);
template ForestModel<double> from_vote_forest<double>(trees::Forest<double>);
template std::vector<LeafValueRange<float>> per_tree_leaf_ranges<float>(
    const ForestModel<float>&);
template std::vector<LeafValueRange<double>> per_tree_leaf_ranges<double>(
    const ForestModel<double>&);
template void apply_link<float>(Link, std::size_t, std::size_t, float*);
template void apply_link<double>(Link, std::size_t, std::size_t, double*);
template void finalize_scores<float>(const ForestModel<float>&, std::size_t,
                                     float*);
template void finalize_scores<double>(const ForestModel<double>&, std::size_t,
                                      double*);
template std::int32_t class_from_scores<float>(const ForestModel<float>&,
                                               const float*);
template std::int32_t class_from_scores<double>(const ForestModel<double>&,
                                                const double*);
template std::int32_t class_from_raw<float>(int, const float*);
template std::int32_t class_from_raw<double>(int, const double*);

}  // namespace flint::model
