// model/forest_model — the unified forest IR every ingestion path targets
// and every execution backend consumes.
//
// FLInt's integer reinterpretation of `x <= s` applies to ANY axis-aligned
// tree ensemble, not only this repo's internally trained majority-vote
// classifiers.  The IR separates the two things an ensemble is made of:
//
//   * STRUCTURE — a trees::Forest<T>, unchanged, so every existing engine
//     (interpreters, SoA SIMD kernels, compact layouts, codegen) runs it
//     as-is.  The per-leaf int32 payload is overloaded by leaf kind:
//       LeafKind::ClassId     payload = class id (the v1 semantics)
//       LeafKind::ScoreVector payload = ROW INDEX into leaf_values
//       LeafKind::Scalar      payload = row index, n_outputs == 1
//     For score kinds the structural Forest's num_classes() equals the
//     number of leaf-value rows, which keeps every engine's payload-range
//     gate (pack checks, compact key-width fitness) meaningful without any
//     engine knowing about leaf values.
//
//   * SEMANTICS — typed leaf values plus an Aggregation descriptor:
//       ArgmaxVotes  majority vote over per-tree class ids (random forest
//                    classification; ties toward the lower class id)
//       SumScores    scores[k] = base_score[k] + sum over trees of
//                    leaf_values[payload][k], optionally passed through a
//                    link function (GBDT margins, soft-vote probability
//                    averaging, regression)
//
// Thresholds are ingested bit-exactly (hex or round-trip-exact decimal
// parsing at the model's own precision — see docs/MODEL_FORMATS.md), so
// FLInt's threshold encoding remains a pure function of the stored bits for
// imported models exactly as it is for native ones.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trees/forest.hpp"

namespace flint::model {

/// What a leaf's int32 payload means (see file comment).
enum class LeafKind : std::uint8_t { ClassId, ScoreVector, Scalar };

/// How per-tree leaf results combine into one prediction.
enum class AggregationMode : std::uint8_t { ArgmaxVotes, SumScores };

/// Optional transform applied to the summed scores (element-wise sigmoid,
/// row-wise softmax).  Links never change an argmax, so classification
/// through predict_batch is link-invariant; predict_scores applies them.
enum class Link : std::uint8_t { None, Sigmoid, Softmax };

[[nodiscard]] const char* to_string(LeafKind kind);
[[nodiscard]] const char* to_string(AggregationMode mode);
[[nodiscard]] const char* to_string(Link link);

/// Parses the to_string spellings back; throws std::invalid_argument on an
/// unknown token (used by the v2 text reader).
[[nodiscard]] LeafKind leaf_kind_from_string(const std::string& s);
[[nodiscard]] AggregationMode aggregation_mode_from_string(const std::string& s);
[[nodiscard]] Link link_from_string(const std::string& s);

/// Aggregation descriptor.  `base_score` holds one offset per output in
/// margin space (empty = all zeros); it is added before the link.
template <typename T>
struct Aggregation {
  AggregationMode mode = AggregationMode::ArgmaxVotes;
  Link link = Link::None;
  std::vector<T> base_score;
};

/// The unified IR: structure + typed leaves + aggregation.
template <typename T>
struct ForestModel {
  trees::Forest<T> forest;
  LeafKind leaf_kind = LeafKind::ClassId;
  Aggregation<T> aggregation;
  /// Score outputs per sample; 0 for ClassId models.
  int n_outputs = 0;
  /// Row-major rows x n_outputs leaf-value table (empty for ClassId).
  std::vector<T> leaf_values;
  /// Declared missing-value semantics: when true, NaN inputs are accepted
  /// at the Predictor boundary and routed by each node's default-direction
  /// flag; when false the boundary keeps its hard NaN gate.
  bool handles_missing = false;
  /// LightGBM zero_as_missing: inputs with |x| <= 1e-35 (LightGBM's
  /// kZeroThreshold) are rewritten to NaN before routing.  Implies
  /// handles_missing.
  bool zero_as_missing = false;

  [[nodiscard]] bool is_vote() const noexcept {
    return leaf_kind == LeafKind::ClassId;
  }
  [[nodiscard]] std::size_t leaf_rows() const noexcept {
    return n_outputs > 0 ? leaf_values.size() /
                               static_cast<std::size_t>(n_outputs)
                         : 0;
  }
  [[nodiscard]] std::span<const T> leaf_row(std::size_t row) const {
    const auto k = static_cast<std::size_t>(n_outputs);
    return {leaf_values.data() + row * k, k};
  }

  /// Classification classes this model predicts:
  ///   ClassId            forest.num_classes()
  ///   SumScores, k > 1   k (argmax over outputs)
  ///   SumScores, k == 1  2 with a sigmoid link (binary margin), else 0
  /// 0 means regression — predict_batch is unavailable, predict_scores is
  /// the API.
  [[nodiscard]] int num_classes() const noexcept;
  [[nodiscard]] bool is_classifier() const noexcept { return num_classes() > 0; }

  /// One-line id for logs and inspect output, e.g.
  /// "vector[3] sum+softmax (5 trees, 3 classes)".
  [[nodiscard]] std::string describe() const;

  /// Structural + semantic validation: forest non-empty and per-tree valid,
  /// payloads in range (class ids < num_classes, rows < leaf_rows()),
  /// leaf_values shape, kind/mode/link consistency, base_score length,
  /// finite leaf values.  Returns "" when valid, else the first violation.
  [[nodiscard]] std::string validate() const;
};

/// Wraps a trained majority-vote forest as a ForestModel (the v1 bridge).
template <typename T>
[[nodiscard]] ForestModel<T> from_vote_forest(trees::Forest<T> forest);

/// Per-tree [min, max] over the leaf values a tree can emit (ClassId trees
/// report the class-id range).  Drives examples/model_inspect.
template <typename T>
struct LeafValueRange {
  T lo = T{0};
  T hi = T{0};
};
template <typename T>
[[nodiscard]] std::vector<LeafValueRange<T>> per_tree_leaf_ranges(
    const ForestModel<T>& model);

/// Applies `link` in place to n_samples x n_outputs score rows.
/// Sigmoid/softmax are evaluated in double and rounded once to T, so every
/// backend that produces identical raw sums produces identical final
/// scores.
template <typename T>
void apply_link(Link link, std::size_t n_samples, std::size_t n_outputs,
                T* scores);

/// Applies base_score + link to raw per-tree sums: `scores` holds
/// n_samples x n_outputs accumulated leaf sums WITHOUT base; on return it
/// holds the final scores (base added, link applied).
template <typename T>
void finalize_scores(const ForestModel<T>& model, std::size_t n_samples,
                     T* scores);

/// Reduces one sample's FINAL scores to a class id with the repo-wide
/// first-maximum tie rule (k == 1: probability > 0.5 -> class 1).
/// Precondition: model.is_classifier().
template <typename T>
[[nodiscard]] std::int32_t class_from_scores(const ForestModel<T>& model,
                                             const T* scores);

/// The hot-path form over RAW sums (base included, link NOT applied):
/// sigmoid is monotone with p > 0.5 <=> raw > 0, and softmax preserves
/// each row's order, so classification never needs the exp calls.  Must
/// stay aligned with class_from_scores — tests/test_model.cpp pins the
/// equivalence; this is the single implementation the predictors use.
template <typename T>
[[nodiscard]] std::int32_t class_from_raw(int n_outputs, const T* raw);

extern template struct Aggregation<float>;
extern template struct Aggregation<double>;
extern template struct ForestModel<float>;
extern template struct ForestModel<double>;
extern template ForestModel<float> from_vote_forest<float>(trees::Forest<float>);
extern template ForestModel<double> from_vote_forest<double>(trees::Forest<double>);
extern template std::vector<LeafValueRange<float>> per_tree_leaf_ranges<float>(
    const ForestModel<float>&);
extern template std::vector<LeafValueRange<double>> per_tree_leaf_ranges<double>(
    const ForestModel<double>&);
extern template void apply_link<float>(Link, std::size_t, std::size_t, float*);
extern template void apply_link<double>(Link, std::size_t, std::size_t,
                                        double*);
extern template void finalize_scores<float>(const ForestModel<float>&,
                                            std::size_t, float*);
extern template void finalize_scores<double>(const ForestModel<double>&,
                                             std::size_t, double*);
extern template std::int32_t class_from_scores<float>(const ForestModel<float>&,
                                                      const float*);
extern template std::int32_t class_from_scores<double>(
    const ForestModel<double>&, const double*);
extern template std::int32_t class_from_raw<float>(int, const float*);
extern template std::int32_t class_from_raw<double>(int, const double*);

}  // namespace flint::model
