// model/json — minimal recursive-descent JSON reader for the external-model
// loaders (XGBoost dumps, sklearn exports).
//
// Two deliberate deviations from a general-purpose JSON library:
//
//   * numbers keep their RAW TOKEN alongside the parsed double.  Bit-exact
//     threshold ingestion (docs/MODEL_FORMATS.md) re-parses the token with
//     strtof/strtod at the loader's precision, so a producer that prints
//     round-trip decimals (or hex floats) is recovered to the exact stored
//     bits — parsing to double first and narrowing would double-round.
//   * hex-float literals (0x1.99999ap-4) and the special tokens
//     NaN/Infinity/-Infinity are accepted where a number is expected.
//     Strict JSON cannot carry them, but model dumpers emit them and the
//     loaders want to reject NaN thresholds with a real message instead of
//     a parse error.
//
// The reader is strict about everything else (UTF-8 passes through opaque)
// and reports 1-based line/column positions on malformed input.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace flint::model {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// std::map, not unordered: deterministic iteration keeps loader error
/// messages and tests stable.
using JsonObject = std::map<std::string, JsonValue>;

/// One parsed JSON value.  Arrays/objects own their children; the tree is
/// immutable after parse_json returns.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::Object; }

  /// Value accessors; each throws std::runtime_error naming the actual kind
  /// when the value is not of the requested kind.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  /// Checked integer narrowing: throws when the number has a fractional
  /// part or does not fit.
  [[nodiscard]] long long as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;
  /// Raw number token exactly as it appeared in the input ("0.1",
  /// "0x1.99999ap-4", "-Infinity").  Only valid for numbers.
  [[nodiscard]] const std::string& raw_number() const;

  /// Object field lookup: get() returns nullptr when absent, at() throws
  /// std::runtime_error naming the missing key.
  [[nodiscard]] const JsonValue* get(const std::string& key) const;
  [[nodiscard]] const JsonValue& at(const std::string& key) const;

  [[nodiscard]] const char* kind_name() const noexcept;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;  ///< String payload, or the raw token for numbers
  std::shared_ptr<const JsonArray> array_;
  std::shared_ptr<const JsonObject> object_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected).  Throws std::runtime_error with a 1-based line:column position
/// on malformed input.
[[nodiscard]] JsonValue parse_json(const std::string& text);

}  // namespace flint::model
