#include "model/json.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace flint::model {

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) {
    throw std::runtime_error(std::string("json: expected bool, got ") +
                             kind_name());
  }
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::Number) {
    throw std::runtime_error(std::string("json: expected number, got ") +
                             kind_name());
  }
  return number_;
}

long long JsonValue::as_int() const {
  const double d = as_double();
  // Range-gate BEFORE the cast: double -> long long is undefined for NaN
  // and for values outside [-2^63, 2^63) (e.g. a hostile "1e300" node id).
  // 2^63 is exactly representable as a double, so the half-open compare is
  // itself exact.
  constexpr double kTwo63 = 9223372036854775808.0;
  if (!(d >= -kTwo63 && d < kTwo63)) {
    throw std::runtime_error("json: integer out of range: '" + string_ + "'");
  }
  const auto i = static_cast<long long>(d);
  if (static_cast<double>(i) != d) {
    throw std::runtime_error("json: expected integer, got '" + string_ + "'");
  }
  return i;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) {
    throw std::runtime_error(std::string("json: expected string, got ") +
                             kind_name());
  }
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  if (kind_ != Kind::Array) {
    throw std::runtime_error(std::string("json: expected array, got ") +
                             kind_name());
  }
  return *array_;
}

const JsonObject& JsonValue::as_object() const {
  if (kind_ != Kind::Object) {
    throw std::runtime_error(std::string("json: expected object, got ") +
                             kind_name());
  }
  return *object_;
}

const std::string& JsonValue::raw_number() const {
  if (kind_ != Kind::Number) {
    throw std::runtime_error(std::string("json: expected number, got ") +
                             kind_name());
  }
  return string_;
}

const JsonValue* JsonValue::get(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = get(key);
  if (!v) throw std::runtime_error("json: missing key '" + key + "'");
  return *v;
}

const char* JsonValue::kind_name() const noexcept {
  switch (kind_) {
    case Kind::Null: return "null";
    case Kind::Bool: return "bool";
    case Kind::Number: return "number";
    case Kind::String: return "string";
    case Kind::Array: return "array";
    case Kind::Object: return "object";
  }
  return "?";
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw std::runtime_error("json: " + std::to_string(line) + ":" +
                             std::to_string(col) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    // Depth bound: malformed input ("[[[[..." repeated) must throw, not
    // exhaust the stack.  512 is far beyond any real model dump's nesting.
    if (++depth_ > 512) fail("nesting deeper than 512 levels");
    JsonValue v = parse_value_inner();
    --depth_;
    return v;
  }

  JsonValue parse_value_inner() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::String;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (consume_literal("true")) {
          JsonValue v;
          v.kind_ = JsonValue::Kind::Bool;
          v.bool_ = true;
          return v;
        }
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) {
          JsonValue v;
          v.kind_ = JsonValue::Kind::Bool;
          v.bool_ = false;
          return v;
        }
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return {};
        // "nan" is not valid JSON; model dumpers write NaN (handled below).
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject fields;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
    } else {
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        fields[std::move(key)] = parse_value();
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        break;
      }
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::Object;
    v.object_ = std::make_shared<const JsonObject>(std::move(fields));
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
    } else {
      while (true) {
        items.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        break;
      }
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::Array;
    v.array_ = std::make_shared<const JsonArray>(std::move(items));
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // Minimal UTF-8 encoding; surrogate pairs are not reassembled
          // (feature names never need them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    // NaN / Infinity / -Infinity: emitted by some model dumpers.
    if (consume_literal("NaN") || consume_literal("Infinity") ||
        consume_literal("-Infinity") || consume_literal("nan") ||
        consume_literal("inf") || consume_literal("-inf")) {
      const std::string token = text_.substr(start, pos_ - start);
      JsonValue v;
      v.kind_ = JsonValue::Kind::Number;
      v.string_ = token;
      v.number_ = std::strtod(token.c_str(), nullptr);
      return v;
    }
    // Decimal or hex-float token: delegate validation to strtod, then check
    // the consumed span is exactly one token.  errno is cleared first so a
    // prior library call's ERANGE cannot masquerade as ours; overflow maps
    // to +-inf and underflow to 0/denormal, both of which downstream
    // finiteness gates (check_threshold_finite, ForestModel::validate)
    // already police — no silent wraparound is possible.
    const char* begin = text_.c_str() + start;
    char* end = nullptr;
    errno = 0;
    const double d = std::strtod(begin, &end);
    if (end == begin) fail("expected a value");
    pos_ = start + static_cast<std::size_t>(end - begin);
    JsonValue v;
    v.kind_ = JsonValue::Kind::Number;
    v.number_ = d;
    v.string_ = text_.substr(start, pos_ - start);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse_document();
}

}  // namespace flint::model
