// model/loaders — external-model ingestion into the ForestModel IR.
//
// Three front-ends, one contract (docs/MODEL_FORMATS.md):
//
//   * XGBoost JSON dump   (Booster.dump_model(..., dump_format="json"),
//                          optionally wrapped with objective/base_score)
//   * LightGBM text model (Booster.save_model(), the "Tree=N" blocks)
//   * sklearn JSON export (the documented {"format":"sklearn-forest"} shape)
//
// Threshold ingestion is bit-exact in the sense that matters to FLInt: the
// comparison each engine executes is EXACTLY the comparison the source
// model defines, for every input at the model's feature precision.
//
//   * Number tokens are parsed at the source model's native width
//     (strtof for XGBoost's float32 models, strtod for LightGBM/sklearn's
//     float64), so round-trip decimals and hex floats recover the exact
//     stored bits — no double-rounding through an intermediate type.
//   * XGBoost's `x < t` splits become `x <= pred(t)` (the largest float
//     below t): equivalent for every non-NaN float input, exact by the
//     density of the format.
//   * Loading a float64-native model into ForestModel<float> rounds each
//     threshold toward -infinity to the nearest float: `x <= t` and
//     `x <= round_down(t)` agree for EVERY float32 x, so narrowing is
//     exact on float inputs even when the threshold itself is not
//     representable.  (Leaf VALUES narrow round-to-nearest; they are
//     summands, not comparisons, and the documented score tolerances
//     absorb it.  Load as ForestModel<double> for bit-exact scores.)
//
// Missing values and categorical splits are ingested, not rejected:
// XGBoost's per-node "missing" id and sklearn's missing_go_to_left become
// the IR's default-direction flag, LightGBM's decision_type contributes
// default directions, zero_as_missing (ForestModel::zero_as_missing) and
// bitset categorical splits.  Models that route missing values set
// ForestModel::handles_missing, which make_predictor turns into a
// NaN-admitting MissingPolicy; models without any missing routing convert
// to byte-identical forests with the legacy hard NaN reject.
//
// All loaders throw std::runtime_error naming the offending node/field on
// malformed input, NaN or non-finite thresholds, or the few shapes with no
// exact realization (mixed Zero+NaN missing types, average_output,
// linear_tree).
#pragma once

#include <string>

#include "model/forest_model.hpp"

namespace flint::model {

/// External formats convert accepts; Native is the repo's own v1/v2 text.
enum class ModelFormat { Native, XgboostJson, LightgbmText, SklearnJson };

[[nodiscard]] const char* to_string(ModelFormat format);

/// Sniffs the format from file content (not the extension): native files
/// start with "forest"/"tree", LightGBM text contains "Tree=" blocks, JSON
/// documents are split on XGBoost's "nodeid"/"learner" markers vs the
/// sklearn export's "format" tag.  Throws when nothing matches.
[[nodiscard]] ModelFormat detect_model_format(const std::string& content);

/// Parses an XGBoost JSON dump.  Accepts either the bare tree array or a
/// wrapper object {"objective": ..., "base_score": ..., "num_class": ...,
/// "trees": [...]} (see docs/MODEL_FORMATS.md for how the dump is
/// produced).  `n_features` 0 means infer from the deepest feature index.
template <typename T>
[[nodiscard]] ForestModel<T> load_xgboost_json(const std::string& content,
                                               std::size_t n_features = 0);

/// Parses a LightGBM text model (save_model output).
template <typename T>
[[nodiscard]] ForestModel<T> load_lightgbm_text(const std::string& content);

/// Parses the sklearn-forest JSON export.
template <typename T>
[[nodiscard]] ForestModel<T> load_sklearn_json(const std::string& content);

/// Reads `path`, detects the format (or honors `format`), and dispatches.
/// Native files go through model_io's load_any_model.
template <typename T>
[[nodiscard]] ForestModel<T> load_external_model(const std::string& path);
template <typename T>
[[nodiscard]] ForestModel<T> load_external_model(const std::string& path,
                                                 ModelFormat format);

extern template ForestModel<float> load_xgboost_json<float>(const std::string&,
                                                            std::size_t);
extern template ForestModel<double> load_xgboost_json<double>(
    const std::string&, std::size_t);
extern template ForestModel<float> load_lightgbm_text<float>(const std::string&);
extern template ForestModel<double> load_lightgbm_text<double>(
    const std::string&);
extern template ForestModel<float> load_sklearn_json<float>(const std::string&);
extern template ForestModel<double> load_sklearn_json<double>(
    const std::string&);
extern template ForestModel<float> load_external_model<float>(
    const std::string&);
extern template ForestModel<double> load_external_model<double>(
    const std::string&);
extern template ForestModel<float> load_external_model<float>(
    const std::string&, ModelFormat);
extern template ForestModel<double> load_external_model<double>(
    const std::string&, ModelFormat);

}  // namespace flint::model
