// XGBoost JSON-dump ingestion (docs/MODEL_FORMATS.md "XGBoost").
//
// Source shape: the per-tree recursive dump of
// Booster.dump_model(..., dump_format="json") — inner nodes carry
// split/split_condition/yes/no/children, leaves carry "leaf".  XGBoost
// models are float32-native, so number tokens are parsed with strtof (one
// correctly rounded step) and the `x < t` split rule becomes
// `x <= pred(t)` exactly (loaders.hpp).
//
// Aggregation: every XGBoost ensemble is additive.  Leaves become rows of
// the leaf-value table; for multi-class objectives tree i contributes to
// class i % num_class, realized as a one-hot row, so the execution layers
// stay a single "sum rows over trees" epilogue for every objective.
#include <algorithm>
#include <cstdint>
#include <limits>

#include "model/json.hpp"
#include "model/loader_util.hpp"
#include "model/loaders.hpp"

namespace flint::model {

namespace {

using detail::load_fail;

/// "f12", "12" or a numeric feature id.
std::int32_t parse_feature_id(const JsonValue& split, const std::string& where) {
  if (split.is_number()) {
    const long long f = split.as_int();
    if (f < 0 || f > std::numeric_limits<std::int32_t>::max()) {
      load_fail(where, "feature index out of range");
    }
    return static_cast<std::int32_t>(f);
  }
  const std::string& name = split.as_string();
  std::size_t digits = 0;
  if (!name.empty() && (name[0] == 'f' || name[0] == 'x')) digits = 1;
  if (digits >= name.size()) {
    load_fail(where, "unsupported feature name '" + name +
                         "' (expected f<k> or an integer; dump the model "
                         "without feature names)");
  }
  std::int32_t f = 0;
  for (std::size_t i = digits; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') {
      load_fail(where, "unsupported feature name '" + name + "'");
    }
    // Overflow gate: untrusted input must not wrap int32 (UB) into a
    // bogus-but-positive feature index.
    if (f > (std::numeric_limits<std::int32_t>::max() - 9) / 10) {
      load_fail(where, "feature index '" + name + "' out of range");
    }
    f = f * 10 + (name[i] - '0');
  }
  return f;
}

template <typename T>
struct TreeBuilder {
  trees::Tree<T> tree{0};
  std::vector<T> leaf_values;  ///< one scalar per leaf, in payload order
  std::int32_t base_row = 0;   ///< global row index of this tree's leaf 0
  std::int32_t max_feature = -1;
  bool any_missing = false;    ///< some node carried a "missing" id

  /// Emits `node` and its subtree; returns its index.  `depth` bounds the
  /// recursion: a crafted dump with a pathologically deep node chain must
  /// throw, not exhaust the stack (512 dwarfs any trainable tree depth).
  std::int32_t emit(const JsonValue& node, int depth = 0) {
    if (depth > 512) {
      load_fail("xgboost", "tree deeper than 512 levels");
    }
    const std::string where =
        "xgboost node " + (node.get("nodeid")
                               ? std::to_string(node.at("nodeid").as_int())
                               : std::string("?"));
    if (const JsonValue* leaf = node.get("leaf")) {
      const T value = [&] {
        if constexpr (sizeof(T) == 4) {
          return detail::parse_token_f32(leaf->raw_number(), where);
        } else {
          // float32-native model: strtof then widen, both exact.
          return static_cast<T>(
              detail::parse_token_f32(leaf->raw_number(), where));
        }
      }();
      const auto local = static_cast<std::int32_t>(leaf_values.size());
      leaf_values.push_back(value);
      return tree.add_leaf(base_row + local);
    }
    const JsonValue* cond = node.get("split_condition");
    if (!cond || !cond->is_number()) {
      load_fail(where, "inner node without numeric split_condition");
    }
    detail::check_threshold_finite(cond->as_double(), where);
    const std::int32_t feature = parse_feature_id(node.at("split"), where);
    max_feature = std::max(max_feature, feature);
    // x < t goes to "yes"; our rule is x <= s goes left.
    const T split = [&] {
      if constexpr (sizeof(T) == 4) {
        return detail::lt_to_le(detail::parse_token_f32(cond->raw_number(), where));
      } else {
        return detail::lt_to_le(static_cast<T>(
            detail::parse_token_f32(cond->raw_number(), where)));
      }
    }();
    const long long yes = node.at("yes").as_int();
    const long long no = node.at("no").as_int();
    const JsonArray& children = node.at("children").as_array();
    if (children.size() != 2) {
      load_fail(where, "expected exactly 2 children, got " +
                           std::to_string(children.size()));
    }
    const JsonValue* yes_child = nullptr;
    const JsonValue* no_child = nullptr;
    for (const JsonValue& c : children) {
      const long long id = c.at("nodeid").as_int();
      if (id == yes) yes_child = &c;
      if (id == no) no_child = &c;
    }
    if (!yes_child || !no_child || yes_child == no_child) {
      load_fail(where, "children do not match yes/no node ids");
    }
    // NaN routing: "missing" names the child missing values follow.  The
    // yes child is our left (x < t), so missing == yes means default-left.
    // Dumps without the field keep the IR's flag-free NaN-right default
    // (and, with no "missing" anywhere, the model stays non-missing).
    bool default_left = false;
    if (const JsonValue* m = node.get("missing")) {
      any_missing = true;
      const long long miss = m->as_int();
      if (miss == yes) {
        default_left = true;
      } else if (miss != no) {
        load_fail(where, "missing id matches neither yes nor no");
      }
    }
    const std::int32_t self = tree.add_split(feature, split, default_left);
    const std::int32_t left = emit(*yes_child, depth + 1);
    const std::int32_t right = emit(*no_child, depth + 1);
    tree.link(self, left, right);
    return self;
  }
};

}  // namespace

template <typename T>
ForestModel<T> load_xgboost_json(const std::string& content,
                                 std::size_t n_features) {
  const JsonValue doc = parse_json(content);

  std::string objective = "reg:squarederror";
  int num_class = 0;
  double base_score = 0.0;  // margin space; see docs/MODEL_FORMATS.md
  bool has_base = false;
  const JsonArray* tree_array = nullptr;
  if (doc.is_array()) {
    tree_array = &doc.as_array();
  } else {
    if (const JsonValue* o = doc.get("objective")) objective = o->as_string();
    if (const JsonValue* n = doc.get("num_class")) {
      num_class = static_cast<int>(n->as_int());
    }
    if (const JsonValue* b = doc.get("base_score")) {
      base_score = b->as_double();
      has_base = true;
    }
    if (const JsonValue* f = doc.get("n_features")) {
      n_features = static_cast<std::size_t>(f->as_int());
    }
    tree_array = &doc.at("trees").as_array();
  }
  if (tree_array->empty()) load_fail("xgboost", "model has no trees");

  Link link = Link::None;
  int k = 1;
  if (objective.rfind("binary:logistic", 0) == 0 ||
      objective.rfind("binary:logitraw", 0) == 0) {
    link = objective == "binary:logitraw" ? Link::None : Link::Sigmoid;
    k = 1;
  } else if (objective.rfind("multi:", 0) == 0) {
    if (num_class < 2) {
      load_fail("xgboost", "objective '" + objective +
                               "' needs num_class >= 2 in the wrapper");
    }
    if (tree_array->size() % static_cast<std::size_t>(num_class) != 0) {
      load_fail("xgboost",
                std::to_string(tree_array->size()) + " trees is not a "
                "multiple of num_class " + std::to_string(num_class) +
                " (round-robin class assignment would scramble outputs)");
    }
    link = Link::Softmax;
    k = num_class;
  } else if (objective.rfind("reg:", 0) == 0 ||
             objective == "regression") {
    link = Link::None;
    k = 1;
  } else {
    load_fail("xgboost", "unsupported objective '" + objective +
                             "' (binary:logistic|binary:logitraw|multi:*|"
                             "reg:*)");
  }

  ForestModel<T> model;
  model.leaf_kind = k == 1 ? LeafKind::Scalar : LeafKind::ScoreVector;
  model.aggregation.mode = AggregationMode::SumScores;
  model.aggregation.link = link;
  model.n_outputs = k;
  if (has_base) {
    model.aggregation.base_score.assign(static_cast<std::size_t>(k),
                                        detail::narrow_value<T>(base_score));
  }

  std::vector<trees::Tree<T>> built;
  built.reserve(tree_array->size());
  std::int32_t max_feature = -1;
  std::int32_t next_row = 0;
  for (std::size_t t = 0; t < tree_array->size(); ++t) {
    TreeBuilder<T> b;
    b.base_row = next_row;
    const std::int32_t root = b.emit((*tree_array)[t]);
    if (root != 0) load_fail("xgboost", "tree root must be emitted first");
    max_feature = std::max(max_feature, b.max_feature);
    model.handles_missing = model.handles_missing || b.any_missing;
    // One leaf-value row per leaf; multi-class trees write one-hot rows in
    // their class column (tree t contributes to class t % k).
    const int column = k == 1 ? 0 : static_cast<int>(t) % k;
    for (const T v : b.leaf_values) {
      for (int j = 0; j < k; ++j) {
        model.leaf_values.push_back(j == column ? v : T{0});
      }
    }
    next_row += static_cast<std::int32_t>(b.leaf_values.size());
    built.push_back(std::move(b.tree));
  }
  const auto features =
      std::max(n_features, static_cast<std::size_t>(max_feature + 1));
  if (features == 0) load_fail("xgboost", "model uses no features");
  for (auto& tree : built) tree.set_feature_count(features);
  model.forest = trees::Forest<T>(std::move(built), next_row);

  if (const std::string err = model.validate(); !err.empty()) {
    load_fail("xgboost", "converted model invalid: " + err);
  }
  return model;
}

template ForestModel<float> load_xgboost_json<float>(const std::string&,
                                                     std::size_t);
template ForestModel<double> load_xgboost_json<double>(const std::string&,
                                                       std::size_t);

}  // namespace flint::model
