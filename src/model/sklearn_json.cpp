// sklearn-forest JSON ingestion (docs/MODEL_FORMATS.md "scikit-learn").
//
// Source shape: the documented export of a fitted RandomForestClassifier /
// RandomForestRegressor — per-tree parallel arrays straight out of
// sklearn's tree_ attribute (children_left / children_right / feature /
// threshold / value), leaf sentinel children_left[i] == -1.  sklearn's
// split rule is `x <= threshold`, matching this repo's rule directly;
// thresholds are float64-native and narrow round-toward-minus-infinity for
// float models (exact on float inputs; loaders.hpp).
//
// Aggregation: sklearn predicts by AVERAGING per-tree outputs (normalized
// class proportions for classifiers, means for regressors).  Leaf rows are
// normalized and pre-scaled by 1/n_trees at load, so the engines' plain
// sum epilogue reproduces predict_proba / regressor predict directly.
#include <algorithm>
#include <cmath>
#include <cstdint>

#include "model/json.hpp"
#include "model/loader_util.hpp"
#include "model/loaders.hpp"

namespace flint::model {

namespace {

using detail::load_fail;

}  // namespace

template <typename T>
ForestModel<T> load_sklearn_json(const std::string& content) {
  const JsonValue doc = parse_json(content);
  if (!doc.is_object() || !doc.get("format") ||
      doc.at("format").as_string() != "sklearn-forest") {
    load_fail("sklearn", "missing {\"format\": \"sklearn-forest\"} tag");
  }
  const std::string model_type = doc.at("model_type").as_string();
  bool classifier = false;
  if (model_type == "random_forest_classifier" || model_type == "classifier") {
    classifier = true;
  } else if (model_type != "random_forest_regressor" &&
             model_type != "regressor") {
    load_fail("sklearn", "unsupported model_type '" + model_type +
                             "' (random_forest_classifier|"
                             "random_forest_regressor)");
  }
  const auto n_features =
      static_cast<std::size_t>(doc.at("n_features").as_int());
  if (n_features == 0) load_fail("sklearn", "n_features must be >= 1");
  int k = 1;
  if (classifier) {
    k = static_cast<int>(doc.at("n_classes").as_int());
    if (k < 2) load_fail("sklearn", "classifier needs n_classes >= 2");
  }
  const JsonArray& tree_array = doc.at("trees").as_array();
  if (tree_array.empty()) load_fail("sklearn", "model has no trees");
  const double inv_trees = 1.0 / static_cast<double>(tree_array.size());

  ForestModel<T> model;
  model.leaf_kind = classifier ? LeafKind::ScoreVector : LeafKind::Scalar;
  model.aggregation.mode = AggregationMode::SumScores;
  model.aggregation.link = Link::None;
  model.n_outputs = k;

  std::vector<trees::Tree<T>> built;
  built.reserve(tree_array.size());
  std::int32_t next_row = 0;
  for (std::size_t t = 0; t < tree_array.size(); ++t) {
    const std::string where = "sklearn tree " + std::to_string(t);
    const JsonValue& jt = tree_array[t];
    const JsonArray& left = jt.at("children_left").as_array();
    const JsonArray& right = jt.at("children_right").as_array();
    const JsonArray& feature = jt.at("feature").as_array();
    const JsonArray& threshold = jt.at("threshold").as_array();
    const JsonArray& value = jt.at("value").as_array();
    // Optional (sklearn >= 1.3, tree_.missing_go_to_left): per-node NaN
    // default directions.  Exports without it keep the legacy NaN-reject
    // contract.
    const JsonArray* missing_left = nullptr;
    if (const JsonValue* m = jt.get("missing_go_to_left")) {
      missing_left = &m->as_array();
    }
    const std::size_t n_nodes = left.size();
    if (right.size() != n_nodes || feature.size() != n_nodes ||
        threshold.size() != n_nodes || value.size() != n_nodes ||
        n_nodes == 0 || (missing_left && missing_left->size() != n_nodes)) {
      load_fail(where, "ragged or empty node arrays");
    }
    model.handles_missing = model.handles_missing || missing_left != nullptr;
    trees::Tree<T> tree(n_features);
    // sklearn node order is already root-first; emit 1:1, fixing up child
    // links afterwards (indices are preserved).
    for (std::size_t i = 0; i < n_nodes; ++i) {
      const std::string node_where = where + " node " + std::to_string(i);
      const long long l = left[i].as_int();
      const long long r = right[i].as_int();
      if (l < 0) {
        if (r >= 0) load_fail(node_where, "half-leaf node (left<0, right>=0)");
        // Leaf: its value row becomes one leaf-value table row.
        const JsonArray& row = value[i].as_array();
        if (row.size() != static_cast<std::size_t>(k)) {
          load_fail(node_where, "value row has " + std::to_string(row.size()) +
                                    " entries, expected " + std::to_string(k));
        }
        double sum = 0.0;
        std::vector<double> vals(row.size());
        for (std::size_t j = 0; j < row.size(); ++j) {
          vals[j] = detail::parse_token_f64(row[j].raw_number(), node_where);
          if (!std::isfinite(vals[j])) load_fail(node_where, "non-finite value");
          sum += vals[j];
        }
        for (std::size_t j = 0; j < row.size(); ++j) {
          double v = vals[j];
          if (classifier) {
            // Raw leaf rows may be counts (older exports) or proportions
            // (sklearn >= 1.4): normalizing is a no-op for the latter.
            if (sum <= 0.0) load_fail(node_where, "leaf row sums to zero");
            v /= sum;
          }
          model.leaf_values.push_back(detail::narrow_value<T>(v * inv_trees));
        }
        tree.add_leaf(next_row++);
        continue;
      }
      if (l >= static_cast<long long>(n_nodes) ||
          r >= static_cast<long long>(n_nodes) || r < 0) {
        load_fail(node_where, "child index out of range");
      }
      const long long f = feature[i].as_int();
      if (f < 0 || static_cast<std::size_t>(f) >= n_features) {
        load_fail(node_where, "feature index out of range");
      }
      const double th =
          detail::parse_token_f64(threshold[i].raw_number(), node_where);
      detail::check_threshold_finite(th, node_where);
      bool default_left = false;
      if (missing_left) {
        const JsonValue& mv = (*missing_left)[i];
        default_left = mv.is_number() ? mv.as_int() != 0 : mv.as_bool();
      }
      const std::int32_t self =
          tree.add_split(static_cast<std::int32_t>(f),
                         detail::narrow_threshold_le<T>(th), default_left);
      (void)self;
      tree.link(static_cast<std::int32_t>(i), static_cast<std::int32_t>(l),
                static_cast<std::int32_t>(r));
    }
    built.push_back(std::move(tree));
  }
  model.forest = trees::Forest<T>(std::move(built), next_row);

  if (const std::string err = model.validate(); !err.empty()) {
    load_fail("sklearn", "converted model invalid: " + err);
  }
  return model;
}

template ForestModel<float> load_sklearn_json<float>(const std::string&);
template ForestModel<double> load_sklearn_json<double>(const std::string&);

}  // namespace flint::model
