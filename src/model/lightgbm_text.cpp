// LightGBM text-model ingestion (docs/MODEL_FORMATS.md "LightGBM").
//
// Source shape: Booster.save_model() output — a key=value header block
// followed by one "Tree=N" block per tree whose node structure is six
// parallel arrays over internal nodes (split_feature / threshold /
// decision_type / left_child / right_child) plus leaf_value; child entries
// >= 0 index internal nodes, negative entries encode leaf index -(v)-1.
//
// LightGBM's numerical decision is `x <= threshold` — exactly this repo's
// rule, no transform needed.  Thresholds are float64-native: parsed with
// strtod and, for ForestModel<float>, narrowed round-toward-minus-infinity
// (exact on float inputs; loaders.hpp).
//
// decision_type is a bitfield: bit 0 = categorical split, bit 1 = default
// direction (left), bits 2-3 = missing_type (0 = None, 1 = Zero, 2 = NaN).
// Categorical splits become bitset-membership nodes (the threshold token
// indexes the tree's cat_boundaries/cat_threshold arrays; membership goes
// left, like LightGBM).  Missing routing maps onto the IR's per-node
// default-direction flag: NaN-type nodes route NaN by bit 1; Zero-type
// nodes additionally set the model's zero_as_missing, realized as a
// |x| <= 1e-35 -> NaN rewrite at the predictor boundary; None-type nodes
// in a missing-capable model route NaN the way LightGBM does — as if it
// were 0.0.  Models mixing Zero- and NaN-type nodes are rejected (one
// boundary rewrite cannot serve both).
#include <algorithm>
#include <cstdint>
#include <map>
#include <span>
#include <sstream>
#include <vector>

#include "model/loader_util.hpp"
#include "model/loaders.hpp"
#include "trees/tree.hpp"

namespace flint::model {

namespace {

using detail::load_fail;

/// One key=value block ("tree" header or a Tree=N section).
using Block = std::map<std::string, std::string>;

std::vector<std::string> split_tokens(const std::string& s) {
  std::istringstream is(s);
  std::vector<std::string> out;
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

/// Full-token integer parse with loader context ("3junk" is rejected, and
/// a corrupt token names the tree/array it sits in instead of "stol").
long parse_long(const std::string& token, const std::string& where,
                const std::string& what) {
  std::size_t pos = 0;
  try {
    const long v = std::stol(token, &pos);
    if (pos == token.size() && !token.empty()) return v;
  } catch (const std::exception&) {
  }
  load_fail(where, "bad " + what + " '" + token + "'");
}

long require_long(const Block& block, const std::string& key,
                  const std::string& where) {
  const auto it = block.find(key);
  if (it == block.end()) load_fail(where, "missing " + key + "=");
  return parse_long(it->second, where, key);
}

/// Missing-type codes of decision_type bits 2-3.
enum : long { kMissingNone = 0, kMissingZero = 1, kMissingNaN = 2 };

/// `model_missing` = some node anywhere in the model carries categorical or
/// Zero/NaN missing routing, so every numerical node needs its NaN default
/// derived (None-type nodes route NaN like 0.0, LightGBM's behavior).
template <typename T>
trees::Tree<T> build_tree(const Block& block, std::size_t feature_count,
                          std::int32_t base_row, std::size_t& n_leaves_out,
                          bool model_missing, const std::string& where) {
  const long num_leaves = require_long(block, "num_leaves", where);
  if (num_leaves < 1) load_fail(where, "num_leaves < 1");
  n_leaves_out = static_cast<std::size_t>(num_leaves);
  trees::Tree<T> tree(feature_count);
  if (num_leaves == 1) {
    // Single-leaf tree (LightGBM emits these when a boosting round finds
    // no useful split); payload is this tree's only leaf-value row.
    tree.add_leaf(base_row);
    return tree;
  }
  const long n_inner = num_leaves - 1;
  auto arr = [&](const std::string& key) {
    const auto it = block.find(key);
    if (it == block.end()) load_fail(where, "missing " + key + "=");
    auto tokens = split_tokens(it->second);
    if (tokens.size() != static_cast<std::size_t>(n_inner)) {
      load_fail(where, key + " has " + std::to_string(tokens.size()) +
                           " entries, expected " + std::to_string(n_inner));
    }
    return tokens;
  };
  const auto split_feature = arr("split_feature");
  const auto threshold = arr("threshold");
  const auto left_child = arr("left_child");
  const auto right_child = arr("right_child");
  // decision_type is optional (older dumps omit it: all-numerical).
  std::vector<std::string> decision_type;
  if (block.count("decision_type")) decision_type = arr("decision_type");

  // Categorical side tables: the threshold token of a categorical split is
  // an index c, whose bitset is cat_threshold[cat_boundaries[c] ..
  // cat_boundaries[c+1]) (uint32 words, bit k = category k goes left).
  long num_cat = 0;
  if (block.count("num_cat")) num_cat = require_long(block, "num_cat", where);
  std::vector<long> cat_boundaries;
  std::vector<std::uint32_t> cat_words;
  if (num_cat > 0) {
    const auto bounds_it = block.find("cat_boundaries");
    const auto words_it = block.find("cat_threshold");
    if (bounds_it == block.end() || words_it == block.end()) {
      load_fail(where, "num_cat > 0 without cat_boundaries=/cat_threshold=");
    }
    for (const std::string& tok : split_tokens(bounds_it->second)) {
      cat_boundaries.push_back(parse_long(tok, where, "cat_boundaries"));
    }
    if (cat_boundaries.size() != static_cast<std::size_t>(num_cat) + 1) {
      load_fail(where, "cat_boundaries has " +
                           std::to_string(cat_boundaries.size()) +
                           " entries, expected " + std::to_string(num_cat + 1));
    }
    for (const std::string& tok : split_tokens(words_it->second)) {
      const long w = parse_long(tok, where, "cat_threshold");
      if (w < 0 || w > 0xFFFFFFFFl) load_fail(where, "cat_threshold word out of range");
      cat_words.push_back(static_cast<std::uint32_t>(w));
    }
  }

  // Emit internal nodes 0..n_inner-1 in order, then resolve children:
  // non-negative child = internal index, negative = leaf -(v)-1, whose
  // payload is base_row + leaf index.
  std::vector<std::int32_t> inner_pos(static_cast<std::size_t>(n_inner));
  for (long i = 0; i < n_inner; ++i) {
    const std::string node_where = where + " split " + std::to_string(i);
    long dt = 0;
    if (!decision_type.empty()) {
      dt = parse_long(decision_type[static_cast<std::size_t>(i)], node_where,
                      "decision_type");
    }
    const long missing_type = (dt >> 2) & 3;
    if (missing_type == 3) load_fail(node_where, "bad missing_type 3");
    const long feature = parse_long(split_feature[static_cast<std::size_t>(i)],
                                    node_where, "split_feature");
    if (feature < 0 || static_cast<std::size_t>(feature) >= feature_count) {
      load_fail(node_where, "split_feature out of range");
    }
    if (dt & 1) {
      // Categorical membership split.
      const long c = parse_long(threshold[static_cast<std::size_t>(i)],
                                node_where, "categorical threshold index");
      if (c < 0 || c >= num_cat) {
        load_fail(node_where, "categorical threshold index out of range");
      }
      const long begin = cat_boundaries[static_cast<std::size_t>(c)];
      const long end = cat_boundaries[static_cast<std::size_t>(c) + 1];
      if (begin < 0 || end < begin ||
          static_cast<std::size_t>(end) > cat_words.size()) {
        load_fail(node_where, "cat_boundaries out of range");
      }
      if (begin == end) load_fail(node_where, "empty categorical bitset");
      const std::span<const std::uint32_t> words{
          cat_words.data() + begin, static_cast<std::size_t>(end - begin)};
      // NaN at a categorical node: NaN-type routes it right; any other
      // missing_type treats it as category 0 (LightGBM casts missing to 0),
      // i.e. it follows category 0's membership.
      const bool default_left = missing_type == kMissingNaN
                                    ? false
                                    : trees::cat_contains(words, T{0});
      const std::int32_t slot = tree.add_cat_set(words);
      inner_pos[static_cast<std::size_t>(i)] = tree.add_cat_split(
          static_cast<std::int32_t>(feature), slot, default_left);
      continue;
    }
    const double t = detail::parse_token_f64(
        threshold[static_cast<std::size_t>(i)], node_where);
    detail::check_threshold_finite(t, node_where);
    // NaN default: Zero/NaN-type nodes route missing by decision_type's
    // direction bit; None-type nodes in a missing-capable model route NaN
    // as LightGBM does — converted to 0.0, so left iff 0.0 <= t.  In a
    // model with no missing routing anywhere, no flag is set and the
    // converted forest stays byte-identical to what this loader always
    // produced.
    bool default_left = false;
    if (model_missing) {
      default_left =
          missing_type == kMissingNone ? (0.0 <= t) : (dt & 2) != 0;
    }
    inner_pos[static_cast<std::size_t>(i)] =
        tree.add_split(static_cast<std::int32_t>(feature),
                       detail::narrow_threshold_le<T>(t), default_left);
  }
  auto resolve = [&](const std::string& token,
                     const std::string& node_where) -> std::int32_t {
    const long v = parse_long(token, node_where, "child index");
    if (v >= 0) {
      if (v >= n_inner) load_fail(node_where, "child index out of range");
      return inner_pos[static_cast<std::size_t>(v)];
    }
    const long leaf = -v - 1;
    if (leaf >= num_leaves) load_fail(node_where, "leaf index out of range");
    return tree.add_leaf(base_row + static_cast<std::int32_t>(leaf));
  };
  for (long i = 0; i < n_inner; ++i) {
    const std::string node_where = where + " split " + std::to_string(i);
    const std::int32_t left =
        resolve(left_child[static_cast<std::size_t>(i)], node_where);
    const std::int32_t right =
        resolve(right_child[static_cast<std::size_t>(i)], node_where);
    tree.link(inner_pos[static_cast<std::size_t>(i)], left, right);
  }
  return tree;
}

}  // namespace

template <typename T>
ForestModel<T> load_lightgbm_text(const std::string& content) {
  // Cut the file into the header block and Tree=N blocks.
  Block header;
  std::vector<Block> tree_blocks;
  Block* current = &header;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line == "tree") continue;
    if (line.rfind("end of trees", 0) == 0) break;
    // boosting=rf writes this bare flag: prediction is then the MEAN of
    // tree outputs, not the sum — silently converting would be off by a
    // factor of n_trees.
    if (line == "average_output") {
      load_fail("lightgbm",
                "average_output (boosting=rf) models are not supported "
                "(prediction is a mean, not a sum)");
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) continue;  // prose sections (feature_importances:)
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "Tree") {
      tree_blocks.emplace_back();
      current = &tree_blocks.back();
      continue;
    }
    (*current)[key] = value;
  }
  if (tree_blocks.empty()) {
    load_fail("lightgbm", "no Tree= blocks found");
  }
  // linear_tree leaves predict leaf_const + sum(leaf_coeff * x); the plain
  // leaf_value array the converter reads is only half the model.
  if (const auto it = header.find("linear_tree");
      it != header.end() && it->second != "0") {
    load_fail("lightgbm", "linear_tree models are not supported "
                          "(leaves carry linear functions, not constants)");
  }
  const long max_feature_idx = require_long(header, "max_feature_idx", "lightgbm");
  if (max_feature_idx < 0) load_fail("lightgbm", "max_feature_idx < 0");
  const std::size_t feature_count =
      static_cast<std::size_t>(max_feature_idx) + 1;
  long num_class = 1;
  if (header.count("num_class")) {
    num_class = require_long(header, "num_class", "lightgbm");
  }
  std::string objective = "regression";
  if (const auto it = header.find("objective"); it != header.end()) {
    objective = it->second;
  }

  Link link = Link::None;
  int k = 1;
  if (objective.rfind("binary", 0) == 0) {
    // LightGBM predicts 1/(1+exp(-sigmoid*score)); our Link::Sigmoid has
    // no scale parameter, so anything but the default sigmoid=1 would
    // silently change every probability — reject it like multiclassova.
    const std::size_t param = objective.find("sigmoid:");
    if (param != std::string::npos) {
      const std::string value =
          objective.substr(param + 8, objective.find(' ', param) - (param + 8));
      if (detail::parse_token_f64(value, "lightgbm objective") != 1.0) {
        load_fail("lightgbm", "binary objective with sigmoid=" + value +
                                  " is not supported (only sigmoid=1)");
      }
    }
    link = Link::Sigmoid;
    k = 1;
  } else if (objective.rfind("multiclassova", 0) == 0) {
    load_fail("lightgbm", "multiclassova (one-vs-all) is not supported; "
                          "train with objective=multiclass");
  } else if (objective.rfind("multiclass", 0) == 0) {
    if (num_class < 2) load_fail("lightgbm", "multiclass needs num_class >= 2");
    if (tree_blocks.size() % static_cast<std::size_t>(num_class) != 0) {
      load_fail("lightgbm",
                std::to_string(tree_blocks.size()) + " trees is not a "
                "multiple of num_class " + std::to_string(num_class) +
                " (round-robin class assignment would scramble outputs)");
    }
    link = Link::Softmax;
    k = static_cast<int>(num_class);
  } else if (objective.rfind("regression", 0) == 0 || objective.empty()) {
    link = Link::None;
    k = 1;
  } else {
    load_fail("lightgbm", "unsupported objective '" + objective +
                              "' (regression*|binary|multiclass)");
  }

  ForestModel<T> model;
  model.leaf_kind = k == 1 ? LeafKind::Scalar : LeafKind::ScoreVector;
  model.aggregation.mode = AggregationMode::SumScores;
  model.aggregation.link = link;
  model.n_outputs = k;

  // Pre-scan every decision_type: the per-node NaN defaults of None-type
  // nodes only exist when the model routes missing values at all, and the
  // Zero/NaN missing flavors are mutually exclusive model-wide (one
  // boundary rewrite serves the whole model).
  bool any_categorical = false;
  bool any_zero = false;
  bool any_nan = false;
  for (const Block& block : tree_blocks) {
    const auto it = block.find("decision_type");
    if (it == block.end()) continue;
    for (const std::string& tok : split_tokens(it->second)) {
      const long dt = parse_long(tok, "lightgbm decision_type", "decision_type");
      if (dt & 1) any_categorical = true;
      const long mt = (dt >> 2) & 3;
      if (mt == kMissingZero) any_zero = true;
      if (mt == kMissingNaN) any_nan = true;
    }
  }
  if (any_zero && any_nan) {
    load_fail("lightgbm",
              "model mixes Zero and NaN missing_type nodes; one boundary "
              "rewrite cannot serve both (retrain with a single missing "
              "treatment)");
  }
  const bool model_missing = any_categorical || any_zero || any_nan;
  model.handles_missing = model_missing;
  model.zero_as_missing = any_zero;

  std::vector<trees::Tree<T>> built;
  built.reserve(tree_blocks.size());
  std::int32_t next_row = 0;
  for (std::size_t t = 0; t < tree_blocks.size(); ++t) {
    const std::string where = "lightgbm tree " + std::to_string(t);
    std::size_t n_leaves = 0;
    built.push_back(build_tree<T>(tree_blocks[t], feature_count, next_row,
                                  n_leaves, model_missing, where));
    const auto it = tree_blocks[t].find("leaf_value");
    if (it == tree_blocks[t].end()) load_fail(where, "missing leaf_value=");
    const auto tokens = split_tokens(it->second);
    if (tokens.size() != n_leaves) {
      load_fail(where, "leaf_value has " + std::to_string(tokens.size()) +
                           " entries, expected " + std::to_string(n_leaves));
    }
    const int column = k == 1 ? 0 : static_cast<int>(t) % k;
    for (const std::string& tok : tokens) {
      const double v = detail::parse_token_f64(tok, where);
      for (int j = 0; j < k; ++j) {
        model.leaf_values.push_back(j == column ? detail::narrow_value<T>(v)
                                                : T{0});
      }
    }
    next_row += static_cast<std::int32_t>(n_leaves);
  }
  model.forest = trees::Forest<T>(std::move(built), next_row);

  if (const std::string err = model.validate(); !err.empty()) {
    load_fail("lightgbm", "converted model invalid: " + err);
  }
  return model;
}

template ForestModel<float> load_lightgbm_text<float>(const std::string&);
template ForestModel<double> load_lightgbm_text<double>(const std::string&);

}  // namespace flint::model
