#include "model/loaders.hpp"

#include <fstream>
#include <sstream>

#include "model/loader_util.hpp"
#include "model/model_io.hpp"

namespace flint::model {

const char* to_string(ModelFormat format) {
  switch (format) {
    case ModelFormat::Native: return "native";
    case ModelFormat::XgboostJson: return "xgboost-json";
    case ModelFormat::LightgbmText: return "lightgbm-text";
    case ModelFormat::SklearnJson: return "sklearn-json";
  }
  return "?";
}

ModelFormat detect_model_format(const std::string& content) {
  // First non-space character decides JSON vs line-oriented text.
  std::size_t i = 0;
  while (i < content.size() &&
         (content[i] == ' ' || content[i] == '\t' || content[i] == '\n' ||
          content[i] == '\r')) {
    ++i;
  }
  if (i >= content.size()) {
    detail::load_fail("detect", "empty model file");
  }
  const char c = content[i];
  if (c == '{' || c == '[') {
    if (content.find("\"sklearn-forest\"") != std::string::npos) {
      return ModelFormat::SklearnJson;
    }
    if (content.find("\"nodeid\"") != std::string::npos ||
        content.find("\"learner\"") != std::string::npos ||
        content.find("\"split_condition\"") != std::string::npos ||
        content.find("\"leaf\"") != std::string::npos) {
      return ModelFormat::XgboostJson;
    }
    detail::load_fail("detect",
                      "JSON document matches neither the sklearn-forest "
                      "export nor an XGBoost dump");
  }
  if (content.compare(i, 6, "forest") == 0 ||
      content.compare(i, 5, "tree ") == 0 || content[i] == '#') {
    return ModelFormat::Native;
  }
  if (content.find("\nTree=") != std::string::npos ||
      content.compare(i, 5, "Tree=") == 0 ||
      content.compare(i, 4, "tree") == 0) {
    return ModelFormat::LightgbmText;
  }
  detail::load_fail("detect",
                    "unrecognized model format (native forest, XGBoost JSON "
                    "dump, LightGBM text, sklearn-forest JSON)");
}

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) detail::load_fail("load", "cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

}  // namespace

template <typename T>
ForestModel<T> load_external_model(const std::string& path,
                                   ModelFormat format) {
  switch (format) {
    case ModelFormat::Native: return load_any_model<T>(path);
    case ModelFormat::XgboostJson: return load_xgboost_json<T>(read_file(path));
    case ModelFormat::LightgbmText:
      return load_lightgbm_text<T>(read_file(path));
    case ModelFormat::SklearnJson: return load_sklearn_json<T>(read_file(path));
  }
  detail::load_fail("load", "bad format enum");
}

template <typename T>
ForestModel<T> load_external_model(const std::string& path) {
  const std::string content = read_file(path);
  const ModelFormat format = detect_model_format(content);
  if (format == ModelFormat::Native) return load_any_model<T>(path);
  if (format == ModelFormat::XgboostJson) return load_xgboost_json<T>(content);
  if (format == ModelFormat::LightgbmText) {
    return load_lightgbm_text<T>(content);
  }
  return load_sklearn_json<T>(content);
}

template ForestModel<float> load_external_model<float>(const std::string&);
template ForestModel<double> load_external_model<double>(const std::string&);
template ForestModel<float> load_external_model<float>(const std::string&,
                                                       ModelFormat);
template ForestModel<double> load_external_model<double>(const std::string&,
                                                         ModelFormat);

}  // namespace flint::model
