// model/model_io — the v2 text container for ForestModel, and the one
// loader every consumer (CLI, serve, tests) goes through.
//
// v2 format (line-oriented, '#' comments allowed; all floating-point
// payloads are hexadecimal bit patterns of the model's scalar T, so the
// round trip is bit-exact exactly like v1):
//
//   forest v2 <n_trees>
//   kind class|vector|scalar
//   agg vote|sum
//   link none|sigmoid|softmax
//   outputs <k>                  # 0 for kind class
//   classes <num_classes>        # classification classes; 0 = regression
//   base <hex> ... <hex>         # k values; omitted when base_score is empty
//   leaf_values <rows> <k>       # score kinds only
//   v <hex> ... <hex>            # one row per line, k values
//   tree ...                     # n_trees v1 tree blocks; leaf payload =
//   n ...                        # class id (kind class) or row index
//
// A v1 file IS a valid model: load_any_model wraps it as a majority-vote
// ClassId model, so every pre-v2 artifact keeps working unchanged.
#pragma once

#include <iosfwd>
#include <string>

#include "model/forest_model.hpp"

namespace flint::model {

template <typename T>
void write_model(std::ostream& out, const ForestModel<T>& model);

template <typename T>
[[nodiscard]] ForestModel<T> read_model(std::istream& in);

/// File wrappers; throw std::runtime_error on I/O failure or content the
/// v2 parser (or ForestModel::validate) rejects.
template <typename T>
void save_model(const std::string& path, const ForestModel<T>& model);

template <typename T>
[[nodiscard]] ForestModel<T> load_model(const std::string& path);

/// Version-sniffing loader: reads "forest v1 ..." files as majority-vote
/// models and "forest v2 ..." containers natively.  This is what the CLI's
/// predict/serve/inspect commands use, so both generations of artifacts
/// flow through one code path.
template <typename T>
[[nodiscard]] ForestModel<T> load_any_model(const std::string& path);

extern template void write_model<float>(std::ostream&, const ForestModel<float>&);
extern template void write_model<double>(std::ostream&, const ForestModel<double>&);
extern template ForestModel<float> read_model<float>(std::istream&);
extern template ForestModel<double> read_model<double>(std::istream&);
extern template void save_model<float>(const std::string&, const ForestModel<float>&);
extern template void save_model<double>(const std::string&, const ForestModel<double>&);
extern template ForestModel<float> load_model<float>(const std::string&);
extern template ForestModel<double> load_model<double>(const std::string&);
extern template ForestModel<float> load_any_model<float>(const std::string&);
extern template ForestModel<double> load_any_model<double>(const std::string&);

}  // namespace flint::model
