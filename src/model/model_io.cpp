#include "model/model_io.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "trees/serialize.hpp"

namespace flint::model {

namespace {

template <typename T>
using BitsOf = std::conditional_t<sizeof(T) == 4, std::uint32_t, std::uint64_t>;

template <typename T>
std::string hex_bits(T v) {
  std::ostringstream hex;
  hex << std::hex << static_cast<std::uint64_t>(std::bit_cast<BitsOf<T>>(v));
  return hex.str();
}

template <typename T>
T parse_bits(trees::LineReader& reader, const std::string& token,
             const std::string& line) {
  return trees::parse_hex_bits<T>(reader, token, line, "value bits");
}

/// Parses a "<keyword> ..." line, failing with the keyword it wanted and
/// the token it found.
std::istringstream expect_keyword(trees::LineReader& reader,
                                  const std::string& line,
                                  const std::string& keyword) {
  std::istringstream ls(line);
  std::string tag;
  if (!(ls >> tag) || tag != keyword) {
    reader.fail("expected '" + keyword + " ...' (near '" + tag + "')", line);
  }
  return ls;
}

}  // namespace

template <typename T>
void write_model(std::ostream& out, const ForestModel<T>& model) {
  out << "forest v2 " << model.forest.size() << '\n';
  out << "kind " << to_string(model.leaf_kind) << '\n';
  out << "agg " << to_string(model.aggregation.mode) << '\n';
  out << "link " << to_string(model.aggregation.link) << '\n';
  out << "outputs " << model.n_outputs << '\n';
  // Optional missing-value semantics line; omitted for models without
  // missing support so their v2 files are byte-identical to before.
  if (model.handles_missing) {
    out << "missing 1 " << (model.zero_as_missing ? 1 : 0) << '\n';
  }
  out << "classes "
      << (model.is_vote() ? model.forest.num_classes() : model.num_classes())
      << '\n';
  if (!model.is_vote()) {
    if (!model.aggregation.base_score.empty()) {
      out << "base";
      for (const T v : model.aggregation.base_score) {
        out << ' ' << hex_bits(v);
      }
      out << '\n';
    }
    const auto k = static_cast<std::size_t>(model.n_outputs);
    out << "leaf_values " << model.leaf_rows() << ' ' << k << '\n';
    for (std::size_t r = 0; r < model.leaf_rows(); ++r) {
      out << 'v';
      for (std::size_t j = 0; j < k; ++j) {
        out << ' ' << hex_bits(model.leaf_values[r * k + j]);
      }
      out << '\n';
    }
  }
  for (std::size_t t = 0; t < model.forest.size(); ++t) {
    trees::write_tree(out, model.forest.tree(t));
  }
}

template <typename T>
ForestModel<T> read_model(std::istream& in) {
  trees::LineReader reader(in);
  const std::string header_line = reader.next();
  std::istringstream header(header_line);
  std::string tag, version;
  std::size_t n_trees = 0;
  if (!(header >> tag >> version >> n_trees) || tag != "forest" ||
      version != "v2") {
    reader.fail("expected 'forest v2 <trees>' header", header_line);
  }

  ForestModel<T> model;
  {
    std::string line = reader.next();
    auto ls = expect_keyword(reader, line, "kind");
    std::string kind;
    if (!(ls >> kind)) reader.fail("missing leaf kind", line);
    try {
      model.leaf_kind = leaf_kind_from_string(kind);
    } catch (const std::invalid_argument& e) {
      reader.fail(e.what(), line);
    }
  }
  {
    std::string line = reader.next();
    auto ls = expect_keyword(reader, line, "agg");
    std::string mode;
    if (!(ls >> mode)) reader.fail("missing aggregation mode", line);
    try {
      model.aggregation.mode = aggregation_mode_from_string(mode);
    } catch (const std::invalid_argument& e) {
      reader.fail(e.what(), line);
    }
  }
  {
    std::string line = reader.next();
    auto ls = expect_keyword(reader, line, "link");
    std::string link;
    if (!(ls >> link)) reader.fail("missing link", line);
    try {
      model.aggregation.link = link_from_string(link);
    } catch (const std::invalid_argument& e) {
      reader.fail(e.what(), line);
    }
  }
  int outputs = 0;
  {
    std::string line = reader.next();
    auto ls = expect_keyword(reader, line, "outputs");
    if (!(ls >> outputs) || outputs < 0) {
      reader.fail("bad outputs count", line);
    }
    model.n_outputs = outputs;
  }
  int classes = 0;
  {
    std::string line = reader.next();
    // Optional `missing <handles> <zero_as_missing>` line (probe-style,
    // like `base` below): absent means the pre-missing default (hard NaN
    // gate at the predictor boundary).
    {
      std::istringstream probe(line);
      std::string first;
      probe >> first;
      if (first == "missing") {
        int handles = 0, zero = 0;
        if (!(probe >> handles >> zero) || handles < 0 || handles > 1 ||
            zero < 0 || zero > 1 || (zero && !handles)) {
          reader.fail("bad missing line (expected 'missing 0|1 0|1')", line);
        }
        model.handles_missing = handles != 0;
        model.zero_as_missing = zero != 0;
        line = reader.next();
      }
    }
    auto ls = expect_keyword(reader, line, "classes");
    if (!(ls >> classes) || classes < 0) {
      reader.fail("bad classes count", line);
    }
  }

  std::size_t rows = 0;
  if (model.leaf_kind != LeafKind::ClassId) {
    std::string line = reader.next();
    std::istringstream probe(line);
    std::string first;
    probe >> first;
    if (first == "base") {
      std::string tok;
      while (probe >> tok) {
        model.aggregation.base_score.push_back(
            parse_bits<T>(reader, tok, line));
      }
      if (model.aggregation.base_score.size() !=
          static_cast<std::size_t>(outputs)) {
        reader.fail("base line has " +
                        std::to_string(model.aggregation.base_score.size()) +
                        " values, expected " + std::to_string(outputs),
                    line);
      }
      line = reader.next();
    }
    auto ls = expect_keyword(reader, line, "leaf_values");
    std::size_t k = 0;
    if (!(ls >> rows >> k) || k != static_cast<std::size_t>(outputs) ||
        rows == 0) {
      reader.fail("bad leaf_values header (expected 'leaf_values <rows> " +
                      std::to_string(outputs) + "')",
                  line);
    }
    if (rows > static_cast<std::size_t>(0x7FFF'FFFF)) {
      reader.fail("leaf-value table too large (rows must fit int32)", line);
    }
    // Untrusted counts: rows fits int32 (checked above) but k is only
    // gated >= 0, so rows * k can approach 2^62 — reserve a clamped hint
    // (push_back grows geometrically) instead of pre-committing it.
    model.leaf_values.reserve(std::min(rows * k, std::size_t{1} << 20));
    for (std::size_t r = 0; r < rows; ++r) {
      const std::string vline = reader.next();
      std::istringstream vs(vline);
      std::string vtag;
      if (!(vs >> vtag) || vtag != "v") {
        reader.fail("expected leaf-value row " + std::to_string(r) +
                        " (near '" + vtag + "')",
                    vline);
      }
      for (std::size_t j = 0; j < k; ++j) {
        std::string tok;
        if (!(vs >> tok)) {
          reader.fail("leaf-value row " + std::to_string(r) + " has fewer "
                          "than " + std::to_string(k) + " values",
                      vline);
        }
        model.leaf_values.push_back(parse_bits<T>(reader, tok, vline));
      }
    }
  }

  std::vector<trees::Tree<T>> forest_trees;
  forest_trees.reserve(std::min(n_trees, std::size_t{4096}));
  for (std::size_t t = 0; t < n_trees; ++t) {
    forest_trees.push_back(trees::read_tree<T>(reader));
  }
  const int structural_classes =
      model.leaf_kind == LeafKind::ClassId ? classes : static_cast<int>(rows);
  model.forest =
      trees::Forest<T>(std::move(forest_trees), structural_classes);

  if (const std::string err = model.validate(); !err.empty()) {
    throw std::runtime_error("model: invalid v2 container: " + err);
  }
  if (classes != model.num_classes()) {
    throw std::runtime_error(
        "model: v2 header declares " + std::to_string(classes) +
        " classes but the aggregation derives " +
        std::to_string(model.num_classes()));
  }
  return model;
}

template <typename T>
void save_model(const std::string& path, const ForestModel<T>& model) {
  if (const std::string err = model.validate(); !err.empty()) {
    throw std::runtime_error("model: refusing to save invalid model: " + err);
  }
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("model: cannot open '" + path + "' for writing");
  }
  write_model(out, model);
  if (!out) throw std::runtime_error("model: write failure on '" + path + "'");
}

template <typename T>
ForestModel<T> load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("model: cannot open '" + path + "'");
  return read_model<T>(in);
}

template <typename T>
ForestModel<T> load_any_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("model: cannot open '" + path + "'");
  // Version sniff: first content line decides v1 (bare forest) vs v2.
  // LineReader owns the "what counts as a content line" rule (comments,
  // blanks, CRLF), so the sniffer can never disagree with the parsers.
  std::string version;
  {
    trees::LineReader sniffer(in);
    std::string line;
    if (sniffer.try_next(line)) {
      std::istringstream ls(line);
      std::string tag;
      ls >> tag >> version;
    }
  }
  in.clear();
  in.seekg(0);
  if (version == "v2") return read_model<T>(in);
  ForestModel<T> model = from_vote_forest(trees::read_forest<T>(in));
  if (const std::string err = model.validate(); !err.empty()) {
    throw std::runtime_error("model: invalid v1 forest: " + err);
  }
  return model;
}

template void write_model<float>(std::ostream&, const ForestModel<float>&);
template void write_model<double>(std::ostream&, const ForestModel<double>&);
template ForestModel<float> read_model<float>(std::istream&);
template ForestModel<double> read_model<double>(std::istream&);
template void save_model<float>(const std::string&, const ForestModel<float>&);
template void save_model<double>(const std::string&, const ForestModel<double>&);
template ForestModel<float> load_model<float>(const std::string&);
template ForestModel<double> load_model<double>(const std::string&);
template ForestModel<float> load_any_model<float>(const std::string&);
template ForestModel<double> load_any_model<double>(const std::string&);

}  // namespace flint::model
