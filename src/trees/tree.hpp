// trees/tree — decision-tree model structure (paper Section IV-A).
//
// Every node carries a feature index FI(n), split value SP(n), left/right
// child links LC(n)/RC(n) and, for leaves, a prediction PR(n).  Traversal
// follows the paper's rule:
//
//     next = (x[FI(n)] <= SP(n)) ? LC(n) : RC(n)
//
// extended with the repo-wide missing/categorical contract
// (docs/ARCHITECTURE.md "NaN routing"):
//
//   * NaN features are tested FIRST, before any comparison, and route to
//     LC(n) iff the node's default-left flag is set (so a node with no
//     flags routes NaN right — exactly what `x <= s` evaluates to under
//     IEEE, which keeps legacy models bit-identical);
//   * categorical nodes replace the threshold test with bitset membership:
//     go left iff trunc(x) is a member of the node's category set
//     (negative values and values beyond the set are non-members).
//
// Nodes are stored in a flat vector (index 0 = root) so the same model feeds
// the native-tree interpreters and all code generators without conversion.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace flint::trees {

inline constexpr std::int32_t kNoChild = -1;

/// Engine-wide feature-count ceiling: PackedNode stores feature indices as
/// int16, and every packed/SoA/key-table artifact allocates O(features)
/// side tables, so a model declaring more features than this can neither
/// execute nor be safely materialized.  ForestModel::validate (i.e. every
/// loader) and the static verifier enforce it; a hostile header like
/// "max_feature_idx=999999999" must be rejected before anything sizes an
/// allocation from it.
inline constexpr std::size_t kMaxFeatureCount = 32767;

/// Node flag bits: NaN default direction and categorical-membership splits.
inline constexpr std::uint8_t kNodeDefaultLeft = 1;  ///< NaN routes to LC(n)
inline constexpr std::uint8_t kNodeCategorical = 2;  ///< bitset membership test

/// Shared categorical membership rule: trunc(v) is a member iff its bit is
/// set.  Negative values, values at/after the set's end, and NaN are
/// non-members (callers route NaN by the default-direction flag *before*
/// this test; the `!(v >= 0)` guard merely keeps the trunc well-defined).
template <typename T>
[[nodiscard]] inline bool cat_contains(std::span<const std::uint32_t> words,
                                       T v) noexcept {
  if (!(v >= T{0})) return false;
  if (v >= static_cast<T>(words.size() * 32)) return false;
  const auto idx = static_cast<std::uint32_t>(v);
  return ((words[idx >> 5] >> (idx & 31u)) & 1u) != 0;
}

/// One tree node.  `feature == -1` marks a leaf.
template <typename T>
struct Node {
  std::int32_t feature = -1;    ///< FI(n); -1 for leaves
  T split = T{0};               ///< SP(n); unused for categorical nodes
  std::int32_t left = kNoChild;   ///< LC(n), node index
  std::int32_t right = kNoChild;  ///< RC(n), node index
  std::int32_t prediction = -1;   ///< PR(n), class id; valid for leaves
  std::int32_t cat_slot = -1;     ///< category-set slot; -1 when numeric
  std::uint8_t flags = 0;         ///< kNodeDefaultLeft | kNodeCategorical

  [[nodiscard]] bool is_leaf() const noexcept { return feature < 0; }
  [[nodiscard]] bool default_left() const noexcept {
    return (flags & kNodeDefaultLeft) != 0;
  }
  [[nodiscard]] bool is_categorical() const noexcept {
    return (flags & kNodeCategorical) != 0;
  }
};

/// A single decision tree over feature vectors of fixed width.
template <typename T>
class Tree {
 public:
  Tree() = default;
  explicit Tree(std::size_t feature_count) : feature_count_(feature_count) {}

  /// Appends a node and returns its index.
  std::int32_t add_node(const Node<T>& node);

  /// Convenience builders used by the trainer and the tests.
  std::int32_t add_leaf(std::int32_t prediction);
  std::int32_t add_split(std::int32_t feature, T split);
  /// Numeric split with an explicit NaN default direction.
  std::int32_t add_split(std::int32_t feature, T split, bool default_left);
  /// Categorical membership split over the category set in `cat_slot`.
  std::int32_t add_cat_split(std::int32_t feature, std::int32_t cat_slot,
                             bool default_left);
  void link(std::int32_t parent, std::int32_t left, std::int32_t right);

  /// Registers a category bitset (32 categories per word) and returns its
  /// slot id for add_cat_split.
  std::int32_t add_cat_set(std::span<const std::uint32_t> words);
  [[nodiscard]] std::span<const std::uint32_t> cat_set(std::int32_t slot) const;
  [[nodiscard]] std::int32_t cat_slot_count() const noexcept {
    return static_cast<std::int32_t>(cat_offsets_.size());
  }
  /// True when any node carries missing/categorical semantics (flags != 0);
  /// engines use this to pick their NaN-aware paths.
  [[nodiscard]] bool has_special_splits() const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }
  [[nodiscard]] const Node<T>& node(std::int32_t i) const { return nodes_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] Node<T>& node(std::int32_t i) { return nodes_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] std::span<const Node<T>> nodes() const noexcept { return nodes_; }
  [[nodiscard]] std::size_t feature_count() const noexcept { return feature_count_; }
  void set_feature_count(std::size_t n) noexcept { feature_count_ = n; }

  /// Single-sample inference with ordinary floating-point comparisons.
  /// `x.size()` must be >= feature_count().
  [[nodiscard]] std::int32_t predict(std::span<const T> x) const;

  /// Index of the leaf reached for `x` (used by statistics collection).
  [[nodiscard]] std::int32_t leaf_for(std::span<const T> x) const;

  [[nodiscard]] std::size_t leaf_count() const noexcept;
  [[nodiscard]] std::size_t inner_count() const noexcept { return size() - leaf_count(); }
  /// Longest root-to-leaf edge count (a lone leaf has depth 0).
  [[nodiscard]] std::size_t depth() const;

  /// Structural validation: children in range, exactly one parent per
  /// non-root node, every leaf has a prediction, every inner node has both
  /// children and a feature index inside feature_count().  Returns an empty
  /// string if valid, else a description of the first violation.
  [[nodiscard]] std::string validate() const;

 private:
  std::size_t feature_count_ = 0;
  std::vector<Node<T>> nodes_;
  // Category bitsets, slot-indexed views into one flat word pool.
  std::vector<std::uint32_t> cat_words_;
  std::vector<std::int32_t> cat_offsets_;
  std::vector<std::int32_t> cat_sizes_;
};

extern template struct Node<float>;
extern template struct Node<double>;
extern template class Tree<float>;
extern template class Tree<double>;

}  // namespace flint::trees
