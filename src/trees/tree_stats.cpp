#include "trees/tree_stats.hpp"

#include <utility>

namespace flint::trees {

template <typename T>
BranchStats collect_branch_stats(const Tree<T>& tree,
                                 const data::Dataset<T>& dataset) {
  BranchStats stats;
  stats.visits.assign(tree.size(), 0);
  std::vector<std::uint64_t> lefts(tree.size(), 0);
  for (std::size_t r = 0; r < dataset.rows(); ++r) {
    const auto x = dataset.row(r);
    std::int32_t i = 0;
    while (true) {
      ++stats.visits[static_cast<std::size_t>(i)];
      const Node<T>& n = tree.node(i);
      if (n.is_leaf()) break;
      const bool go_left = x[static_cast<std::size_t>(n.feature)] <= n.split;
      if (go_left) ++lefts[static_cast<std::size_t>(i)];
      i = go_left ? n.left : n.right;
    }
  }
  stats.left_probability.assign(tree.size(), 0.5);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    if (!tree.node(static_cast<std::int32_t>(i)).is_leaf() && stats.visits[i] > 0) {
      stats.left_probability[i] = static_cast<double>(lefts[i]) /
                                  static_cast<double>(stats.visits[i]);
    }
  }
  return stats;
}

template <typename T>
std::vector<BranchStats> collect_branch_stats(const Forest<T>& forest,
                                              const data::Dataset<T>& dataset) {
  std::vector<BranchStats> all;
  all.reserve(forest.size());
  for (std::size_t t = 0; t < forest.size(); ++t) {
    all.push_back(collect_branch_stats(forest.tree(t), dataset));
  }
  return all;
}

template <typename T>
TreeShape tree_shape(const Tree<T>& tree) {
  TreeShape shape;
  shape.nodes = tree.size();
  shape.leaves = tree.leaf_count();
  shape.depth = tree.depth();
  if (tree.empty()) return shape;
  // Leaf-depth average via DFS.
  std::uint64_t depth_sum = 0;
  std::vector<std::pair<std::int32_t, std::size_t>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [i, d] = stack.back();
    stack.pop_back();
    const Node<T>& n = tree.node(i);
    if (n.is_leaf()) {
      depth_sum += d;
    } else {
      if (n.split < T{0}) {
        ++shape.negative_splits;
      } else {
        ++shape.nonnegative_splits;
      }
      stack.emplace_back(n.left, d + 1);
      stack.emplace_back(n.right, d + 1);
    }
  }
  shape.mean_leaf_depth =
      shape.leaves ? static_cast<double>(depth_sum) / static_cast<double>(shape.leaves)
                   : 0.0;
  return shape;
}

template BranchStats collect_branch_stats<float>(const Tree<float>&,
                                                 const data::Dataset<float>&);
template BranchStats collect_branch_stats<double>(const Tree<double>&,
                                                  const data::Dataset<double>&);
template std::vector<BranchStats> collect_branch_stats<float>(
    const Forest<float>&, const data::Dataset<float>&);
template std::vector<BranchStats> collect_branch_stats<double>(
    const Forest<double>&, const data::Dataset<double>&);
template TreeShape tree_shape<float>(const Tree<float>&);
template TreeShape tree_shape<double>(const Tree<double>&);

}  // namespace flint::trees
