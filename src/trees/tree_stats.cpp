#include "trees/tree_stats.hpp"

#include <utility>

namespace flint::trees {

template <typename T>
BranchStats collect_branch_stats(const Tree<T>& tree,
                                 const data::Dataset<T>& dataset) {
  BranchStats stats;
  stats.visits.assign(tree.size(), 0);
  std::vector<std::uint64_t> lefts(tree.size(), 0);
  for (std::size_t r = 0; r < dataset.rows(); ++r) {
    const auto x = dataset.row(r);
    std::int32_t i = 0;
    while (true) {
      ++stats.visits[static_cast<std::size_t>(i)];
      const Node<T>& n = tree.node(i);
      if (n.is_leaf()) break;
      const bool go_left = x[static_cast<std::size_t>(n.feature)] <= n.split;
      if (go_left) ++lefts[static_cast<std::size_t>(i)];
      i = go_left ? n.left : n.right;
    }
  }
  stats.left_probability.assign(tree.size(), 0.5);
  for (std::size_t i = 0; i < tree.size(); ++i) {
    if (!tree.node(static_cast<std::int32_t>(i)).is_leaf() && stats.visits[i] > 0) {
      stats.left_probability[i] = static_cast<double>(lefts[i]) /
                                  static_cast<double>(stats.visits[i]);
    }
  }
  return stats;
}

template <typename T>
std::vector<BranchStats> collect_branch_stats(const Forest<T>& forest,
                                              const data::Dataset<T>& dataset) {
  std::vector<BranchStats> all;
  all.reserve(forest.size());
  for (std::size_t t = 0; t < forest.size(); ++t) {
    all.push_back(collect_branch_stats(forest.tree(t), dataset));
  }
  return all;
}

namespace {

/// Single-DFS core of tree_shape/forest_stats: leaves, depth, leaf-depth
/// sum and split-sign counts in one walk.  `on_split`, when non-null, sees
/// every inner node (for the per-feature aggregation of forest_stats).
template <typename T, typename OnSplit>
TreeShape tree_shape_walk(const Tree<T>& tree, OnSplit&& on_split) {
  TreeShape shape;
  shape.nodes = tree.size();
  if (tree.empty()) return shape;
  std::uint64_t depth_sum = 0;
  std::vector<std::pair<std::int32_t, std::size_t>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [i, d] = stack.back();
    stack.pop_back();
    const Node<T>& n = tree.node(i);
    if (d > shape.depth) shape.depth = d;
    if (n.is_leaf()) {
      ++shape.leaves;
      depth_sum += d;
    } else {
      if (n.split < T{0}) {
        ++shape.negative_splits;
      } else {
        ++shape.nonnegative_splits;
      }
      on_split(n);
      stack.emplace_back(n.left, d + 1);
      stack.emplace_back(n.right, d + 1);
    }
  }
  shape.mean_leaf_depth =
      shape.leaves ? static_cast<double>(depth_sum) / static_cast<double>(shape.leaves)
                   : 0.0;
  return shape;
}

}  // namespace

template <typename T>
TreeShape tree_shape(const Tree<T>& tree) {
  return tree_shape_walk(tree, [](const Node<T>&) {});
}

template <typename T>
ForestStats forest_stats(const Forest<T>& forest) {
  ForestStats stats;
  stats.trees.reserve(forest.size());
  stats.features.resize(forest.feature_count());
  double leaf_depth_sum = 0.0;  // sum over all leaves of their depth
  for (std::size_t t = 0; t < forest.size(); ++t) {
    const TreeShape shape =
        tree_shape_walk(forest.tree(t), [&](const Node<T>& n) {
          auto& f = stats.features[static_cast<std::size_t>(n.feature)];
          const double s = static_cast<double>(n.split);
          if (f.splits == 0 || s < f.min_split) f.min_split = s;
          if (f.splits == 0 || s > f.max_split) f.max_split = s;
          ++f.splits;
        });
    stats.total_nodes += shape.nodes;
    stats.total_leaves += shape.leaves;
    if (shape.depth > stats.max_depth) stats.max_depth = shape.depth;
    leaf_depth_sum += shape.mean_leaf_depth * static_cast<double>(shape.leaves);
    stats.trees.push_back(shape);
  }
  stats.mean_leaf_depth =
      stats.total_leaves
          ? leaf_depth_sum / static_cast<double>(stats.total_leaves)
          : 0.0;
  return stats;
}

template BranchStats collect_branch_stats<float>(const Tree<float>&,
                                                 const data::Dataset<float>&);
template BranchStats collect_branch_stats<double>(const Tree<double>&,
                                                  const data::Dataset<double>&);
template std::vector<BranchStats> collect_branch_stats<float>(
    const Forest<float>&, const data::Dataset<float>&);
template std::vector<BranchStats> collect_branch_stats<double>(
    const Forest<double>&, const data::Dataset<double>&);
template TreeShape tree_shape<float>(const Tree<float>&);
template TreeShape tree_shape<double>(const Tree<double>&);
template ForestStats forest_stats<float>(const Forest<float>&);
template ForestStats forest_stats<double>(const Forest<double>&);

}  // namespace flint::trees
