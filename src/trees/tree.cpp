#include "trees/tree.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flint::trees {

template <typename T>
std::int32_t Tree<T>::add_node(const Node<T>& node) {
  nodes_.push_back(node);
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

template <typename T>
std::int32_t Tree<T>::add_leaf(std::int32_t prediction) {
  Node<T> n;
  n.feature = -1;
  n.prediction = prediction;
  return add_node(n);
}

template <typename T>
std::int32_t Tree<T>::add_split(std::int32_t feature, T split) {
  if (feature < 0) throw std::invalid_argument("Tree::add_split: negative feature");
  Node<T> n;
  n.feature = feature;
  n.split = split;
  return add_node(n);
}

template <typename T>
std::int32_t Tree<T>::add_split(std::int32_t feature, T split,
                                bool default_left) {
  const std::int32_t i = add_split(feature, split);
  if (default_left) node(i).flags |= kNodeDefaultLeft;
  return i;
}

template <typename T>
std::int32_t Tree<T>::add_cat_split(std::int32_t feature, std::int32_t cat_slot,
                                    bool default_left) {
  if (feature < 0) {
    throw std::invalid_argument("Tree::add_cat_split: negative feature");
  }
  if (cat_slot < 0 || cat_slot >= cat_slot_count()) {
    throw std::invalid_argument("Tree::add_cat_split: cat_slot out of range");
  }
  Node<T> n;
  n.feature = feature;
  n.cat_slot = cat_slot;
  n.flags = kNodeCategorical;
  if (default_left) n.flags |= kNodeDefaultLeft;
  return add_node(n);
}

template <typename T>
std::int32_t Tree<T>::add_cat_set(std::span<const std::uint32_t> words) {
  if (words.empty()) {
    throw std::invalid_argument("Tree::add_cat_set: empty category set");
  }
  cat_offsets_.push_back(static_cast<std::int32_t>(cat_words_.size()));
  cat_sizes_.push_back(static_cast<std::int32_t>(words.size()));
  cat_words_.insert(cat_words_.end(), words.begin(), words.end());
  return static_cast<std::int32_t>(cat_offsets_.size() - 1);
}

template <typename T>
std::span<const std::uint32_t> Tree<T>::cat_set(std::int32_t slot) const {
  const auto s = static_cast<std::size_t>(slot);
  return {cat_words_.data() + cat_offsets_[s],
          static_cast<std::size_t>(cat_sizes_[s])};
}

template <typename T>
bool Tree<T>::has_special_splits() const noexcept {
  for (const auto& n : nodes_) {
    if (!n.is_leaf() && n.flags != 0) return true;
  }
  return false;
}

template <typename T>
void Tree<T>::link(std::int32_t parent, std::int32_t left, std::int32_t right) {
  auto& p = node(parent);
  p.left = left;
  p.right = right;
}

template <typename T>
std::int32_t Tree<T>::predict(std::span<const T> x) const {
  return node(leaf_for(x)).prediction;
}

template <typename T>
std::int32_t Tree<T>::leaf_for(std::span<const T> x) const {
  std::int32_t i = 0;
  const Node<T>* n = &node(i);
  while (!n->is_leaf()) {
    const T v = x[static_cast<std::size_t>(n->feature)];
    bool go_left;
    if (std::isnan(v)) {
      // Missing routes by the default-direction flag.  Flagless nodes send
      // NaN right — exactly what IEEE `v <= split` evaluates to, so legacy
      // models keep their pre-missing-support behavior bit for bit.
      go_left = n->default_left();
    } else if (n->is_categorical()) {
      go_left = cat_contains(cat_set(n->cat_slot), v);
    } else {
      go_left = v <= n->split;
    }
    i = go_left ? n->left : n->right;
    n = &node(i);
  }
  return i;
}

template <typename T>
std::size_t Tree<T>::leaf_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const Node<T>& n) { return n.is_leaf(); }));
}

template <typename T>
std::size_t Tree<T>::depth() const {
  if (nodes_.empty()) return 0;
  // Iterative DFS with explicit (node, depth) stack; trees can be deep.
  std::size_t max_depth = 0;
  std::vector<std::pair<std::int32_t, std::size_t>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [i, d] = stack.back();
    stack.pop_back();
    const Node<T>& n = node(i);
    if (n.is_leaf()) {
      max_depth = std::max(max_depth, d);
    } else {
      stack.emplace_back(n.left, d + 1);
      stack.emplace_back(n.right, d + 1);
    }
  }
  return max_depth;
}

template <typename T>
std::string Tree<T>::validate() const {
  if (nodes_.empty()) return "tree has no nodes";
  const auto n_nodes = static_cast<std::int32_t>(nodes_.size());
  std::vector<int> parents(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node<T>& n = nodes_[i];
    if (n.is_leaf()) {
      if (n.prediction < 0) {
        return "leaf node " + std::to_string(i) + " has no prediction";
      }
      if (n.left != kNoChild || n.right != kNoChild) {
        return "leaf node " + std::to_string(i) + " has children";
      }
      // Engines force leaf flags/cat_slot on their packed images, so stray
      // values here could never change a prediction — but they make the
      // tree ambiguous (is it a leaf or a mangled split?), so a container
      // carrying them is rejected rather than silently normalized.
      if (n.flags != 0) {
        return "leaf node " + std::to_string(i) + " carries split flags";
      }
      if (n.cat_slot != -1) {
        return "leaf node " + std::to_string(i) + " carries a cat_slot";
      }
      continue;
    }
    if (feature_count_ != 0 &&
        static_cast<std::size_t>(n.feature) >= feature_count_) {
      return "node " + std::to_string(i) + " feature index out of range";
    }
    if (n.is_categorical()) {
      if (n.cat_slot < 0 || n.cat_slot >= cat_slot_count()) {
        return "categorical node " + std::to_string(i) +
               " cat_slot out of range";
      }
    } else if (n.cat_slot != -1) {
      return "numeric node " + std::to_string(i) + " carries a cat_slot";
    } else if (std::isnan(n.split)) {
      // +-inf is ordered and stays (an always-taken split round-trips the
      // containers bit-exactly), but NaN has no integer rank: narrowing and
      // the NaN -> +inf missing substitution both break on it (the
      // verifier's tree.split_nan).  Rejecting here keeps loader-accepted
      // models verify-clean, since every container parse funnels through
      // this method.
      return "numeric node " + std::to_string(i) + " has a NaN split";
    }
    if (n.left < 0 || n.left >= n_nodes || n.right < 0 || n.right >= n_nodes) {
      return "node " + std::to_string(i) + " child index out of range";
    }
    if (n.left == n.right) {
      return "node " + std::to_string(i) + " has identical children";
    }
    ++parents[static_cast<std::size_t>(n.left)];
    ++parents[static_cast<std::size_t>(n.right)];
  }
  if (parents[0] != 0) return "root node has a parent";
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (parents[i] != 1) {
      return "node " + std::to_string(i) + " has " + std::to_string(parents[i]) +
             " parents (expected 1)";
    }
  }
  return {};
}

template struct Node<float>;
template struct Node<double>;
template class Tree<float>;
template class Tree<double>;

}  // namespace flint::trees
