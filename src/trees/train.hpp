// trees/train — CART decision-tree induction (Gini impurity).
//
// The paper trains its forests with scikit-learn's RandomForestClassifier in
// the default configuration (Section V-A); this module rebuilds the relevant
// parts of that inducer: greedy axis-aligned splits minimizing weighted Gini
// impurity, midpoint thresholds between consecutive distinct feature values,
// optional per-split feature subsampling (sqrt(d), the sklearn forest
// default) and a max-depth cap.  Training is deterministic given the seed.
#pragma once

#include <cstdint>
#include <optional>

#include "data/dataset.hpp"
#include "trees/tree.hpp"

namespace flint::trees {

struct TrainOptions {
  /// Maximum tree depth in edges; 0 means a single leaf (sklearn depth 1 ==
  /// one split == our value 1).  Use kUnlimitedDepth for no cap.
  int max_depth = 10;
  /// Minimum samples required to attempt a split (sklearn default 2).
  std::size_t min_samples_split = 2;
  /// Minimum samples in each child (sklearn default 1).
  std::size_t min_samples_leaf = 1;
  /// Number of candidate features per split; 0 = all features,
  /// kSqrtFeatures = floor(sqrt(d)) (the RandomForestClassifier default).
  int max_features = 0;
  /// RNG seed for feature subsampling.
  std::uint64_t seed = 0;

  static constexpr int kUnlimitedDepth = 1 << 20;
  static constexpr int kSqrtFeatures = -1;
};

/// Trains one CART tree.  Throws std::invalid_argument on empty datasets.
template <typename T>
[[nodiscard]] Tree<T> train_tree(const data::Dataset<T>& dataset,
                                 const TrainOptions& options);

/// Fraction of rows whose label the tree reproduces (training accuracy when
/// called with the training set).
template <typename T>
[[nodiscard]] double accuracy(const Tree<T>& tree, const data::Dataset<T>& dataset);

}  // namespace flint::trees
