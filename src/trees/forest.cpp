#include "trees/forest.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <stdexcept>

namespace flint::trees {

template <typename T>
std::int32_t Forest<T>::predict(std::span<const T> x) const {
  const std::vector<int> votes = vote(x);
  const auto it = std::max_element(votes.begin(), votes.end());
  return static_cast<std::int32_t>(it - votes.begin());
}

template <typename T>
std::vector<int> Forest<T>::vote(std::span<const T> x) const {
  std::vector<int> votes(static_cast<std::size_t>(std::max(num_classes_, 1)), 0);
  for (const auto& t : trees_) {
    const std::int32_t c = t.predict(x);
    if (static_cast<std::size_t>(c) >= votes.size()) {
      votes.resize(static_cast<std::size_t>(c) + 1, 0);
    }
    ++votes[static_cast<std::size_t>(c)];
  }
  return votes;
}

template <typename T>
std::size_t Forest<T>::total_nodes() const noexcept {
  std::size_t n = 0;
  for (const auto& t : trees_) n += t.size();
  return n;
}

template <typename T>
std::size_t Forest<T>::max_depth() const {
  std::size_t d = 0;
  for (const auto& t : trees_) d = std::max(d, t.depth());
  return d;
}

template <typename T>
Forest<T> train_forest(const data::Dataset<T>& dataset, const ForestOptions& options) {
  if (options.n_trees <= 0) {
    throw std::invalid_argument("train_forest: n_trees must be positive");
  }
  if (dataset.empty()) {
    throw std::invalid_argument("train_forest: empty dataset");
  }
  std::vector<Tree<T>> trees;
  trees.reserve(static_cast<std::size_t>(options.n_trees));
  for (int t = 0; t < options.n_trees; ++t) {
    TrainOptions per_tree = options.tree;
    per_tree.seed = options.tree.seed + static_cast<std::uint64_t>(t);
    if (options.bootstrap) {
      std::mt19937_64 rng(per_tree.seed ^ 0x9e3779b97f4a7c15ull);
      std::uniform_int_distribution<std::size_t> pick(0, dataset.rows() - 1);
      std::vector<std::size_t> sample(dataset.rows());
      for (auto& s : sample) s = pick(rng);
      trees.push_back(train_tree(dataset.subset(sample), per_tree));
    } else {
      trees.push_back(train_tree(dataset, per_tree));
    }
  }
  return Forest<T>(std::move(trees), dataset.num_classes());
}

template <typename T>
double accuracy(const Forest<T>& forest, const data::Dataset<T>& dataset) {
  if (dataset.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t r = 0; r < dataset.rows(); ++r) {
    if (forest.predict(dataset.row(r)) == dataset.label(r)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(dataset.rows());
}

template class Forest<float>;
template class Forest<double>;
template Forest<float> train_forest<float>(const data::Dataset<float>&, const ForestOptions&);
template Forest<double> train_forest<double>(const data::Dataset<double>&, const ForestOptions&);
template double accuracy<float>(const Forest<float>&, const data::Dataset<float>&);
template double accuracy<double>(const Forest<double>&, const data::Dataset<double>&);

}  // namespace flint::trees
