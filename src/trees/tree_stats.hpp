// trees/tree_stats — empirical branch statistics for cache-aware layout.
//
// The CAGS generator (Buschjaeger et al. ICDM'18, Chen et al. TECS'22, paper
// Section V) lays trees out by the probability that execution takes each
// branch, measured by pushing the *training* set through the tree.  This
// module collects per-node visit counts and left-branch probabilities, plus
// summary statistics used by the reports and the model_inspect example.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "trees/forest.hpp"
#include "trees/tree.hpp"

namespace flint::trees {

/// Per-node empirical statistics, aligned with Tree::nodes() indices.
struct BranchStats {
  std::vector<std::uint64_t> visits;      ///< samples reaching each node
  std::vector<double> left_probability;   ///< P(go left | reached); 0.5 for unseen/leaf

  [[nodiscard]] std::size_t size() const noexcept { return visits.size(); }
};

/// Runs `dataset` through `tree`, counting node visits and left-edge takes.
/// Nodes never visited get probability 0.5 (uninformative prior), as do
/// leaves.
template <typename T>
[[nodiscard]] BranchStats collect_branch_stats(const Tree<T>& tree,
                                               const data::Dataset<T>& dataset);

/// One BranchStats per tree of the forest.
template <typename T>
[[nodiscard]] std::vector<BranchStats> collect_branch_stats(
    const Forest<T>& forest, const data::Dataset<T>& dataset);

/// Aggregate shape metrics for reporting.
struct TreeShape {
  std::size_t nodes = 0;
  std::size_t leaves = 0;
  std::size_t depth = 0;
  double mean_leaf_depth = 0.0;          ///< averaged over leaves
  std::size_t negative_splits = 0;       ///< split values < 0 (SignFlip path)
  std::size_t nonnegative_splits = 0;
};

template <typename T>
[[nodiscard]] TreeShape tree_shape(const Tree<T>& tree);

}  // namespace flint::trees
