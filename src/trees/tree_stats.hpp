// trees/tree_stats — empirical branch statistics for cache-aware layout.
//
// The CAGS generator (Buschjaeger et al. ICDM'18, Chen et al. TECS'22, paper
// Section V) lays trees out by the probability that execution takes each
// branch, measured by pushing the *training* set through the tree.  This
// module collects per-node visit counts and left-branch probabilities, plus
// summary statistics used by the reports and the model_inspect example.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "trees/forest.hpp"
#include "trees/tree.hpp"

namespace flint::trees {

/// Per-node empirical statistics, aligned with Tree::nodes() indices.
struct BranchStats {
  std::vector<std::uint64_t> visits;      ///< samples reaching each node
  std::vector<double> left_probability;   ///< P(go left | reached); 0.5 for unseen/leaf

  [[nodiscard]] std::size_t size() const noexcept { return visits.size(); }
};

/// Runs `dataset` through `tree`, counting node visits and left-edge takes.
/// Nodes never visited get probability 0.5 (uninformative prior), as do
/// leaves.
template <typename T>
[[nodiscard]] BranchStats collect_branch_stats(const Tree<T>& tree,
                                               const data::Dataset<T>& dataset);

/// One BranchStats per tree of the forest.
template <typename T>
[[nodiscard]] std::vector<BranchStats> collect_branch_stats(
    const Forest<T>& forest, const data::Dataset<T>& dataset);

/// Aggregate shape metrics for reporting.  Computed in a single DFS —
/// depth, leaf count and split-sign counts come out of one walk instead of
/// one tree traversal per field (Tree::depth + Tree::leaf_count + a DFS).
struct TreeShape {
  std::size_t nodes = 0;
  std::size_t leaves = 0;
  std::size_t depth = 0;
  double mean_leaf_depth = 0.0;          ///< averaged over leaves
  std::size_t negative_splits = 0;       ///< split values < 0 (SignFlip path)
  std::size_t nonnegative_splits = 0;
};

template <typename T>
[[nodiscard]] TreeShape tree_shape(const Tree<T>& tree);

/// Per-feature split-value summary across the whole forest.
struct FeatureSplitStats {
  std::uint64_t splits = 0;   ///< inner nodes testing this feature
  double min_split = 0.0;     ///< smallest split value (valid iff splits > 0)
  double max_split = 0.0;     ///< largest split value (valid iff splits > 0)
};

/// Whole-forest structural summary, computed once (one DFS per tree) and
/// meant to be passed around instead of re-walking trees: the layout
/// auto-tuner (exec/layout/plan.hpp) sizes the hot slab from the per-tree
/// depth/node counts and prices the c8 rank remap from the per-feature
/// split counts; the split ranges are exposed for reports and inspection
/// tools; the packers read total_nodes for reservation — none of them
/// touch Tree again.
struct ForestStats {
  std::vector<TreeShape> trees;           ///< aligned with Forest::tree indices
  std::vector<FeatureSplitStats> features;  ///< indexed by feature id
  std::size_t total_nodes = 0;
  std::size_t total_leaves = 0;
  std::size_t max_depth = 0;              ///< max over trees
  double mean_leaf_depth = 0.0;           ///< over all leaves of all trees
};

template <typename T>
[[nodiscard]] ForestStats forest_stats(const Forest<T>& forest);

}  // namespace flint::trees
