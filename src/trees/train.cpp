#include "trees/train.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>
#include <vector>

namespace flint::trees {

namespace {

/// Work item for the explicit-stack tree builder: a node slot to fill plus
/// the index range of `order` it owns.
struct BuildItem {
  std::int32_t node_slot;
  std::size_t begin;
  std::size_t end;
  int depth;
};

struct SplitChoice {
  int feature;
  double threshold;      // exact midpoint in double; narrowed to T at store
  std::size_t left_size;
  double gini_sum;       // weighted child impurity (lower = better)
};

/// Gini impurity times sample count: n * (1 - sum p_c^2) = n - sum(cnt^2)/n.
double weighted_gini(const std::vector<std::size_t>& counts, std::size_t n) {
  if (n == 0) return 0.0;
  double sum_sq = 0.0;
  for (const std::size_t c : counts) {
    sum_sq += static_cast<double>(c) * static_cast<double>(c);
  }
  return static_cast<double>(n) - sum_sq / static_cast<double>(n);
}

int majority_class(const std::vector<std::size_t>& counts) {
  std::size_t best = 0;
  int best_class = 0;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] > best) {
      best = counts[c];
      best_class = static_cast<int>(c);
    }
  }
  return best_class;
}

}  // namespace

template <typename T>
Tree<T> train_tree(const data::Dataset<T>& dataset, const TrainOptions& options) {
  if (dataset.empty()) {
    throw std::invalid_argument("train_tree: empty dataset");
  }
  const std::size_t n_rows = dataset.rows();
  const std::size_t n_features = dataset.cols();
  const auto n_classes = static_cast<std::size_t>(dataset.num_classes());

  int candidates_per_split = options.max_features;
  if (candidates_per_split == TrainOptions::kSqrtFeatures) {
    candidates_per_split = std::max(
        1, static_cast<int>(std::sqrt(static_cast<double>(n_features))));
  } else if (candidates_per_split <= 0 ||
             candidates_per_split > static_cast<int>(n_features)) {
    candidates_per_split = static_cast<int>(n_features);
  }

  std::mt19937_64 rng(options.seed);

  Tree<T> tree(n_features);
  // `order` holds the sample indices of the partition a node owns; children
  // repartition their parent's range in place.
  std::vector<std::size_t> order(n_rows);
  std::iota(order.begin(), order.end(), std::size_t{0});

  // Scratch buffers reused across nodes.
  std::vector<std::size_t> total_counts(n_classes);
  std::vector<std::size_t> left_counts(n_classes);
  std::vector<int> feature_pool(n_features);
  std::iota(feature_pool.begin(), feature_pool.end(), 0);
  std::vector<std::pair<T, int>> sorted;  // (value, label) for one feature

  const std::int32_t root = tree.add_leaf(0);  // shape fixed up by the loop
  std::vector<BuildItem> stack{{root, 0, n_rows, 0}};

  while (!stack.empty()) {
    const BuildItem item = stack.back();
    stack.pop_back();
    const std::size_t n = item.end - item.begin;

    std::fill(total_counts.begin(), total_counts.end(), std::size_t{0});
    for (std::size_t i = item.begin; i < item.end; ++i) {
      ++total_counts[static_cast<std::size_t>(dataset.label(order[i]))];
    }
    const int majority = majority_class(total_counts);
    const bool pure =
        total_counts[static_cast<std::size_t>(majority)] == n;

    auto make_leaf = [&] {
      auto& node = tree.node(item.node_slot);
      node.feature = -1;
      node.left = kNoChild;
      node.right = kNoChild;
      node.prediction = majority;
    };

    if (pure || n < options.min_samples_split || item.depth >= options.max_depth) {
      make_leaf();
      continue;
    }

    // Choose candidate features (without replacement).
    for (int i = 0; i < candidates_per_split; ++i) {
      std::uniform_int_distribution<std::size_t> pick(
          static_cast<std::size_t>(i), n_features - 1);
      std::swap(feature_pool[static_cast<std::size_t>(i)], feature_pool[pick(rng)]);
    }

    std::optional<SplitChoice> best;
    for (int ci = 0; ci < candidates_per_split; ++ci) {
      const int feature = feature_pool[static_cast<std::size_t>(ci)];
      sorted.clear();
      sorted.reserve(n);
      for (std::size_t i = item.begin; i < item.end; ++i) {
        const std::size_t row = order[i];
        sorted.emplace_back(dataset.row(row)[static_cast<std::size_t>(feature)],
                            dataset.label(row));
      }
      std::sort(sorted.begin(), sorted.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      if (sorted.front().first == sorted.back().first) continue;  // constant

      std::fill(left_counts.begin(), left_counts.end(), std::size_t{0});
      for (std::size_t i = 0; i + 1 < n; ++i) {
        ++left_counts[static_cast<std::size_t>(sorted[i].second)];
        if (sorted[i].first == sorted[i + 1].first) continue;  // not a boundary
        const std::size_t n_left = i + 1;
        const std::size_t n_right = n - n_left;
        if (n_left < options.min_samples_leaf || n_right < options.min_samples_leaf) {
          continue;
        }
        // Right counts derived from totals; impurity in O(classes).
        double gini = weighted_gini(left_counts, n_left);
        double right_sum_sq = 0.0;
        for (std::size_t c = 0; c < n_classes; ++c) {
          const auto rc = static_cast<double>(total_counts[c] - left_counts[c]);
          right_sum_sq += rc * rc;
        }
        gini += static_cast<double>(n_right) -
                right_sum_sq / static_cast<double>(n_right);
        if (!best || gini < best->gini_sum) {
          const double midpoint =
              (static_cast<double>(sorted[i].first) +
               static_cast<double>(sorted[i + 1].first)) / 2.0;
          best = SplitChoice{feature, midpoint, n_left, gini};
        }
      }
    }

    if (!best) {  // all candidate features constant on this partition
      make_leaf();
      continue;
    }

    // The threshold must satisfy `value <= threshold` exactly for the left
    // rows after narrowing to T; nudge down to the left maximum if the
    // midpoint rounded up onto the right side (only possible at T's
    // precision limit).
    auto threshold = static_cast<T>(best->threshold);
    {
      T left_max = std::numeric_limits<T>::lowest();
      T right_min = std::numeric_limits<T>::max();
      for (std::size_t i = item.begin; i < item.end; ++i) {
        const T v = dataset.row(order[i])[static_cast<std::size_t>(best->feature)];
        // Partition membership is defined by the double-precision midpoint.
        if (static_cast<double>(v) <= best->threshold) {
          left_max = std::max(left_max, v);
        } else {
          right_min = std::min(right_min, v);
        }
      }
      if (!(left_max <= threshold) || !(right_min > threshold)) {
        threshold = left_max;
      }
      // Normalize -0.0 to +0.0: IEEE treats them as equal so the partition
      // is unchanged, and FLInt engines (-0.0 < +0.0 total order) then agree
      // with hardware-float traversal on every possible input (the paper
      // applies the same rewrite during code generation, Section IV-B).
      if (threshold == T{0}) threshold = T{0};
    }

    // Partition `order[begin,end)` by the chosen test (stable not required).
    const auto mid_it = std::partition(
        order.begin() + static_cast<std::ptrdiff_t>(item.begin),
        order.begin() + static_cast<std::ptrdiff_t>(item.end),
        [&](std::size_t row) {
          return dataset.row(row)[static_cast<std::size_t>(best->feature)] <=
                 threshold;
        });
    const auto mid =
        static_cast<std::size_t>(mid_it - order.begin());
    if (mid == item.begin || mid == item.end) {
      // Degenerate split after narrowing; refuse to recurse unboundedly.
      make_leaf();
      continue;
    }

    auto& node = tree.node(item.node_slot);
    node.feature = best->feature;
    node.split = threshold;
    node.prediction = -1;
    const std::int32_t left = tree.add_leaf(0);
    const std::int32_t right = tree.add_leaf(0);
    tree.link(item.node_slot, left, right);
    stack.push_back({right, mid, item.end, item.depth + 1});
    stack.push_back({left, item.begin, mid, item.depth + 1});
  }
  return tree;
}

template <typename T>
double accuracy(const Tree<T>& tree, const data::Dataset<T>& dataset) {
  if (dataset.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t r = 0; r < dataset.rows(); ++r) {
    if (tree.predict(dataset.row(r)) == dataset.label(r)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(dataset.rows());
}

template Tree<float> train_tree<float>(const data::Dataset<float>&, const TrainOptions&);
template Tree<double> train_tree<double>(const data::Dataset<double>&, const TrainOptions&);
template double accuracy<float>(const Tree<float>&, const data::Dataset<float>&);
template double accuracy<double>(const Tree<double>&, const data::Dataset<double>&);

}  // namespace flint::trees
