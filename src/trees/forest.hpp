// trees/forest — bagged random-forest ensemble over CART trees.
//
// Mirrors scikit-learn's RandomForestClassifier as used by the paper:
// each tree is trained on a bootstrap resample of the training set with
// sqrt(d) feature subsampling per split; prediction is a majority vote over
// the per-tree class predictions (ties resolved toward the lower class id,
// matching argmax over vote counts).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "trees/train.hpp"
#include "trees/tree.hpp"

namespace flint::trees {

struct ForestOptions {
  int n_trees = 10;
  TrainOptions tree;       ///< per-tree options; tree.seed is the forest seed
  bool bootstrap = true;   ///< sample n rows with replacement per tree
};

template <typename T>
class Forest {
 public:
  Forest() = default;
  Forest(std::vector<Tree<T>> trees, int num_classes)
      : trees_(std::move(trees)), num_classes_(num_classes) {}

  [[nodiscard]] std::size_t size() const noexcept { return trees_.size(); }
  [[nodiscard]] bool empty() const noexcept { return trees_.empty(); }
  [[nodiscard]] const Tree<T>& tree(std::size_t i) const { return trees_[i]; }
  [[nodiscard]] Tree<T>& tree(std::size_t i) { return trees_[i]; }
  [[nodiscard]] std::span<const Tree<T>> trees() const noexcept { return trees_; }
  [[nodiscard]] int num_classes() const noexcept { return num_classes_; }
  [[nodiscard]] std::size_t feature_count() const {
    return trees_.empty() ? 0 : trees_.front().feature_count();
  }
  /// True when any tree carries missing/categorical node semantics.
  [[nodiscard]] bool has_special_splits() const noexcept {
    for (const auto& t : trees_) {
      if (t.has_special_splits()) return true;
    }
    return false;
  }

  /// Majority-vote prediction with float comparisons (reference semantics
  /// for every other execution engine in this repo).
  [[nodiscard]] std::int32_t predict(std::span<const T> x) const;

  /// Per-class vote counts for one sample (length num_classes()).
  [[nodiscard]] std::vector<int> vote(std::span<const T> x) const;

  /// Total node count across all trees.
  [[nodiscard]] std::size_t total_nodes() const noexcept;
  /// Maximum tree depth across the ensemble.
  [[nodiscard]] std::size_t max_depth() const;

 private:
  std::vector<Tree<T>> trees_;
  int num_classes_ = 0;
};

/// Trains a forest; deterministic in options.tree.seed.  Each tree t draws
/// its bootstrap sample and its split-candidate RNG from seed + t.
template <typename T>
[[nodiscard]] Forest<T> train_forest(const data::Dataset<T>& dataset,
                                     const ForestOptions& options);

/// Fraction of rows classified correctly by majority vote.
template <typename T>
[[nodiscard]] double accuracy(const Forest<T>& forest, const data::Dataset<T>& dataset);

extern template class Forest<float>;
extern template class Forest<double>;

}  // namespace flint::trees
