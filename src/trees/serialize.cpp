#include "trees/serialize.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

namespace flint::trees {

namespace {

template <typename T>
using BitsOf = std::conditional_t<sizeof(T) == 4, std::uint32_t, std::uint64_t>;

/// The index-th whitespace-delimited token of `line` (empty when absent),
/// so error messages can name the offending token instead of echoing the
/// whole line.
std::string token_at(const std::string& line, std::size_t index) {
  std::istringstream ls(line);
  std::string token;
  for (std::size_t i = 0; ls >> token; ++i) {
    if (i == index) return token;
  }
  return {};
}

}  // namespace

std::string LineReader::next() {
  std::string line;
  if (!try_next(line)) {
    fail("unexpected end of input");
  }
  return line;
}

bool LineReader::try_next(std::string& line) {
  while (std::getline(in_, line)) {
    ++line_no_;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i < line.size() && line[i] != '#') return true;
  }
  return false;
}

void LineReader::fail(const std::string& what, const std::string& line) const {
  std::string msg = "serialize: line " + std::to_string(line_no_) + ": " + what;
  if (!line.empty()) {
    constexpr std::size_t kMaxContext = 60;
    msg += ": \"" +
           (line.size() > kMaxContext ? line.substr(0, kMaxContext) + "..."
                                      : line) +
           "\"";
  }
  throw std::runtime_error(msg);
}

template <typename T>
T parse_hex_bits(const LineReader& reader, const std::string& token,
                 const std::string& line, const std::string& what) {
  std::uint64_t bits = 0;
  std::istringstream hs(token);
  char leftover = 0;
  if (token.empty() || !(hs >> std::hex >> bits) || (hs >> leftover)) {
    reader.fail("bad " + what + " (near '" + token + "')", line);
  }
  if constexpr (sizeof(T) == 4) {
    if (bits > 0xFFFF'FFFFull) {
      reader.fail(what + " '" + token + "' exceeds 32 bits", line);
    }
  }
  return std::bit_cast<T>(static_cast<BitsOf<T>>(bits));
}

template <typename T>
void write_tree(std::ostream& out, const Tree<T>& tree) {
  out << "tree " << tree.feature_count() << ' ' << tree.size() << '\n';
  // Trees with missing/categorical semantics write the extended node form
  // (trailing <flags> <cat_slot>) plus a `cats` block; plain trees keep the
  // legacy 5-field lines so old files and new files of old models are
  // byte-identical.
  const bool special = tree.has_special_splits() || tree.cat_slot_count() > 0;
  if (special && tree.cat_slot_count() > 0) {
    out << "cats " << tree.cat_slot_count() << '\n';
    for (std::int32_t s = 0; s < tree.cat_slot_count(); ++s) {
      const auto words = tree.cat_set(s);
      out << "c " << words.size();
      for (const std::uint32_t w : words) {
        std::ostringstream hex;
        hex << std::hex << w;
        out << ' ' << hex.str();
      }
      out << '\n';
    }
  }
  for (const auto& n : tree.nodes()) {
    std::ostringstream hex;
    hex << std::hex << static_cast<std::uint64_t>(std::bit_cast<BitsOf<T>>(n.split));
    out << "n " << n.feature << ' ' << hex.str() << ' ' << n.left << ' '
        << n.right << ' ' << n.prediction;
    if (special) {
      out << ' ' << static_cast<int>(n.flags) << ' ' << n.cat_slot;
    }
    out << '\n';
  }
}

template <typename T>
Tree<T> read_tree(LineReader& reader) {
  const std::string header_line = reader.next();
  std::istringstream header(header_line);
  std::string tag;
  std::size_t feature_count = 0;
  std::size_t n_nodes = 0;
  if (!(header >> tag) || tag != "tree") {
    reader.fail("expected 'tree <features> <nodes>' header (near '" +
                    token_at(header_line, 0) + "')",
                header_line);
  }
  if (!(header >> feature_count >> n_nodes)) {
    reader.fail("bad tree header counts (near '" +
                    token_at(header_line, 1) + " " +
                    token_at(header_line, 2) + "')",
                header_line);
  }
  Tree<T> tree(feature_count);
  const auto parse_node_line = [&](const std::string& line, std::size_t i) {
    std::istringstream ls(line);
    std::string ntag, hex;
    Node<T> node;
    if (!(ls >> ntag) || ntag != "n") {
      reader.fail("expected node " + std::to_string(i) + " (near '" +
                      token_at(line, 0) + "')",
                  line);
    }
    if (!(ls >> node.feature >> hex >> node.left >> node.right >>
          node.prediction)) {
      // Replay the typed field sequence (int, hex token, int, int, int) to
      // name the first token that failed to parse.
      std::istringstream probe(line);
      std::string tok;
      probe >> tok;  // "n"
      std::size_t field = 1;
      for (; field <= 5; ++field) {
        bool ok;
        if (field == 2) {
          std::string h;
          ok = static_cast<bool>(probe >> h);
        } else {
          std::int32_t v;
          ok = static_cast<bool>(probe >> v);
        }
        if (!ok) break;
      }
      reader.fail("bad node line (near '" + token_at(line, field) + "')",
                  line);
    }
    // Optional extended fields (missing/categorical semantics): a trailing
    // `<flags> <cat_slot>` pair.  Legacy 5-field lines default to 0 / -1.
    int flags = 0;
    std::int32_t cat_slot = -1;
    if (ls >> flags) {
      if (!(ls >> cat_slot) || flags < 0 ||
          flags > (kNodeDefaultLeft | kNodeCategorical)) {
        reader.fail("bad node flags on node " + std::to_string(i), line);
      }
      node.flags = static_cast<std::uint8_t>(flags);
      node.cat_slot = cat_slot;
    }
    node.split = parse_hex_bits<T>(reader, hex, line,
                                   "split bits on node " + std::to_string(i));
    tree.add_node(node);
  };
  std::size_t first_node = 0;
  if (n_nodes > 0) {
    // The optional `cats` block sits between the tree header and node 0;
    // probe the first content line and fall through when it is node 0.
    const std::string line = reader.next();
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "cats") {
      std::size_t n_slots = 0;
      if (!(ls >> n_slots) || n_slots == 0) {
        reader.fail("bad cats header (near '" + token_at(line, 1) + "')",
                    line);
      }
      for (std::size_t s = 0; s < n_slots; ++s) {
        const std::string cline = reader.next();
        std::istringstream cs(cline);
        std::string ctag;
        std::size_t n_words = 0;
        if (!(cs >> ctag >> n_words) || ctag != "c" || n_words == 0) {
          reader.fail("bad category-set line for slot " + std::to_string(s),
                      cline);
        }
        // Allocation bound: every word is a whitespace-separated token on
        // THIS line, so a count exceeding the line length is a lie — reject
        // it before sizing the vector (a hostile "c 99999999999" must not
        // allocate gigabytes just to fail token-by-token later).
        if (n_words > cline.size()) {
          reader.fail("category-set word count " + std::to_string(n_words) +
                          " exceeds line length",
                      cline);
        }
        std::vector<std::uint32_t> words(n_words);
        for (std::size_t w = 0; w < n_words; ++w) {
          std::string token;
          if (!(cs >> token)) {
            reader.fail("category set slot " + std::to_string(s) + " has " +
                            std::to_string(w) + " words, expected " +
                            std::to_string(n_words),
                        cline);
          }
          words[w] = std::bit_cast<std::uint32_t>(parse_hex_bits<float>(
              reader, token, cline,
              "category word on slot " + std::to_string(s)));
        }
        tree.add_cat_set(words);
      }
    } else {
      parse_node_line(line, 0);
      first_node = 1;
    }
  }
  for (std::size_t i = first_node; i < n_nodes; ++i) {
    parse_node_line(reader.next(), i);
  }
  if (const std::string err = tree.validate(); !err.empty()) {
    reader.fail("invalid tree: " + err);
  }
  return tree;
}

template <typename T>
Tree<T> read_tree(std::istream& in) {
  LineReader reader(in);
  return read_tree<T>(reader);
}

template <typename T>
void write_forest(std::ostream& out, const Forest<T>& forest) {
  out << "forest v1 " << forest.num_classes() << ' ' << forest.size() << '\n';
  for (std::size_t t = 0; t < forest.size(); ++t) {
    write_tree(out, forest.tree(t));
  }
}

template <typename T>
Forest<T> read_forest(std::istream& in) {
  LineReader reader(in);
  const std::string header_line = reader.next();
  std::istringstream header(header_line);
  std::string tag, version;
  int num_classes = 0;
  std::size_t n_trees = 0;
  if (!(header >> tag >> version) || tag != "forest") {
    reader.fail("expected 'forest v1 <classes> <trees>' header (near '" +
                    token_at(header_line, 0) + "')",
                header_line);
  }
  if (version == "v2") {
    reader.fail(
        "this is a v2 model container (typed leaves); load it with "
        "model::load_model / load_any_model, not trees::load_forest");
  }
  if (version != "v1") {
    reader.fail("unsupported forest version '" + version + "'", header_line);
  }
  if (!(header >> num_classes >> n_trees)) {
    reader.fail("bad forest header counts (near '" +
                    token_at(header_line, 2) + " " +
                    token_at(header_line, 3) + "')",
                header_line);
  }
  std::vector<Tree<T>> trees;
  // The header count is untrusted: reserve only a clamped hint (push_back
  // grows geometrically past it) so "forest v1 2 99999999999" cannot
  // pre-commit memory it never backs with tree blocks.
  trees.reserve(std::min(n_trees, std::size_t{4096}));
  for (std::size_t t = 0; t < n_trees; ++t) {
    trees.push_back(read_tree<T>(reader));
    // Tree::validate cannot see the forest-level class count, but every
    // engine family — interpreters, SoA kernels, and generated jit code —
    // indexes a num_classes-wide vote array by leaf class ids without a
    // hot-path bounds check, so a header that understates num_classes must
    // be rejected here.
    for (const auto& n : trees.back().nodes()) {
      if (n.is_leaf() && n.prediction >= num_classes) {
        reader.fail("tree " + std::to_string(t) + ": leaf class " +
                    std::to_string(n.prediction) + " out of range for " +
                    std::to_string(num_classes) + " classes");
      }
    }
  }
  return Forest<T>(std::move(trees), num_classes);
}

template <typename T>
void save_forest(const std::string& path, const Forest<T>& forest) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("serialize: cannot open '" + path +
                             "' for writing");
  }
  write_forest(out, forest);
  if (!out) throw std::runtime_error("serialize: write failure on '" + path + "'");
}

template <typename T>
Forest<T> load_forest(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("serialize: cannot open '" + path + "'");
  return read_forest<T>(in);
}

template float parse_hex_bits<float>(const LineReader&, const std::string&,
                                     const std::string&, const std::string&);
template double parse_hex_bits<double>(const LineReader&, const std::string&,
                                       const std::string&, const std::string&);
template void write_tree<float>(std::ostream&, const Tree<float>&);
template void write_tree<double>(std::ostream&, const Tree<double>&);
template Tree<float> read_tree<float>(std::istream&);
template Tree<double> read_tree<double>(std::istream&);
template Tree<float> read_tree<float>(LineReader&);
template Tree<double> read_tree<double>(LineReader&);
template void write_forest<float>(std::ostream&, const Forest<float>&);
template void write_forest<double>(std::ostream&, const Forest<double>&);
template Forest<float> read_forest<float>(std::istream&);
template Forest<double> read_forest<double>(std::istream&);
template void save_forest<float>(const std::string&, const Forest<float>&);
template void save_forest<double>(const std::string&, const Forest<double>&);
template Forest<float> load_forest<float>(const std::string&);
template Forest<double> load_forest<double>(const std::string&);

}  // namespace flint::trees
