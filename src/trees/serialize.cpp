#include "trees/serialize.hpp"

#include <bit>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace flint::trees {

namespace {

template <typename T>
using BitsOf = std::conditional_t<sizeof(T) == 4, std::uint32_t, std::uint64_t>;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("serialize: " + what);
}

std::string next_line(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') return line;
  }
  fail("unexpected end of input");
}

}  // namespace

template <typename T>
void write_tree(std::ostream& out, const Tree<T>& tree) {
  out << "tree " << tree.feature_count() << ' ' << tree.size() << '\n';
  for (const auto& n : tree.nodes()) {
    std::ostringstream hex;
    hex << std::hex << static_cast<std::uint64_t>(std::bit_cast<BitsOf<T>>(n.split));
    out << "n " << n.feature << ' ' << hex.str() << ' ' << n.left << ' '
        << n.right << ' ' << n.prediction << '\n';
  }
}

template <typename T>
Tree<T> read_tree(std::istream& in) {
  std::istringstream header(next_line(in));
  std::string tag;
  std::size_t feature_count = 0;
  std::size_t n_nodes = 0;
  if (!(header >> tag >> feature_count >> n_nodes) || tag != "tree") {
    fail("expected 'tree <features> <nodes>' header");
  }
  Tree<T> tree(feature_count);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    std::istringstream ls(next_line(in));
    std::string ntag, hex;
    Node<T> node;
    if (!(ls >> ntag >> node.feature >> hex >> node.left >> node.right >>
          node.prediction) ||
        ntag != "n") {
      fail("bad node line " + std::to_string(i));
    }
    std::uint64_t bits = 0;
    std::istringstream hs(hex);
    if (!(hs >> std::hex >> bits)) fail("bad split bits on node " + std::to_string(i));
    node.split = std::bit_cast<T>(static_cast<BitsOf<T>>(bits));
    tree.add_node(node);
  }
  if (const std::string err = tree.validate(); !err.empty()) {
    fail("invalid tree: " + err);
  }
  return tree;
}

template <typename T>
void write_forest(std::ostream& out, const Forest<T>& forest) {
  out << "forest v1 " << forest.num_classes() << ' ' << forest.size() << '\n';
  for (std::size_t t = 0; t < forest.size(); ++t) {
    write_tree(out, forest.tree(t));
  }
}

template <typename T>
Forest<T> read_forest(std::istream& in) {
  std::istringstream header(next_line(in));
  std::string tag, version;
  int num_classes = 0;
  std::size_t n_trees = 0;
  if (!(header >> tag >> version >> num_classes >> n_trees) || tag != "forest" ||
      version != "v1") {
    fail("expected 'forest v1 <classes> <trees>' header");
  }
  std::vector<Tree<T>> trees;
  trees.reserve(n_trees);
  for (std::size_t t = 0; t < n_trees; ++t) {
    trees.push_back(read_tree<T>(in));
    // Tree::validate cannot see the forest-level class count, but every
    // engine family — interpreters, SoA kernels, and generated jit code —
    // indexes a num_classes-wide vote array by leaf class ids without a
    // hot-path bounds check, so a header that understates num_classes must
    // be rejected here.
    for (const auto& n : trees.back().nodes()) {
      if (n.is_leaf() && n.prediction >= num_classes) {
        fail("tree " + std::to_string(t) + ": leaf class " +
             std::to_string(n.prediction) + " out of range for " +
             std::to_string(num_classes) + " classes");
      }
    }
  }
  return Forest<T>(std::move(trees), num_classes);
}

template <typename T>
void save_forest(const std::string& path, const Forest<T>& forest) {
  std::ofstream out(path);
  if (!out) fail("cannot open '" + path + "' for writing");
  write_forest(out, forest);
  if (!out) fail("write failure on '" + path + "'");
}

template <typename T>
Forest<T> load_forest(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open '" + path + "'");
  return read_forest<T>(in);
}

template void write_tree<float>(std::ostream&, const Tree<float>&);
template void write_tree<double>(std::ostream&, const Tree<double>&);
template Tree<float> read_tree<float>(std::istream&);
template Tree<double> read_tree<double>(std::istream&);
template void write_forest<float>(std::ostream&, const Forest<float>&);
template void write_forest<double>(std::ostream&, const Forest<double>&);
template Forest<float> read_forest<float>(std::istream&);
template Forest<double> read_forest<double>(std::istream&);
template void save_forest<float>(const std::string&, const Forest<float>&);
template void save_forest<double>(const std::string&, const Forest<double>&);
template Forest<float> load_forest<float>(const std::string&);
template Forest<double> load_forest<double>(const std::string&);

}  // namespace flint::trees
