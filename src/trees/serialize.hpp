// trees/serialize — exact text serialization of trees and forests.
//
// Split values are stored as hexadecimal bit patterns, not decimal, so the
// round trip is bit-exact; this matters because FLInt's threshold encoding
// and the generated immediates are functions of the exact bits.
//
// v1 format (line-oriented, '#' comments allowed):
//   forest v1 <num_classes> <n_trees>
//   tree <feature_count> <n_nodes>
//   cats <n_slots>                       (optional; categorical trees only)
//   c <n_words> <word_hex> ...           (one line per category-set slot)
//   n <feature> <split_bits_hex> <left> <right> <prediction> [<flags> <cat_slot>]
//
// The trailing <flags> <cat_slot> pair (missing-value default direction,
// categorical membership) is written only for trees that carry such
// semantics, so files of plain trees are byte-identical to the original
// 5-field format.
//
// The v2 container (typed leaves + aggregation + leaf-value table) wraps
// the same tree blocks; it lives in model/model_io.hpp because it carries a
// model::ForestModel.  load_forest on a v2 file fails with a message
// pointing there.
//
// Parse errors throw std::runtime_error carrying the 1-based line number
// and the offending token, e.g.
//   serialize: line 7: bad node line (near 'xyz'): "n 3 xyz 1 2 -1"
#pragma once

#include <iosfwd>
#include <string>

#include "trees/forest.hpp"
#include "trees/tree.hpp"

namespace flint::trees {

/// Line-counting reader shared by the v1 forest parser and the v2 model
/// parser (model/model_io.cpp): skips '#' comments and blank lines, tracks
/// the 1-based number of the last line handed out, and formats every parse
/// failure with that position.
class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  /// Next non-comment, non-blank line; throws via fail() at end of input.
  [[nodiscard]] std::string next();

  /// True and fills `line` when another content line exists; false at EOF.
  [[nodiscard]] bool try_next(std::string& line);

  /// 1-based number of the last line returned (0 before the first).
  [[nodiscard]] std::size_t line_number() const noexcept { return line_no_; }

  /// Throws std::runtime_error as "serialize: line <n>: <what>"; pass the
  /// offending line text to append it (truncated) for context.
  [[noreturn]] void fail(const std::string& what,
                         const std::string& line = {}) const;

 private:
  std::istream& in_;
  std::size_t line_no_ = 0;
};

/// Parses one hexadecimal bit-pattern token into T's exact bits (the
/// storage form of every floating-point payload in v1 and v2 files).
/// Rejects trailing characters and patterns wider than T, failing through
/// `reader` so the message carries the line number, `what` and the token.
template <typename T>
[[nodiscard]] T parse_hex_bits(const LineReader& reader,
                               const std::string& token,
                               const std::string& line,
                               const std::string& what);

template <typename T>
void write_tree(std::ostream& out, const Tree<T>& tree);

template <typename T>
[[nodiscard]] Tree<T> read_tree(std::istream& in);

/// Reader-based form used by multi-section parsers (read_forest, the v2
/// model container) so line numbers stay correct across blocks.
template <typename T>
[[nodiscard]] Tree<T> read_tree(LineReader& reader);

template <typename T>
void write_forest(std::ostream& out, const Forest<T>& forest);

template <typename T>
[[nodiscard]] Forest<T> read_forest(std::istream& in);

/// Convenience file wrappers; throw std::runtime_error on I/O failure or
/// malformed content (including structurally invalid trees, which are
/// rejected via Tree::validate()).
template <typename T>
void save_forest(const std::string& path, const Forest<T>& forest);

template <typename T>
[[nodiscard]] Forest<T> load_forest(const std::string& path);

}  // namespace flint::trees
