// trees/serialize — exact text serialization of trees and forests.
//
// Split values are stored as hexadecimal bit patterns, not decimal, so the
// round trip is bit-exact; this matters because FLInt's threshold encoding
// and the generated immediates are functions of the exact bits.
//
// Format (line-oriented, '#' comments allowed):
//   forest v1 <num_classes> <n_trees>
//   tree <feature_count> <n_nodes>
//   n <feature> <split_bits_hex> <left> <right> <prediction>   (per node)
#pragma once

#include <iosfwd>
#include <string>

#include "trees/forest.hpp"
#include "trees/tree.hpp"

namespace flint::trees {

template <typename T>
void write_tree(std::ostream& out, const Tree<T>& tree);

template <typename T>
[[nodiscard]] Tree<T> read_tree(std::istream& in);

template <typename T>
void write_forest(std::ostream& out, const Forest<T>& forest);

template <typename T>
[[nodiscard]] Forest<T> read_forest(std::istream& in);

/// Convenience file wrappers; throw std::runtime_error on I/O failure or
/// malformed content (including structurally invalid trees, which are
/// rejected via Tree::validate()).
template <typename T>
void save_forest(const std::string& path, const Forest<T>& forest);

template <typename T>
[[nodiscard]] Forest<T> load_forest(const std::string& path);

}  // namespace flint::trees
