// core/thread_annotations — clang thread-safety analysis support.
//
// Two layers:
//
//   1. The FLINT_* annotation macros (clang's -Wthread-safety attribute
//      set; no-ops under GCC/MSVC, so every build compiles identically and
//      only the CI clang job enforces the proofs).
//   2. Annotated lock types.  libstdc++'s std::mutex/std::lock_guard carry
//      no capability attributes, so locking through them is invisible to
//      the analysis; core::Mutex / core::MutexLock / core::UniqueLock are
//      thin zero-overhead wrappers the analysis CAN see.  UniqueLock
//      satisfies BasicLockable, so it drops straight into
//      std::condition_variable_any::wait.
//
// Usage conventions in this codebase:
//   * every mutex-guarded member is declared FLINT_GUARDED_BY(its mutex);
//   * functions whose contract is "caller holds the lock" (the *_locked
//     helpers) are declared FLINT_REQUIRES(lock);
//   * condition-variable predicates are written as explicit while-loops in
//     the locked scope, not as wait(lock, lambda) — the analysis does not
//     know a predicate lambda runs under the lock, and the loop form keeps
//     every guarded read inside the provably-locked region.
#pragma once

#include <mutex>

#if defined(__clang__)
#define FLINT_TS_ATTR(x) __attribute__((x))
#else
#define FLINT_TS_ATTR(x)  // no-op outside clang
#endif

#define FLINT_CAPABILITY(x) FLINT_TS_ATTR(capability(x))
#define FLINT_SCOPED_CAPABILITY FLINT_TS_ATTR(scoped_lockable)
#define FLINT_GUARDED_BY(x) FLINT_TS_ATTR(guarded_by(x))
#define FLINT_PT_GUARDED_BY(x) FLINT_TS_ATTR(pt_guarded_by(x))
#define FLINT_REQUIRES(...) \
  FLINT_TS_ATTR(requires_capability(__VA_ARGS__))
#define FLINT_ACQUIRE(...) \
  FLINT_TS_ATTR(acquire_capability(__VA_ARGS__))
#define FLINT_RELEASE(...) \
  FLINT_TS_ATTR(release_capability(__VA_ARGS__))
#define FLINT_TRY_ACQUIRE(...) \
  FLINT_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#define FLINT_EXCLUDES(...) FLINT_TS_ATTR(locks_excluded(__VA_ARGS__))
#define FLINT_NO_THREAD_SAFETY_ANALYSIS \
  FLINT_TS_ATTR(no_thread_safety_analysis)

namespace flint::core {

/// std::mutex with the capability attribute the analysis needs.
class FLINT_CAPABILITY("mutex") Mutex {
 public:
  void lock() FLINT_ACQUIRE() { m_.lock(); }
  void unlock() FLINT_RELEASE() { m_.unlock(); }
  bool try_lock() FLINT_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII lock, equivalent of std::lock_guard<Mutex>.
class FLINT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) FLINT_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() FLINT_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// Relockable RAII lock, equivalent of std::unique_lock<Mutex>.  The
/// analysis tracks the held/released state across unlock()/lock() pairs
/// (clang "relockable scoped capability"), and the BasicLockable surface
/// makes it directly usable with std::condition_variable_any, which
/// unlocks/relocks it internally around the actual wait.
class FLINT_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) FLINT_ACQUIRE(m) : m_(m), held_(true) {
    m_.lock();
  }
  ~UniqueLock() FLINT_RELEASE() {
    if (held_) m_.unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() FLINT_ACQUIRE() {
    m_.lock();
    held_ = true;
  }
  void unlock() FLINT_RELEASE() {
    m_.unlock();
    held_ = false;
  }

 private:
  Mutex& m_;
  bool held_;
};

}  // namespace flint::core
