// core/flint — the FLInt operator family: floating-point comparison realized
// purely with two's-complement integer and logic operations.
//
// The paper proves (Theorem 1) that for bit vectors X, Y:
//
//   FP(X) >= FP(Y)  <=>  (SI(X) >= SI(Y)) XOR
//                        (SI(X) < 0  &&  SI(Y) < 0  &&  SI(X) != SI(Y))
//
// and (Theorem 2) that when the sign of one operand is known a priori the
// case split can be resolved by negating/swapping, leaving a single integer
// comparison.  This header provides:
//
//   * runtime comparators for float/double in three formulations
//     (Theorem 1, Theorem 2, and a monotone "radix key" remap), all
//     implementing the same total order with -0.0 < +0.0;
//   * EncodedThreshold: the codegen-time resolution of Theorem 2 for a
//     constant threshold, which is what the if-else code generators and the
//     native-tree interpreters consume (zero case handling on the hot path);
//   * the semantics contract: NaN-free total order.  Infinities order as
//     extreme values.  NaNs are ordered by raw bit pattern (documented
//     deviation from IEEE-754; random forests never produce NaN splits).
//
// Everything here is constexpr and header-only so the compiler can fold
// thresholds into immediates exactly as the paper's generated code does.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <type_traits>

namespace flint::core {

/// Maps a floating-point type to its same-width signed/unsigned integer types
/// and the format's masks.  Only binary32 and binary64 are instantiated.
template <typename T>
struct FloatTraits;

template <>
struct FloatTraits<float> {
  using Signed = std::int32_t;
  using Unsigned = std::uint32_t;
  static constexpr Signed sign_mask = std::int32_t{1} << 31;
  static constexpr Unsigned abs_mask = 0x7FFF'FFFFu;
  static constexpr Unsigned exp_mask = 0x7F80'0000u;
  static constexpr const char* c_int_type = "int32_t";
  static constexpr int bits = 32;
};

template <>
struct FloatTraits<double> {
  using Signed = std::int64_t;
  using Unsigned = std::uint64_t;
  static constexpr Signed sign_mask = std::int64_t{1} << 63;
  static constexpr Unsigned abs_mask = 0x7FFF'FFFF'FFFF'FFFFull;
  static constexpr Unsigned exp_mask = 0x7FF0'0000'0000'0000ull;
  static constexpr const char* c_int_type = "int64_t";
  static constexpr int bits = 64;
};

template <typename T>
concept FlintFloat = std::is_same_v<T, float> || std::is_same_v<T, double>;

/// SI(B): the two's-complement reading of a float's bit pattern.
template <FlintFloat T>
[[nodiscard]] constexpr typename FloatTraits<T>::Signed si_bits(T v) noexcept {
  return std::bit_cast<typename FloatTraits<T>::Signed>(v);
}

/// Inverse of si_bits.
template <FlintFloat T>
[[nodiscard]] constexpr T from_si_bits(typename FloatTraits<T>::Signed bits) noexcept {
  return std::bit_cast<T>(bits);
}

/// NaN test on the two's-complement reading itself: a pattern is NaN iff its
/// magnitude bits exceed the exponent mask (all-ones exponent, non-zero
/// mantissa).  This is the integer-side isnan every missing-value-aware
/// engine uses, so NaN routing never needs a float comparison.
template <FlintFloat T>
[[nodiscard]] constexpr bool is_nan_bits(
    typename FloatTraits<T>::Signed bits) noexcept {
  using U = typename FloatTraits<T>::Unsigned;
  return (static_cast<U>(bits) & FloatTraits<T>::abs_mask) >
         FloatTraits<T>::exp_mask;
}

// ---------------------------------------------------------------------------
// Formulation 1: Theorem 1 — XOR of integer predicates.
// ---------------------------------------------------------------------------

/// FP(a) >= FP(b) via Theorem 1.  Branch-free: the three sub-predicates and
/// the XOR compile to flag tests / setcc on x86 and csel/eor on ARMv8.
template <FlintFloat T>
[[nodiscard]] constexpr bool ge_theorem1(T a, T b) noexcept {
  const auto x = si_bits(a);
  const auto y = si_bits(b);
  const bool u = x >= y;
  const bool v = (x < 0) && (y < 0) && (x != y);
  return u != v;  // XOR: negate u exactly when both operands are negative and unequal
}

// ---------------------------------------------------------------------------
// Formulation 2: Theorem 2 — conditional operand negate + swap.
// ---------------------------------------------------------------------------

/// FP(a) >= FP(b) via Theorem 2 with the sign of `a` tested at runtime.
/// When SI(a) < 0, both operands are FP-negated by flipping their sign bits
/// (exactly what Listing 4 emits: `^ (0b1 << 31)`) and the relation is
/// reversed: FP(a) >= FP(b)  <=>  FP(-a) <= FP(-b).  After the flip the
/// first operand is non-negative, so the pair contains at least one
/// positive-signed value and the plain signed-integer comparison is
/// order-correct (Lemmas 3 and 5).  The theorem statement's "-1 * SI"
/// would overflow on SI(-0.0); the sign-bit flip is the overflow-free
/// realization with identical ordering semantics under -0.0 < +0.0.
template <FlintFloat T>
[[nodiscard]] constexpr bool ge_theorem2(T a, T b) noexcept {
  using S = typename FloatTraits<T>::Signed;
  const S x = si_bits(a);
  const S y = si_bits(b);
  if (x < 0) {
    return (x ^ FloatTraits<T>::sign_mask) <= (y ^ FloatTraits<T>::sign_mask);
  }
  return x >= y;
}

// ---------------------------------------------------------------------------
// Formulation 3: monotone radix key.
// ---------------------------------------------------------------------------
// Classic order-linearizing remap: non-negative patterns map to themselves,
// negative patterns have their magnitude bits inverted.  After the remap the
// float order *is* the signed integer order, so one remap per operand buys
// unlimited comparisons (useful when a feature value is compared against
// several thresholds, and the basis of the ablation in bench_ablation_*).

template <FlintFloat T>
[[nodiscard]] constexpr typename FloatTraits<T>::Signed
to_radix_key(T v) noexcept {
  using S = typename FloatTraits<T>::Signed;
  using U = typename FloatTraits<T>::Unsigned;
  const S b = si_bits(v);
  // b >= 0: key = b.  b < 0: key = b XOR 0x7FF..F (flip everything but sign).
  const U flip = static_cast<U>(b >> (FloatTraits<T>::bits - 1)) >> 1;
  return static_cast<S>(static_cast<U>(b) ^ flip);
}

/// Inverse of to_radix_key.  The remap flips the magnitude bits exactly
/// when the (preserved) sign bit is set, so applying the same transform to
/// a key recovers the original float pattern — it is an involution.
template <FlintFloat T>
[[nodiscard]] constexpr T from_radix_key(
    typename FloatTraits<T>::Signed key) noexcept {
  using S = typename FloatTraits<T>::Signed;
  using U = typename FloatTraits<T>::Unsigned;
  const U flip = static_cast<U>(key >> (FloatTraits<T>::bits - 1)) >> 1;
  return from_si_bits<T>(static_cast<S>(static_cast<U>(key) ^ flip));
}

/// FP(a) >= FP(b) via the radix-key remap.
template <FlintFloat T>
[[nodiscard]] constexpr bool ge_radix(T a, T b) noexcept {
  return to_radix_key(a) >= to_radix_key(b);
}

// ---------------------------------------------------------------------------
// Derived relations (the paper's Section IV-A: <=, <, > follow by operand
// exchange and negation).  Theorem 1 is the default runtime formulation.
// ---------------------------------------------------------------------------

template <FlintFloat T>
[[nodiscard]] constexpr bool ge(T a, T b) noexcept { return ge_theorem1(a, b); }
template <FlintFloat T>
[[nodiscard]] constexpr bool le(T a, T b) noexcept { return ge_theorem1(b, a); }
template <FlintFloat T>
[[nodiscard]] constexpr bool gt(T a, T b) noexcept { return !ge_theorem1(b, a); }
template <FlintFloat T>
[[nodiscard]] constexpr bool lt(T a, T b) noexcept { return !ge_theorem1(a, b); }
/// Lemma 1: FP equality is bit equality (with -0.0 != +0.0 by design).
template <FlintFloat T>
[[nodiscard]] constexpr bool eq(T a, T b) noexcept { return si_bits(a) == si_bits(b); }

/// Three-way total order (C++ <=> style): -1, 0, +1.
template <FlintFloat T>
[[nodiscard]] constexpr int total_order(T a, T b) noexcept {
  const auto ka = to_radix_key(a);
  const auto kb = to_radix_key(b);
  return (ka > kb) - (ka < kb);
}

// ---------------------------------------------------------------------------
// Codegen-time threshold encoding (Theorem 2 resolved offline).
// ---------------------------------------------------------------------------

/// How a constant `x <= s` test is realized with one integer comparison.
enum class ThresholdMode {
  /// s has sign bit 0 after -0.0 rewriting:  si(x) <= imm.
  Direct,
  /// s < 0: both FP sign bits are flipped and the relation reversed:
  ///        imm <= (si(x) XOR sign_mask),  with imm = bits(|s|).
  SignFlip,
};

/// The offline-resolved form of the node condition `x <= s` (Listing 2 / 4).
/// Produced once per tree node at code-generation time; consumed by the
/// interpreters and the C/asm emitters.
template <FlintFloat T>
struct EncodedThreshold {
  using Signed = typename FloatTraits<T>::Signed;
  ThresholdMode mode = ThresholdMode::Direct;
  Signed immediate = 0;

  /// Evaluates `FP(x) <= s` using only integer ops.
  [[nodiscard]] constexpr bool le(T x) const noexcept {
    const Signed xi = si_bits(x);
    if (mode == ThresholdMode::Direct) {
      return xi <= immediate;
    }
    return immediate <= (xi ^ FloatTraits<T>::sign_mask);
  }

  friend constexpr bool operator==(const EncodedThreshold&,
                                   const EncodedThreshold&) = default;
};

/// Encodes the split constant for a `x <= s` test.  A split of -0.0 is
/// rewritten to +0.0 first: FLInt orders -0.0 < +0.0 while IEEE-754 treats
/// them as equal, and the rewrite makes `x <= -0.0` (IEEE: true for x=+0.0)
/// agree for every input (paper Section IV-B, footnote 1).
template <FlintFloat T>
[[nodiscard]] constexpr EncodedThreshold<T> encode_threshold_le(T split) noexcept {
  using S = typename FloatTraits<T>::Signed;
  S bits = si_bits(split);
  if (bits == FloatTraits<T>::sign_mask) {
    bits = 0;  // -0.0 -> +0.0
  }
  if (bits >= 0) {
    return {ThresholdMode::Direct, bits};
  }
  // Negative split: compare against |s| with the feature's sign flipped.
  return {ThresholdMode::SignFlip,
          static_cast<S>(bits ^ FloatTraits<T>::sign_mask)};
}

/// Renders the encoded comparison as the C expression the paper's Listings
/// 2 and 4 show, with `feature_expr` substituted for the integer load.
template <FlintFloat T>
[[nodiscard]] std::string to_c_expression(const EncodedThreshold<T>& t,
                                          const std::string& feature_expr);

/// Hex immediate literal (e.g. "0x41213087") of the encoded threshold.
template <FlintFloat T>
[[nodiscard]] std::string immediate_hex(const EncodedThreshold<T>& t);

// ---------------------------------------------------------------------------
// Generalized relations (paper Section III-C: "this also implies that all
// other relations (<=, >, <) hold in the same manner").
// ---------------------------------------------------------------------------

/// Relation of the test `x REL split` with a compile-time-constant split.
enum class Relation { LE, LT, GE, GT };

[[nodiscard]] constexpr const char* to_string(Relation r) noexcept {
  switch (r) {
    case Relation::LE: return "<=";
    case Relation::LT: return "<";
    case Relation::GE: return ">=";
    case Relation::GT: return ">";
  }
  return "?";
}

/// Offline-resolved integer predicate for `x REL split`, IEEE-equivalent on
/// every non-NaN input including the signed-zero cluster.
///
/// Construction: LE uses encode_threshold_le directly (split -0.0 -> +0.0).
/// GE encodes the reversed test `split <= x` with the *opposite* zero
/// rewrite (+0.0 -> -0.0), because the equality boundary now sits on the
/// other side of the two-zero cluster.  LT/GT are the negations of GE/LE —
/// exact complements in both IEEE (non-NaN) and integer arithmetic.
template <FlintFloat T>
struct EncodedPredicate {
  using Signed = typename FloatTraits<T>::Signed;

  /// Integer comparison form; Forward* evaluate thresholds on si(x),
  /// Reverse* evaluate them on the flipped/si'd x from the right side.
  enum class Form {
    ForwardDirect,   ///< si(x) <= imm
    ForwardFlip,     ///< imm <= (si(x) ^ sign)
    ReverseDirect,   ///< imm <= si(x)
    ReverseFlip,     ///< (si(x) ^ sign) <= imm
  };

  Form form = Form::ForwardDirect;
  bool negate = false;
  Signed immediate = 0;

  [[nodiscard]] constexpr bool operator()(T x) const noexcept {
    const Signed xi = si_bits(x);
    bool r = false;
    switch (form) {
      case Form::ForwardDirect: r = xi <= immediate; break;
      case Form::ForwardFlip:
        r = immediate <= (xi ^ FloatTraits<T>::sign_mask);
        break;
      case Form::ReverseDirect: r = immediate <= xi; break;
      case Form::ReverseFlip:
        r = (xi ^ FloatTraits<T>::sign_mask) <= immediate;
        break;
    }
    return r != negate;
  }

  friend constexpr bool operator==(const EncodedPredicate&,
                                   const EncodedPredicate&) = default;
};

/// Encodes `x REL split` (see EncodedPredicate).  split must not be NaN —
/// checked in debug builds only (forests never train NaN splits).
template <FlintFloat T>
[[nodiscard]] constexpr EncodedPredicate<T> encode_relation(Relation rel,
                                                            T split) noexcept {
  using S = typename FloatTraits<T>::Signed;
  using P = EncodedPredicate<T>;
  P out;
  if (rel == Relation::LE || rel == Relation::GT) {
    // Based on `x <= s` with the -0 -> +0 rewrite.
    const EncodedThreshold<T> le = encode_threshold_le(split);
    out.form = le.mode == ThresholdMode::Direct ? P::Form::ForwardDirect
                                                : P::Form::ForwardFlip;
    out.immediate = le.immediate;
    out.negate = rel == Relation::GT;
    return out;
  }
  // GE / LT: encode `split <= x` with the +0 -> -0 rewrite.
  S bits = si_bits(split);
  if (bits == 0) {
    bits = FloatTraits<T>::sign_mask;  // +0.0 -> -0.0
  }
  if (bits >= 0) {
    out.form = P::Form::ReverseDirect;
    out.immediate = bits;
  } else {
    out.form = P::Form::ReverseFlip;
    out.immediate = static_cast<S>(bits ^ FloatTraits<T>::sign_mask);
  }
  out.negate = rel == Relation::LT;
  return out;
}

}  // namespace flint::core
