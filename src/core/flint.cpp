#include "core/flint.hpp"

#include <cstdio>

namespace flint::core {

namespace {

template <typename S>
std::string hex_literal(S value) {
  using U = std::make_unsigned_t<S>;
  char buf[32];
  if constexpr (sizeof(S) == 4) {
    std::snprintf(buf, sizeof buf, "0x%08x", static_cast<unsigned>(static_cast<U>(value)));
  } else {
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(static_cast<U>(value)));
  }
  return buf;
}

}  // namespace

template <FlintFloat T>
std::string immediate_hex(const EncodedThreshold<T>& t) {
  return hex_literal(t.immediate);
}

template <FlintFloat T>
std::string to_c_expression(const EncodedThreshold<T>& t,
                            const std::string& feature_expr) {
  const char* int_type = FloatTraits<T>::c_int_type;
  const std::string imm =
      "((" + std::string(int_type) + ")" + hex_literal(t.immediate) + ")";
  if (t.mode == ThresholdMode::Direct) {
    return "(" + feature_expr + " <= " + imm + ")";
  }
  const std::string sign = hex_literal(FloatTraits<T>::sign_mask);
  return "(" + imm + " <= (" + feature_expr + " ^ ((" + int_type + ")" + sign +
         ")))";
}

template std::string immediate_hex<float>(const EncodedThreshold<float>&);
template std::string immediate_hex<double>(const EncodedThreshold<double>&);
template std::string to_c_expression<float>(const EncodedThreshold<float>&,
                                            const std::string&);
template std::string to_c_expression<double>(const EncodedThreshold<double>&,
                                             const std::string&);

}  // namespace flint::core
