// core/hash — tiny FNV-1a 64 streaming hasher.
//
// Used for structural content hashes (ExecArtifacts::content_hash, the JIT
// compile cache key).  Not cryptographic; collisions only cost a spurious
// cache miss or an extremely unlikely stale hit within one process.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <type_traits>

namespace flint::core {

class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x00000100000001b3ull;

  void add_bytes(const void* data, std::size_t size) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      state_ ^= p[i];
      state_ *= kPrime;
    }
  }

  /// Hash a trivially-copyable value by its object representation.
  template <typename V>
    requires std::is_trivially_copyable_v<V>
  void add(const V& v) noexcept {
    add_bytes(&v, sizeof v);
  }

  template <typename V>
    requires std::is_trivially_copyable_v<V>
  void add_span(std::span<const V> values) noexcept {
    add_bytes(values.data(), values.size_bytes());
  }

  void add_string(std::string_view s) noexcept {
    const std::uint64_t n = s.size();
    add(n);  // length-prefix so "ab","c" != "a","bc"
    add_bytes(s.data(), s.size());
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_ = kOffset;
};

/// Order-dependent combine for two already-computed hashes.
[[nodiscard]] inline std::uint64_t hash_combine(std::uint64_t a,
                                                std::uint64_t b) noexcept {
  Fnv1a64 h;
  h.add(a);
  h.add(b);
  return h.digest();
}

}  // namespace flint::core
