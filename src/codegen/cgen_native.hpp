// codegen/cgen_native — "native tree" generator (Asadi et al., paper §IV-A):
// nodes become constant arrays and a narrow loop walks them by index.
//
// Included for completeness of the arch-forest reproduction (the paper notes
// "FLInts can also be integrated to native tree implementations in C without
// further issues") and used by the ablation benches to separate the
// comparison-operator effect from the if-else-compilation effect.
#pragma once

#include "codegen/emit.hpp"
#include "trees/forest.hpp"

namespace flint::codegen {

/// Generates the array-walking module for a forest.  With options.flint the
/// split array holds pre-encoded integer immediates plus a sign-flip flag
/// array (Theorem 2 resolved at generation time, as in the if-else flavor).
template <core::FlintFloat T>
[[nodiscard]] GeneratedCode generate_native(const trees::Forest<T>& forest,
                                            const CGenOptions& options);

}  // namespace flint::codegen
