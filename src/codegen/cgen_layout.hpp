// codegen/cgen_layout — the layout-artifact code generator (jit:layout).
//
// Unlike the legacy flavors, which each re-walked the source Forest, this
// generator consumes the SAME CompactNode16 image the layout engine
// executes (built once by exec/artifacts).  Emitted module, one C file:
//
//   * per tree within the unroll budget: a fully unrolled if/else function
//     whose FLInt thresholds are immediates (Theorem 2 applied at generation
//     time — recovered exactly from the compact image's radix/rank keys);
//   * per tree over budget: the top hot_depth levels unrolled as an
//     immediate "hot spine", handing off to a generic walker over an
//     embedded compact node array (keys widened to full radix width so the
//     per-sample remap never needs rank tables);
//   * tile-blocked batch drivers — `<prefix>_predict_batch` (votes + argmax,
//     lowest class id wins ties) and, for additive-score models,
//     `<prefix>_accumulate_scores` (base-initialized rows, tree-order
//     accumulation over an embedded leaf-value table);
//   * NaN/categorical semantics generated, not fallback-interpreted: for
//     special forests every numeric node consults a per-sample NaN mask
//     before its integer compare (a bare radix compare would mis-route
//     negative NaN bit patterns) and categorical nodes test precomputed
//     membership masks, exactly mirroring CompactForest::special_masks.
//
// Bit-identical to Forest::predict / the layout engine's predict_scores on
// every input (tests/test_codegen.cpp, tests/test_predictor.cpp,
// tests/test_missing.cpp).
#pragma once

#include <span>

#include "codegen/emit.hpp"
#include "exec/layout/compact.hpp"
#include "exec/layout/plan.hpp"

namespace flint::codegen {

/// Model semantics for generate_layout.  Vote models need only
/// `num_classes`; additive-score models (vote == false) embed the leaf
/// table: `leaf_values` is rows x n_outputs, `base` is the per-output
/// offset (empty = zeros), and leaf payloads index rows.
template <typename T>
struct LayoutCGenSpec {
  bool vote = true;
  int num_classes = 0;
  std::size_t n_outputs = 0;
  std::span<const T> leaf_values;
  std::span<const T> base;
};

struct LayoutCGenOptions {
  std::string prefix = "forest";
  /// Samples per generated tile; 0 = use plan.block_size.
  std::size_t tile = 0;
  /// Compile-time budget: a tree unrolls fully only while its node count
  /// stays within per_tree_unroll_nodes AND the module-wide unrolled total
  /// stays within total_unroll_nodes; over-budget trees degrade to the
  /// hot-spine + embedded-walker body.
  std::size_t per_tree_unroll_nodes = 512;
  std::size_t total_unroll_nodes = 16384;
  /// Per-tile scratch ceiling; the tile width is halved until the vote/key/
  /// mask arrays fit (min 4).
  std::size_t stack_budget_bytes = 48 * 1024;
  /// Throughput-body layout ceiling: trees at most this deep (and free of
  /// NaN/categorical specials) are emitted as padded complete-binary BFS
  /// tables, so the branch-free descent becomes `j = 2j + 1 + carry` with no
  /// child-offset loads at all.  Deeper trees keep the offset-stepping walk
  /// (padding doubles per level, so the table would dwarf the real tree).
  std::size_t complete_depth_max = 10;
  /// Module-wide padded-slot ceiling across all complete-tree tables, a
  /// compile-time/source-size budget; trees past it degrade to the
  /// offset-stepping walk.
  std::size_t complete_total_slots = std::size_t{1} << 18;
};

/// Generates the jit:layout module from a packed compact image.  `plan`
/// supplies hot_depth (spine unroll depth) and the default tile width.
template <typename T>
[[nodiscard]] GeneratedCode generate_layout(
    const exec::layout::CompactForest<T, exec::layout::CompactNode16>& image,
    const exec::layout::LayoutPlan& plan, const LayoutCGenSpec<T>& spec,
    const LayoutCGenOptions& options = {});

extern template GeneratedCode generate_layout<float>(
    const exec::layout::CompactForest<float, exec::layout::CompactNode16>&,
    const exec::layout::LayoutPlan&, const LayoutCGenSpec<float>&,
    const LayoutCGenOptions&);
extern template GeneratedCode generate_layout<double>(
    const exec::layout::CompactForest<double, exec::layout::CompactNode16>&,
    const exec::layout::LayoutPlan&, const LayoutCGenSpec<double>&,
    const LayoutCGenOptions&);

}  // namespace flint::codegen
