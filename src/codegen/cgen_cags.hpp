// codegen/cgen_cags — cache-aware grouping and swapping (CAGS) generator.
//
// Reimplementation of the layout strategy of Buschjaeger et al. (ICDM'18)
// as refined by Chen et al. (TECS'22), the state-of-the-art baseline the
// paper integrates FLInt into:
//
//   * swapping — at every inner node the branch taken more often on the
//     training set becomes the fall-through edge, the colder branch is a
//     forward goto;
//   * grouping — the hot trace is emitted contiguously until a byte budget
//     (modelling the cache-resident code chunk) is exhausted; the remainder
//     continues behind a goto in a fresh "kernel", so the frequently
//     executed prefix of the tree stays packed in few instruction-cache
//     lines.
//
// Branch probabilities come from trees::collect_branch_stats on the training
// set.  With options.flint=true the node conditions use the FLInt integer
// form — that is exactly the paper's "CAGS (FLInt)" configuration.
#pragma once

#include "codegen/emit.hpp"
#include "trees/forest.hpp"
#include "trees/tree_stats.hpp"

namespace flint::codegen {

/// Generates the complete CAGS module for a forest.  `stats` must hold one
/// BranchStats per tree (from trees::collect_branch_stats); throws
/// std::invalid_argument on size mismatch or empty forest.
template <core::FlintFloat T>
[[nodiscard]] GeneratedCode generate_cags(const trees::Forest<T>& forest,
                                          const std::vector<trees::BranchStats>& stats,
                                          const CGenOptions& options);

/// Single-tree body (goto/label structured), exposed for tests/examples.
template <core::FlintFloat T>
[[nodiscard]] std::string cags_tree_body(const trees::Tree<T>& tree,
                                         const trees::BranchStats& stats,
                                         const CGenOptions& options);

}  // namespace flint::codegen
