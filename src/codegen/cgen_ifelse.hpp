// codegen/cgen_ifelse — the paper's standard if-else tree generator
// (Listing 1) and its FLInt counterpart (Listing 2/4, options.flint=true).
//
// Each tree becomes a static function of nested if/else blocks: the branch
// condition compares the feature value against the split constant, the left
// subtree fills the if-block, the right subtree the else-block.  With
// options.flint the comparison is the codegen-time-resolved integer form of
// Theorem 2 (see core::encode_threshold_le).
#pragma once

#include "codegen/emit.hpp"
#include "trees/forest.hpp"

namespace flint::codegen {

/// Generates the complete module (tree functions + vote driver) for a
/// forest.  Throws std::invalid_argument on empty forests.
template <core::FlintFloat T>
[[nodiscard]] GeneratedCode generate_ifelse(const trees::Forest<T>& forest,
                                            const CGenOptions& options);

/// Generates the nested if/else body of a single tree (used by tests and
/// the codegen_tour example to show Listing-style snippets).
template <core::FlintFloat T>
[[nodiscard]] std::string ifelse_tree_body(const trees::Tree<T>& tree,
                                           const CGenOptions& options);

}  // namespace flint::codegen
