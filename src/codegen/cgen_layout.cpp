#include "codegen/cgen_layout.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/flint.hpp"

namespace flint::codegen {
namespace {

using exec::layout::CompactForest;
using exec::layout::CompactNode16;

template <typename T>
class LayoutGen {
 public:
  using S = typename core::FloatTraits<T>::Signed;
  using U = std::make_unsigned_t<S>;

  LayoutGen(const CompactForest<T, CompactNode16>& image,
            const exec::layout::LayoutPlan& plan, const LayoutCGenSpec<T>& spec,
            const LayoutCGenOptions& opt)
      : image_(image), plan_(plan), spec_(spec), opt_(opt), prefix_(opt.prefix) {}

  GeneratedCode run() {
    validate();
    classify_trees();
    size_tile();
    CodeWriter w;
    CGenOptions copt;
    copt.prefix = prefix_;
    copt.flint = true;
    emit_c_prologue<T>(w, copt);
    if (walker_needed_ || step_needed_) emit_noinline_macro(w);
    emit_node_array(w);
    if (walker_needed_) emit_walker(w);
    if (step_needed_) emit_bf_step(w);
    emit_complete_tables(w);
    if (!spec_.vote) emit_score_tables(w);
    if (cats_) emit_cat_words(w);
    if (step_needed_) emit_step_tree_fn(w);  // writes back via _leaf
    emit_tree_functions(w);
    emit_batch_driver(w);
    if (spec_.vote) emit_classify_wrapper(w);
    GeneratedCode code;
    code.files.push_back({prefix_ + "_layout.c", w.take()});
    code.classify_symbol =
        spec_.vote ? prefix_ + "_classify" : prefix_ + "_accumulate_scores";
    code.flavor = "layout";
    return code;
  }

 private:
  static constexpr int kBits = static_cast<int>(core::FloatTraits<T>::bits);

  void validate() const {
    if (image_.nodes.empty() || image_.roots.empty()) {
      throw std::invalid_argument("generate_layout: empty compact image");
    }
    if (spec_.vote) {
      if (spec_.num_classes <= 0) {
        throw std::invalid_argument("generate_layout: vote spec needs classes");
      }
    } else {
      if (spec_.n_outputs == 0 || spec_.leaf_values.empty() ||
          spec_.leaf_values.size() % spec_.n_outputs != 0) {
        throw std::invalid_argument(
            "generate_layout: score spec needs a rows x n_outputs leaf table");
      }
    }
  }

  // ---- image queries ------------------------------------------------------

  static bool is_leaf(const CompactNode16& n) { return n.right_off < 0; }

  /// Radix key of a numeric inner node, at full scalar width (rank-narrowed
  /// images widen through their key tables; identity images carry it raw).
  S radix_of(const CompactNode16& n) const {
    if (image_.identity_keys) return static_cast<S>(n.key);
    const auto& table =
        image_.tables.features[static_cast<std::size_t>(n.feature)];
    return table.sorted[static_cast<std::size_t>(n.key)];
  }

  /// The radix map is an involution on signed-int encodings: applying it to
  /// a radix key recovers the split's si bits.
  static S si_of_radix(S k) {
    const U flip = static_cast<U>(static_cast<U>(k >> (kBits - 1)) >> 1);
    return static_cast<S>(static_cast<U>(k) ^ flip);
  }

  /// Edge-count depth of the deepest leaf under `root` — the padded trip
  /// count of the branch-free descent (leaves self-loop, so overshooting a
  /// shallow leaf is harmless).
  std::size_t subtree_depth(std::int32_t root) const {
    std::size_t best = 0;
    std::vector<std::pair<std::int32_t, std::size_t>> stack{{root, 0}};
    while (!stack.empty()) {
      const auto [i, d] = stack.back();
      stack.pop_back();
      const auto& n = image_.nodes[static_cast<std::size_t>(i)];
      if (is_leaf(n)) {
        best = std::max(best, d);
        continue;
      }
      stack.push_back({i + 1, d + 1});
      stack.push_back({i + n.right_off, d + 1});
    }
    return best;
  }

  std::size_t subtree_size(std::int32_t root) const {
    std::size_t count = 0;
    std::vector<std::int32_t> stack{root};
    while (!stack.empty()) {
      const std::int32_t i = stack.back();
      stack.pop_back();
      ++count;
      const auto& n = image_.nodes[static_cast<std::size_t>(i)];
      if (!is_leaf(n)) {
        stack.push_back(i + 1);
        stack.push_back(i + n.right_off);
      }
    }
    return count;
  }

  // ---- text helpers -------------------------------------------------------

  static std::string int_lit(S v) {
    if (v == std::numeric_limits<S>::min()) {
      return "(" + std::to_string(std::numeric_limits<S>::min() + 1) + " - 1)";
    }
    return std::to_string(v);
  }

  static std::string hex_u(U v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf) + (sizeof(S) == 4 ? "u" : "ull");
  }

  std::string score_lit(T v) const {
    if (std::isnan(static_cast<double>(v))) {
      return sizeof(T) == 4 ? "__builtin_nanf(\"\")" : "__builtin_nan(\"\")";
    }
    if (std::isinf(static_cast<double>(v))) {
      const char* inf = sizeof(T) == 4 ? "__builtin_inff()" : "__builtin_inf()";
      return v < T{0} ? std::string("-") + inf : std::string(inf);
    }
    return c_float_literal(v);
  }

  const char* scalar() const { return c_scalar_name<T>(); }
  const char* int_type() const { return core::FloatTraits<T>::c_int_type; }
  const char* uint_type() const {
    return sizeof(S) == 4 ? "uint32_t" : "uint64_t";
  }

  /// Condition text routing a sample LEFT at inner node `i`.  Special
  /// forests consult the per-sample NaN mask before EVERY numeric compare —
  /// a bare si-compare would route negative-NaN bit patterns left.
  std::string node_cond(const CompactNode16& n) const {
    const std::string f = std::to_string(n.feature);
    const char* dl = node_default_left(n) ? "1" : "0";
    if (node_categorical(n)) {
      return std::string("nan[") + f + "] ? " + dl + " : mem[" +
             std::to_string(n.key) + "]";
    }
    const T split = core::from_si_bits<T>(si_of_radix(radix_of(n)));
    const auto enc = core::encode_threshold_le(split);
    const std::string cmp = core::to_c_expression(
        enc, prefix_ + "_ld(px + " + f + ")");
    if (!special_) return cmp;
    return std::string("nan[") + f + "] ? " + dl + " : " + cmp;
  }

  // ---- planning -----------------------------------------------------------

  void classify_trees() {
    special_ = image_.has_special;
    cats_ = image_.cat_slot_count() > 0;
    cols_ = image_.feature_count;
    slots_ = image_.cat_slot_count();
    // Two-class vote models tally one byte per sample (count of class-1
    // votes) instead of a per-class row; argmax folds to one compare whose
    // tie falls to class 0, matching lowest-id-wins.
    binary_vote_ =
        spec_.vote && spec_.num_classes == 2 && image_.roots.size() <= 255;
    const std::size_t trees = image_.roots.size();
    unrolled_.assign(trees, 0);
    complete_.assign(trees, 0);
    depths_.assign(trees, 0);
    std::size_t total = 0;
    std::size_t slots_total = 0;
    for (std::size_t t = 0; t < trees; ++t) {
      depths_[t] = subtree_depth(image_.roots[t]);
      const std::size_t sz = subtree_size(image_.roots[t]);
      if (sz <= opt_.per_tree_unroll_nodes &&
          total + sz <= opt_.total_unroll_nodes) {
        unrolled_[t] = 1;
        total += sz;
      } else {
        walker_needed_ = true;
      }
      const std::size_t slots = std::size_t{1} << depths_[t];
      if (!special_ && !cats_ && depths_[t] >= 1 &&
          depths_[t] <= opt_.complete_depth_max &&
          slots_total + slots <= opt_.complete_total_slots) {
        complete_[t] = 1;
        slots_total += slots;
      } else {
        step_needed_ = true;
      }
    }
  }

  void size_tile() {
    tile_ = opt_.tile != 0 ? opt_.tile : plan_.block_size;
    if (tile_ == 0) tile_ = 64;
    std::size_t per_sample = 0;
    if (binary_vote_) {
      per_sample += 1;
    } else if (spec_.vote) {
      per_sample += static_cast<std::size_t>(spec_.num_classes) * 4;
    }
    per_sample += cols_ * sizeof(S);  // radix keys (branch-free body)
    if (special_) per_sample += cols_;
    if (cats_) per_sample += slots_;
    per_sample = std::max<std::size_t>(per_sample, 1);
    while (tile_ > 4 && tile_ * per_sample > opt_.stack_budget_bytes) {
      tile_ /= 2;
    }
  }

  // ---- module pieces ------------------------------------------------------

  /// Compact image with keys widened to radix width.  Leaves carry their
  /// payload in `key` and step offsets of zero in both directions so the
  /// padded branch-free descent self-loops once it lands on one; aux packs
  /// default-left (bit 0), categorical (bit 1), and inner-node (bit 2) —
  /// bit 2 doubles as the LEFT step amount.
  void emit_node_array(CodeWriter& w) {
    w.line("/* compact image, keys widened to radix width */");
    w.line("typedef struct { " + std::string(int_type()) +
           " key; int32_t right_off; int32_t feature; int32_t aux; } " +
           prefix_ + "_node_t;");
    w.open("static const " + prefix_ + "_node_t " + prefix_ + "_nodes[" +
           std::to_string(image_.nodes.size()) + "] = {");
    std::string row;
    for (std::size_t i = 0; i < image_.nodes.size(); ++i) {
      const auto& n = image_.nodes[i];
      std::string key;
      std::int32_t right = 0;
      std::int32_t feature = 0;
      std::int32_t aux = 0;
      if (is_leaf(n)) {
        key = std::to_string(n.key);
      } else if (node_categorical(n)) {
        key = std::to_string(n.key);
        right = n.right_off;
        feature = n.feature;
        aux = 4 | 2 | (node_default_left(n) ? 1 : 0);
      } else {
        key = int_lit(radix_of(n));
        right = n.right_off;
        feature = n.feature;
        aux = 4 | (node_default_left(n) ? 1 : 0);
      }
      row += "{" + key + "," + std::to_string(right) + "," +
             std::to_string(feature) + "," + std::to_string(aux) + "},";
      if (row.size() > 72 || i + 1 == image_.nodes.size()) {
        w.line(row);
        row.clear();
      }
    }
    w.close("};");
    w.blank();
  }

  /// Out-of-line markers for the two helpers every over-budget tree funnels
  /// through.  Left inlinable, the optimizer clones the walker's loop into
  /// thousands of spine hand-off sites and its alias analysis goes
  /// superlinear in the resulting function size — a 226k-node forest took
  /// minutes at -O3 and seconds with these.  Both helpers are multi-step
  /// loops, so the call itself costs nothing.
  void emit_noinline_macro(CodeWriter& w) {
    w.line("#if defined(__GNUC__)");
    w.line("#define FLINT_JIT_NOINLINE __attribute__((noinline))");
    w.line("#elif defined(_MSC_VER)");
    w.line("#define FLINT_JIT_NOINLINE __declspec(noinline)");
    w.line("#else");
    w.line("#define FLINT_JIT_NOINLINE");
    w.line("#endif");
    w.blank();
  }

  std::string walker_params() const {
    std::string s = std::string("int32_t i, const ") + int_type() + "* k";
    if (special_) s += ", const uint8_t* nan";
    if (cats_) s += ", const uint8_t* mem";
    return s;
  }

  void emit_walker(CodeWriter& w) {
    w.open("static FLINT_JIT_NOINLINE int32_t " + prefix_ + "_walk(" +
           walker_params() + ") {");
    w.open("for (;;) {");
    w.line("const " + prefix_ + "_node_t n = " + prefix_ + "_nodes[i];");
    w.line("if (!(n.aux & 4)) return (int32_t)n.key;");
    if (special_) {
      w.line("int go_left;");
      if (cats_) {
        w.line("if (n.aux & 2) go_left = nan[n.feature] ? (n.aux & 1) : "
               "mem[(int32_t)n.key];");
        w.line("else go_left = nan[n.feature] ? (n.aux & 1) : "
               "(k[n.feature] <= n.key);");
      } else {
        w.line("go_left = nan[n.feature] ? (n.aux & 1) : "
               "(k[n.feature] <= n.key);");
      }
      w.line("i += go_left ? 1 : n.right_off;");
    } else {
      w.line("i += (k[n.feature] <= n.key) ? 1 : n.right_off;");
    }
    w.close("}");
    w.close("}");
    w.blank();
  }

  /// Branch-free node step for the throughput body: one FLInt integer
  /// compare against the packed key, then an arithmetic (mask) select of the
  /// child offset.  No data-dependent control flow, so per-sample cost stays
  /// flat in batch size instead of collapsing once the branch history tables
  /// overflow — the failure mode of the unrolled if/else spines on batches
  /// past a few hundred samples.
  void emit_bf_step(CodeWriter& w) {
    w.open("static inline int32_t " + prefix_ + "_step(int32_t i, const " +
           std::string(int_type()) + "* k" +
           (special_ ? ", const uint8_t* nan" : "") +
           (cats_ ? ", const uint8_t* mem" : "") + ") {");
    w.line("const " + prefix_ + "_node_t n = " + prefix_ + "_nodes[i];");
    if (special_) {
      if (cats_) {
        w.line("const int32_t go = nan[n.feature] ? (n.aux & 1) : ((n.aux & "
               "2) ? (int32_t)mem[(int32_t)n.key] : (int32_t)(k[n.feature] <= "
               "n.key));");
      } else {
        w.line("const int32_t go = nan[n.feature] ? (n.aux & 1) : "
               "(int32_t)(k[n.feature] <= n.key);");
      }
    } else {
      w.line("const int32_t go = (int32_t)(k[n.feature] <= n.key);");
    }
    w.line("const int32_t msk = -go;");
    w.line("return i + ((((n.aux >> 2) & 1) & msk) | (n.right_off & ~msk));");
    w.close("}");
    w.blank();
  }

  const char* ct_feature_type() const {
    return cols_ <= 256 ? "uint8_t" : "int32_t";
  }

  const char* ct_leaf_type() const {
    if (spec_.vote) return spec_.num_classes <= 256 ? "uint8_t" : "int32_t";
    const std::size_t rows = spec_.leaf_values.size() / spec_.n_outputs;
    return rows <= 65536 ? "uint16_t" : "int32_t";
  }

  void emit_array(CodeWriter& w, const std::string& type,
                  const std::string& name,
                  const std::vector<std::string>& vals) {
    w.open("static const " + type + " " + name + "[" +
           std::to_string(vals.size()) + "] = {");
    std::string row;
    for (std::size_t i = 0; i < vals.size(); ++i) {
      row += vals[i] + ",";
      if (row.size() > 72 || i + 1 == vals.size()) {
        w.line(row);
        row.clear();
      }
    }
    w.close("};");
  }

  /// Complete-binary-tree tables for the throughput body: tree `t` padded to
  /// a full binary tree of its own max depth D, laid out in BFS order.  Slot
  /// j's children are 2j+1 / 2j+2, so the descent needs no offset loads —
  /// key and feature tables are indexed by j, and after D steps the leaf
  /// payload table is indexed by j - (2^D - 1).  Padding under a shallow
  /// leaf replicates its payload across every leaf slot it covers and fills
  /// the spare inner slots with a key of radix +MAX, which routes every
  /// sample left onto a replica.  The uniform index arithmetic is what lets
  /// the compiler vectorize the lockstep descent (gathered loads), which the
  /// data-dependent offset-stepping walk never permits.
  void emit_complete_tables(CodeWriter& w) {
    for (std::size_t t = 0; t < image_.roots.size(); ++t) {
      if (!complete_[t]) continue;
      const std::size_t depth = depths_[t];
      const std::size_t inner = (std::size_t{1} << depth) - 1;
      const std::size_t leaves = std::size_t{1} << depth;
      std::vector<std::string> keys(inner,
                                    int_lit(std::numeric_limits<S>::max()));
      std::vector<std::string> feats(inner, "0");
      std::vector<std::string> payloads(leaves, "0");
      std::vector<std::pair<std::int32_t, std::size_t>> stack{
          {image_.roots[t], 0}};
      std::vector<std::size_t> dstack{0};
      while (!stack.empty()) {
        const auto [i, j] = stack.back();
        const std::size_t d = dstack.back();
        stack.pop_back();
        dstack.pop_back();
        const auto& n = image_.nodes[static_cast<std::size_t>(i)];
        if (is_leaf(n)) {
          std::size_t lo = j;
          for (std::size_t lvl = d; lvl < depth; ++lvl) lo = 2 * lo + 1;
          const std::size_t base = lo - inner;
          const std::size_t span = std::size_t{1} << (depth - d);
          for (std::size_t p = 0; p < span; ++p) {
            payloads[base + p] = std::to_string(n.key);
          }
          continue;
        }
        keys[j] = int_lit(radix_of(n));
        feats[j] = std::to_string(n.feature);
        stack.push_back({i + 1, 2 * j + 1});
        dstack.push_back(d + 1);
        stack.push_back({i + n.right_off, 2 * j + 2});
        dstack.push_back(d + 1);
      }
      const std::string ct = prefix_ + "_ct" + std::to_string(t);
      emit_array(w, int_type(), ct + "_k", keys);
      emit_array(w, ct_feature_type(), ct + "_f", feats);
      emit_array(w, ct_leaf_type(), ct + "_l", payloads);
      w.blank();
    }
  }

  void emit_score_tables(CodeWriter& w) {
    const std::size_t k = spec_.n_outputs;
    w.open("static const " + std::string(scalar()) + " " + prefix_ +
           "_leaf[" + std::to_string(spec_.leaf_values.size()) + "] = {");
    std::string row;
    for (std::size_t i = 0; i < spec_.leaf_values.size(); ++i) {
      row += score_lit(spec_.leaf_values[i]) + ",";
      if (row.size() > 72 || i + 1 == spec_.leaf_values.size()) {
        w.line(row);
        row.clear();
      }
    }
    w.close("};");
    w.open("static const " + std::string(scalar()) + " " + prefix_ +
           "_base[" + std::to_string(k) + "] = {");
    row.clear();
    for (std::size_t j = 0; j < k; ++j) {
      row += (j < spec_.base.size() ? score_lit(spec_.base[j])
                                    : std::string("0")) +
             ",";
      if (row.size() > 72 || j + 1 == k) {
        w.line(row);
        row.clear();
      }
    }
    w.close("};");
    w.blank();
  }

  void emit_cat_words(CodeWriter& w) {
    w.open("static const uint32_t " + prefix_ + "_cat[" +
           std::to_string(std::max<std::size_t>(image_.cat_words.size(), 1)) +
           "] = {");
    std::string row;
    if (image_.cat_words.empty()) row = "0,";
    for (std::size_t i = 0; i < image_.cat_words.size(); ++i) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "0x%xu", image_.cat_words[i]);
      row += std::string(buf) + ",";
      if (row.size() > 72 || i + 1 == image_.cat_words.size()) {
        w.line(row);
        row.clear();
      }
    }
    if (!row.empty()) w.line(row);
    w.close("};");
    w.blank();
  }

  std::string tree_params() const {
    std::string s = std::string("const ") + scalar() + "* px";
    if (walker_needed_) s += std::string(", const ") + int_type() + "* k";
    if (special_) s += ", const uint8_t* nan";
    if (cats_) s += ", const uint8_t* mem";
    return s;
  }

  /// Call arguments for tree `t` inside the batch driver; sample-local
  /// names px/kk/nn/mm are bound by the driver loops.
  std::string tree_call(std::size_t t) const {
    if (unrolled_[t] || plan_.hot_depth > 0) {
      std::string args = "px";
      if (walker_needed_) args += ", kk";
      if (special_) args += ", nn";
      if (cats_) args += ", mm";
      return prefix_ + "_tree_" + std::to_string(t) + "(" + args + ")";
    }
    std::string args = std::to_string(image_.roots[t]) + ", kk";
    if (special_) args += ", nn";
    if (cats_) args += ", mm";
    return prefix_ + "_walk(" + args + ")";
  }

  void emit_subtree(CodeWriter& w, std::int32_t i) {
    const auto& n = image_.nodes[static_cast<std::size_t>(i)];
    if (is_leaf(n)) {
      w.line("return " + std::to_string(n.key) + ";");
      return;
    }
    w.open("if (" + node_cond(n) + ") {");
    emit_subtree(w, i + 1);
    w.reopen("} else {");
    emit_subtree(w, i + n.right_off);
    w.close("}");
  }

  void emit_spine(CodeWriter& w, std::int32_t i, std::size_t depth) {
    const auto& n = image_.nodes[static_cast<std::size_t>(i)];
    if (is_leaf(n)) {
      w.line("return " + std::to_string(n.key) + ";");
      return;
    }
    if (depth == 0) {
      std::string args = std::to_string(i) + ", k";
      if (special_) args += ", nan";
      if (cats_) args += ", mem";
      w.line("return " + prefix_ + "_walk(" + args + ");");
      return;
    }
    w.open("if (" + node_cond(n) + ") {");
    emit_spine(w, i + 1, depth - 1);
    w.reopen("} else {");
    emit_spine(w, i + n.right_off, depth - 1);
    w.close("}");
  }

  void emit_tree_functions(CodeWriter& w) {
    for (std::size_t t = 0; t < image_.roots.size(); ++t) {
      if (!unrolled_[t] && plan_.hot_depth == 0) continue;  // driver walks
      w.open("static int32_t " + prefix_ + "_tree_" + std::to_string(t) +
             "(" + tree_params() + ") {");
      if (unrolled_[t]) {
        emit_subtree(w, image_.roots[t]);
      } else {
        emit_spine(w, image_.roots[t], plan_.hot_depth);
      }
      w.close("}");
      w.blank();
    }
  }

  /// Per-sample setup shared by both drivers: pointers into the tile's
  /// scratch rows plus the radix remap and NaN/membership masks.
  void emit_sample_setup(CodeWriter& w, bool need_keys) {
    const std::string cols = std::to_string(cols_);
    if (!need_keys && !special_ && !cats_) return;
    w.open("for (s = 0; s < m; ++s) {");
    w.line("const " + std::string(scalar()) + "* px = x + (size_t)(start + s) * " +
           cols + ";");
    if (need_keys) {
      w.line(std::string(int_type()) + "* kk = keys + (size_t)s * " + cols + ";");
      w.open("for (int f = 0; f < " + cols + "; ++f) {");
      w.line("const " + std::string(uint_type()) + " u = (" + uint_type() +
             ")" + prefix_ + "_ld(px + f);");
      w.line("const " + std::string(uint_type()) + " flip = ((" + uint_type() +
             ")0 - (u >> " + std::to_string(kBits - 1) + ")) >> 1;");
      w.line("kk[f] = (" + std::string(int_type()) + ")(u ^ flip);");
      w.close("}");
    }
    if (special_) {
      w.line("uint8_t* nn = nan + (size_t)s * " + cols + ";");
      w.open("for (int f = 0; f < " + cols + "; ++f) {");
      w.line("const " + std::string(uint_type()) + " b = (" + uint_type() +
             ")" + prefix_ + "_ld(px + f);");
      w.line("nn[f] = (b & " +
             hex_u(static_cast<U>(core::FloatTraits<T>::abs_mask)) + ") > " +
             hex_u(static_cast<U>(core::FloatTraits<T>::exp_mask)) +
             " ? 1 : 0;");
      w.close("}");
    }
    if (cats_) {
      w.line("uint8_t* mm = mem + (size_t)s * " + std::to_string(slots_) + ";");
      for (std::size_t slot = 0; slot < slots_; ++slot) {
        const auto words = image_.cat_set_of_slot(slot);
        const T limit = static_cast<T>(words.size() * 32);
        w.open("{");
        w.line("const " + std::string(scalar()) + " v = px[" +
               std::to_string(image_.cat_feature[slot]) + "];");
        w.line("uint8_t m8 = 0;");
        w.open("if (v >= 0 && v < " + c_float_literal(limit) + ") {");
        w.line("const uint32_t ci = (uint32_t)v;");
        w.line("m8 = (uint8_t)((" + prefix_ + "_cat[" +
               std::to_string(image_.cat_offsets[slot]) +
               " + (ci >> 5)] >> (ci & 31u)) & 1u);");
        w.close("}");
        w.line("mm[" + std::to_string(slot) + "] = m8;");
        w.close("}");
      }
    }
    w.close("}");
  }

  void emit_scratch_decls(CodeWriter& w, bool need_keys) {
    const std::string tile = std::to_string(tile_);
    const std::string cols = std::to_string(std::max<std::size_t>(cols_, 1));
    if (binary_vote_) {
      w.line("uint8_t c1[" + tile + "];");
    } else if (spec_.vote) {
      w.line("int32_t votes[" + tile + " * " +
             std::to_string(spec_.num_classes) + "];");
    }
    if (need_keys) {
      w.line(std::string(int_type()) + " keys[" + tile + " * " + cols + "];");
    }
    if (special_) w.line("uint8_t nan[" + tile + " * " + cols + "];");
    if (cats_) {
      w.line("uint8_t mem[" + tile + " * " + std::to_string(slots_) + "];");
    }
  }

  void emit_per_sample_ptrs(CodeWriter& w, bool needs_px) {
    const std::string cols = std::to_string(cols_);
    if (needs_px) {
      w.line("const " + std::string(scalar()) +
             "* px = x + (size_t)(start + s) * " + cols + ";");
    }
    if (walker_needed_) {
      w.line("const " + std::string(int_type()) + "* kk = keys + (size_t)s * " +
             cols + ";");
    }
    if (special_) w.line("const uint8_t* nn = nan + (size_t)s * " + cols + ";");
    if (cats_) {
      w.line("const uint8_t* mm = mem + (size_t)s * " +
             std::to_string(slots_) + ";");
    }
  }

  /// Per-tree inner loops of the SMALL body: unrolled if/else spines (or the
  /// branchy walker for budget-degraded trees).  Fastest when the batch is
  /// small enough for the branch predictor to hold the whole traversal.
  void emit_small_tree_loops(CodeWriter& w) {
    const bool vote = spec_.vote;
    const std::string nc = std::to_string(spec_.num_classes);
    const std::string k = std::to_string(spec_.n_outputs);
    for (std::size_t t = 0; t < image_.roots.size(); ++t) {
      const bool needs_px = unrolled_[t] || plan_.hot_depth > 0;
      w.line("/* tree " + std::to_string(t) + " */");
      w.open("for (s = 0; s < m; ++s) {");
      emit_per_sample_ptrs(w, needs_px);
      if (binary_vote_) {
        w.line("c1[s] += (uint8_t)" + tree_call(t) + ";");
      } else if (vote) {
        w.line("++votes[(size_t)s * " + nc + " + (size_t)" + tree_call(t) +
               "];");
      } else {
        w.line("const int32_t row = " + tree_call(t) + ";");
        w.line("const " + std::string(scalar()) + "* lv = " + prefix_ +
               "_leaf + (size_t)row * " + k + ";");
        w.line(std::string(scalar()) + "* o = out + (size_t)(start + s) * " +
               k + ";");
        w.line("for (int j = 0; j < " + k + "; ++j) o[j] += lv[j];");
      }
      w.close("}");
    }
  }

  std::string step_call(const std::string& iv, const std::string& kv,
                        const std::string& nv, const std::string& mv) const {
    std::string args = iv + ", " + kv;
    if (special_) args += ", " + nv;
    if (cats_) args += ", " + mv;
    return prefix_ + "_step(" + args + ")";
  }

  /// Tally one tree's result for one sample: `payload` is an expression for
  /// the leaf payload (class id or leaf-row index).
  void emit_payload_writeback(CodeWriter& w, const std::string& payload,
                              const std::string& sample) {
    const std::string nc = std::to_string(spec_.num_classes);
    const std::string k = std::to_string(spec_.n_outputs);
    if (binary_vote_) {
      w.line("c1[" + sample + "] += (uint8_t)" + payload + ";");
      return;
    }
    if (spec_.vote) {
      w.line("++votes[(size_t)(" + sample + ") * " + nc + " + (size_t)" +
             payload + "];");
      return;
    }
    w.open("{");
    w.line("const " + std::string(scalar()) + "* lv = " + prefix_ +
           "_leaf + (size_t)" + payload + " * " + k + ";");
    w.line(std::string(scalar()) + "* o = out + (size_t)(start + (" + sample +
           ")) * " + k + ";");
    w.line("for (int j = 0; j < " + k + "; ++j) o[j] += lv[j];");
    w.close("}");
  }

  void emit_bf_leaf_writeback(CodeWriter& w, const std::string& iv,
                              const std::string& sample) {
    emit_payload_writeback(w, prefix_ + "_nodes[" + iv + "].key", sample);
  }

  /// Per-tree inner loops of the WIDE body: kLockstep samples descend in
  /// lockstep through the padded branch-free descent, hiding the node-load
  /// latency behind independent chases (the generated twin of the
  /// interpreter's blocked lockstep walker, minus its leaf checks and
  /// convergence tests — the padded trip count makes both unnecessary).
  /// The lane state lives in a small indexed array rather than named
  /// scalars: the short r-loop body keeps register pressure low while the
  /// out-of-order window still overlaps the independent per-lane loads.
  /// Complete-table trees descend by index arithmetic (2j+1+carry); the
  /// rest step through the embedded node array's child offsets.
  static constexpr int kLockstep = 32;

  /// One complete-table descent step: go right exactly when the node's
  /// padded radix key is strictly below the sample's key (left keeps the
  /// FLInt `sample <= split` convention).
  std::string ct_step(std::size_t t, const std::string& jv,
                      const std::string& key_expr) const {
    const std::string ct = prefix_ + "_ct" + std::to_string(t);
    return "2 * " + jv + " + 1 + (int32_t)(" + ct + "_k[" + jv + "] < " +
           key_expr + ")";
  }

  void emit_complete_tree_loops(CodeWriter& w, std::size_t t) {
    const std::string cols = std::to_string(cols_);
    const std::string W = std::to_string(kLockstep);
    const std::string depth = std::to_string(depths_[t]);
    const std::string ct = prefix_ + "_ct" + std::to_string(t);
    const std::string off =
        std::to_string((std::size_t{1} << depths_[t]) - 1);
    w.line("/* tree " + std::to_string(t) + " (complete, depth " + depth +
           ") */");
    w.open("for (s = 0; s + " + W + " <= m; s += " + W + ") {");
    w.line("int32_t cur[" + W + "];");
    w.line("int r, d;");
    w.line("for (r = 0; r < " + W + "; ++r) cur[r] = 0;");
    w.open("for (d = 0; d < " + depth + "; ++d) {");
    w.open("for (r = 0; r < " + W + "; ++r) {");
    w.line("const int32_t j = cur[r];");
    w.line("cur[r] = " +
           ct_step(t, "j", "keys[(size_t)(s + r) * " + cols + " + " + ct +
                              "_f[j]]") +
           ";");
    w.close("}");
    w.close("}");
    w.open("for (r = 0; r < " + W + "; ++r) {");
    emit_payload_writeback(w, ct + "_l[cur[r] - " + off + "]", "s + r");
    w.close("}");
    w.close("}");
    w.open("for (; s < m; ++s) {");
    w.line("const " + std::string(int_type()) + "* kk = keys + (size_t)s * " +
           cols + ";");
    w.line("int32_t j = 0;");
    w.line("int32_t d;");
    w.open("for (d = 0; d < " + depth + "; ++d) {");
    w.line("j = " + ct_step(t, "j", "kk[" + ct + "_f[j]]") + ";");
    w.close("}");
    emit_payload_writeback(w, ct + "_l[j - " + off + "]", "s");
    w.close("}");
  }

  /// Shared driver for every offset-stepping tree of the wide body,
  /// parameterized by root and padded depth.  One copy instead of a loop
  /// nest per tree matters twice over: the module shrinks by ~20 lines per
  /// tree, and — decisive for compile time — the optimizer sees one
  /// moderate function instead of a batch body with hundreds of inlined
  /// loop nests, whose alias analysis scales superlinearly.  Kept out of
  /// line for the same reason.
  void emit_step_tree_fn(CodeWriter& w) {
    const std::string cols = std::to_string(cols_);
    const std::string slots = std::to_string(slots_);
    const std::string W = std::to_string(kLockstep);
    std::string params = std::string("int32_t root, int32_t depth, const ") +
                         int_type() + "* keys";
    if (special_) params += ", const uint8_t* nan";
    if (cats_) params += ", const uint8_t* mem";
    params += ", long long m";
    if (binary_vote_) {
      params += ", uint8_t* c1";
    } else if (spec_.vote) {
      params += ", int32_t* votes";
    } else {
      params += std::string(", ") + scalar() + "* out, long long start";
    }
    const std::string karg =
        "keys + (size_t)(s + r) * " + cols +
        (special_ ? ", nan + (size_t)(s + r) * " + cols : "") +
        (cats_ ? ", mem + (size_t)(s + r) * " + slots : "");
    w.open("static FLINT_JIT_NOINLINE void " + prefix_ + "_step_tree(" +
           params + ") {");
    w.line("long long s;");
    w.open("for (s = 0; s + " + W + " <= m; s += " + W + ") {");
    w.line("int32_t cur[" + W + "];");
    w.line("int r, d;");
    w.line("for (r = 0; r < " + W + "; ++r) cur[r] = root;");
    w.open("for (d = 0; d < depth; ++d) {");
    w.line("for (r = 0; r < " + W + "; ++r) cur[r] = " + prefix_ +
           "_step(cur[r], " + karg + ");");
    w.close("}");
    w.open("for (r = 0; r < " + W + "; ++r) {");
    emit_bf_leaf_writeback(w, "cur[r]", "s + r");
    w.close("}");
    w.close("}");
    w.open("for (; s < m; ++s) {");
    w.line("const " + std::string(int_type()) + "* kk = keys + (size_t)s * " +
           cols + ";");
    if (special_) {
      w.line("const uint8_t* nn = nan + (size_t)s * " + cols + ";");
    }
    if (cats_) {
      w.line("const uint8_t* mm = mem + (size_t)s * " + slots + ";");
    }
    w.line("int32_t i = root;");
    w.line("int32_t d;");
    w.open("for (d = 0; d < depth; ++d) {");
    w.line("i = " + step_call("i", "kk", "nn", "mm") + ";");
    w.close("}");
    emit_bf_leaf_writeback(w, "i", "s");
    w.close("}");
    w.close("}");
    w.blank();
  }

  void emit_step_tree_loops(CodeWriter& w, std::size_t t) {
    std::string args = std::to_string(image_.roots[t]) + ", " +
                       std::to_string(depths_[t]) + ", keys";
    if (special_) args += ", nan";
    if (cats_) args += ", mem";
    args += ", m";
    if (binary_vote_) {
      args += ", c1";
    } else if (spec_.vote) {
      args += ", votes";
    } else {
      args += ", out, start";
    }
    w.line("/* tree " + std::to_string(t) + " (depth " +
           std::to_string(depths_[t]) + ") */");
    w.line(prefix_ + "_step_tree(" + args + ");");
  }

  void emit_bf_tree_loops(CodeWriter& w) {
    for (std::size_t t = 0; t < image_.roots.size(); ++t) {
      if (complete_[t]) {
        emit_complete_tree_loops(w, t);
      } else {
        emit_step_tree_loops(w, t);
      }
    }
  }

  void emit_batch_body(CodeWriter& w, const std::string& name,
                       bool branch_free) {
    const bool vote = spec_.vote;
    const std::string tile = std::to_string(tile_);
    const std::string nc = std::to_string(spec_.num_classes);
    const std::string k = std::to_string(spec_.n_outputs);
    const bool need_keys = branch_free || walker_needed_;
    w.open("static void " + name + "(const " + std::string(scalar()) +
           "* x, long long n, " +
           (vote ? std::string("int32_t") : std::string(scalar())) + "* out) {");
    w.line("long long start;");
    w.open("for (start = 0; start < n; start += " + tile + ") {");
    w.line("const long long m = (n - start) < " + tile + " ? (n - start) : " +
           tile + ";");
    w.line("long long s;");
    emit_scratch_decls(w, need_keys);
    if (binary_vote_) {
      w.line("memset(c1, 0, (size_t)m);");
    } else if (vote) {
      w.line("memset(votes, 0, (size_t)m * " + nc + " * sizeof(int32_t));");
    } else {
      w.open("for (s = 0; s < m; ++s) {");
      w.line(std::string(scalar()) + "* o = out + (size_t)(start + s) * " + k +
             ";");
      w.line("for (int j = 0; j < " + k + "; ++j) o[j] = " + prefix_ +
             "_base[j];");
      w.close("}");
    }
    emit_sample_setup(w, need_keys);
    if (branch_free) {
      emit_bf_tree_loops(w);
    } else {
      emit_small_tree_loops(w);
    }
    if (binary_vote_) {
      w.open("for (s = 0; s < m; ++s) {");
      w.line("out[start + s] = (int32_t)(2 * (int32_t)c1[s] > " +
             std::to_string(image_.roots.size()) + ");");
      w.close("}");
    } else if (vote) {
      w.open("for (s = 0; s < m; ++s) {");
      w.line("const int32_t* v = votes + (size_t)s * " + nc + ";");
      w.line("int32_t best = 0;");
      w.line("for (int c = 1; c < " + nc + "; ++c) if (v[c] > v[best]) "
             "best = c;");
      w.line("out[start + s] = best;");
      w.close("}");
    }
    w.close("}");
    w.close("}");
    w.blank();
  }

  /// Entry point: tiny batches take the unrolled if/else spines (lowest
  /// latency while traversal history fits the branch predictor); anything
  /// larger takes the padded branch-free lockstep body, whose throughput is
  /// flat in batch size.  Both bodies are bit-identical by construction.
  void emit_batch_driver(CodeWriter& w) {
    const bool vote = spec_.vote;
    emit_batch_body(w, prefix_ + "_batch_small", false);
    emit_batch_body(w, prefix_ + "_batch_wide", true);
    w.open("void " + prefix_ +
           (vote ? "_predict_batch(const " : "_accumulate_scores(const ") +
           scalar() + "* x, long long n, " +
           (vote ? std::string("int32_t") : std::string(scalar())) + "* out) {");
    w.open("if (n <= 64) {");
    w.line(prefix_ + "_batch_small(x, n, out);");
    w.line("return;");
    w.close("}");
    w.line(prefix_ + "_batch_wide(x, n, out);");
    w.close("}");
    w.blank();
  }

  void emit_classify_wrapper(CodeWriter& w) {
    w.open("int " + prefix_ + "_classify(const " + std::string(scalar()) +
           "* pX) {");
    w.line("int32_t r;");
    w.line(prefix_ + "_predict_batch(pX, 1, &r);");
    w.line("return (int)r;");
    w.close("}");
  }

  const CompactForest<T, CompactNode16>& image_;
  const exec::layout::LayoutPlan& plan_;
  const LayoutCGenSpec<T>& spec_;
  const LayoutCGenOptions& opt_;
  std::string prefix_;
  bool special_ = false;
  bool cats_ = false;
  bool binary_vote_ = false;
  std::size_t cols_ = 0;
  std::size_t slots_ = 0;
  std::size_t tile_ = 64;
  bool walker_needed_ = false;
  bool step_needed_ = false;
  std::vector<char> unrolled_;
  std::vector<char> complete_;
  std::vector<std::size_t> depths_;
};

}  // namespace

template <typename T>
GeneratedCode generate_layout(
    const CompactForest<T, CompactNode16>& image,
    const exec::layout::LayoutPlan& plan, const LayoutCGenSpec<T>& spec,
    const LayoutCGenOptions& options) {
  return LayoutGen<T>(image, plan, spec, options).run();
}

template GeneratedCode generate_layout<float>(
    const CompactForest<float, CompactNode16>&, const exec::layout::LayoutPlan&,
    const LayoutCGenSpec<float>&, const LayoutCGenOptions&);
template GeneratedCode generate_layout<double>(
    const CompactForest<double, CompactNode16>&,
    const exec::layout::LayoutPlan&, const LayoutCGenSpec<double>&,
    const LayoutCGenOptions&);

}  // namespace flint::codegen
