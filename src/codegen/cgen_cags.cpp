#include "codegen/cgen_cags.hpp"

#include <deque>
#include <stdexcept>
#include <vector>

namespace flint::codegen {

namespace {

template <core::FlintFloat T>
class CagsEmitter {
 public:
  CagsEmitter(CodeWriter& w, const trees::Tree<T>& tree,
              const trees::BranchStats& stats, const CGenOptions& options)
      : w_(w), tree_(tree), stats_(stats), options_(options),
        emitted_(tree.size(), false), needs_label_(tree.size(), false) {}

  void run() {
    pending_kernels_.push_back(0);
    bool first_kernel = true;
    while (!pending_kernels_.empty()) {
      const std::int32_t start = pending_kernels_.front();
      pending_kernels_.pop_front();
      if (emitted_[static_cast<std::size_t>(start)]) continue;
      if (!first_kernel) w_.line("/* --- kernel boundary --- */");
      first_kernel = false;
      emit_kernel(start);
    }
  }

 private:
  [[nodiscard]] int node_cost(const trees::Node<T>& n) const {
    if (n.is_leaf()) return options_.leaf_bytes;
    return options_.flint ? options_.flint_node_bytes : options_.float_node_bytes;
  }

  [[nodiscard]] std::string label(std::int32_t idx) const {
    return "L" + std::to_string(idx);
  }

  void emit_kernel(std::int32_t start) {
    int budget = options_.kernel_budget_bytes;
    std::vector<std::int32_t> local{start};
    while (!local.empty()) {
      std::int32_t cur = local.back();
      local.pop_back();
      if (emitted_[static_cast<std::size_t>(cur)]) continue;
      // Walk the hot trace from `cur` inline until a leaf or budget cut.
      while (true) {
        const auto& n = tree_.node(cur);
        const int cost = node_cost(n);
        if (budget < cost) {
          // Kernel full: continue this node in a later kernel.
          needs_label_[static_cast<std::size_t>(cur)] = true;
          w_.line("goto " + label(cur) + ";");
          pending_kernels_.push_back(cur);
          break;
        }
        budget -= cost;
        emitted_[static_cast<std::size_t>(cur)] = true;
        if (needs_label_[static_cast<std::size_t>(cur)]) {
          w_.raw(label(cur) + ":\n");
        }
        if (n.is_leaf()) {
          w_.line("return " + std::to_string(n.prediction) + ";");
          break;
        }
        // Swapping: the likelier edge falls through, the colder edge jumps.
        const double p_left = stats_.left_probability[static_cast<std::size_t>(cur)];
        const bool left_hot = p_left >= 0.5;
        const std::int32_t hot = left_hot ? n.left : n.right;
        const std::int32_t cold = left_hot ? n.right : n.left;
        // Condition that sends execution to the *cold* child.
        std::string cond = left_hot
                               ? condition_gt(options_, n.feature, n.split)
                               : condition_le(options_, n.feature, n.split);
        if (options_.use_builtin_expect) {
          cond = "__builtin_expect(" + cond + ", 0)";
        }
        needs_label_[static_cast<std::size_t>(cold)] = true;
        w_.line("if (" + cond + ") goto " + label(cold) + ";");
        local.push_back(cold);  // emit cold branch later in this kernel
        cur = hot;              // fall through into the hot child
        if (emitted_[static_cast<std::size_t>(cur)]) {
          // Cannot happen in a proper tree (single parent); guard anyway.
          w_.line("goto " + label(cur) + ";");
          break;
        }
      }
    }
  }

  CodeWriter& w_;
  const trees::Tree<T>& tree_;
  const trees::BranchStats& stats_;
  const CGenOptions& options_;
  std::vector<bool> emitted_;
  std::vector<bool> needs_label_;
  std::deque<std::int32_t> pending_kernels_;
};

}  // namespace

template <core::FlintFloat T>
std::string cags_tree_body(const trees::Tree<T>& tree,
                           const trees::BranchStats& stats,
                           const CGenOptions& options) {
  if (tree.empty()) throw std::invalid_argument("cags_tree_body: empty tree");
  if (stats.size() != tree.size()) {
    throw std::invalid_argument("cags_tree_body: stats/tree size mismatch");
  }
  CodeWriter w;
  CagsEmitter<T>(w, tree, stats, options).run();
  return w.take();
}

template <core::FlintFloat T>
GeneratedCode generate_cags(const trees::Forest<T>& forest,
                            const std::vector<trees::BranchStats>& stats,
                            const CGenOptions& options) {
  if (forest.empty()) throw std::invalid_argument("generate_cags: empty forest");
  if (stats.size() != forest.size()) {
    throw std::invalid_argument("generate_cags: need one BranchStats per tree");
  }
  CodeWriter w;
  emit_c_prologue<T>(w, options);
  const std::string scalar = c_scalar_name<T>();
  for (std::size_t t = 0; t < forest.size(); ++t) {
    w.open("static int " + options.prefix + "_tree_" + std::to_string(t) +
           "(const " + scalar + "* pX) {");
    w.raw(cags_tree_body(forest.tree(t), stats[t], options));
    w.close();
    w.blank();
  }
  emit_c_vote_driver<T>(w, options, forest.size(), forest.num_classes(),
                        /*extern_trees=*/false);

  GeneratedCode out;
  out.files.push_back({options.prefix + ".c", w.take()});
  out.classify_symbol = options.prefix + "_classify";
  out.flavor = options.flint ? "cags-flint" : "cags-float";
  return out;
}

template GeneratedCode generate_cags<float>(const trees::Forest<float>&,
                                            const std::vector<trees::BranchStats>&,
                                            const CGenOptions&);
template GeneratedCode generate_cags<double>(const trees::Forest<double>&,
                                             const std::vector<trees::BranchStats>&,
                                             const CGenOptions&);
template std::string cags_tree_body<float>(const trees::Tree<float>&,
                                           const trees::BranchStats&,
                                           const CGenOptions&);
template std::string cags_tree_body<double>(const trees::Tree<double>&,
                                            const trees::BranchStats&,
                                            const CGenOptions&);

}  // namespace flint::codegen
