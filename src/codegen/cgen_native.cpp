#include "codegen/cgen_native.hpp"

#include <cstdio>
#include <stdexcept>

namespace flint::codegen {

namespace {

/// Emits `static const <type> name[] = { ... };` wrapping rows of 12 values.
void emit_array(CodeWriter& w, const std::string& type, const std::string& name,
                const std::vector<std::string>& values) {
  w.open("static const " + type + " " + name + "[] = {");
  std::string row;
  for (std::size_t i = 0; i < values.size(); ++i) {
    row += values[i];
    row += ',';
    if ((i + 1) % 12 == 0 || i + 1 == values.size()) {
      w.line(row);
      row.clear();
    } else {
      row += ' ';
    }
  }
  w.close("};");
}

}  // namespace

template <core::FlintFloat T>
GeneratedCode generate_native(const trees::Forest<T>& forest,
                              const CGenOptions& options) {
  if (forest.empty()) throw std::invalid_argument("generate_native: empty forest");
  CodeWriter w;
  emit_c_prologue<T>(w, options);
  const std::string scalar = c_scalar_name<T>();
  const std::string int_type = core::FloatTraits<T>::c_int_type;

  for (std::size_t t = 0; t < forest.size(); ++t) {
    const auto& tree = forest.tree(t);
    const std::string p = options.prefix + "_t" + std::to_string(t);
    std::vector<std::string> feat, split, flip, left, right, pred;
    feat.reserve(tree.size());
    for (const auto& n : tree.nodes()) {
      feat.push_back(std::to_string(n.feature));
      left.push_back(std::to_string(n.left));
      right.push_back(std::to_string(n.right));
      pred.push_back(std::to_string(n.is_leaf() ? n.prediction : -1));
      if (options.flint) {
        const auto enc = core::encode_threshold_le(n.is_leaf() ? T{0} : n.split);
        split.push_back("(" + int_type + ")" + core::immediate_hex(enc));
        flip.push_back(enc.mode == core::ThresholdMode::SignFlip ? "1" : "0");
      } else {
        split.push_back(c_float_literal(n.is_leaf() ? T{0} : n.split));
      }
    }
    emit_array(w, "int32_t", p + "_feat", feat);
    emit_array(w, options.flint ? int_type : scalar, p + "_split", split);
    if (options.flint) emit_array(w, "uint8_t", p + "_flip", flip);
    emit_array(w, "int32_t", p + "_left", left);
    emit_array(w, "int32_t", p + "_right", right);
    emit_array(w, "int32_t", p + "_pred", pred);
    w.blank();

    w.open("static int " + options.prefix + "_tree_" + std::to_string(t) +
           "(const " + scalar + "* pX) {");
    w.line("int32_t i = 0;");
    w.open("while (" + p + "_feat[i] >= 0) {");
    if (options.flint) {
      w.line(int_type + " x = " + options.prefix + "_ld(pX + " + p + "_feat[i]);");
      // Branchless select of the comparison form; both forms evaluate the
      // same `<=` relation resolved by the per-node flip flag.
      char sign_hex[32];
      if constexpr (sizeof(T) == 4) {
        std::snprintf(sign_hex, sizeof sign_hex, "0x%08x",
                      static_cast<unsigned>(core::FloatTraits<T>::sign_mask));
      } else {
        std::snprintf(sign_hex, sizeof sign_hex, "0x%016llx",
                      static_cast<unsigned long long>(core::FloatTraits<T>::sign_mask));
      }
      w.line("int go_left = " + p + "_flip[i] ? (" + p + "_split[i] <= (x ^ ((" +
             int_type + ")" + std::string(sign_hex) + "))) : (x <= " + p +
             "_split[i]);");
    } else {
      w.line("int go_left = pX[" + p + "_feat[i]] <= " + p + "_split[i];");
    }
    w.line("i = go_left ? " + p + "_left[i] : " + p + "_right[i];");
    w.close();
    w.line("return " + p + "_pred[i];");
    w.close();
    w.blank();
  }
  emit_c_vote_driver<T>(w, options, forest.size(), forest.num_classes(),
                        /*extern_trees=*/false);

  GeneratedCode out;
  out.files.push_back({options.prefix + ".c", w.take()});
  out.classify_symbol = options.prefix + "_classify";
  out.flavor = options.flint ? "native-flint" : "native-float";
  return out;
}

template GeneratedCode generate_native<float>(const trees::Forest<float>&,
                                              const CGenOptions&);
template GeneratedCode generate_native<double>(const trees::Forest<double>&,
                                               const CGenOptions&);

}  // namespace flint::codegen
