// codegen/emit — shared infrastructure for the source-code generators.
//
// All generators turn a trained Forest into compilable text (C99 or GNU
// assembly) exposing one external symbol `<prefix>_classify` with the ABI
// `int <prefix>_classify(const float|double* pX)`.  The arch-forest
// framework the paper extends works the same way, one translation unit per
// forest, one function per tree, plus a voting driver.
#pragma once

#include <string>
#include <vector>

#include "core/flint.hpp"

namespace flint::codegen {

/// One file of generated text handed to the JIT (or written to disk by the
/// no-FPU export example).  `name` is a relative file name whose extension
/// selects the language (.c / .s).
struct SourceFile {
  std::string name;
  std::string content;
};

/// A complete generated module.
struct GeneratedCode {
  std::vector<SourceFile> files;
  std::string classify_symbol;  ///< e.g. "forest_classify"
  std::string flavor;           ///< human-readable generator id for reports
};

/// Options shared by every generator.
struct CGenOptions {
  std::string prefix = "forest";
  /// Emit FLInt integer comparisons instead of floating-point ones.
  bool flint = false;
  /// CAGS: kernel byte budget before the trace is cut and continued behind a
  /// goto (models the instruction-cache-resident code chunk of Chen et al.).
  int kernel_budget_bytes = 4096;
  /// CAGS: per-node machine-code size estimates (bytes) used against the
  /// kernel budget; defaults measured from gcc -O2 x86-64 output.
  int float_node_bytes = 24;
  int flint_node_bytes = 18;
  int leaf_bytes = 10;
  /// CAGS: annotate the cold edge with __builtin_expect so the C compiler
  /// preserves the probability-derived layout.
  bool use_builtin_expect = true;
};

/// Simple indentation-aware text sink.
class CodeWriter {
 public:
  /// Appends one indented line (no embedded newlines).
  void line(const std::string& text);
  /// Appends a blank line.
  void blank();
  /// line(text) then increase indentation (e.g. "if (...) {").
  void open(const std::string& text);
  /// Decrease indentation then line(text) (e.g. "}").
  void close(const std::string& text = "}");
  /// Decrease, line(text), increase again (e.g. "} else {").
  void reopen(const std::string& text);
  /// Appends raw text verbatim.
  void raw(const std::string& text);

  [[nodiscard]] const std::string& str() const noexcept { return out_; }
  [[nodiscard]] std::string take() noexcept { return std::move(out_); }

 private:
  std::string out_;
  int indent_ = 0;
};

/// Exact C literal for a float/double value ("10.0743475f", "1e-05", ...).
/// Uses max_digits10 so the compiled constant reproduces the trained split
/// bit pattern exactly.  Not valid for NaN/inf (forests never contain them);
/// throws std::invalid_argument on such input.
[[nodiscard]] std::string c_float_literal(float v);
[[nodiscard]] std::string c_float_literal(double v);

/// Scalar type name in generated C ("float" / "double").
template <core::FlintFloat T>
[[nodiscard]] const char* c_scalar_name() {
  if constexpr (sizeof(T) == 4) return "float";
  else return "double";
}

/// Standard prologue of every generated C file: includes plus the memcpy
/// based reinterpreting load (strict-aliasing-safe version of the paper's
/// `*(((int*)(pX))+3)`; compiles to one integer load at -O1).
template <core::FlintFloat T>
void emit_c_prologue(CodeWriter& w, const CGenOptions& options);

/// The voting driver: `int <prefix>_classify(const T* pX)` calling
/// `<prefix>_tree_<k>` for every tree and returning the argmax class
/// (lowest id wins ties, matching Forest::predict).
template <core::FlintFloat T>
void emit_c_vote_driver(CodeWriter& w, const CGenOptions& options,
                        std::size_t n_trees, int num_classes,
                        bool extern_trees);

/// Condition text for `x[feature] <= split` in the selected mode.
/// `flint == false`: "pX[3] <= 10.074347f"  (Listing 1)
/// `flint == true`:  "forest_ld32(pX + 3) <= (int32_t)0x41213087"  (Listing 2)
/// or the sign-flipped form for negative splits    (Listing 4).
template <core::FlintFloat T>
[[nodiscard]] std::string condition_le(const CGenOptions& options, int feature, T split);

/// Negation of condition_le (used for branch-swapped CAGS edges): the
/// generators must not emit `!(...)` around FLInt comparisons because the
/// integer relations have exact complements (<= vs >).
template <core::FlintFloat T>
[[nodiscard]] std::string condition_gt(const CGenOptions& options, int feature, T split);

}  // namespace flint::codegen
