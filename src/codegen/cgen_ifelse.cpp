#include "codegen/cgen_ifelse.hpp"

#include <stdexcept>

namespace flint::codegen {

namespace {

/// Emits the subtree rooted at `idx` as nested if/else blocks.  The trainer
/// caps depth (paper grid max 50), so recursion depth is bounded and small.
template <core::FlintFloat T>
void emit_subtree(CodeWriter& w, const trees::Tree<T>& tree, std::int32_t idx,
                  const CGenOptions& options) {
  const auto& n = tree.node(idx);
  if (n.is_leaf()) {
    w.line("return " + std::to_string(n.prediction) + ";");
    return;
  }
  w.open("if (" + condition_le(options, n.feature, n.split) + ") {");
  emit_subtree(w, tree, n.left, options);
  w.reopen("} else {");
  emit_subtree(w, tree, n.right, options);
  w.close();
}

}  // namespace

template <core::FlintFloat T>
std::string ifelse_tree_body(const trees::Tree<T>& tree,
                             const CGenOptions& options) {
  if (tree.empty()) throw std::invalid_argument("ifelse_tree_body: empty tree");
  CodeWriter w;
  emit_subtree(w, tree, 0, options);
  return w.take();
}

template <core::FlintFloat T>
GeneratedCode generate_ifelse(const trees::Forest<T>& forest,
                              const CGenOptions& options) {
  if (forest.empty()) throw std::invalid_argument("generate_ifelse: empty forest");
  CodeWriter w;
  emit_c_prologue<T>(w, options);
  const std::string scalar = c_scalar_name<T>();
  for (std::size_t t = 0; t < forest.size(); ++t) {
    w.open("static int " + options.prefix + "_tree_" + std::to_string(t) +
           "(const " + scalar + "* pX) {");
    emit_subtree(w, forest.tree(t), 0, options);
    w.close();
    w.blank();
  }
  emit_c_vote_driver<T>(w, options, forest.size(), forest.num_classes(),
                        /*extern_trees=*/false);

  GeneratedCode out;
  out.files.push_back({options.prefix + ".c", w.take()});
  out.classify_symbol = options.prefix + "_classify";
  out.flavor = options.flint ? "ifelse-flint" : "ifelse-float";
  return out;
}

template GeneratedCode generate_ifelse<float>(const trees::Forest<float>&,
                                              const CGenOptions&);
template GeneratedCode generate_ifelse<double>(const trees::Forest<double>&,
                                               const CGenOptions&);
template std::string ifelse_tree_body<float>(const trees::Tree<float>&,
                                             const CGenOptions&);
template std::string ifelse_tree_body<double>(const trees::Tree<double>&,
                                              const CGenOptions&);

}  // namespace flint::codegen
