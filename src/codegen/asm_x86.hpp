// codegen/asm_x86 — direct x86-64 assembly FLInt backend (paper §IV-C).
//
// Each tree becomes a SysV-ABI function in AT&T syntax: the feature value is
// loaded with a plain integer mov from the feature-vector pointer (%rdi),
// the split constant is a signed-integer immediate, and one cmp +
// conditional jump implements the FLInt comparison — no floating-point
// instruction appears anywhere in the module (asserted by the no-FPU tests
// via objdump).  A small C driver provides the voting classify function.
#pragma once

#include "codegen/emit.hpp"
#include "trees/forest.hpp"

namespace flint::codegen {

/// Generates {<prefix>.s, <prefix>_driver.c}.  Always FLInt (the paper's
/// assembly backend exists precisely to avoid float instructions).
/// binary32 and binary64 feature types are both supported.
template <core::FlintFloat T>
[[nodiscard]] GeneratedCode generate_asm_x86(const trees::Forest<T>& forest,
                                             const CGenOptions& options);

/// Single-tree assembly text (tests/examples).
template <core::FlintFloat T>
[[nodiscard]] std::string asm_x86_tree(const trees::Tree<T>& tree,
                                       const std::string& symbol);

}  // namespace flint::codegen
