// codegen/asm_arm — direct ARMv8 (AArch64) assembly FLInt backend.
//
// Mirrors the paper's Listing 5: the feature word is loaded with ldrsw from
// the feature-vector pointer (x0), the split constant is materialized with
// movz/movk, and cmp + b.gt realizes the FLInt comparison.  Negative split
// values flip the loaded sign bit with an eor before comparing.
//
// This container is x86-64, so the ARMv8 output cannot be executed here; it
// is validated structurally (golden tests against the Listing 5 shape) and
// documented as such in docs/BENCHMARKS.md.
#pragma once

#include "codegen/emit.hpp"
#include "trees/forest.hpp"

namespace flint::codegen {

/// Generates {<prefix>.s, <prefix>_driver.c} for AArch64.  Always FLInt.
template <core::FlintFloat T>
[[nodiscard]] GeneratedCode generate_asm_armv8(const trees::Forest<T>& forest,
                                               const CGenOptions& options);

/// Single-tree assembly text (tests/examples).
template <core::FlintFloat T>
[[nodiscard]] std::string asm_armv8_tree(const trees::Tree<T>& tree,
                                         const std::string& symbol);

}  // namespace flint::codegen
