#include "exec/interpreter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <type_traits>

#include "exec/pack_checks.hpp"

namespace flint::exec {

const char* to_string(FlintVariant v) {
  switch (v) {
    case FlintVariant::Encoded: return "encoded";
    case FlintVariant::Theorem1: return "theorem1";
    case FlintVariant::Theorem2: return "theorem2";
    case FlintVariant::RadixKey: return "radix";
  }
  return "?";
}

namespace {

/// -0.0 split values are normalized to +0.0 before any encoding; see
/// core::encode_threshold_le.
template <typename T>
T normalize_zero(T split) {
  return split == T{0} ? T{0} : split;
}

/// Copies a tree's category-set slots into an engine-level pool, returning
/// the engine slot base for that tree (engine slot = base + tree slot).
template <typename T>
std::size_t append_cat_slots(const trees::Tree<T>& tree,
                             std::vector<std::uint32_t>& words,
                             std::vector<std::int32_t>& offsets,
                             std::vector<std::int32_t>& sizes) {
  const std::size_t base = offsets.size();
  for (std::int32_t s = 0; s < tree.cat_slot_count(); ++s) {
    const auto set = tree.cat_set(s);
    offsets.push_back(static_cast<std::int32_t>(words.size()));
    sizes.push_back(static_cast<std::int32_t>(set.size()));
    words.insert(words.end(), set.begin(), set.end());
  }
  return base;
}

}  // namespace

template <typename T>
FlintForestEngine<T>::FlintForestEngine(const trees::Forest<T>& forest,
                                        FlintVariant variant)
    : variant_(variant),
      num_classes_(forest.num_classes()),
      feature_count_(forest.feature_count()) {
  if (forest.empty()) {
    throw std::invalid_argument("FlintForestEngine: empty forest");
  }
  if (feature_count_ > 32767) {
    throw std::invalid_argument(
        "FlintForestEngine: feature count exceeds PackedNode's int16 "
        "feature field (max 32767)");
  }
  nodes_.reserve(forest.total_nodes());
  roots_.reserve(forest.size());
  for (std::size_t t = 0; t < forest.size(); ++t) {
    const auto& tree = forest.tree(t);
    const std::size_t base = nodes_.size();
    const std::size_t slot_base =
        append_cat_slots(tree, cat_words_, cat_offsets_, cat_sizes_);
    roots_.push_back(base);
    for (const auto& n : tree.nodes()) {
      PackedNode<T> p;
      p.feature = static_cast<std::int16_t>(n.feature);
      if (n.is_leaf()) {
        check_leaf_class(n.prediction, num_classes_, t);
        p.payload = static_cast<Signed>(n.prediction);
      } else {
        p.left = n.left + static_cast<std::int32_t>(base);
        p.right = n.right + static_cast<std::int32_t>(base);
        if (n.default_left()) p.flags |= kPackedDefaultLeft;
        if (n.is_categorical()) {
          p.flags |= kPackedCategorical;
          p.payload = static_cast<Signed>(
              slot_base + static_cast<std::size_t>(n.cat_slot));
        } else {
          const T split = normalize_zero(n.split);
          switch (variant_) {
            case FlintVariant::Encoded: {
              const auto enc = core::encode_threshold_le(split);
              p.payload = enc.immediate;
              if (enc.mode == core::ThresholdMode::SignFlip) {
                p.flags |= kPackedSignFlip;
              }
              break;
            }
            case FlintVariant::RadixKey:
              p.payload = core::to_radix_key(split);
              break;
            case FlintVariant::Theorem1:
            case FlintVariant::Theorem2:
              p.payload = core::si_bits(split);
              break;
          }
        }
        if (p.flags & (kPackedDefaultLeft | kPackedCategorical)) {
          has_special_ = true;
        }
      }
      nodes_.push_back(p);
    }
  }
  if (variant_ == FlintVariant::RadixKey) {
    key_scratch_.resize(feature_count_);
  }
  vote_scratch_.assign(static_cast<std::size_t>(std::max(num_classes_, 1)), 0);
}

template <typename T>
template <FlintVariant V, bool Special>
std::int32_t FlintForestEngine<T>::predict_tree_impl(
    std::size_t root, std::span<const T> x,
    std::span<const Signed> keys) const {
  // The variant is a template parameter so the hot loop carries exactly one
  // comparison sequence and no runtime dispatch.  The Special branch detects
  // NaN from the FLInt integer form itself — (bits & abs_mask) > exp_mask —
  // so the missing-value check stays inside integer arithmetic; the check
  // precedes every compare, matching trees::Tree::leaf_for.
  std::size_t i = root;
  while (true) {
    const PackedNode<T>& n = nodes_[i];
    if (n.feature < 0) return static_cast<std::int32_t>(n.payload);
    const auto f = static_cast<std::size_t>(n.feature);
    bool go_left;
    if constexpr (Special) {
      const Signed raw = core::si_bits(x[f]);
      if (core::is_nan_bits<T>(raw)) {
        go_left = (n.flags & kPackedDefaultLeft) != 0;
        i = static_cast<std::size_t>(go_left ? n.left : n.right);
        continue;
      }
      if (n.flags & kPackedCategorical) {
        go_left = trees::cat_contains(
            cat_span(static_cast<std::size_t>(n.payload)), x[f]);
        i = static_cast<std::size_t>(go_left ? n.left : n.right);
        continue;
      }
    }
    if constexpr (V == FlintVariant::Encoded) {
      const Signed xi = core::si_bits(x[f]);
      go_left = (n.flags & kPackedSignFlip)
                    ? (n.payload <= (xi ^ core::FloatTraits<T>::sign_mask))
                    : (xi <= n.payload);
    } else if constexpr (V == FlintVariant::Theorem1) {
      // x <= s  <=>  s >= x.
      go_left = core::ge_theorem1(core::from_si_bits<T>(n.payload), x[f]);
    } else if constexpr (V == FlintVariant::Theorem2) {
      go_left = core::ge_theorem2(core::from_si_bits<T>(n.payload), x[f]);
    } else {
      go_left = keys[f] <= n.payload;
    }
    i = static_cast<std::size_t>(go_left ? n.left : n.right);
  }
}

template <typename T>
template <FlintVariant V, bool Special>
std::int32_t FlintForestEngine<T>::predict_impl(
    std::span<const T> x, std::span<const Signed> keys) const {
  // Vote accumulation mirrors Forest::predict (argmax, lowest id on ties).
  std::int32_t best_class = 0;
  int best_votes = 0;
  std::fill(vote_scratch_.begin(), vote_scratch_.end(), 0);
  for (const std::size_t root : roots_) {
    const std::int32_t c = predict_tree_impl<V, Special>(root, x, keys);
    const int v = ++vote_scratch_[static_cast<std::size_t>(c)];
    if (v > best_votes || (v == best_votes && c < best_class)) {
      best_votes = v;
      best_class = c;
    }
  }
  return best_class;
}

template <typename T>
std::int32_t FlintForestEngine<T>::predict(std::span<const T> x) const {
  const auto run = [&](auto variant_tag) -> std::int32_t {
    constexpr FlintVariant V = decltype(variant_tag)::value;
    std::span<const Signed> keys;
    if constexpr (V == FlintVariant::RadixKey) {
      for (std::size_t f = 0; f < feature_count_; ++f) {
        key_scratch_[f] = core::to_radix_key(x[f]);
      }
      keys = key_scratch_;
    }
    return has_special_ ? predict_impl<V, true>(x, keys)
                        : predict_impl<V, false>(x, keys);
  };
  switch (variant_) {
    case FlintVariant::Encoded:
      return run(std::integral_constant<FlintVariant, FlintVariant::Encoded>{});
    case FlintVariant::Theorem1:
      return run(std::integral_constant<FlintVariant, FlintVariant::Theorem1>{});
    case FlintVariant::Theorem2:
      return run(std::integral_constant<FlintVariant, FlintVariant::Theorem2>{});
    case FlintVariant::RadixKey:
      return run(std::integral_constant<FlintVariant, FlintVariant::RadixKey>{});
  }
  return 0;  // unreachable
}

template <typename T>
std::int32_t FlintForestEngine<T>::predict_tree(
    std::size_t t, std::span<const T> x, std::span<const Signed> keys) const {
  const std::size_t root = roots_[t];
  const auto run = [&](auto variant_tag) -> std::int32_t {
    constexpr FlintVariant V = decltype(variant_tag)::value;
    return has_special_ ? predict_tree_impl<V, true>(root, x, keys)
                        : predict_tree_impl<V, false>(root, x, keys);
  };
  switch (variant_) {
    case FlintVariant::Encoded:
      return run(std::integral_constant<FlintVariant, FlintVariant::Encoded>{});
    case FlintVariant::Theorem1:
      return run(std::integral_constant<FlintVariant, FlintVariant::Theorem1>{});
    case FlintVariant::Theorem2:
      return run(std::integral_constant<FlintVariant, FlintVariant::Theorem2>{});
    case FlintVariant::RadixKey:
      return run(std::integral_constant<FlintVariant, FlintVariant::RadixKey>{});
  }
  return 0;  // unreachable
}

template <typename T>
void FlintForestEngine<T>::remap_keys(std::span<const T> x,
                                      std::span<Signed> out) const {
  for (std::size_t f = 0; f < feature_count_; ++f) {
    out[f] = core::to_radix_key(x[f]);
  }
}

template <typename T>
void FlintForestEngine<T>::predict_batch(const data::Dataset<T>& dataset,
                                         std::span<std::int32_t> out) const {
  if (out.size() < dataset.rows()) {
    throw std::invalid_argument("predict_batch: output span too small");
  }
  for (std::size_t r = 0; r < dataset.rows(); ++r) {
    out[r] = predict(dataset.row(r));
  }
}

template <typename T>
double FlintForestEngine<T>::accuracy(const data::Dataset<T>& dataset) const {
  if (dataset.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t r = 0; r < dataset.rows(); ++r) {
    if (predict(dataset.row(r)) == dataset.label(r)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(dataset.rows());
}

template <typename T>
FloatForestEngine<T>::FloatForestEngine(const trees::Forest<T>& forest)
    : num_classes_(forest.num_classes()) {
  if (forest.empty()) {
    throw std::invalid_argument("FloatForestEngine: empty forest");
  }
  nodes_.reserve(forest.total_nodes());
  roots_.reserve(forest.size());
  for (std::size_t t = 0; t < forest.size(); ++t) {
    const auto& tree = forest.tree(t);
    const std::size_t base = nodes_.size();
    const std::size_t slot_base =
        append_cat_slots(tree, cat_words_, cat_offsets_, cat_sizes_);
    roots_.push_back(base);
    for (const auto& n : tree.nodes()) {
      FloatNode p;
      p.feature = n.feature;
      if (n.is_leaf()) {
        check_leaf_class(n.prediction, num_classes_, t);
        p.feature = -1;
        p.left = n.prediction;  // payload reuse for leaves
      } else {
        p.split = n.split;
        p.left = n.left + static_cast<std::int32_t>(base);
        p.right = n.right + static_cast<std::int32_t>(base);
        if (n.default_left()) p.flags |= kPackedDefaultLeft;
        if (n.is_categorical()) {
          p.flags |= kPackedCategorical;
          p.cat_slot = static_cast<std::int32_t>(
              slot_base + static_cast<std::size_t>(n.cat_slot));
        }
        if (p.flags != 0) has_special_ = true;
      }
      nodes_.push_back(p);
    }
  }
  vote_scratch_.assign(static_cast<std::size_t>(std::max(num_classes_, 1)), 0);
}

template <typename T>
template <bool Special>
std::int32_t FloatForestEngine<T>::predict_tree_impl(
    std::size_t root, std::span<const T> x) const {
  std::size_t i = root;
  while (true) {
    const FloatNode& n = nodes_[i];
    if (n.feature < 0) return n.left;  // payload reuse for leaves
    const T v = x[static_cast<std::size_t>(n.feature)];
    bool go_left;
    if constexpr (Special) {
      if (std::isnan(v)) {
        go_left = (n.flags & kPackedDefaultLeft) != 0;
      } else if (n.flags & kPackedCategorical) {
        go_left = trees::cat_contains(
            cat_span(static_cast<std::size_t>(n.cat_slot)), v);
      } else {
        go_left = v <= n.split;
      }
    } else {
      go_left = v <= n.split;
    }
    i = static_cast<std::size_t>(go_left ? n.left : n.right);
  }
}

template <typename T>
std::int32_t FloatForestEngine<T>::predict(std::span<const T> x) const {
  std::int32_t best_class = 0;
  int best_votes = 0;
  std::fill(vote_scratch_.begin(), vote_scratch_.end(), 0);
  for (const std::size_t root : roots_) {
    const std::int32_t c = has_special_ ? predict_tree_impl<true>(root, x)
                                        : predict_tree_impl<false>(root, x);
    const int v = ++vote_scratch_[static_cast<std::size_t>(c)];
    if (v > best_votes || (v == best_votes && c < best_class)) {
      best_votes = v;
      best_class = c;
    }
  }
  return best_class;
}

template <typename T>
std::int32_t FloatForestEngine<T>::predict_tree(std::size_t t,
                                                std::span<const T> x) const {
  return has_special_ ? predict_tree_impl<true>(roots_[t], x)
                      : predict_tree_impl<false>(roots_[t], x);
}

template <typename T>
void FloatForestEngine<T>::predict_batch(const data::Dataset<T>& dataset,
                                         std::span<std::int32_t> out) const {
  if (out.size() < dataset.rows()) {
    throw std::invalid_argument("predict_batch: output span too small");
  }
  for (std::size_t r = 0; r < dataset.rows(); ++r) {
    out[r] = predict(dataset.row(r));
  }
}

template <typename T>
double FloatForestEngine<T>::accuracy(const data::Dataset<T>& dataset) const {
  if (dataset.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t r = 0; r < dataset.rows(); ++r) {
    if (predict(dataset.row(r)) == dataset.label(r)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(dataset.rows());
}

template class FlintForestEngine<float>;
template class FlintForestEngine<double>;
template class FloatForestEngine<float>;
template class FloatForestEngine<double>;

}  // namespace flint::exec
