// exec/simd/simd_engine — data-parallel forest inference over the SoA
// layout: the batched counterpart of exec/interpreter.hpp's per-sample
// engines.
//
// SimdForestEngine owns a SoaForest (soa.hpp) and, per batch, cuts the
// row-major samples into feature-major tiles of W lanes, then runs the
// widest traversal kernel the build and the running CPU support:
//
//   * AVX2 (x86-64, 8 float lanes, gather-based) — kernels_avx2.cpp
//   * NEON (AArch64, 4 float lanes)              — kernels_neon.cpp
//   * portable width-generic scalar template      — kernels_scalar.hpp
//     (always built; the only double-precision path, W = 4)
//
// The kernel is selected once at construction; kernel_name() reports which
// one runs so benches and tests can label results.  predict_batch is
// bit-identical to Forest::predict for every non-NaN input (the same
// contract as every other engine, property-tested in tests/test_simd.cpp
// and tests/test_predictor.cpp) and const-thread-safe: all tile/vote
// scratch is function-local, so ParallelPredictor can partition a batch
// across workers without cloning the engine (threads x lanes parallelism).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "exec/simd/soa.hpp"
#include "trees/forest.hpp"

namespace flint::exec::simd {

/// Comparison mode of the traversal kernel: FLInt unified integer compare
/// or hardware float <= (both bit-identical to Forest::predict).
enum class SimdMode { Flint, Float };

[[nodiscard]] const char* to_string(SimdMode mode);

template <typename T>
class SimdForestEngine {
 public:
  /// Packs `forest` into SoA form and selects the traversal kernel.
  /// `block_size` is the number of samples transposed per outer block
  /// (rounded up to a whole number of tiles); it bounds the function-local
  /// scratch of predict_batch, not the result.
  SimdForestEngine(const trees::Forest<T>& forest, SimdMode mode,
                   std::size_t block_size = 256);

  [[nodiscard]] SimdMode mode() const noexcept { return mode_; }
  [[nodiscard]] int num_classes() const noexcept { return soa_.num_classes; }
  [[nodiscard]] std::size_t feature_count() const noexcept {
    return soa_.feature_count;
  }
  [[nodiscard]] std::size_t tree_count() const noexcept {
    return soa_.tree_count();
  }
  /// "avx2", "neon" or "scalar" — which kernel predict_batch runs.
  [[nodiscard]] const char* kernel_name() const noexcept { return kernel_name_; }
  /// Samples stepped in lockstep per tile (8 for AVX2, 4 for NEON/double).
  [[nodiscard]] std::size_t lane_width() const noexcept { return width_; }
  /// The packed model (read-only); the serialize round-trip tests compare
  /// threshold bit patterns through this.
  [[nodiscard]] const SoaForest<T>& soa() const noexcept { return soa_; }

  /// Classifies `n_samples` row-major samples into `out`.  Thread-safe
  /// (function-local scratch only).  A zero-sample batch is a no-op.
  void predict_batch(const T* features, std::size_t n_samples,
                     std::int32_t* out) const;

  /// Float-accumulate epilogue for additive leaf-value models
  /// (model/forest_model.hpp): every leaf payload indexes a row of
  /// `leaf_values` (`n_outputs` values per row), and `out[s*n_outputs+j]`
  /// becomes base[j] (zeros when `base` is empty) plus the sum of the rows
  /// the sample's trees land on, accumulated in tree order.  Runs the
  /// width-generic scalar lockstep kernel at the same unified FLInt /
  /// float compare as predict_batch.  Thread-safe; zero samples = no-op.
  void predict_scores(const T* features, std::size_t n_samples,
                      std::span<const T> leaf_values, std::size_t n_outputs,
                      std::span<const T> base, T* out) const;

  /// Majority-vote class for one sample (a batch of one).
  [[nodiscard]] std::int32_t predict(std::span<const T> x) const;

 private:
  using KernelFn = void (*)(const SoaForest<T>&, const T*, std::size_t, int*);

  SoaForest<T> soa_;
  SimdMode mode_;
  KernelFn kernel_ = nullptr;
  const char* kernel_name_ = "scalar";
  std::size_t width_ = 1;
  std::size_t block_tiles_ = 1;  ///< tiles transposed per outer block
};

extern template class SimdForestEngine<float>;
extern template class SimdForestEngine<double>;

}  // namespace flint::exec::simd
