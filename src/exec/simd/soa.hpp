// exec/simd/soa — structure-of-arrays forest layout and block transposer
// for the data-parallel traversal kernels.
//
// The scalar interpreters (exec/interpreter.hpp) walk one sample at a time
// through an array-of-structs PackedNode layout.  The SIMD kernels instead
// step W samples through a tree level in lockstep, which needs two layout
// changes:
//
//   * the forest becomes parallel arrays (feature / threshold / xor_mask /
//     split / left / right) so one gather per array fetches a whole lane
//     vector of node fields;
//   * the sample block becomes feature-major "tiles": tile t holds lanes
//     [t*W, t*W+W) with tile[c*W + l] = row (t*W+l) feature c, so the lane
//     vector of feature values for any feature index is one contiguous (or
//     one gathered) load.
//
// FLInt thresholds are stored in a *unified* single-compare form.  The
// Encoded engine's two modes
//
//   Direct:    go_left =  si(x) <= imm
//   SignFlip:  go_left =  imm <= (si(x) ^ sign_mask)
//
// branch on the mode per node; a lane vector mixes both modes, so the
// kernels need one branch-free formula.  Using a >= b  <=>  ~a <= ~b (two's
// complement bit-not reverses the order with no overflow), SignFlip
// rewrites to
//
//   go_left = ~(si(x) ^ sign_mask) <= ~imm = (si(x) ^ abs_mask) <= ~imm
//
// so every node reduces to
//
//   go_left = (si(x) ^ xor_mask) <= threshold
//
// with (xor_mask, threshold) = (0, imm) for Direct and (abs_mask, ~imm) for
// SignFlip.  This is algebraically identical to EncodedThreshold::le —
// bit-identical results on every input, property-tested in tests/test_simd.
//
// Leaves self-loop (left == right == own index) and store their class id in
// `threshold`, so kernels need no per-lane "active" mask: finished lanes
// spin harmlessly on their leaf until the whole lane vector converges.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/flint.hpp"
#include "trees/forest.hpp"

namespace flint::exec::layout {
template <typename T>
struct KeyTableSet;  // exec/layout/narrow.hpp
}  // namespace flint::exec::layout

namespace flint::exec::simd {

/// Structure-of-arrays packing of a trained forest (all trees concatenated,
/// `roots[t]` = root node index of tree t).  See the file comment for the
/// unified FLInt threshold form and the leaf self-loop convention.
template <typename T>
struct SoaForest {
  using Signed = typename core::FloatTraits<T>::Signed;

  explicit SoaForest(const trees::Forest<T>& forest);

  [[nodiscard]] std::size_t node_count() const noexcept { return feature.size(); }
  [[nodiscard]] std::size_t tree_count() const noexcept { return roots.size(); }

  int num_classes = 0;
  std::size_t feature_count = 0;
  bool has_special = false;           ///< any default-left / categorical node
  std::vector<std::int32_t> feature;  ///< FI(n); -1 for leaves
  std::vector<Signed> threshold;      ///< unified immediate; leaf: class id
  std::vector<Signed> xor_mask;       ///< 0 (Direct) or abs_mask (SignFlip)
  std::vector<T> split;               ///< raw split value (float kernels)
  std::vector<std::int32_t> left;     ///< leaf: own index (self-loop)
  std::vector<std::int32_t> right;    ///< leaf: own index (self-loop)
  std::vector<std::int32_t> roots;

  /// Missing/categorical side tables, populated only when the source forest
  /// has such splits (has_special).  `flags[n]` carries the trees::Node flag
  /// bits verbatim (kNodeDefaultLeft, kNodeCategorical); categorical nodes
  /// store 0 in threshold/xor_mask/split and their engine-level category-
  /// set slot in cat_slot.  Empty vectors otherwise — the fast kernels never
  /// touch them.
  std::vector<std::uint8_t> flags;
  std::vector<std::int32_t> cat_slot;      ///< -1 for numeric nodes / leaves
  std::vector<std::uint32_t> cat_words;    ///< category bitsets, all slots
  std::vector<std::int32_t> cat_offsets;   ///< word offset per engine slot
  std::vector<std::int32_t> cat_sizes;     ///< word count per engine slot

  /// Category bitset of node `n` (precondition: cat_slot[n] >= 0).
  [[nodiscard]] std::span<const std::uint32_t> cat_set_of(
      std::size_t n) const noexcept {
    const auto s = static_cast<std::size_t>(cat_slot[n]);
    return {cat_words.data() + static_cast<std::size_t>(cat_offsets[s]),
            static_cast<std::size_t>(cat_sizes[s])};
  }

  /// Narrowed per-node threshold keys (exec/layout/narrow.hpp): populated
  /// by build_narrow_keys, `narrow_key[n]` is the rank of node n's split in
  /// its feature's monotone key table (leaves: class id).  With samples
  /// remapped through the same tables, `rank(x) <= narrow_key[n]` decides
  /// exactly like the unified compare above — a half-width gather for
  /// kernels that opt in, and the bridge the layout:* engines share with
  /// the simd:* backends.  Empty until built.
  std::vector<std::int32_t> narrow_key;

  /// Fills narrow_key from `tables` (one table per feature, covering every
  /// split of this forest).  Throws std::invalid_argument on a table set
  /// that does not match the forest.
  void build_narrow_keys(const layout::KeyTableSet<T>& tables);
};

/// Transposes `n_rows` row-major rows (stride `cols`) into feature-major
/// tiles of `lanes` lanes:
///     tiles[t*cols*lanes + c*lanes + l] = rows[(t*lanes+l)*cols + c].
/// `tiles` must hold ceil(n_rows/lanes)*cols*lanes values; lanes beyond
/// n_rows are zero-filled so padded lanes still traverse on well-defined
/// (ignored) inputs.  The FLInt kernels reinterpret the same tile bytes as
/// integers (si_bits is a bit_cast), so one transpose serves both compare
/// modes.  The lane count is a runtime parameter because SimdForestEngine
/// picks it per dispatched kernel.
template <typename T>
void transpose_tiles(const T* rows, std::size_t n_rows, std::size_t cols,
                     std::size_t lanes, T* tiles) {
  const std::size_t n_tiles = (n_rows + lanes - 1) / lanes;
  for (std::size_t t = 0; t < n_tiles; ++t) {
    T* tile = tiles + t * cols * lanes;
    const std::size_t valid =
        n_rows - t * lanes < lanes ? n_rows - t * lanes : lanes;
    for (std::size_t c = 0; c < cols; ++c) {
      for (std::size_t l = 0; l < valid; ++l) {
        tile[c * lanes + l] = rows[(t * lanes + l) * cols + c];
      }
      for (std::size_t l = valid; l < lanes; ++l) {
        tile[c * lanes + l] = T{0};
      }
    }
  }
}

/// Compile-time-width convenience for kernel tests and fixed-W callers.
template <typename T, std::size_t W>
void transpose_tiles(const T* rows, std::size_t n_rows, std::size_t cols,
                     T* tiles) {
  transpose_tiles(rows, n_rows, cols, W, tiles);
}

extern template struct SoaForest<float>;
extern template struct SoaForest<double>;

}  // namespace flint::exec::simd
