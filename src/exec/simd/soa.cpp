#include "exec/simd/soa.hpp"

#include <stdexcept>

#include "exec/layout/narrow.hpp"
#include "exec/pack_checks.hpp"

namespace flint::exec::simd {

template <typename T>
SoaForest<T>::SoaForest(const trees::Forest<T>& forest)
    : num_classes(forest.num_classes()), feature_count(forest.feature_count()) {
  if (forest.empty()) {
    throw std::invalid_argument("SoaForest: empty forest");
  }
  std::size_t total = 0;
  for (std::size_t t = 0; t < forest.size(); ++t) {
    total += forest.tree(t).size();
  }
  feature.reserve(total);
  threshold.reserve(total);
  xor_mask.reserve(total);
  split.reserve(total);
  left.reserve(total);
  right.reserve(total);
  roots.reserve(forest.size());

  has_special = forest.has_special_splits();
  if (has_special) {
    flags.reserve(total);
    cat_slot.reserve(total);
  }

  for (std::size_t t = 0; t < forest.size(); ++t) {
    const auto& tree = forest.tree(t);
    const auto base = static_cast<std::int32_t>(feature.size());
    const auto slot_base = static_cast<std::int32_t>(cat_offsets.size());
    for (std::int32_t s = 0; s < tree.cat_slot_count(); ++s) {
      const auto set = tree.cat_set(s);
      cat_offsets.push_back(static_cast<std::int32_t>(cat_words.size()));
      cat_sizes.push_back(static_cast<std::int32_t>(set.size()));
      cat_words.insert(cat_words.end(), set.begin(), set.end());
    }
    roots.push_back(base);
    for (const auto& n : tree.nodes()) {
      const auto self = static_cast<std::int32_t>(feature.size());
      feature.push_back(n.feature);
      if (has_special) {
        flags.push_back(n.is_leaf() ? std::uint8_t{0} : n.flags);
        cat_slot.push_back(n.is_categorical() ? slot_base + n.cat_slot : -1);
      }
      if (n.is_leaf()) {
        // The kernels index the vote matrix by this class id with no bounds
        // check on the hot path; see exec/pack_checks.hpp.
        check_leaf_class(n.prediction, num_classes, t);
        threshold.push_back(static_cast<Signed>(n.prediction));
        xor_mask.push_back(0);
        split.push_back(T{0});
        left.push_back(self);
        right.push_back(self);
      } else if (n.is_categorical()) {
        // Membership is decided from cat_slot / cat_words; the numeric
        // fields are inert zeros (the special kernel never compares them).
        threshold.push_back(0);
        xor_mask.push_back(0);
        split.push_back(T{0});
        left.push_back(n.left + base);
        right.push_back(n.right + base);
      } else {
        const auto enc = core::encode_threshold_le(n.split);
        if (enc.mode == core::ThresholdMode::Direct) {
          threshold.push_back(enc.immediate);
          xor_mask.push_back(0);
        } else {
          // SignFlip unified via a >= b <=> ~a <= ~b; see soa.hpp.
          threshold.push_back(static_cast<Signed>(~enc.immediate));
          xor_mask.push_back(
              static_cast<Signed>(core::FloatTraits<T>::abs_mask));
        }
        split.push_back(n.split);
        left.push_back(n.left + base);
        right.push_back(n.right + base);
      }
    }
  }
}

template <typename T>
void SoaForest<T>::build_narrow_keys(const layout::KeyTableSet<T>& tables) {
  if (tables.features.size() != feature_count) {
    throw std::invalid_argument(
        "build_narrow_keys: key table set does not match the forest's "
        "feature count");
  }
  narrow_key.resize(node_count());
  for (std::size_t n = 0; n < node_count(); ++n) {
    if (feature[n] < 0) {
      // Leaf: `threshold` already holds the class id; mirror it.
      narrow_key[n] = static_cast<std::int32_t>(threshold[n]);
      continue;
    }
    if (has_special && cat_slot[n] >= 0) {
      // Categorical nodes have no threshold to rank; the special traversal
      // decides membership from cat_words and never reads narrow_key.
      narrow_key[n] = 0;
      continue;
    }
    // `split` holds the raw value; rank_of_split applies the same -0.0
    // normalization and exactness check as the compact packer.
    narrow_key[n] = layout::rank_of_split(
        tables.features[static_cast<std::size_t>(feature[n])], split[n]);
  }
}

template struct SoaForest<float>;
template struct SoaForest<double>;

}  // namespace flint::exec::simd
