// exec/simd/kernels — declarations of the architecture-specialized
// lockstep traversal kernels.
//
// Which translation units exist is decided at configure time (CMake adds
// kernels_avx2.cpp with -mavx2 on x86-64 toolchains that support it, and
// kernels_neon.cpp on AArch64) and communicated through the
// FLINT_SIMD_AVX2 / FLINT_SIMD_NEON compile definitions.  The scalar
// template in kernels_scalar.hpp is always available; SimdForestEngine
// picks the widest kernel the build *and* the running CPU support.
//
// All kernels share one contract (see predict_tiles_scalar): accumulate
// per-lane votes for every tree of a SoaForest over feature-major tiles,
// bit-identically to Forest::predict for every non-NaN input.
#pragma once

#include <cstddef>
#include <cstdint>

#include "exec/simd/soa.hpp"

namespace flint::exec::simd {

#if defined(FLINT_SIMD_AVX2)
/// Lanes per tile of the AVX2 float kernels (8 x int32/float in a ymm).
inline constexpr std::size_t kAvx2Width = 8;
/// True iff the running CPU executes AVX2 (the build supporting -mavx2
/// does not guarantee the deployment host does).
[[nodiscard]] bool avx2_supported() noexcept;
void predict_tiles_flint_avx2(const SoaForest<float>& f, const float* tiles,
                              std::size_t n_tiles, int* votes);
void predict_tiles_float_avx2(const SoaForest<float>& f, const float* tiles,
                              std::size_t n_tiles, int* votes);
#endif

#if defined(FLINT_SIMD_NEON)
/// Lanes per tile of the NEON float kernels (4 x int32/float in a q reg).
inline constexpr std::size_t kNeonWidth = 4;
void predict_tiles_flint_neon(const SoaForest<float>& f, const float* tiles,
                              std::size_t n_tiles, int* votes);
void predict_tiles_float_neon(const SoaForest<float>& f, const float* tiles,
                              std::size_t n_tiles, int* votes);
#endif

}  // namespace flint::exec::simd
