#include "exec/simd/simd_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "exec/simd/kernels.hpp"
#include "exec/simd/kernels_scalar.hpp"

namespace flint::exec::simd {

const char* to_string(SimdMode mode) {
  return mode == SimdMode::Flint ? "flint" : "float";
}

namespace {

/// Scalar fallback width: wide enough that the W independent traversal
/// chains fill the out-of-order window, small enough that the lane state
/// stays in registers.
template <typename T>
inline constexpr std::size_t kScalarWidth = sizeof(T) == 4 ? 8 : 4;

}  // namespace

template <typename T>
SimdForestEngine<T>::SimdForestEngine(const trees::Forest<T>& forest,
                                      SimdMode mode, std::size_t block_size)
    : soa_(forest), mode_(mode) {
  // Widest-first dispatch: specialized kernels exist for float only; double
  // always runs the width-generic scalar template.
  width_ = kScalarWidth<T>;
  if (soa_.has_special) {
    // Missing/categorical forests run the width-generic scalar kernel with
    // the special lane checks compiled in; the vector kernels have no
    // special path (yet) and would silently mis-route NaN.
    kernel_ = mode_ == SimdMode::Flint
                  ? &predict_tiles_scalar<T, kScalarWidth<T>, true, true>
                  : &predict_tiles_scalar<T, kScalarWidth<T>, false, true>;
    block_tiles_ = std::max<std::size_t>(
        1, (std::max<std::size_t>(block_size, 1) + width_ - 1) / width_);
    return;
  }
  if (mode_ == SimdMode::Flint) {
    kernel_ = &predict_tiles_scalar<T, kScalarWidth<T>, true>;
  } else {
    kernel_ = &predict_tiles_scalar<T, kScalarWidth<T>, false>;
  }
  if constexpr (std::is_same_v<T, float>) {
#if defined(FLINT_SIMD_AVX2)
    if (avx2_supported()) {
      width_ = kAvx2Width;
      kernel_ = mode_ == SimdMode::Flint ? &predict_tiles_flint_avx2
                                         : &predict_tiles_float_avx2;
      kernel_name_ = "avx2";
    }
#elif defined(FLINT_SIMD_NEON)
    width_ = kNeonWidth;
    kernel_ = mode_ == SimdMode::Flint ? &predict_tiles_flint_neon
                                       : &predict_tiles_float_neon;
    kernel_name_ = "neon";
#endif
  }
  block_tiles_ = std::max<std::size_t>(
      1, (std::max<std::size_t>(block_size, 1) + width_ - 1) / width_);
}

template <typename T>
void SimdForestEngine<T>::predict_batch(const T* features,
                                        std::size_t n_samples,
                                        std::int32_t* out) const {
  if (n_samples == 0) return;
  const std::size_t W = width_;
  const std::size_t cols = soa_.feature_count;
  const auto classes =
      static_cast<std::size_t>(std::max(soa_.num_classes, 1));
  const std::size_t block_samples = block_tiles_ * W;
  std::vector<T> tiles(block_tiles_ * cols * W);
  std::vector<int> votes(block_samples * classes);
  for (std::size_t base = 0; base < n_samples; base += block_samples) {
    const std::size_t count = std::min(block_samples, n_samples - base);
    const std::size_t n_tiles = (count + W - 1) / W;
    transpose_tiles(features + base * cols, count, cols, W, tiles.data());
    std::fill(votes.begin(), votes.begin() + n_tiles * W * classes, 0);
    kernel_(soa_, tiles.data(), n_tiles, votes.data());
    for (std::size_t s = 0; s < count; ++s) {
      const int* vrow = votes.data() + s * classes;
      std::int32_t best = 0;
      for (std::size_t c = 1; c < classes; ++c) {
        if (vrow[c] > vrow[best]) best = static_cast<std::int32_t>(c);
      }
      out[base + s] = best;
    }
  }
}

template <typename T>
void SimdForestEngine<T>::predict_scores(const T* features,
                                         std::size_t n_samples,
                                         std::span<const T> leaf_values,
                                         std::size_t n_outputs,
                                         std::span<const T> base,
                                         T* out) const {
  if (n_samples == 0) return;
  if (n_outputs == 0 || leaf_values.size() % n_outputs != 0) {
    throw std::invalid_argument(
        "SimdForestEngine::predict_scores: leaf_values is not a multiple of "
        "n_outputs");
  }
  if (!base.empty() && base.size() != n_outputs) {
    throw std::invalid_argument(
        "SimdForestEngine::predict_scores: base size mismatch");
  }
  // The score path always runs the width-generic scalar lockstep kernel:
  // the vector kernels' vote epilogue does not apply, and the fixed width
  // keeps the accumulation order identical on every host.
  constexpr std::size_t W = kScalarWidth<T>;
  const std::size_t cols = soa_.feature_count;
  const std::size_t block_tiles =
      std::max<std::size_t>(1, (block_tiles_ * width_ + W - 1) / W);
  const std::size_t block_samples = block_tiles * W;
  std::vector<T> tiles(block_tiles * cols * W);
  std::vector<T> scores(block_samples * n_outputs);
  for (std::size_t b = 0; b < n_samples; b += block_samples) {
    const std::size_t count = std::min(block_samples, n_samples - b);
    const std::size_t n_tiles = (count + W - 1) / W;
    transpose_tiles(features + b * cols, count, cols, W, tiles.data());
    for (std::size_t s = 0; s < n_tiles * W; ++s) {
      for (std::size_t j = 0; j < n_outputs; ++j) {
        scores[s * n_outputs + j] = base.empty() ? T{0} : base[j];
      }
    }
    if (soa_.has_special) {
      if (mode_ == SimdMode::Flint) {
        score_tiles_scalar<T, W, true, true>(soa_, tiles.data(), n_tiles,
                                             leaf_values.data(), n_outputs,
                                             scores.data());
      } else {
        score_tiles_scalar<T, W, false, true>(soa_, tiles.data(), n_tiles,
                                              leaf_values.data(), n_outputs,
                                              scores.data());
      }
    } else if (mode_ == SimdMode::Flint) {
      score_tiles_scalar<T, W, true>(soa_, tiles.data(), n_tiles,
                                     leaf_values.data(), n_outputs,
                                     scores.data());
    } else {
      score_tiles_scalar<T, W, false>(soa_, tiles.data(), n_tiles,
                                      leaf_values.data(), n_outputs,
                                      scores.data());
    }
    std::copy(scores.begin(),
              scores.begin() + static_cast<std::ptrdiff_t>(count * n_outputs),
              out + b * n_outputs);
  }
}

template <typename T>
std::int32_t SimdForestEngine<T>::predict(std::span<const T> x) const {
  std::int32_t result = -1;
  predict_batch(x.data(), 1, &result);
  return result;
}

template class SimdForestEngine<float>;
template class SimdForestEngine<double>;

}  // namespace flint::exec::simd
