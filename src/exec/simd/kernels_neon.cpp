// exec/simd/kernels_neon — AArch64 NEON realization of the lockstep
// traversal (4 float samples per tile).  Compiled only when CMake targets
// an AArch64 toolchain (NEON is architecturally guaranteed there, so no
// runtime check is needed).
//
// NEON has no gather instruction, so node fields are fetched with four
// scalar loads into a lane buffer; the compare and the left/right select
// are vector ops (CMGT/FCMLE + BSL).  The four independent scalar loads
// still overlap in the out-of-order window, which is the latency-hiding
// half of the win; the vector compare/select is the throughput half.
#include "exec/simd/kernels.hpp"

#if defined(FLINT_SIMD_NEON)

#include <arm_neon.h>

namespace flint::exec::simd {

namespace {

template <bool Flint>
void predict_tiles_neon_impl(const SoaForest<float>& f, const float* tiles,
                             std::size_t n_tiles, int* votes) {
  constexpr std::size_t W = kNeonWidth;
  const auto classes =
      static_cast<std::size_t>(f.num_classes < 1 ? 1 : f.num_classes);
  const std::size_t cols = f.feature_count;
  for (std::size_t t = 0; t < f.tree_count(); ++t) {
    const std::int32_t root = f.roots[t];
    for (std::size_t tile = 0; tile < n_tiles; ++tile) {
      const float* x = tiles + tile * cols * W;
      std::int32_t idx[W] = {root, root, root, root};
      while (true) {
        std::int32_t feat[W];
        for (std::size_t l = 0; l < W; ++l) {
          feat[l] = f.feature[static_cast<std::size_t>(idx[l])];
        }
        // All lanes at a leaf (feature < 0)?
        if (vmaxvq_s32(vld1q_s32(feat)) < 0) break;
        std::int32_t lft[W], rgt[W];
        float xv[W];
        // One of the two scratch pairs is dead per compare mode (discarded
        // if-constexpr branch), hence maybe_unused.
        [[maybe_unused]] std::int32_t thr[W], msk[W];
        [[maybe_unused]] float sp[W];
        for (std::size_t l = 0; l < W; ++l) {
          const auto node = static_cast<std::size_t>(idx[l]);
          const auto fi = static_cast<std::size_t>(feat[l] < 0 ? 0 : feat[l]);
          xv[l] = x[fi * W + l];
          lft[l] = f.left[node];
          rgt[l] = f.right[node];
          if constexpr (Flint) {
            thr[l] = f.threshold[node];
            msk[l] = f.xor_mask[node];
          } else {
            sp[l] = f.split[node];
          }
        }
        int32x4_t next;
        if constexpr (Flint) {
          const int32x4_t xi =
              veorq_s32(vreinterpretq_s32_f32(vld1q_f32(xv)), vld1q_s32(msk));
          const uint32x4_t go_right = vcgtq_s32(xi, vld1q_s32(thr));
          next = vbslq_s32(go_right, vld1q_s32(rgt), vld1q_s32(lft));
        } else {
          const uint32x4_t go_left = vcleq_f32(vld1q_f32(xv), vld1q_f32(sp));
          next = vbslq_s32(go_left, vld1q_s32(lft), vld1q_s32(rgt));
        }
        vst1q_s32(idx, next);
      }
      int* vrow = votes + tile * W * classes;
      for (std::size_t l = 0; l < W; ++l) {
        const auto c = static_cast<std::size_t>(
            f.threshold[static_cast<std::size_t>(idx[l])]);
        ++vrow[l * classes + c];
      }
    }
  }
}

}  // namespace

void predict_tiles_flint_neon(const SoaForest<float>& f, const float* tiles,
                              std::size_t n_tiles, int* votes) {
  predict_tiles_neon_impl<true>(f, tiles, n_tiles, votes);
}

void predict_tiles_float_neon(const SoaForest<float>& f, const float* tiles,
                              std::size_t n_tiles, int* votes) {
  predict_tiles_neon_impl<false>(f, tiles, n_tiles, votes);
}

}  // namespace flint::exec::simd

#endif  // FLINT_SIMD_NEON
