// exec/simd/kernels_avx2 — AVX2 realization of the lockstep traversal
// (8 float samples per tile).  Compiled with -mavx2 only when CMake
// detects an x86-64 toolchain that supports it; callers must additionally
// check avx2_supported() before dispatching here.
//
// Per tree level, per tile: five vpgatherdd loads fetch the lane vectors of
// node fields and feature values, one integer (or float) compare decides
// the direction, and one blend advances all 8 lane indices.  Leaves
// self-loop (soa.hpp), so there is no per-lane active mask: the loop exits
// when every lane's gathered feature index is negative.
#include "exec/simd/kernels.hpp"

#if defined(FLINT_SIMD_AVX2)

#include <immintrin.h>

namespace flint::exec::simd {

bool avx2_supported() noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

namespace {

template <bool Flint>
void predict_tiles_avx2_impl(const SoaForest<float>& f, const float* tiles,
                             std::size_t n_tiles, int* votes) {
  constexpr std::size_t W = kAvx2Width;
  const auto classes =
      static_cast<std::size_t>(f.num_classes < 1 ? 1 : f.num_classes);
  const std::size_t cols = f.feature_count;
  const __m256i lane_ids = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i zero = _mm256_setzero_si256();
  for (std::size_t t = 0; t < f.tree_count(); ++t) {
    const __m256i root = _mm256_set1_epi32(f.roots[t]);
    for (std::size_t tile = 0; tile < n_tiles; ++tile) {
      const float* x = tiles + tile * cols * W;
      __m256i idx = root;
      while (true) {
        const __m256i feat =
            _mm256_i32gather_epi32(f.feature.data(), idx, 4);
        // feature < 0 marks a leaf; all sign bits set => every lane done.
        if (_mm256_movemask_ps(_mm256_castsi256_ps(feat)) == 0xFF) break;
        // Leaf lanes clamp to feature column 0; their blend below is a
        // self-loop so the value they gather is irrelevant.
        const __m256i fcl = _mm256_max_epi32(feat, zero);
        const __m256i off =
            _mm256_add_epi32(_mm256_slli_epi32(fcl, 3), lane_ids);
        const __m256i lft = _mm256_i32gather_epi32(f.left.data(), idx, 4);
        const __m256i rgt = _mm256_i32gather_epi32(f.right.data(), idx, 4);
        if constexpr (Flint) {
          // Unified form: go_left = (si(x) ^ xor_mask) <= threshold, so the
          // right mask is the signed greater-than.
          const __m256i xi = _mm256_i32gather_epi32(
              reinterpret_cast<const int*>(x), off, 4);
          const __m256i msk =
              _mm256_i32gather_epi32(f.xor_mask.data(), idx, 4);
          const __m256i thr =
              _mm256_i32gather_epi32(f.threshold.data(), idx, 4);
          const __m256i go_right =
              _mm256_cmpgt_epi32(_mm256_xor_si256(xi, msk), thr);
          idx = _mm256_blendv_epi8(lft, rgt, go_right);
        } else {
          const __m256 xf = _mm256_i32gather_ps(x, off, 4);
          const __m256 sp = _mm256_i32gather_ps(f.split.data(), idx, 4);
          const __m256 go_left = _mm256_cmp_ps(xf, sp, _CMP_LE_OQ);
          idx = _mm256_blendv_epi8(rgt, lft, _mm256_castps_si256(go_left));
        }
      }
      const __m256i cls = _mm256_i32gather_epi32(f.threshold.data(), idx, 4);
      alignas(32) std::int32_t cbuf[W];
      _mm256_store_si256(reinterpret_cast<__m256i*>(cbuf), cls);
      int* vrow = votes + tile * W * classes;
      for (std::size_t l = 0; l < W; ++l) {
        ++vrow[l * classes + static_cast<std::size_t>(cbuf[l])];
      }
    }
  }
}

}  // namespace

void predict_tiles_flint_avx2(const SoaForest<float>& f, const float* tiles,
                              std::size_t n_tiles, int* votes) {
  predict_tiles_avx2_impl<true>(f, tiles, n_tiles, votes);
}

void predict_tiles_float_avx2(const SoaForest<float>& f, const float* tiles,
                              std::size_t n_tiles, int* votes) {
  predict_tiles_avx2_impl<false>(f, tiles, n_tiles, votes);
}

}  // namespace flint::exec::simd

#endif  // FLINT_SIMD_AVX2
