// exec/simd/kernels_scalar — portable width-generic lockstep traversal.
//
// The reference realization of the SIMD traversal algorithm: W samples (one
// tile, see soa.hpp) step through a tree level in lockstep, every lane
// holding its own node index.  All lane operations are plain fixed-trip
// loops over W, so the compiler is free to auto-vectorize them, and even
// un-vectorized the W independent pointer-chase chains overlap in the
// out-of-order window — which is where most of the speedup over the
// per-sample scalar interpreter comes from.
//
// The AVX2/NEON translation of the same algorithm lives in
// kernels_avx2.cpp / kernels_neon.cpp; this template is always built and is
// the fallback on hardware without a specialized kernel (and the only
// double-precision path).  All three produce bit-identical results.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/flint.hpp"
#include "exec/simd/soa.hpp"

namespace flint::exec::simd {

/// One tile of W lanes stepped through one tree until every lane rests on
/// its self-looping leaf; `idx[l]` holds each lane's final node index.
/// `Flint` selects the unified integer compare (see soa.hpp); otherwise
/// hardware float `<=`.  The traversal shared by the vote and score
/// kernels below.
///
/// `Special` compiles in the missing/categorical lane checks: NaN is
/// detected from the integer form itself ((bits & abs_mask) > exp_mask) and
/// routes by the node's default-direction flag; categorical nodes test
/// bitset membership.  Leaf lanes have flags == 0 and self-loop exactly as
/// before even when their (ignored) feature-0 read is NaN: flags 0 sends
/// them right, and right == self.
template <typename T, std::size_t W, bool Flint, bool Special = false>
inline void traverse_tile_scalar(const SoaForest<T>& f, const T* x,
                                 std::int32_t root, std::int32_t (&idx)[W]) {
  using Signed = typename core::FloatTraits<T>::Signed;
  for (std::size_t l = 0; l < W; ++l) idx[l] = root;
  while (true) {
    std::int32_t feat[W];
    bool any_inner = false;
    for (std::size_t l = 0; l < W; ++l) {
      feat[l] = f.feature[static_cast<std::size_t>(idx[l])];
      any_inner |= feat[l] >= 0;
    }
    if (!any_inner) break;
    for (std::size_t l = 0; l < W; ++l) {
      const auto node = static_cast<std::size_t>(idx[l]);
      // Leaf lanes read feature column 0 (any valid column) and then
      // self-loop via left == right == node; see soa.hpp.
      const auto fi = static_cast<std::size_t>(feat[l] < 0 ? 0 : feat[l]);
      const T xv = x[fi * W + l];
      bool go_left;
      if constexpr (Special) {
        const Signed raw = core::si_bits(xv);
        const std::uint8_t flg = f.flags[node];
        if (core::is_nan_bits<T>(raw)) {
          go_left = (flg & trees::kNodeDefaultLeft) != 0;
        } else if (flg & trees::kNodeCategorical) {
          go_left = trees::cat_contains(f.cat_set_of(node), xv);
        } else if constexpr (Flint) {
          go_left = (raw ^ f.xor_mask[node]) <= f.threshold[node];
        } else {
          go_left = xv <= f.split[node];
        }
      } else if constexpr (Flint) {
        const Signed xi = core::si_bits(xv);
        go_left = (xi ^ f.xor_mask[node]) <= f.threshold[node];
      } else {
        go_left = xv <= f.split[node];
      }
      idx[l] = go_left ? f.left[node] : f.right[node];
    }
  }
}

/// Runs every tree of `f` over `n_tiles` feature-major tiles of W lanes and
/// accumulates per-lane votes: votes[(t*W + l) * num_classes + c] gains one
/// count per tree that classifies lane l of tile t as class c.  The caller
/// zero-initializes `votes` and computes the argmax.  Thread-safe: touches
/// only its arguments.
template <typename T, std::size_t W, bool Flint, bool Special = false>
void predict_tiles_scalar(const SoaForest<T>& f, const T* tiles,
                          std::size_t n_tiles, int* votes) {
  const auto classes =
      static_cast<std::size_t>(f.num_classes < 1 ? 1 : f.num_classes);
  const std::size_t cols = f.feature_count;
  for (std::size_t t = 0; t < f.tree_count(); ++t) {
    const std::int32_t root = f.roots[t];
    for (std::size_t tile = 0; tile < n_tiles; ++tile) {
      const T* x = tiles + tile * cols * W;
      std::int32_t idx[W];
      traverse_tile_scalar<T, W, Flint, Special>(f, x, root, idx);
      int* vrow = votes + tile * W * classes;
      for (std::size_t l = 0; l < W; ++l) {
        const auto c = static_cast<std::size_t>(
            f.threshold[static_cast<std::size_t>(idx[l])]);
        ++vrow[l * classes + c];
      }
    }
  }
}

/// Float-accumulate epilogue of the same lockstep traversal: instead of
/// voting, each lane's leaf payload indexes a row of `leaf_values`
/// (n_outputs values per row; see model/forest_model.hpp) which is added
/// into the lane's score row.  The tree loop is outermost, so every
/// sample's scores accumulate in tree order — the same summation order as
/// the reference per-tree loop, which keeps backends bit-identical on
/// identical inputs (docs/MODEL_FORMATS.md "Numerical contract").  The
/// caller initializes `scores` (base offsets or zeros).  Thread-safe:
/// touches only its arguments.
template <typename T, std::size_t W, bool Flint, bool Special = false>
void score_tiles_scalar(const SoaForest<T>& f, const T* tiles,
                        std::size_t n_tiles, const T* leaf_values,
                        std::size_t n_outputs, T* scores) {
  const std::size_t cols = f.feature_count;
  for (std::size_t t = 0; t < f.tree_count(); ++t) {
    const std::int32_t root = f.roots[t];
    for (std::size_t tile = 0; tile < n_tiles; ++tile) {
      const T* x = tiles + tile * cols * W;
      std::int32_t idx[W];
      traverse_tile_scalar<T, W, Flint, Special>(f, x, root, idx);
      T* srow = scores + tile * W * n_outputs;
      for (std::size_t l = 0; l < W; ++l) {
        const auto row = static_cast<std::size_t>(
            f.threshold[static_cast<std::size_t>(idx[l])]);
        const T* lv = leaf_values + row * n_outputs;
        for (std::size_t j = 0; j < n_outputs; ++j) {
          srow[l * n_outputs + j] += lv[j];
        }
      }
    }
  }
}

}  // namespace flint::exec::simd
