// exec/pack_checks — shared pack-time model validation for the execution
// engines.
//
// Every engine family (the AoS interpreters in exec/interpreter and the
// SoA packer in exec/simd) indexes vote counters by leaf class ids with no
// bounds check on the hot path, so a model whose header understates
// num_classes — reachable through trees::read_forest, whose structural
// validation does not know the forest-level class count — must be rejected
// once, when the model is packed.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace flint::exec {

/// Throws std::invalid_argument if a leaf's class id cannot index a
/// num_classes-wide vote row.
inline void check_leaf_class(std::int32_t prediction, int num_classes,
                             std::size_t tree) {
  if (prediction < 0 || prediction >= num_classes) {
    throw std::invalid_argument(
        "forest engine: leaf class " + std::to_string(prediction) +
        " out of range for " + std::to_string(num_classes) +
        " classes (tree " + std::to_string(tree) + ")");
  }
}

}  // namespace flint::exec
