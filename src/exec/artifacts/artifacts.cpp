#include "exec/artifacts/artifacts.hpp"

#include <stdexcept>
#include <utility>

#include "core/hash.hpp"

namespace flint::exec::artifacts {

template <typename T>
ExecArtifacts<T>::ExecArtifacts(const trees::Forest<T>& forest,
                                std::size_t block_size,
                                const layout::CacheInfo& cache,
                                std::optional<layout::NodeWidth> force_width)
    : forest_(&forest),
      stats_(trees::forest_stats(forest)),
      tables_(layout::build_key_tables(forest)) {
  fit_.ranks_fit_int16 = tables_.fits_int16();
  fit_.feature_count = forest.feature_count();
  fit_.num_classes = forest.num_classes();
  plan_ = layout::auto_plan(stats_, fit_, block_size, cache, force_width);
  // An auto Q4 verdict is tentative: the pack-time bit budget and the
  // quantization contract (exact ranks, or threshold-preserving affine
  // maps) decide whether the 4-byte image may serve.  Pack it now; on any
  // failure demote and re-tune with the 4-byte rung closed.
  if (!force_width && plan_.width == layout::NodeWidth::Q4) {
    const layout::Q4Forest<T>* img = try_q4_at(plan_.hot_depth);
    if (img == nullptr || !(img->exact() || img->qplan.accuracy_contract())) {
      fit_.allow_q4 = false;
      plan_ = layout::auto_plan(stats_, fit_, block_size, cache, force_width);
    }
  }
}

template <typename T>
const layout::CompactForest<T, layout::CompactNode16>*
ExecArtifacts<T>::try_compact16_at(std::size_t hot_depth, std::string* why) {
  auto it = c16_.find(hot_depth);
  if (it == c16_.end()) {
    layout::LayoutPlan plan = plan_;
    plan.width = layout::NodeWidth::C16;
    plan.hot_depth = hot_depth;
    std::string reason;
    auto packed = layout::try_pack<T, layout::CompactNode16>(*forest_, plan,
                                                             tables_, &reason);
    it = c16_.emplace(hot_depth, std::move(packed)).first;
    c16_why_[hot_depth] = reason;
  }
  if (!it->second) {
    if (why != nullptr) *why = c16_why_[hot_depth];
    return nullptr;
  }
  return &*it->second;
}

template <typename T>
const layout::CompactForest<T, layout::CompactNode8>*
ExecArtifacts<T>::try_compact8_at(std::size_t hot_depth, std::string* why) {
  auto it = c8_.find(hot_depth);
  if (it == c8_.end()) {
    layout::LayoutPlan plan = plan_;
    plan.width = layout::NodeWidth::C8;
    plan.hot_depth = hot_depth;
    std::string reason;
    auto packed = layout::try_pack<T, layout::CompactNode8>(*forest_, plan,
                                                            tables_, &reason);
    it = c8_.emplace(hot_depth, std::move(packed)).first;
    c8_why_[hot_depth] = reason;
  }
  if (!it->second) {
    if (why != nullptr) *why = c8_why_[hot_depth];
    return nullptr;
  }
  return &*it->second;
}

template <typename T>
const layout::Q4Forest<T>* ExecArtifacts<T>::try_q4_at(std::size_t hot_depth,
                                                       std::string* why) {
  auto it = q4_.find(hot_depth);
  if (it == q4_.end()) {
    layout::LayoutPlan plan = plan_;
    plan.width = layout::NodeWidth::Q4;
    plan.hot_depth = hot_depth;
    std::string reason;
    auto packed = layout::try_pack_q4<T>(*forest_, plan, tables_,
                                         /*force_affine=*/false, &reason);
    it = q4_.emplace(hot_depth, std::move(packed)).first;
    q4_why_[hot_depth] = reason;
  }
  if (!it->second) {
    if (why != nullptr) *why = q4_why_[hot_depth];
    return nullptr;
  }
  return &*it->second;
}

template <typename T>
const layout::CompactForest<T, layout::CompactNode16>&
ExecArtifacts<T>::compact16() {
  std::string why;
  const auto* packed = try_compact16_at(plan_.hot_depth, &why);
  if (packed == nullptr) {
    throw std::invalid_argument("ExecArtifacts::compact16: " + why);
  }
  return *packed;
}

template <typename T>
const layout::CompactForest<T, layout::CompactNode8>&
ExecArtifacts<T>::compact8() {
  std::string why;
  const auto* packed = try_compact8_at(plan_.hot_depth, &why);
  if (packed == nullptr) {
    throw std::invalid_argument("ExecArtifacts::compact8: " + why);
  }
  return *packed;
}

template <typename T>
const layout::Q4Forest<T>& ExecArtifacts<T>::q4() {
  std::string why;
  const auto* packed = try_q4_at(plan_.hot_depth, &why);
  if (packed == nullptr) {
    throw std::invalid_argument("ExecArtifacts::q4: " + why);
  }
  return *packed;
}

template <typename T>
const FlintForestEngine<T>& ExecArtifacts<T>::packed_engine() {
  if (!packed_) {
    packed_.emplace(*forest_, FlintVariant::Encoded);
  }
  return *packed_;
}

template <typename T>
const simd::SoaForest<T>& ExecArtifacts<T>::soa() {
  if (!soa_) {
    soa_.emplace(*forest_);
    soa_->build_narrow_keys(tables_);
  }
  return *soa_;
}

template <typename T>
std::uint64_t ExecArtifacts<T>::content_hash() const {
  if (hash_) return *hash_;
  core::Fnv1a64 h;
  h.add(forest_->num_classes());
  h.add(forest_->feature_count());
  h.add(forest_->size());
  for (const auto& tree : forest_->trees()) {
    h.add(tree.size());
    for (const auto& node : tree.nodes()) {
      h.add(node.feature);
      h.add(core::si_bits(node.split));
      h.add(node.left);
      h.add(node.right);
      h.add(node.prediction);
      h.add(node.cat_slot);
      h.add(node.flags);
    }
    h.add(tree.cat_slot_count());
    for (std::int32_t s = 0; s < tree.cat_slot_count(); ++s) {
      h.add_span(tree.cat_set(s));
    }
  }
  hash_ = h.digest();
  return *hash_;
}

template class ExecArtifacts<float>;
template class ExecArtifacts<double>;

}  // namespace flint::exec::artifacts
