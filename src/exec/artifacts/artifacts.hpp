// exec/artifacts — the one-stop execution-artifact bundle.
//
// Every execution family used to re-derive its own view of the forest at
// construction time: the wide interpreter packed PackedNode arrays, the SIMD
// engine built SoA struct-of-arrays, the layout engine ran the auto-tuner
// and packed CompactNode16/8 images, codegen walked the trees yet again, and
// verify rebuilt all of them a second time to check images it never actually
// executed.  ExecArtifacts centralizes that: built once per forest, it owns
//
//   * ForestStats            — shape/branch summaries (one DFS),
//   * KeyTableSet            — per-feature monotone threshold tables,
//   * NarrowFit + LayoutPlan — the auto-tuner verdict,
//   * PackedNode image       — via the wide Encoded interpreter engine,
//   * SoaForest              — SIMD arrays with narrowed keys,
//   * CompactForest<16/8>    — compact images, cached per hot_depth,
//   * Q4Forest               — the 4-byte quantized image + its QuantPlan,
//   * content_hash           — a structural FNV-1a digest keying the JIT
//                              compile cache.
//
// The eager part of construction is the cheap summary set (stats, tables,
// plan); each packed image is built lazily on first access and cached, so a
// predictor binds exactly one image and verify checks the same objects the
// engines execute.  The bundle borrows the forest — it must outlive the
// ExecArtifacts object (engines that need to survive the forest copy their
// image out, as LayoutForestEngine's bind constructor does).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "exec/interpreter.hpp"
#include "exec/layout/compact.hpp"
#include "exec/layout/narrow.hpp"
#include "exec/layout/plan.hpp"
#include "exec/layout/quant4.hpp"
#include "exec/simd/soa.hpp"
#include "trees/forest.hpp"
#include "trees/tree_stats.hpp"

namespace flint::exec::artifacts {

template <typename T>
class ExecArtifacts {
 public:
  /// Builds the summary artifacts (stats, key tables, narrowing fit, layout
  /// plan).  Packed images are built lazily — except when the auto-tuner
  /// picks the 4-byte width: a Q4 plan is only tentative until the image
  /// packs AND its quantization contract holds (bit-exact ranks, or every
  /// affine feature preserving its thresholds), so that image is packed
  /// eagerly here and the plan demoted (allow_q4 = false, re-tuned) when
  /// the contract fails.  A pinned force_width skips the demotion — the
  /// caller asked for that width and gets the packer's error instead.
  /// `forest` is borrowed.
  explicit ExecArtifacts(
      const trees::Forest<T>& forest, std::size_t block_size = 64,
      const layout::CacheInfo& cache = layout::detect_cache_info(),
      std::optional<layout::NodeWidth> force_width = std::nullopt);

  [[nodiscard]] const trees::Forest<T>& forest() const noexcept {
    return *forest_;
  }
  [[nodiscard]] const trees::ForestStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const layout::KeyTableSet<T>& tables() const noexcept {
    return tables_;
  }
  [[nodiscard]] const layout::NarrowFit& fit() const noexcept { return fit_; }
  [[nodiscard]] const layout::LayoutPlan& plan() const noexcept {
    return plan_;
  }

  /// Compact images at a given hot_depth (cached per depth).  The plain
  /// accessors pack at plan().hot_depth and throw std::invalid_argument with
  /// the packer's reason when the model is not representable at that width;
  /// the try_ variants return nullptr and set `why` instead (verify walks
  /// every width without aborting).
  const layout::CompactForest<T, layout::CompactNode16>& compact16();
  const layout::CompactForest<T, layout::CompactNode8>& compact8();
  const layout::Q4Forest<T>& q4();
  const layout::CompactForest<T, layout::CompactNode16>* try_compact16_at(
      std::size_t hot_depth, std::string* why = nullptr);
  const layout::CompactForest<T, layout::CompactNode8>* try_compact8_at(
      std::size_t hot_depth, std::string* why = nullptr);
  const layout::Q4Forest<T>* try_q4_at(std::size_t hot_depth,
                                       std::string* why = nullptr);

  /// The wide interpreter's packed image, via the Encoded engine (cached).
  const FlintForestEngine<T>& packed_engine();

  /// SIMD struct-of-arrays image with narrow keys built (cached).
  const simd::SoaForest<T>& soa();

  /// Structural content digest: forest topology, threshold bits, flags,
  /// category bitsets, leaf payloads, class/feature counts.  Any split
  /// mutation changes it.  Used (combined with model semantics and compiler
  /// options) as the JIT compile-cache key.  Cached after first call.
  [[nodiscard]] std::uint64_t content_hash() const;

 private:
  const trees::Forest<T>* forest_;
  trees::ForestStats stats_;
  layout::KeyTableSet<T> tables_;
  layout::NarrowFit fit_;
  layout::LayoutPlan plan_;
  std::map<std::size_t,
           std::optional<layout::CompactForest<T, layout::CompactNode16>>>
      c16_;
  std::map<std::size_t,
           std::optional<layout::CompactForest<T, layout::CompactNode8>>>
      c8_;
  std::map<std::size_t, std::optional<layout::Q4Forest<T>>> q4_;
  std::map<std::size_t, std::string> c16_why_;
  std::map<std::size_t, std::string> c8_why_;
  std::map<std::size_t, std::string> q4_why_;
  std::optional<FlintForestEngine<T>> packed_;
  std::optional<simd::SoaForest<T>> soa_;
  mutable std::optional<std::uint64_t> hash_;
};

extern template class ExecArtifacts<float>;
extern template class ExecArtifacts<double>;

}  // namespace flint::exec::artifacts
