#include "exec/layout/narrow.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace flint::exec::layout {

template <typename T>
KeyTableSet<T> build_key_tables(const trees::Forest<T>& forest) {
  using Signed = typename core::FloatTraits<T>::Signed;
  KeyTableSet<T> set;
  set.features.resize(forest.feature_count());
  for (std::size_t t = 0; t < forest.size(); ++t) {
    for (const auto& n : forest.tree(t).nodes()) {
      if (n.is_leaf()) continue;
      // Categorical nodes have no threshold: membership is decided from
      // their bitset, never by rank, so they contribute no table entry.
      if (n.is_categorical()) continue;
      // Split -0.0 is normalized to +0.0 before keying, exactly as
      // core::encode_threshold_le does: FLInt orders -0.0 < +0.0 while the
      // IEEE reference treats them as equal, and the rewrite makes
      // `x <= -0.0` agree for every input.
      const T split = n.split == T{0} ? T{0} : n.split;
      set.features[static_cast<std::size_t>(n.feature)].sorted.push_back(
          core::to_radix_key(split));
    }
  }
  for (std::size_t f = 0; f < set.features.size(); ++f) {
    auto& keys = set.features[f].sorted;
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    keys.shrink_to_fit();
    // Exactness check: strictly ascending (std::unique guarantees it, but
    // the narrowing contract hangs on it) and every key at its own rank.
    for (std::size_t i = 0; i + 1 < keys.size(); ++i) {
      if (!(keys[i] < keys[i + 1])) {
        throw std::logic_error("build_key_tables: table for feature " +
                               std::to_string(f) + " is not strictly sorted");
      }
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const Signed key = keys[i];
      if (set.features[f].rank_of_key(key) != static_cast<std::int32_t>(i)) {
        throw std::logic_error(
            "build_key_tables: rank round-trip failed for feature " +
            std::to_string(f) + " entry " + std::to_string(i));
      }
    }
  }
  return set;
}

template <typename T>
std::int32_t rank_of_split(const KeyTable<T>& table, T split) {
  const T normalized = split == T{0} ? T{0} : split;  // -0.0 -> +0.0
  const auto radix = core::to_radix_key(normalized);
  const std::int32_t rank = table.rank_of_key(radix);
  if (static_cast<std::size_t>(rank) >= table.size() ||
      table.sorted[static_cast<std::size_t>(rank)] != radix) {
    throw std::logic_error(
        "rank_of_split: split missing from its feature's key table");
  }
  return rank;
}

template struct KeyTable<float>;
template struct KeyTable<double>;
template struct KeyTableSet<float>;
template struct KeyTableSet<double>;
template KeyTableSet<float> build_key_tables<float>(const trees::Forest<float>&);
template KeyTableSet<double> build_key_tables<double>(
    const trees::Forest<double>&);
template std::int32_t rank_of_split<float>(const KeyTable<float>&, float);
template std::int32_t rank_of_split<double>(const KeyTable<double>&, double);

}  // namespace flint::exec::layout
