#include "exec/layout/quant4.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "exec/layout/kernels.hpp"
#include "exec/pack_checks.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define FLINT_PREFETCH(p) __builtin_prefetch((p))
#else
#define FLINT_PREFETCH(p) ((void)0)
#endif

namespace flint::exec::layout {

namespace {

/// -0.0 splits normalize to +0.0 before keying (core::encode_threshold_le
/// semantics; build_key_tables applies the same rewrite).
template <typename T>
T normalize_zero(T split) {
  return split == T{0} ? T{0} : split;
}

std::int32_t argmax_first(const int* votes, int num_classes) {
  std::int32_t best = 0;
  for (int c = 1; c < num_classes; ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  return best;
}

}  // namespace

// ---------------------------------------------------------------------------
// Packing: shared placement pass, then geometry, then validated encode.
// ---------------------------------------------------------------------------

template <typename T>
std::optional<Q4Forest<T>> try_pack_q4(const trees::Forest<T>& forest,
                                       const LayoutPlan& plan,
                                       const KeyTableSet<T>& tables,
                                       bool force_affine, std::string* why) {
  auto fail = [&](std::string reason) -> std::optional<Q4Forest<T>> {
    if (why) *why = std::move(reason);
    return std::nullopt;
  };

  if (forest.empty()) return fail("empty forest");

  Q4Forest<T> packed;
  packed.num_classes = forest.num_classes();
  packed.feature_count = forest.feature_count();
  packed.has_special = forest.has_special_splits();
  if (tables.features.size() != packed.feature_count) {
    return fail("key table set does not match the forest's feature count");
  }

  // Placement first: the emission order is geometry-independent, and its
  // offset extent is an input to the geometry choice below.
  const EmissionOrder eo = compute_emission_order(forest, plan.hot_depth);
  const std::size_t total = forest.total_nodes();

  // Geometry: F covers the feature indices, O covers the measured offset
  // extent, the key keeps the rest (capped at 16 so sample keys stay
  // int16-addressable; at least 8 — the int8 floor — or the model is not
  // packable at 4 bytes).
  const std::size_t fc = std::max<std::size_t>(packed.feature_count, 1);
  const auto F = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::bit_width(fc - 1)));
  const auto O = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::bit_width(
             static_cast<std::uint64_t>(eo.max_right_offset))));
  if (F + O > 31 - 8) {
    return fail("q4 geometry: " + std::to_string(O) + " offset bits + " +
                std::to_string(F) +
                " feature bits leave fewer than 8 key bits");
  }
  Q4Geometry geom;
  geom.feature_bits = F;
  geom.offset_bits = 31 - F - std::min<std::uint32_t>(16, 31 - F - O);
  geom.key_bits = 31 - F - geom.offset_bits;
  packed.geom = geom;
  packed.hot_nodes = eo.hot_nodes;

  const auto key_mask = static_cast<std::int64_t>(geom.key_mask());
  if (static_cast<std::int64_t>(packed.num_classes) - 1 > key_mask) {
    return fail("class id / leaf row does not fit the q4 key bits");
  }
  if (packed.has_special) {
    std::int64_t n_cat = 0;
    for (std::size_t t = 0; t < forest.size(); ++t) {
      for (const auto& n : forest.tree(t).nodes()) {
        if (!n.is_leaf() && n.is_categorical()) ++n_cat;
      }
    }
    if (n_cat > key_mask) {
      return fail("categorical slot index does not fit the q4 key bits");
    }
  }

  // Quantization plan at the key width the geometry actually provides.
  packed.qplan = quant::plan_from_tables(
      tables, static_cast<int>(geom.key_bits), force_affine);
  packed.tables = tables;

  // Encode, node by node, validating every field as it is written.
  packed.nodes.resize(total);
  packed.roots.resize(forest.size());
  for (std::size_t t = 0; t < forest.size(); ++t) {
    packed.roots[t] = eo.pos[t][0];
  }
  if (packed.has_special) packed.flags.assign(total, 0);
  for (std::size_t p = 0; p < total; ++p) {
    const EmissionItem it = eo.order[p];
    const auto& tree = forest.tree(static_cast<std::size_t>(it.tree));
    const auto& nd = tree.node(it.node);
    if (nd.is_leaf()) {
      check_leaf_class(nd.prediction, packed.num_classes,
                       static_cast<std::size_t>(it.tree));
      packed.nodes[p].word =
          geom.encode_leaf(static_cast<std::uint32_t>(nd.prediction));
      continue;
    }
    const auto& tpos = eo.pos[static_cast<std::size_t>(it.tree)];
    const std::int64_t off =
        static_cast<std::int64_t>(tpos[static_cast<std::size_t>(nd.right)]) -
        static_cast<std::int64_t>(p);
    if (off <= 0 || off > static_cast<std::int64_t>(geom.offset_mask())) {
      // compute_emission_order bounded the extent the geometry was sized
      // from; an overflow here is a packer bug, not a model property.
      throw std::logic_error("layout::try_pack_q4: offset escaped geometry");
    }
    std::uint32_t key = 0;
    if (nd.is_categorical()) {
      const auto slot = static_cast<std::int64_t>(packed.cat_slot_count());
      const auto set = tree.cat_set(nd.cat_slot);
      packed.cat_offsets.push_back(
          static_cast<std::int32_t>(packed.cat_words.size()));
      packed.cat_sizes.push_back(static_cast<std::int32_t>(set.size()));
      packed.cat_words.insert(packed.cat_words.end(), set.begin(), set.end());
      packed.cat_feature.push_back(nd.feature);
      key = static_cast<std::uint32_t>(slot);
      packed.flags[p] |= kQ4Categorical;
    } else {
      const auto& fq =
          packed.qplan.features[static_cast<std::size_t>(nd.feature)];
      std::int64_t k;
      if (fq.exact()) {
        // rank_of_split normalizes -0.0 and verifies the exactness
        // precondition (split present at its own rank).
        k = rank_of_split(
            tables.features[static_cast<std::size_t>(nd.feature)], nd.split);
      } else {
        k = fq.quantize(static_cast<double>(normalize_zero(nd.split))) -
            fq.q_lo;
      }
      if (k < 0 || k > key_mask) {
        return fail("quantized threshold escaped the q4 key range");
      }
      key = static_cast<std::uint32_t>(k);
    }
    packed.nodes[p].word =
        geom.encode(key, static_cast<std::uint32_t>(nd.feature),
                    static_cast<std::uint32_t>(off));
    if (nd.default_left()) packed.flags[p] |= kQ4DefaultLeft;
  }
  return packed;
}

// ---------------------------------------------------------------------------
// Traversal over the batch-boundary quantized column block.
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kQ4BlockLockstep = 16;
constexpr std::size_t kQ4LatencyMaxBatch = 8;

/// Blocked lockstep walk over pre-quantized keys: the q4 counterpart of
/// compact.cpp's blocked_traverse, minus the per-block remap — keys were
/// quantized once for the whole batch by the caller.  `qkeys` is the
/// n_samples x cols_a column block, `on_leaf(global, local, payload)` fires
/// once per (tree, sample).
template <bool Prefetch, bool Special, typename KeyT, typename T,
          typename BlockBegin, typename OnLeaf, typename BlockEnd>
void q4_blocked_traverse(const Q4Forest<T>& f, std::size_t block_size,
                         const KeyT* qkeys, const std::uint8_t* nan_mask,
                         const std::uint8_t* member, std::size_t cols_a,
                         std::size_t slots_a, std::size_t n_samples,
                         BlockBegin&& block_begin, OnLeaf&& on_leaf,
                         BlockEnd&& block_end) {
  const Q4Geometry g = f.geom;
  const CompactNode4* nodes = f.nodes.data();
  const std::uint8_t* flags = f.flags.data();
  const std::size_t trees = f.roots.size();
  for (std::size_t base = 0; base < n_samples; base += block_size) {
    const std::size_t block = std::min(block_size, n_samples - base);
    block_begin(base, block);
    for (std::size_t t = 0; t < trees; ++t) {
      const std::int32_t root = f.roots[t];
      for (std::size_t s0 = 0; s0 < block; s0 += kQ4BlockLockstep) {
        const std::size_t gsz = std::min(kQ4BlockLockstep, block - s0);
        const KeyT* krow[kQ4BlockLockstep];
        std::int32_t cur[kQ4BlockLockstep];
        for (std::size_t r = 0; r < gsz; ++r) {
          cur[r] = root;
          krow[r] = qkeys + (base + s0 + r) * cols_a;
        }
        bool any_inner = true;
        while (any_inner) {
          any_inner = false;
          for (std::size_t r = 0; r < gsz; ++r) {
            const std::uint32_t w = nodes[cur[r]].word;
            const bool leaf = (w & kQ4LeafBit) != 0;
            const auto key = g.key_of(w);
            const auto fi = static_cast<std::size_t>(g.feature_of(w));
            const auto off = static_cast<std::int32_t>(g.offset_of(w));
            bool go;
            if constexpr (Special) {
              const std::uint8_t fl = flags[cur[r]];
              const std::uint8_t* nrow =
                  nan_mask + (base + s0 + r) * cols_a;
              if (nrow[fi]) {
                go = (fl & kQ4DefaultLeft) != 0;
              } else if (fl & kQ4Categorical) {
                go = member[(base + s0 + r) * slots_a +
                            static_cast<std::size_t>(key)] != 0;
              } else {
                go = static_cast<std::uint32_t>(krow[r][fi]) <= key;
              }
            } else {
              go = static_cast<std::uint32_t>(krow[r][fi]) <= key;
            }
            if constexpr (Prefetch) {
              FLINT_PREFETCH(&nodes[cur[r] + (leaf ? 0 : off)]);
            }
            cur[r] += leaf ? 0 : (go ? 1 : off);
            any_inner |= !leaf;
          }
        }
        for (std::size_t r = 0; r < gsz; ++r) {
          on_leaf(base + s0 + r, s0 + r,
                  static_cast<std::int32_t>(g.key_of(nodes[cur[r]].word)));
        }
      }
    }
    block_end(base, block);
  }
}

/// Vote epilogue over the blocked traversal.
template <bool Prefetch, bool Special, typename KeyT, typename T>
void q4_predict_blocked(const Q4Forest<T>& f, std::size_t block_size,
                        const KeyT* qkeys, const std::uint8_t* nan_mask,
                        const std::uint8_t* member, std::size_t cols_a,
                        std::size_t slots_a, std::size_t n_samples,
                        std::int32_t* out) {
  const auto classes = static_cast<std::size_t>(std::max(f.num_classes, 1));
  std::vector<int> votes(block_size * classes);
  q4_blocked_traverse<Prefetch, Special>(
      f, block_size, qkeys, nan_mask, member, cols_a, slots_a, n_samples,
      [&](std::size_t, std::size_t block) {
        std::fill(votes.begin(),
                  votes.begin() + static_cast<std::ptrdiff_t>(block * classes),
                  0);
      },
      [&](std::size_t, std::size_t s, std::int32_t key) {
        ++votes[s * classes + static_cast<std::size_t>(key)];
      },
      [&](std::size_t base, std::size_t block) {
        for (std::size_t s = 0; s < block; ++s) {
          out[base + s] = argmax_first(votes.data() + s * classes,
                                       static_cast<int>(classes));
        }
      });
}

/// Interleaved latency path: R trees of one sample in lockstep (quantized
/// keys for the one sample were produced by the caller).
template <bool Prefetch, bool Special, typename T>
void q4_predict_one_interleaved(const Q4Forest<T>& f, std::size_t interleave,
                                const std::uint16_t* keys,
                                const std::uint8_t* nan_mask,
                                const std::uint8_t* member, int* votes) {
  const Q4Geometry g = f.geom;
  const CompactNode4* nodes = f.nodes.data();
  const std::uint8_t* flags = f.flags.data();
  const std::size_t trees = f.roots.size();
  const std::size_t R = std::clamp<std::size_t>(interleave, 1, kMaxInterleave);
  std::int32_t cur[kMaxInterleave];
  for (std::size_t t0 = 0; t0 < trees; t0 += R) {
    const std::size_t gsz = std::min(R, trees - t0);
    for (std::size_t r = 0; r < gsz; ++r) {
      cur[r] = f.roots[t0 + r];
      FLINT_PREFETCH(&nodes[cur[r]]);
    }
    std::uint32_t alive = (1u << gsz) - 1u;  // gsz <= kMaxInterleave = 16
    while (alive) {
      for (std::size_t r = 0; r < gsz; ++r) {
        if (!(alive & (1u << r))) continue;
        const std::uint32_t w = nodes[cur[r]].word;
        if (w & kQ4LeafBit) {
          ++votes[static_cast<std::int32_t>(g.key_of(w))];
          alive &= ~(1u << r);
          continue;
        }
        const auto key = g.key_of(w);
        const auto fi = static_cast<std::size_t>(g.feature_of(w));
        const auto off = static_cast<std::int32_t>(g.offset_of(w));
        bool go;
        if constexpr (Special) {
          const std::uint8_t fl = flags[cur[r]];
          if (nan_mask[fi]) {
            go = (fl & kQ4DefaultLeft) != 0;
          } else if (fl & kQ4Categorical) {
            go = member[static_cast<std::size_t>(key)] != 0;
          } else {
            go = static_cast<std::uint32_t>(keys[fi]) <= key;
          }
        } else {
          go = static_cast<std::uint32_t>(keys[fi]) <= key;
        }
        if constexpr (Prefetch) {
          FLINT_PREFETCH(&nodes[cur[r] + off]);
        }
        const std::int32_t next = cur[r] + (go ? 1 : off);
        FLINT_PREFETCH(&nodes[next]);  // overlaps with the other lanes
        cur[r] = next;
      }
    }
  }
}

#if defined(FLINT_SIMD_AVX2)
/// AVX2 blocked batch over the 4-byte image: per block, WIDEN the
/// already-quantized column block into feature-major int32 tiles of 8
/// lanes (a cast, not a search — the binary-search remap the wider
/// kernels pay per block is gone) and hand the walk to the q4 vector
/// kernel.
template <typename KeyT, typename T>
void q4_predict_blocked_avx2(const Q4Forest<T>& f, std::size_t block_size,
                             const KeyT* qkeys, std::size_t cols_a,
                             std::size_t n_samples, std::int32_t* out) {
  constexpr std::size_t W = 8;
  const auto classes = static_cast<std::size_t>(std::max(f.num_classes, 1));
  const std::size_t max_tiles = (block_size + W - 1) / W;
  std::vector<std::int32_t> tiles(max_tiles * cols_a * W);
  std::vector<int> votes(max_tiles * W * classes);
  for (std::size_t base = 0; base < n_samples; base += block_size) {
    const std::size_t block = std::min(block_size, n_samples - base);
    const std::size_t n_tiles = (block + W - 1) / W;
    for (std::size_t s = 0; s < block; ++s) {
      const KeyT* qrow = qkeys + (base + s) * cols_a;
      std::int32_t* lane = tiles.data() + (s / W) * cols_a * W + (s % W);
      for (std::size_t c = 0; c < cols_a; ++c) {
        lane[c * W] = static_cast<std::int32_t>(qrow[c]);
      }
    }
    for (std::size_t s = block; s < n_tiles * W; ++s) {
      std::int32_t* lane = tiles.data() + (s / W) * cols_a * W + (s % W);
      for (std::size_t c = 0; c < cols_a; ++c) lane[c * W] = 0;
    }
    std::fill(
        votes.begin(),
        votes.begin() + static_cast<std::ptrdiff_t>(n_tiles * W * classes), 0);
    predict_tiles_q4_avx2(
        reinterpret_cast<const std::uint32_t*>(f.nodes.data()),
        f.roots.data(), f.roots.size(), tiles.data(), n_tiles, cols_a,
        votes.data(), classes, f.geom.key_bits, f.geom.feature_bits);
    for (std::size_t s = 0; s < block; ++s) {
      out[base + s] = argmax_first(votes.data() + s * classes,
                                   static_cast<int>(classes));
    }
  }
}
#endif  // FLINT_SIMD_AVX2

/// Whole-batch quantization + dispatch.  KeyT is the column block's
/// element type: uint8 when every feature's key range fits a byte.
template <typename KeyT, typename T>
void q4_predict_batch_impl(const Q4Forest<T>& f, const LayoutPlan& plan,
                           const T* features, std::size_t n_samples,
                           std::int32_t* out) {
  const std::size_t cols = f.feature_count;
  const std::size_t cols_a = std::max<std::size_t>(cols, 1);
  const std::size_t slots_a = std::max<std::size_t>(f.cat_slot_count(), 1);
  const auto classes = static_cast<std::size_t>(std::max(f.num_classes, 1));

  if (n_samples <= kQ4LatencyMaxBatch) {
    std::vector<std::uint16_t> keys(cols_a, 0);
    std::vector<int> votes(classes);
    std::vector<std::uint8_t> nan_mask(f.has_special ? cols_a : 0);
    std::vector<std::uint8_t> member(f.has_special ? slots_a : 0);
    for (std::size_t s = 0; s < n_samples; ++s) {
      f.quantize_row(features + s * cols, keys.data());
      std::fill(votes.begin(), votes.end(), 0);
      if (f.has_special) {
        f.special_masks(features + s * cols, nan_mask.data(), member.data());
        if (plan.prefetch_opposite) {
          q4_predict_one_interleaved<true, true>(f, plan.interleave,
                                                 keys.data(), nan_mask.data(),
                                                 member.data(), votes.data());
        } else {
          q4_predict_one_interleaved<false, true>(f, plan.interleave,
                                                  keys.data(), nan_mask.data(),
                                                  member.data(), votes.data());
        }
      } else if (plan.prefetch_opposite) {
        q4_predict_one_interleaved<true, false>(
            f, plan.interleave, keys.data(), nullptr, nullptr, votes.data());
      } else {
        q4_predict_one_interleaved<false, false>(
            f, plan.interleave, keys.data(), nullptr, nullptr, votes.data());
      }
      out[s] = argmax_first(votes.data(), static_cast<int>(classes));
    }
    return;
  }

  // Batch boundary: ONE quantization pass for the whole batch; the hot
  // loops below never see a float again.
  std::vector<KeyT> qkeys(n_samples * cols_a, KeyT{0});
  std::vector<std::uint8_t> nan_mask(
      f.has_special ? n_samples * cols_a : 0);
  std::vector<std::uint8_t> member(f.has_special ? n_samples * slots_a : 0);
  for (std::size_t s = 0; s < n_samples; ++s) {
    f.quantize_row(features + s * cols, qkeys.data() + s * cols_a);
    if (f.has_special) {
      f.special_masks(features + s * cols, nan_mask.data() + s * cols_a,
                      member.data() + s * slots_a);
    }
  }
  if (f.has_special) {
    if (plan.prefetch_opposite) {
      q4_predict_blocked<true, true>(f, plan.block_size, qkeys.data(),
                                     nan_mask.data(), member.data(), cols_a,
                                     slots_a, n_samples, out);
    } else {
      q4_predict_blocked<false, true>(f, plan.block_size, qkeys.data(),
                                      nan_mask.data(), member.data(), cols_a,
                                      slots_a, n_samples, out);
    }
    return;
  }
#if defined(FLINT_SIMD_AVX2)
  // Same escape hatches as the wider kernels: FLINT_LAYOUT_FORCE_SCALAR
  // pins the portable loop; the node-count gate keeps int32 node indices
  // addressable.
  const char* force_scalar = std::getenv("FLINT_LAYOUT_FORCE_SCALAR");
  const bool image_addressable =
      f.nodes.size() <= static_cast<std::size_t>(
                            std::numeric_limits<std::int32_t>::max()) /
                            sizeof(CompactNode4);
  if (!(force_scalar && force_scalar[0] == '1') && image_addressable &&
      layout_avx2_supported()) {
    q4_predict_blocked_avx2(f, plan.block_size, qkeys.data(), cols_a,
                            n_samples, out);
    return;
  }
#endif
  if (plan.prefetch_opposite) {
    q4_predict_blocked<true, false>(f, plan.block_size, qkeys.data(), nullptr,
                                    nullptr, cols_a, slots_a, n_samples, out);
  } else {
    q4_predict_blocked<false, false>(f, plan.block_size, qkeys.data(), nullptr,
                                     nullptr, cols_a, slots_a, n_samples, out);
  }
}

/// Score epilogue: same batch-boundary block, float accumulation in tree
/// order (the traversal's tree loop is outermost).
template <bool Prefetch, bool Special, typename KeyT, typename T>
void q4_score_blocked(const Q4Forest<T>& f, std::size_t block_size,
                      const KeyT* qkeys, const std::uint8_t* nan_mask,
                      const std::uint8_t* member, std::size_t cols_a,
                      std::size_t slots_a, std::size_t n_samples,
                      const T* leaf_values, std::size_t n_outputs, T* out) {
  q4_blocked_traverse<Prefetch, Special>(
      f, block_size, qkeys, nan_mask, member, cols_a, slots_a, n_samples,
      [](std::size_t, std::size_t) {},
      [&](std::size_t global, std::size_t, std::int32_t key) {
        const T* lv = leaf_values + static_cast<std::size_t>(key) * n_outputs;
        T* srow = out + global * n_outputs;
        for (std::size_t j = 0; j < n_outputs; ++j) srow[j] += lv[j];
      },
      [](std::size_t, std::size_t) {});
}

template <typename KeyT, typename T>
void q4_score_batch_impl(const Q4Forest<T>& f, const LayoutPlan& plan,
                         const T* features, std::size_t n_samples,
                         const T* leaf_values, std::size_t n_outputs, T* out) {
  const std::size_t cols = f.feature_count;
  const std::size_t cols_a = std::max<std::size_t>(cols, 1);
  const std::size_t slots_a = std::max<std::size_t>(f.cat_slot_count(), 1);
  std::vector<KeyT> qkeys(n_samples * cols_a, KeyT{0});
  std::vector<std::uint8_t> nan_mask(f.has_special ? n_samples * cols_a : 0);
  std::vector<std::uint8_t> member(f.has_special ? n_samples * slots_a : 0);
  for (std::size_t s = 0; s < n_samples; ++s) {
    f.quantize_row(features + s * cols, qkeys.data() + s * cols_a);
    if (f.has_special) {
      f.special_masks(features + s * cols, nan_mask.data() + s * cols_a,
                      member.data() + s * slots_a);
    }
  }
  if (f.has_special) {
    if (plan.prefetch_opposite) {
      q4_score_blocked<true, true>(f, plan.block_size, qkeys.data(),
                                   nan_mask.data(), member.data(), cols_a,
                                   slots_a, n_samples, leaf_values, n_outputs,
                                   out);
    } else {
      q4_score_blocked<false, true>(f, plan.block_size, qkeys.data(),
                                    nan_mask.data(), member.data(), cols_a,
                                    slots_a, n_samples, leaf_values, n_outputs,
                                    out);
    }
  } else if (plan.prefetch_opposite) {
    q4_score_blocked<true, false>(f, plan.block_size, qkeys.data(), nullptr,
                                  nullptr, cols_a, slots_a, n_samples,
                                  leaf_values, n_outputs, out);
  } else {
    q4_score_blocked<false, false>(f, plan.block_size, qkeys.data(), nullptr,
                                   nullptr, cols_a, slots_a, n_samples,
                                   leaf_values, n_outputs, out);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Q4ForestEngine.
// ---------------------------------------------------------------------------

template <typename T>
Q4ForestEngine<T>::Q4ForestEngine(const trees::Forest<T>& forest,
                                  const LayoutPlan& plan,
                                  const KeyTableSet<T>& tables,
                                  bool force_affine)
    : plan_(plan) {
  plan_.width = NodeWidth::Q4;
  plan_.block_size = std::max<std::size_t>(plan_.block_size, 1);
  plan_.interleave =
      std::clamp<std::size_t>(plan_.interleave, 1, kMaxInterleave);
  std::string why;
  auto packed = try_pack_q4(forest, plan_, tables, force_affine, &why);
  if (!packed) {
    throw std::invalid_argument("Q4ForestEngine: " + why);
  }
  packed_ = std::move(*packed);
}

template <typename T>
Q4ForestEngine<T>::Q4ForestEngine(Q4Forest<T> packed, const LayoutPlan& plan)
    : plan_(plan), packed_(std::move(packed)) {
  if (packed_.nodes.empty()) {
    throw std::invalid_argument("Q4ForestEngine: empty packed image");
  }
  plan_.width = NodeWidth::Q4;
  plan_.block_size = std::max<std::size_t>(plan_.block_size, 1);
  plan_.interleave =
      std::clamp<std::size_t>(plan_.interleave, 1, kMaxInterleave);
}

template <typename T>
void Q4ForestEngine<T>::predict_batch(const T* features, std::size_t n_samples,
                                      std::int32_t* out) const {
  if (n_samples == 0) return;
  if (packed_.max_key_span() <= 255) {
    q4_predict_batch_impl<std::uint8_t>(packed_, plan_, features, n_samples,
                                        out);
  } else {
    q4_predict_batch_impl<std::uint16_t>(packed_, plan_, features, n_samples,
                                         out);
  }
}

template <typename T>
void Q4ForestEngine<T>::predict_scores(const T* features,
                                       std::size_t n_samples,
                                       std::span<const T> leaf_values,
                                       std::size_t n_outputs,
                                       std::span<const T> base, T* out) const {
  if (n_samples == 0) return;
  if (n_outputs == 0 || leaf_values.size() % n_outputs != 0) {
    throw std::invalid_argument(
        "Q4ForestEngine::predict_scores: leaf_values is not a multiple of "
        "n_outputs");
  }
  if (!base.empty() && base.size() != n_outputs) {
    throw std::invalid_argument(
        "Q4ForestEngine::predict_scores: base size mismatch");
  }
  for (std::size_t s = 0; s < n_samples; ++s) {
    for (std::size_t j = 0; j < n_outputs; ++j) {
      out[s * n_outputs + j] = base.empty() ? T{0} : base[j];
    }
  }
  if (packed_.max_key_span() <= 255) {
    q4_score_batch_impl<std::uint8_t>(packed_, plan_, features, n_samples,
                                      leaf_values.data(), n_outputs, out);
  } else {
    q4_score_batch_impl<std::uint16_t>(packed_, plan_, features, n_samples,
                                       leaf_values.data(), n_outputs, out);
  }
}

template <typename T>
std::int32_t Q4ForestEngine<T>::predict(std::span<const T> x) const {
  std::int32_t result = -1;
  predict_batch(x.data(), 1, &result);
  return result;
}

template struct Q4Forest<float>;
template struct Q4Forest<double>;
template std::optional<Q4Forest<float>> try_pack_q4<float>(
    const trees::Forest<float>&, const LayoutPlan&, const KeyTableSet<float>&,
    bool, std::string*);
template std::optional<Q4Forest<double>> try_pack_q4<double>(
    const trees::Forest<double>&, const LayoutPlan&,
    const KeyTableSet<double>&, bool, std::string*);
template class Q4ForestEngine<float>;
template class Q4ForestEngine<double>;

}  // namespace flint::exec::layout
