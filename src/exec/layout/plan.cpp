#include "exec/layout/plan.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <unistd.h>

namespace flint::exec::layout {

const char* to_string(NodeWidth w) {
  switch (w) {
    case NodeWidth::C16: return "c16";
    case NodeWidth::C8: return "c8";
    case NodeWidth::Q4: return "q4";
    case NodeWidth::Wide: return "wide";
  }
  return "?";
}

std::string LayoutPlan::describe() const {
  std::string s = to_string(width);
  s += hot_depth ? "/slab" + std::to_string(hot_depth) : "/dfs";
  s += "/il" + std::to_string(interleave);
  if (prefetch_opposite) s += "/pf";
  return s;
}

std::size_t parse_sysfs_cache_size(std::string_view text) {
  std::size_t i = 0;
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  std::size_t value = 0;
  std::size_t digits = 0;
  while (i < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i]))) {
    value = value * 10 + static_cast<std::size_t>(text[i] - '0');
    ++i;
    ++digits;
  }
  if (digits == 0) return 0;
  if (i < text.size()) {
    switch (std::tolower(static_cast<unsigned char>(text[i]))) {
      case 'k': value <<= 10; ++i; break;
      case 'm': value <<= 20; ++i; break;
      case 'g': value <<= 30; ++i; break;
      default: break;
    }
  }
  while (i < text.size()) {
    if (!std::isspace(static_cast<unsigned char>(text[i]))) return 0;
    ++i;
  }
  return value;
}

CacheInfo cache_info_from_sysfs(const std::string& cache_dir) {
  CacheInfo info;
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cache_dir, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    if (name.rfind("index", 0) != 0) continue;

    const auto read_line = [&](const char* file) {
      std::string line;
      std::ifstream f(entry.path() / file);
      if (f) std::getline(f, line);
      return line;
    };
    const std::string type = read_line("type");
    if (type == "Instruction") continue;  // Data/Unified only
    const std::string level_text = read_line("level");
    const std::string size_text = read_line("size");
    if (level_text.empty()) continue;
    const long level = std::strtol(level_text.c_str(), nullptr, 10);
    const std::size_t size = parse_sysfs_cache_size(size_text);
    if (size == 0) continue;
    if (level == 2) {
      info.l2_bytes = std::max(info.l2_bytes, size);
    } else if (level >= 3) {
      info.llc_bytes = std::max(info.llc_bytes, size);
    }
  }
  return info;
}

CacheInfo sanitize_cache_info(CacheInfo info) {
  // Documented defaults for hosts where neither probe reports anything
  // (musl sysconf returns -1; many container images mount no sysfs cache
  // topology): a deliberately mid-range 1 MiB L2 / 8 MiB LLC.
  constexpr std::size_t kDefaultL2 = std::size_t{1} << 20;
  constexpr std::size_t kDefaultLlc = std::size_t{8} << 20;
  if (info.l2_bytes == 0) info.l2_bytes = kDefaultL2;
  if (info.llc_bytes == 0) info.llc_bytes = kDefaultLlc;
  info.l2_bytes = std::clamp(info.l2_bytes, std::size_t{32} << 10,
                             std::size_t{64} << 20);
  info.llc_bytes = std::clamp(info.llc_bytes, std::size_t{512} << 10,
                              std::size_t{1} << 30);
  info.llc_bytes = std::max(info.llc_bytes, info.l2_bytes);
  return info;
}

CacheInfo detect_cache_info() {
  CacheInfo info;
#ifdef _SC_LEVEL2_CACHE_SIZE
  const long l2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
  if (l2 > 0) info.l2_bytes = static_cast<std::size_t>(l2);
#endif
#ifdef _SC_LEVEL3_CACHE_SIZE
  const long l3 = sysconf(_SC_LEVEL3_CACHE_SIZE);
  if (l3 > 0) info.llc_bytes = static_cast<std::size_t>(l3);
#endif
  // sysconf commonly yields -1/0 on musl and inside containers; fill the
  // gaps from the sysfs topology, then default + clamp (the documented
  // fallback chain in plan.hpp).
  if (info.l2_bytes == 0 || info.llc_bytes == 0) {
    const CacheInfo sysfs =
        cache_info_from_sysfs("/sys/devices/system/cpu/cpu0/cache");
    if (info.l2_bytes == 0) info.l2_bytes = sysfs.l2_bytes;
    if (info.llc_bytes == 0) info.llc_bytes = sysfs.llc_bytes;
  }
  return sanitize_cache_info(info);
}

bool width_fits(NodeWidth width, const NarrowFit& fit) {
  return width_unfit_reason(width, fit).empty();
}

std::string width_unfit_reason(NodeWidth width, const NarrowFit& fit) {
  switch (width) {
    case NodeWidth::Wide:
      return {};
    case NodeWidth::C16:
      if (fit.feature_count > 0x7FFF'FFFFu) {
        return "feature index does not fit the int32 node field";
      }
      return {};
    case NodeWidth::C8:
      if (!fit.ranks_fit_int16) {
        return "a feature has more than 32767 distinct thresholds "
               "(rank does not fit the int16 node key)";
      }
      if (fit.feature_count > 32767) {
        return "feature index does not fit the int16 node field";
      }
      if (fit.num_classes > 32767) {
        return "class id does not fit the int16 node key";
      }
      return {};
    case NodeWidth::Q4:
      // Necessary static bounds only; the per-forest feature/offset/key
      // bit split is resolved at pack time (try_pack_q4 reports the
      // precise reason when the 31-bit budget cannot be met).
      if (fit.feature_count > 32767) {
        return "feature index does not fit the 4-byte node's feature bits";
      }
      if (fit.num_classes > 65535) {
        return "class id does not fit the 4-byte node's key bits";
      }
      return {};
  }
  return "unknown node width";
}

namespace {

std::size_t node_bytes(NodeWidth w) {
  switch (w) {
    case NodeWidth::Q4: return 4;
    case NodeWidth::C8: return 8;
    default: return 16;
  }
}

}  // namespace

LayoutPlan auto_plan(const trees::ForestStats& stats, const NarrowFit& fit,
                     std::size_t block_size, const CacheInfo& cache,
                     std::optional<NodeWidth> force_width) {
  const std::size_t l2 = cache.l2_bytes ? cache.l2_bytes : 256u * 1024;

  LayoutPlan plan;
  // Blocked traversal streams each tree's node array once per block, so
  // larger blocks amortize the stream further; floor the knob at a size
  // where that amortization has leveled off (raised again below once the
  // image is known to spill L2).
  plan.block_size = std::max<std::size_t>(block_size, 256);

  // Width: narrow to 8 bytes only once the 16-byte image spills L2 by a
  // wide margin (2x) AND the per-sample rank remap is amortized — the
  // remap is one binary search per feature (~log2 of that feature's split
  // count, from the cached per-feature stats), which must stay a small
  // fraction of the traversal work (trees x mean leaf depth) it buys
  // back.  c16-float needs no table at all.  A forced width (pinned
  // layout:c16/c8 backend) skips the choice but still gets placement and
  // traversal tuned for its own image size below.
  if (force_width) {
    plan.width = *force_width;
  } else {
    plan.width = NodeWidth::C16;
    double remap_cost = 0.0;  // binary-search steps per sample remap
    for (const auto& f : stats.features) {
      remap_cost += std::log2(1.0 + static_cast<double>(f.splits));
    }
    const double walk =
        static_cast<double>(stats.trees.size()) * stats.mean_leaf_depth;
    const bool cache_hostile =
        stats.total_nodes * node_bytes(NodeWidth::C16) > 2 * l2;
    const bool remap_amortized = remap_cost * 4.0 < walk;
    // Narrow-width ladder, 4-byte first: q4 halves c8's image again and its
    // remap runs once per batch rather than once per block, so whenever c8
    // would have been worth the remap, q4 dominates it.  The caller
    // (predictor factory / ExecArtifacts) packs eagerly and demotes via
    // fit.allow_q4 = false when the bit budget or the quantization
    // accuracy contract fails, so an auto Q4 plan that survives here is
    // only tentative until the pack succeeds.
    if (fit.allow_q4 && width_fits(NodeWidth::Q4, fit) && cache_hostile &&
        remap_amortized) {
      plan.width = NodeWidth::Q4;
    } else if (width_fits(NodeWidth::C8, fit) && cache_hostile &&
               remap_amortized) {
      plan.width = NodeWidth::C8;
    }
  }
  if (!width_fits(plan.width, fit)) {
    plan.width = NodeWidth::Wide;
    return plan;
  }
  const std::size_t image = stats.total_nodes * node_bytes(plan.width);

  // Placement: root-block the top levels once the image outgrows L2 (the
  // per-core cache the hot loop actually lives in; VM-reported LLC sizes
  // are unreliable).  Slab estimate: levels 0..d-1 contribute up to
  // 2^d - 1 spine starts per tree, and each start's spine runs to a leaf
  // — about (mean_leaf_depth - d) nodes — so the slab holds roughly
  // starts x spine_length nodes.  Pick the deepest level whose estimate
  // stays within half of L2.
  if (image > l2) {
    const double budget = static_cast<double>(l2) / 2.0;
    const double mld = stats.mean_leaf_depth > 0.0
                           ? stats.mean_leaf_depth
                           : static_cast<double>(stats.max_depth);
    auto slab_bytes = [&](std::size_t d) {
      const double starts = static_cast<double>(stats.trees.size()) *
                            (static_cast<double>(std::size_t{1} << d) - 1.0);
      const double spine = std::max(1.0, mld - static_cast<double>(d) + 1.0);
      return starts * spine *
             static_cast<double>(node_bytes(plan.width));
    };
    std::size_t d = 0;
    while (d < 8 && d + 1 < stats.max_depth && slab_bytes(d + 1) <= budget) {
      ++d;
    }
    plan.hot_depth = d;
    plan.prefetch_opposite = true;
    plan.block_size = std::max<std::size_t>(plan.block_size, 1024);
  }

  // Latency path: enough independent chases to cover a miss, bounded by the
  // ensemble.
  plan.interleave = std::clamp<std::size_t>(stats.trees.size(), 1,
                                            image > l2 ? 8 : 4);
  return plan;
}

}  // namespace flint::exec::layout
