// exec/layout/plan — the layout auto-tuner: picks node width, placement and
// traversal for a forest at predictor-creation time.
//
// The decision inputs are all cheap, pre-computed summaries — nothing here
// re-walks trees:
//
//   * trees::ForestStats        — per-tree depth/node counts, total nodes,
//                                 per-feature split counts and ranges (one
//                                 DFS, cached); the split counts price the
//                                 c8 rank remap, the shape fields size the
//                                 hot slab;
//   * layout::KeyTableSet       — per-feature distinct-threshold counts
//                                 (built once, reused by the packer);
//   * the host cache hierarchy  — L2/LLC sizes via sysconf, falling back to
//                                 the sysfs cache topology and then to
//                                 clamped defaults (see detect_cache_info).
//
// Decision rules (documented in docs/ARCHITECTURE.md):
//
//   width      c8 when every feature's rank fits int16, the c16 image
//              would spill L2 by 2x, *and* the per-sample rank remap
//              (one ~log2(splits_f) binary search per feature, priced from
//              the per-feature split counts) stays a small fraction of the
//              traversal work it buys back; else c16; Wide only when even
//              c16 cannot represent the model (feature index or class id
//              overflow — fall back to the proven wide interpreter).
//   hot_depth  0 (pure per-tree DFS clustering) while the packed image fits
//              L2; otherwise the deepest root-block level whose slab
//              estimate stays within half of L2, so every tree's top levels
//              survive across block boundaries.
//   interleave trees walked in lockstep on the single-sample latency path:
//              enough independent pointer chases to cover a memory access,
//              capped by the ensemble size and kMaxInterleave.
//   prefetch   opposite-child software prefetch on, once the image exceeds
//              L2 (the right-child line is the probable miss; left is the
//              adjacent node by construction).
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "trees/tree_stats.hpp"

namespace flint::exec::layout {

/// Compact node width; Wide means "do not re-pack, use the wide
/// interpreter" (make_predictor falls back to the encoded engine).  Q4 is
/// the 4-byte quantized word (exec/layout/quant4.hpp): feature/offset/key
/// bit budgets are resolved per forest at pack time, so its static fit
/// checks here are necessary-but-not-sufficient — callers that auto-tune
/// Q4 must be prepared to demote when packing or the quantization contract
/// fails (NarrowFit::allow_q4 is the demotion lever).
enum class NodeWidth { C16, C8, Q4, Wide };

[[nodiscard]] const char* to_string(NodeWidth w);

/// Upper bound on trees traversed in lockstep by the latency path (bounds
/// the cursor array on the stack).
inline constexpr std::size_t kMaxInterleave = 16;

/// Everything the compact engine needs to know about how to lay out and
/// traverse one forest.  Produced by auto_plan or assembled by hand (the
/// tests pin exact configurations).
struct LayoutPlan {
  NodeWidth width = NodeWidth::C16;
  /// Root-block levels packed into the shared hot slab; 0 = pure per-tree
  /// DFS (subtree-clustered) placement.
  std::size_t hot_depth = 0;
  /// Samples per cache block of the batched path.
  std::size_t block_size = 64;
  /// Trees walked in lockstep per sample on the latency path, in
  /// [1, kMaxInterleave].
  std::size_t interleave = 4;
  /// Software-prefetch the right (non-implicit) child while descending.
  bool prefetch_opposite = false;

  /// Short descriptor for names/bench labels, e.g. "c8/slab4/il8".
  [[nodiscard]] std::string describe() const;
};

/// Host cache sizes consulted by the tuner.  detect_cache_info() never
/// returns zero fields; a hand-assembled CacheInfo with zeros (tests) falls
/// back to auto_plan's conservative 256 KiB L2 guard.
struct CacheInfo {
  std::size_t l2_bytes = 0;
  std::size_t llc_bytes = 0;
};

/// Best-effort detection, as a fallback chain (each link fills only the
/// fields the previous ones left at zero):
///
///   1. sysconf(_SC_LEVEL2/3_CACHE_SIZE) — returns -1 or 0 on musl and in
///      many container/cgroup setups, so it cannot be trusted alone;
///   2. the sysfs cache topology
///      (/sys/devices/system/cpu/cpu0/cache/index*/{level,type,size});
///   3. documented defaults: 1 MiB L2, 8 MiB LLC.
///
/// The merged result is passed through sanitize_cache_info, so callers
/// always see plausible, clamped, non-zero sizes.
[[nodiscard]] CacheInfo detect_cache_info();

/// Parses one sysfs cache `size` value — decimal digits with an optional
/// K/M/G suffix (case-insensitive) and trailing whitespace, e.g. "512K",
/// "8M".  Returns 0 when the text does not parse.
[[nodiscard]] std::size_t parse_sysfs_cache_size(std::string_view text);

/// Reads L2/LLC sizes from a sysfs-style cache directory (`cache_dir`
/// containing index*/{level,type,size}, normally
/// /sys/devices/system/cpu/cpu0/cache).  Instruction caches are skipped;
/// the deepest level >= 3 wins the LLC slot.  Fields stay zero when nothing
/// is readable.  Parameterized on the directory so the fallback chain is
/// unit-testable against a fake tree (tests/test_layout.cpp).
[[nodiscard]] CacheInfo cache_info_from_sysfs(const std::string& cache_dir);

/// Final link of the chain: fills zero fields with the documented defaults
/// (1 MiB L2, 8 MiB LLC) and clamps implausible probe results into
/// [32 KiB, 64 MiB] for L2 and [512 KiB, 1 GiB] for the LLC, keeping
/// llc >= l2.
[[nodiscard]] CacheInfo sanitize_cache_info(CacheInfo info);

/// Narrowing fitness extracted from the key tables (see narrow.hpp).
struct NarrowFit {
  bool ranks_fit_int16 = false;     ///< every per-feature table <= 32767 keys
  std::size_t feature_count = 0;
  int num_classes = 0;
  /// Permission flag for the auto ladder only (pinned layout:q4 ignores
  /// it): cleared by callers after a Q4 pack or contract failure, so
  /// re-running auto_plan yields the best non-quantized plan.  Q4
  /// packability depends on per-forest bit budgets known only at pack
  /// time, hence this try-then-demote protocol instead of a static check.
  bool allow_q4 = true;
};

/// Picks width + placement + traversal for a forest; `stats` and `fit` are
/// the cached summaries described in the file comment.  Deterministic given
/// its inputs (tests pass a fixed CacheInfo).  `force_width` pins the node
/// width (the layout:c16/c8 backends) — placement and traversal are then
/// tuned for THAT width's image size, not the width auto would have chosen;
/// the caller must have checked width_fits first.
[[nodiscard]] LayoutPlan auto_plan(
    const trees::ForestStats& stats, const NarrowFit& fit,
    std::size_t block_size, const CacheInfo& cache = detect_cache_info(),
    std::optional<NodeWidth> force_width = std::nullopt);

/// True iff a forest with these properties is representable at `width`
/// (feature index, class id and rank ranges all fit the node fields).
[[nodiscard]] bool width_fits(NodeWidth width, const NarrowFit& fit);

/// Human-readable reason a width does not fit (for error messages); empty
/// when width_fits.
[[nodiscard]] std::string width_unfit_reason(NodeWidth width,
                                             const NarrowFit& fit);

}  // namespace flint::exec::layout
