// exec/layout/kernels — architecture-specialized lockstep kernels over the
// compact node formats.
//
// The scalar blocked loop in compact.cpp walks kBlockLockstep samples in
// lockstep per tree; on AVX2 hosts the same algorithm runs 8 lanes per
// vector instruction instead.  Because a compact node is one contiguous
// 16/8-byte record, a step costs 4 (c16) or 3 (c8) vpgatherdd loads —
// versus the five parallel-array gathers of the exec/simd SoA kernels —
// and the gathered image is 1.5-3x smaller, which is what pays off once
// the forest spills L2.
//
// The AVX2 translation unit is compiled only when CMake detects an x86-64
// toolchain with -mavx2 (same gate as exec/simd); callers must additionally
// check layout_avx2_supported() at runtime before dispatching.
//
// Sample keys arrive as feature-major int32 tiles of 8 lanes
// (tile[c*8 + l] = narrowed key of lane l, feature c), produced by
// CompactForest::remap32 with an 8-element stride; votes follow the SoA
// kernels' convention votes[(tile*8 + l) * classes + c].
#pragma once

#include <cstddef>
#include <cstdint>

#include "exec/layout/compact.hpp"

namespace flint::exec::layout {

#if defined(FLINT_SIMD_AVX2)

/// Runtime check (the TU is compiled with -mavx2, the host must agree).
[[nodiscard]] bool layout_avx2_supported() noexcept;

/// Walks every tree over `n_tiles` 8-lane key tiles and accumulates
/// per-lane votes (see file comment for layouts).  Thread-safe: touches
/// only its arguments.
void predict_tiles_avx2(const CompactNode16* nodes, const std::int32_t* roots,
                        std::size_t trees, const std::int32_t* tiles,
                        std::size_t n_tiles, std::size_t cols, int* votes,
                        std::size_t classes);
void predict_tiles_avx2(const CompactNode8* nodes, const std::int32_t* roots,
                        std::size_t trees, const std::int32_t* tiles,
                        std::size_t n_tiles, std::size_t cols, int* votes,
                        std::size_t classes);

/// The 4-byte (layout:q4) walk: one gather per step fetches the whole node
/// word, decoded with the forest's pack-time bit split (key_bits low,
/// feature_bits above, right offset above that, sign bit = leaf).  `words`
/// is the packed CompactNode4 image viewed as raw uint32s so this header
/// needs no quant4.hpp include; tiles carry the batch-boundary quantized
/// sample keys (already integers — no remap ran per block).
void predict_tiles_q4_avx2(const std::uint32_t* words,
                           const std::int32_t* roots, std::size_t trees,
                           const std::int32_t* tiles, std::size_t n_tiles,
                           std::size_t cols, int* votes, std::size_t classes,
                           std::uint32_t key_bits, std::uint32_t feature_bits);

#endif  // FLINT_SIMD_AVX2

}  // namespace flint::exec::layout
