// exec/layout/quant4 — the 4-byte quantized node format (layout:q4).
//
// The compact formats (compact.hpp) stop at 8 bytes because they store a
// full int16 rank plus an int16 feature plus an int32 offset.  This module
// pushes the same memory-bound argument to its end: ONE 32-bit word per
// node, so twice the forest fits in each cache level again, and the hot
// loop is integer-only end to end.
//
//   CompactNode4 (4 B)   [ leaf:1 | right_off:O | feature:F | key:K ]
//
// The bit budget is resolved PER FOREST at pack time: placement is decided
// first (compute_emission_order — the same hot-slab/preorder pass every
// compact format shares, and geometry-independent by construction), which
// fixes the largest relative right offset; O covers that offset, F covers
// the feature count, and the key keeps the remaining K = 31 - F - O bits,
// capped at 16 and required >= 8 (the int16/int8 quantized threshold).
// Leaves set the sign bit and carry their class id / leaf-value row in the
// key bits with feature and offset bits zero, so branchless lockstep loops
// can decode every field before the leaf test resolves.
//
// Thresholds are quantized per feature under a QuantPlan (quant/quant_plan):
// features whose rank table fits K bits keep the exact rank contract —
// bit-identical inference, the narrow.hpp theorem at 4 bytes — and larger
// tables fall back to a calibrated affine map with a measured per-feature
// fitness (how many distinct thresholds survive).  The plan travels with
// the packed image, so verify/inspect/bench all report the same contract.
//
// Features are quantized ONCE PER BATCH at the predictor boundary into an
// int16 (int8 when every feature's key range fits a byte) column block;
// the traversal — scalar lockstep, interleaved predict_one, or the AVX2
// tile kernel — then touches only integer keys and 4-byte words.  That is
// the batch-boundary invariant: no float compare, no per-block re-remap,
// one quantization pass per predict_batch call.
//
// NaN default-direction and categorical splits route exactly as in the
// other layouts, via a per-node flags SIDECAR (allocated only for special
// forests) plus the same per-sample NaN/membership masks — the 4-byte word
// itself has no spare bits to borrow.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/flint.hpp"
#include "exec/layout/compact.hpp"
#include "exec/layout/narrow.hpp"
#include "exec/layout/plan.hpp"
#include "quant/quant_plan.hpp"
#include "trees/forest.hpp"

namespace flint::exec::layout {

/// The packed word.  Default-constructed as an out-of-range leaf so an
/// uninitialized node can never masquerade as a valid inner node.
struct CompactNode4 {
  std::uint32_t word = 0x8000'0000u;
};
static_assert(sizeof(CompactNode4) == 4, "CompactNode4 must stay 4 bytes");

/// Sign bit of the word = leaf tag (decoded with one arithmetic shift).
inline constexpr std::uint32_t kQ4LeafBit = 0x8000'0000u;

/// Sidecar flag bits (same values as trees::kNodeDefaultLeft/Categorical).
inline constexpr std::uint8_t kQ4DefaultLeft = 1;
inline constexpr std::uint8_t kQ4Categorical = 2;

/// Per-forest bit budget of the word's three fields (sums to 31).
struct Q4Geometry {
  std::uint32_t key_bits = 16;
  std::uint32_t feature_bits = 8;
  std::uint32_t offset_bits = 7;

  [[nodiscard]] constexpr std::uint32_t key_mask() const noexcept {
    return (std::uint32_t{1} << key_bits) - 1u;
  }
  [[nodiscard]] constexpr std::uint32_t feature_mask() const noexcept {
    return (std::uint32_t{1} << feature_bits) - 1u;
  }
  [[nodiscard]] constexpr std::uint32_t offset_mask() const noexcept {
    return (std::uint32_t{1} << offset_bits) - 1u;
  }
  [[nodiscard]] constexpr std::uint32_t feature_shift() const noexcept {
    return key_bits;
  }
  [[nodiscard]] constexpr std::uint32_t offset_shift() const noexcept {
    return key_bits + feature_bits;
  }

  [[nodiscard]] constexpr std::uint32_t encode(std::uint32_t key,
                                               std::uint32_t feature,
                                               std::uint32_t right_off)
      const noexcept {
    return key | (feature << feature_shift()) | (right_off << offset_shift());
  }
  [[nodiscard]] constexpr std::uint32_t encode_leaf(std::uint32_t payload)
      const noexcept {
    return kQ4LeafBit | payload;
  }

  [[nodiscard]] constexpr bool is_leaf(std::uint32_t w) const noexcept {
    return (w & kQ4LeafBit) != 0;
  }
  [[nodiscard]] constexpr std::uint32_t key_of(std::uint32_t w) const noexcept {
    return w & key_mask();
  }
  [[nodiscard]] constexpr std::uint32_t feature_of(std::uint32_t w)
      const noexcept {
    return (w >> feature_shift()) & feature_mask();
  }
  [[nodiscard]] constexpr std::uint32_t offset_of(std::uint32_t w)
      const noexcept {
    return (w >> offset_shift()) & offset_mask();
  }
};

/// A forest packed into 4-byte words plus its quantization plan.
template <typename T>
struct Q4Forest {
  Q4Geometry geom;
  int num_classes = 0;
  std::size_t feature_count = 0;
  std::size_t hot_nodes = 0;
  bool has_special = false;
  quant::QuantPlan qplan;  ///< per-feature quantizers; bits == geom.key_bits
  KeyTableSet<T> tables;   ///< rank tables for the Exact-mode features
  std::vector<CompactNode4> nodes;
  std::vector<std::int32_t> roots;
  /// Per-node kQ4DefaultLeft/kQ4Categorical bits; empty unless has_special
  /// (the word has no spare bits, so special semantics ride in a sidecar
  /// the fast paths never touch).
  std::vector<std::uint8_t> flags;

  // Category side tables, same scheme as CompactForest: one engine slot per
  // categorical node, slot id stored in the node's key bits.
  std::vector<std::uint32_t> cat_words;
  std::vector<std::int32_t> cat_offsets;
  std::vector<std::int32_t> cat_sizes;
  std::vector<std::int32_t> cat_feature;

  /// Bit-exact contract: every feature keys by exact rank.
  [[nodiscard]] bool exact() const noexcept { return qplan.all_exact(); }

  [[nodiscard]] std::size_t cat_slot_count() const noexcept {
    return cat_feature.size();
  }
  [[nodiscard]] std::span<const std::uint32_t> cat_set_of_slot(
      std::size_t s) const noexcept {
    return {cat_words.data() + static_cast<std::size_t>(cat_offsets[s]),
            static_cast<std::size_t>(cat_sizes[s])};
  }

  /// Largest stored key any feature can produce — decides whether the
  /// batch column block narrows to int8.
  [[nodiscard]] std::int64_t max_key_span() const noexcept {
    std::int64_t m = 0;
    for (const auto& fq : qplan.features) m = std::max(m, fq.key_span());
    return m;
  }

  /// Quantizes one sample row to stored keys (the batch-boundary pass).
  /// Exact features rank through the table; affine features go through
  /// their calibrated map.  `out` needs feature_count slots.  Thread-safe.
  template <typename KeyT>
  void quantize_row(const T* x, KeyT* out) const {
    for (std::size_t f = 0; f < feature_count; ++f) {
      const auto& fq = qplan.features[f];
      if (fq.exact()) {
        out[f] = static_cast<KeyT>(tables.features[f].rank(x[f]));
      } else {
        out[f] = static_cast<KeyT>(fq.quantize(static_cast<double>(x[f])) -
                                   fq.q_lo);
      }
    }
  }

  /// Per-sample NaN / categorical-membership masks (identical contract to
  /// CompactForest::special_masks).
  void special_masks(const T* x, std::uint8_t* nan_out,
                     std::uint8_t* member_out) const {
    for (std::size_t f = 0; f < feature_count; ++f) {
      nan_out[f] = core::is_nan_bits<T>(core::si_bits(x[f])) ? 1 : 0;
    }
    for (std::size_t s = 0; s < cat_feature.size(); ++s) {
      const T v = x[static_cast<std::size_t>(cat_feature[s])];
      member_out[s] = (!core::is_nan_bits<T>(core::si_bits(v)) &&
                       trees::cat_contains(cat_set_of_slot(s), v))
                          ? 1
                          : 0;
    }
  }
};

/// Packs `forest` into the 4-byte format at `plan.hot_depth`.  Placement
/// runs first; the geometry is then sized from the measured offset extent
/// and the feature count, and every node is validated as it is encoded
/// (key/feature/offset ranges, leaf payloads, implicit-left).  Returns
/// std::nullopt and sets `why` when the 31-bit budget cannot be met (fewer
/// than 8 key bits left, payload overflow, ...).  `force_affine` routes
/// every tested feature through the affine map — the deterministic lossy
/// path behind the quant:affine backend.
template <typename T>
[[nodiscard]] std::optional<Q4Forest<T>> try_pack_q4(
    const trees::Forest<T>& forest, const LayoutPlan& plan,
    const KeyTableSet<T>& tables, bool force_affine = false,
    std::string* why = nullptr);

/// Execution engine over a Q4Forest: batch-boundary quantization feeding
/// branch-free scalar lockstep, an interleaved latency path, and (when
/// compiled in and supported) the AVX2 tile kernel.  Same external
/// contract as LayoutForestEngine; const-thread-safe.
template <typename T>
class Q4ForestEngine {
 public:
  /// Packs with `plan` (width is forced to Q4).  Throws
  /// std::invalid_argument when the forest is empty or not packable.
  Q4ForestEngine(const trees::Forest<T>& forest, const LayoutPlan& plan,
                 const KeyTableSet<T>& tables, bool force_affine = false);

  /// Binds an already-packed image (exec/artifacts) without re-packing.
  Q4ForestEngine(Q4Forest<T> packed, const LayoutPlan& plan);

  [[nodiscard]] const LayoutPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const Q4Forest<T>& packed() const noexcept { return packed_; }
  [[nodiscard]] int num_classes() const noexcept {
    return packed_.num_classes;
  }
  [[nodiscard]] std::size_t feature_count() const noexcept {
    return packed_.feature_count;
  }
  [[nodiscard]] std::size_t tree_count() const noexcept {
    return packed_.roots.size();
  }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return packed_.nodes.size();
  }
  [[nodiscard]] std::size_t node_bytes() const noexcept {
    return sizeof(CompactNode4);
  }
  [[nodiscard]] std::size_t hot_node_count() const noexcept {
    return packed_.hot_nodes;
  }

  void predict_batch(const T* features, std::size_t n_samples,
                     std::int32_t* out) const;

  /// Additive leaf-value epilogue (same contract as
  /// LayoutForestEngine::predict_scores: tree-order accumulation, leaf key
  /// payload indexes a leaf_values row).
  void predict_scores(const T* features, std::size_t n_samples,
                      std::span<const T> leaf_values, std::size_t n_outputs,
                      std::span<const T> base, T* out) const;

  [[nodiscard]] std::int32_t predict(std::span<const T> x) const;

 private:
  LayoutPlan plan_;
  Q4Forest<T> packed_;
};

extern template struct Q4Forest<float>;
extern template struct Q4Forest<double>;
extern template std::optional<Q4Forest<float>> try_pack_q4<float>(
    const trees::Forest<float>&, const LayoutPlan&, const KeyTableSet<float>&,
    bool, std::string*);
extern template std::optional<Q4Forest<double>> try_pack_q4<double>(
    const trees::Forest<double>&, const LayoutPlan&,
    const KeyTableSet<double>&, bool, std::string*);
extern template class Q4ForestEngine<float>;
extern template class Q4ForestEngine<double>;

}  // namespace flint::exec::layout
