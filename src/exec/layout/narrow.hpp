// exec/layout/narrow — FLInt order-preserving threshold narrowing.
//
// FLInt turns every split into one integer compare, which makes forest
// inference memory-bound: node fetches dominate once the ALU work is a
// single comparison.  The compact node formats (exec/layout/compact.hpp)
// attack that by shrinking what a node *stores* — and the key insight that
// makes shrinking exact is the same monotone bit-pattern order the paper
// proves for full-width floats:
//
//   A node only ever evaluates `x <= s` against the *finite set* of split
//   values its feature is tested with.  Map every float v to
//
//       rank_f(v) = |{ t in splits(f) : t <_FLInt v }|
//
//   (the lower-bound index of v's radix key in the sorted distinct split
//   keys of feature f).  rank_f is monotone in the FLInt total order, and
//   for every split s in the table
//
//       x <=_FLInt s   <=>   rank_f(x) <= rank_f(s)
//
//   exactly: if x <= s = sorted[i], every split strictly below x is among
//   sorted[0..i-1], so rank(x) <= i = rank(s); if x > s, splits sorted[0..i]
//   are all strictly below x, so rank(x) >= i + 1 > rank(s).
//
// Ranks fit whatever integer width covers the table size — int16 for up to
// 32767 distinct splits per feature, int32 always — so an 8-byte node can
// carry a full-fidelity threshold.  This is the exact-by-construction form
// of the order-preserving integer narrowing InTreeger applies to thresholds
// (PAPERS.md); exactness is still *verified* at pack time (strict table
// order + every split round-trips through its rank) and property-tested on
// adversarial bit patterns in tests/test_layout.cpp.
//
// The float->int32 identity case needs no table at all: to_radix_key is
// itself a monotone int32 key (core/flint.hpp), so 16-byte float nodes skip
// the per-sample binary search entirely.
#pragma once

#include <cstdint>
#include <vector>

#include "core/flint.hpp"
#include "trees/forest.hpp"

namespace flint::exec::layout {

/// Sorted distinct radix keys of every split one feature is tested against,
/// plus the rank remap.  An empty table (feature never tested) maps every
/// value to rank 0, which is trivially exact — no node reads it.
template <typename T>
struct KeyTable {
  using Signed = typename core::FloatTraits<T>::Signed;

  std::vector<Signed> sorted;  ///< strictly ascending radix keys

  [[nodiscard]] std::size_t size() const noexcept { return sorted.size(); }

  /// rank of a radix key: |{ k in sorted : k < key }| in [0, size()].
  [[nodiscard]] std::int32_t rank_of_key(Signed key) const noexcept {
    // Branchless lower bound (sorted is strictly ascending).  The classic
    // lo/hi binary search takes a data-dependent branch every iteration;
    // on the remap hot path (one search per feature per sample) those
    // mispredictions dominated the narrow formats' per-sample cost — the
    // layout:c8 smoke-model regression.  This halving form advances `base`
    // by a conditional move instead, so the only branch is the loop
    // counter, which predicts perfectly (trip count depends on size alone).
    const Signed* base = sorted.data();
    std::size_t n = sorted.size();
    while (n > 1) {
      const std::size_t half = n / 2;
      base += (base[half - 1] < key) ? half : 0;  // cmov, not a branch
      n -= half;
    }
    const std::size_t last =
        (n == 1 && *base < key) ? 1 : 0;  // element strictly below key
    return static_cast<std::int32_t>(
        static_cast<std::size_t>(base - sorted.data()) + last);
  }

  /// rank of a float value in the FLInt total order.
  [[nodiscard]] std::int32_t rank(T v) const noexcept {
    return rank_of_key(core::to_radix_key(v));
  }
};

/// One KeyTable per feature of a forest.
template <typename T>
struct KeyTableSet {
  std::vector<KeyTable<T>> features;

  /// Largest per-feature table (bounds the rank range).
  [[nodiscard]] std::size_t max_table_size() const noexcept {
    std::size_t m = 0;
    for (const auto& f : features) {
      if (f.size() > m) m = f.size();
    }
    return m;
  }

  /// True iff every rank (<= table size) fits an int16 node key.
  [[nodiscard]] bool fits_int16() const noexcept {
    return max_table_size() <= 32767;
  }
};

/// Collects, per feature, the sorted distinct radix keys of every split in
/// the forest (split -0.0 normalized to +0.0 first, exactly as the Encoded
/// engine does), and verifies the exactness preconditions: strict ascending
/// order and every split's key present at its own rank.  Throws
/// std::logic_error if verification fails (it cannot, by construction —
/// the check guards future refactors).
template <typename T>
[[nodiscard]] KeyTableSet<T> build_key_tables(const trees::Forest<T>& forest);

/// Narrow key of one split value: applies the -0.0 -> +0.0 normalization,
/// ranks the radix key, and verifies the split actually sits in the table
/// at that rank (the exactness precondition every packed node relies on).
/// Throws std::logic_error when it does not — the table was built from a
/// different forest.  The single helper both the compact packer and
/// SoaForest::build_narrow_keys go through, so the normalization rule
/// cannot drift between them.
template <typename T>
[[nodiscard]] std::int32_t rank_of_split(const KeyTable<T>& table, T split);

extern template struct KeyTable<float>;
extern template struct KeyTable<double>;
extern template struct KeyTableSet<float>;
extern template struct KeyTableSet<double>;
extern template KeyTableSet<float> build_key_tables<float>(
    const trees::Forest<float>&);
extern template KeyTableSet<double> build_key_tables<double>(
    const trees::Forest<double>&);
extern template std::int32_t rank_of_split<float>(const KeyTable<float>&,
                                                  float);
extern template std::int32_t rank_of_split<double>(const KeyTable<double>&,
                                                   double);

}  // namespace flint::exec::layout
