#include "exec/layout/compact.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <limits>
#include <stdexcept>

#include "exec/layout/kernels.hpp"
#include "exec/pack_checks.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define FLINT_PREFETCH(p) __builtin_prefetch((p))
#else
#define FLINT_PREFETCH(p) ((void)0)
#endif

namespace flint::exec::layout {

namespace {

/// -0.0 splits normalize to +0.0 before keying (core::encode_threshold_le
/// semantics; build_key_tables applies the same rewrite).
template <typename T>
T normalize_zero(T split) {
  return split == T{0} ? T{0} : split;
}

template <typename T, typename Node>
constexpr bool identity_keys_for() {
  // float thresholds ARE monotone int32 keys under to_radix_key, so the
  // 16-byte float node skips the rank table (and the per-sample search).
  return std::is_same_v<T, float> && sizeof(decltype(Node::key)) == 4;
}

std::int32_t argmax_first(const int* votes, int num_classes) {
  std::int32_t best = 0;
  for (int c = 1; c < num_classes; ++c) {
    if (votes[c] > votes[best]) best = c;
  }
  return best;
}

void set_default_left(CompactNode16& n) { n.aux |= kC16DefaultLeft; }
void set_categorical(CompactNode16& n) { n.aux |= kC16Categorical; }
void set_default_left(CompactNode8& n) {
  n.feature = static_cast<std::int16_t>(static_cast<std::uint16_t>(n.feature) |
                                        kC8DefaultLeftBit);
}
void set_categorical(CompactNode8& n) { n.right_off |= kC8CategoricalBit; }

}  // namespace

// ---------------------------------------------------------------------------
// Packing: emission order (hot slab + preorder clusters), then node fill.
// ---------------------------------------------------------------------------

template <typename T>
EmissionOrder compute_emission_order(const trees::Forest<T>& forest,
                                     std::size_t hot_depth) {
  // A spine (a node and its chain of left descendants down to a leaf) is
  // the atomic placement unit: the implicit-left rule welds it together.
  // Spines whose branch depth is < hot_depth are emitted breadth-first
  // across all trees into the shared hot slab; every other subtree is
  // deferred and later emitted as one contiguous preorder cluster.
  struct Item {
    std::int32_t tree;
    std::int32_t node;
    std::uint32_t depth;
  };
  const std::size_t total = forest.total_nodes();
  EmissionOrder eo;
  eo.pos.resize(forest.size());
  for (std::size_t t = 0; t < forest.size(); ++t) {
    eo.pos[t].assign(forest.tree(t).size(), -1);
  }
  eo.order.reserve(total);
  std::deque<Item> fifo;
  std::vector<Item> cold;

  auto emit_spine = [&](Item it) {
    const auto& tree = forest.tree(static_cast<std::size_t>(it.tree));
    std::int32_t n = it.node;
    std::uint32_t d = it.depth;
    while (true) {
      eo.pos[static_cast<std::size_t>(it.tree)][static_cast<std::size_t>(n)] =
          static_cast<std::int32_t>(eo.order.size());
      eo.order.push_back({it.tree, n});
      const auto& nd = tree.node(n);
      if (nd.is_leaf()) break;
      const Item right{it.tree, nd.right, d + 1};
      if (right.depth < hot_depth) {
        fifo.push_back(right);
      } else {
        cold.push_back(right);
      }
      n = nd.left;
      ++d;
    }
  };

  for (std::size_t t = 0; t < forest.size(); ++t) {
    const Item root{static_cast<std::int32_t>(t), 0, 0};
    if (hot_depth == 0) {
      cold.push_back(root);
    } else {
      fifo.push_back(root);
    }
  }
  while (!fifo.empty()) {
    const Item it = fifo.front();
    fifo.pop_front();
    emit_spine(it);
  }
  eo.hot_nodes = eo.order.size();
  // Cold phase: each deferred subtree as one preorder cluster (preorder
  // emits a parent's left child immediately after it, satisfying the
  // implicit-left rule within the cluster).
  std::vector<std::int32_t> stack;
  for (const Item& sub : cold) {
    const auto& tree = forest.tree(static_cast<std::size_t>(sub.tree));
    stack.assign(1, sub.node);
    while (!stack.empty()) {
      const std::int32_t n = stack.back();
      stack.pop_back();
      eo.pos[static_cast<std::size_t>(sub.tree)][static_cast<std::size_t>(n)] =
          static_cast<std::int32_t>(eo.order.size());
      eo.order.push_back({sub.tree, n});
      const auto& nd = tree.node(n);
      if (!nd.is_leaf()) {
        stack.push_back(nd.right);  // popped second
        stack.push_back(nd.left);   // popped first: lands at parent + 1
      }
    }
  }
  if (eo.order.size() != total) {
    throw std::logic_error(
        "layout::compute_emission_order: emission order dropped nodes");
  }
  // Placement invariants + the offset extent formats size their fields
  // from: left child at parent + 1, right child strictly after its parent.
  for (std::size_t p = 0; p < total; ++p) {
    const EmissionItem it = eo.order[p];
    const auto& tree = forest.tree(static_cast<std::size_t>(it.tree));
    const auto& nd = tree.node(it.node);
    if (nd.is_leaf()) continue;
    const auto& tpos = eo.pos[static_cast<std::size_t>(it.tree)];
    if (tpos[static_cast<std::size_t>(nd.left)] !=
        static_cast<std::int32_t>(p) + 1) {
      throw std::logic_error(
          "layout::compute_emission_order: placement broke the implicit-left "
          "rule");
    }
    const std::int64_t off =
        static_cast<std::int64_t>(tpos[static_cast<std::size_t>(nd.right)]) -
        static_cast<std::int64_t>(p);
    if (off <= 0) {
      throw std::logic_error(
          "layout::compute_emission_order: right child placed before its "
          "parent");
    }
    eo.max_right_offset = std::max(eo.max_right_offset, off);
  }
  return eo;
}

template <typename T, typename Node>
std::optional<CompactForest<T, Node>> try_pack(const trees::Forest<T>& forest,
                                               const LayoutPlan& plan,
                                               const KeyTableSet<T>& tables,
                                               std::string* why) {
  using Key = decltype(Node::key);
  auto fail = [&](std::string reason) -> std::optional<CompactForest<T, Node>> {
    if (why) *why = std::move(reason);
    return std::nullopt;
  };

  if (forest.empty()) return fail("empty forest");

  CompactForest<T, Node> packed;
  packed.num_classes = forest.num_classes();
  packed.feature_count = forest.feature_count();
  packed.identity_keys = identity_keys_for<T, Node>();
  packed.has_special = forest.has_special_splits();
  if (!packed.identity_keys) packed.tables = tables;

  // Representability gates for the narrow fields.
  constexpr std::int64_t key_max =
      sizeof(Key) == 2 ? 32767 : 0x7FFF'FFFFll;
  constexpr std::int64_t feature_max =
      sizeof(decltype(Node::feature)) == 2 ? 32767 : 0x7FFF'FFFFll;
  if (static_cast<std::int64_t>(packed.feature_count) > feature_max) {
    return fail("feature index does not fit the node's feature field");
  }
  if (packed.num_classes > key_max) {
    return fail("class id does not fit the node key");
  }
  if (!packed.identity_keys &&
      static_cast<std::int64_t>(tables.max_table_size()) > key_max) {
    return fail("a feature has more distinct thresholds than the node key "
                "width can rank");
  }
  if (!packed.identity_keys &&
      tables.features.size() != packed.feature_count) {
    return fail("key table set does not match the forest's feature count");
  }
  if (packed.has_special) {
    // Categorical slots live in the node key (one engine slot per
    // categorical node); count them up front for the width gate.
    std::int64_t n_cat = 0;
    for (std::size_t t = 0; t < forest.size(); ++t) {
      for (const auto& n : forest.tree(t).nodes()) {
        if (!n.is_leaf() && n.is_categorical()) ++n_cat;
      }
    }
    if (n_cat > key_max) {
      return fail("categorical slot index does not fit the node key");
    }
  }

  // --- Pass 1: emission order (shared placement pass). ---------------------
  const EmissionOrder eo = compute_emission_order(forest, plan.hot_depth);
  const std::size_t total = forest.total_nodes();
  const auto& pos = eo.pos;
  packed.hot_nodes = eo.hot_nodes;

  // --- Pass 2: fill nodes (keys, offsets, roots). --------------------------
  packed.nodes.resize(total);
  packed.roots.resize(forest.size());
  for (std::size_t t = 0; t < forest.size(); ++t) {
    packed.roots[t] = pos[t][0];
  }
  for (std::size_t p = 0; p < total; ++p) {
    const EmissionItem it = eo.order[p];
    const auto& tree = forest.tree(static_cast<std::size_t>(it.tree));
    const auto& nd = tree.node(it.node);
    Node out{};
    if (nd.is_leaf()) {
      check_leaf_class(nd.prediction, packed.num_classes,
                       static_cast<std::size_t>(it.tree));
      out.key = static_cast<Key>(nd.prediction);
      // Feature 0 (any valid column), not -1: the branchless lockstep
      // loops read keys[feature] before the leaf test resolves, exactly
      // like the SoA kernels' clamped leaf column.
      out.feature = 0;
      out.right_off = -1;  // sign bit = leaf tag
    } else {
      const auto& tpos = pos[static_cast<std::size_t>(it.tree)];
      if (tpos[static_cast<std::size_t>(nd.left)] !=
          static_cast<std::int32_t>(p) + 1) {
        throw std::logic_error(
            "layout::try_pack: placement broke the implicit-left rule");
      }
      const std::int64_t off =
          static_cast<std::int64_t>(tpos[static_cast<std::size_t>(nd.right)]) -
          static_cast<std::int64_t>(p);
      if (off <= 0 || off > 0x7FFF'FFFFll) {
        throw std::logic_error(
            "layout::try_pack: right child placed before its parent");
      }
      if (packed.has_special && sizeof(Node) == 8 &&
          off >= static_cast<std::int64_t>(kC8CategoricalBit)) {
        // Special C8 forests borrow right_off bit 30 for the categorical
        // tag, so their plain offsets must stay below it.
        return fail("right-child offset does not fit the special-split C8 "
                    "offset range");
      }
      out.right_off = static_cast<std::int32_t>(off);
      out.feature =
          static_cast<decltype(Node::feature)>(nd.feature);
      if (nd.is_categorical()) {
        // One engine slot per categorical node: the slot remembers its
        // feature and bitset so per-sample membership precomputes per slot.
        const auto slot = static_cast<std::int64_t>(packed.cat_slot_count());
        const auto set = tree.cat_set(nd.cat_slot);
        packed.cat_offsets.push_back(
            static_cast<std::int32_t>(packed.cat_words.size()));
        packed.cat_sizes.push_back(static_cast<std::int32_t>(set.size()));
        packed.cat_words.insert(packed.cat_words.end(), set.begin(),
                                set.end());
        packed.cat_feature.push_back(nd.feature);
        out.key = static_cast<Key>(slot);
        set_categorical(out);
      } else if (packed.identity_keys) {
        out.key = static_cast<Key>(core::to_radix_key(
            normalize_zero(nd.split)));
      } else {
        // rank_of_split normalizes -0.0 and verifies the exactness
        // precondition (split present at its own rank).
        out.key = static_cast<Key>(rank_of_split(
            tables.features[static_cast<std::size_t>(nd.feature)],
            nd.split));
      }
      if (nd.default_left()) set_default_left(out);
    }
    packed.nodes[p] = out;
  }
  return packed;
}

// ---------------------------------------------------------------------------
// Traversal.
// ---------------------------------------------------------------------------

namespace {

/// Samples advanced in lockstep through one tree by the blocked path: the
/// across-samples dual of the latency path's across-trees interleave.  One
/// serial pointer chase per sample would leave the memory system idle
/// between dependent node fetches; W independent chases overlap in the
/// out-of-order window (the same memory-level parallelism the SoA kernels
/// exploit, but each step costs one compact node load instead of gathers
/// from five parallel arrays).
constexpr std::size_t kBlockLockstep = 16;

/// Blocked remap + lockstep traversal shared by the vote and score
/// epilogues: remap a block of samples to narrow keys once, then stream
/// each tree's node array across the whole block, kBlockLockstep samples
/// in flight at a time.  `block_begin(base, block)` / `block_end(base,
/// block)` bracket each block; `on_leaf(global_sample, local_sample,
/// leaf_key)` fires once per (tree, sample) with the converged leaf's key
/// payload.
template <bool Prefetch, bool Special, typename T, typename Node,
          typename BlockBegin, typename OnLeaf, typename BlockEnd>
void blocked_traverse(const CompactForest<T, Node>& f, std::size_t block_size,
                      const T* features, std::size_t n_samples,
                      BlockBegin&& block_begin, OnLeaf&& on_leaf,
                      BlockEnd&& block_end) {
  using Key = typename CompactForest<T, Node>::Key;
  const std::size_t cols = f.feature_count;
  const std::size_t trees = f.roots.size();
  const std::size_t n_slots = f.cat_slot_count();
  const Node* nodes = f.nodes.data();
  std::vector<Key> keys(block_size * cols);
  // Special side masks, remapped alongside the keys: NaN flags per feature
  // and categorical membership per slot (see CompactForest::special_masks).
  std::vector<std::uint8_t> nan_mask(Special ? block_size * cols : 0);
  std::vector<std::uint8_t> member(
      Special ? std::max<std::size_t>(block_size * n_slots, 1) : 0);
  for (std::size_t base = 0; base < n_samples; base += block_size) {
    const std::size_t block = std::min(block_size, n_samples - base);
    block_begin(base, block);
    for (std::size_t s = 0; s < block; ++s) {
      f.remap(features + (base + s) * cols, keys.data() + s * cols);
      if constexpr (Special) {
        f.special_masks(features + (base + s) * cols,
                        nan_mask.data() + s * cols,
                        member.data() + s * n_slots);
      }
    }
    for (std::size_t t = 0; t < trees; ++t) {
      const std::int32_t root = f.roots[t];
      for (std::size_t s0 = 0; s0 < block; s0 += kBlockLockstep) {
        const std::size_t g = std::min(kBlockLockstep, block - s0);
        const Key* krow[kBlockLockstep];
        std::int32_t cur[kBlockLockstep];
        for (std::size_t r = 0; r < g; ++r) {
          cur[r] = root;
          krow[r] = keys.data() + (s0 + r) * cols;
        }
        // Branch-free lockstep rounds: finished lanes step by 0 on their
        // leaf (leaves read key column 0, a valid index by construction)
        // until the whole group converges — no per-lane liveness branches
        // for the predictor to miss.
        bool any_inner = true;
        while (any_inner) {
          any_inner = false;
          for (std::size_t r = 0; r < g; ++r) {
            const Node& nd = nodes[cur[r]];
            const std::int32_t off = nd.right_off;
            const bool leaf = off < 0;
            bool go;
            std::int32_t step_off = off;
            if constexpr (Special) {
              if (!leaf) step_off = node_right_off(nd);
              const auto fi = static_cast<std::size_t>(node_feature(nd));
              const std::uint8_t* nrow = nan_mask.data() + (s0 + r) * cols;
              if (nrow[fi]) {
                go = node_default_left(nd);
              } else if (node_categorical(nd)) {
                go = member[(s0 + r) * n_slots +
                            static_cast<std::size_t>(nd.key)] != 0;
              } else {
                go = krow[r][fi] <= nd.key;
              }
            } else {
              go = krow[r][static_cast<std::size_t>(nd.feature)] <= nd.key;
            }
            if constexpr (Prefetch) {
              FLINT_PREFETCH(&nodes[cur[r] + (leaf ? 0 : step_off)]);
            }
            cur[r] += leaf ? 0 : (go ? 1 : step_off);
            any_inner |= !leaf;
          }
        }
        for (std::size_t r = 0; r < g; ++r) {
          on_leaf(base + s0 + r, s0 + r,
                  static_cast<std::int32_t>(nodes[cur[r]].key));
        }
      }
    }
    block_end(base, block);
  }
}

/// Vote epilogue over the blocked traversal.
template <bool Prefetch, bool Special, typename T, typename Node>
void predict_blocked(const CompactForest<T, Node>& f, std::size_t block_size,
                     const T* features, std::size_t n_samples,
                     std::int32_t* out) {
  const auto classes = static_cast<std::size_t>(std::max(f.num_classes, 1));
  std::vector<int> votes(block_size * classes);
  blocked_traverse<Prefetch, Special>(
      f, block_size, features, n_samples,
      [&](std::size_t, std::size_t block) {
        std::fill(votes.begin(),
                  votes.begin() + static_cast<std::ptrdiff_t>(block * classes),
                  0);
      },
      [&](std::size_t, std::size_t s, std::int32_t key) {
        ++votes[s * classes + static_cast<std::size_t>(key)];
      },
      [&](std::size_t base, std::size_t block) {
        for (std::size_t s = 0; s < block; ++s) {
          out[base + s] = argmax_first(votes.data() + s * classes,
                                       static_cast<int>(classes));
        }
      });
}

/// Interleaved latency path: R trees of ONE sample advance in lockstep, so
/// R independent node fetches are in flight per round instead of one
/// serial pointer chase.  `votes` must hold num_classes zeroed slots.
template <bool Prefetch, bool Special, typename T, typename Node>
void predict_one_interleaved(const CompactForest<T, Node>& f,
                             std::size_t interleave,
                             const typename CompactForest<T, Node>::Key* keys,
                             const std::uint8_t* nan_mask,
                             const std::uint8_t* member, int* votes) {
  const Node* nodes = f.nodes.data();
  const std::size_t trees = f.roots.size();
  const std::size_t R = std::clamp<std::size_t>(interleave, 1, kMaxInterleave);
  std::int32_t cur[kMaxInterleave];
  for (std::size_t t0 = 0; t0 < trees; t0 += R) {
    const std::size_t g = std::min(R, trees - t0);
    for (std::size_t r = 0; r < g; ++r) {
      cur[r] = f.roots[t0 + r];
      FLINT_PREFETCH(&nodes[cur[r]]);
    }
    std::uint32_t alive = (1u << g) - 1u;  // g <= kMaxInterleave = 16
    while (alive) {
      for (std::size_t r = 0; r < g; ++r) {
        if (!(alive & (1u << r))) continue;
        const Node& nd = nodes[cur[r]];
        const std::int32_t off = nd.right_off;
        if (off < 0) {
          ++votes[static_cast<std::int32_t>(nd.key)];
          alive &= ~(1u << r);
          continue;
        }
        bool go;
        std::int32_t step_off = off;
        if constexpr (Special) {
          step_off = node_right_off(nd);
          const auto fi = static_cast<std::size_t>(node_feature(nd));
          if (nan_mask[fi]) {
            go = node_default_left(nd);
          } else if (node_categorical(nd)) {
            go = member[static_cast<std::size_t>(nd.key)] != 0;
          } else {
            go = keys[fi] <= nd.key;
          }
        } else {
          go = keys[nd.feature] <= nd.key;
        }
        if constexpr (Prefetch) {
          FLINT_PREFETCH(&nodes[cur[r] + step_off]);
        }
        const std::int32_t next = cur[r] + (go ? 1 : step_off);
        FLINT_PREFETCH(&nodes[next]);  // overlaps with the other lanes
        cur[r] = next;
      }
    }
  }
}

#if defined(FLINT_SIMD_AVX2)
/// AVX2 blocked batch: remap each block into feature-major int32 key tiles
/// of 8 lanes (padded lanes zero-filled — they traverse to some leaf on
/// well-defined inputs and their votes are ignored) and hand the walk to
/// the vector kernel.  Works for any scalar T: after the remap the
/// traversal only sees int32 keys and compact nodes.
template <typename T, typename Node>
void predict_blocked_avx2(const CompactForest<T, Node>& f,
                          std::size_t block_size, const T* features,
                          std::size_t n_samples, std::int32_t* out) {
  constexpr std::size_t W = 8;
  const std::size_t cols = f.feature_count;
  const auto classes = static_cast<std::size_t>(std::max(f.num_classes, 1));
  const std::size_t max_tiles = (block_size + W - 1) / W;
  std::vector<std::int32_t> tiles(max_tiles * cols * W);
  std::vector<int> votes(max_tiles * W * classes);
  for (std::size_t base = 0; base < n_samples; base += block_size) {
    const std::size_t block = std::min(block_size, n_samples - base);
    const std::size_t n_tiles = (block + W - 1) / W;
    for (std::size_t s = 0; s < block; ++s) {
      f.remap32(features + (base + s) * cols,
                tiles.data() + (s / W) * cols * W + (s % W), W);
    }
    for (std::size_t s = block; s < n_tiles * W; ++s) {
      std::int32_t* lane = tiles.data() + (s / W) * cols * W + (s % W);
      for (std::size_t c = 0; c < cols; ++c) lane[c * W] = 0;
    }
    std::fill(votes.begin(),
              votes.begin() + static_cast<std::ptrdiff_t>(n_tiles * W *
                                                          classes),
              0);
    predict_tiles_avx2(f.nodes.data(), f.roots.data(), f.roots.size(),
                       tiles.data(), n_tiles, cols, votes.data(), classes);
    for (std::size_t s = 0; s < block; ++s) {
      out[base + s] = argmax_first(votes.data() + s * classes,
                                   static_cast<int>(classes));
    }
  }
}
#endif  // FLINT_SIMD_AVX2

/// Float-accumulate epilogue over the same blocked traversal: each lane's
/// leaf key indexes a leaf-value row added into the sample's score row.
/// The tree loop stays outermost, so every sample accumulates in tree
/// order — the same summation order as the reference per-tree loop
/// (docs/MODEL_FORMATS.md "Numerical contract").  `out` rows are
/// pre-initialized by the caller.
template <bool Prefetch, bool Special, typename T, typename Node>
void score_blocked(const CompactForest<T, Node>& f, std::size_t block_size,
                   const T* features, std::size_t n_samples,
                   const T* leaf_values, std::size_t n_outputs, T* out) {
  blocked_traverse<Prefetch, Special>(
      f, block_size, features, n_samples,
      [](std::size_t, std::size_t) {},
      [&](std::size_t global, std::size_t, std::int32_t key) {
        const T* lv = leaf_values + static_cast<std::size_t>(key) * n_outputs;
        T* srow = out + global * n_outputs;
        for (std::size_t j = 0; j < n_outputs; ++j) srow[j] += lv[j];
      },
      [](std::size_t, std::size_t) {});
}

/// Batches below this take the interleaved path (blocked amortization has
/// nothing to amortize over).
constexpr std::size_t kLatencyPathMaxBatch = 8;

template <typename T, typename Node>
void predict_batch_impl(const CompactForest<T, Node>& f,
                        const LayoutPlan& plan, const T* features,
                        std::size_t n_samples, std::int32_t* out) {
  using Key = typename CompactForest<T, Node>::Key;
  if (n_samples <= kLatencyPathMaxBatch) {
    const std::size_t cols = f.feature_count;
    const auto classes = static_cast<std::size_t>(std::max(f.num_classes, 1));
    std::vector<Key> keys(cols);
    std::vector<int> votes(classes);
    std::vector<std::uint8_t> nan_mask(f.has_special ? cols : 0);
    std::vector<std::uint8_t> member(
        f.has_special ? std::max<std::size_t>(f.cat_slot_count(), 1) : 0);
    for (std::size_t s = 0; s < n_samples; ++s) {
      f.remap(features + s * cols, keys.data());
      std::fill(votes.begin(), votes.end(), 0);
      if (f.has_special) {
        f.special_masks(features + s * cols, nan_mask.data(), member.data());
        if (plan.prefetch_opposite) {
          predict_one_interleaved<true, true>(f, plan.interleave, keys.data(),
                                              nan_mask.data(), member.data(),
                                              votes.data());
        } else {
          predict_one_interleaved<false, true>(f, plan.interleave, keys.data(),
                                               nan_mask.data(), member.data(),
                                               votes.data());
        }
      } else if (plan.prefetch_opposite) {
        predict_one_interleaved<true, false>(f, plan.interleave, keys.data(),
                                             nullptr, nullptr, votes.data());
      } else {
        predict_one_interleaved<false, false>(f, plan.interleave, keys.data(),
                                              nullptr, nullptr, votes.data());
      }
      out[s] = argmax_first(votes.data(), static_cast<int>(classes));
    }
    return;
  }
  if (f.has_special) {
    // Special forests always take the scalar blocked loop: the AVX2 kernel
    // has no NaN/categorical path.
    if (plan.prefetch_opposite) {
      predict_blocked<true, true>(f, plan.block_size, features, n_samples,
                                  out);
    } else {
      predict_blocked<false, true>(f, plan.block_size, features, n_samples,
                                   out);
    }
    return;
  }
#if defined(FLINT_SIMD_AVX2)
  // FLINT_LAYOUT_FORCE_SCALAR=1 pins the portable lockstep loop — used by
  // the tests to cover the scalar path on hosts that would always take the
  // vector kernel, and as an escape hatch when diagnosing either.  The
  // node-count gate keeps the kernel's int32 BYTE offsets (index << 4/3)
  // from wrapping on images past 2 GiB — such forests fall back to the
  // scalar loop, whose indices stay element-scaled.
  const char* force_scalar = std::getenv("FLINT_LAYOUT_FORCE_SCALAR");
  const bool image_addressable =
      f.nodes.size() <= static_cast<std::size_t>(
                            std::numeric_limits<std::int32_t>::max()) /
                            sizeof(Node);
  if (!(force_scalar && force_scalar[0] == '1') && image_addressable &&
      layout_avx2_supported()) {
    predict_blocked_avx2(f, plan.block_size, features, n_samples, out);
    return;
  }
#endif
  if (plan.prefetch_opposite) {
    predict_blocked<true, false>(f, plan.block_size, features, n_samples,
                                 out);
  } else {
    predict_blocked<false, false>(f, plan.block_size, features, n_samples,
                                  out);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// LayoutForestEngine.
// ---------------------------------------------------------------------------

template <typename T>
LayoutForestEngine<T>::LayoutForestEngine(const trees::Forest<T>& forest,
                                          const LayoutPlan& plan,
                                          const KeyTableSet<T>& tables)
    : plan_(plan) {
  if (forest.empty()) {
    throw std::invalid_argument("LayoutForestEngine: empty forest");
  }
  plan_.block_size = std::max<std::size_t>(plan_.block_size, 1);
  plan_.interleave = std::clamp<std::size_t>(plan_.interleave, 1,
                                             kMaxInterleave);
  std::string why;
  if (plan_.width == NodeWidth::C16) {
    auto packed = try_pack<T, CompactNode16>(forest, plan_, tables, &why);
    if (!packed) {
      throw std::invalid_argument("LayoutForestEngine(c16): " + why);
    }
    node_bytes_ = sizeof(CompactNode16);
    hot_nodes_ = packed->hot_nodes;
    packed_ = std::move(*packed);
  } else if (plan_.width == NodeWidth::C8) {
    auto packed = try_pack<T, CompactNode8>(forest, plan_, tables, &why);
    if (!packed) {
      throw std::invalid_argument("LayoutForestEngine(c8): " + why);
    }
    node_bytes_ = sizeof(CompactNode8);
    hot_nodes_ = packed->hot_nodes;
    packed_ = std::move(*packed);
  } else {
    throw std::invalid_argument(
        "LayoutForestEngine: Wide is the factory fallback, not an engine "
        "width");
  }
  num_classes_ = forest.num_classes();
  feature_count_ = forest.feature_count();
  tree_count_ = forest.size();
  node_count_ = forest.total_nodes();
}

template <typename T>
template <typename Node>
void LayoutForestEngine<T>::bind_packed(CompactForest<T, Node> packed) {
  if (packed.nodes.empty()) {
    throw std::invalid_argument("LayoutForestEngine: empty packed image");
  }
  plan_.block_size = std::max<std::size_t>(plan_.block_size, 1);
  plan_.interleave =
      std::clamp<std::size_t>(plan_.interleave, 1, kMaxInterleave);
  node_bytes_ = sizeof(Node);
  hot_nodes_ = packed.hot_nodes;
  num_classes_ = packed.num_classes;
  feature_count_ = packed.feature_count;
  tree_count_ = packed.roots.size();
  node_count_ = packed.nodes.size();
  packed_ = std::move(packed);
}

template <typename T>
LayoutForestEngine<T>::LayoutForestEngine(
    CompactForest<T, CompactNode16> packed, const LayoutPlan& plan)
    : plan_(plan) {
  plan_.width = NodeWidth::C16;
  bind_packed(std::move(packed));
}

template <typename T>
LayoutForestEngine<T>::LayoutForestEngine(CompactForest<T, CompactNode8> packed,
                                          const LayoutPlan& plan)
    : plan_(plan) {
  plan_.width = NodeWidth::C8;
  bind_packed(std::move(packed));
}

template <typename T>
void LayoutForestEngine<T>::predict_batch(const T* features,
                                          std::size_t n_samples,
                                          std::int32_t* out) const {
  if (n_samples == 0) return;
  std::visit(
      [&](const auto& packed) {
        predict_batch_impl(packed, plan_, features, n_samples, out);
      },
      packed_);
}

template <typename T>
void LayoutForestEngine<T>::predict_scores(const T* features,
                                           std::size_t n_samples,
                                           std::span<const T> leaf_values,
                                           std::size_t n_outputs,
                                           std::span<const T> base,
                                           T* out) const {
  if (n_samples == 0) return;
  if (n_outputs == 0 || leaf_values.size() % n_outputs != 0) {
    throw std::invalid_argument(
        "LayoutForestEngine::predict_scores: leaf_values is not a multiple "
        "of n_outputs");
  }
  if (!base.empty() && base.size() != n_outputs) {
    throw std::invalid_argument(
        "LayoutForestEngine::predict_scores: base size mismatch");
  }
  for (std::size_t s = 0; s < n_samples; ++s) {
    for (std::size_t j = 0; j < n_outputs; ++j) {
      out[s * n_outputs + j] = base.empty() ? T{0} : base[j];
    }
  }
  std::visit(
      [&](const auto& packed) {
        if (packed.has_special) {
          if (plan_.prefetch_opposite) {
            score_blocked<true, true>(packed, plan_.block_size, features,
                                      n_samples, leaf_values.data(),
                                      n_outputs, out);
          } else {
            score_blocked<false, true>(packed, plan_.block_size, features,
                                       n_samples, leaf_values.data(),
                                       n_outputs, out);
          }
        } else if (plan_.prefetch_opposite) {
          score_blocked<true, false>(packed, plan_.block_size, features,
                                     n_samples, leaf_values.data(), n_outputs,
                                     out);
        } else {
          score_blocked<false, false>(packed, plan_.block_size, features,
                                      n_samples, leaf_values.data(),
                                      n_outputs, out);
        }
      },
      packed_);
}

template <typename T>
std::int32_t LayoutForestEngine<T>::predict(std::span<const T> x) const {
  std::int32_t result = -1;
  predict_batch(x.data(), 1, &result);
  return result;
}

template EmissionOrder compute_emission_order<float>(
    const trees::Forest<float>&, std::size_t);
template EmissionOrder compute_emission_order<double>(
    const trees::Forest<double>&, std::size_t);
template struct CompactForest<float, CompactNode16>;
template struct CompactForest<float, CompactNode8>;
template struct CompactForest<double, CompactNode16>;
template struct CompactForest<double, CompactNode8>;
template std::optional<CompactForest<float, CompactNode16>>
try_pack<float, CompactNode16>(const trees::Forest<float>&, const LayoutPlan&,
                               const KeyTableSet<float>&, std::string*);
template std::optional<CompactForest<float, CompactNode8>>
try_pack<float, CompactNode8>(const trees::Forest<float>&, const LayoutPlan&,
                              const KeyTableSet<float>&, std::string*);
template std::optional<CompactForest<double, CompactNode16>>
try_pack<double, CompactNode16>(const trees::Forest<double>&,
                                const LayoutPlan&, const KeyTableSet<double>&,
                                std::string*);
template std::optional<CompactForest<double, CompactNode8>>
try_pack<double, CompactNode8>(const trees::Forest<double>&, const LayoutPlan&,
                               const KeyTableSet<double>&, std::string*);
template class LayoutForestEngine<float>;
template class LayoutForestEngine<double>;

}  // namespace flint::exec::layout
