// exec/layout/compact — cache-aware compact node formats and placement.
//
// Once FLInt reduces every split to one integer compare, random-forest
// inference is memory-bound: the wide interpreter's 16/24-byte PackedNode
// stream dominates, and deep-forest throughput degrades exactly where the
// packed image spills out of cache.  This module re-packs a forest into
// node formats engineered for the memory hierarchy:
//
//   CompactNode16 (16 B)  int32 key + int32 right offset + int32 feature
//                         (+ explicit pad so four nodes tile a 64-byte
//                         line and no node ever straddles one);
//   CompactNode8  (8 B)   int16 key + int16 feature + int32 right offset —
//                         half the bytes per fetched node, eight per line.
//
// Three layout tricks, applied to both widths:
//
//   * implicit left child — an inner node's left child is ALWAYS the next
//     node (left = self + 1), so nodes store only a relative right offset
//     (right = self + right_off).  Leaves are tagged in the offset's sign
//     bit (right_off < 0) and carry their class id in `key`; no separate
//     leaf array, no absolute child indices.
//   * order-preserving threshold narrowing — node keys are either the raw
//     int32 radix key (float/C16, no per-sample table lookup) or the
//     feature's rank in a per-feature monotone key table (narrow.hpp);
//     both make `x <= s` a single narrow integer compare, exactly.
//   * placement — the left-spine of every subtree is contiguous by the
//     implicit-left rule, so placement freedom is *where right subtrees
//     go*.  hot_depth = 0 emits each tree in preorder (every subtree a
//     contiguous cluster — the left-spine-contiguous specialization of
//     vEB-style clustering under the implicit-left constraint).
//     hot_depth = D additionally root-blocks the forest: the spines whose
//     branch depth is < D, across ALL trees, are emitted breadth-first
//     into one contiguous "hot slab" at the front of the node array (the
//     working set every sample touches), and the subtrees hanging below
//     the slab are emitted as preorder clusters behind it.
//
// Traversal comes in two shapes (dual of exec/simd's across-samples
// lockstep): a blocked batch loop (remap a block of samples to narrow keys
// once, then stream each tree's nodes across the block) and an interleaved
// latency path that walks `plan.interleave` trees of ONE sample in
// lockstep, so independent node fetches overlap in the out-of-order window,
// optionally software-prefetching the right ("opposite" of the implicit
// left) child ahead of the compare.
//
// Bit-identical to Forest::predict on every input — including NaN routed
// by per-node default directions and categorical membership splits, via a
// Special traversal that consults per-sample NaN/membership masks computed
// once at remap time (tests/test_layout.cpp, tests/test_predictor.cpp,
// tests/test_missing.cpp).  Forests without special splits take the
// original mask-free paths.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/flint.hpp"
#include "exec/layout/narrow.hpp"
#include "exec/layout/plan.hpp"
#include "trees/forest.hpp"

namespace flint::exec::layout {

/// CompactNode16 `aux` flag bits (the word that used to be pure line pad).
inline constexpr std::int32_t kC16DefaultLeft = 1;  ///< NaN routes left
inline constexpr std::int32_t kC16Categorical = 2;  ///< key = cat slot

/// 16-byte compact node.  Inner: `key` is the narrowed threshold, right
/// child at self + right_off (> 0), left child at self + 1.  Leaf:
/// right_off < 0, `key` is the class id, and `feature` is 0 — a valid
/// column, so branchless lockstep loops may read keys[feature] before the
/// leaf test resolves.  `aux` carries the missing/categorical flags (zero
/// on every node of a forest without such splits — the fast traversal
/// never reads it); categorical nodes store their engine-level category
/// slot in `key`.
struct CompactNode16 {
  std::int32_t key = 0;
  std::int32_t right_off = -1;
  std::int32_t feature = -1;
  std::int32_t aux = 0;  ///< flags; 4 nodes tile a 64 B line, none straddles
};
static_assert(sizeof(CompactNode16) == 16, "CompactNode16 must stay 16 bytes");

/// 8-byte compact node: same scheme with int16 key/feature.  No spare word,
/// so the missing/categorical bits hide in spare bits of existing fields:
/// feature indices are gated <= 32767 at pack time, freeing feature bit 15
/// for default-left, and right offsets of special forests are gated
/// < 2^30, freeing right_off bit 30 for the categorical tag (the sign bit
/// stays the leaf tag, tested first).  Both bits are zero in forests
/// without special splits, so the fast traversal reads the fields raw.
struct CompactNode8 {
  std::int16_t key = 0;
  std::int16_t feature = -1;
  std::int32_t right_off = -1;
};
static_assert(sizeof(CompactNode8) == 8, "CompactNode8 must stay 8 bytes");

inline constexpr std::uint16_t kC8DefaultLeftBit = 0x8000u;  ///< feature bit 15
inline constexpr std::int32_t kC8CategoricalBit = 1 << 30;   ///< right_off bit 30

/// Flag/field accessors the Special traversal uses; the non-special path
/// keeps reading the raw fields (bit-identical to the pre-missing layout).
[[nodiscard]] inline bool node_default_left(const CompactNode16& n) noexcept {
  return (n.aux & kC16DefaultLeft) != 0;
}
[[nodiscard]] inline bool node_categorical(const CompactNode16& n) noexcept {
  return (n.aux & kC16Categorical) != 0;
}
[[nodiscard]] inline std::int32_t node_feature(const CompactNode16& n) noexcept {
  return n.feature;
}
[[nodiscard]] inline std::int32_t node_right_off(const CompactNode16& n) noexcept {
  return n.right_off;
}
[[nodiscard]] inline bool node_default_left(const CompactNode8& n) noexcept {
  return (static_cast<std::uint16_t>(n.feature) & kC8DefaultLeftBit) != 0;
}
[[nodiscard]] inline bool node_categorical(const CompactNode8& n) noexcept {
  return n.right_off >= 0 && (n.right_off & kC8CategoricalBit) != 0;
}
[[nodiscard]] inline std::int32_t node_feature(const CompactNode8& n) noexcept {
  return static_cast<std::int32_t>(static_cast<std::uint16_t>(n.feature) &
                                   ~kC8DefaultLeftBit);
}
[[nodiscard]] inline std::int32_t node_right_off(const CompactNode8& n) noexcept {
  return n.right_off >= 0 ? (n.right_off & ~kC8CategoricalBit) : n.right_off;
}

/// A forest packed into one compact node array.  `Node` is CompactNode16
/// or CompactNode8; `Key` follows its key field.
template <typename T, typename Node>
struct CompactForest {
  using Key = decltype(Node::key);

  int num_classes = 0;
  std::size_t feature_count = 0;
  std::size_t hot_nodes = 0;     ///< nodes in the hot slab (0 for pure DFS)
  bool identity_keys = false;    ///< float/C16: key = radix key, table-free
  bool has_special = false;      ///< any default-left / categorical node
  std::vector<Node> nodes;       ///< all trees, placement per LayoutPlan
  std::vector<std::int32_t> roots;  ///< position of each tree's root
  KeyTableSet<T> tables;         ///< rank tables (empty when identity_keys)

  /// Category side tables (has_special only): every categorical NODE owns
  /// one engine slot (its compact `key`), so per-sample membership can be
  /// precomputed per slot without consulting the node again.
  std::vector<std::uint32_t> cat_words;   ///< category bitsets, all slots
  std::vector<std::int32_t> cat_offsets;  ///< word offset per slot
  std::vector<std::int32_t> cat_sizes;    ///< word count per slot
  std::vector<std::int32_t> cat_feature;  ///< feature each slot tests

  [[nodiscard]] std::size_t cat_slot_count() const noexcept {
    return cat_feature.size();
  }
  [[nodiscard]] std::span<const std::uint32_t> cat_set_of_slot(
      std::size_t s) const noexcept {
    return {cat_words.data() + static_cast<std::size_t>(cat_offsets[s]),
            static_cast<std::size_t>(cat_sizes[s])};
  }

  /// Per-sample side masks the Special traversal consults before any key
  /// compare: `nan_out[f]` = 1 iff x[f] is NaN (detected from the integer
  /// encoding, (bits & abs_mask) > exp_mask); `member_out[s]` = 1 iff
  /// x[cat_feature[s]] is a member of slot s's category set.  `nan_out`
  /// needs feature_count slots, `member_out` cat_slot_count() slots.
  void special_masks(const T* x, std::uint8_t* nan_out,
                     std::uint8_t* member_out) const {
    for (std::size_t f = 0; f < feature_count; ++f) {
      nan_out[f] = core::is_nan_bits<T>(core::si_bits(x[f])) ? 1 : 0;
    }
    for (std::size_t s = 0; s < cat_feature.size(); ++s) {
      const T v = x[static_cast<std::size_t>(cat_feature[s])];
      member_out[s] = (!core::is_nan_bits<T>(core::si_bits(v)) &&
                       trees::cat_contains(cat_set_of_slot(s), v))
                          ? 1
                          : 0;
    }
  }

  /// Remaps one sample to narrow comparison keys; `out` needs
  /// feature_count slots.  Thread-safe.
  void remap(const T* x, Key* out) const {
    if (identity_keys) {
      for (std::size_t f = 0; f < feature_count; ++f) {
        out[f] = static_cast<Key>(core::to_radix_key(x[f]));
      }
    } else {
      for (std::size_t f = 0; f < feature_count; ++f) {
        out[f] = static_cast<Key>(tables.features[f].rank(x[f]));
      }
    }
  }

  /// Same remap widened to int32 and written at `stride`-element spacing —
  /// feature f lands at out[f * stride].  With stride = 8 this writes one
  /// lane of the AVX2 kernels' feature-major key tiles directly.
  void remap32(const T* x, std::int32_t* out, std::size_t stride) const {
    if (identity_keys) {
      for (std::size_t f = 0; f < feature_count; ++f) {
        out[f * stride] =
            static_cast<std::int32_t>(core::to_radix_key(x[f]));
      }
    } else {
      for (std::size_t f = 0; f < feature_count; ++f) {
        out[f * stride] = tables.features[f].rank(x[f]);
      }
    }
  }
};

/// One slot of an emission order: which source node sits at this packed
/// position.
struct EmissionItem {
  std::int32_t tree = 0;
  std::int32_t node = 0;
};

/// The placement pass shared by every packed node format.  Placement is
/// geometry-independent — it decides only the ORDER nodes are emitted in
/// (hot slab spines breadth-first across trees, then preorder cold
/// clusters; see the file comment) — so formats whose field widths depend
/// on the resulting offsets (the 4-byte quantized word sizes its offset
/// bits from max_right_offset) can compute the order first and pick their
/// geometry second.
struct EmissionOrder {
  std::vector<EmissionItem> order;  ///< packed position -> source node
  std::vector<std::vector<std::int32_t>> pos;  ///< [tree][node] -> position
  std::size_t hot_nodes = 0;  ///< leading nodes in the hot slab (0 = pure DFS)
  /// Largest relative right-child offset any inner node needs (0 when the
  /// forest is all leaves).
  std::int64_t max_right_offset = 0;
};

/// Computes the emission order for `forest` at `hot_depth` and verifies the
/// placement invariants every compact format relies on (left child at
/// parent + 1, every right child after its parent, no node dropped).
/// Throws std::logic_error when an invariant fails — impossible by
/// construction; the check guards refactors.
template <typename T>
[[nodiscard]] EmissionOrder compute_emission_order(
    const trees::Forest<T>& forest, std::size_t hot_depth);

/// Packs `forest` per `plan` (width + hot_depth are consulted; Wide is not
/// packable).  Returns std::nullopt and sets `why` when the model cannot be
/// represented at this width (rank/feature/class overflow) — the factory
/// then falls back to the next wider format.  `tables` is shared with the
/// caller (built once per forest, reused across fallback attempts).
template <typename T, typename Node>
[[nodiscard]] std::optional<CompactForest<T, Node>> try_pack(
    const trees::Forest<T>& forest, const LayoutPlan& plan,
    const KeyTableSet<T>& tables, std::string* why = nullptr);

/// Compact-layout execution engine: owns one packed forest at the plan's
/// width and serves both traversal shapes.  The source Forest does not need
/// to outlive it.  predict/predict_batch are const-thread-safe (all vote
/// and key scratch is function-local), so ParallelPredictor can partition
/// batches without cloning.
template <typename T>
class LayoutForestEngine {
 public:
  /// Packs with `plan` (width must be C16 or C8 — Wide is the factory's
  /// fallback, not an engine mode).  Throws std::invalid_argument when the
  /// forest is empty or not representable at the requested width.
  LayoutForestEngine(const trees::Forest<T>& forest, const LayoutPlan& plan,
                     const KeyTableSet<T>& tables);

  /// Binds an already-packed image (exec/artifacts) without re-packing;
  /// `plan.width` is overridden to match the image's node format.  Throws
  /// std::invalid_argument on an empty image.
  LayoutForestEngine(CompactForest<T, CompactNode16> packed,
                     const LayoutPlan& plan);
  LayoutForestEngine(CompactForest<T, CompactNode8> packed,
                     const LayoutPlan& plan);

  [[nodiscard]] const LayoutPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] int num_classes() const noexcept { return num_classes_; }
  [[nodiscard]] std::size_t feature_count() const noexcept {
    return feature_count_;
  }
  [[nodiscard]] std::size_t tree_count() const noexcept { return tree_count_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }
  /// Bytes per packed node (16 or 8).
  [[nodiscard]] std::size_t node_bytes() const noexcept { return node_bytes_; }
  /// Nodes in the shared hot slab (0 under pure DFS placement).
  [[nodiscard]] std::size_t hot_node_count() const noexcept {
    return hot_nodes_;
  }

  /// Classifies `n_samples` row-major samples into `out`.  Small batches
  /// take the interleaved latency path, larger ones the blocked loop.
  void predict_batch(const T* features, std::size_t n_samples,
                     std::int32_t* out) const;

  /// Float-accumulate epilogue for additive leaf-value models
  /// (model/forest_model.hpp): each leaf's compact `key` payload indexes a
  /// row of `leaf_values` (`n_outputs` values per row) and
  /// `out[s*n_outputs+j]` becomes base[j] (zeros when `base` is empty)
  /// plus the sum of the rows the sample's trees land on, accumulated in
  /// tree order over the same remapped-key blocked lockstep traversal as
  /// predict_batch.  Row indices must fit the packed key width — the same
  /// pack-time gate that bounds class ids.  Thread-safe; zero samples =
  /// no-op.
  void predict_scores(const T* features, std::size_t n_samples,
                      std::span<const T> leaf_values, std::size_t n_outputs,
                      std::span<const T> base, T* out) const;

  /// Majority-vote class for one sample (interleaved lockstep traversal).
  [[nodiscard]] std::int32_t predict(std::span<const T> x) const;

 private:
  template <typename Node>
  void bind_packed(CompactForest<T, Node> packed);

  LayoutPlan plan_;
  int num_classes_ = 0;
  std::size_t feature_count_ = 0;
  std::size_t tree_count_ = 0;
  std::size_t node_count_ = 0;
  std::size_t node_bytes_ = 0;
  std::size_t hot_nodes_ = 0;
  std::variant<CompactForest<T, CompactNode16>, CompactForest<T, CompactNode8>>
      packed_;
};

extern template EmissionOrder compute_emission_order<float>(
    const trees::Forest<float>&, std::size_t);
extern template EmissionOrder compute_emission_order<double>(
    const trees::Forest<double>&, std::size_t);
extern template struct CompactForest<float, CompactNode16>;
extern template struct CompactForest<float, CompactNode8>;
extern template struct CompactForest<double, CompactNode16>;
extern template struct CompactForest<double, CompactNode8>;
extern template std::optional<CompactForest<float, CompactNode16>>
try_pack<float, CompactNode16>(const trees::Forest<float>&, const LayoutPlan&,
                               const KeyTableSet<float>&, std::string*);
extern template std::optional<CompactForest<float, CompactNode8>>
try_pack<float, CompactNode8>(const trees::Forest<float>&, const LayoutPlan&,
                              const KeyTableSet<float>&, std::string*);
extern template std::optional<CompactForest<double, CompactNode16>>
try_pack<double, CompactNode16>(const trees::Forest<double>&,
                                const LayoutPlan&, const KeyTableSet<double>&,
                                std::string*);
extern template std::optional<CompactForest<double, CompactNode8>>
try_pack<double, CompactNode8>(const trees::Forest<double>&, const LayoutPlan&,
                               const KeyTableSet<double>&, std::string*);
extern template class LayoutForestEngine<float>;
extern template class LayoutForestEngine<double>;

}  // namespace flint::exec::layout
