// exec/layout/kernels_avx2 — AVX2 lockstep traversal over compact nodes
// (8 samples per tile).  See kernels.hpp for the tile/vote conventions.
//
// Gather addressing: vpgatherdd scales indices by at most 8, while nodes
// are 16 (c16) or 8 (c8) bytes, so lane indices are pre-shifted into BYTE
// offsets and gathered with scale 1.  The c8 node packs {int16 key,
// int16 feature} into its first dword, so one gather fetches both — a c8
// step is three gathers total (node word 0, right_off, sample key).
//
// Leaves step by 0 (their gathered offset is negative; the and-not with
// the leaf mask zeroes the advance), so the loop needs no per-lane active
// mask and exits when every lane's offset sign bit is set.
#include "exec/layout/kernels.hpp"

#if defined(FLINT_SIMD_AVX2)

#include <immintrin.h>

namespace flint::exec::layout {

bool layout_avx2_supported() noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

namespace {

constexpr std::size_t W = 8;

/// Class id of each converged lane (leaf `key` field).
template <typename Node>
inline __m256i leaf_classes(const Node* nodes, __m256i cur) {
  const char* base = reinterpret_cast<const char*>(nodes);
  constexpr int shift = sizeof(Node) == 16 ? 4 : 3;
  const __m256i bytes = _mm256_slli_epi32(cur, shift);
  const __m256i w0 =
      _mm256_i32gather_epi32(reinterpret_cast<const int*>(base), bytes, 1);
  if constexpr (sizeof(Node) == 16) {
    return w0;
  } else {
    return _mm256_srai_epi32(_mm256_slli_epi32(w0, 16), 16);
  }
}

/// Independent tiles walked concurrently per tree.  A single tile is a
/// serial chain (index -> gather -> compare -> index), bound by gather
/// LATENCY (~a cache access per level); G independent chains pipeline
/// those gathers and approach gather THROUGHPUT instead.  This is the
/// vector analog of the scalar path's kBlockLockstep interleave.
constexpr std::size_t kTileGroup = 4;

template <typename Node>
void predict_tiles_avx2_impl(const Node* nodes, const std::int32_t* roots,
                             std::size_t trees, const std::int32_t* tiles,
                             std::size_t n_tiles, std::size_t cols,
                             int* votes, std::size_t classes) {
  const __m256i lane_ids = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i one = _mm256_set1_epi32(1);
  const char* base = reinterpret_cast<const char*>(nodes);
  constexpr int shift = sizeof(Node) == 16 ? 4 : 3;
  for (std::size_t t = 0; t < trees; ++t) {
    const __m256i root = _mm256_set1_epi32(roots[t]);
    for (std::size_t tile0 = 0; tile0 < n_tiles; tile0 += kTileGroup) {
      const std::size_t g = std::min(kTileGroup, n_tiles - tile0);
      __m256i cur[kTileGroup];
      const std::int32_t* x[kTileGroup];
      bool done[kTileGroup];
      std::size_t remaining = g;
      for (std::size_t i = 0; i < g; ++i) {
        cur[i] = root;
        x[i] = tiles + (tile0 + i) * cols * W;
        done[i] = false;
      }
      while (remaining) {
        for (std::size_t i = 0; i < g; ++i) {
          if (done[i]) continue;
          const __m256i bytes = _mm256_slli_epi32(cur[i], shift);
          const __m256i off = _mm256_i32gather_epi32(
              reinterpret_cast<const int*>(base + 4), bytes, 1);
          if (_mm256_movemask_ps(_mm256_castsi256_ps(off)) == 0xFF) {
            done[i] = true;
            --remaining;
            continue;
          }
          __m256i key, feat;
          if constexpr (sizeof(Node) == 16) {
            key = _mm256_i32gather_epi32(reinterpret_cast<const int*>(base),
                                         bytes, 1);
            feat = _mm256_i32gather_epi32(
                reinterpret_cast<const int*>(base + 8), bytes, 1);
          } else {
            const __m256i w0 = _mm256_i32gather_epi32(
                reinterpret_cast<const int*>(base), bytes, 1);
            key = _mm256_srai_epi32(_mm256_slli_epi32(w0, 16), 16);
            feat = _mm256_srai_epi32(w0, 16);
          }
          const __m256i kidx =
              _mm256_add_epi32(_mm256_slli_epi32(feat, 3), lane_ids);
          const __m256i kx = _mm256_i32gather_epi32(x[i], kidx, 4);
          const __m256i go_right = _mm256_cmpgt_epi32(kx, key);
          const __m256i leaf = _mm256_srai_epi32(off, 31);
          const __m256i step = _mm256_andnot_si256(
              leaf, _mm256_blendv_epi8(one, off, go_right));
          cur[i] = _mm256_add_epi32(cur[i], step);
        }
      }
      for (std::size_t i = 0; i < g; ++i) {
        const __m256i cls = leaf_classes(nodes, cur[i]);
        alignas(32) std::int32_t cbuf[W];
        _mm256_store_si256(reinterpret_cast<__m256i*>(cbuf), cls);
        int* vrow = votes + (tile0 + i) * W * classes;
        for (std::size_t l = 0; l < W; ++l) {
          ++vrow[l * classes + static_cast<std::size_t>(cbuf[l])];
        }
      }
    }
  }
}

/// q4 walk: the node is ONE dword, so a step is two gathers total (word +
/// sample key) and the gather scale is the element size itself — no byte
/// pre-shift.  The leaf tag is the word's own sign bit, so the convergence
/// test is a movemask of the raw gathered words.
void predict_tiles_q4_avx2_impl(const std::uint32_t* words,
                                const std::int32_t* roots, std::size_t trees,
                                const std::int32_t* tiles, std::size_t n_tiles,
                                std::size_t cols, int* votes,
                                std::size_t classes, std::uint32_t key_bits,
                                std::uint32_t feature_bits) {
  const __m256i lane_ids = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i key_mask =
      _mm256_set1_epi32(static_cast<int>((1u << key_bits) - 1u));
  const __m256i feat_mask =
      _mm256_set1_epi32(static_cast<int>((1u << feature_bits) - 1u));
  const __m256i off_mask = _mm256_set1_epi32(
      static_cast<int>((1u << (31 - key_bits - feature_bits)) - 1u));
  const __m128i feat_shift = _mm_cvtsi32_si128(static_cast<int>(key_bits));
  const __m128i off_shift =
      _mm_cvtsi32_si128(static_cast<int>(key_bits + feature_bits));
  const int* base = reinterpret_cast<const int*>(words);
  for (std::size_t t = 0; t < trees; ++t) {
    const __m256i root = _mm256_set1_epi32(roots[t]);
    for (std::size_t tile0 = 0; tile0 < n_tiles; tile0 += kTileGroup) {
      const std::size_t g = std::min(kTileGroup, n_tiles - tile0);
      __m256i cur[kTileGroup];
      __m256i last[kTileGroup];
      const std::int32_t* x[kTileGroup];
      bool done[kTileGroup];
      std::size_t remaining = g;
      for (std::size_t i = 0; i < g; ++i) {
        cur[i] = root;
        x[i] = tiles + (tile0 + i) * cols * W;
        done[i] = false;
      }
      while (remaining) {
        for (std::size_t i = 0; i < g; ++i) {
          if (done[i]) continue;
          const __m256i w = _mm256_i32gather_epi32(base, cur[i], 4);
          last[i] = w;
          if (_mm256_movemask_ps(_mm256_castsi256_ps(w)) == 0xFF) {
            done[i] = true;
            --remaining;
            continue;
          }
          const __m256i key = _mm256_and_si256(w, key_mask);
          const __m256i feat =
              _mm256_and_si256(_mm256_srl_epi32(w, feat_shift), feat_mask);
          const __m256i off =
              _mm256_and_si256(_mm256_srl_epi32(w, off_shift), off_mask);
          const __m256i kidx =
              _mm256_add_epi32(_mm256_slli_epi32(feat, 3), lane_ids);
          const __m256i kx = _mm256_i32gather_epi32(x[i], kidx, 4);
          const __m256i go_right = _mm256_cmpgt_epi32(kx, key);
          const __m256i leaf = _mm256_srai_epi32(w, 31);
          const __m256i step = _mm256_andnot_si256(
              leaf, _mm256_blendv_epi8(one, off, go_right));
          cur[i] = _mm256_add_epi32(cur[i], step);
        }
      }
      for (std::size_t i = 0; i < g; ++i) {
        const __m256i cls = _mm256_and_si256(last[i], key_mask);
        alignas(32) std::int32_t cbuf[W];
        _mm256_store_si256(reinterpret_cast<__m256i*>(cbuf), cls);
        int* vrow = votes + (tile0 + i) * W * classes;
        for (std::size_t l = 0; l < W; ++l) {
          ++vrow[l * classes + static_cast<std::size_t>(cbuf[l])];
        }
      }
    }
  }
}

}  // namespace

void predict_tiles_avx2(const CompactNode16* nodes, const std::int32_t* roots,
                        std::size_t trees, const std::int32_t* tiles,
                        std::size_t n_tiles, std::size_t cols, int* votes,
                        std::size_t classes) {
  predict_tiles_avx2_impl(nodes, roots, trees, tiles, n_tiles, cols, votes,
                          classes);
}

void predict_tiles_avx2(const CompactNode8* nodes, const std::int32_t* roots,
                        std::size_t trees, const std::int32_t* tiles,
                        std::size_t n_tiles, std::size_t cols, int* votes,
                        std::size_t classes) {
  predict_tiles_avx2_impl(nodes, roots, trees, tiles, n_tiles, cols, votes,
                          classes);
}

void predict_tiles_q4_avx2(const std::uint32_t* words,
                           const std::int32_t* roots, std::size_t trees,
                           const std::int32_t* tiles, std::size_t n_tiles,
                           std::size_t cols, int* votes, std::size_t classes,
                           std::uint32_t key_bits,
                           std::uint32_t feature_bits) {
  predict_tiles_q4_avx2_impl(words, roots, trees, tiles, n_tiles, cols, votes,
                             classes, key_bits, feature_bits);
}

}  // namespace flint::exec::layout

#endif  // FLINT_SIMD_AVX2
