// exec/interpreter — native-tree execution engines (paper Section IV:
// "native trees where nodes become an array-like data structure and a
// narrow loop reads out the node values").
//
// Five execution paths run the same model — FloatForestEngine plus the four
// FlintForestEngine variants:
//
//   * FloatForestEngine     — hardware floating-point comparisons (reference)
//   * FlintVariant::Encoded — thresholds pre-resolved offline into
//                             EncodedThreshold (Theorem 2 at build time);
//                             the hot loop is a single integer compare.
//   * FlintVariant::Theorem1 / Theorem2 — the runtime formulations, kept for
//                             the ablation benches.
//   * FlintVariant::RadixKey — splits pre-mapped to monotone keys; the
//                             feature vector is remapped once per sample.
//
// All engines are bit-exactly equivalent to Forest::predict for every
// input, including NaN routed by per-node default directions and
// categorical membership splits (property-tested); the paper's headline
// claim is that this equivalence costs nothing — the benches quantify it.
// Forests without missing/categorical splits run the original
// single-compare hot loop (the special checks are a dead template branch).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/flint.hpp"
#include "trees/forest.hpp"

namespace flint::exec {

enum class FlintVariant { Encoded, Theorem1, Theorem2, RadixKey };

[[nodiscard]] const char* to_string(FlintVariant v);

/// PackedNode flag bits.  The byte that used to hold only the Encoded
/// engine's sign-flip bool now carries the missing/categorical semantics
/// too — same 16/24-byte node sizes.
inline constexpr std::uint8_t kPackedSignFlip = 1;     ///< ThresholdMode::SignFlip
inline constexpr std::uint8_t kPackedDefaultLeft = 2;  ///< NaN routes left
inline constexpr std::uint8_t kPackedCategorical = 4;  ///< payload = cat slot

/// Flat node of the packed execution arrays.  For leaves `feature == -1`
/// and `payload` is the class id; for inner nodes `payload` is the encoded
/// immediate (Encoded/RadixKey engines), the raw split bits (Theorem
/// engines), or — when kPackedCategorical is set — the engine-level
/// category-set slot index.
///
/// Members are ordered widest-first and `feature` is narrowed to int16 (the
/// engines gate feature_count <= 32767 at pack time) so the float node is
/// exactly 16 bytes — four per cache line, no pad waste; the old
/// {payload, int32 feature, left, right, sign_flip} order padded to 20.
/// The double node is 24 bytes either way (int64 alignment), asserted below
/// so a regression is a compile error.  Threshold payloads stay full-width:
/// serialization round-trips remain bit-exact.
template <typename T>
struct PackedNode {
  using Signed = typename core::FloatTraits<T>::Signed;
  Signed payload = 0;
  std::int32_t left = -1;
  std::int32_t right = -1;
  std::int16_t feature = -1;
  std::uint8_t flags = 0;  ///< kPackedSignFlip | kPackedDefaultLeft | kPackedCategorical
};

static_assert(sizeof(PackedNode<float>) == 16,
              "PackedNode<float> must tile cache lines (4 per 64 B)");
static_assert(sizeof(PackedNode<double>) == 24,
              "PackedNode<double> gained pad bytes");

/// Forest inference engine with a selectable comparison strategy.
/// The engine keeps a packed copy of the forest; the source Forest object
/// does not need to outlive it.
template <typename T>
class FlintForestEngine {
 public:
  using Signed = typename core::FloatTraits<T>::Signed;

  FlintForestEngine(const trees::Forest<T>& forest, FlintVariant variant);

  [[nodiscard]] FlintVariant variant() const noexcept { return variant_; }
  [[nodiscard]] int num_classes() const noexcept { return num_classes_; }
  [[nodiscard]] std::size_t tree_count() const noexcept { return roots_.size(); }
  [[nodiscard]] std::size_t feature_count() const noexcept { return feature_count_; }

  /// Majority-vote class for one sample.
  [[nodiscard]] std::int32_t predict(std::span<const T> x) const;

  /// Class predicted by tree `t` alone.  Thread-safe (touches no mutable
  /// scratch), which makes it the building block of the blocked batch path
  /// in predict/.  The RadixKey variant reads the remapped feature vector
  /// from `keys` (see remap_keys); the other variants ignore `keys`.
  [[nodiscard]] std::int32_t predict_tree(std::size_t t, std::span<const T> x,
                                          std::span<const Signed> keys = {}) const;

  /// True iff predict_tree requires a remapped key vector (RadixKey).
  [[nodiscard]] bool needs_keys() const noexcept {
    return variant_ == FlintVariant::RadixKey;
  }

  /// Remaps one sample to monotone radix keys; `out` needs feature_count()
  /// slots.  Thread-safe.  Only meaningful for the RadixKey variant.
  void remap_keys(std::span<const T> x, std::span<Signed> out) const;

  /// Batch prediction; `out` must have one slot per row.
  void predict_batch(const data::Dataset<T>& dataset, std::span<std::int32_t> out) const;

  /// Fraction of dataset rows classified as labeled.
  [[nodiscard]] double accuracy(const data::Dataset<T>& dataset) const;

  /// Read-only view of the packed image, consumed by verify/ to prove the
  /// pack preserved the source forest (the hot loops assume it blindly).
  [[nodiscard]] std::span<const PackedNode<T>> nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] std::span<const std::size_t> roots() const noexcept {
    return roots_;
  }
  [[nodiscard]] bool has_special() const noexcept { return has_special_; }
  [[nodiscard]] std::size_t cat_slot_count() const noexcept {
    return cat_offsets_.size();
  }
  [[nodiscard]] std::span<const std::uint32_t> cat_set_of_slot(
      std::size_t slot) const noexcept {
    return cat_span(slot);
  }

 private:
  /// `Special` compiles in the NaN-default-direction / categorical checks;
  /// forests without such splits dispatch to the Special=false instantiation
  /// and keep the original single-compare hot loop.
  template <FlintVariant V, bool Special>
  [[nodiscard]] std::int32_t predict_tree_impl(std::size_t root,
                                               std::span<const T> x,
                                               std::span<const Signed> keys) const;
  template <FlintVariant V, bool Special>
  [[nodiscard]] std::int32_t predict_impl(std::span<const T> x,
                                          std::span<const Signed> keys) const;

  [[nodiscard]] std::span<const std::uint32_t> cat_span(
      std::size_t slot) const noexcept {
    return {cat_words_.data() + static_cast<std::size_t>(cat_offsets_[slot]),
            static_cast<std::size_t>(cat_sizes_[slot])};
  }

  FlintVariant variant_;
  int num_classes_ = 0;
  std::size_t feature_count_ = 0;
  bool has_special_ = false;           ///< any default-left / categorical node
  std::vector<PackedNode<T>> nodes_;   ///< all trees concatenated
  std::vector<std::size_t> roots_;     ///< root index of each tree in nodes_
  std::vector<std::uint32_t> cat_words_;   ///< category bitsets, all slots
  std::vector<std::int32_t> cat_offsets_;  ///< word offset per engine slot
  std::vector<std::int32_t> cat_sizes_;    ///< word count per engine slot
  mutable std::vector<Signed> key_scratch_;  ///< RadixKey per-sample remap buffer
  mutable std::vector<int> vote_scratch_;    ///< per-call vote counts (no allocation)
};

/// Reference engine: hardware float comparisons over the same packed layout
/// (so engine-vs-engine benches isolate the comparison operator, not memory
/// layout differences).
template <typename T>
class FloatForestEngine {
 public:
  explicit FloatForestEngine(const trees::Forest<T>& forest);

  [[nodiscard]] int num_classes() const noexcept { return num_classes_; }
  [[nodiscard]] std::size_t tree_count() const noexcept { return roots_.size(); }
  [[nodiscard]] std::int32_t predict(std::span<const T> x) const;
  /// Class predicted by tree `t` alone.  Thread-safe.
  [[nodiscard]] std::int32_t predict_tree(std::size_t t, std::span<const T> x) const;
  void predict_batch(const data::Dataset<T>& dataset, std::span<std::int32_t> out) const;
  [[nodiscard]] double accuracy(const data::Dataset<T>& dataset) const;

 private:
  struct FloatNode {
    T split = T{0};
    std::int32_t feature = -1;
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t cat_slot = -1;  ///< engine category-set slot, -1 = numeric
    std::uint8_t flags = 0;      ///< kPackedDefaultLeft | kPackedCategorical
  };

  template <bool Special>
  [[nodiscard]] std::int32_t predict_tree_impl(std::size_t root,
                                               std::span<const T> x) const;

  [[nodiscard]] std::span<const std::uint32_t> cat_span(
      std::size_t slot) const noexcept {
    return {cat_words_.data() + static_cast<std::size_t>(cat_offsets_[slot]),
            static_cast<std::size_t>(cat_sizes_[slot])};
  }

  int num_classes_ = 0;
  bool has_special_ = false;
  std::vector<FloatNode> nodes_;
  std::vector<std::size_t> roots_;
  std::vector<std::uint32_t> cat_words_;
  std::vector<std::int32_t> cat_offsets_;
  std::vector<std::int32_t> cat_sizes_;
  mutable std::vector<int> vote_scratch_;    ///< per-call vote counts (no allocation)
};

extern template class FlintForestEngine<float>;
extern template class FlintForestEngine<double>;
extern template class FloatForestEngine<float>;
extern template class FloatForestEngine<double>;

}  // namespace flint::exec
